/**
 * @file
 * ENMC hardware configuration (paper Table 3, "ENMC Configuration").
 */

#ifndef ENMC_ENMC_CONFIG_H
#define ENMC_ENMC_CONFIG_H

#include <cstddef>

namespace enmc::arch {

/** Per-rank ENMC logic parameters. */
struct EnmcConfig
{
    double freq_hz = 400e6;        //!< ENMC logic clock (28nm, Table 3)
    size_t int4_macs = 128;        //!< Screener MAC array width
    size_t fp32_macs = 16;         //!< Executor MAC array width
    size_t screen_feature_buf = 256;   //!< bytes
    size_t screen_weight_buf = 256;    //!< bytes (double-buffered halves)
    size_t exec_feature_buf = 256;     //!< bytes
    size_t exec_weight_buf = 256;      //!< bytes (double-buffered halves)
    size_t psum_buf = 256;             //!< bytes, per unit
    size_t output_buf = 2048;          //!< bytes
    size_t sfu_lanes = 4;          //!< exp/div throughput (elems/cycle)
    size_t inst_fifo_depth = 64;   //!< controller instruction FIFO
    /**
     * Weight-tile fetches the controller may run ahead on. The ping/pong
     * buffer halves hold only the tiles being consumed; the additional
     * in-flight tiles model DDR command pipelining — RD commands for
     * upcoming tiles issue while earlier data is still on the bus, so the
     * CAS latency is hidden and streaming stays bus-limited (a tile here
     * is only 1-2 bursts, far below CL+BL worth of data).
     */
    size_t prefetch_tiles = 8;
    /**
     * Compile with the hardware tile sequencer (Mode register bit 0): the
     * host sends a constant-size program and the on-DIMM instruction
     * generator expands the screening loop. Essential when many ranks
     * share one channel's C/A bus (see bench/ablation_channel).
     */
    bool hw_tile_sequencer = false;
    /**
     * Host instruction issue rate: one ENMC instruction consumes one
     * PRECHARGE slot on the C/A bus; payload-carrying instructions add a
     * DQ burst (tbl cycles).
     */
    size_t host_issue_per_cycle = 1;
};

} // namespace enmc::arch

#endif // ENMC_ENMC_CONFIG_H
