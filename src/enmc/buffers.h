/**
 * @file
 * On-DIMM SRAM buffer model.
 *
 * Each ENMC unit's buffers (feature / weight / psum / output, Table 3's
 * 256 B register files) are modeled as capacity-checked allocators:
 * pipeline stages reserve space when data begins to arrive and release
 * it when the consumer drains it. A reservation that would exceed
 * capacity is a hardware-design error (the compiler's tiling must fit),
 * so it panics rather than silently growing — the model *proves* the
 * tiling decisions respect Table 3's sizes.
 */

#ifndef ENMC_ENMC_BUFFERS_H
#define ENMC_ENMC_BUFFERS_H

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace enmc::arch {

/** A capacity-checked SRAM buffer with occupancy statistics. */
class SramBuffer
{
  public:
    SramBuffer(std::string name, uint64_t capacity_bytes)
        : name_(std::move(name)), capacity_(capacity_bytes)
    {
    }

    /** Reserve `bytes`; panics if the buffer would overflow. */
    void
    reserve(uint64_t bytes)
    {
        ENMC_ASSERT(occupied_ + bytes <= capacity_, "buffer '", name_,
                    "' overflow: ", occupied_, " + ", bytes, " > ",
                    capacity_);
        occupied_ += bytes;
        peak_ = std::max(peak_, occupied_);
        ++reservations_;
    }

    /** Would a reservation of `bytes` fit right now? */
    bool fits(uint64_t bytes) const { return occupied_ + bytes <= capacity_; }

    /** Release `bytes` previously reserved. */
    void
    release(uint64_t bytes)
    {
        ENMC_ASSERT(bytes <= occupied_, "buffer '", name_,
                    "' underflow: releasing ", bytes, " of ", occupied_);
        occupied_ -= bytes;
    }

    void
    clear()
    {
        occupied_ = 0;
    }

    const std::string &name() const { return name_; }
    uint64_t capacity() const { return capacity_; }
    uint64_t occupied() const { return occupied_; }
    uint64_t peak() const { return peak_; }
    uint64_t reservations() const { return reservations_; }

  private:
    std::string name_;
    uint64_t capacity_;
    uint64_t occupied_ = 0;
    uint64_t peak_ = 0;
    uint64_t reservations_ = 0;
};

} // namespace enmc::arch

#endif // ENMC_ENMC_BUFFERS_H
