#include "enmc/isa.h"

#include <sstream>

#include "common/logging.h"

namespace enmc::arch {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "NOP";
      case Opcode::MulAddInt4: return "MUL_ADD_INT4";
      case Opcode::MulAddFp32: return "MUL_ADD_FP32";
      case Opcode::AddInt4: return "ADD_INT4";
      case Opcode::MulInt4: return "MUL_INT4";
      case Opcode::AddFp32: return "ADD_FP32";
      case Opcode::MulFp32: return "MUL_FP32";
      case Opcode::Ldr: return "LDR";
      case Opcode::Str: return "STR";
      case Opcode::Reg: return "REG";
      case Opcode::Move: return "MOVE";
      case Opcode::Filter: return "FILTER";
      case Opcode::Softmax: return "SOFTMAX";
      case Opcode::Sigmoid: return "SIGMOID";
      case Opcode::Barrier: return "BARRIER";
      case Opcode::Return: return "RETURN";
      case Opcode::Clr: return "CLR";
    }
    return "?";
}

const char *
bufferName(BufferId id)
{
    switch (id) {
      case BufferId::ScreenFeature: return "sfeat";
      case BufferId::ScreenWeight: return "swght";
      case BufferId::ScreenPsum: return "spsum";
      case BufferId::ExecFeature: return "xfeat";
      case BufferId::ExecWeight: return "xwght";
      case BufferId::ExecPsum: return "xpsum";
      case BufferId::Output: return "out";
      case BufferId::Index: return "index";
    }
    return "?";
}

const char *
statusRegName(StatusReg reg)
{
    switch (reg) {
      case StatusReg::FeatureBase: return "feature_base";
      case StatusReg::ScreenWeightBase: return "screen_weight_base";
      case StatusReg::ClassWeightBase: return "class_weight_base";
      case StatusReg::BiasBase: return "bias_base";
      case StatusReg::OutputBase: return "output_base";
      case StatusReg::Categories: return "categories";
      case StatusReg::HiddenDim: return "hidden_dim";
      case StatusReg::ReducedDim: return "reduced_dim";
      case StatusReg::BatchSize: return "batch_size";
      case StatusReg::TileRows: return "tile_rows";
      case StatusReg::Threshold: return "threshold";
      case StatusReg::CandidateCount: return "candidate_count";
      case StatusReg::InstCount: return "inst_count";
      case StatusReg::Status: return "status";
      case StatusReg::Mode: return "mode";
      case StatusReg::NumRegs: break;
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    switch (op) {
      case Opcode::Reg:
        oss << (reg_write ? "INIT " : "QUERY ") << statusRegName(reg);
        if (reg_write)
            oss << ", " << payload;
        break;
      case Opcode::Ldr:
      case Opcode::Str:
        oss << opcodeName(op) << ' ' << bufferName(buf0) << ", 0x"
            << std::hex << payload;
        break;
      case Opcode::Move:
      case Opcode::MulAddInt4:
      case Opcode::MulAddFp32:
      case Opcode::AddInt4:
      case Opcode::MulInt4:
      case Opcode::AddFp32:
      case Opcode::MulFp32:
        oss << opcodeName(op) << ' ' << bufferName(buf0) << ", "
            << bufferName(buf1);
        break;
      case Opcode::Filter:
        oss << "FILTER " << bufferName(buf0);
        break;
      default:
        oss << opcodeName(op);
        break;
    }
    return oss.str();
}

namespace {

constexpr uint16_t kCaMask = 0x1fff; // 13 bits

uint16_t
packOpcode(Opcode op)
{
    const auto v = static_cast<uint16_t>(op);
    ENMC_ASSERT(v < 32, "opcode exceeds 5 bits");
    return static_cast<uint16_t>(v << 8);
}

/** Buffer ids occupy a 4-bit field but only 8 buffers exist. */
BufferId
checkedBuffer(uint16_t nibble)
{
    if (nibble >= 8)
        ENMC_PANIC("malformed C/A word: buffer id ", nibble,
                   " out of range");
    return static_cast<BufferId>(nibble);
}

/** True iff `op` carries a DQ payload (Fig. 8: LDR/STR addresses and
 *  REG INIT data travel on the data bus; everything else is C/A-only). */
bool
expectsPayload(Opcode op, bool reg_write)
{
    return op == Opcode::Ldr || op == Opcode::Str ||
           (op == Opcode::Reg && reg_write);
}

} // namespace

EncodedInstruction
encode(const Instruction &inst)
{
    ENMC_ASSERT(static_cast<uint8_t>(inst.buf0) < 8 &&
                    static_cast<uint8_t>(inst.buf1) < 8,
                "buffer id out of range");
    ENMC_ASSERT(inst.has_payload == expectsPayload(inst.op, inst.reg_write),
                "payload flag inconsistent with ", opcodeName(inst.op));
    EncodedInstruction enc;
    enc.ca = packOpcode(inst.op);
    switch (inst.op) {
      case Opcode::Reg: {
        const auto reg = static_cast<uint16_t>(inst.reg);
        ENMC_ASSERT(reg < static_cast<uint16_t>(StatusReg::NumRegs),
                    "register id out of range");
        enc.ca |= static_cast<uint16_t>(inst.reg_write ? 1 : 0) << 7;
        enc.ca |= static_cast<uint16_t>(reg << 2);
        enc.has_payload = inst.reg_write;
        enc.payload = inst.payload;
        break;
      }
      case Opcode::Ldr:
      case Opcode::Str:
        enc.ca |= static_cast<uint16_t>(
            static_cast<uint16_t>(inst.buf0) << 4);
        enc.has_payload = true;
        enc.payload = inst.payload;
        break;
      case Opcode::Move:
      case Opcode::MulAddInt4:
      case Opcode::MulAddFp32:
      case Opcode::AddInt4:
      case Opcode::MulInt4:
      case Opcode::AddFp32:
      case Opcode::MulFp32:
        enc.ca |= static_cast<uint16_t>(
            static_cast<uint16_t>(inst.buf0) << 4);
        enc.ca |= static_cast<uint16_t>(inst.buf1);
        break;
      case Opcode::Filter:
        enc.ca |= static_cast<uint16_t>(
            static_cast<uint16_t>(inst.buf0) << 4);
        break;
      case Opcode::Nop:
      case Opcode::Softmax:
      case Opcode::Sigmoid:
      case Opcode::Barrier:
      case Opcode::Return:
      case Opcode::Clr:
        break;
    }
    ENMC_ASSERT((enc.ca & ~kCaMask) == 0, "encoding exceeds 13 bits");
    return enc;
}

Instruction
decode(const EncodedInstruction &enc)
{
    if ((enc.ca & ~kCaMask) != 0)
        ENMC_PANIC("malformed C/A word: bits beyond A12 set");
    Instruction inst;
    inst.op = static_cast<Opcode>((enc.ca >> 8) & 0x1f);
    const uint16_t operand = enc.ca & 0xff;
    switch (inst.op) {
      case Opcode::Reg: {
        inst.reg_write = ((enc.ca >> 7) & 1) != 0;
        const uint16_t reg = (enc.ca >> 2) & 0x1f;
        if (reg >= static_cast<uint16_t>(StatusReg::NumRegs))
            ENMC_PANIC("malformed C/A word: register id ", reg,
                       " out of range");
        if ((enc.ca & 0x3) != 0)
            ENMC_PANIC("malformed C/A word: stray bits in REG operand");
        inst.reg = static_cast<StatusReg>(reg);
        inst.has_payload = inst.reg_write;
        inst.payload = enc.payload;
        break;
      }
      case Opcode::Ldr:
      case Opcode::Str:
        if ((enc.ca & 0xf) != 0)
            ENMC_PANIC("malformed C/A word: stray bits in ",
                       opcodeName(inst.op), " operand");
        inst.buf0 = checkedBuffer((enc.ca >> 4) & 0xf);
        inst.has_payload = true;
        inst.payload = enc.payload;
        break;
      case Opcode::Move:
      case Opcode::MulAddInt4:
      case Opcode::MulAddFp32:
      case Opcode::AddInt4:
      case Opcode::MulInt4:
      case Opcode::AddFp32:
      case Opcode::MulFp32:
        inst.buf0 = checkedBuffer((enc.ca >> 4) & 0xf);
        inst.buf1 = checkedBuffer(enc.ca & 0xf);
        break;
      case Opcode::Filter:
        if ((enc.ca & 0xf) != 0)
            ENMC_PANIC("malformed C/A word: stray bits in FILTER operand");
        inst.buf0 = checkedBuffer((enc.ca >> 4) & 0xf);
        break;
      case Opcode::Nop:
      case Opcode::Softmax:
      case Opcode::Sigmoid:
      case Opcode::Barrier:
      case Opcode::Return:
      case Opcode::Clr:
        if (operand != 0)
            ENMC_PANIC("malformed C/A word: ", opcodeName(inst.op),
                       " takes no operand bits");
        break;
      default:
        ENMC_PANIC("malformed C/A word: unknown opcode ",
                   (enc.ca >> 8) & 0x1f);
    }
    if (enc.has_payload != expectsPayload(inst.op, inst.reg_write))
        ENMC_PANIC("malformed instruction: ", opcodeName(inst.op),
                   enc.has_payload ? " carries an unexpected DQ payload"
                                   : " is missing its DQ payload");
    return inst;
}

Instruction
makeInit(StatusReg reg, uint64_t value)
{
    Instruction i;
    i.op = Opcode::Reg;
    i.reg = reg;
    i.reg_write = true;
    i.has_payload = true;
    i.payload = value;
    return i;
}

Instruction
makeQuery(StatusReg reg)
{
    Instruction i;
    i.op = Opcode::Reg;
    i.reg = reg;
    i.reg_write = false;
    return i;
}

Instruction
makeLdr(BufferId buf, uint64_t addr)
{
    Instruction i;
    i.op = Opcode::Ldr;
    i.buf0 = buf;
    i.has_payload = true;
    i.payload = addr;
    return i;
}

Instruction
makeStr(BufferId buf, uint64_t addr)
{
    Instruction i;
    i.op = Opcode::Str;
    i.buf0 = buf;
    i.has_payload = true;
    i.payload = addr;
    return i;
}

Instruction
makeMove(BufferId from, BufferId to)
{
    Instruction i;
    i.op = Opcode::Move;
    i.buf0 = from;
    i.buf1 = to;
    return i;
}

Instruction
makeCompute(Opcode op, BufferId a, BufferId b)
{
    Instruction i;
    i.op = op;
    i.buf0 = a;
    i.buf1 = b;
    return i;
}

Instruction
makeFilter(BufferId buf)
{
    Instruction i;
    i.op = Opcode::Filter;
    i.buf0 = buf;
    return i;
}

Instruction
makeSpecial(Opcode op)
{
    Instruction i;
    i.op = op;
    return i;
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream oss;
    for (size_t i = 0; i < prog.size(); ++i)
        oss << i << ":\t" << prog[i].toString() << "\n";
    return oss.str();
}

} // namespace enmc::arch
