/**
 * @file
 * The ENMC instruction set (paper Table 1) and its binary format (Fig. 8).
 *
 * Instructions tunnel through DDR4 PRECHARGE commands: a normal PRECHARGE
 * drives all row-address bits low, so a PRECHARGE with row-address bits
 * set is recognized by the DIMM as an ENMC instruction. The encoding is a
 * 13-bit command word on A0-A12 (5-bit opcode + 8 operand bits) plus an
 * optional 64-bit payload on the DQ bus (addresses, register data).
 */

#ifndef ENMC_ENMC_ISA_H
#define ENMC_ENMC_ISA_H

#include <cstdint>
#include <string>
#include <vector>

namespace enmc::arch {

/** 5-bit opcodes. Values match the format examples in Fig. 8 where given
 *  (MUL_ADD_FP32 = 2, INIT/QUERY share opcode 9). */
enum class Opcode : uint8_t {
    Nop = 0,
    MulAddInt4 = 1,
    MulAddFp32 = 2,
    AddInt4 = 3,
    MulInt4 = 4,
    AddFp32 = 5,
    MulFp32 = 6,
    Ldr = 7,
    Str = 8,
    Reg = 9,        //!< INIT (write) / QUERY (read), RW bit selects
    Move = 10,
    Filter = 11,
    Softmax = 12,
    Sigmoid = 13,
    Barrier = 14,
    Return = 15,
    Clr = 16,
};

const char *opcodeName(Opcode op);

/** 4-bit on-DIMM buffer identifiers. */
enum class BufferId : uint8_t {
    ScreenFeature = 0,   //!< Screener INT4 feature buffer
    ScreenWeight = 1,    //!< Screener INT4 weight buffer
    ScreenPsum = 2,      //!< Screener partial-sum buffer
    ExecFeature = 3,     //!< Executor FP32 feature buffer
    ExecWeight = 4,      //!< Executor FP32 weight buffer
    ExecPsum = 5,        //!< Executor FP32 partial-sum buffer
    Output = 6,          //!< output buffer (results to host)
    Index = 7,           //!< candidate-index buffer (Screener -> ctrl)
};

const char *bufferName(BufferId id);

/** 5-bit status-register indices in the ENMC controller. */
enum class StatusReg : uint8_t {
    FeatureBase = 0,     //!< DRAM base of input features
    ScreenWeightBase = 1,
    ClassWeightBase = 2,
    BiasBase = 3,
    OutputBase = 4,
    Categories = 5,      //!< l (this rank's slice)
    HiddenDim = 6,       //!< d
    ReducedDim = 7,      //!< k
    BatchSize = 8,
    TileRows = 9,        //!< screening rows per tile
    Threshold = 10,      //!< FILTER threshold (raw fp32 bits)
    CandidateCount = 11, //!< candidates found so far (read-only)
    InstCount = 12,      //!< instructions executed (read-only)
    Status = 13,         //!< engine status bits (read-only)
    /**
     * Execution-mode bits. Bit 0: hardware tile sequencer — the ENMC
     * controller's instruction generator expands one MUL_ADD_INT4 into
     * the whole per-tile screening loop locally, so the host C/A bus
     * carries a constant-size program instead of 3 instructions per tile.
     */
    Mode = 14,
    NumRegs = 15,
};

/** Mode-register bits. */
constexpr uint64_t kModeHwTileSequencer = 1ull << 0;

const char *statusRegName(StatusReg reg);

/** A decoded ENMC instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    BufferId buf0 = BufferId::ScreenFeature; //!< first buffer operand
    BufferId buf1 = BufferId::ScreenFeature; //!< second buffer operand
    StatusReg reg = StatusReg::FeatureBase;  //!< register operand
    bool reg_write = false;                  //!< Reg: INIT (true) or QUERY
    bool has_payload = false;                //!< DQ-bus payload follows
    uint64_t payload = 0;                    //!< address or register data

    std::string toString() const;
};

/** The raw wire format: 13 bits of C/A plus an optional DQ burst. */
struct EncodedInstruction
{
    uint16_t ca = 0;         //!< A0-A12 (13 valid bits)
    bool has_payload = false;
    uint64_t payload = 0;
};

/** Encode to the PRECHARGE-tunneled format. Panics on malformed input. */
EncodedInstruction encode(const Instruction &inst);

/** Decode from the wire format. Panics on malformed words. */
Instruction decode(const EncodedInstruction &enc);

/** Convenience constructors. */
Instruction makeInit(StatusReg reg, uint64_t value);
Instruction makeQuery(StatusReg reg);
Instruction makeLdr(BufferId buf, uint64_t addr);
Instruction makeStr(BufferId buf, uint64_t addr);
Instruction makeMove(BufferId from, BufferId to);
Instruction makeCompute(Opcode op, BufferId a, BufferId b);
Instruction makeFilter(BufferId buf);
Instruction makeSpecial(Opcode op); //!< SOFTMAX/SIGMOID/BARRIER/NOP/RETURN/CLR

/** A program is a flat instruction sequence. */
using Program = std::vector<Instruction>;

/** Disassemble a program, one instruction per line. */
std::string disassemble(const Program &prog);

} // namespace enmc::arch

#endif // ENMC_ENMC_ISA_H
