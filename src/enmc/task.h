/**
 * @file
 * The classification work assigned to one ENMC rank.
 *
 * Categories are partitioned across ranks; each rank screens its slice of
 * the (quantized) screener weight matrix, filters candidates, and computes
 * accurate logits from its slice of the full classifier.
 *
 * A task can be *functional* (tensor payloads attached: the rank computes
 * real numbers, bit-matching the reference pipeline) or *timing-only*
 * (payloads null: candidate counts are synthesized from
 * `expected_candidates`, which is how full-scale workloads with hundreds
 * of millions of rows are simulated).
 */

#ifndef ENMC_ENMC_TASK_H
#define ENMC_ENMC_TASK_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "fault/injector.h"
#include "tensor/matrix.h"
#include "tensor/quantize.h"

namespace enmc::arch {

/** Rank-local memory layout + dimensions of one classification call. */
struct RankTask
{
    // --- dimensions (this rank's slice) ---
    uint64_t categories = 0;       //!< rows assigned to this rank
    uint64_t hidden = 0;           //!< d
    uint64_t reduced = 0;          //!< k
    tensor::QuantBits quant = tensor::QuantBits::Int4;
    uint64_t batch = 1;
    bool sigmoid = false;          //!< normalization selector
    /** Per-item candidate count for timing-only simulation. */
    uint64_t expected_candidates = 0;
    float threshold = 0.0f;        //!< FILTER threshold

    // --- fault model (null / default => pristine memory) ---
    /** Seeded fault stream for this rank's reads; not owned. */
    fault::FaultInjector *injector = nullptr;
    /** Global rank id, used for stuck-rank lookup in the fault config. */
    uint32_t rank_index = 0;

    // --- rank-local address layout ---
    Addr screen_weight_base = 0;
    Addr class_weight_base = 0;
    Addr bias_base = 0;
    Addr feature_base = 0;
    Addr output_base = 0;

    // --- functional payloads (null => timing-only) ---
    /** Quantized screener weights, rows = `categories`. */
    const tensor::QuantizedMatrix *screen_weights = nullptr;
    /** Screener bias b~ for this slice. */
    const tensor::Vector *screen_bias = nullptr;
    /** Full-precision classifier rows for this slice. */
    const tensor::Matrix *class_weights = nullptr;
    /** Full classifier bias for this slice. */
    const tensor::Vector *class_bias = nullptr;
    /** Per-item quantized projected features y_q (length k each). */
    std::vector<tensor::QuantizedVector> features_q;
    /** Per-item raw hidden vectors h (length d each). */
    std::vector<tensor::Vector> features;

    bool functional() const { return screen_weights != nullptr; }

    /** Bytes of one screener weight row at the task's quantization. */
    uint64_t screenRowBytes() const;

    /** Bytes of one full-precision classifier row. */
    uint64_t classRowBytes() const { return hidden * sizeof(float); }
};

/** Results and statistics of one rank execution. */
struct RankResult
{
    Cycles cycles = 0;                 //!< DRAM command-clock cycles
    uint64_t instructions = 0;         //!< decoded by the controller
    uint64_t generated_instructions = 0; //!< emitted by the inst generator
    uint64_t screen_bytes = 0;         //!< screener weight traffic
    uint64_t exec_bytes = 0;           //!< executor row traffic
    uint64_t output_bytes = 0;         //!< results returned to host
    Cycles screener_busy = 0;          //!< MAC-array busy (DRAM cycles)
    Cycles executor_busy = 0;
    uint64_t candidates = 0;           //!< total across batch

    // DRAM command activity (for the energy model, Fig. 14).
    uint64_t dram_reads = 0;           //!< RD bursts issued
    uint64_t dram_writes = 0;          //!< WR bursts issued
    uint64_t dram_acts = 0;            //!< ACT commands issued
    uint64_t dram_refs = 0;            //!< REF commands issued

    // Peak SRAM occupancies (capacity proofs for Table 3's buffers).
    uint64_t peak_weight_buf = 0;
    uint64_t peak_psum_buf = 0;
    uint64_t peak_exec_buf = 0;
    uint64_t peak_output_buf = 0;

    // Fault/ECC activity observed by this rank (all zero without an
    // injector).
    /** Injector counter deltas attributable to this run. */
    fault::FaultCounters faults;
    /** Detected-uncorrectable words that reached the compute units. */
    uint64_t uncorrectable_words = 0;
    /** Uncorrectable words on the weak path (screener tiles/features). */
    uint64_t uncorrectable_weak_words = 0;
    /** Uncorrectable words on the strong path (FP32 executor rows). */
    uint64_t uncorrectable_strong_words = 0;
    /** Extra bursts the DRAM controller spent fetching ECC check bits. */
    uint64_t ecc_redundancy_reads = 0;
    /** Syndrome-decode cycles the DRAM controller charged to reads. */
    uint64_t ecc_decode_cycles = 0;
    /** Candidates left with their approximate logit (degraded mode). */
    uint64_t degraded_candidates = 0;
    /** Slice re-executions the resilience policy performed. */
    uint64_t fault_retries = 0;

    // Functional outputs (empty for timing-only runs).
    /** Mixed logits per batch item over this rank's slice. */
    std::vector<tensor::Vector> logits;
    /** Candidate indices (slice-local) per batch item. */
    std::vector<std::vector<uint32_t>> candidate_ids;
};

} // namespace enmc::arch

#endif // ENMC_ENMC_TASK_H
