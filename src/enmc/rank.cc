#include "enmc/rank.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"

namespace enmc::arch {

namespace {

/** Bits per weight element for a quantization level. */
uint64_t
weightBits(tensor::QuantBits q)
{
    return q == tensor::QuantBits::Fp32
               ? 32
               : static_cast<uint64_t>(tensor::quantBitCount(q));
}

} // namespace

uint64_t
RankTask::screenRowBytes() const
{
    return ceilDiv(reduced * weightBits(quant), 8);
}

EnmcRank::EnmcRank(const EnmcConfig &cfg, const dram::Organization &org,
                   const dram::Timing &timing)
    : cfg_(cfg), org_(org),
      screen_weight_sram_("screener.weight", cfg.screen_weight_buf),
      screen_psum_sram_("screener.psum", cfg.psum_buf),
      exec_stage_sram_("executor.stage",
                       cfg.exec_weight_buf + cfg.exec_feature_buf),
      output_sram_("output", cfg.output_buf),
      stats_("enmc.rank"),
      stat_instructions_(stats_.addCounter("instructions",
                                           "host instructions executed")),
      stat_generated_(stats_.addCounter(
          "generatedInstructions", "sequencer-generated instructions")),
      stat_candidates_(stats_.addCounter("candidates",
                                         "rows passing the screen filter")),
      stat_screen_bytes_(stats_.addCounter("screenBytes",
                                           "bytes streamed by the screener")),
      stat_exec_bytes_(stats_.addCounter("execBytes",
                                         "bytes streamed by the executor")),
      stat_output_bytes_(stats_.addCounter("outputBytes",
                                           "bytes returned to the host")),
      stat_uncorrectable_(stats_.addCounter(
          "uncorrectableWords", "detected-uncorrectable words consumed")),
      stat_fault_retries_(stats_.addCounter("faultRetries",
                                            "instruction delivery retries")),
      stat_cycles_(stats_.addScalar("cycles", "DDR cycles per program run")),
      stat_screener_util_(stats_.addScalar(
          "screenerUtil", "screener MAC-array busy fraction")),
      stat_executor_util_(stats_.addScalar(
          "executorUtil", "executor MAC-array busy fraction")),
      stats_registration_(stats_)
{
    ENMC_ASSERT(org.channels == 1 && org.ranks == 1,
                "EnmcRank owns exactly one rank");
    dram::ControllerConfig dcfg;
    dram_ = std::make_unique<dram::Controller>(org, timing, dcfg,
                                               "enmc.rank.dram");
}

uint64_t
EnmcRank::statusReg(StatusReg reg) const
{
    return regs_[static_cast<size_t>(reg)];
}

Cycles
EnmcRank::computeCycles(uint64_t macs_needed, uint64_t array_width) const
{
    const Cycles logic = ceilDiv(macs_needed, array_width);
    return crossDomain(logic, cfg_.freq_hz, dram_->channel().timing().freq_hz);
}

void
EnmcRank::reset(const RankTask &task)
{
    std::fill(std::begin(regs_), std::end(regs_), 0);
    fifo_.clear();
    prog_ = nullptr;
    host_pc_ = 0;
    host_stall_ = 0;
    sequencer_active_ = false;
    seq_next_tile_ = 0;
    seq_tiles_ = 0;
    cand_queue_.clear();
    screen_ops_.clear();
    screen_busy_ = 0;
    feature_loaded_ = true;
    synth_cand_accum_ = 0.0;
    exec_ops_.clear();
    exec_busy_ = 0;
    sfu_busy_ = 0;
    return_busy_ = 0;
    softmax_requested_ = false;
    return_requested_ = false;
    return_done_ = false;
    now_ = 0;
    task_ = &task;
    result_ = RankResult{};
    exec_row_scratch_.clear();
    fault_word_seq_ = 0;
    inst_attempts_ = 0;
    // Per-rank ECC statistics surface through the rank's DRAM controller
    // stat group; the functional data path below shares the same injector.
    dram_->attachFaultInjector(task.injector);
    fault_base_ = task.injector ? task.injector->counters()
                                : fault::FaultCounters{};
    ecc_redundancy_base_ = dram_->eccRedundancyReads();
    ecc_decode_base_ = dram_->eccDecodeCyclesCharged();
    screen_weight_sram_.clear();
    screen_psum_sram_.clear();
    exec_stage_sram_.clear();
    output_sram_.clear();
    if (task.functional()) {
        result_.logits.assign(task.batch,
                              tensor::Vector(task.categories, 0.0f));
        result_.candidate_ids.assign(task.batch, {});
    }
}

void
EnmcRank::sequencerTick()
{
    if (!sequencer_active_)
        return;
    // One generated tile per cycle, bounded by the prefetch window.
    if (startTileOp(seq_next_tile_, true, true)) {
        result_.generated_instructions += 3; // LDR + MUL_ADD + FILTER
        if (++seq_next_tile_ == seq_tiles_)
            sequencer_active_ = false;
    }
}

bool
EnmcRank::faulty() const
{
    return task_ != nullptr && task_->injector != nullptr &&
           task_->injector->enabled();
}

uint64_t
EnmcRank::faultReadBuffer(std::span<uint8_t> bytes, fault::Protection cls)
{
    const RankTask &task = *task_;
    const uint64_t words = ceilDiv(bytes.size(), 8);
    uint64_t unc = 0;
    if (task.injector->config().rankStuck(task.rank_index)) {
        // A stuck rank returns garbage on every burst; ECC flags the
        // whole buffer and it arrives as an erasure.
        std::fill(bytes.begin(), bytes.end(), uint8_t{0});
        task.injector->counters().stuck_reads += words;
        unc = words;
    } else {
        unc = task.injector->readBuffer(bytes, fault_word_seq_, cls);
    }
    fault_word_seq_ += words;
    result_.uncorrectable_words += unc;
    if (cls == fault::Protection::Weak)
        result_.uncorrectable_weak_words += unc;
    else if (cls == fault::Protection::Strong)
        result_.uncorrectable_strong_words += unc;
    return unc;
}

bool
EnmcRank::instructionDelivered()
{
    // PRE-tunneled instructions carry C/A parity: a dropped or corrupted
    // word both manifest as a failed delivery the host repeats next
    // cycle. Each attempt draws a fresh sample, so retries converge.
    if (!faulty())
        return true;
    return task_->injector->instructionFate(inst_attempts_++) ==
           fault::FaultInjector::InstFate::Deliver;
}

void
EnmcRank::hostIssue(const Program &prog)
{
    // The host memory controller issues at most one PRECHARGE-tunneled
    // instruction per command cycle; payload-carrying instructions occupy
    // the DQ bus for a burst (tbl cycles) before the next can issue.
    if (host_stall_ > 0) {
        --host_stall_;
        return;
    }
    if (host_pc_ >= prog.size() || fifo_.size() >= cfg_.inst_fifo_depth)
        return;
    if (!instructionDelivered())
        return; // delivery failed; the host re-sends next cycle
    const Instruction &inst = prog[host_pc_++];
    if (inst.has_payload)
        host_stall_ = dram_->channel().timing().tbl;
    fifo_.push_back(inst);
}

uint64_t
EnmcRank::activeTiles() const
{
    uint64_t active = 0;
    for (const auto &op : screen_ops_)
        if (!op.compute_done)
            ++active;
    return active;
}

bool
EnmcRank::startTileOp(uint64_t tile, bool compute, bool filter)
{
    const RankTask &task = *task_;
    if (activeTiles() >= cfg_.prefetch_tiles)
        return false;
    const uint64_t tile_rows = statusReg(StatusReg::TileRows);
    ENMC_ASSERT(tile_rows > 0, "TileRows register not initialized");
    TileOp op;
    op.tile = tile;
    op.rows = std::min<uint64_t>(tile_rows,
                                 task.categories - tile * tile_rows);
    op.compute_requested = compute;
    op.filter_requested = filter;
    uint64_t bytes = op.rows * task.screenRowBytes();
    // If the batched projected features exceed the feature buffer, they
    // are re-streamed alongside every tile (k-chunked MACs).
    const uint64_t feat_bytes =
        ceilDiv(task.batch * task.reduced * weightBits(task.quant), 8);
    if (feat_bytes > cfg_.screen_feature_buf)
        bytes += feat_bytes;
    // Screener tiles are the weak-or-no-ECC path: an INT4 weight flip
    // only perturbs approximate logits, and surviving candidates are
    // recomputed exactly by the executor.
    op.load.start(task.screen_weight_base +
                      tile * tile_rows * task.screenRowBytes(),
                  bytes, dram::ReqType::Read, 64,
                  fault::Protection::Weak);
    op.load_started = true;
    result_.screen_bytes += bytes;
    screen_ops_.push_back(std::move(op));
    return true;
}

bool
EnmcRank::dispatchOne(const Instruction &inst)
{
    const RankTask &task = *task_;
    switch (inst.op) {
      case Opcode::Reg:
        if (inst.reg_write)
            regs_[static_cast<size_t>(inst.reg)] = inst.payload;
        return true;
      case Opcode::Ldr: {
        if (inst.buf0 == BufferId::ScreenFeature) {
            const uint64_t bytes =
                ceilDiv(task.batch * task.reduced * weightBits(task.quant),
                        8);
            feature_load_.start(inst.payload, bytes, dram::ReqType::Read,
                                64, fault::Protection::Weak);
            feature_loaded_ = false;
            result_.screen_bytes += bytes;
            return true;
        }
        if (inst.buf0 == BufferId::ScreenWeight) {
            const uint64_t tile_rows = statusReg(StatusReg::TileRows);
            ENMC_ASSERT(tile_rows > 0, "TileRows register not initialized");
            const uint64_t tile_bytes = tile_rows * task.screenRowBytes();
            const uint64_t tile =
                (inst.payload - task.screen_weight_base) / tile_bytes;
            return startTileOp(tile, false, false);
        }
        ENMC_PANIC("LDR to unsupported buffer ", bufferName(inst.buf0));
      }
      case Opcode::MulAddInt4: {
        if (regs_[static_cast<size_t>(StatusReg::Mode)] &
            kModeHwTileSequencer) {
            // The instruction generator expands the whole screening loop.
            const uint64_t tile_rows = statusReg(StatusReg::TileRows);
            ENMC_ASSERT(tile_rows > 0, "TileRows register not initialized");
            sequencer_active_ = true;
            seq_next_tile_ = 0;
            seq_tiles_ = ceilDiv(task.categories, tile_rows);
            return true;
        }
        for (auto &op : screen_ops_) {
            if (!op.compute_requested) {
                op.compute_requested = true;
                return true;
            }
        }
        return false; // no tile pending: wait for its LDR
      }
      case Opcode::Filter: {
        for (auto &op : screen_ops_) {
            if (!op.filter_requested) {
                op.filter_requested = true;
                return true;
            }
        }
        return false;
      }
      case Opcode::Barrier:
        return allUnitsIdle();
      case Opcode::Softmax:
      case Opcode::Sigmoid: {
        // Exp-accumulation over streamed approximate logits overlaps
        // screening; the non-overlapped epilogue is exp+div over the
        // candidate set.
        softmax_requested_ = true;
        sfu_busy_ = crossDomain(
            2 * ceilDiv(std::max<uint64_t>(result_.candidates, 1),
                        cfg_.sfu_lanes),
            cfg_.freq_hz, dram_->channel().timing().freq_hz);
        return true;
      }
      case Opcode::Return: {
        return_requested_ = true;
        // Per item: one 8B partial normalizer + (index, value) pairs.
        result_.output_bytes =
            task.batch * 8 + result_.candidates * 8;
        const uint64_t lines =
            ceilDiv(result_.output_bytes, org_.accessBytes());
        return_busy_ = lines * dram_->channel().timing().tbl;
        return true;
      }
      case Opcode::Clr:
        // Buffers/registers cleared; pipeline state must already be idle.
        ENMC_ASSERT(allUnitsIdle(), "CLR with busy units");
        std::fill(std::begin(regs_), std::end(regs_), 0);
        return true;
      case Opcode::Nop:
        return true;
      case Opcode::Move:
      case Opcode::Str:
        // Buffer-to-buffer / buffer-to-DRAM moves take one logic cycle
        // plus the DMA for STR; used by diagnostics, not the main loop.
        if (inst.op == Opcode::Str) {
            const uint64_t bytes = cfg_.psum_buf;
            dram::Request req;
            req.addr = inst.payload;
            req.type = dram::ReqType::Write;
            dram_->enqueue(std::move(req));
            result_.output_bytes += bytes;
        }
        return true;
      case Opcode::AddInt4:
      case Opcode::MulInt4:
        screen_busy_ += computeCycles(cfg_.int4_macs, cfg_.int4_macs);
        return true;
      case Opcode::AddFp32:
      case Opcode::MulFp32:
      case Opcode::MulAddFp32:
        exec_busy_ += computeCycles(cfg_.fp32_macs, cfg_.fp32_macs);
        return true;
    }
    ENMC_PANIC("unhandled opcode in dispatch");
}

void
EnmcRank::dispatch()
{
    if (fifo_.empty())
        return;
    if (dispatchOne(fifo_.front())) {
        ++result_.instructions;
        fifo_.pop_front();
    }
}

void
EnmcRank::filterTileFunctional(const TileOp &op)
{
    const RankTask &task = *task_;
    const uint64_t tile_rows = statusReg(StatusReg::TileRows);
    const uint64_t row0 = op.tile * tile_rows;

    // With a fault injector armed, the tile's weights pass through the
    // fault + ECC model once per DRAM fetch (they are read once and reused
    // across the batch). Detected-uncorrectable words arrive as erasures
    // (zeroed), so a detected fault perturbs its rows' approximate logits
    // instead of poisoning them with garbage.
    tensor::QuantizedMatrix scratch;
    const tensor::QuantizedMatrix *weights = task.screen_weights;
    if (faulty()) {
        const size_t cols = task.screen_weights->cols;
        scratch.rows = op.rows;
        scratch.cols = cols;
        scratch.bits = task.screen_weights->bits;
        const auto first = task.screen_weights->values.begin() + row0 * cols;
        scratch.values.assign(first, first + op.rows * cols);
        const auto sfirst = task.screen_weights->scales.begin() + row0;
        scratch.scales.assign(sfirst, sfirst + op.rows);
        scratch.scheme = task.screen_weights->scheme;
        if (scratch.scheme == tensor::QuantScheme::Asymmetric) {
            const auto zfirst =
                task.screen_weights->zero_points.begin() + row0;
            scratch.zero_points.assign(zfirst, zfirst + op.rows);
        }
        faultReadBuffer({reinterpret_cast<uint8_t *>(scratch.values.data()),
                         scratch.values.size()},
                        fault::Protection::Weak);
        // Sub-byte weights are stored packed in DRAM but sign-extended
        // into int8 scratch lanes here, so a raw storage flip must fold
        // back into the narrow two's-complement domain: a real packed
        // nibble can be perturbed by at most its own width (e.g. +-8
        // for INT4), never by a full int8 high bit. Folding is the
        // identity for clean lanes and maps the byte-domain flip rate
        // onto exactly the packed-domain rate (high-lane flips model
        // bits the packed layout does not store).
        const int width = tensor::quantBitCount(scratch.bits);
        if (width > 0 && width < 8) {
            const int mask = (1 << width) - 1;
            if (scratch.scheme == tensor::QuantScheme::Asymmetric) {
                // Asymmetric codes are unsigned levels in [0, 2^w - 1];
                // fold flips back into that domain without sign-extending.
                for (int8_t &v : scratch.values)
                    v = static_cast<int8_t>(v & mask);
            } else {
                const int sign = 1 << (width - 1);
                for (int8_t &v : scratch.values)
                    v = static_cast<int8_t>(((v & mask) ^ sign) - sign);
            }
        }
        weights = &scratch;
    }

    for (uint64_t item = 0; item < task.batch; ++item) {
        const auto &yq = task.features_q[item];
        auto &logits = result_.logits[item];
        // SIMD integer MAC; bit-exact vs. the reference int64 loop on
        // every dispatch target.
        if (weights == task.screen_weights) {
            tensor::gemvQuantizedRows(*task.screen_weights, yq.values,
                                      yq.scale, *task.screen_bias, logits,
                                      row0, row0 + op.rows);
        } else {
            // Scratch tile: rows are tile-local, so index the bias/logit
            // spans from row0 and compute rows [0, op.rows).
            tensor::gemvQuantizedRows(
                *weights, yq.values, yq.scale,
                std::span<const float>(task.screen_bias->data() + row0,
                                       op.rows),
                std::span<float>(logits.data() + row0, op.rows), 0, op.rows);
        }
        for (uint64_t r = row0; r < row0 + op.rows; ++r)
            if (logits[r] >= task.threshold)
                emitCandidate(item, r);
    }
}

void
EnmcRank::filterTileSynthetic(const TileOp &op)
{
    const RankTask &task = *task_;
    // Spread the expected candidate count uniformly over tiles; the
    // accumulator keeps the long-run rate exact.
    synth_cand_accum_ +=
        static_cast<double>(task.expected_candidates) * task.batch *
        static_cast<double>(op.rows) / static_cast<double>(task.categories);
    while (synth_cand_accum_ >= 1.0) {
        synth_cand_accum_ -= 1.0;
        const uint64_t item = result_.candidates % task.batch;
        const uint64_t tile_rows = statusReg(StatusReg::TileRows);
        emitCandidate(item, op.tile * tile_rows);
    }
}

void
EnmcRank::emitCandidate(uint64_t item, uint64_t row)
{
    cand_queue_.emplace_back(item, row);
    ++result_.candidates;
    regs_[static_cast<size_t>(StatusReg::CandidateCount)] =
        result_.candidates;
    if (task_->functional())
        result_.candidate_ids[item].push_back(static_cast<uint32_t>(row));
}

void
EnmcRank::screenerTick()
{
    if (!feature_loaded_) {
        feature_load_.pump(*dram_);
        if (feature_load_.done())
            feature_loaded_ = true;
    }
    // Pump in-flight tile loads up to the prefetch window.
    uint64_t pumped = 0;
    for (auto &op : screen_ops_) {
        if (op.load_started && !op.load.done()) {
            op.load.pump(*dram_);
            if (++pumped >= cfg_.prefetch_tiles)
                break;
        }
    }
    // MAC array.
    if (screen_busy_ > 0) {
        --screen_busy_;
        ++result_.screener_busy;
        if (screen_busy_ == 0) {
            for (auto &op : screen_ops_) {
                if (op.compute_started && !op.compute_done) {
                    op.compute_done = true;
                    break;
                }
            }
        }
    }
    if (screen_busy_ == 0 && feature_loaded_) {
        for (auto &op : screen_ops_) {
            if (op.compute_requested && !op.compute_started &&
                op.load.done()) {
                const RankTask &task = *task_;
                // Consume one ping/pong half of the weight buffer and a
                // psum slot per (row, item) until the filter drains it.
                const uint64_t half = cfg_.screen_weight_buf / 2;
                const uint64_t psum = op.rows * task.batch * 4;
                if (!screen_weight_sram_.fits(half) ||
                    !screen_psum_sram_.fits(psum)) {
                    break; // wait for the filter to free space
                }
                screen_weight_sram_.reserve(half);
                screen_psum_sram_.reserve(psum);
                op.weight_reserved = half;
                op.psum_reserved = psum;
                op.compute_started = true;
                const uint64_t macs_per_row =
                    ceilDiv(task.reduced, cfg_.int4_macs);
                screen_busy_ = crossDomain(
                    op.rows * task.batch * macs_per_row, cfg_.freq_hz,
                    dram_->channel().timing().freq_hz);
                screen_busy_ = std::max<Cycles>(screen_busy_, 1);
                break;
            }
            if (!op.compute_done)
                break; // in-order execution
        }
    }
    // Threshold filter: one comparator-array pass per finished tile.
    if (!screen_ops_.empty()) {
        TileOp &front = screen_ops_.front();
        if (front.compute_done && front.filter_requested) {
            if (task_->functional())
                filterTileFunctional(front);
            else
                filterTileSynthetic(front);
            screen_weight_sram_.release(front.weight_reserved);
            screen_psum_sram_.release(front.psum_reserved);
            screen_ops_.pop_front();
        }
    }
}

void
EnmcRank::generatorTick()
{
    // The instruction generator turns one candidate into the Executor's
    // (LDR row; MUL_ADD_FP32) pair per cycle, bounded by a small queue.
    if (cand_queue_.empty() || exec_ops_.size() >= 8)
        return;
    const auto [item, row] = cand_queue_.front();
    cand_queue_.pop_front();
    CandOp op;
    op.item = item;
    op.row = row;
    exec_ops_.push_back(std::move(op));
    result_.generated_instructions += 2;
}

void
EnmcRank::executorTick()
{
    const RankTask &task = *task_;
    // The hidden vector h (d * 4 bytes) never fits the 256B feature
    // buffer, so each candidate streams its weight row *and* the feature
    // in alternating 256B chunks (the feature chunks come from an open
    // DRAM row and interleave with the row fetch). One CandOp's load is
    // therefore 2 * d * 4 bytes.

    // Pump in-flight loads and start new ones (double buffering).
    uint64_t inflight = 0;
    for (auto &op : exec_ops_) {
        if (op.load_started && !op.load.done()) {
            op.load.pump(*dram_);
            ++inflight;
        }
    }
    for (auto &op : exec_ops_) {
        if (inflight >= 2)
            break;
        if (!op.load_started) {
            // Stage into one ping/pong half of the executor buffers.
            const uint64_t half =
                (cfg_.exec_weight_buf + cfg_.exec_feature_buf) / 2;
            if (!exec_stage_sram_.fits(half))
                break;
            exec_stage_sram_.reserve(half);
            op.stage_reserved = half;
            const uint64_t bytes = 2 * task.classRowBytes();
            // FP32 executor rows keep strong protection: a silent flip
            // here corrupts the accurate logit with no recovery path.
            op.load.start(task.class_weight_base +
                              op.row * task.classRowBytes(),
                          bytes, dram::ReqType::Read, 64,
                          fault::Protection::Strong);
            op.load_started = true;
            result_.exec_bytes += bytes;
            ++inflight;
        }
    }

    // FP32 MAC array.
    if (exec_busy_ > 0) {
        --exec_busy_;
        ++result_.executor_busy;
        if (exec_busy_ == 0 && !exec_ops_.empty() &&
            exec_ops_.front().compute_started) {
            const CandOp &op = exec_ops_.front();
            if (task.functional()) {
                const auto row = task.class_weights->row(op.row);
                if (faulty()) {
                    // The FP32 row streams through the fault + ECC model.
                    // Detected-uncorrectable words come back zeroed —
                    // known-location erasures — so the dot product below
                    // is the erasure-masked accurate logit: only the
                    // erased lanes' contribution is lost. That bound
                    // holds no matter how the weak (screener) path is
                    // protected, unlike falling back to the stored
                    // approximate logit, which may be silent garbage
                    // when the screener runs unprotected. The resilience
                    // layer can still retry the slice for a clean read.
                    exec_row_scratch_.assign(row.begin(), row.end());
                    const uint64_t unc = faultReadBuffer(
                        {reinterpret_cast<uint8_t *>(
                             exec_row_scratch_.data()),
                         exec_row_scratch_.size() * sizeof(float)},
                        fault::Protection::Strong);
                    if (unc > 0)
                        ++result_.degraded_candidates;
                    result_.logits[op.item][op.row] =
                        tensor::dot(exec_row_scratch_,
                                    task.features[op.item]) +
                        (*task.class_bias)[op.row];
                } else {
                    const float logit =
                        tensor::dot(row, task.features[op.item]) +
                        (*task.class_bias)[op.row];
                    result_.logits[op.item][op.row] = logit;
                }
            }
            exec_stage_sram_.release(op.stage_reserved);
            // Each accurate candidate parks an (index, value) entry in
            // the output buffer until the asynchronous drain ships it.
            output_sram_.reserve(8);
            exec_ops_.pop_front();
        }
    }
    if (exec_busy_ == 0 && !exec_ops_.empty()) {
        CandOp &front = exec_ops_.front();
        if (!front.compute_started && front.load.done()) {
            front.compute_started = true;
            exec_busy_ = computeCycles(task.hidden, cfg_.fp32_macs);
            exec_busy_ = std::max<Cycles>(exec_busy_, 1);
        }
    }
}

void
EnmcRank::sfuAndReturnTick()
{
    // Asynchronous output drain: the output buffer streams results back
    // to the host as they are produced (16 B per command cycle, half the
    // DQ rate — the other half carries host traffic).
    if (output_sram_.occupied() > 0)
        output_sram_.release(std::min<uint64_t>(output_sram_.occupied(), 16));

    if (sfu_busy_ > 0) {
        --sfu_busy_;
        return;
    }
    if (return_requested_ && !return_done_) {
        if (return_busy_ > 0)
            --return_busy_;
        if (return_busy_ == 0)
            return_done_ = true;
    }
}

bool
EnmcRank::allUnitsIdle() const
{
    return !sequencer_active_ && screen_ops_.empty() && exec_ops_.empty() &&
           cand_queue_.empty() && screen_busy_ == 0 && exec_busy_ == 0 &&
           feature_loaded_;
}

void
EnmcRank::start(const Program &prog, const RankTask &task)
{
    reset(task);
    ENMC_ASSERT(!task.functional() ||
                    (task.features_q.size() == task.batch &&
                     task.features.size() == task.batch),
                "functional task needs per-item features");
    prog_ = &prog;
}

void
EnmcRank::tick()
{
    ++now_;
    dram_->tick();
    dispatch();
    screenerTick();
    executorTick();
    sequencerTick();
    generatorTick();
    sfuAndReturnTick();

    // Status register (read by host QUERY polls, Fig. 10):
    // bit 0 = any unit busy, bit 1 = RETURN still draining.
    uint64_t status = 0;
    if (!allUnitsIdle() || sfu_busy_ > 0)
        status |= 1;
    if (return_requested_ && !return_done_)
        status |= 2;
    regs_[static_cast<size_t>(StatusReg::Status)] = status;
}

bool
EnmcRank::injectHostRequest(dram::Request req)
{
    return dram_->enqueue(std::move(req));
}

const Instruction *
EnmcRank::pendingInstruction() const
{
    ENMC_ASSERT(prog_ != nullptr, "rank not started");
    return host_pc_ < prog_->size() ? &(*prog_)[host_pc_] : nullptr;
}

bool
EnmcRank::tryDeliverInstruction()
{
    ENMC_ASSERT(prog_ != nullptr, "rank not started");
    if (host_pc_ >= prog_->size() || fifo_.size() >= cfg_.inst_fifo_depth)
        return false;
    if (!instructionDelivered())
        return false; // C/A fault: the caller's arbitration loop retries
    fifo_.push_back((*prog_)[host_pc_++]);
    return true;
}

bool
EnmcRank::injectInstruction(const Instruction &inst)
{
    if (fifo_.size() >= cfg_.inst_fifo_depth)
        return false;
    fifo_.push_back(inst);
    return true;
}

bool
EnmcRank::done() const
{
    if (prog_ == nullptr)
        return true;
    const bool host_done = host_pc_ >= prog_->size() && fifo_.empty();
    return host_done && allUnitsIdle() && sfu_busy_ == 0 &&
           (!return_requested_ || return_done_) && dram_->idle();
}

RankResult
EnmcRank::takeResult()
{
    ENMC_ASSERT(done(), "takeResult() before the program finished");
    result_.cycles = now_;
    result_.dram_reads = dram_->channel().commandCount(dram::Cmd::Rd);
    result_.dram_writes = dram_->channel().commandCount(dram::Cmd::Wr);
    result_.dram_acts = dram_->channel().commandCount(dram::Cmd::Act);
    result_.dram_refs = dram_->channel().commandCount(dram::Cmd::Ref);
    result_.peak_weight_buf = screen_weight_sram_.peak();
    result_.peak_psum_buf = screen_psum_sram_.peak();
    result_.peak_exec_buf = exec_stage_sram_.peak();
    result_.peak_output_buf = output_sram_.peak();
    if (task_->injector != nullptr) {
        result_.faults = task_->injector->counters();
        result_.faults -= fault_base_; // delta for shared streams
    }
    result_.ecc_redundancy_reads =
        dram_->eccRedundancyReads() - ecc_redundancy_base_;
    result_.ecc_decode_cycles =
        dram_->eccDecodeCyclesCharged() - ecc_decode_base_;
    regs_[static_cast<size_t>(StatusReg::InstCount)] = result_.instructions;

    stat_instructions_ += result_.instructions;
    stat_generated_ += result_.generated_instructions;
    stat_candidates_ += result_.candidates;
    stat_screen_bytes_ += result_.screen_bytes;
    stat_exec_bytes_ += result_.exec_bytes;
    stat_output_bytes_ += result_.output_bytes;
    stat_uncorrectable_ += result_.uncorrectable_words;
    stat_fault_retries_ += result_.fault_retries;
    stat_cycles_.sample(static_cast<double>(result_.cycles));
    if (result_.cycles > 0) {
        stat_screener_util_.sample(
            static_cast<double>(result_.screener_busy) / result_.cycles);
        stat_executor_util_.sample(
            static_cast<double>(result_.executor_busy) / result_.cycles);
    }
    return std::move(result_);
}

RankResult
EnmcRank::run(const Program &prog, const RankTask &task, Cycles max_cycles)
{
    start(prog, task);
    while (!done()) {
        if (now_ > max_cycles)
            ENMC_PANIC("ENMC rank watchdog: program did not finish");
        // Internal host model: the rank owns the whole C/A bus.
        hostIssue(prog);
        tick();
    }
    return takeResult();
}

} // namespace enmc::arch
