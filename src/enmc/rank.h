/**
 * @file
 * Cycle-level model of one ENMC rank (paper Fig. 7).
 *
 * The rank couples an ENMC controller (status registers, instruction FIFO,
 * decoder, instruction generator), a simplified per-rank DRAM controller
 * (the cycle-accurate dram::Controller over a single-rank organization),
 * a Screener unit (INT4 MAC array + threshold filter) and an Executor
 * unit (FP32 MAC array + special-function unit). The Screener and the
 * Executor run in parallel and contend for the rank's DRAM bandwidth
 * through the shared controller — the dual-module feature the paper's
 * speedups come from.
 *
 * The same instruction stream drives both timing and functional
 * execution; with tensor payloads attached to the task, the rank's
 * numeric output bit-matches the reference screening pipeline.
 */

#ifndef ENMC_ENMC_RANK_H
#define ENMC_ENMC_RANK_H

#include <deque>
#include <memory>
#include <optional>

#include "common/stats.h"
#include "dram/controller.h"
#include "dram/stream.h"
#include "enmc/buffers.h"
#include "enmc/config.h"
#include "enmc/isa.h"
#include "enmc/task.h"
#include "obs/registry.h"

namespace enmc::arch {

/** One ENMC rank: controller + DRAM controller + Screener + Executor. */
class EnmcRank
{
  public:
    /**
     * @param cfg ENMC logic configuration (Table 3).
     * @param org Single-rank DRAM organization (ranks must be 1).
     * @param timing DDR timing (Table 3).
     */
    EnmcRank(const EnmcConfig &cfg, const dram::Organization &org,
             const dram::Timing &timing);

    /**
     * Execute a host program against a task. Runs to completion and
     * returns results + statistics.
     *
     * @param prog Instruction stream as issued by the host compiler.
     * @param task Work descriptor (see RankTask).
     * @param max_cycles Watchdog bound.
     */
    RankResult run(const Program &prog, const RankTask &task,
                   Cycles max_cycles = 2'000'000'000ull);

    // ---- tick-level interface (multi-rank channel simulation) ----

    /**
     * Arm the rank with a program + task without running it. Afterwards
     * call tick() once per DDR command cycle until done(); instruction
     * delivery is the caller's job via tryDeliverInstruction() (the
     * shared channel C/A bus arbitrates between ranks).
     */
    void start(const Program &prog, const RankTask &task);

    /** Advance one DDR command-clock cycle (dram + all units). */
    void tick();

    /** Next host instruction to deliver, or null when all delivered. */
    const Instruction *pendingInstruction() const;

    /**
     * Deliver the pending instruction into the controller FIFO.
     * @return false if the FIFO is full (retry later).
     */
    bool tryDeliverInstruction();

    /**
     * Inject an out-of-band instruction (e.g. a host QUERY poll, Fig. 10)
     * ahead of program delivery. @return false if the FIFO is full.
     */
    bool injectInstruction(const Instruction &inst);

    /** Program fully executed and every unit drained? */
    bool done() const;

    /** Results of a finished tick-level run (valid once done()). */
    RankResult takeResult();

    /**
     * Inject a regular host memory request into this rank ("our ENMC
     * DIMM can also support regular memory requests"): it contends with
     * the Screener/Executor traffic in the rank's DRAM controller.
     * @return false if the request queue is full.
     */
    bool injectHostRequest(dram::Request req);

    /** Read a status register (QUERY path, also used by tests). */
    uint64_t statusReg(StatusReg reg) const;

    const dram::Controller &dramController() const { return *dram_; }

  private:
    // ---- screener pipeline ----
    struct TileOp
    {
        uint64_t tile = 0;           //!< tile index
        uint64_t rows = 0;           //!< rows in this tile
        dram::StreamTransfer load;
        bool load_started = false;
        bool compute_requested = false;
        bool compute_started = false;
        bool compute_done = false;
        bool filter_requested = false;
        uint64_t weight_reserved = 0; //!< SRAM bytes held while computing
        uint64_t psum_reserved = 0;
    };

    // ---- executor pipeline ----
    struct CandOp
    {
        uint64_t item = 0;           //!< batch item
        uint64_t row = 0;            //!< slice-local category row
        dram::StreamTransfer load;
        bool load_started = false;
        bool compute_started = false;
        uint64_t stage_reserved = 0; //!< SRAM bytes held while staged
    };

    void reset(const RankTask &task);
    void hostIssue(const Program &prog);
    void dispatch();
    bool dispatchOne(const Instruction &inst);
    void screenerTick();
    void executorTick();
    void generatorTick();
    void sfuAndReturnTick();
    bool allUnitsIdle() const;

    /** Functional: screen one tile, returning per-item candidates. */
    void filterTileFunctional(const TileOp &op);
    /** Timing-only: synthesize the tile's candidate count. */
    void filterTileSynthetic(const TileOp &op);
    void emitCandidate(uint64_t item, uint64_t row);

    /**
     * Pass a functional read buffer through the task's fault + ECC model
     * (erasing detected-uncorrectable words) under the ECC scheme of
     * protection class `cls`. Requires task_->injector.
     * @return number of detected-uncorrectable words.
     */
    uint64_t faultReadBuffer(std::span<uint8_t> bytes,
                             fault::Protection cls);
    /** True when this task reads through an active fault injector. */
    bool faulty() const;
    /** One instruction-delivery attempt through the C/A fault model. */
    bool instructionDelivered();

    Cycles computeCycles(uint64_t macs_needed, uint64_t array_width) const;

    EnmcConfig cfg_;
    dram::Organization org_;
    std::unique_ptr<dram::Controller> dram_;

    /** Hardware tile sequencer: emit the next tile's ops internally. */
    void sequencerTick();

    /** Tiles in the screener pipeline that are not fully computed. */
    uint64_t activeTiles() const;

    /**
     * Begin fetching screening tile `tile`; optionally pre-arm its
     * compute/filter steps (the sequencer path arms both).
     * @return false when the prefetch window is full.
     */
    bool startTileOp(uint64_t tile, bool compute, bool filter);

    // controller state
    uint64_t regs_[static_cast<size_t>(StatusReg::NumRegs)] = {};
    std::deque<Instruction> fifo_;
    const Program *prog_ = nullptr;
    size_t host_pc_ = 0;
    Cycles host_stall_ = 0;          //!< DQ-payload issue cycles
    std::deque<std::pair<uint64_t, uint64_t>> cand_queue_; //!< (item,row)
    // hardware tile sequencer state (Mode register bit 0)
    bool sequencer_active_ = false;
    uint64_t seq_next_tile_ = 0;
    uint64_t seq_tiles_ = 0;

    // screener state
    std::deque<TileOp> screen_ops_;
    Cycles screen_busy_ = 0;
    dram::StreamTransfer feature_load_;
    bool feature_loaded_ = true;
    double synth_cand_accum_ = 0.0;

    // executor state
    std::deque<CandOp> exec_ops_;
    Cycles exec_busy_ = 0;
    tensor::Vector exec_row_scratch_;   //!< faulty-read staging row

    // fault-injection state
    uint64_t fault_word_seq_ = 0;       //!< unique index per data word read
    uint64_t inst_attempts_ = 0;        //!< instruction delivery attempts
    fault::FaultCounters fault_base_;   //!< injector snapshot at reset()
    uint64_t ecc_redundancy_base_ = 0;  //!< dram counter snapshot at reset()
    uint64_t ecc_decode_base_ = 0;      //!< dram counter snapshot at reset()

    // SFU / output state
    Cycles sfu_busy_ = 0;
    Cycles return_busy_ = 0;
    bool softmax_requested_ = false;
    bool return_requested_ = false;
    bool return_done_ = false;

    // On-DIMM SRAM buffers (Table 3 sizes); stages reserve/release as
    // data flows, proving the tiling fits the hardware.
    SramBuffer screen_weight_sram_;
    SramBuffer screen_psum_sram_;
    SramBuffer exec_stage_sram_;
    SramBuffer output_sram_;

    const RankTask *task_ = nullptr;
    RankResult result_;
    Cycles now_ = 0;

    // Observability: per-rank stats, folded into the process-wide
    // "enmc.rank" aggregate when this (usually slice-lived) rank retires.
    StatGroup stats_;
    Counter &stat_instructions_;
    Counter &stat_generated_;
    Counter &stat_candidates_;
    Counter &stat_screen_bytes_;
    Counter &stat_exec_bytes_;
    Counter &stat_output_bytes_;
    Counter &stat_uncorrectable_;
    Counter &stat_fault_retries_;
    ScalarStat &stat_cycles_;
    ScalarStat &stat_screener_util_;
    ScalarStat &stat_executor_util_;
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::arch

#endif // ENMC_ENMC_RANK_H
