/**
 * @file
 * Schema-versioned JSON metrics export.
 *
 * Every tool and bench shares one document format:
 *
 *     {
 *       "schema": "enmc.metrics",
 *       "schema_version": 1,
 *       "tool": "enmc_sim",
 *       "groups": {
 *         "dram.ctrl": {
 *           "counters": {"reads": {"value": N, "desc": "..."}, ...},
 *           "scalars":  {"queueDepth": {"count":, "sum":, "min":,
 *                                        "max":, "mean":, "desc":}, ...},
 *           "histograms": {"readLatency": {"lo":, "hi":, "bins": [...],
 *                                          "underflow":, "overflow":,
 *                                          "total":, "desc":}, ...}
 *         }, ...
 *       },
 *       "traceEvents": [...]   // Chrome trace_event spans (may be empty)
 *     }
 *
 * `traceEvents` lives at the top level so the metrics file itself loads
 * directly in chrome://tracing / Perfetto.
 *
 * Command-line/environment convention (parsed by `initMetrics`):
 *   --metrics-json=PATH   or  ENMC_METRICS_JSON=PATH
 *   --trace-json=PATH     or  ENMC_TRACE_JSON=PATH
 * Either one switches the tracer on; when only `--trace-json=` is given,
 * a bare `{"traceEvents": [...]}` file is written instead.
 */

#ifndef ENMC_OBS_METRICS_H
#define ENMC_OBS_METRICS_H

#include <string>

#include "obs/json.h"

namespace enmc::obs {

inline constexpr int kMetricsSchemaVersion = 1;
inline constexpr const char *kMetricsSchemaName = "enmc.metrics";

struct MetricsOptions
{
    std::string metrics_path; //!< empty = no metrics document requested
    std::string trace_path;   //!< empty = no standalone trace requested
    std::string tool;         //!< stamped into the document's "tool" field

    bool requested() const
    {
        return !metrics_path.empty() || !trace_path.empty();
    }
};

/**
 * Scan argv for `--metrics-json=` / `--trace-json=` (falling back to the
 * ENMC_METRICS_JSON / ENMC_TRACE_JSON environment variables) and enable
 * the tracer when either is present. Does not consume argv entries; the
 * caller's own parser should skip these flags.
 */
MetricsOptions initMetrics(int argc, char **argv, const std::string &tool);

/**
 * Build the full metrics document from the current StatRegistry snapshot
 * and the tracer's recorded events.
 */
Json metricsDocument(const std::string &tool);

/**
 * Write the metrics document and/or standalone trace file per `opts`.
 * No-op when neither path is set.
 */
void writeMetrics(const MetricsOptions &opts);

} // namespace enmc::obs

#endif // ENMC_OBS_METRICS_H
