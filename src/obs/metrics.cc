#include "obs/metrics.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace enmc::obs {

namespace {

std::string
flagValue(int argc, char **argv, const char *prefix)
{
    const size_t len = std::strlen(prefix);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix, len) == 0)
            return argv[i] + len;
    }
    return {};
}

std::string
envValue(const char *name)
{
    const char *v = std::getenv(name);
    return v ? v : "";
}

Json
groupJson(const StatGroup &g)
{
    Json out = Json::object();

    Json counters = Json::object();
    for (const auto &[name, c] : g.counters()) {
        Json j = Json::object();
        j.set("value", c.value.value());
        j.set("desc", c.desc);
        counters.set(name, std::move(j));
    }
    out.set("counters", std::move(counters));

    Json scalars = Json::object();
    for (const auto &[name, s] : g.scalars()) {
        Json j = Json::object();
        j.set("count", s.value.count());
        j.set("sum", s.value.sum());
        j.set("min", s.value.min());
        j.set("max", s.value.max());
        j.set("mean", s.value.mean());
        j.set("desc", s.desc);
        scalars.set(name, std::move(j));
    }
    out.set("scalars", std::move(scalars));

    Json histograms = Json::object();
    for (const auto &[name, h] : g.histograms()) {
        Json j = Json::object();
        j.set("lo", h.value.lo());
        j.set("hi", h.value.hi());
        Json bins = Json::array();
        for (size_t i = 0; i < h.value.numBins(); ++i)
            bins.push(Json(h.value.bin(i)));
        j.set("bins", std::move(bins));
        j.set("underflow", h.value.underflow());
        j.set("overflow", h.value.overflow());
        j.set("total", h.value.total());
        j.set("desc", h.desc);
        histograms.set(name, std::move(j));
    }
    out.set("histograms", std::move(histograms));

    return out;
}

} // namespace

MetricsOptions
initMetrics(int argc, char **argv, const std::string &tool)
{
    MetricsOptions opts;
    opts.tool = tool;
    opts.metrics_path = flagValue(argc, argv, "--metrics-json=");
    if (opts.metrics_path.empty())
        opts.metrics_path = envValue("ENMC_METRICS_JSON");
    opts.trace_path = flagValue(argc, argv, "--trace-json=");
    if (opts.trace_path.empty())
        opts.trace_path = envValue("ENMC_TRACE_JSON");
    if (opts.requested()) {
        Tracer::instance().setEnabled(true);
        // The thread pool sits below the obs layer and cannot
        // self-register; enroll the global pool's group here (once).
        static std::once_flag once;
        std::call_once(once, [] {
            StatRegistry::instance().add(&ThreadPool::global().stats());
        });
    }
    return opts;
}

Json
metricsDocument(const std::string &tool)
{
    Json doc = Json::object();
    doc.set("schema", kMetricsSchemaName);
    doc.set("schema_version", kMetricsSchemaVersion);
    doc.set("tool", tool);

    Json groups = Json::object();
    for (const auto &[name, group] : StatRegistry::instance().snapshot())
        groups.set(name, groupJson(group));
    doc.set("groups", std::move(groups));

    doc.set("traceEvents", Tracer::instance().eventsJson());
    doc.set("displayTimeUnit", "ms");
    return doc;
}

void
writeMetrics(const MetricsOptions &opts)
{
    if (!opts.metrics_path.empty()) {
        const Json doc = metricsDocument(opts.tool);
        std::ofstream os(opts.metrics_path);
        if (!os)
            ENMC_FATAL("cannot open ", opts.metrics_path, " for writing");
        doc.write(os, 2);
        os << "\n";
        if (!os.good())
            ENMC_FATAL("failed writing metrics to ", opts.metrics_path);
    }
    if (!opts.trace_path.empty())
        Tracer::instance().writeTraceFile(opts.trace_path);
}

} // namespace enmc::obs
