/**
 * @file
 * Shared nearest-rank percentile helper.
 *
 * Definition (the classic nearest-rank method): for a sample set of size
 * n sorted ascending, the p-th percentile (p in (0, 1]) is the
 * ceil(p * n)-th smallest sample — the smallest sample whose cumulative
 * relative rank is >= p. This always returns an actual sample (no
 * interpolation), p == 1.0 is the maximum, and the p99 of 100 samples is
 * the 99th smallest — not the 98th, which the hand-rolled
 * `sorted[size_t(p * (n-1))]` snippets this helper replaces computed.
 */

#ifndef ENMC_OBS_PERCENTILES_H
#define ENMC_OBS_PERCENTILES_H

#include <cstddef>
#include <vector>

namespace enmc::obs {

/** An immutable sorted sample set answering percentile queries. */
class Percentiles
{
  public:
    /** Takes (and sorts) the sample set. */
    explicit Percentiles(std::vector<double> samples);

    bool empty() const { return sorted_.empty(); }
    size_t count() const { return sorted_.size(); }

    double min() const;
    double max() const;
    double sum() const { return sum_; }
    double mean() const;

    /** Nearest-rank percentile; p in (0, 1]. Panics on an empty set. */
    double at(double p) const;

  private:
    std::vector<double> sorted_;
    double sum_ = 0.0;
};

/** One-shot nearest-rank percentile of an unsorted sample set. */
double percentile(std::vector<double> samples, double p);

} // namespace enmc::obs

#endif // ENMC_OBS_PERCENTILES_H
