/**
 * @file
 * Minimal JSON value type with a writer and parser — just enough for the
 * observability layer (metrics export, Chrome trace_event emission) and
 * its round-trip tests. No external dependencies; not a general-purpose
 * JSON library (no \u escapes beyond pass-through, numbers are doubles).
 */

#ifndef ENMC_OBS_JSON_H
#define ENMC_OBS_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace enmc::obs {

class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(int64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(uint64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isBool() const { return type_ == Type::Bool; }

    // --- object operations (insertion-ordered for stable output) ---
    /** Set `key` (replacing an existing entry). Panics on non-objects. */
    Json &set(const std::string &key, Json value);
    /** Member lookup; nullptr when missing (or not an object). */
    const Json *find(const std::string &key) const;
    /** Member lookup; panics when missing. */
    const Json &at(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    // --- array operations ---
    Json &push(Json value);
    const Json &at(size_t i) const;
    const std::vector<Json> &items() const { return items_; }

    /** Array/object element count; 0 for scalars. */
    size_t size() const;

    // --- scalar accessors (panic on type mismatch) ---
    double asDouble() const;
    uint64_t asU64() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /**
     * Parse a complete JSON document.
     * @return false (with `err` set when given) on malformed input.
     */
    static bool parse(std::string_view text, Json &out,
                      std::string *err = nullptr);
    /** Parse, panicking on malformed input (tests / trusted input). */
    static Json parseOrDie(std::string_view text);

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;                             //!< Array
    std::vector<std::pair<std::string, Json>> members_;   //!< Object
};

} // namespace enmc::obs

#endif // ENMC_OBS_JSON_H
