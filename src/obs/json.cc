#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace enmc::obs {

Json &
Json::set(const std::string &key, Json value)
{
    ENMC_ASSERT(type_ == Type::Object, "set() on a non-object Json");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (v == nullptr)
        ENMC_PANIC("missing JSON member '", key, "'");
    return *v;
}

Json &
Json::push(Json value)
{
    ENMC_ASSERT(type_ == Type::Array, "push() on a non-array Json");
    items_.push_back(std::move(value));
    return *this;
}

const Json &
Json::at(size_t i) const
{
    ENMC_ASSERT(type_ == Type::Array, "at(index) on a non-array Json");
    ENMC_ASSERT(i < items_.size(), "JSON array index out of range");
    return items_[i];
}

size_t
Json::size() const
{
    if (type_ == Type::Array)
        return items_.size();
    if (type_ == Type::Object)
        return members_.size();
    return 0;
}

double
Json::asDouble() const
{
    ENMC_ASSERT(type_ == Type::Number, "asDouble() on a non-number Json");
    return num_;
}

uint64_t
Json::asU64() const
{
    ENMC_ASSERT(type_ == Type::Number, "asU64() on a non-number Json");
    ENMC_ASSERT(num_ >= 0 && num_ == std::floor(num_),
                "JSON number is not a non-negative integer");
    return static_cast<uint64_t>(num_);
}

bool
Json::asBool() const
{
    ENMC_ASSERT(type_ == Type::Bool, "asBool() on a non-bool Json");
    return bool_;
}

const std::string &
Json::asString() const
{
    ENMC_ASSERT(type_ == Type::String, "asString() on a non-string Json");
    return str_;
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
        os << static_cast<long long>(v);
        return;
    }
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; emit null (parsers reject bare words).
        os << "null";
        return;
    }
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), v);
    ENMC_ASSERT(ec == std::errc(), "number formatting failed");
    os.write(buf, end - buf);
}

} // namespace

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<size_t>(indent) * depth, ' ');
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        writeNumber(os, num_);
        break;
      case Type::String:
        writeEscaped(os, str_);
        break;
      case Type::Array:
        if (items_.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (size_t i = 0; i < items_.size(); ++i) {
            if (indent > 0)
                os << pad;
            items_[i].writeIndented(os, indent, depth + 1);
            if (i + 1 < items_.size())
                os << ',';
            os << nl;
        }
        if (indent > 0)
            os << close_pad;
        os << ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (size_t i = 0; i < members_.size(); ++i) {
            if (indent > 0)
                os << pad;
            writeEscaped(os, members_[i].first);
            os << colon;
            members_[i].second.writeIndented(os, indent, depth + 1);
            if (i + 1 < members_.size())
                os << ',';
            os << nl;
        }
        if (indent > 0)
            os << close_pad;
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream oss;
    write(oss, indent);
    return oss.str();
}

// ------------------------------------------------------------- parser

namespace {

struct Parser
{
    std::string_view text;
    size_t pos = 0;
    std::string error;

    bool fail(const std::string &msg)
    {
        error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Basic-multilingual-plane only; encode as UTF-8.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(value))
                    return false;
                out.set(key, std::move(value));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                Json value;
                if (!parseValue(value))
                    return false;
                out.push(std::move(value));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Json(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Json(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = Json();
            return true;
        }
        // number
        const size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        double v = 0.0;
        const auto res =
            std::from_chars(text.data() + start, text.data() + pos, v);
        if (res.ec != std::errc() || res.ptr != text.data() + pos)
            return fail("malformed number");
        out = Json(v);
        return true;
    }
};

} // namespace

bool
Json::parse(std::string_view text, Json &out, std::string *err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        if (err != nullptr)
            *err = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err != nullptr)
            *err = "trailing characters at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

Json
Json::parseOrDie(std::string_view text)
{
    Json out;
    std::string err;
    if (!parse(text, out, &err))
        ENMC_PANIC("JSON parse error: ", err);
    return out;
}

} // namespace enmc::obs
