#include "obs/percentiles.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace enmc::obs {

Percentiles::Percentiles(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
    for (const double v : sorted_)
        sum_ += v;
}

double
Percentiles::min() const
{
    ENMC_ASSERT(!sorted_.empty(), "percentile of an empty sample set");
    return sorted_.front();
}

double
Percentiles::max() const
{
    ENMC_ASSERT(!sorted_.empty(), "percentile of an empty sample set");
    return sorted_.back();
}

double
Percentiles::mean() const
{
    return sorted_.empty() ? 0.0
                           : sum_ / static_cast<double>(sorted_.size());
}

double
Percentiles::at(double p) const
{
    ENMC_ASSERT(!sorted_.empty(), "percentile of an empty sample set");
    ENMC_ASSERT(p > 0.0 && p <= 1.0, "percentile p must be in (0, 1]");
    const double n = static_cast<double>(sorted_.size());
    // Nearest rank: the ceil(p*n)-th smallest (1-indexed). The epsilon
    // keeps an exact product that floating point computes one ulp high
    // (e.g. 0.99 * 100 -> 99.00000000000001) from rounding up a rank.
    const double raw = std::ceil(p * n - 1e-9);
    size_t rank = raw < 1.0 ? 1 : static_cast<size_t>(raw);
    if (rank > sorted_.size())
        rank = sorted_.size();
    return sorted_[rank - 1];
}

double
percentile(std::vector<double> samples, double p)
{
    return Percentiles(std::move(samples)).at(p);
}

} // namespace enmc::obs
