/**
 * @file
 * Structured tracing in the Chrome `trace_event` JSON format, loadable in
 * chrome://tracing and Perfetto (ui.perfetto.dev).
 *
 * Two timelines ("processes" in the trace model):
 *  - pid 1 (`kWallPid`): host wall-clock spans — what the simulator
 *    process itself spends time on (request pipeline: screen -> slices ->
 *    merge);
 *  - pid 2 (`kSimPid`): the simulated DDR-clock timeline — per-rank
 *    screen/filter/exec busy windows reconstructed from each slice's
 *    RankResult, with the rank id as the track (tid).
 *
 * Tracing is OFF by default and is zero-cost when off: every emission
 * site guards on one relaxed atomic load, and `TraceSpan` records nothing
 * when constructed with the tracer disabled. Benches therefore stay
 * bit-identical unless `--trace-json=` / `--metrics-json=` (or the
 * ENMC_TRACE_JSON / ENMC_METRICS_JSON environment variables) enable it.
 */

#ifndef ENMC_OBS_TRACE_H
#define ENMC_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace enmc::obs {

/** Trace timeline ids (Chrome trace "pid"). */
inline constexpr int kWallPid = 1;  //!< host wall-clock timeline
inline constexpr int kSimPid = 2;   //!< simulated DDR-clock timeline
inline constexpr int kServePid = 3; //!< serving timeline (virtual time)
inline constexpr int kClusterPid = 4; //!< cluster node timeline (tid = node)

class Tracer
{
  public:
    /** A small numeric annotation attached to an event. */
    struct Arg
    {
        const char *key;
        double value;
    };

    static Tracer &instance();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on);

    /** Microseconds since the tracer was (last) enabled. */
    double nowUs() const;

    /** A complete ("X") span at an explicit timestamp/duration. */
    void complete(const char *name, const char *cat, int pid,
                  uint64_t tid, double ts_us, double dur_us,
                  std::initializer_list<Arg> args = {});

    /** An instant ("i") event. */
    void instant(const char *name, const char *cat, int pid, uint64_t tid,
                 double ts_us, std::initializer_list<Arg> args = {});

    size_t eventCount() const;
    void clear();

    /**
     * All recorded events as a Chrome trace_event array, prefixed with
     * process_name metadata for the two timelines.
     */
    Json eventsJson() const;

    /** Write `{"traceEvents": [...]}` to `path` (fatal on I/O error). */
    void writeTraceFile(const std::string &path) const;

  private:
    friend class TraceSpan;

    struct Event
    {
        char ph;             //!< 'X' complete, 'i' instant
        std::string name;
        std::string cat;
        int pid;
        uint64_t tid;
        double ts_us;
        double dur_us;
        std::vector<std::pair<std::string, double>> args;
    };

    Tracer() = default;
    void record(Event e);

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_{};
    mutable std::mutex mutex_;
    std::vector<Event> events_;
};

/**
 * RAII wall-clock span on the `kWallPid` timeline. Captures the start
 * time at construction and emits a complete event at destruction; a
 * no-op (no clock read, no allocation) when the tracer is off.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *cat, uint64_t tid = 0);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric annotation (kept until destruction). */
    void arg(const char *key, double value);

  private:
    const char *name_;
    const char *cat_;
    uint64_t tid_;
    double start_us_ = 0.0;
    bool active_ = false;
    std::vector<Tracer::Arg> args_;
};

} // namespace enmc::obs

#endif // ENMC_OBS_TRACE_H
