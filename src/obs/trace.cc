#include "obs/trace.h"

#include <fstream>

#include "common/logging.h"

namespace enmc::obs {

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool on)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (on && !enabled_.load(std::memory_order_relaxed))
        epoch_ = std::chrono::steady_clock::now();
    enabled_.store(on, std::memory_order_relaxed);
}

double
Tracer::nowUs() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - epoch_).count();
}

void
Tracer::record(Event e)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
}

void
Tracer::complete(const char *name, const char *cat, int pid, uint64_t tid,
                 double ts_us, double dur_us,
                 std::initializer_list<Arg> args)
{
    if (!enabled())
        return;
    Event e{'X', name, cat, pid, tid, ts_us, dur_us, {}};
    for (const Arg &a : args)
        e.args.emplace_back(a.key, a.value);
    record(std::move(e));
}

void
Tracer::instant(const char *name, const char *cat, int pid, uint64_t tid,
                double ts_us, std::initializer_list<Arg> args)
{
    if (!enabled())
        return;
    Event e{'i', name, cat, pid, tid, ts_us, 0.0, {}};
    for (const Arg &a : args)
        e.args.emplace_back(a.key, a.value);
    record(std::move(e));
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

Json
Tracer::eventsJson() const
{
    Json out = Json::array();

    // Name the two timelines so trace viewers label them usefully.
    const std::pair<int, const char *> timelines[] = {
        {kWallPid, "host (wall clock)"},
        {kSimPid, "simulated rank timeline (DDR clock)"},
        {kServePid, "serving timeline (virtual time)"},
        {kClusterPid, "cluster node timeline (tid = node id)"},
    };
    for (const auto &[pid, label] : timelines) {
        Json meta = Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", pid);
        meta.set("tid", uint64_t{0});
        Json args = Json::object();
        args.set("name", label);
        meta.set("args", std::move(args));
        out.push(std::move(meta));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (const Event &e : events_) {
        Json j = Json::object();
        j.set("name", e.name);
        j.set("cat", e.cat);
        j.set("ph", std::string(1, e.ph));
        j.set("pid", e.pid);
        j.set("tid", e.tid);
        j.set("ts", e.ts_us);
        if (e.ph == 'X')
            j.set("dur", e.dur_us);
        if (!e.args.empty()) {
            Json args = Json::object();
            for (const auto &[key, value] : e.args)
                args.set(key, value);
            j.set("args", std::move(args));
        }
        out.push(std::move(j));
    }
    return out;
}

void
Tracer::writeTraceFile(const std::string &path) const
{
    Json doc = Json::object();
    doc.set("traceEvents", eventsJson());
    doc.set("displayTimeUnit", "ms");
    std::ofstream os(path);
    if (!os)
        ENMC_FATAL("cannot open ", path, " for writing");
    doc.write(os, 2);
    os << "\n";
    if (!os.good())
        ENMC_FATAL("failed writing trace to ", path);
}

TraceSpan::TraceSpan(const char *name, const char *cat, uint64_t tid)
    : name_(name), cat_(cat), tid_(tid)
{
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled())
        return;
    active_ = true;
    start_us_ = tracer.nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled())
        return;
    const double end_us = tracer.nowUs();
    Tracer::Event e{'X',    name_,     cat_,
                    kWallPid, tid_,    start_us_,
                    end_us - start_us_, {}};
    for (const Tracer::Arg &a : args_)
        e.args.emplace_back(a.key, a.value);
    tracer.record(std::move(e));
}

void
TraceSpan::arg(const char *key, double value)
{
    if (active_)
        args_.push_back({key, value});
}

} // namespace enmc::obs
