#include "obs/registry.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace enmc::obs {

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

void
StatRegistry::add(StatGroup *group)
{
    ENMC_ASSERT(group != nullptr, "registering a null stat group");
    std::lock_guard<std::mutex> lock(mutex_);
    ENMC_ASSERT(std::find(live_.begin(), live_.end(), group) ==
                    live_.end(),
                "stat group registered twice: ", group->name());
    live_.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::find(live_.begin(), live_.end(), group);
    ENMC_ASSERT(it != live_.end(), "removing an unregistered stat group");
    live_.erase(it);
    auto [slot, inserted] =
        retired_.try_emplace(group->name(), group->name());
    (void)inserted;
    slot->second.mergeFrom(*group);
}

std::map<std::string, StatGroup>
StatRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, StatGroup> out = retired_;
    for (const StatGroup *g : live_) {
        auto [slot, inserted] = out.try_emplace(g->name(), g->name());
        (void)inserted;
        slot->second.mergeFrom(*g);
    }
    return out;
}

std::vector<StatGroup *>
StatRegistry::live() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::set<std::string> names;
    for (const auto &[name, group] : retired_)
        names.insert(name);
    for (const StatGroup *g : live_)
        names.insert(g->name());
    return {names.begin(), names.end()};
}

void
StatRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (StatGroup *g : live_)
        g->reset();
    retired_.clear();
}

void
StatRegistry::dumpAll(std::ostream &os) const
{
    for (const auto &[name, group] : snapshot())
        group.dump(os);
}

size_t
StatRegistry::liveCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_.size();
}

} // namespace enmc::obs
