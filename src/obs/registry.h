/**
 * @file
 * Process-wide statistics registry: one place that can enumerate, dump,
 * reset and export every component's StatGroup.
 *
 * Components enroll by holding an `obs::StatRegistration` member next to
 * their StatGroup (declare it *after* the group so it unregisters first).
 * Many simulator components are short-lived — an `EnmcRank` and its DRAM
 * controller exist only for the duration of one slice simulation — so the
 * registry *retires* a group on unregistration: its final values merge
 * into a per-name aggregate that survives the owner. A snapshot therefore
 * always reflects everything the process has simulated, merged by group
 * name (eight per-channel controllers named "dram.ctrl" export as one
 * aggregated "dram.ctrl" entry).
 *
 * Thread safety: add/remove/snapshot are mutex-protected (slice workers
 * construct ranks concurrently). Live counters themselves are owned and
 * bumped by exactly one simulation thread; take snapshots only between
 * runs, not while slices are in flight.
 */

#ifndef ENMC_OBS_REGISTRY_H
#define ENMC_OBS_REGISTRY_H

#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"

namespace enmc::obs {

class StatRegistry
{
  public:
    static StatRegistry &instance();

    /** Enroll a live group. The pointer must outlive the registration. */
    void add(StatGroup *group);

    /** Unenroll `group`, folding its final values into the aggregate. */
    void remove(StatGroup *group);

    /**
     * Merged-by-name view of every group ever registered: retired totals
     * plus the current values of live groups.
     */
    std::map<std::string, StatGroup> snapshot() const;

    /** Currently registered groups, in registration order. */
    std::vector<StatGroup *> live() const;

    /** Distinct group names with any recorded history. */
    std::vector<std::string> names() const;

    /** Reset every live group and drop all retired totals. */
    void resetAll();

    /** Dump the snapshot, sorted by group name. */
    void dumpAll(std::ostream &os) const;

    size_t liveCount() const;

  private:
    StatRegistry() = default;

    mutable std::mutex mutex_;
    std::vector<StatGroup *> live_;
    std::map<std::string, StatGroup> retired_;
};

/**
 * RAII enrollment of one StatGroup in the process-wide registry.
 * Non-copyable; declare after the StatGroup it registers.
 */
class StatRegistration
{
  public:
    explicit StatRegistration(StatGroup &group) : group_(&group)
    {
        StatRegistry::instance().add(group_);
    }
    ~StatRegistration() { StatRegistry::instance().remove(group_); }

    StatRegistration(const StatRegistration &) = delete;
    StatRegistration &operator=(const StatRegistration &) = delete;

  private:
    StatGroup *group_;
};

} // namespace enmc::obs

#endif // ENMC_OBS_REGISTRY_H
