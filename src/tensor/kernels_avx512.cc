/**
 * @file
 * AVX-512 kernels (F + BW). Compiled with -mavx512f -mavx512bw -mavx2
 * -mfma -ffp-contract=off; dispatch guarantees these run only on CPUs
 * with all of avx512f/avx512bw/avx2/fma.
 *
 * FP32 reductions keep AVX2's EXACT accumulation pattern: one zmm
 * register holds the same 16 accumulator slots AVX2 spreads over two ymm
 * (element i -> slot i mod 16, FMA per slot), the 8-wide tail folds into
 * slots 0-7, and the horizontal reduction is (slots 0-7) + (slots 8-15)
 * run through the same fixed-order hsum — so every FP32 result is
 * bit-identical to the avx2 target, not merely inside the envelope.
 * The win comes from issuing half the FMA/load uops per element (a
 * single 512-bit FMA replaces two 256-bit ones) and from blocking GEMV
 * eight rows deep (32 zmm registers vs. 16 ymm), which amortizes the
 * query-vector loads and overlaps eight serialized horizontal
 * reductions; per-row accumulation order is untouched, so row grouping
 * never changes a value.
 *
 * The integer MAC widens int8 pairs to int16 in zmm lanes with one
 * 256-bit load per operand (double AVX2's width per step). Integer lane
 * accumulation is exact whatever the lane pattern, so the result is
 * bit-exact vs. the scalar int64 loop for cols up to ~2^20 (each int32
 * lane accumulates at most cols/32 products of magnitude <= 127*254;
 * gemvQuantInto routes wider rows to the scalar path). quantizeSpan
 * runs the same round-half-away-from-zero algebra 16 lanes at a time —
 * per-element ops, bit-exact by construction.
 */

#include "tensor/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX2__) && \
    defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace enmc::tensor::kernels {

namespace {

/** Fixed-order horizontal sum of one ymm — identical to the avx2 tier's. */
inline float
hsum256(__m256 v)
{
    __m128 t = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    t = _mm_add_ps(t, _mm_movehl_ps(t, t));
    t = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
    return _mm_cvtss_f32(t);
}

/** Upper 8 slots of a zmm as a ymm (bit reinterpretation; AVX512F-only —
 *  _mm512_extractf32x8_ps would need DQ). */
inline __m256
upperHalf(__m512 v)
{
    return _mm512_castps512_ps256(_mm512_shuffle_f32x4(v, v, 0xEE));
}

/**
 * The shared FP32 dot tail: after the 16-wide main loop, fold the 8-wide
 * remainder into slots 0-7 (AVX2's acc0), reduce as hsum256(lo + hi)
 * exactly like AVX2's hsum256(acc0 + acc1), then the scalar tail — the
 * exact op sequence of dotAvx2 from the point its main loop exits.
 */
inline float
dotTail(__m512 acc, const float *a, const float *b, size_t i, size_t n)
{
    __m256 lo = _mm512_castps512_ps256(acc);
    const __m256 hi = upperHalf(acc);
    for (; i + 8 <= n; i += 8)
        lo = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                             lo);
    float s = hsum256(_mm256_add_ps(lo, hi));
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

float
dotAvx512(const float *a, const float *b, size_t n)
{
    __m512 acc = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i),
                              _mm512_loadu_ps(b + i), acc);
    return dotTail(acc, a, b, i, n);
}

/**
 * Eight row-dots against one shared h: one zmm accumulator per row, the
 * h vector loaded once per 16 elements for all eight rows. Each row's
 * slot pattern and reduction order equal dotAvx512 (== dotAvx2), so
 * results are bit-equal to eight independent dot calls.
 */
inline void
dot8RowsAvx512(const float *const *rows, const float *h, size_t n,
               float *out)
{
    __m512 acc[8];
    for (int j = 0; j < 8; ++j)
        acc[j] = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 hv = _mm512_loadu_ps(h + i);
        for (int j = 0; j < 8; ++j)
            acc[j] = _mm512_fmadd_ps(_mm512_loadu_ps(rows[j] + i), hv,
                                     acc[j]);
    }
    for (int j = 0; j < 8; ++j)
        out[j] = dotTail(acc[j], rows[j], h, i, n);
}

/**
 * Four dots sharing the weight-row loads (the batched-GEMV block).
 * Each query's accumulation pattern is identical to dotAvx512, so
 * results are bit-equal to four independent dot calls.
 */
inline void
dot4QueriesAvx512(const float *w, const float *const *hs, size_t n,
                  float *out)
{
    __m512 acc[4];
    for (int q = 0; q < 4; ++q)
        acc[q] = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 wv = _mm512_loadu_ps(w + i);
        for (int q = 0; q < 4; ++q)
            acc[q] = _mm512_fmadd_ps(wv, _mm512_loadu_ps(hs[q] + i),
                                     acc[q]);
    }
    for (int q = 0; q < 4; ++q)
        out[q] = dotTail(acc[q], w, hs[q], i, n);
}

void
axpyAvx512(float alpha, const float *x, float *y, size_t n)
{
    // mul+add (not FMA): bit-exact with the scalar y[i] += alpha * x[i].
    const __m512 va = _mm512_set1_ps(alpha);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 p = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
        _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), p));
    }
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

float
absMaxAvx512(const float *v, size_t n)
{
    __m512 m = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        m = _mm512_max_ps(m, _mm512_abs_ps(_mm512_loadu_ps(v + i)));
    // max is associative/commutative over the abs lattice: any reduction
    // order gives the same float, so reduce_max is bit-safe.
    float best = _mm512_reduce_max_ps(m);
    for (; i < n; ++i)
        best = std::max(best, std::fabs(v[i]));
    return best;
}

void
gemvRowsAvx512(const float *w, size_t cols, const float *h,
               const float *bias, float *out, size_t r0, size_t r1)
{
    size_t r = r0;
    for (; r + 8 <= r1; r += 8) {
        const float *base = w + r * cols;
        // Prefetch one group ahead (8*cols FLOP of latency to hide it).
        if (r + 16 <= r1) {
            const float *p = w + (r + 8) * cols;
            for (const float *e = p + 8 * cols; p < e; p += 16)
                _mm_prefetch(reinterpret_cast<const char *>(p),
                             _MM_HINT_T0);
        }
        const float *rows[8];
        for (size_t j = 0; j < 8; ++j)
            rows[j] = base + j * cols;
        float s[8];
        dot8RowsAvx512(rows, h, cols, s);
        for (size_t j = 0; j < 8; ++j)
            out[r + j] = s[j] + (bias ? bias[r + j] : 0.0f);
    }
    for (; r < r1; ++r)
        out[r] = dotAvx512(w + r * cols, h, cols) + (bias ? bias[r] : 0.0f);
}

void
gemvBatchRowsAvx512(const float *w, size_t cols, const float *const *hs,
                    float *const *outs, size_t nq, const float *bias,
                    size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float *wr = w + r * cols;
        const float b = bias ? bias[r] : 0.0f;
        size_t q = 0;
        for (; q + 4 <= nq; q += 4) {
            float s[4];
            dot4QueriesAvx512(wr, hs + q, cols, s);
            for (size_t j = 0; j < 4; ++j)
                outs[q + j][r] = s[j] + b;
        }
        for (; q < nq; ++q)
            outs[q][r] = dotAvx512(wr, hs[q], cols) + b;
    }
}

/** Exact horizontal sum of 16 int32 lanes into int64 (lanes cannot
 *  overflow int32 for cols up to ~2^20; the wide sum is exact). */
inline int64_t
hsumEpi32x16(__m512i v)
{
    alignas(64) int32_t lanes[16];
    _mm512_store_si512(reinterpret_cast<__m512i *>(lanes), v);
    int64_t s = 0;
    for (int32_t l : lanes)
        s += l;
    return s;
}

/** One row's int32-lane accumulation over `cols` columns against the
 *  already-widened activation chunks (`h16` = h converted to int16, one
 *  zmm per 32 columns). Integer lane math is exact, so the blocking
 *  below never affects results. */
inline int64_t
quantRowTotal(const int8_t *wr, const int8_t *h, size_t cols,
              const __m512i *h16, size_t chunks)
{
    __m512i acc = _mm512_setzero_si512();
    for (size_t i = 0; i < chunks; ++i) {
        const __m512i w16 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(wr + 32 * i)));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(w16, h16[i]));
    }
    int64_t total = hsumEpi32x16(acc);
    for (size_t c = 32 * chunks; c < cols; ++c)
        total += static_cast<int64_t>(wr[c]) * h[c];
    return total;
}

void
gemvQuantRowsAvx512(const int8_t *w, size_t cols, const float *scales,
                    const int8_t *h, float hscale, const float *bias,
                    float *out, size_t r0, size_t r1)
{
    // Widen the shared activation vector once per chunk of rows instead
    // of once per row — at ENMC's short reduced dims (d' = 128..512) the
    // h conversions are half of the AVX2 tier's inner-loop work.
    constexpr size_t kMaxChunks = 64; // up to 2048 columns staged
    __m512i h16[kMaxChunks];
    const size_t chunks = std::min(cols / 32, kMaxChunks);
    for (size_t i = 0; i < chunks; ++i)
        h16[i] = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(h + 32 * i)));

    if (cols > 32 * kMaxChunks) {
        // Very wide rows fall back to the unstaged per-row loop.
        for (size_t r = r0; r < r1; ++r) {
            const int8_t *wr = w + r * cols;
            __m512i acc = _mm512_setzero_si512();
            size_t c = 0;
            for (; c + 32 <= cols; c += 32) {
                const __m512i w16 = _mm512_cvtepi8_epi16(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(wr + c)));
                const __m512i hh = _mm512_cvtepi8_epi16(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(h + c)));
                acc = _mm512_add_epi32(acc, _mm512_madd_epi16(w16, hh));
            }
            int64_t total = hsumEpi32x16(acc);
            for (; c < cols; ++c)
                total += static_cast<int64_t>(wr[c]) * h[c];
            out[r] = static_cast<float>(total) * scales[r] * hscale +
                     (bias ? bias[r] : 0.0f);
        }
        return;
    }

    size_t r = r0;
    for (; r + 4 <= r1; r += 4) {
        const int8_t *wr = w + r * cols;
        _mm_prefetch(reinterpret_cast<const char *>(wr + 4 * cols),
                     _MM_HINT_T0);
        for (size_t q = 0; q < 4; ++q) {
            const int64_t total =
                quantRowTotal(wr + q * cols, h, cols, h16, chunks);
            out[r + q] = static_cast<float>(total) * scales[r + q] *
                             hscale +
                         (bias ? bias[r + q] : 0.0f);
        }
    }
    for (; r < r1; ++r) {
        const int64_t total =
            quantRowTotal(w + r * cols, h, cols, h16, chunks);
        out[r] = static_cast<float>(total) * scales[r] * hscale +
                 (bias ? bias[r] : 0.0f);
    }
}

void
quantizeSpanAvx512(const float *v, size_t n, float inv_scale, int max_level,
                   int8_t *out)
{
    // Round-half-away-from-zero, exactly matching lround(): r = trunc(t);
    // if |t - r| >= 0.5 then r += copysign(1, t). Same algebra as the
    // avx2 tier, 16 lanes wide; per-element, so bit-exact regardless.
    const __m512 vinv = _mm512_set1_ps(inv_scale);
    const __m512 vmax = _mm512_set1_ps(static_cast<float>(max_level));
    const __m512 vmin = _mm512_set1_ps(static_cast<float>(-max_level));
    const __m512 half = _mm512_set1_ps(0.5f);
    const __m512 one = _mm512_set1_ps(1.0f);
    const __m512i signbit = _mm512_set1_epi32(
        static_cast<int32_t>(0x80000000u));
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 t = _mm512_mul_ps(_mm512_loadu_ps(v + i), vinv);
        __m512 r = _mm512_roundscale_ps(
            t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        const __m512 frac = _mm512_abs_ps(_mm512_sub_ps(t, r));
        const __mmask16 bump = _mm512_cmp_ps_mask(frac, half, _CMP_GE_OQ);
        const __m512 signed_one = _mm512_castsi512_ps(_mm512_or_si512(
            _mm512_castps_si512(one),
            _mm512_and_si512(signbit, _mm512_castps_si512(t))));
        r = _mm512_mask_add_ps(r, bump, r, signed_one);
        r = _mm512_min_ps(_mm512_max_ps(r, vmin), vmax);
        const __m512i q32 = _mm512_cvttps_epi32(r);
        // Saturating 32->8 narrow; values are already clamped well
        // inside int8, so this is a pure width change.
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm512_cvtsepi32_epi8(q32));
    }
    for (; i < n; ++i) {
        const long q = std::lround(v[i] * inv_scale);
        out[i] = static_cast<int8_t>(
            std::clamp<long>(q, -max_level, max_level));
    }
}

/**
 * Gather-accumulate sum of h[idx[i]] over [begin, end) — the avx2 tier's
 * 8-lane pattern verbatim (EVEX-encoded but the same arithmetic), so the
 * projection stays bit-identical to avx2 as well.
 */
inline float
gatherSum(const float *h, const uint32_t *idx, uint32_t begin, uint32_t end)
{
    __m256 acc = _mm256_setzero_ps();
    uint32_t i = begin;
    for (; i + 8 <= end; i += 8) {
        const __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx + i));
        acc = _mm256_add_ps(acc, _mm256_i32gather_ps(h, vi, 4));
    }
    float s = hsum256(acc);
    for (; i < end; ++i)
        s += h[idx[i]];
    return s;
}

void
projectRowsAvx512(const float *h, const uint32_t *plus,
                  const uint32_t *plus_off, const uint32_t *minus,
                  const uint32_t *minus_off, float scale, float *y,
                  size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float sp = gatherSum(h, plus, plus_off[r], plus_off[r + 1]);
        const float sm = gatherSum(h, minus, minus_off[r], minus_off[r + 1]);
        y[r] = (sp - sm) * scale;
    }
}

constexpr KernelOps kAvx512Ops = {
    "avx512",            dotAvx512,          axpyAvx512,
    absMaxAvx512,        gemvRowsAvx512,     gemvBatchRowsAvx512,
    gemvQuantRowsAvx512, quantizeSpanAvx512, projectRowsAvx512,
};

} // namespace

const KernelOps *
avx512KernelOps()
{
    return &kAvx512Ops;
}

} // namespace enmc::tensor::kernels

#else // !(__AVX512F__ && __AVX512BW__ && __AVX2__ && __FMA__)

namespace enmc::tensor::kernels {

const KernelOps *
avx512KernelOps()
{
    return nullptr;
}

} // namespace enmc::tensor::kernels

#endif
