/**
 * @file
 * Portable scalar kernels — the reference numerics every other dispatch
 * target is tested against. The FP32 reduction pattern (four stride-4
 * double accumulators) is kept exactly as the original tensor/ops.cc
 * loops, so `ENMC_KERNELS=scalar` reproduces pre-kernel-layer results
 * bit-for-bit.
 */

#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

namespace enmc::tensor::kernels {

namespace {

float
dotScalar(const float *a, const float *b, size_t n)
{
    // Four partial accumulators: better ILP and slightly better numerics.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    const size_t n4 = n & ~size_t{3};
    for (; i < n4; i += 4) {
        s0 += static_cast<double>(a[i]) * b[i];
        s1 += static_cast<double>(a[i + 1]) * b[i + 1];
        s2 += static_cast<double>(a[i + 2]) * b[i + 2];
        s3 += static_cast<double>(a[i + 3]) * b[i + 3];
    }
    for (; i < n; ++i)
        s0 += static_cast<double>(a[i]) * b[i];
    return static_cast<float>(s0 + s1 + s2 + s3);
}

void
axpyScalar(float alpha, const float *x, float *y, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += alpha * x[i];
}

float
absMaxScalar(const float *v, size_t n)
{
    float m = 0.0f;
    for (size_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(v[i]));
    return m;
}

void
gemvRowsScalar(const float *w, size_t cols, const float *h,
               const float *bias, float *out, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r)
        out[r] = dotScalar(w + r * cols, h, cols) + (bias ? bias[r] : 0.0f);
}

void
gemvBatchRowsScalar(const float *w, size_t cols, const float *const *hs,
                    float *const *outs, size_t nq, const float *bias,
                    size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float *wr = w + r * cols;
        const float b = bias ? bias[r] : 0.0f;
        for (size_t q = 0; q < nq; ++q)
            outs[q][r] = dotScalar(wr, hs[q], cols) + b;
    }
}

void
gemvQuantRowsScalar(const int8_t *w, size_t cols, const float *scales,
                    const int8_t *h, float hscale, const float *bias,
                    float *out, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const int8_t *wr = w + r * cols;
        int64_t acc = 0;
        for (size_t c = 0; c < cols; ++c)
            acc += static_cast<int64_t>(wr[c]) * h[c];
        out[r] = static_cast<float>(acc) * scales[r] * hscale +
                 (bias ? bias[r] : 0.0f);
    }
}

void
quantizeSpanScalar(const float *v, size_t n, float inv_scale, int max_level,
                   int8_t *out)
{
    for (size_t i = 0; i < n; ++i) {
        const long q = std::lround(v[i] * inv_scale);
        out[i] = static_cast<int8_t>(
            std::clamp<long>(q, -max_level, max_level));
    }
}

void
projectRowsScalar(const float *h, const uint32_t *plus,
                  const uint32_t *plus_off, const uint32_t *minus,
                  const uint32_t *minus_off, float scale, float *y,
                  size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        double acc = 0.0;
        for (uint32_t i = plus_off[r]; i < plus_off[r + 1]; ++i)
            acc += h[plus[i]];
        for (uint32_t i = minus_off[r]; i < minus_off[r + 1]; ++i)
            acc -= h[minus[i]];
        y[r] = static_cast<float>(acc) * scale;
    }
}

constexpr KernelOps kScalarOps = {
    "scalar",          dotScalar,          axpyScalar,
    absMaxScalar,      gemvRowsScalar,     gemvBatchRowsScalar,
    gemvQuantRowsScalar, quantizeSpanScalar, projectRowsScalar,
};

} // namespace

const KernelOps *
scalarKernelOps()
{
    return &kScalarOps;
}

} // namespace enmc::tensor::kernels
