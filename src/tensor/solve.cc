#include "tensor/solve.h"

#include <cmath>

#include "common/logging.h"

namespace enmc::tensor {

Matrix
cholesky(const Matrix &a)
{
    const size_t n = a.rows();
    ENMC_ASSERT(a.cols() == n, "cholesky: matrix must be square");
    Matrix l(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            for (size_t k = 0; k < j; ++k)
                sum -= static_cast<double>(l(i, k)) * l(j, k);
            if (i == j) {
                ENMC_ASSERT(sum > 0.0, "cholesky: matrix not SPD");
                l(i, j) = static_cast<float>(std::sqrt(sum));
            } else {
                l(i, j) = static_cast<float>(sum / l(j, j));
            }
        }
    }
    return l;
}

Vector
choleskySolve(const Matrix &l, std::span<const float> b)
{
    const size_t n = l.rows();
    ENMC_ASSERT(b.size() == n, "choleskySolve: size mismatch");
    // Forward substitution: L y = b.
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= static_cast<double>(l(i, k)) * y[k];
        y[i] = static_cast<float>(sum / l(i, i));
    }
    // Back substitution: Lᵀ x = y.
    Vector x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= static_cast<double>(l(k, ii)) * x[k];
        x[ii] = static_cast<float>(sum / l(ii, ii));
    }
    return x;
}

Matrix
spdSolve(const Matrix &a, const Matrix &b)
{
    ENMC_ASSERT(a.rows() == b.rows(), "spdSolve: size mismatch");
    const Matrix l = cholesky(a);
    Matrix x(b.rows(), b.cols());
    Vector col(b.rows());
    for (size_t j = 0; j < b.cols(); ++j) {
        for (size_t i = 0; i < b.rows(); ++i)
            col[i] = b(i, j);
        const Vector sol = choleskySolve(l, col);
        for (size_t i = 0; i < b.rows(); ++i)
            x(i, j) = sol[i];
    }
    return x;
}

} // namespace enmc::tensor
