#include "tensor/projection.h"

#include <cmath>

#include "common/logging.h"
#include "common/units.h"
#include "tensor/kernels.h"

namespace enmc::tensor {

SparseProjection::SparseProjection(size_t k, size_t d, Rng &rng)
    : k_(k), d_(d), scale_(std::sqrt(3.0f / static_cast<float>(k)))
{
    ENMC_ASSERT(k >= 1 && d >= 1, "projection dims must be positive");
    plusOffset_.reserve(k + 1);
    minusOffset_.reserve(k + 1);
    plusOffset_.push_back(0);
    minusOffset_.push_back(0);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < d; ++c) {
            const int e = rng.projectionEntry();
            if (e > 0)
                plus_.push_back(static_cast<uint32_t>(c));
            else if (e < 0)
                minus_.push_back(static_cast<uint32_t>(c));
        }
        plusOffset_.push_back(static_cast<uint32_t>(plus_.size()));
        minusOffset_.push_back(static_cast<uint32_t>(minus_.size()));
    }
}

Vector
SparseProjection::apply(std::span<const float> h) const
{
    ENMC_ASSERT(h.size() == d_, "projection input dim mismatch");
    Vector y(k_);
    kernels::ops().projectRows(h.data(), plus_.data(), plusOffset_.data(),
                               minus_.data(), minusOffset_.data(), scale_,
                               y.data(), 0, k_);
    return y;
}

Matrix
SparseProjection::toDense() const
{
    Matrix p(k_, d_);
    for (size_t r = 0; r < k_; ++r) {
        for (uint32_t i = plusOffset_[r]; i < plusOffset_[r + 1]; ++i)
            p(r, plus_[i]) = scale_;
        for (uint32_t i = minusOffset_[r]; i < minusOffset_[r + 1]; ++i)
            p(r, minus_[i]) = -scale_;
    }
    return p;
}

size_t
SparseProjection::packedBytes() const
{
    // 2 bits per entry as stated in the paper, dense packing.
    return ceilDiv(k_ * d_ * 2, 8);
}

} // namespace enmc::tensor
