/**
 * @file
 * AVX2+FMA kernels. Compiled with -mavx2 -mfma -ffp-contract=off (the
 * contract flag keeps the C-level tail loops from being auto-fused, so
 * the element-wise kernels stay bit-exact with the scalar reference);
 * dispatch guarantees these run only on CPUs with both features.
 *
 * FP32 reductions use 16 float accumulator slots (2 ymm registers,
 * element i -> slot i mod 16) with FMA, reduced in a fixed order. Every
 * float path — dot, the 4-row GEMV interleave, the query-pair batch —
 * applies this same per-vector pattern, so gemv rows, batch entries and
 * dot calls are bit-identical within the target; interleaving rows only
 * overlaps the horizontal reductions (the single-row bottleneck: a ~20
 * cycle serialized reduction every 512 B row stalls the load pipe).
 * The integer MAC widens int8 pairs to int32 lanes with pmaddwd and is
 * bit-exact vs. the scalar int64 loop for cols up to ~2^20 (each int32
 * lane accumulates at most cols/16 products of magnitude <= 127*254;
 * gemvQuantInto routes wider rows to the scalar path).
 */

#include "tensor/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace enmc::tensor::kernels {

namespace {

/** Fixed-order horizontal sum of one ymm: (lo+hi), pairwise, then pair. */
inline float
hsum256(__m256 v)
{
    __m128 t = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    t = _mm_add_ps(t, _mm_movehl_ps(t, t));
    t = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
    return _mm_cvtss_f32(t);
}

float
dotAvx2(const float *a, const float *b, size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    for (; i + 8 <= n; i += 8)
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
    float s = hsum256(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

/**
 * Four row-dots against one shared h, interleaved so the per-row
 * horizontal reductions overlap the next rows' loads. Each row's
 * accumulation pattern is identical to dotAvx2 (same slots, same
 * order), so results are bit-equal to four independent dot calls.
 */
inline void
dot4RowsAvx2(const float *w0, const float *w1, const float *w2,
             const float *w3, const float *h, size_t n, float *out)
{
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
    __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
    __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256 hv0 = _mm256_loadu_ps(h + i);
        const __m256 hv1 = _mm256_loadu_ps(h + i + 8);
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(w0 + i), hv0, a0);
        a1 = _mm256_fmadd_ps(_mm256_loadu_ps(w0 + i + 8), hv1, a1);
        b0 = _mm256_fmadd_ps(_mm256_loadu_ps(w1 + i), hv0, b0);
        b1 = _mm256_fmadd_ps(_mm256_loadu_ps(w1 + i + 8), hv1, b1);
        c0 = _mm256_fmadd_ps(_mm256_loadu_ps(w2 + i), hv0, c0);
        c1 = _mm256_fmadd_ps(_mm256_loadu_ps(w2 + i + 8), hv1, c1);
        d0 = _mm256_fmadd_ps(_mm256_loadu_ps(w3 + i), hv0, d0);
        d1 = _mm256_fmadd_ps(_mm256_loadu_ps(w3 + i + 8), hv1, d1);
    }
    for (; i + 8 <= n; i += 8) {
        const __m256 hv = _mm256_loadu_ps(h + i);
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(w0 + i), hv, a0);
        b0 = _mm256_fmadd_ps(_mm256_loadu_ps(w1 + i), hv, b0);
        c0 = _mm256_fmadd_ps(_mm256_loadu_ps(w2 + i), hv, c0);
        d0 = _mm256_fmadd_ps(_mm256_loadu_ps(w3 + i), hv, d0);
    }
    float s0 = hsum256(_mm256_add_ps(a0, a1));
    float s1 = hsum256(_mm256_add_ps(b0, b1));
    float s2 = hsum256(_mm256_add_ps(c0, c1));
    float s3 = hsum256(_mm256_add_ps(d0, d1));
    for (; i < n; ++i) {
        s0 += w0[i] * h[i];
        s1 += w1[i] * h[i];
        s2 += w2[i] * h[i];
        s3 += w3[i] * h[i];
    }
    out[0] = s0;
    out[1] = s1;
    out[2] = s2;
    out[3] = s3;
}

/**
 * Two dots sharing the weight-row loads. Each query's accumulation
 * pattern is identical to dotAvx2, so results are bit-equal to two
 * independent dot calls — the batched GEMV contract.
 */
inline void
dot2Avx2(const float *w, const float *h0, const float *h1, size_t n,
         float *out0, float *out1)
{
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256 w0 = _mm256_loadu_ps(w + i);
        const __m256 w1 = _mm256_loadu_ps(w + i + 8);
        a0 = _mm256_fmadd_ps(w0, _mm256_loadu_ps(h0 + i), a0);
        a1 = _mm256_fmadd_ps(w1, _mm256_loadu_ps(h0 + i + 8), a1);
        b0 = _mm256_fmadd_ps(w0, _mm256_loadu_ps(h1 + i), b0);
        b1 = _mm256_fmadd_ps(w1, _mm256_loadu_ps(h1 + i + 8), b1);
    }
    for (; i + 8 <= n; i += 8) {
        const __m256 wv = _mm256_loadu_ps(w + i);
        a0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(h0 + i), a0);
        b0 = _mm256_fmadd_ps(wv, _mm256_loadu_ps(h1 + i), b0);
    }
    float s0 = hsum256(_mm256_add_ps(a0, a1));
    float s1 = hsum256(_mm256_add_ps(b0, b1));
    for (; i < n; ++i) {
        s0 += w[i] * h0[i];
        s1 += w[i] * h1[i];
    }
    *out0 = s0;
    *out1 = s1;
}

void
axpyAvx2(float alpha, const float *x, float *y, size_t n)
{
    // mul+add (not FMA): bit-exact with the scalar y[i] += alpha * x[i].
    const __m256 va = _mm256_set1_ps(alpha);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 p = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p));
    }
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

float
absMaxAvx2(const float *v, size_t n)
{
    const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 m0 = _mm256_setzero_ps();
    __m256 m1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        m0 = _mm256_max_ps(m0,
                           _mm256_and_ps(mask, _mm256_loadu_ps(v + i)));
        m1 = _mm256_max_ps(m1,
                           _mm256_and_ps(mask, _mm256_loadu_ps(v + i + 8)));
    }
    for (; i + 8 <= n; i += 8)
        m0 = _mm256_max_ps(m0,
                           _mm256_and_ps(mask, _mm256_loadu_ps(v + i)));
    m0 = _mm256_max_ps(m0, m1);
    __m128 t = _mm_max_ps(_mm256_castps256_ps128(m0),
                          _mm256_extractf128_ps(m0, 1));
    t = _mm_max_ps(t, _mm_movehl_ps(t, t));
    t = _mm_max_ss(t, _mm_shuffle_ps(t, t, 0x55));
    float m = _mm_cvtss_f32(t);
    for (; i < n; ++i)
        m = std::max(m, std::fabs(v[i]));
    return m;
}

void
gemvRowsAvx2(const float *w, size_t cols, const float *h, const float *bias,
             float *out, size_t r0, size_t r1)
{
    size_t r = r0;
    for (; r + 4 <= r1; r += 4) {
        const float *base = w + r * cols;
        // Prefetch the group two ahead: one group (~4*cols FLOP) of
        // latency is too little to cover an L3 round trip.
        if (r + 12 <= r1) {
            const float *p = w + (r + 8) * cols;
            for (const float *e = p + 4 * cols; p < e; p += 16)
                _mm_prefetch(reinterpret_cast<const char *>(p),
                             _MM_HINT_T0);
        }
        float s[4];
        dot4RowsAvx2(base, base + cols, base + 2 * cols, base + 3 * cols,
                     h, cols, s);
        for (size_t j = 0; j < 4; ++j)
            out[r + j] = s[j] + (bias ? bias[r + j] : 0.0f);
    }
    for (; r < r1; ++r)
        out[r] = dotAvx2(w + r * cols, h, cols) + (bias ? bias[r] : 0.0f);
}

void
gemvBatchRowsAvx2(const float *w, size_t cols, const float *const *hs,
                  float *const *outs, size_t nq, const float *bias,
                  size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float *wr = w + r * cols;
        const float b = bias ? bias[r] : 0.0f;
        size_t q = 0;
        for (; q + 1 < nq; q += 2) {
            float s0, s1;
            dot2Avx2(wr, hs[q], hs[q + 1], cols, &s0, &s1);
            outs[q][r] = s0 + b;
            outs[q + 1][r] = s1 + b;
        }
        if (q < nq)
            outs[q][r] = dotAvx2(wr, hs[q], cols) + b;
    }
}

/** Horizontal sum of 8 int32 lanes into int64 (lanes cannot overflow
 *  int32 for cols up to ~2^20; the wide sum is exact regardless). */
inline int64_t
hsumEpi32(__m256i v)
{
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    int64_t s = 0;
    for (int32_t l : lanes)
        s += l;
    return s;
}

void
gemvQuantRowsAvx2(const int8_t *w, size_t cols, const float *scales,
                  const int8_t *h, float hscale, const float *bias,
                  float *out, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const int8_t *wr = w + r * cols;
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        size_t c = 0;
        for (; c + 32 <= cols; c += 32) {
            const __m256i w16a = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(wr + c)));
            const __m256i h16a = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(h + c)));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(w16a, h16a));
            const __m256i w16b = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(wr + c + 16)));
            const __m256i h16b = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(h + c + 16)));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(w16b, h16b));
        }
        for (; c + 16 <= cols; c += 16) {
            const __m256i w16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(wr + c)));
            const __m256i h16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(h + c)));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(w16, h16));
        }
        int64_t total =
            hsumEpi32(_mm256_add_epi32(acc0, acc1));
        for (; c < cols; ++c)
            total += static_cast<int64_t>(wr[c]) * h[c];
        out[r] = static_cast<float>(total) * scales[r] * hscale +
                 (bias ? bias[r] : 0.0f);
    }
}

void
quantizeSpanAvx2(const float *v, size_t n, float inv_scale, int max_level,
                 int8_t *out)
{
    // Round-half-away-from-zero, exactly matching lround():
    // r = trunc(t); if |t - r| >= 0.5 then r += copysign(1, t).
    const __m256 vinv = _mm256_set1_ps(inv_scale);
    const __m256 vmax = _mm256_set1_ps(static_cast<float>(max_level));
    const __m256 vmin = _mm256_set1_ps(static_cast<float>(-max_level));
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    const __m256 signmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(
            static_cast<int32_t>(0x80000000u)));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 t = _mm256_mul_ps(_mm256_loadu_ps(v + i), vinv);
        __m256 r = _mm256_round_ps(
            t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        const __m256 frac = _mm256_and_ps(absmask, _mm256_sub_ps(t, r));
        const __m256 bump = _mm256_and_ps(
            _mm256_cmp_ps(frac, half, _CMP_GE_OQ),
            _mm256_or_ps(one, _mm256_and_ps(signmask, t)));
        r = _mm256_add_ps(r, bump);
        r = _mm256_min_ps(_mm256_max_ps(r, vmin), vmax);
        const __m256i q32 = _mm256_cvttps_epi32(r);
        const __m128i q16 = _mm_packs_epi32(
            _mm256_castsi256_si128(q32), _mm256_extracti128_si256(q32, 1));
        const __m128i q8 = _mm_packs_epi16(q16, q16);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i), q8);
    }
    for (; i < n; ++i) {
        const long q = std::lround(v[i] * inv_scale);
        out[i] = static_cast<int8_t>(
            std::clamp<long>(q, -max_level, max_level));
    }
}

/** Gather-accumulate sum of h[idx[i]] over [begin, end). */
inline float
gatherSum(const float *h, const uint32_t *idx, uint32_t begin, uint32_t end)
{
    __m256 acc = _mm256_setzero_ps();
    uint32_t i = begin;
    for (; i + 8 <= end; i += 8) {
        const __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx + i));
        acc = _mm256_add_ps(acc, _mm256_i32gather_ps(h, vi, 4));
    }
    float s = hsum256(acc);
    for (; i < end; ++i)
        s += h[idx[i]];
    return s;
}

void
projectRowsAvx2(const float *h, const uint32_t *plus,
                const uint32_t *plus_off, const uint32_t *minus,
                const uint32_t *minus_off, float scale, float *y, size_t r0,
                size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float sp = gatherSum(h, plus, plus_off[r], plus_off[r + 1]);
        const float sm = gatherSum(h, minus, minus_off[r], minus_off[r + 1]);
        y[r] = (sp - sm) * scale;
    }
}

constexpr KernelOps kAvx2Ops = {
    "avx2",            dotAvx2,          axpyAvx2,
    absMaxAvx2,        gemvRowsAvx2,     gemvBatchRowsAvx2,
    gemvQuantRowsAvx2, quantizeSpanAvx2, projectRowsAvx2,
};

} // namespace

const KernelOps *
avx2KernelOps()
{
    return &kAvx2Ops;
}

} // namespace enmc::tensor::kernels

#else // !(__AVX2__ && __FMA__)

namespace enmc::tensor::kernels {

const KernelOps *
avx2KernelOps()
{
    return nullptr;
}

} // namespace enmc::tensor::kernels

#endif
