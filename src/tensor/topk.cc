#include "tensor/topk.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace enmc::tensor {

namespace {

/**
 * Keep the best k entries seen so far. The heap top is the worst kept
 * element under `scoredBefore`, so each candidate costs one compare and
 * (rarely) one push/pop. O(n log k) with only k entries allocated — the
 * selection runs once per inference, so avoiding the O(n) index array
 * matters.
 */
void
pushBounded(std::vector<Scored> &heap, size_t k, const Scored &s)
{
    if (heap.size() < k) {
        heap.push_back(s);
        std::push_heap(heap.begin(), heap.end(), scoredBefore);
    } else if (k > 0 && scoredBefore(s, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), scoredBefore);
        heap.back() = s;
        std::push_heap(heap.begin(), heap.end(), scoredBefore);
    }
}

/**
 * Sort-scan alternative to the bounded heap for small inputs: stage all
 * entries and partial_sort the best k to the front. `scoredBefore` is a
 * strict total order (value desc, index asc), so the selected set and
 * its order are exactly the heap path's — the tunable
 * `topk_scan_cutoff` trades allocation for branchy heap maintenance
 * without ever changing a result. The staging buffer persists across
 * calls (selection runs once per inference on same-sized vectors).
 */
std::vector<Scored>
scanTopK(std::vector<Scored> &stage, size_t k)
{
    if (k > stage.size())
        k = stage.size();
    std::partial_sort(stage.begin(), stage.begin() + k, stage.end(),
                      scoredBefore);
    return {stage.begin(), stage.begin() + k};
}

thread_local std::vector<Scored> t_stage;

} // namespace

std::vector<Scored>
topkScored(std::span<const float> z, size_t k, uint32_t index_offset)
{
    const size_t n = z.size();
    if (k > n)
        k = n;
    if (n <= kernels::tune().topk_scan_cutoff) {
        t_stage.clear();
        t_stage.reserve(n);
        for (size_t i = 0; i < n; ++i)
            t_stage.push_back(
                Scored{index_offset + static_cast<uint32_t>(i), z[i]});
        return scanTopK(t_stage, k);
    }
    std::vector<Scored> heap;
    heap.reserve(k);
    for (size_t i = 0; i < n; ++i)
        pushBounded(heap, k,
                    Scored{index_offset + static_cast<uint32_t>(i), z[i]});
    std::sort(heap.begin(), heap.end(), scoredBefore);
    return heap;
}

std::vector<Scored>
mergeTopK(std::span<const std::vector<Scored>> shards, size_t k)
{
    size_t total = 0;
    for (const std::vector<Scored> &shard : shards)
        total += shard.size();
    if (total <= kernels::tune().topk_scan_cutoff) {
        t_stage.clear();
        t_stage.reserve(total);
        for (const std::vector<Scored> &shard : shards)
            t_stage.insert(t_stage.end(), shard.begin(), shard.end());
        return scanTopK(t_stage, k);
    }
    std::vector<Scored> heap;
    heap.reserve(k);
    for (const std::vector<Scored> &shard : shards) {
        for (const Scored &s : shard) {
            // Shard lists are sorted by scoredBefore: once an entry
            // cannot displace the worst kept element, none after it can.
            if (heap.size() >= k && (k == 0 || !scoredBefore(s, heap.front())))
                break;
            pushBounded(heap, k, s);
        }
    }
    std::sort(heap.begin(), heap.end(), scoredBefore);
    return heap;
}

std::vector<uint32_t>
topkIndices(std::span<const float> z, size_t k)
{
    const std::vector<Scored> best = topkScored(z, k);
    std::vector<uint32_t> out;
    out.reserve(best.size());
    for (const Scored &s : best)
        out.push_back(s.index);
    return out;
}

std::vector<uint32_t>
thresholdIndices(std::span<const float> z, float threshold)
{
    std::vector<uint32_t> out;
    for (size_t i = 0; i < z.size(); ++i)
        if (z[i] >= threshold)
            out.push_back(static_cast<uint32_t>(i));
    return out;
}

float
thresholdForCount(std::span<const float> z, size_t m)
{
    ENMC_ASSERT(m >= 1, "thresholdForCount needs m >= 1");
    if (m >= z.size()) {
        float lo = z.empty() ? 0.0f : z[0];
        for (float v : z)
            lo = std::min(lo, v);
        return lo;
    }
    // Scratch persists across calls: threshold tuning invokes this once
    // per sample over the same-sized logit vector.
    thread_local std::vector<float> vals;
    vals.assign(z.begin(), z.end());
    std::nth_element(vals.begin(), vals.begin() + (m - 1), vals.end(),
                     std::greater<float>());
    return vals[m - 1];
}

double
recall(std::span<const uint32_t> selected, std::span<const uint32_t> reference)
{
    if (reference.empty())
        return 1.0;
    size_t hit = 0;
    // Typical candidate sets are a few hundred entries; a sorted copy plus
    // binary searches beats building an unordered_set every call. Keep the
    // hash set only for very large selections.
    constexpr size_t kSortCutoff = 1 << 16;
    if (selected.size() <= kSortCutoff) {
        thread_local std::vector<uint32_t> sorted;
        sorted.assign(selected.begin(), selected.end());
        std::sort(sorted.begin(), sorted.end());
        for (uint32_t r : reference)
            hit += std::binary_search(sorted.begin(), sorted.end(), r);
    } else {
        std::unordered_set<uint32_t> sel(selected.begin(), selected.end());
        for (uint32_t r : reference)
            hit += sel.count(r);
    }
    return static_cast<double>(hit) / reference.size();
}

} // namespace enmc::tensor
