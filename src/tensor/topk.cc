#include "tensor/topk.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace enmc::tensor {

std::vector<uint32_t>
topkIndices(std::span<const float> z, size_t k)
{
    const size_t n = z.size();
    if (k > n)
        k = n;
    // Ranking order: descending value, ascending index on ties.
    auto better = [&z](uint32_t a, uint32_t b) {
        if (z[a] != z[b])
            return z[a] > z[b];
        return a < b;
    };
    // Bounded heap of the best k seen so far; the top is the worst kept
    // element, so each candidate costs one compare and (rarely) one
    // push/pop. O(n log k) with only k entries allocated — the selection
    // runs once per inference, so avoiding the O(n) index array matters.
    std::vector<uint32_t> heap;
    heap.reserve(k);
    for (uint32_t i = 0; i < n; ++i) {
        if (heap.size() < k) {
            heap.push_back(i);
            std::push_heap(heap.begin(), heap.end(), better);
        } else if (k > 0 && better(i, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = i;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort(heap.begin(), heap.end(), better);
    return heap;
}

std::vector<uint32_t>
thresholdIndices(std::span<const float> z, float threshold)
{
    std::vector<uint32_t> out;
    for (size_t i = 0; i < z.size(); ++i)
        if (z[i] >= threshold)
            out.push_back(static_cast<uint32_t>(i));
    return out;
}

float
thresholdForCount(std::span<const float> z, size_t m)
{
    ENMC_ASSERT(m >= 1, "thresholdForCount needs m >= 1");
    if (m >= z.size()) {
        float lo = z.empty() ? 0.0f : z[0];
        for (float v : z)
            lo = std::min(lo, v);
        return lo;
    }
    // Scratch persists across calls: threshold tuning invokes this once
    // per sample over the same-sized logit vector.
    thread_local std::vector<float> vals;
    vals.assign(z.begin(), z.end());
    std::nth_element(vals.begin(), vals.begin() + (m - 1), vals.end(),
                     std::greater<float>());
    return vals[m - 1];
}

double
recall(std::span<const uint32_t> selected, std::span<const uint32_t> reference)
{
    if (reference.empty())
        return 1.0;
    size_t hit = 0;
    // Typical candidate sets are a few hundred entries; a sorted copy plus
    // binary searches beats building an unordered_set every call. Keep the
    // hash set only for very large selections.
    constexpr size_t kSortCutoff = 1 << 16;
    if (selected.size() <= kSortCutoff) {
        thread_local std::vector<uint32_t> sorted;
        sorted.assign(selected.begin(), selected.end());
        std::sort(sorted.begin(), sorted.end());
        for (uint32_t r : reference)
            hit += std::binary_search(sorted.begin(), sorted.end(), r);
    } else {
        std::unordered_set<uint32_t> sel(selected.begin(), selected.end());
        for (uint32_t r : reference)
            hit += sel.count(r);
    }
    return static_cast<double>(hit) / reference.size();
}

} // namespace enmc::tensor
