#include "tensor/topk.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace enmc::tensor {

std::vector<uint32_t>
topkIndices(std::span<const float> z, size_t k)
{
    const size_t n = z.size();
    if (k > n)
        k = n;
    std::vector<uint32_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = static_cast<uint32_t>(i);
    auto better = [&z](uint32_t a, uint32_t b) {
        if (z[a] != z[b])
            return z[a] > z[b];
        return a < b;
    };
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(), better);
    idx.resize(k);
    return idx;
}

std::vector<uint32_t>
thresholdIndices(std::span<const float> z, float threshold)
{
    std::vector<uint32_t> out;
    for (size_t i = 0; i < z.size(); ++i)
        if (z[i] >= threshold)
            out.push_back(static_cast<uint32_t>(i));
    return out;
}

float
thresholdForCount(std::span<const float> z, size_t m)
{
    ENMC_ASSERT(m >= 1, "thresholdForCount needs m >= 1");
    if (m >= z.size()) {
        float lo = z.empty() ? 0.0f : z[0];
        for (float v : z)
            lo = std::min(lo, v);
        return lo;
    }
    std::vector<float> vals(z.begin(), z.end());
    std::nth_element(vals.begin(), vals.begin() + (m - 1), vals.end(),
                     std::greater<float>());
    return vals[m - 1];
}

double
recall(std::span<const uint32_t> selected, std::span<const uint32_t> reference)
{
    if (reference.empty())
        return 1.0;
    std::unordered_set<uint32_t> sel(selected.begin(), selected.end());
    size_t hit = 0;
    for (uint32_t r : reference)
        hit += sel.count(r);
    return static_cast<double>(hit) / reference.size();
}

} // namespace enmc::tensor
