/**
 * @file
 * SSE2 kernels — the baseline vector ISA of every x86-64 CPU, so no
 * extra compile flags are needed; non-x86 builds compile the stub at the
 * bottom. FP32 reductions use 16 float accumulator slots (4 xmm
 * registers) with separate mul+add (SSE2 has no FMA); the integer MAC
 * uses pmaddwd and is bit-exact with the scalar reference.
 */

#include "tensor/kernels.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)

#include <emmintrin.h>

#include <algorithm>
#include <cmath>

namespace enmc::tensor::kernels {

namespace {

inline float
hsum128(__m128 v)
{
    v = _mm_add_ps(v, _mm_movehl_ps(v, v));
    v = _mm_add_ss(v, _mm_shuffle_ps(v, v, 0x55));
    return _mm_cvtss_f32(v);
}

inline float
reduceDotAccs(__m128 a0, __m128 a1, __m128 a2, __m128 a3)
{
    a0 = _mm_add_ps(a0, a1);
    a2 = _mm_add_ps(a2, a3);
    return hsum128(_mm_add_ps(a0, a2));
}

float
dotSse2(const float *a, const float *b, size_t n)
{
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    __m128 acc2 = _mm_setzero_ps();
    __m128 acc3 = _mm_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4),
                                           _mm_loadu_ps(b + i + 4)));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(_mm_loadu_ps(a + i + 8),
                                           _mm_loadu_ps(b + i + 8)));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(_mm_loadu_ps(a + i + 12),
                                           _mm_loadu_ps(b + i + 12)));
    }
    for (; i + 4 <= n; i += 4)
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
    float s = reduceDotAccs(acc0, acc1, acc2, acc3);
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

/** Two dots sharing weight loads; per-query math identical to dotSse2. */
inline void
dot2Sse2(const float *w, const float *h0, const float *h1, size_t n,
         float *out0, float *out1)
{
    __m128 a0 = _mm_setzero_ps(), a1 = _mm_setzero_ps();
    __m128 a2 = _mm_setzero_ps(), a3 = _mm_setzero_ps();
    __m128 b0 = _mm_setzero_ps(), b1 = _mm_setzero_ps();
    __m128 b2 = _mm_setzero_ps(), b3 = _mm_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128 w0 = _mm_loadu_ps(w + i);
        const __m128 w1 = _mm_loadu_ps(w + i + 4);
        const __m128 w2 = _mm_loadu_ps(w + i + 8);
        const __m128 w3 = _mm_loadu_ps(w + i + 12);
        a0 = _mm_add_ps(a0, _mm_mul_ps(w0, _mm_loadu_ps(h0 + i)));
        a1 = _mm_add_ps(a1, _mm_mul_ps(w1, _mm_loadu_ps(h0 + i + 4)));
        a2 = _mm_add_ps(a2, _mm_mul_ps(w2, _mm_loadu_ps(h0 + i + 8)));
        a3 = _mm_add_ps(a3, _mm_mul_ps(w3, _mm_loadu_ps(h0 + i + 12)));
        b0 = _mm_add_ps(b0, _mm_mul_ps(w0, _mm_loadu_ps(h1 + i)));
        b1 = _mm_add_ps(b1, _mm_mul_ps(w1, _mm_loadu_ps(h1 + i + 4)));
        b2 = _mm_add_ps(b2, _mm_mul_ps(w2, _mm_loadu_ps(h1 + i + 8)));
        b3 = _mm_add_ps(b3, _mm_mul_ps(w3, _mm_loadu_ps(h1 + i + 12)));
    }
    for (; i + 4 <= n; i += 4) {
        const __m128 wv = _mm_loadu_ps(w + i);
        a0 = _mm_add_ps(a0, _mm_mul_ps(wv, _mm_loadu_ps(h0 + i)));
        b0 = _mm_add_ps(b0, _mm_mul_ps(wv, _mm_loadu_ps(h1 + i)));
    }
    float s0 = reduceDotAccs(a0, a1, a2, a3);
    float s1 = reduceDotAccs(b0, b1, b2, b3);
    for (; i < n; ++i) {
        s0 += w[i] * h0[i];
        s1 += w[i] * h1[i];
    }
    *out0 = s0;
    *out1 = s1;
}

void
axpySse2(float alpha, const float *x, float *y, size_t n)
{
    const __m128 va = _mm_set1_ps(alpha);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 p = _mm_mul_ps(va, _mm_loadu_ps(x + i));
        _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i), p));
    }
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

float
absMaxSse2(const float *v, size_t n)
{
    const __m128 mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    __m128 m0 = _mm_setzero_ps();
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        m0 = _mm_max_ps(m0, _mm_and_ps(mask, _mm_loadu_ps(v + i)));
    m0 = _mm_max_ps(m0, _mm_movehl_ps(m0, m0));
    m0 = _mm_max_ss(m0, _mm_shuffle_ps(m0, m0, 0x55));
    float m = _mm_cvtss_f32(m0);
    for (; i < n; ++i)
        m = std::max(m, std::fabs(v[i]));
    return m;
}

void
gemvRowsSse2(const float *w, size_t cols, const float *h, const float *bias,
             float *out, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r)
        out[r] = dotSse2(w + r * cols, h, cols) + (bias ? bias[r] : 0.0f);
}

void
gemvBatchRowsSse2(const float *w, size_t cols, const float *const *hs,
                  float *const *outs, size_t nq, const float *bias,
                  size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float *wr = w + r * cols;
        const float b = bias ? bias[r] : 0.0f;
        size_t q = 0;
        for (; q + 1 < nq; q += 2) {
            float s0, s1;
            dot2Sse2(wr, hs[q], hs[q + 1], cols, &s0, &s1);
            outs[q][r] = s0 + b;
            outs[q + 1][r] = s1 + b;
        }
        if (q < nq)
            outs[q][r] = dotSse2(wr, hs[q], cols) + b;
    }
}

inline int64_t
hsumEpi32(__m128i v)
{
    alignas(16) int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(lanes), v);
    return static_cast<int64_t>(lanes[0]) + lanes[1] + lanes[2] + lanes[3];
}

void
gemvQuantRowsSse2(const int8_t *w, size_t cols, const float *scales,
                  const int8_t *h, float hscale, const float *bias,
                  float *out, size_t r0, size_t r1)
{
    const __m128i zero = _mm_setzero_si128();
    for (size_t r = r0; r < r1; ++r) {
        const int8_t *wr = w + r * cols;
        __m128i acc = _mm_setzero_si128();
        size_t c = 0;
        for (; c + 16 <= cols; c += 16) {
            const __m128i wv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(wr + c));
            const __m128i hv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(h + c));
            // Sign-extend int8 -> int16 via unpack with the sign byte.
            const __m128i ws = _mm_cmpgt_epi8(zero, wv);
            const __m128i hsgn = _mm_cmpgt_epi8(zero, hv);
            const __m128i wlo = _mm_unpacklo_epi8(wv, ws);
            const __m128i whi = _mm_unpackhi_epi8(wv, ws);
            const __m128i hlo = _mm_unpacklo_epi8(hv, hsgn);
            const __m128i hhi = _mm_unpackhi_epi8(hv, hsgn);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(wlo, hlo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(whi, hhi));
        }
        int64_t total = hsumEpi32(acc);
        for (; c < cols; ++c)
            total += static_cast<int64_t>(wr[c]) * h[c];
        out[r] = static_cast<float>(total) * scales[r] * hscale +
                 (bias ? bias[r] : 0.0f);
    }
}

void
quantizeSpanSse2(const float *v, size_t n, float inv_scale, int max_level,
                 int8_t *out)
{
    // Pre-clamp to +-(max_level + 1) so cvttps-based truncation is exact,
    // then round half away from zero — bit-exact with lround + clamp.
    const __m128 vinv = _mm_set1_ps(inv_scale);
    const float lim = static_cast<float>(max_level + 1);
    const __m128 vlim = _mm_set1_ps(lim);
    const __m128 vnlim = _mm_set1_ps(-lim);
    const __m128 vmax = _mm_set1_ps(static_cast<float>(max_level));
    const __m128 vmin = _mm_set1_ps(static_cast<float>(-max_level));
    const __m128 half = _mm_set1_ps(0.5f);
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    const __m128 signmask =
        _mm_castsi128_ps(_mm_set1_epi32(static_cast<int32_t>(0x80000000u)));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128 t = _mm_mul_ps(_mm_loadu_ps(v + i), vinv);
        t = _mm_min_ps(_mm_max_ps(t, vnlim), vlim);
        __m128 r = _mm_cvtepi32_ps(_mm_cvttps_epi32(t));
        const __m128 frac = _mm_and_ps(absmask, _mm_sub_ps(t, r));
        const __m128 bump =
            _mm_and_ps(_mm_cmpge_ps(frac, half),
                       _mm_or_ps(one, _mm_and_ps(signmask, t)));
        r = _mm_add_ps(r, bump);
        r = _mm_min_ps(_mm_max_ps(r, vmin), vmax);
        const __m128i q32 = _mm_cvttps_epi32(r);
        const __m128i q16 = _mm_packs_epi32(q32, q32);
        const __m128i q8 = _mm_packs_epi16(q16, q16);
        const int packed = _mm_cvtsi128_si32(q8);
        std::copy_n(reinterpret_cast<const char *>(&packed), 4,
                    reinterpret_cast<char *>(out + i));
    }
    for (; i < n; ++i) {
        const long q = std::lround(v[i] * inv_scale);
        out[i] = static_cast<int8_t>(
            std::clamp<long>(q, -max_level, max_level));
    }
}

/** 4-slot float gather-accumulate of h[idx[i]] over [begin, end). */
inline float
gatherSum(const float *h, const uint32_t *idx, uint32_t begin, uint32_t end)
{
    __m128 acc = _mm_setzero_ps();
    uint32_t i = begin;
    for (; i + 4 <= end; i += 4) {
        acc = _mm_add_ps(acc, _mm_set_ps(h[idx[i + 3]], h[idx[i + 2]],
                                         h[idx[i + 1]], h[idx[i]]));
    }
    float s = hsum128(acc);
    for (; i < end; ++i)
        s += h[idx[i]];
    return s;
}

void
projectRowsSse2(const float *h, const uint32_t *plus,
                const uint32_t *plus_off, const uint32_t *minus,
                const uint32_t *minus_off, float scale, float *y, size_t r0,
                size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float sp = gatherSum(h, plus, plus_off[r], plus_off[r + 1]);
        const float sm = gatherSum(h, minus, minus_off[r], minus_off[r + 1]);
        y[r] = (sp - sm) * scale;
    }
}

constexpr KernelOps kSse2Ops = {
    "sse2",            dotSse2,          axpySse2,
    absMaxSse2,        gemvRowsSse2,     gemvBatchRowsSse2,
    gemvQuantRowsSse2, quantizeSpanSse2, projectRowsSse2,
};

} // namespace

const KernelOps *
sse2KernelOps()
{
    return &kSse2Ops;
}

} // namespace enmc::tensor::kernels

#else // non-x86

namespace enmc::tensor::kernels {

const KernelOps *
sse2KernelOps()
{
    return nullptr;
}

} // namespace enmc::tensor::kernels

#endif
