/**
 * @file
 * Fixed-point quantization used by the Screener's INT4 datapath.
 *
 * The paper quantizes both the projected features and the screener weights
 * to 4-bit fixed point ("The Screener performs dimension-reduced INT4
 * computations"); Fig. 12(b) sweeps the quantization level, so the bit
 * width is a parameter here (2/4/8 bits supported, plus FP32 passthrough).
 *
 * Scheme: symmetric linear quantization. Per-row scales for weight matrices
 * (each category row gets its own scale, cheap to store alongside the row)
 * and a per-tensor scale for activations.
 */

#ifndef ENMC_TENSOR_QUANTIZE_H
#define ENMC_TENSOR_QUANTIZE_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::tensor {

/** Quantization bit-width selector. Fp32 disables quantization. */
enum class QuantBits {
    Fp32 = 0,
    Int8 = 8,
    Int4 = 4,
    Int2 = 2,
};

/** Number of payload bits (0 for FP32). */
int quantBitCount(QuantBits bits);

/** Largest representable magnitude, e.g. 7 for INT4 symmetric. */
int quantMaxLevel(QuantBits bits);

/** A quantized vector: int8 storage (values fit the chosen width) + scale. */
struct QuantizedVector
{
    std::vector<int8_t> values;
    float scale = 1.0f;    //!< dequant: real = value * scale
    QuantBits bits = QuantBits::Int4;

    /** Reconstruct the real-valued vector. */
    Vector dequantize() const;

    /** Storage bytes at the nominal bit width (packed). */
    size_t packedBytes() const;
};

/**
 * A quantized matrix with per-row scales. Storage is one int8 per element
 * regardless of nominal width; packedBytes() reports the true packed size
 * used for all bandwidth/timing accounting.
 */
struct QuantizedMatrix
{
    size_t rows = 0;
    size_t cols = 0;
    std::vector<int8_t> values;    //!< row-major
    std::vector<float> scales;     //!< one per row
    QuantBits bits = QuantBits::Int4;

    std::span<const int8_t> row(size_t r) const
    {
        return {values.data() + r * cols, cols};
    }

    Matrix dequantize() const;
    size_t packedBytes() const;
};

/** Quantize a vector with a symmetric per-tensor scale. */
QuantizedVector quantize(std::span<const float> v, QuantBits bits);

/** Quantize a matrix with symmetric per-row scales. */
QuantizedMatrix quantize(const Matrix &m, QuantBits bits);

/**
 * Integer GEMV: z[r] = scale_r * scale_h * sum_c Wq[r][c] * hq[c] + b[r].
 * This is the exact arithmetic the Screener's INT4 MAC array performs
 * (integer multiply-accumulate, one dequant multiply per output).
 */
Vector gemvQuantized(const QuantizedMatrix &w, const QuantizedVector &h,
                     std::span<const float> b);

/**
 * Integer GEMV restricted to rows [r0, r1): z[r] (absolute indexing,
 * z.size() == w.rows) gets the same bit-exact value gemvQuantized()
 * produces for that row. Used by the functional backend, which evaluates
 * per-bank row slices.
 */
void gemvQuantizedRows(const QuantizedMatrix &w, std::span<const int8_t> h,
                       float hscale, std::span<const float> b,
                       std::span<float> z, size_t r0, size_t r1);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_QUANTIZE_H
