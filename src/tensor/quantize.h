/**
 * @file
 * Fixed-point quantization used by the Screener's INT4 datapath.
 *
 * The paper quantizes both the projected features and the screener weights
 * to 4-bit fixed point ("The Screener performs dimension-reduced INT4
 * computations"); Fig. 12(b) sweeps the quantization level, so the bit
 * width is a parameter here (2/4/8 bits supported, plus FP32 passthrough).
 *
 * Schemes: symmetric linear quantization (the bit-identical default —
 * per-row scales for weight matrices, each category row gets its own
 * scale, cheap to store alongside the row; a per-tensor scale for
 * activations), plus an opt-in calibration-based *asymmetric* per-row
 * scheme (rmin/rmax + zero-point, the chainer-compiler
 * Linear_NonScaled mode): rows whose value distribution is offset from
 * zero waste half the symmetric code space, and at INT4 that is the
 * difference between 16 useful levels and ~8. Activations stay
 * symmetric in both schemes (that is what the Screener's feature path
 * streams), so the asymmetric GEMV reduces to the symmetric integer
 * MAC plus one per-row correction term zp_r * sum(hq).
 */

#ifndef ENMC_TENSOR_QUANTIZE_H
#define ENMC_TENSOR_QUANTIZE_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::tensor {

/** Quantization bit-width selector. Fp32 disables quantization. */
enum class QuantBits {
    Fp32 = 0,
    Int8 = 8,
    Int4 = 4,
    Int2 = 2,
};

/** Number of payload bits (0 for FP32). */
int quantBitCount(QuantBits bits);

/**
 * Quantization scheme selector. Symmetric is the default everywhere and
 * keeps every existing result bit-identical; Asymmetric is the
 * calibration-based rmin/rmax + zero-point per-row scheme.
 */
enum class QuantScheme : uint8_t {
    Symmetric = 0,
    Asymmetric = 1,
};

const char *quantSchemeName(QuantScheme scheme);

/**
 * Unsigned level span of the asymmetric scheme: 2^bits - 1 (15 for INT4).
 * Codes run [0, span]; the zero-point is the code of real 0.0.
 */
int quantLevelSpan(QuantBits bits);

/** Largest representable magnitude, e.g. 7 for INT4 symmetric. */
int quantMaxLevel(QuantBits bits);

/** A quantized vector: int8 storage (values fit the chosen width) + scale. */
struct QuantizedVector
{
    std::vector<int8_t> values;
    float scale = 1.0f;    //!< dequant: real = value * scale
    QuantBits bits = QuantBits::Int4;

    /** Reconstruct the real-valued vector. */
    Vector dequantize() const;

    /** Storage bytes at the nominal bit width (packed). */
    size_t packedBytes() const;
};

/**
 * A quantized matrix with per-row scales. Storage is one int8 per element
 * regardless of nominal width; packedBytes() reports the true packed size
 * used for all bandwidth/timing accounting.
 */
struct QuantizedMatrix
{
    size_t rows = 0;
    size_t cols = 0;
    std::vector<int8_t> values;    //!< row-major
    std::vector<float> scales;     //!< one per row
    QuantBits bits = QuantBits::Int4;
    QuantScheme scheme = QuantScheme::Symmetric;
    /**
     * Per-row zero-points (asymmetric scheme only; empty for symmetric).
     * Codes are unsigned levels in [0, quantLevelSpan(bits)], stored in
     * the int8 `values` lanes; real = (code - zero_point) * scale.
     */
    std::vector<int32_t> zero_points;

    std::span<const int8_t> row(size_t r) const
    {
        return {values.data() + r * cols, cols};
    }

    /** Calibration range of row r implied by scale + zero-point. */
    float rowMin(size_t r) const;
    float rowMax(size_t r) const;

    Matrix dequantize() const;
    size_t packedBytes() const;
};

/** Quantize a vector with a symmetric per-tensor scale. */
QuantizedVector quantize(std::span<const float> v, QuantBits bits);

/** Quantize a matrix with symmetric per-row scales. */
QuantizedMatrix quantize(const Matrix &m, QuantBits bits);

/**
 * Quantize a matrix with asymmetric per-row rmin/rmax + zero-point
 * codecs. The calibration range of each row is [min(rmin, 0),
 * max(rmax, 0)] (always spanning 0 so the zero-point is representable,
 * per the chainer-compiler scheme); a degenerate row (rmin == rmax,
 * i.e. constant zero after the span-0 clamp) is a fatal configuration
 * error — symmetric quantization handles it, asymmetric calibration
 * cannot produce a scale from an empty range.
 */
QuantizedMatrix quantizeAsymmetric(const Matrix &m, QuantBits bits);

/** Dispatch on `scheme`: quantize() or quantizeAsymmetric(). */
QuantizedMatrix quantize(const Matrix &m, QuantBits bits,
                         QuantScheme scheme);

/**
 * Integer GEMV: z[r] = scale_r * scale_h * sum_c Wq[r][c] * hq[c] + b[r].
 * This is the exact arithmetic the Screener's INT4 MAC array performs
 * (integer multiply-accumulate, one dequant multiply per output).
 *
 * Asymmetric weights add the per-row correction term — z[r] =
 * scale_r * scale_h * (sum_c Wq[r][c] * hq[c] - zp_r * sum_c hq[c]) +
 * b[r] — still one integer MAC per element plus one per-row multiply
 * (sum_c hq[c] is shared by every row).
 */
Vector gemvQuantized(const QuantizedMatrix &w, const QuantizedVector &h,
                     std::span<const float> b);

/**
 * Integer GEMV restricted to rows [r0, r1): z[r] (absolute indexing,
 * z.size() == w.rows) gets the same bit-exact value gemvQuantized()
 * produces for that row. Used by the functional backend, which evaluates
 * per-bank row slices.
 */
void gemvQuantizedRows(const QuantizedMatrix &w, std::span<const int8_t> h,
                       float hscale, std::span<const float> b,
                       std::span<float> z, size_t r0, size_t r1);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_QUANTIZE_H
