/**
 * @file
 * Small dense SPD linear solves (Cholesky), used by the closed-form
 * screener initializer and by tests.
 */

#ifndef ENMC_TENSOR_SOLVE_H
#define ENMC_TENSOR_SOLVE_H

#include "tensor/matrix.h"

namespace enmc::tensor {

/**
 * Cholesky factorization A = L Lᵀ of a symmetric positive-definite matrix.
 * @return Lower-triangular L. Panics if A is not (numerically) SPD.
 */
Matrix cholesky(const Matrix &a);

/** Solve L Lᵀ x = b given the Cholesky factor L. */
Vector choleskySolve(const Matrix &l, std::span<const float> b);

/**
 * Solve A X = B for X where A is SPD (k x k) and B is k x n, returning X
 * (k x n). Used as X = A⁻¹ B.
 */
Matrix spdSolve(const Matrix &a, const Matrix &b);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_SOLVE_H
