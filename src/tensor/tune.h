/**
 * @file
 * Persistence and startup loading of autotuned configurations — the
 * `enmc.tune` JSON schema written by `tools/autotune` and consumed via
 * `ENMC_TUNE_JSON=` at startup.
 *
 * Document shape (schema "enmc.tune", schema_version 1):
 *
 *   {
 *     "schema": "enmc.tune", "schema_version": 1, "tool": "autotune",
 *     "configs": {
 *       "<microarch key>": {
 *         "kernels": "avx512",              // optional dispatch pin
 *         "host": { gemv_row_chunk, gemv_parallel_min_work,
 *                   batch_query_tile, batch_row_tile, topk_scan_cutoff },
 *         "sim":  { ranks_per_channel, int4_macs, inst_fifo_depth,
 *                   prefetch_tiles, ddr_cycles },   // optional
 *         "measurements": { ... }                    // optional, informative
 *       }, ...
 *     }
 *   }
 *
 * Configs are keyed by `kernels::microarchKey()` so a file is portable:
 * a host only applies an entry measured on matching hardware and keeps
 * its defaults (with an inform message) otherwise. Applying a config
 * changes performance only — every TuneParams value is bit-exactness
 * preserving, and the "sim" block is a recorded design point for tools
 * that opt in (it is NEVER applied implicitly; paper figures use the
 * Table 3 defaults regardless of ENMC_TUNE_JSON).
 */

#ifndef ENMC_TENSOR_TUNE_H
#define ENMC_TENSOR_TUNE_H

#include <optional>
#include <string>

#include "tensor/kernels.h"

namespace enmc::obs {
class Json;
}

namespace enmc::tensor::tune {

/** The simulated design point `tools/autotune` explores (Table 3 axes). */
struct SimTune
{
    uint64_t ranks_per_channel = 4;  //!< dram::Organization::ranks
    uint64_t int4_macs = 128;        //!< screener MAC array width
    uint64_t inst_fifo_depth = 64;   //!< controller instruction FIFO
    uint64_t prefetch_tiles = 8;     //!< in-flight weight-tile fetches
    /** Simulated DDR cycles of the scoring job at this point. */
    uint64_t ddr_cycles = 0;

    bool operator==(const SimTune &) const = default;
};

/** One microarch's tuned entry as carried by the document. */
struct TunedConfig
{
    kernels::TuneParams host;
    /** Dispatch pin ("avx2"/"avx512"/...); empty = leave cpuid choice. */
    std::string kernels_target;
    std::optional<SimTune> sim;
};

/** Serialize one entry under `configs` (see the schema above). */
obs::Json configToJson(const TunedConfig &cfg);

/**
 * Build a complete `enmc.tune` document holding `cfg` under
 * `microarch_key` (callers may merge more keys before writing).
 */
obs::Json makeDocument(const std::string &microarch_key,
                       const TunedConfig &cfg);

/**
 * Parse one entry of `configs`. Fatal (configuration error) on
 * malformed fields — a typo'd tune file must abort, not half-apply.
 */
TunedConfig configFromJson(const obs::Json &j);

/**
 * Load an `enmc.tune` file and apply the entry matching this host's
 * `kernels::microarchKey()`: installs the host TuneParams and, when the
 * entry pins a kernel target, switches dispatch to it. `ENMC_KERNELS=`
 * always wins over the pin. Fatal on unreadable files or schema
 * mismatches; informs and leaves defaults when no entry matches this
 * microarch.
 *
 * @return true when an entry was applied.
 */
bool loadAndApply(const std::string &path);

/**
 * Startup hook: apply `ENMC_TUNE_JSON=` once per process (idempotent,
 * thread-safe). Called by the runtime (EnmcSystem), the serve loop, and
 * the bench/tool mains, so every entry point honours the tuned config
 * without plumbing.
 *
 * @return true when a config was applied (on any call).
 */
bool loadFromEnv();

/** Parse a `TunedConfig` entry for `microarch_key` out of a document
 *  already in memory; nullopt when the key is absent. Fatal on schema
 *  violations. Exposed for tools (autotune's reload check) and tests. */
std::optional<TunedConfig> findConfig(const obs::Json &doc,
                                      const std::string &microarch_key);

} // namespace enmc::tensor::tune

#endif // ENMC_TENSOR_TUNE_H
