/**
 * @file
 * Dense linear-algebra kernels and classification non-linearities.
 */

#ifndef ENMC_TENSOR_OPS_H
#define ENMC_TENSOR_OPS_H

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::tensor {

/** Inner product of two equal-length spans. */
float dot(std::span<const float> a, std::span<const float> b);

/** y += alpha * x. */
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/** z = W h + b (full matrix-vector classification transform, Eq. 1). */
Vector gemv(const Matrix &w, std::span<const float> h,
            std::span<const float> b);

/** z = W h (no bias). */
Vector gemv(const Matrix &w, std::span<const float> h);

/**
 * Batched multi-query GEMV: one output vector per query in `hs`, each
 * bit-identical to gemv(w, hs[q], b). Weight rows are streamed once per
 * batch (see tensor/kernels.h), the win for multi-item inference.
 */
std::vector<Vector> gemvBatch(const Matrix &w, std::span<const Vector> hs,
                              std::span<const float> b = {});

/** C = A * B (small helper for SVD and tests). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** Transpose. */
Matrix transpose(const Matrix &a);

/** Numerically stable in-place softmax (Eq. 2). */
void softmaxInPlace(std::span<float> z);

/** Softmax into a fresh vector. */
Vector softmax(std::span<const float> z);

/** Element-wise logistic sigmoid into a fresh vector. */
Vector sigmoid(std::span<const float> z);

/** Numerically stable log(sum(exp(z))). */
double logSumExp(std::span<const float> z);

/**
 * exp(x) approximated by a 4th-order Taylor expansion with range reduction
 * (x = k*ln2 + r, |r| <= ln2/2), matching the ENMC Executor's
 * special-function unit ("we approximate the exponential function with
 * Taylor expansion to the 4th order").
 */
float taylorExp4(float x);

/** Softmax computed with taylorExp4 — the SFU's numeric behaviour. */
Vector softmaxTaylor(std::span<const float> z);

/** Sigmoid computed with taylorExp4. */
Vector sigmoidTaylor(std::span<const float> z);

/** Mean squared error between two equal-length vectors. */
double mse(std::span<const float> a, std::span<const float> b);

/** Euclidean norm. */
double norm2(std::span<const float> a);

/** Argmax index of a non-empty span. */
size_t argmax(std::span<const float> z);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_OPS_H
