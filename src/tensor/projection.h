/**
 * @file
 * Achlioptas sparse random projection (paper Section 4.2, reference [1]).
 *
 * P ∈ sqrt(3/k) · {-1, 0, +1}^{k×d}, with entries +1/-1 each w.p. 1/6 and 0
 * w.p. 2/3. The matrix is stored sparsely (per output row, the indices of
 * +1 and -1 inputs) so applying it needs only additions — the 2-bit
 * representation the paper cites for its < 0.1% storage overhead.
 */

#ifndef ENMC_TENSOR_PROJECTION_H
#define ENMC_TENSOR_PROJECTION_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace enmc::tensor {

/** Sparse {-1, 0, +1} random projection from d dims down to k dims. */
class SparseProjection
{
  public:
    /**
     * Build a k x d projection with independent Achlioptas entries.
     *
     * @param k Output (reduced) dimension.
     * @param d Input (hidden) dimension.
     * @param rng Seeded generator; the projection is a pure function of it.
     */
    SparseProjection(size_t k, size_t d, Rng &rng);

    size_t outputDim() const { return k_; }
    size_t inputDim() const { return d_; }

    /** y = P h  (y has k entries). */
    Vector apply(std::span<const float> h) const;

    /** Densify to a k x d matrix (tests / reference math only). */
    Matrix toDense() const;

    /** Storage at 2 bits per entry plus row offsets — the DRAM footprint. */
    size_t packedBytes() const;

    /** Number of nonzero entries (expected k*d/3). */
    size_t nonZeros() const { return plus_.size() + minus_.size(); }

  private:
    size_t k_;
    size_t d_;
    float scale_;                       //!< sqrt(3/k)
    std::vector<uint32_t> plus_;        //!< flat +1 column indices
    std::vector<uint32_t> minus_;       //!< flat -1 column indices
    std::vector<uint32_t> plusOffset_;  //!< row r: plus_[ofs[r], ofs[r+1])
    std::vector<uint32_t> minusOffset_;
};

} // namespace enmc::tensor

#endif // ENMC_TENSOR_PROJECTION_H
