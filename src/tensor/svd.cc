#include "tensor/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace enmc::tensor {

Matrix
SvdResult::uSigma() const
{
    Matrix b(u.rows(), u.cols());
    for (size_t i = 0; i < u.rows(); ++i)
        for (size_t j = 0; j < u.cols(); ++j)
            b(i, j) = u(i, j) * sigma[j];
    return b;
}

std::vector<float>
jacobiEigenSymmetric(const Matrix &a_in, Matrix &eigvecs, int max_sweeps,
                     double tol)
{
    const size_t n = a_in.rows();
    ENMC_ASSERT(a_in.cols() == n, "jacobi: matrix must be square");
    // Work in double for stability; classifier Gram matrices can have a
    // large dynamic range in eigenvalues.
    std::vector<double> a(n * n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            a[i * n + j] = a_in(i, j);

    std::vector<double> v(n * n, 0.0);
    for (size_t i = 0; i < n; ++i)
        v[i * n + i] = 1.0;

    auto offDiagNorm = [&]() {
        double s = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                s += a[i * n + j] * a[i * n + j];
        return std::sqrt(2.0 * s);
    };
    double diag_norm = 0.0;
    for (size_t i = 0; i < n; ++i)
        diag_norm += a[i * n + i] * a[i * n + i];
    diag_norm = std::max(std::sqrt(diag_norm), 1e-30);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagNorm() <= tol * diag_norm)
            break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::fabs(apq) < 1e-300)
                    continue;
                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                // Rotate rows/cols p and q of A.
                for (size_t i = 0; i < n; ++i) {
                    const double aip = a[i * n + p];
                    const double aiq = a[i * n + q];
                    a[i * n + p] = c * aip - s * aiq;
                    a[i * n + q] = s * aip + c * aiq;
                }
                for (size_t i = 0; i < n; ++i) {
                    const double api = a[p * n + i];
                    const double aqi = a[q * n + i];
                    a[p * n + i] = c * api - s * aqi;
                    a[q * n + i] = s * api + c * aqi;
                }
                // Accumulate eigenvectors.
                for (size_t i = 0; i < n; ++i) {
                    const double vip = v[i * n + p];
                    const double viq = v[i * n + q];
                    v[i * n + p] = c * vip - s * viq;
                    v[i * n + q] = s * vip + c * viq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return a[x * n + x] > a[y * n + y];
    });

    eigvecs = Matrix(n, n);
    std::vector<float> eigvals(n);
    for (size_t j = 0; j < n; ++j) {
        const size_t src = order[j];
        eigvals[j] = static_cast<float>(a[src * n + src]);
        for (size_t i = 0; i < n; ++i)
            eigvecs(i, j) = static_cast<float>(v[i * n + src]);
    }
    return eigvals;
}

SvdResult
thinSvd(const Matrix &w, int max_sweeps)
{
    const size_t l = w.rows();
    const size_t d = w.cols();
    ENMC_ASSERT(l >= d, "thinSvd expects rows >= cols");

    // G = Wᵀ W (d x d symmetric).
    Matrix g(d, d);
    for (size_t r = 0; r < l; ++r) {
        const auto row = w.row(r);
        for (size_t i = 0; i < d; ++i) {
            const float wi = row[i];
            if (wi == 0.0f)
                continue;
            for (size_t j = i; j < d; ++j)
                g(i, j) += wi * row[j];
        }
    }
    for (size_t i = 0; i < d; ++i)
        for (size_t j = 0; j < i; ++j)
            g(i, j) = g(j, i);

    SvdResult res;
    std::vector<float> eig = jacobiEigenSymmetric(g, res.v, max_sweeps);
    res.sigma.resize(d);
    for (size_t j = 0; j < d; ++j)
        res.sigma[j] = std::sqrt(std::max(eig[j], 0.0f));

    // U = W V Σ⁻¹.
    res.u = Matrix(l, d);
    for (size_t r = 0; r < l; ++r) {
        const auto row = w.row(r);
        for (size_t j = 0; j < d; ++j) {
            double acc = 0.0;
            for (size_t i = 0; i < d; ++i)
                acc += static_cast<double>(row[i]) * res.v(i, j);
            const double s = res.sigma[j];
            res.u(r, j) = (s > 1e-12) ? static_cast<float>(acc / s) : 0.0f;
        }
    }
    return res;
}

} // namespace enmc::tensor
