/**
 * @file
 * Dense row-major matrix and vector types used throughout the project.
 *
 * Classifier weights are stored as l x d row-major matrices so that the
 * per-category weight vector (one classification row) is contiguous —
 * matching how the ENMC Executor fetches candidate rows from DRAM.
 */

#ifndef ENMC_TENSOR_MATRIX_H
#define ENMC_TENSOR_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"

namespace enmc::tensor {

/** Dense float vector. */
using Vector = std::vector<float>;

/** Dense row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix initialized to zero. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Element access (row-major). */
    float &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Contiguous view of one row. */
    std::span<float> row(size_t r)
    {
        ENMC_ASSERT(r < rows_, "row out of range");
        return {data_.data() + r * cols_, cols_};
    }
    std::span<const float> row(size_t r) const
    {
        ENMC_ASSERT(r < rows_, "row out of range");
        return {data_.data() + r * cols_, cols_};
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Bytes of storage (FP32). */
    size_t bytes() const { return data_.size() * sizeof(float); }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace enmc::tensor

#endif // ENMC_TENSOR_MATRIX_H
