#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace enmc::tensor {

int
quantBitCount(QuantBits bits)
{
    return static_cast<int>(bits);
}

int
quantMaxLevel(QuantBits bits)
{
    switch (bits) {
      case QuantBits::Fp32:
        return 0;
      case QuantBits::Int8:
        return 127;
      case QuantBits::Int4:
        return 7;
      case QuantBits::Int2:
        return 1;
    }
    ENMC_PANIC("unreachable quant bits");
}

namespace {

/** Max |v| over a span. */
float
absMax(std::span<const float> v)
{
    float m = 0.0f;
    for (float x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

int8_t
quantizeOne(float v, float inv_scale, int max_level)
{
    const long q = std::lround(v * inv_scale);
    return static_cast<int8_t>(std::clamp<long>(q, -max_level, max_level));
}

} // namespace

Vector
QuantizedVector::dequantize() const
{
    Vector v(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        v[i] = values[i] * scale;
    return v;
}

size_t
QuantizedVector::packedBytes() const
{
    if (bits == QuantBits::Fp32)
        return values.size() * sizeof(float);
    return ceilDiv(values.size() * quantBitCount(bits), 8) + sizeof(float);
}

Matrix
QuantizedMatrix::dequantize() const
{
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m(r, c) = values[r * cols + c] * scales[r];
    return m;
}

size_t
QuantizedMatrix::packedBytes() const
{
    if (bits == QuantBits::Fp32)
        return values.size() * sizeof(float);
    return ceilDiv(values.size() * quantBitCount(bits), 8) +
           scales.size() * sizeof(float);
}

QuantizedVector
quantize(std::span<const float> v, QuantBits bits)
{
    QuantizedVector q;
    q.bits = bits;
    q.values.resize(v.size());
    if (bits == QuantBits::Fp32)
        ENMC_PANIC("quantize() called with Fp32; keep the float vector");
    const int max_level = quantMaxLevel(bits);
    const float m = absMax(v);
    q.scale = (m > 0.0f) ? m / max_level : 1.0f;
    const float inv = 1.0f / q.scale;
    for (size_t i = 0; i < v.size(); ++i)
        q.values[i] = quantizeOne(v[i], inv, max_level);
    return q;
}

QuantizedMatrix
quantize(const Matrix &m, QuantBits bits)
{
    ENMC_ASSERT(bits != QuantBits::Fp32,
                "quantize(Matrix) called with Fp32; keep the float matrix");
    QuantizedMatrix q;
    q.bits = bits;
    q.rows = m.rows();
    q.cols = m.cols();
    q.values.resize(m.size());
    q.scales.resize(m.rows());
    const int max_level = quantMaxLevel(bits);
    for (size_t r = 0; r < m.rows(); ++r) {
        const auto row = m.row(r);
        const float am = absMax(row);
        const float scale = (am > 0.0f) ? am / max_level : 1.0f;
        q.scales[r] = scale;
        const float inv = 1.0f / scale;
        for (size_t c = 0; c < m.cols(); ++c)
            q.values[r * m.cols() + c] = quantizeOne(row[c], inv, max_level);
    }
    return q;
}

Vector
gemvQuantized(const QuantizedMatrix &w, const QuantizedVector &h,
              std::span<const float> b)
{
    ENMC_ASSERT(w.cols == h.values.size(), "gemvQuantized: dim mismatch");
    ENMC_ASSERT(b.empty() || b.size() == w.rows,
                "gemvQuantized: bias size mismatch");
    Vector z(w.rows);
    for (size_t r = 0; r < w.rows; ++r) {
        const auto wr = w.row(r);
        int64_t acc = 0;
        for (size_t c = 0; c < w.cols; ++c)
            acc += static_cast<int64_t>(wr[c]) * h.values[c];
        z[r] = static_cast<float>(acc) * w.scales[r] * h.scale +
               (b.empty() ? 0.0f : b[r]);
    }
    return z;
}

} // namespace enmc::tensor
