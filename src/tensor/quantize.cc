#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "tensor/kernels.h"

namespace enmc::tensor {

int
quantBitCount(QuantBits bits)
{
    return static_cast<int>(bits);
}

int
quantMaxLevel(QuantBits bits)
{
    switch (bits) {
      case QuantBits::Fp32:
        return 0;
      case QuantBits::Int8:
        return 127;
      case QuantBits::Int4:
        return 7;
      case QuantBits::Int2:
        return 1;
    }
    ENMC_PANIC("unreachable quant bits");
}

const char *
quantSchemeName(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::Symmetric:
        return "symmetric";
      case QuantScheme::Asymmetric:
        return "asymmetric";
    }
    ENMC_PANIC("unreachable quant scheme");
}

int
quantLevelSpan(QuantBits bits)
{
    const int count = quantBitCount(bits);
    ENMC_ASSERT(count > 0, "quantLevelSpan: FP32 has no level span");
    return (1 << count) - 1;
}

namespace {

/** Per-row symmetric scale from the row's absolute maximum. */
float
rowScale(std::span<const float> row, int max_level)
{
    const float am = kernels::absMax(row);
    return (am > 0.0f) ? am / max_level : 1.0f;
}

} // namespace

Vector
QuantizedVector::dequantize() const
{
    Vector v(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        v[i] = values[i] * scale;
    return v;
}

size_t
QuantizedVector::packedBytes() const
{
    if (bits == QuantBits::Fp32)
        return values.size() * sizeof(float);
    return ceilDiv(values.size() * quantBitCount(bits), 8) + sizeof(float);
}

Matrix
QuantizedMatrix::dequantize() const
{
    Matrix m(rows, cols);
    if (scheme == QuantScheme::Asymmetric) {
        // Codes are unsigned levels stored in the int8 lanes; at INT8
        // the span is 255, so the lane bits must be read back unsigned.
        for (size_t r = 0; r < rows; ++r)
            for (size_t c = 0; c < cols; ++c)
                m(r, c) = static_cast<float>(
                              static_cast<int32_t>(static_cast<uint8_t>(
                                  values[r * cols + c])) -
                              zero_points[r]) *
                          scales[r];
        return m;
    }
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m(r, c) = values[r * cols + c] * scales[r];
    return m;
}

float
QuantizedMatrix::rowMin(size_t r) const
{
    ENMC_ASSERT(scheme == QuantScheme::Asymmetric,
                "rowMin: symmetric rows have no calibration range");
    return static_cast<float>(0 - zero_points[r]) * scales[r];
}

float
QuantizedMatrix::rowMax(size_t r) const
{
    ENMC_ASSERT(scheme == QuantScheme::Asymmetric,
                "rowMax: symmetric rows have no calibration range");
    return static_cast<float>(quantLevelSpan(bits) - zero_points[r]) *
           scales[r];
}

size_t
QuantizedMatrix::packedBytes() const
{
    if (bits == QuantBits::Fp32)
        return values.size() * sizeof(float);
    // Asymmetric rows additionally store one packed zero-point code each
    // (codes fit the storage width, so one byte covers every width here).
    const size_t zp_bytes =
        (scheme == QuantScheme::Asymmetric) ? zero_points.size() : 0;
    return ceilDiv(values.size() * quantBitCount(bits), 8) +
           scales.size() * sizeof(float) + zp_bytes;
}

QuantizedVector
quantize(std::span<const float> v, QuantBits bits)
{
    QuantizedVector q;
    q.bits = bits;
    q.values.resize(v.size());
    if (bits == QuantBits::Fp32)
        ENMC_PANIC("quantize() called with Fp32; keep the float vector");
    const int max_level = quantMaxLevel(bits);
    q.scale = rowScale(v, max_level);
    kernels::ops().quantizeSpan(v.data(), v.size(), 1.0f / q.scale,
                                max_level, q.values.data());
    return q;
}

QuantizedMatrix
quantize(const Matrix &m, QuantBits bits)
{
    ENMC_ASSERT(bits != QuantBits::Fp32,
                "quantize(Matrix) called with Fp32; keep the float matrix");
    QuantizedMatrix q;
    q.bits = bits;
    q.rows = m.rows();
    q.cols = m.cols();
    q.values.resize(m.size());
    q.scales.resize(m.rows());
    const int max_level = quantMaxLevel(bits);
    // Rows are independent (quantizeSpan is bit-exact on every target), so
    // large matrices quantize in parallel without changing results.
    const size_t workers =
        (m.size() >= kernels::kParallelMinWork) ? 0 : 1;
    parallelFor(0, m.rows(), workers, [&](size_t r) {
        const auto row = m.row(r);
        const float scale = rowScale(row, max_level);
        q.scales[r] = scale;
        kernels::ops().quantizeSpan(row.data(), m.cols(), 1.0f / scale,
                                    max_level,
                                    q.values.data() + r * m.cols());
    });
    return q;
}

QuantizedMatrix
quantizeAsymmetric(const Matrix &m, QuantBits bits)
{
    ENMC_ASSERT(bits != QuantBits::Fp32,
                "quantizeAsymmetric called with Fp32; keep the float matrix");
    QuantizedMatrix q;
    q.bits = bits;
    q.scheme = QuantScheme::Asymmetric;
    q.rows = m.rows();
    q.cols = m.cols();
    q.values.resize(m.size());
    q.scales.resize(m.rows());
    q.zero_points.resize(m.rows());
    const int span = quantLevelSpan(bits);
    for (size_t r = 0; r < m.rows(); ++r) {
        const auto row = m.row(r);
        float rmin = 0.0f, rmax = 0.0f;
        for (const float v : row) {
            rmin = std::min(rmin, v);
            rmax = std::max(rmax, v);
        }
        // The range always spans 0 so the zero-point code exists; a row
        // that is still degenerate after the clamp is constant-zero.
        if (rmin == rmax)
            ENMC_FATAL("asymmetric quantization: degenerate row ", r,
                       " (rmin == rmax == ", rmin,
                       "); calibrate on non-constant rows or use the "
                       "symmetric scheme");
        const float scale = (rmax - rmin) / static_cast<float>(span);
        const int32_t zp = std::clamp<int32_t>(
            static_cast<int32_t>(std::lrint((0.0f - rmin) / scale)), 0,
            span);
        q.scales[r] = scale;
        q.zero_points[r] = zp;
        int8_t *out = q.values.data() + r * m.cols();
        for (size_t c = 0; c < m.cols(); ++c) {
            const int32_t code = std::clamp<int32_t>(
                static_cast<int32_t>(std::lrint(row[c] / scale)) + zp, 0,
                span);
            out[c] = static_cast<int8_t>(code);
        }
    }
    return q;
}

QuantizedMatrix
quantize(const Matrix &m, QuantBits bits, QuantScheme scheme)
{
    return scheme == QuantScheme::Asymmetric ? quantizeAsymmetric(m, bits)
                                             : quantize(m, bits);
}

namespace {

/**
 * Reference-loop asymmetric GEMV rows: integer MAC with the per-row
 * zero-point correction. Deliberately not kernel-dispatched — the
 * int64 accumulation order is fixed, so the result is bit-exact on
 * every target by construction (the same contract the symmetric path
 * gets from its kernel table).
 */
void
gemvAsymRows(const QuantizedMatrix &w, std::span<const int8_t> h,
             float hscale, std::span<const float> b, std::span<float> z,
             size_t r0, size_t r1)
{
    int64_t hsum = 0;
    for (const int8_t v : h)
        hsum += v;
    for (size_t r = r0; r < r1; ++r) {
        const int8_t *row = w.values.data() + r * w.cols;
        int64_t acc = 0;
        // Weight codes are unsigned levels in int8 lanes (up to 255 at
        // INT8) — reinterpret, don't sign-extend. Activations stay
        // symmetric/signed.
        for (size_t c = 0; c < w.cols; ++c)
            acc += static_cast<int64_t>(static_cast<uint8_t>(row[c])) *
                   h[c];
        acc -= static_cast<int64_t>(w.zero_points[r]) * hsum;
        z[r] = static_cast<float>(acc) * w.scales[r] * hscale +
               (b.empty() ? 0.0f : b[r]);
    }
}

} // namespace

Vector
gemvQuantized(const QuantizedMatrix &w, const QuantizedVector &h,
              std::span<const float> b)
{
    ENMC_ASSERT(w.cols == h.values.size(), "gemvQuantized: dim mismatch");
    ENMC_ASSERT(b.empty() || b.size() == w.rows,
                "gemvQuantized: bias size mismatch");
    Vector z(w.rows);
    if (w.scheme == QuantScheme::Asymmetric) {
        gemvAsymRows(w, h.values, h.scale, b, z, 0, w.rows);
        return z;
    }
    kernels::gemvQuantInto(w.values.data(), w.rows, w.cols,
                           w.scales.data(), h.values.data(), h.scale, b, z);
    return z;
}

void
gemvQuantizedRows(const QuantizedMatrix &w, std::span<const int8_t> h,
                  float hscale, std::span<const float> b, std::span<float> z,
                  size_t r0, size_t r1)
{
    ENMC_ASSERT(w.cols == h.size(), "gemvQuantizedRows: dim mismatch");
    ENMC_ASSERT(r0 <= r1 && r1 <= w.rows, "gemvQuantizedRows: bad row range");
    if (w.scheme == QuantScheme::Asymmetric) {
        gemvAsymRows(w, h, hscale, b, z, r0, r1);
        return;
    }
    kernels::ops().gemvQuantRows(w.values.data(), w.cols, w.scales.data(),
                                 h.data(), hscale,
                                 b.empty() ? nullptr : b.data(), z.data(),
                                 r0, r1);
}

} // namespace enmc::tensor
