#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "tensor/kernels.h"

namespace enmc::tensor {

int
quantBitCount(QuantBits bits)
{
    return static_cast<int>(bits);
}

int
quantMaxLevel(QuantBits bits)
{
    switch (bits) {
      case QuantBits::Fp32:
        return 0;
      case QuantBits::Int8:
        return 127;
      case QuantBits::Int4:
        return 7;
      case QuantBits::Int2:
        return 1;
    }
    ENMC_PANIC("unreachable quant bits");
}

namespace {

/** Per-row symmetric scale from the row's absolute maximum. */
float
rowScale(std::span<const float> row, int max_level)
{
    const float am = kernels::absMax(row);
    return (am > 0.0f) ? am / max_level : 1.0f;
}

} // namespace

Vector
QuantizedVector::dequantize() const
{
    Vector v(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        v[i] = values[i] * scale;
    return v;
}

size_t
QuantizedVector::packedBytes() const
{
    if (bits == QuantBits::Fp32)
        return values.size() * sizeof(float);
    return ceilDiv(values.size() * quantBitCount(bits), 8) + sizeof(float);
}

Matrix
QuantizedMatrix::dequantize() const
{
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m(r, c) = values[r * cols + c] * scales[r];
    return m;
}

size_t
QuantizedMatrix::packedBytes() const
{
    if (bits == QuantBits::Fp32)
        return values.size() * sizeof(float);
    return ceilDiv(values.size() * quantBitCount(bits), 8) +
           scales.size() * sizeof(float);
}

QuantizedVector
quantize(std::span<const float> v, QuantBits bits)
{
    QuantizedVector q;
    q.bits = bits;
    q.values.resize(v.size());
    if (bits == QuantBits::Fp32)
        ENMC_PANIC("quantize() called with Fp32; keep the float vector");
    const int max_level = quantMaxLevel(bits);
    q.scale = rowScale(v, max_level);
    kernels::ops().quantizeSpan(v.data(), v.size(), 1.0f / q.scale,
                                max_level, q.values.data());
    return q;
}

QuantizedMatrix
quantize(const Matrix &m, QuantBits bits)
{
    ENMC_ASSERT(bits != QuantBits::Fp32,
                "quantize(Matrix) called with Fp32; keep the float matrix");
    QuantizedMatrix q;
    q.bits = bits;
    q.rows = m.rows();
    q.cols = m.cols();
    q.values.resize(m.size());
    q.scales.resize(m.rows());
    const int max_level = quantMaxLevel(bits);
    // Rows are independent (quantizeSpan is bit-exact on every target), so
    // large matrices quantize in parallel without changing results.
    const size_t workers =
        (m.size() >= kernels::kParallelMinWork) ? 0 : 1;
    parallelFor(0, m.rows(), workers, [&](size_t r) {
        const auto row = m.row(r);
        const float scale = rowScale(row, max_level);
        q.scales[r] = scale;
        kernels::ops().quantizeSpan(row.data(), m.cols(), 1.0f / scale,
                                    max_level,
                                    q.values.data() + r * m.cols());
    });
    return q;
}

Vector
gemvQuantized(const QuantizedMatrix &w, const QuantizedVector &h,
              std::span<const float> b)
{
    ENMC_ASSERT(w.cols == h.values.size(), "gemvQuantized: dim mismatch");
    ENMC_ASSERT(b.empty() || b.size() == w.rows,
                "gemvQuantized: bias size mismatch");
    Vector z(w.rows);
    kernels::gemvQuantInto(w.values.data(), w.rows, w.cols,
                           w.scales.data(), h.values.data(), h.scale, b, z);
    return z;
}

void
gemvQuantizedRows(const QuantizedMatrix &w, std::span<const int8_t> h,
                  float hscale, std::span<const float> b, std::span<float> z,
                  size_t r0, size_t r1)
{
    ENMC_ASSERT(w.cols == h.size(), "gemvQuantizedRows: dim mismatch");
    ENMC_ASSERT(r0 <= r1 && r1 <= w.rows, "gemvQuantizedRows: bad row range");
    kernels::ops().gemvQuantRows(w.values.data(), w.cols, w.scales.data(),
                                 h.data(), hscale,
                                 b.empty() ? nullptr : b.data(), z.data(),
                                 r0, r1);
}

} // namespace enmc::tensor
