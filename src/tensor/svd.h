/**
 * @file
 * Thin SVD of tall matrices, as needed by the SVD-softmax baseline [37].
 *
 * For a classifier weight matrix W (l x d, l >> d) we form the d x d Gram
 * matrix G = Wᵀ W, diagonalize it with a cyclic Jacobi eigensolver, and
 * recover W = U Σ Vᵀ with U = W V Σ⁻¹. Cost is O(l d²) + O(d³ sweeps),
 * which matches how one would practically decompose an XC weight matrix.
 */

#ifndef ENMC_TENSOR_SVD_H
#define ENMC_TENSOR_SVD_H

#include <vector>

#include "tensor/matrix.h"

namespace enmc::tensor {

/** Result of a thin SVD: W = U * diag(sigma) * Vᵀ. */
struct SvdResult
{
    Matrix u;                   //!< l x d, orthonormal columns
    std::vector<float> sigma;   //!< d singular values, descending
    Matrix v;                   //!< d x d, orthonormal columns

    /** B = U * diag(sigma): the preview matrix used by SVD-softmax. */
    Matrix uSigma() const;
};

/**
 * Jacobi eigendecomposition of a symmetric matrix (in place usage hidden).
 *
 * @param a Symmetric n x n matrix.
 * @param eigvecs Output: columns are eigenvectors.
 * @return Eigenvalues in descending order (eigvecs columns permuted to
 *         match).
 */
std::vector<float> jacobiEigenSymmetric(const Matrix &a, Matrix &eigvecs,
                                        int max_sweeps = 30,
                                        double tol = 1e-10);

/** Thin SVD of W (rows >= cols). */
SvdResult thinSvd(const Matrix &w, int max_sweeps = 30);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_SVD_H
