/**
 * @file
 * enmc.tune document (de)serialization and the ENMC_TUNE_JSON startup
 * path. Failure philosophy follows common/env.cc: an unset variable
 * falls back silently, a set one must load completely or the process
 * exits — a half-applied tune file is worse than none.
 */

#include "tensor/tune.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "common/env.h"
#include "common/logging.h"
#include "obs/json.h"

namespace enmc::tensor::tune {

namespace {

uint64_t
u64Field(const obs::Json &j, const std::string &key, uint64_t fallback)
{
    const obs::Json *f = j.find(key);
    if (f == nullptr)
        return fallback;
    if (!f->isNumber() || f->asDouble() < 0)
        ENMC_FATAL("enmc.tune: field '", key,
                   "' must be a non-negative number");
    return f->asU64();
}

} // namespace

obs::Json
configToJson(const TunedConfig &cfg)
{
    obs::Json host = obs::Json::object();
    host.set("gemv_row_chunk", cfg.host.gemv_row_chunk);
    host.set("gemv_parallel_min_work", cfg.host.gemv_parallel_min_work);
    host.set("batch_query_tile", cfg.host.batch_query_tile);
    host.set("batch_row_tile", cfg.host.batch_row_tile);
    host.set("topk_scan_cutoff", cfg.host.topk_scan_cutoff);

    obs::Json entry = obs::Json::object();
    if (!cfg.kernels_target.empty())
        entry.set("kernels", cfg.kernels_target);
    entry.set("host", std::move(host));
    if (cfg.sim.has_value()) {
        obs::Json sim = obs::Json::object();
        sim.set("ranks_per_channel", cfg.sim->ranks_per_channel);
        sim.set("int4_macs", cfg.sim->int4_macs);
        sim.set("inst_fifo_depth", cfg.sim->inst_fifo_depth);
        sim.set("prefetch_tiles", cfg.sim->prefetch_tiles);
        sim.set("ddr_cycles", cfg.sim->ddr_cycles);
        entry.set("sim", std::move(sim));
    }
    return entry;
}

obs::Json
makeDocument(const std::string &microarch_key, const TunedConfig &cfg)
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", "enmc.tune");
    doc.set("schema_version", 1);
    doc.set("tool", "autotune");
    obs::Json configs = obs::Json::object();
    configs.set(microarch_key, configToJson(cfg));
    doc.set("configs", std::move(configs));
    return doc;
}

TunedConfig
configFromJson(const obs::Json &j)
{
    if (!j.isObject())
        ENMC_FATAL("enmc.tune: config entry is not an object");
    TunedConfig cfg;

    if (const obs::Json *k = j.find("kernels"); k != nullptr) {
        if (!k->isString())
            ENMC_FATAL("enmc.tune: 'kernels' must be a string");
        kernels::Target t;
        if (!kernels::targetFromString(k->asString(), &t))
            ENMC_FATAL("enmc.tune: unknown kernel target '", k->asString(),
                       "'");
        cfg.kernels_target = k->asString();
    }

    const obs::Json *host = j.find("host");
    if (host == nullptr || !host->isObject())
        ENMC_FATAL("enmc.tune: config entry missing 'host' object");
    const kernels::TuneParams defaults;
    cfg.host.gemv_row_chunk =
        u64Field(*host, "gemv_row_chunk", defaults.gemv_row_chunk);
    cfg.host.gemv_parallel_min_work = u64Field(
        *host, "gemv_parallel_min_work", defaults.gemv_parallel_min_work);
    cfg.host.batch_query_tile =
        u64Field(*host, "batch_query_tile", defaults.batch_query_tile);
    cfg.host.batch_row_tile =
        u64Field(*host, "batch_row_tile", defaults.batch_row_tile);
    cfg.host.topk_scan_cutoff =
        u64Field(*host, "topk_scan_cutoff", defaults.topk_scan_cutoff);
    if (cfg.host.gemv_row_chunk == 0 || cfg.host.batch_query_tile == 0 ||
        cfg.host.batch_row_tile == 0)
        ENMC_FATAL("enmc.tune: chunk/tile sizes must be positive");

    if (const obs::Json *sim = j.find("sim"); sim != nullptr) {
        if (!sim->isObject())
            ENMC_FATAL("enmc.tune: 'sim' must be an object");
        SimTune st;
        st.ranks_per_channel =
            u64Field(*sim, "ranks_per_channel", st.ranks_per_channel);
        st.int4_macs = u64Field(*sim, "int4_macs", st.int4_macs);
        st.inst_fifo_depth =
            u64Field(*sim, "inst_fifo_depth", st.inst_fifo_depth);
        st.prefetch_tiles =
            u64Field(*sim, "prefetch_tiles", st.prefetch_tiles);
        st.ddr_cycles = u64Field(*sim, "ddr_cycles", 0);
        if (st.ranks_per_channel == 0 || st.int4_macs == 0 ||
            st.inst_fifo_depth == 0)
            ENMC_FATAL("enmc.tune: sim parameters must be positive");
        cfg.sim = st;
    }
    return cfg;
}

std::optional<TunedConfig>
findConfig(const obs::Json &doc, const std::string &microarch_key)
{
    if (!doc.isObject())
        ENMC_FATAL("enmc.tune: document is not an object");
    const obs::Json *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != "enmc.tune")
        ENMC_FATAL("enmc.tune: schema field is missing or not 'enmc.tune'");
    const obs::Json *version = doc.find("schema_version");
    if (version == nullptr || !version->isNumber() ||
        version->asU64() != 1)
        ENMC_FATAL("enmc.tune: unsupported schema_version (want 1)");
    const obs::Json *configs = doc.find("configs");
    if (configs == nullptr || !configs->isObject())
        ENMC_FATAL("enmc.tune: missing 'configs' object");
    const obs::Json *entry = configs->find(microarch_key);
    if (entry == nullptr)
        return std::nullopt;
    return configFromJson(*entry);
}

bool
loadAndApply(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ENMC_FATAL("cannot read tune config '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();

    obs::Json doc;
    std::string err;
    if (!obs::Json::parse(text.str(), doc, &err))
        ENMC_FATAL("tune config '", path, "' is not valid JSON: ", err);

    const std::string &key = kernels::microarchKey();
    const std::optional<TunedConfig> cfg = findConfig(doc, key);
    if (!cfg.has_value()) {
        inform("tune config '", path, "' has no entry for this ",
               "microarchitecture (", key, "); keeping defaults");
        return false;
    }

    kernels::setTuneParams(cfg->host);
    if (!cfg->kernels_target.empty()) {
        // An explicit ENMC_KERNELS= always wins over the file's pin (and
        // has already been validated as available by dispatch).
        if (envString("ENMC_KERNELS") != nullptr) {
            inform("ENMC_KERNELS overrides the tune file's kernel pin");
        } else {
            kernels::Target t;
            kernels::targetFromString(cfg->kernels_target, &t);
            // The entry was measured on this microarch, so the pinned
            // target must exist here; a hand-edited mismatch is fatal.
            bool available = false;
            for (kernels::Target a : kernels::availableTargets())
                available = available || a == t;
            if (!available)
                ENMC_FATAL("tune config pins kernels='",
                           cfg->kernels_target,
                           "' which this CPU/build lacks");
            kernels::setActiveTarget(t);
        }
    }
    inform("applied tuned config for ", key, " from '", path, "'");
    return true;
}

bool
loadFromEnv()
{
    static std::once_flag flag;
    static bool applied = false;
    std::call_once(flag, [] {
        const char *path = envString("ENMC_TUNE_JSON");
        if (path != nullptr && *path != '\0')
            applied = loadAndApply(path);
    });
    return applied;
}

} // namespace enmc::tensor::tune
