/**
 * @file
 * Top-k and threshold selection over score vectors.
 *
 * The screening phase picks candidates either by top-m search or by a tuned
 * threshold (paper Section 4.2); both are provided. Selection is also the
 * functional model of the ENMC FILTER instruction.
 */

#ifndef ENMC_TENSOR_TOPK_H
#define ENMC_TENSOR_TOPK_H

#include <cstdint>
#include <span>
#include <vector>

namespace enmc::tensor {

/**
 * Indices of the k largest values, sorted by descending value.
 * Ties broken by lower index first (deterministic).
 */
std::vector<uint32_t> topkIndices(std::span<const float> z, size_t k);

/** Indices with z[i] >= threshold, in ascending index order. */
std::vector<uint32_t> thresholdIndices(std::span<const float> z,
                                       float threshold);

/**
 * Pick the threshold that selects (approximately) the m largest entries:
 * the m-th largest value itself. Used to tune the hardware FILTER
 * threshold on a validation batch.
 */
float thresholdForCount(std::span<const float> z, size_t m);

/**
 * Fraction of `reference` found in `selected` (candidate recall).
 * Both are index sets; order irrelevant.
 */
double recall(std::span<const uint32_t> selected,
              std::span<const uint32_t> reference);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_TOPK_H
