/**
 * @file
 * Top-k and threshold selection over score vectors.
 *
 * The screening phase picks candidates either by top-m search or by a tuned
 * threshold (paper Section 4.2); both are provided. Selection is also the
 * functional model of the ENMC FILTER instruction.
 *
 * Selection runs a bounded heap for large inputs and a sort-scan below
 * `kernels::tune().topk_scan_cutoff` candidates; `scoredBefore` is a
 * strict total order, so both paths return the identical list — the
 * cutoff is a pure performance tunable (autotuned per microarch).
 */

#ifndef ENMC_TENSOR_TOPK_H
#define ENMC_TENSOR_TOPK_H

#include <cstdint>
#include <span>
#include <vector>

namespace enmc::tensor {

/** One scored entry of a top-k selection: a global index + its score. */
struct Scored
{
    uint32_t index = 0;
    float value = 0.0f;

    bool operator==(const Scored &) const = default;
};

/**
 * The one ranking order every top-k consumer shares: descending value,
 * ascending index on ties (deterministic under duplicates).
 */
inline bool
scoredBefore(const Scored &a, const Scored &b)
{
    if (a.value != b.value)
        return a.value > b.value;
    return a.index < b.index;
}

/**
 * The k best entries of `z` as (index, value) pairs sorted by
 * `scoredBefore`. `index_offset` shifts the reported indices into a
 * global id space, so a shard can score its local slice and still name
 * global categories. The bounded-heap core behind `topkIndices` and
 * `mergeTopK`.
 */
std::vector<Scored> topkScored(std::span<const float> z, size_t k,
                               uint32_t index_offset = 0);

/**
 * Merge per-shard top-k lists over *disjoint* index spaces into the
 * global top-k, sorted by `scoredBefore`. Each shard list must itself
 * be sorted by `scoredBefore` (as `topkScored` returns it). The result
 * equals `topkScored` over the concatenated score vectors whenever each
 * shard contributed at least its own k best entries — the root-side
 * merge of the paper's scale-out gather, shared by the cluster router,
 * the scale-out layer and the benches.
 */
std::vector<Scored> mergeTopK(std::span<const std::vector<Scored>> shards,
                              size_t k);

/**
 * Indices of the k largest values, sorted by descending value.
 * Ties broken by lower index first (deterministic).
 */
std::vector<uint32_t> topkIndices(std::span<const float> z, size_t k);

/** Indices with z[i] >= threshold, in ascending index order. */
std::vector<uint32_t> thresholdIndices(std::span<const float> z,
                                       float threshold);

/**
 * Pick the threshold that selects (approximately) the m largest entries:
 * the m-th largest value itself. Used to tune the hardware FILTER
 * threshold on a validation batch.
 */
float thresholdForCount(std::span<const float> z, size_t m);

/**
 * Fraction of `reference` found in `selected` (candidate recall).
 * Both are index sets; order irrelevant.
 */
double recall(std::span<const uint32_t> selected,
              std::span<const uint32_t> reference);

} // namespace enmc::tensor

#endif // ENMC_TENSOR_TOPK_H
