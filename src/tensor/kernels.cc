/**
 * @file
 * Kernel dispatch (cpuid probe + ENMC_KERNELS override) and the
 * deterministic row-parallel GEMV wrappers.
 */

#include "tensor/kernels.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace enmc::tensor::kernels {

namespace {

bool
cpuHasAvx2Fma()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

const KernelOps *
tableFor(Target t)
{
    switch (t) {
      case Target::Scalar:
        return scalarKernelOps();
      case Target::Sse2:
        return sse2KernelOps();
      case Target::Avx2:
        return avx2KernelOps();
    }
    return nullptr;
}

bool
targetAvailable(Target t)
{
    if (t == Target::Avx2 && !cpuHasAvx2Fma())
        return false;
    return tableFor(t) != nullptr;
}

Target
bestAvailable()
{
    if (targetAvailable(Target::Avx2))
        return Target::Avx2;
    if (targetAvailable(Target::Sse2))
        return Target::Sse2;
    return Target::Scalar;
}

Target
selectInitialTarget()
{
    const char *env = std::getenv("ENMC_KERNELS");
    if (env && *env) {
        Target t;
        if (!targetFromString(env, &t))
            ENMC_PANIC("ENMC_KERNELS='", env,
                       "' is not one of scalar|sse2|avx2");
        if (targetAvailable(t))
            return t;
        warn("ENMC_KERNELS=", env, " not available on this CPU; using ",
             targetName(bestAvailable()));
    }
    return bestAvailable();
}

/** Active table, published once then swapped only by setActiveTarget(). */
std::atomic<const KernelOps *> g_active{nullptr};
std::atomic<Target> g_target{Target::Scalar};

const KernelOps *
initActive()
{
    const Target t = selectInitialTarget();
    const KernelOps *table = tableFor(t);
    const KernelOps *expected = nullptr;
    if (g_active.compare_exchange_strong(expected, table))
        g_target.store(t);
    return g_active.load();
}

} // namespace

const KernelOps &
ops()
{
    const KernelOps *table = g_active.load(std::memory_order_acquire);
    return table ? *table : *initActive();
}

Target
activeTarget()
{
    ops();
    return g_target.load();
}

void
setActiveTarget(Target t)
{
    ENMC_ASSERT(targetAvailable(t), "kernel target ", targetName(t),
                " is not available on this CPU/build");
    g_target.store(t);
    g_active.store(tableFor(t), std::memory_order_release);
}

std::vector<Target>
availableTargets()
{
    std::vector<Target> out{Target::Scalar};
    if (targetAvailable(Target::Sse2))
        out.push_back(Target::Sse2);
    if (targetAvailable(Target::Avx2))
        out.push_back(Target::Avx2);
    return out;
}

const char *
targetName(Target t)
{
    switch (t) {
      case Target::Scalar:
        return "scalar";
      case Target::Sse2:
        return "sse2";
      case Target::Avx2:
        return "avx2";
    }
    return "?";
}

bool
targetFromString(std::string_view s, Target *out)
{
    if (s == "scalar")
        *out = Target::Scalar;
    else if (s == "sse2")
        *out = Target::Sse2;
    else if (s == "avx2")
        *out = Target::Avx2;
    else
        return false;
    return true;
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    ENMC_ASSERT(a.size() == b.size(), "dot: size mismatch");
    return ops().dot(a.data(), b.data(), a.size());
}

void
axpy(float alpha, std::span<const float> x, std::span<float> y)
{
    ENMC_ASSERT(x.size() == y.size(), "axpy: size mismatch");
    ops().axpy(alpha, x.data(), y.data(), x.size());
}

float
absMax(std::span<const float> v)
{
    return ops().absMax(v.data(), v.size());
}

namespace {

/**
 * Shared chunking driver: run `body(r0, r1)` over fixed kRowChunk blocks
 * of [0, rows). Chunk boundaries depend only on `rows`, and each block
 * writes a disjoint output range, so the merged result is bit-identical
 * for every worker count.
 */
template <typename Body>
void
forEachRowChunk(size_t rows, size_t cols, size_t workers, const Body &body)
{
    if (rows * cols < kParallelMinWork || rows <= kRowChunk) {
        body(0, rows);
        return;
    }
    const size_t chunks = ceilDiv(rows, kRowChunk);
    parallelFor(0, chunks, workers, [&](size_t c) {
        const size_t r0 = c * kRowChunk;
        body(r0, std::min(rows, r0 + kRowChunk));
    });
}

} // namespace

void
gemvInto(const Matrix &w, std::span<const float> h,
         std::span<const float> bias, std::span<float> out, size_t workers)
{
    ENMC_ASSERT(w.cols() == h.size(), "gemv: inner dim mismatch");
    ENMC_ASSERT(bias.empty() || bias.size() == w.rows(),
                "gemv: bias size mismatch");
    ENMC_ASSERT(out.size() == w.rows(), "gemv: output size mismatch");
    const KernelOps &k = ops();
    const float *b = bias.empty() ? nullptr : bias.data();
    forEachRowChunk(w.rows(), w.cols(), workers, [&](size_t r0, size_t r1) {
        k.gemvRows(w.data(), w.cols(), h.data(), b, out.data(), r0, r1);
    });
}

void
gemvBatchInto(const Matrix &w, const float *const *hs, float *const *outs,
              size_t nq, std::span<const float> bias, size_t workers)
{
    if (nq == 0)
        return;
    ENMC_ASSERT(bias.empty() || bias.size() == w.rows(),
                "gemvBatch: bias size mismatch");
    const KernelOps &k = ops();
    const float *b = bias.empty() ? nullptr : bias.data();
    // Batched work scales with nq: parallelize whenever the total crosses
    // the threshold, still chunked over rows only.
    const size_t eff_cols = w.cols() * nq;
    forEachRowChunk(w.rows(), eff_cols, workers, [&](size_t r0, size_t r1) {
        k.gemvBatchRows(w.data(), w.cols(), hs, outs, nq, b, r0, r1);
    });
}

void
gemvQuantInto(const int8_t *w, size_t rows, size_t cols, const float *scales,
              const int8_t *h, float hscale, std::span<const float> bias,
              std::span<float> out, size_t workers)
{
    ENMC_ASSERT(bias.empty() || bias.size() == rows,
                "gemvQuantized: bias size mismatch");
    ENMC_ASSERT(out.size() == rows, "gemvQuantized: output size mismatch");
    const KernelOps &k = ops();
    // The vector int32-lane MAC is exact for any realistic width; fall
    // back to the scalar int64 path for absurdly wide rows.
    const auto rowKernel = (cols > (size_t{1} << 20))
                               ? scalarKernelOps()->gemvQuantRows
                               : k.gemvQuantRows;
    const float *b = bias.empty() ? nullptr : bias.data();
    forEachRowChunk(rows, cols, workers, [&](size_t r0, size_t r1) {
        rowKernel(w, cols, scales, h, hscale, b, out.data(), r0, r1);
    });
}

} // namespace enmc::tensor::kernels
