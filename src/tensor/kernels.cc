/**
 * @file
 * Kernel dispatch (cpuid probe + ENMC_KERNELS override), the process-wide
 * TuneParams, and the deterministic row-parallel GEMV wrappers.
 */

#include "tensor/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/units.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace enmc::tensor::kernels {

namespace {

bool
cpuHasAvx2Fma()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    // The tier uses foundation + byte/word instructions (the widened
    // int8 MAC); both ship together on every AVX-512 server part.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw");
#else
    return false;
#endif
}

const KernelOps *
tableFor(Target t)
{
    switch (t) {
      case Target::Scalar:
        return scalarKernelOps();
      case Target::Sse2:
        return sse2KernelOps();
      case Target::Avx2:
        return avx2KernelOps();
      case Target::Avx512:
        return avx512KernelOps();
    }
    return nullptr;
}

bool
targetAvailable(Target t)
{
    if (t == Target::Avx2 && !cpuHasAvx2Fma())
        return false;
    if (t == Target::Avx512 && !(cpuHasAvx2Fma() && cpuHasAvx512()))
        return false;
    return tableFor(t) != nullptr;
}

Target
bestAvailable()
{
    if (targetAvailable(Target::Avx512))
        return Target::Avx512;
    if (targetAvailable(Target::Avx2))
        return Target::Avx2;
    if (targetAvailable(Target::Sse2))
        return Target::Sse2;
    return Target::Scalar;
}

/** Active table, published once then swapped only by setActiveTarget(). */
std::atomic<const KernelOps *> g_active{nullptr};
std::atomic<Target> g_target{Target::Scalar};

const KernelOps *
initActive()
{
    const Target t = resolveTarget(envString("ENMC_KERNELS"));
    const KernelOps *table = tableFor(t);
    const KernelOps *expected = nullptr;
    if (g_active.compare_exchange_strong(expected, table))
        g_target.store(t);
    return g_active.load();
}

TuneParams g_tune; // Written only by setTuneParams() (setup code).

} // namespace

Target
resolveTarget(const char *requested)
{
    if (requested == nullptr || *requested == '\0')
        return bestAvailable();
    Target t;
    if (!targetFromString(requested, &t))
        ENMC_FATAL("ENMC_KERNELS='", requested,
                   "' is not one of scalar|sse2|avx2|avx512");
    if (!targetAvailable(t))
        ENMC_FATAL("ENMC_KERNELS=", requested,
                   " is not available on this CPU/build (best here: ",
                   targetName(bestAvailable()),
                   "); unset it or pick an available target");
    return t;
}

const KernelOps &
ops()
{
    const KernelOps *table = g_active.load(std::memory_order_acquire);
    return table ? *table : *initActive();
}

Target
activeTarget()
{
    ops();
    return g_target.load();
}

void
setActiveTarget(Target t)
{
    ENMC_ASSERT(targetAvailable(t), "kernel target ", targetName(t),
                " is not available on this CPU/build");
    g_target.store(t);
    g_active.store(tableFor(t), std::memory_order_release);
}

std::vector<Target>
availableTargets()
{
    std::vector<Target> out{Target::Scalar};
    if (targetAvailable(Target::Sse2))
        out.push_back(Target::Sse2);
    if (targetAvailable(Target::Avx2))
        out.push_back(Target::Avx2);
    if (targetAvailable(Target::Avx512))
        out.push_back(Target::Avx512);
    return out;
}

const char *
targetName(Target t)
{
    switch (t) {
      case Target::Scalar:
        return "scalar";
      case Target::Sse2:
        return "sse2";
      case Target::Avx2:
        return "avx2";
      case Target::Avx512:
        return "avx512";
    }
    return "?";
}

bool
targetFromString(std::string_view s, Target *out)
{
    if (s == "scalar")
        *out = Target::Scalar;
    else if (s == "sse2")
        *out = Target::Sse2;
    else if (s == "avx2")
        *out = Target::Avx2;
    else if (s == "avx512")
        *out = Target::Avx512;
    else
        return false;
    return true;
}

const std::string &
microarchKey()
{
    static const std::string key = [] {
        std::string vendor = "unknown";
        unsigned family = 0, model = 0;
#if defined(__x86_64__) || defined(__i386__)
        unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
        if (__get_cpuid(0, &eax, &ebx, &ecx, &edx)) {
            char v[13] = {};
            std::memcpy(v + 0, &ebx, 4);
            std::memcpy(v + 4, &edx, 4);
            std::memcpy(v + 8, &ecx, 4);
            if (std::string_view(v) == "GenuineIntel")
                vendor = "intel";
            else if (std::string_view(v) == "AuthenticAMD")
                vendor = "amd";
            else
                vendor = "x86";
        }
        if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
            family = ((eax >> 8) & 0xf) + ((eax >> 20) & 0xff);
            model = ((eax >> 4) & 0xf) | (((eax >> 16) & 0xf) << 4);
        }
#endif
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s-f%um%u-%s", vendor.c_str(),
                      family, model, targetName(bestAvailable()));
        return std::string(buf);
    }();
    return key;
}

const TuneParams &
tune()
{
    return g_tune;
}

void
setTuneParams(const TuneParams &p)
{
    ENMC_ASSERT(p.gemv_row_chunk > 0, "gemv_row_chunk must be positive");
    ENMC_ASSERT(p.batch_query_tile > 0, "batch_query_tile must be positive");
    ENMC_ASSERT(p.batch_row_tile > 0, "batch_row_tile must be positive");
    g_tune = p;
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    ENMC_ASSERT(a.size() == b.size(), "dot: size mismatch");
    return ops().dot(a.data(), b.data(), a.size());
}

void
axpy(float alpha, std::span<const float> x, std::span<float> y)
{
    ENMC_ASSERT(x.size() == y.size(), "axpy: size mismatch");
    ops().axpy(alpha, x.data(), y.data(), x.size());
}

float
absMax(std::span<const float> v)
{
    return ops().absMax(v.data(), v.size());
}

namespace {

/**
 * Shared chunking driver: run `body(r0, r1)` over fixed `chunk`-row
 * blocks of [0, rows). Chunk boundaries depend only on `rows` and the
 * installed tunables — never the worker count — and each block writes a
 * disjoint output range, so the merged result is bit-identical for every
 * worker count.
 */
template <typename Body>
void
forEachRowChunk(size_t rows, size_t work, size_t chunk, size_t workers,
                const Body &body)
{
    if (work < tune().gemv_parallel_min_work || rows <= chunk) {
        body(0, rows);
        return;
    }
    const size_t chunks = ceilDiv(rows, chunk);
    parallelFor(0, chunks, workers, [&](size_t c) {
        const size_t r0 = c * chunk;
        body(r0, std::min(rows, r0 + chunk));
    });
}

} // namespace

void
gemvInto(const Matrix &w, std::span<const float> h,
         std::span<const float> bias, std::span<float> out, size_t workers)
{
    ENMC_ASSERT(w.cols() == h.size(), "gemv: inner dim mismatch");
    ENMC_ASSERT(bias.empty() || bias.size() == w.rows(),
                "gemv: bias size mismatch");
    ENMC_ASSERT(out.size() == w.rows(), "gemv: output size mismatch");
    const KernelOps &k = ops();
    const float *b = bias.empty() ? nullptr : bias.data();
    forEachRowChunk(w.rows(), w.rows() * w.cols(), tune().gemv_row_chunk,
                    workers, [&](size_t r0, size_t r1) {
        k.gemvRows(w.data(), w.cols(), h.data(), b, out.data(), r0, r1);
    });
}

void
gemvBatchInto(const Matrix &w, const float *const *hs, float *const *outs,
              size_t nq, std::span<const float> bias, size_t workers)
{
    if (nq == 0)
        return;
    ENMC_ASSERT(bias.empty() || bias.size() == w.rows(),
                "gemvBatch: bias size mismatch");
    const KernelOps &k = ops();
    const float *b = bias.empty() ? nullptr : bias.data();
    // Tiles are (batch_query_tile x batch_row_tile): each query tile
    // streams the weight rows once, and rows are the parallel dimension.
    // Per-query results are bit-equal to gemvRows whatever the tile
    // shape (register-blocked pairs inside a tile are bit-equal to
    // independent dots), so tiling never changes an output.
    const size_t qtile = tune().batch_query_tile;
    for (size_t q0 = 0; q0 < nq; q0 += qtile) {
        const size_t qn = std::min(qtile, nq - q0);
        const size_t work = w.rows() * w.cols() * qn;
        forEachRowChunk(w.rows(), work, tune().batch_row_tile, workers,
                        [&](size_t r0, size_t r1) {
            k.gemvBatchRows(w.data(), w.cols(), hs + q0, outs + q0, qn, b,
                            r0, r1);
        });
    }
}

void
gemvQuantInto(const int8_t *w, size_t rows, size_t cols, const float *scales,
              const int8_t *h, float hscale, std::span<const float> bias,
              std::span<float> out, size_t workers)
{
    ENMC_ASSERT(bias.empty() || bias.size() == rows,
                "gemvQuantized: bias size mismatch");
    ENMC_ASSERT(out.size() == rows, "gemvQuantized: output size mismatch");
    const KernelOps &k = ops();
    // The vector int32-lane MAC is exact for any realistic width; fall
    // back to the scalar int64 path for absurdly wide rows.
    const auto rowKernel = (cols > (size_t{1} << 20))
                               ? scalarKernelOps()->gemvQuantRows
                               : k.gemvQuantRows;
    const float *b = bias.empty() ? nullptr : bias.data();
    forEachRowChunk(rows, rows * cols, tune().gemv_row_chunk, workers,
                    [&](size_t r0, size_t r1) {
        rowKernel(w, cols, scales, h, hscale, b, out.data(), r0, r1);
    });
}

} // namespace enmc::tensor::kernels
