/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the screening/classification
 * hot path.
 *
 * Every dense numeric loop the experiments bottom out in — `dot`, `axpy`,
 * GEMV (FP32 and quantized-integer), quantization, and the sparse
 * projection — is implemented once per dispatch target (AVX-512,
 * AVX2+FMA, SSE2, portable scalar) behind a single function-pointer
 * table. The target is selected once at startup from cpuid and can be
 * forced with `ENMC_KERNELS=scalar|sse2|avx2|avx512` (tests and benches
 * may also switch at runtime with setActiveTarget()). Forcing a target
 * the CPU or build does not support is a fatal configuration error —
 * never a silent fallback.
 *
 * Numerics contract (tested in tests/tensor/test_kernels.cc):
 *  - Integer kernels (`gemvQuantRows`) and element-wise kernels (`axpy`,
 *    `absMax`, `quantizeSpan`) are BIT-EXACT across all targets.
 *  - FP32 reductions (`dot`, GEMV, projection) may differ across targets
 *    within a documented ULP envelope: each target fixes its own
 *    accumulation pattern (scalar: the original 4x double accumulators;
 *    SSE2: 16 float lanes; AVX2: 16 float lanes + FMA), so the error vs.
 *    the scalar reference is bounded by ~(n/lanes) rounding steps —
 *    tests allow 64 * eps * sum_i |a_i * b_i|. The AVX-512 tier keeps
 *    AVX2's exact 16-slot FMA pattern (one zmm register holds what AVX2
 *    spreads over two ymm), so avx512 FP32 results are BIT-IDENTICAL to
 *    avx2 — upgrading the dispatch tier never moves a paper figure.
 *  - Within one target the layer is self-consistent and deterministic:
 *    gemv(W,h)[r] == dot(W.row(r), h) + b[r] bit-for-bit, batched GEMV
 *    equals per-query GEMV bit-for-bit, and row-parallel GEMV partitions
 *    rows into fixed-size chunks with disjoint outputs, so results are
 *    bit-identical for ANY worker count (ENMC_THREADS).
 *  - Every `TuneParams` value preserves all of the above bit-for-bit:
 *    the tunables only move work-partitioning boundaries (row chunks,
 *    batch tiles) or select between algorithms with identical outputs
 *    (top-k heap vs. sort-scan under the total order `scoredBefore`),
 *    never an accumulation pattern.
 */

#ifndef ENMC_TENSOR_KERNELS_H
#define ENMC_TENSOR_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::tensor::kernels {

/** Dispatch targets, best-first capability order is
 *  Avx512 > Avx2 > Sse2 > Scalar. */
enum class Target {
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/**
 * The per-target kernel table. All functions tolerate n == 0 / empty row
 * ranges; pointers may then be null. `w` is row-major with `cols` stride.
 * Row-range kernels process rows [r0, r1) only — the building block the
 * parallel wrappers chunk over.
 */
struct KernelOps
{
    const char *name;

    float (*dot)(const float *a, const float *b, size_t n);
    void (*axpy)(float alpha, const float *x, float *y, size_t n);
    float (*absMax)(const float *v, size_t n);

    /** out[r] = dot(w_row(r), h) + (bias ? bias[r] : 0). */
    void (*gemvRows)(const float *w, size_t cols, const float *h,
                     const float *bias, float *out, size_t r0, size_t r1);

    /**
     * Multi-query GEMV: outs[q][r] = dot(w_row(r), hs[q]) + bias[r].
     * Weight rows are streamed once per row across all queries
     * (register-blocked in query pairs); per-query results are bit-equal
     * to gemvRows.
     */
    void (*gemvBatchRows)(const float *w, size_t cols,
                          const float *const *hs, float *const *outs,
                          size_t nq, const float *bias, size_t r0,
                          size_t r1);

    /**
     * Integer GEMV on int8 storage:
     * out[r] = float(sum_c w[r][c] * h[c]) * scales[r] * hscale + bias[r].
     * The MAC runs in integer lanes and is bit-exact across targets.
     */
    void (*gemvQuantRows)(const int8_t *w, size_t cols, const float *scales,
                          const int8_t *h, float hscale, const float *bias,
                          float *out, size_t r0, size_t r1);

    /**
     * Symmetric quantization of a span: out[i] =
     * clamp(lround(v[i] * inv_scale), -max_level, max_level).
     * Round-half-away-from-zero, bit-exact across targets.
     */
    void (*quantizeSpan)(const float *v, size_t n, float inv_scale,
                         int max_level, int8_t *out);

    /**
     * Achlioptas sparse projection rows [r0, r1):
     * y[r] = (sum h[plus[i]] - sum h[minus[i]]) * scale with the flat
     * index/offset layout of SparseProjection.
     */
    void (*projectRows)(const float *h, const uint32_t *plus,
                        const uint32_t *plus_off, const uint32_t *minus,
                        const uint32_t *minus_off, float scale, float *y,
                        size_t r0, size_t r1);
};

/** Active table (never null). Selected on first use; see activeTarget(). */
const KernelOps &ops();

/**
 * The active dispatch target. First call probes cpuid and honours
 * ENMC_KERNELS=scalar|sse2|avx2|avx512 (unknown or unavailable values
 * are fatal configuration errors — a forced target never silently falls
 * back).
 */
Target activeTarget();

/**
 * Force a target (test/bench hook). Panics if the target is not
 * available on this CPU. Not thread-safe: call only from single-threaded
 * setup code.
 */
void setActiveTarget(Target t);

/** Targets usable on this CPU, ordered Scalar, [Sse2,] [Avx2,] [Avx512]. */
std::vector<Target> availableTargets();

const char *targetName(Target t);

/** Parse "scalar"/"sse2"/"avx2"/"avx512". Returns false on unknown. */
bool targetFromString(std::string_view s, Target *out);

/**
 * Resolve a requested `ENMC_KERNELS` value: nullptr/empty picks the best
 * available target; a known, available name picks that target; anything
 * else — unknown name or a target this CPU/build lacks — exits via the
 * fatal configuration-error path (no silent fallback). Exposed so the
 * regression tests can exercise the error paths directly.
 */
Target resolveTarget(const char *requested);

/**
 * Stable identifier of this machine's kernel-relevant microarchitecture:
 * "<vendor>-f<family>m<model>-<best target>", e.g.
 * "intel-f6m106-avx512". Autotuned configs are keyed by this string so
 * an `enmc.tune` file is portable — a host only applies entries measured
 * on matching hardware.
 */
const std::string &microarchKey();

// ---------------------------------------------------------------------
// Performance tunables. Every value is bit-exactness-preserving (see the
// numerics contract above); the defaults reproduce the pre-tuning
// constants. `tools/autotune` sweeps these and persists the best point
// per microarchitecture; ENMC_TUNE_JSON= loads it back at startup.

struct TuneParams
{
    /** Rows per parallel GEMV work item (chunk boundaries are a pure
     *  function of the shape, so any value is worker-count stable). */
    size_t gemv_row_chunk = 1024;
    /** Minimum rows*cols (*nq for batches) before GEMV fans out. */
    size_t gemv_parallel_min_work = size_t{1} << 21;
    /** Batched-GEMV tile shape: queries per tile ... */
    size_t batch_query_tile = 8;
    /** ... by rows per tile (the batch path's parallel chunk). */
    size_t batch_row_tile = 1024;
    /** topkScored/mergeTopK switch to a sort-scan when the candidate
     *  count is at most this (0 = always use the bounded heap). */
    size_t topk_scan_cutoff = 0;

    bool operator==(const TuneParams &) const = default;
};

/** The active tunables (process-wide; defaults until set). */
const TuneParams &tune();

/**
 * Install tunables (startup / test / bench hook). Panics on degenerate
 * values (zero chunk or tile sizes). Not thread-safe: call only from
 * single-threaded setup code, like setActiveTarget().
 */
void setTuneParams(const TuneParams &p);

// ---------------------------------------------------------------------
// Span-level conveniences (active-target dispatch, serial).

float dot(std::span<const float> a, std::span<const float> b);
void axpy(float alpha, std::span<const float> x, std::span<float> y);
float absMax(std::span<const float> v);

// ---------------------------------------------------------------------
// Row-parallel GEMV wrappers. Work is split into fixed-size row blocks
// (tune().gemv_row_chunk rows; independent of worker count) executed on
// the shared pool when the matrix is large enough; outputs are disjoint
// per block, so results are bit-identical for every ENMC_THREADS value.
// `workers` follows enmc::parallelFor: 0 = process-wide pool, 1 = inline
// serial, n = a dedicated pool of n threads.

/** Default rows per parallel work item (TuneParams::gemv_row_chunk). */
inline constexpr size_t kRowChunk = 1024;

/** Default minimum rows*cols before GEMV fans out to the pool. */
inline constexpr size_t kParallelMinWork = size_t{1} << 21;

/** z = W h (+ bias); out.size() == w.rows(). */
void gemvInto(const Matrix &w, std::span<const float> h,
              std::span<const float> bias, std::span<float> out,
              size_t workers = 0);

/** Batched multi-query GEMV; outs[q] points at a w.rows() buffer. */
void gemvBatchInto(const Matrix &w, const float *const *hs,
                   float *const *outs, size_t nq,
                   std::span<const float> bias, size_t workers = 0);

/** Quantized GEMV over all rows (int8 storage, per-row scales). */
void gemvQuantInto(const int8_t *w, size_t rows, size_t cols,
                   const float *scales, const int8_t *h, float hscale,
                   std::span<const float> bias, std::span<float> out,
                   size_t workers = 0);

// ---------------------------------------------------------------------
// Per-target tables (internal; used by dispatch and the equivalence
// tests). May return null when the build/CPU lacks the target.

const KernelOps *scalarKernelOps();
const KernelOps *sse2KernelOps();
const KernelOps *avx2KernelOps();
const KernelOps *avx512KernelOps();

} // namespace enmc::tensor::kernels

#endif // ENMC_TENSOR_KERNELS_H
