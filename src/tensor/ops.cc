#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace enmc::tensor {

float
dot(std::span<const float> a, std::span<const float> b)
{
    return kernels::dot(a, b);
}

void
axpy(float alpha, std::span<const float> x, std::span<float> y)
{
    kernels::axpy(alpha, x, y);
}

Vector
gemv(const Matrix &w, std::span<const float> h, std::span<const float> b)
{
    Vector z(w.rows());
    kernels::gemvInto(w, h, b, z);
    return z;
}

Vector
gemv(const Matrix &w, std::span<const float> h)
{
    return gemv(w, h, {});
}

std::vector<Vector>
gemvBatch(const Matrix &w, std::span<const Vector> hs,
          std::span<const float> b)
{
    std::vector<Vector> outs(hs.size(), Vector(w.rows()));
    std::vector<const float *> hp(hs.size());
    std::vector<float *> op(hs.size());
    for (size_t q = 0; q < hs.size(); ++q) {
        ENMC_ASSERT(hs[q].size() == w.cols(),
                    "gemvBatch: inner dim mismatch");
        hp[q] = hs[q].data();
        op[q] = outs[q].data();
    }
    kernels::gemvBatchInto(w, hp.data(), op.data(), hs.size(), b);
    return outs;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    ENMC_ASSERT(a.cols() == b.rows(), "matmul: inner dim mismatch");
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t k = 0; k < a.cols(); ++k) {
            const float aik = a(i, k);
            if (aik == 0.0f)
                continue;
            // Row-of-B into row-of-C rank-1 update; axpy is bit-exact
            // across dispatch targets, so this matches the scalar loop.
            kernels::axpy(aik, b.row(k), c.row(i));
        }
    }
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

void
softmaxInPlace(std::span<float> z)
{
    if (z.empty())
        return;
    const float zmax = *std::max_element(z.begin(), z.end());
    double sum = 0.0;
    for (auto &v : z) {
        v = std::exp(v - zmax);
        sum += v;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (auto &v : z)
        v *= inv;
}

Vector
softmax(std::span<const float> z)
{
    Vector p(z.begin(), z.end());
    softmaxInPlace(p);
    return p;
}

Vector
sigmoid(std::span<const float> z)
{
    Vector p(z.size());
    for (size_t i = 0; i < z.size(); ++i)
        p[i] = 1.0f / (1.0f + std::exp(-z[i]));
    return p;
}

double
logSumExp(std::span<const float> z)
{
    ENMC_ASSERT(!z.empty(), "logSumExp of empty span");
    const float zmax = *std::max_element(z.begin(), z.end());
    double sum = 0.0;
    for (float v : z)
        sum += std::exp(static_cast<double>(v) - zmax);
    return zmax + std::log(sum);
}

float
taylorExp4(float x)
{
    // Range reduction: x = k * ln2 + r with |r| <= ln2 / 2, then
    // exp(x) = 2^k * exp(r) with exp(r) from a 4th-order Taylor series.
    // This is what a small SFU does in hardware: a shifter plus 4 MACs.
    constexpr float kLn2 = 0.6931471805599453f;
    constexpr float kInvLn2 = 1.4426950408889634f;
    if (x < -87.0f)
        return 0.0f;
    if (x > 88.0f)
        return std::numeric_limits<float>::infinity();
    const int k = static_cast<int>(std::lround(x * kInvLn2));
    const float r = x - static_cast<float>(k) * kLn2;
    // Horner: 1 + r(1 + r/2(1 + r/3(1 + r/4))).
    const float er =
        1.0f + r * (1.0f + r * (0.5f + r * (1.0f / 6.0f + r * (1.0f / 24.0f))));
    return std::ldexp(er, k);
}

Vector
softmaxTaylor(std::span<const float> z)
{
    Vector p(z.size());
    if (z.empty())
        return p;
    const float zmax = *std::max_element(z.begin(), z.end());
    double sum = 0.0;
    for (size_t i = 0; i < z.size(); ++i) {
        p[i] = taylorExp4(z[i] - zmax);
        sum += p[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (auto &v : p)
        v *= inv;
    return p;
}

Vector
sigmoidTaylor(std::span<const float> z)
{
    Vector p(z.size());
    for (size_t i = 0; i < z.size(); ++i)
        p[i] = 1.0f / (1.0f + taylorExp4(-z[i]));
    return p;
}

double
mse(std::span<const float> a, std::span<const float> b)
{
    ENMC_ASSERT(a.size() == b.size() && !a.empty(), "mse: size mismatch");
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return s / a.size();
}

double
norm2(std::span<const float> a)
{
    double s = 0.0;
    for (float v : a)
        s += static_cast<double>(v) * v;
    return std::sqrt(s);
}

size_t
argmax(std::span<const float> z)
{
    ENMC_ASSERT(!z.empty(), "argmax of empty span");
    return std::max_element(z.begin(), z.end()) - z.begin();
}

} // namespace enmc::tensor
