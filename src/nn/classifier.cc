#include "nn/classifier.h"

#include "common/logging.h"

namespace enmc::nn {

Classifier::Classifier(tensor::Matrix w, tensor::Vector b, Normalization norm)
    : w_(std::move(w)), b_(std::move(b)), norm_(norm)
{
    ENMC_ASSERT(b_.size() == w_.rows(), "classifier bias size mismatch");
}

tensor::Vector
Classifier::logits(std::span<const float> h) const
{
    return tensor::gemv(w_, h, b_);
}

float
Classifier::logit(size_t category, std::span<const float> h) const
{
    return tensor::dot(w_.row(category), h) + b_[category];
}

tensor::Vector
Classifier::probabilities(std::span<const float> h) const
{
    tensor::Vector z = logits(h);
    if (norm_ == Normalization::Softmax) {
        tensor::softmaxInPlace(z);
        return z;
    }
    return tensor::sigmoid(z);
}

std::vector<tensor::Vector>
Classifier::logitsBatch(std::span<const tensor::Vector> hs) const
{
    return tensor::gemvBatch(w_, hs, b_);
}

std::vector<tensor::Vector>
Classifier::probabilitiesBatch(std::span<const tensor::Vector> hs) const
{
    std::vector<tensor::Vector> zs = logitsBatch(hs);
    for (auto &z : zs) {
        if (norm_ == Normalization::Softmax)
            tensor::softmaxInPlace(z);
        else
            z = tensor::sigmoid(z);
    }
    return zs;
}

size_t
Classifier::parameterBytes() const
{
    return w_.bytes() + b_.size() * sizeof(float);
}

uint64_t
Classifier::flopsPerInference() const
{
    // 2 flops (mul+add) per weight element, plus ~4 flops per category for
    // the normalization (exp + divide amortized).
    return 2ull * w_.rows() * w_.cols() + 4ull * w_.rows();
}

} // namespace enmc::nn
