#include "nn/sgd.h"

#include "common/logging.h"

namespace enmc::nn {

size_t
SgdOptimizer::addParameter(size_t num_elements)
{
    if (!lr_init_) {
        lr_ = cfg_.lr;
        lr_init_ = true;
    }
    velocity_.emplace_back(num_elements, 0.0f);
    return velocity_.size() - 1;
}

void
SgdOptimizer::step(size_t slot, std::span<float> param,
                   std::span<const float> grad)
{
    ENMC_ASSERT(slot < velocity_.size(), "bad optimizer slot");
    auto &v = velocity_[slot];
    ENMC_ASSERT(v.size() == param.size() && v.size() == grad.size(),
                "optimizer size mismatch");
    const float mu = static_cast<float>(cfg_.momentum);
    const float lr = static_cast<float>(lr_);
    for (size_t i = 0; i < v.size(); ++i) {
        v[i] = mu * v[i] + grad[i];
        param[i] -= lr * v[i];
    }
}

void
SgdOptimizer::endEpoch()
{
    lr_ *= cfg_.lr_decay;
}

} // namespace enmc::nn
