#include "nn/beam.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/topk.h"

namespace enmc::nn {

namespace {

double
lengthNormalized(const Hypothesis &h, double penalty)
{
    if (penalty <= 0.0 || h.tokens.empty())
        return h.log_prob;
    return h.log_prob / std::pow(static_cast<double>(h.tokens.size()),
                                 penalty);
}

} // namespace

std::vector<Hypothesis>
beamSearch(const DecoderInterface &decoder, const BeamConfig &cfg)
{
    ENMC_ASSERT(cfg.beam_width >= 1, "beam width must be >= 1");
    std::vector<Hypothesis> beam;
    beam.push_back(Hypothesis{{}, 0.0, decoder.initial_state()});
    std::vector<Hypothesis> finished;

    for (size_t step = 0; step < cfg.max_steps && !beam.empty(); ++step) {
        std::vector<Hypothesis> expanded;
        for (const auto &hyp : beam) {
            const tensor::Vector lp = decoder.log_probs(hyp.state);
            // Only the top beam_width continuations of each hypothesis can
            // survive the global prune.
            const auto top =
                tensor::topkIndices(lp, cfg.beam_width);
            for (uint32_t tok : top) {
                Hypothesis next;
                next.tokens = hyp.tokens;
                next.tokens.push_back(tok);
                next.log_prob = hyp.log_prob + lp[tok];
                if (tok == cfg.eos_token) {
                    finished.push_back(std::move(next));
                } else {
                    next.state = decoder.advance(hyp.state, tok);
                    expanded.push_back(std::move(next));
                }
            }
        }
        // Keep the best beam_width open hypotheses.
        std::sort(expanded.begin(), expanded.end(),
                  [](const Hypothesis &a, const Hypothesis &b) {
                      return a.log_prob > b.log_prob;
                  });
        if (expanded.size() > cfg.beam_width)
            expanded.resize(cfg.beam_width);
        beam = std::move(expanded);
        // Early exit: the best open hypothesis cannot beat the worst kept
        // finished one if we already have enough finished hypotheses.
        if (finished.size() >= cfg.beam_width && !beam.empty()) {
            auto best_finished = std::max_element(
                finished.begin(), finished.end(),
                [&](const Hypothesis &a, const Hypothesis &b) {
                    return lengthNormalized(a, cfg.length_penalty) <
                           lengthNormalized(b, cfg.length_penalty);
                });
            if (beam.front().log_prob <
                lengthNormalized(*best_finished, cfg.length_penalty)) {
                break;
            }
        }
    }

    // Unfinished hypotheses still count (truncated decodes).
    for (auto &h : beam)
        finished.push_back(std::move(h));
    std::sort(finished.begin(), finished.end(),
              [&](const Hypothesis &a, const Hypothesis &b) {
                  return lengthNormalized(a, cfg.length_penalty) >
                         lengthNormalized(b, cfg.length_penalty);
              });
    return finished;
}

} // namespace enmc::nn
