/**
 * @file
 * Analytic models of the application front-ends (the non-classification
 * part of each workload: input embedding + hidden layers).
 *
 * The paper's Fig. 4 breaks model parameters and operations into
 * classification vs non-classification; Fig. 13/15 need the front-end
 * execution time to compose end-to-end numbers. The front-ends themselves
 * are compute-bound and run on the host in every configuration, so an
 * analytic parameter/FLOP model (matching the published architectures of
 * LSTM-LM, Transformer-LM, GNMT and XMLCNN) is sufficient and exact enough
 * for those figures.
 */

#ifndef ENMC_NN_FRONTEND_H
#define ENMC_NN_FRONTEND_H

#include <cstdint>
#include <string>

namespace enmc::nn {

/** Architecture family of a front-end. */
enum class FrontendType { LstmLm, TransformerLm, Gnmt, XmlCnn };

const char *frontendTypeName(FrontendType type);

/** Structural description of one front-end model. */
struct FrontendModel
{
    FrontendType type = FrontendType::TransformerLm;
    uint64_t vocab = 0;        //!< input vocabulary / feature dim
    uint64_t hidden = 512;     //!< hidden dimension d
    uint64_t layers = 2;       //!< encoder(/decoder) depth
    uint64_t embed_dim = 0;    //!< 0 -> equal to hidden

    uint64_t embedDim() const { return embed_dim ? embed_dim : hidden; }

    /** Parameters of the input embedding table. */
    uint64_t embeddingParams() const;

    /** Parameters of the hidden (non-classification) layers. */
    uint64_t hiddenParams() const;

    /** All non-classification parameters. */
    uint64_t params() const { return embeddingParams() + hiddenParams(); }

    /** FLOPs to produce one hidden vector (one inference step). */
    uint64_t flopsPerStep() const;

    /** Factory helpers matching the paper's Table 2 models. */
    static FrontendModel lstmW33k();
    static FrontendModel transformerW268k();
    static FrontendModel gnmtE32k();
    static FrontendModel xmlcnn670k();
};

} // namespace enmc::nn

#endif // ENMC_NN_FRONTEND_H
