/**
 * @file
 * The extreme-classification layer (paper Eq. 1-2): a large linear
 * transform z = W h + b followed by softmax (or sigmoid for multi-label
 * tasks).
 */

#ifndef ENMC_NN_CLASSIFIER_H
#define ENMC_NN_CLASSIFIER_H

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace enmc::nn {

/** Output normalization applied after the linear transform. */
enum class Normalization { Softmax, Sigmoid };

/** A softmax/sigmoid classification layer over l categories. */
class Classifier
{
  public:
    Classifier() = default;

    /** Take ownership of trained weights (l x d) and bias (l). */
    Classifier(tensor::Matrix w, tensor::Vector b,
               Normalization norm = Normalization::Softmax);

    size_t categories() const { return w_.rows(); }
    size_t hidden() const { return w_.cols(); }
    Normalization normalization() const { return norm_; }

    const tensor::Matrix &weights() const { return w_; }
    const tensor::Vector &bias() const { return b_; }

    /** Raw logits z = W h + b. */
    tensor::Vector logits(std::span<const float> h) const;

    /** Logit of a single category: w_i . h + b_i. */
    float logit(size_t category, std::span<const float> h) const;

    /** Normalized probabilities (full classification). */
    tensor::Vector probabilities(std::span<const float> h) const;

    /**
     * Logits for a batch of hidden vectors. Each entry is bit-identical
     * to logits(hs[q]); the batched GEMV streams W once per batch instead
     * of once per item.
     */
    std::vector<tensor::Vector>
    logitsBatch(std::span<const tensor::Vector> hs) const;

    /** Batched probabilities(); same per-item values as the scalar call. */
    std::vector<tensor::Vector>
    probabilitiesBatch(std::span<const tensor::Vector> hs) const;

    /** Memory footprint of the parameters in bytes (FP32). */
    size_t parameterBytes() const;

    /** FLOPs for one full classification (2 l d multiply-adds + norm). */
    uint64_t flopsPerInference() const;

  private:
    tensor::Matrix w_;
    tensor::Vector b_;
    Normalization norm_ = Normalization::Softmax;
};

} // namespace enmc::nn

#endif // ENMC_NN_CLASSIFIER_H
