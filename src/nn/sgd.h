/**
 * @file
 * Minibatch SGD with momentum, used by the screener distillation loop
 * (paper Algorithm 1, "Update W~, b~ with SGD(min Loss)").
 */

#ifndef ENMC_NN_SGD_H
#define ENMC_NN_SGD_H

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::nn {

/** SGD hyperparameters. */
struct SgdConfig
{
    double lr = 0.05;
    double momentum = 0.9;
    double lr_decay = 1.0;   //!< multiplied into lr once per epoch
};

/** Momentum-SGD state for one parameter tensor (flat view). */
class SgdOptimizer
{
  public:
    explicit SgdOptimizer(SgdConfig cfg) : cfg_(cfg) {}

    /** Register a parameter buffer; returns its slot id. */
    size_t addParameter(size_t num_elements);

    /**
     * Apply one update: param -= lr * (velocity update of grad).
     * @param slot Parameter slot from addParameter().
     */
    void step(size_t slot, std::span<float> param,
              std::span<const float> grad);

    /** Signal the end of an epoch (applies lr decay). */
    void endEpoch();

    double currentLr() const { return lr_; }

  private:
    SgdConfig cfg_;
    double lr_ = 0.0;
    bool lr_init_ = false;
    std::vector<std::vector<float>> velocity_;
};

} // namespace enmc::nn

#endif // ENMC_NN_SGD_H
