#include "nn/frontend.h"

#include "common/logging.h"

namespace enmc::nn {

const char *
frontendTypeName(FrontendType type)
{
    switch (type) {
      case FrontendType::LstmLm: return "LSTM";
      case FrontendType::TransformerLm: return "Transformer";
      case FrontendType::Gnmt: return "GNMT";
      case FrontendType::XmlCnn: return "XMLCNN";
    }
    return "?";
}

uint64_t
FrontendModel::embeddingParams() const
{
    return vocab * embedDim();
}

uint64_t
FrontendModel::hiddenParams() const
{
    const uint64_t d = hidden;
    switch (type) {
      case FrontendType::LstmLm:
        // 4 gates, each (input + recurrent) weight + bias, per layer.
        return layers * 4 * (d * d + d * d + d);
      case FrontendType::TransformerLm:
        // Per layer: QKV + output projection (4 d^2) + FFN (2 * 4 d^2).
        return layers * (4 * d * d + 8 * d * d);
      case FrontendType::Gnmt:
        // Encoder + decoder LSTM stacks (layers counts each stack's depth)
        // plus an attention block of ~3 d^2.
        return 2 * layers * 4 * (2 * d * d + d) + 3 * d * d;
      case FrontendType::XmlCnn: {
        // Convolutional feature extractor + bottleneck projection, as in
        // Liu et al. 2017: three filter widths, 128 maps each, over
        // embed-dim channels, then a pooled bottleneck to `hidden`.
        const uint64_t e = embedDim();
        const uint64_t conv = 3 * 128 * (e * 5);  // width-(3,5,7)~avg 5
        const uint64_t bottleneck = 3 * 128 * 32 * d / 8;
        return conv + bottleneck;
      }
    }
    ENMC_PANIC("unreachable frontend type");
}

uint64_t
FrontendModel::flopsPerStep() const
{
    // Embedding lookup is O(d); hidden layers dominate at 2 flops/param.
    return 2 * hiddenParams() + 2 * embedDim();
}

FrontendModel
FrontendModel::lstmW33k()
{
    return {FrontendType::LstmLm, 33278, 1500, 2, 0};
}

FrontendModel
FrontendModel::transformerW268k()
{
    return {FrontendType::TransformerLm, 267744, 512, 6, 0};
}

FrontendModel
FrontendModel::gnmtE32k()
{
    return {FrontendType::Gnmt, 32317, 1024, 8, 0};
}

FrontendModel
FrontendModel::xmlcnn670k()
{
    // The input side of XML-CNN embeds a *text* vocabulary (~40K words at
    // 128 dims in Liu et al. 2017), not the 670K label space — labels only
    // appear in the classification layer.
    return {FrontendType::XmlCnn, 40000, 512, 1, 128};
}

} // namespace enmc::nn
