/**
 * @file
 * Beam-search decoding over classifier outputs.
 *
 * The paper motivates approximation with beam search: "we only use the
 * top-K values of softmax-normalized probabilities to select the translated
 * words, where K is the beam search size". The decoder here consumes any
 * scoring function over the vocabulary, so it runs identically on full
 * classification and on screened (candidates-only) classification — the
 * NMT example compares the two.
 */

#ifndef ENMC_NN_BEAM_H
#define ENMC_NN_BEAM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::nn {

/** One partial hypothesis. */
struct Hypothesis
{
    std::vector<uint32_t> tokens;
    double log_prob = 0.0;
    tensor::Vector state;   //!< decoder hidden state after `tokens`
};

/** Interface the beam search drives. */
struct DecoderInterface
{
    /** Initial decoder state. */
    std::function<tensor::Vector()> initial_state;

    /** Advance the state by one emitted token. */
    std::function<tensor::Vector(const tensor::Vector &state,
                                 uint32_t token)> advance;

    /**
     * Per-category log-probabilities for the next token given a state.
     * Implementations may use full classification or screening.
     */
    std::function<tensor::Vector(const tensor::Vector &state)> log_probs;
};

/** Beam-search configuration. */
struct BeamConfig
{
    size_t beam_width = 4;
    size_t max_steps = 32;
    uint32_t eos_token = 0;
    double length_penalty = 0.0; //!< 0 = none
};

/** Run beam search; returns completed hypotheses sorted best-first. */
std::vector<Hypothesis> beamSearch(const DecoderInterface &decoder,
                                   const BeamConfig &cfg);

} // namespace enmc::nn

#endif // ENMC_NN_BEAM_H
