/**
 * @file
 * Parameter/operation breakdown of a workload into classification and
 * non-classification parts (paper Fig. 4) and the memory-footprint /
 * execution-time scaling model behind Fig. 5(a).
 */

#ifndef ENMC_WORKLOADS_BREAKDOWN_H
#define ENMC_WORKLOADS_BREAKDOWN_H

#include <cstdint>

#include "workloads/registry.h"

namespace enmc::workloads {

/** Fig. 4 row: absolute and relative classification shares. */
struct Breakdown
{
    uint64_t classifier_params = 0;
    uint64_t frontend_params = 0;      //!< embedding + hidden layers
    uint64_t classifier_flops = 0;
    uint64_t frontend_flops = 0;

    double paramShare() const
    {
        const double t =
            static_cast<double>(classifier_params + frontend_params);
        return t > 0 ? classifier_params / t : 0.0;
    }
    double flopShare() const
    {
        const double t =
            static_cast<double>(classifier_flops + frontend_flops);
        return t > 0 ? classifier_flops / t : 0.0;
    }
};

/** Compute the Fig. 4 breakdown for one workload. */
Breakdown computeBreakdown(const Workload &w);

} // namespace enmc::workloads

#endif // ENMC_WORKLOADS_BREAKDOWN_H
