/**
 * @file
 * Synthetic extreme-classification models and data.
 *
 * Substitute for the paper's pre-trained PyTorch models (see DESIGN.md):
 * a synthetic classifier whose weight matrix has a decaying singular-value
 * spectrum (trained XC layers are approximately low-rank — the property
 * both AS and SVD-softmax exploit) plus full-rank residual noise, and
 * hidden vectors drawn around Zipf-distributed "true" categories so the
 * logit distribution has the heavy-tailed top-k structure of real language
 * model / recommendation outputs.
 */

#ifndef ENMC_WORKLOADS_SYNTHETIC_H
#define ENMC_WORKLOADS_SYNTHETIC_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/classifier.h"
#include "tensor/matrix.h"

namespace enmc::workloads {

/** Shape/statistics knobs for a synthetic XC model. */
struct SyntheticConfig
{
    size_t categories = 4096;       //!< l
    size_t hidden = 64;             //!< d
    /** Singular-value decay exponent: sigma_j ∝ (j+1)^-decay. */
    double spectrum_decay = 0.8;
    /** Full-rank residual noise relative to the structured part. */
    double residual_noise = 0.05;
    /** Zipf exponent of the true-category distribution. */
    double zipf_alpha = 1.1;
    /** Hidden-vector SNR: signal scale over noise scale. */
    double sample_snr = 3.0;
    nn::Normalization normalization = nn::Normalization::Softmax;
    uint64_t seed = 42;
};

/** A generated model plus its sampling distribution. */
class SyntheticModel
{
  public:
    explicit SyntheticModel(const SyntheticConfig &cfg);

    const nn::Classifier &classifier() const { return classifier_; }
    const SyntheticConfig &config() const { return cfg_; }

    /** Draw one hidden vector; optionally reports the true category. */
    tensor::Vector sampleHidden(Rng &rng, uint64_t *true_category = nullptr)
        const;

    /** Draw n hidden vectors. */
    std::vector<tensor::Vector> sampleHiddenBatch(Rng &rng, size_t n) const;

    /** A fresh generator seeded from the model's seed and a stream id. */
    Rng makeRng(uint64_t stream) const;

  private:
    SyntheticConfig cfg_;
    nn::Classifier classifier_;
    std::unique_ptr<ZipfSampler> zipf_;
};

} // namespace enmc::workloads

#endif // ENMC_WORKLOADS_SYNTHETIC_H
