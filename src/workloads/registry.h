/**
 * @file
 * Workload registry: the paper's Table 2 models/datasets plus the three
 * synthetic scalability datasets (S1M, S10M, S100M).
 *
 * Each entry carries the *full-scale* dimensions used by all timing and
 * footprint experiments, a front-end model for the non-classification
 * share, and a *functional scale* — the reduced category count at which
 * numerical experiments (screener training, quality evaluation) run. XC
 * timing is a pure function of (l, d, batch, candidates), so timing always
 * uses full scale; quality metrics at functional scale transfer because
 * both the screener size and candidate count scale proportionally.
 */

#ifndef ENMC_WORKLOADS_REGISTRY_H
#define ENMC_WORKLOADS_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/frontend.h"
#include "workloads/synthetic.h"

namespace enmc::workloads {

/** One evaluated application (a Table 2 row or a synthetic S* dataset). */
struct Workload
{
    std::string abbr;            //!< e.g. "Transformer-W268K"
    std::string application;     //!< NLP / NMT / Recommendation
    std::string dataset;         //!< Wikitext-103, S10M, ...
    uint64_t categories = 0;     //!< l (full scale)
    uint64_t hidden = 0;         //!< d
    nn::FrontendModel frontend;
    nn::Normalization normalization = nn::Normalization::Softmax;

    /** Candidate-set size of the Fig. 11 (CPU+AS) operating point. */
    uint64_t candidates = 64;

    /**
     * Candidate budget used by the NMP/ENMC runs of Fig. 13/15. The paper
     * tightens the FILTER threshold for the recommendation workloads
     * ("we considerably reduce the number of candidates by 50x" for
     * XMLCNN-670K). 0 means same as `candidates`.
     */
    uint64_t nmp_candidates = 0;

    uint64_t nmpCandidates() const
    {
        return nmp_candidates ? nmp_candidates : candidates;
    }

    /** Reduced l for functional (numeric) experiments. */
    uint64_t functional_categories = 4096;
    /** Reduced d for functional experiments (0 = use full `hidden`). */
    uint64_t functional_hidden = 0;

    /** Classification parameter bytes (FP32 weights + bias). */
    uint64_t classifierBytes() const
    {
        return categories * hidden * sizeof(float) +
               categories * sizeof(float);
    }

    /** Classification FLOPs for one inference. */
    uint64_t classifierFlops() const
    {
        return 2ull * categories * hidden + 4ull * categories;
    }

    /** Synthetic-model config at functional scale. */
    SyntheticConfig functionalConfig(uint64_t seed = 42) const;
};

/** The four Table 2 workloads, in the paper's order. */
std::vector<Workload> table2Workloads();

/** S1M / S10M / S100M scalability datasets (XMLCNN front-end). */
std::vector<Workload> scalabilityWorkloads();

/** Everything: Table 2 + scalability. */
std::vector<Workload> allWorkloads();

/** Look up by abbreviation; fatal if unknown. */
Workload findWorkload(const std::string &abbr);

} // namespace enmc::workloads

#endif // ENMC_WORKLOADS_REGISTRY_H
