#include "workloads/registry.h"

#include "common/logging.h"

namespace enmc::workloads {

SyntheticConfig
Workload::functionalConfig(uint64_t seed) const
{
    SyntheticConfig cfg;
    cfg.categories = functional_categories;
    cfg.hidden = functional_hidden ? functional_hidden : hidden;
    cfg.normalization = normalization;
    cfg.seed = seed;
    return cfg;
}

std::vector<Workload>
table2Workloads()
{
    std::vector<Workload> v;

    // Candidate-set sizes are chosen so the algorithmic cost model
    // reproduces the paper's Fig. 11 speedups: with INT4 screening at
    // reduction scale 0.25 the screening phase costs 1/32 (~3.1%, the
    // paper's stated overhead) of full classification, and speedup is
    // 1 / (1/32 + m/l).
    Workload lstm;
    lstm.abbr = "LSTM-W33K";
    lstm.application = "NLP";
    lstm.dataset = "Wikitext-2";
    lstm.categories = 33278;
    lstm.hidden = 1500;
    lstm.frontend = nn::FrontendModel::lstmW33k();
    lstm.candidates = 4800;            // ~14.4% of l -> 5.7x
    lstm.functional_categories = 4096;
    lstm.functional_hidden = 96;
    v.push_back(lstm);

    Workload xfmr;
    xfmr.abbr = "Transformer-W268K";
    xfmr.application = "NLP";
    xfmr.dataset = "Wikitext-103";
    xfmr.categories = 267744;
    xfmr.hidden = 512;
    xfmr.frontend = nn::FrontendModel::transformerW268k();
    xfmr.candidates = 34000;           // ~12.7% of l -> 6.3x
    xfmr.functional_categories = 4096;
    xfmr.functional_hidden = 64;
    v.push_back(xfmr);

    Workload gnmt;
    gnmt.abbr = "GNMT-E32K";
    gnmt.application = "NMT";
    gnmt.dataset = "WMT16 en-de";
    gnmt.categories = 32317;
    gnmt.hidden = 1024;
    gnmt.frontend = nn::FrontendModel::gnmtE32k();
    gnmt.candidates = 1740;            // ~5.4% of l -> 11.8x
    gnmt.functional_categories = 4096;
    gnmt.functional_hidden = 96;
    v.push_back(gnmt);

    Workload xml;
    xml.abbr = "XMLCNN-670K";
    xml.application = "Recommendation";
    xml.dataset = "Amazon-670k";
    xml.categories = 670091;
    xml.hidden = 512;
    xml.frontend = nn::FrontendModel::xmlcnn670k();
    xml.normalization = nn::Normalization::Sigmoid;
    xml.candidates = 17700;            // ~2.6% of l -> 17.4x
    xml.nmp_candidates = 354;          // Fig. 13: tightened 50x
    xml.functional_categories = 4096;
    xml.functional_hidden = 64;
    v.push_back(xml);

    return v;
}

std::vector<Workload>
scalabilityWorkloads()
{
    std::vector<Workload> v;
    const uint64_t sizes[] = {1'000'000, 10'000'000, 100'000'000};
    const char *names[] = {"S1M", "S10M", "S100M"};
    for (int i = 0; i < 3; ++i) {
        Workload w;
        w.abbr = names[i];
        w.application = "Recommendation";
        w.dataset = names[i];
        w.categories = sizes[i];
        w.hidden = 512;
        w.frontend = nn::FrontendModel::xmlcnn670k();
        w.normalization = nn::Normalization::Sigmoid;
        w.candidates = sizes[i] / 50;
        w.nmp_candidates = sizes[i] / 2500; // 50x-tightened threshold
        w.functional_categories = 4096;
        w.functional_hidden = 64;
        v.push_back(w);
    }
    return v;
}

std::vector<Workload>
allWorkloads()
{
    std::vector<Workload> v = table2Workloads();
    for (auto &w : scalabilityWorkloads())
        v.push_back(std::move(w));
    return v;
}

Workload
findWorkload(const std::string &abbr)
{
    for (const auto &w : allWorkloads())
        if (w.abbr == abbr)
            return w;
    ENMC_FATAL("unknown workload '", abbr, "'");
}

} // namespace enmc::workloads
