#include "workloads/synthetic.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace enmc::workloads {

namespace {

/**
 * Build an l x d weight matrix with spectrum sigma_j ∝ (j+1)^-decay plus
 * residual noise: W = G * diag(sigma) * Vᵀ + eps * N, where G is l x d
 * i.i.d. normal and V is a set of d near-orthogonal random directions
 * (exact orthogonality is irrelevant at these dimensions).
 */
tensor::Matrix
makeWeights(const SyntheticConfig &cfg, Rng &rng)
{
    const size_t l = cfg.categories;
    const size_t d = cfg.hidden;

    // Random directions v_j, unit-normalized.
    tensor::Matrix v(d, d);
    for (size_t j = 0; j < d; ++j) {
        double nrm = 0.0;
        for (size_t i = 0; i < d; ++i) {
            const double g = rng.normal();
            v(j, i) = static_cast<float>(g);
            nrm += g * g;
        }
        const float inv = static_cast<float>(1.0 / std::sqrt(nrm));
        for (size_t i = 0; i < d; ++i)
            v(j, i) *= inv;
    }

    std::vector<float> sigma(d);
    for (size_t j = 0; j < d; ++j)
        sigma[j] = static_cast<float>(
            std::pow(static_cast<double>(j + 1), -cfg.spectrum_decay));

    tensor::Matrix w(l, d);
    const float noise = static_cast<float>(cfg.residual_noise);
    std::vector<float> g(d);
    for (size_t r = 0; r < l; ++r) {
        for (size_t j = 0; j < d; ++j)
            g[j] = static_cast<float>(rng.normal()) * sigma[j];
        float *row = w.row(r).data();
        for (size_t i = 0; i < d; ++i) {
            double acc = 0.0;
            for (size_t j = 0; j < d; ++j)
                acc += static_cast<double>(g[j]) * v(j, i);
            row[i] = static_cast<float>(acc) +
                     noise * static_cast<float>(rng.normal());
        }
    }
    return w;
}

} // namespace

SyntheticModel::SyntheticModel(const SyntheticConfig &cfg)
    : cfg_(cfg)
{
    ENMC_ASSERT(cfg.categories >= 2 && cfg.hidden >= 2,
                "synthetic model too small");
    Rng rng(cfg.seed);
    tensor::Matrix w = makeWeights(cfg, rng);
    tensor::Vector b(cfg.categories);
    // Bias mimics a log-unigram prior: frequent (low-index) categories get
    // a higher bias, as tied output layers learn in practice.
    for (size_t i = 0; i < cfg.categories; ++i)
        b[i] = static_cast<float>(
            -0.1 * std::log(static_cast<double>(i + 2)) +
            0.05 * rng.normal());
    classifier_ = nn::Classifier(std::move(w), std::move(b),
                                 cfg.normalization);
    zipf_ = std::make_unique<ZipfSampler>(cfg.categories,
                                          cfg.zipf_alpha);
}

tensor::Vector
SyntheticModel::sampleHidden(Rng &rng, uint64_t *true_category) const
{
    const uint64_t t = (*zipf_)(rng);
    if (true_category)
        *true_category = t;
    const auto row = classifier_.weights().row(t);
    const double row_norm = tensor::norm2(row);
    const size_t d = cfg_.hidden;
    tensor::Vector h(d);
    const double signal =
        cfg_.sample_snr / std::max(row_norm, 1e-9);
    const double noise = 1.0 / std::sqrt(static_cast<double>(d));
    for (size_t i = 0; i < d; ++i)
        h[i] = static_cast<float>(signal * row[i] + noise * rng.normal());
    // LayerNorm-style rescaling: real front-ends normalize activations
    // before the classifier, so hidden vectors have a homogeneous scale.
    // This is also what makes a single preloaded FILTER threshold usable.
    const double target = std::sqrt(cfg_.sample_snr * cfg_.sample_snr + 1.0);
    const double hnorm = tensor::norm2(h);
    if (hnorm > 1e-12) {
        const float s = static_cast<float>(target / hnorm);
        for (auto &v : h)
            v *= s;
    }
    return h;
}

std::vector<tensor::Vector>
SyntheticModel::sampleHiddenBatch(Rng &rng, size_t n) const
{
    std::vector<tensor::Vector> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(sampleHidden(rng));
    return out;
}

Rng
SyntheticModel::makeRng(uint64_t stream) const
{
    return Rng(cfg_.seed * 0x9e3779b97f4a7c15ull + stream + 1);
}

} // namespace enmc::workloads
