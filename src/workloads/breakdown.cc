#include "workloads/breakdown.h"

namespace enmc::workloads {

Breakdown
computeBreakdown(const Workload &w)
{
    Breakdown b;
    b.classifier_params = w.categories * w.hidden + w.categories;
    b.frontend_params = w.frontend.params();
    b.classifier_flops = w.classifierFlops();
    b.frontend_flops = w.frontend.flopsPerStep();
    return b;
}

} // namespace enmc::workloads
