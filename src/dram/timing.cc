#include "dram/timing.h"

#include "common/units.h"

namespace enmc::dram {

Timing
Timing::ddr4_2400()
{
    return Timing{}; // defaults are the DDR4-2400 values
}

uint32_t
Timing::eccDecodeCycles(fault::EccScheme scheme) const
{
    if (scheme == fault::EccScheme::None)
        return 0;
    const fault::EccGeometry g = fault::eccGeometry(scheme);
    const uint64_t fold = ceilDiv(g.codewordBits(),
                                  static_cast<uint64_t>(
                                      ecc_xor_bits_per_cycle));
    return static_cast<uint32_t>(fold + 1);
}

} // namespace enmc::dram
