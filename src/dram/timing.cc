#include "dram/timing.h"

namespace enmc::dram {

Timing
Timing::ddr4_2400()
{
    return Timing{}; // defaults are the DDR4-2400 values
}

} // namespace enmc::dram
