/**
 * @file
 * DRAM organization configuration and address mapping.
 *
 * The evaluated system (paper Table 3) is 8 channels x 8 ranks of 8Gb x8
 * devices (8 devices per rank -> 64-bit bus), 64 GB per channel.
 */

#ifndef ENMC_DRAM_CONFIG_H
#define ENMC_DRAM_CONFIG_H

#include <cstdint>
#include <string>

#include "common/units.h"

namespace enmc::dram {

/** Physical address decomposed into DRAM coordinates. */
struct AddrVec
{
    uint32_t channel = 0;
    uint32_t rank = 0;
    uint32_t bankgroup = 0;
    uint32_t bank = 0;
    uint32_t row = 0;
    uint32_t column = 0;
};

/** Address bit order (MSB -> LSB) for interleaving. */
enum class AddrMapping {
    /** row : rank : bankgroup : bank : column : channel — streams hit open
     *  rows and spread consecutive lines over channels. */
    RoRaBgBaCoCh,
    /** row : column : rank : bankgroup : bank : channel — maximal bank
     *  parallelism for random traffic. */
    RoCoRaBgBaCh,
    /**
     * row : rank : column : bank : bankgroup : channel — consecutive
     * lines alternate bank *groups* first, then banks. Streams dodge the
     * DDR4 tCCD_L same-group penalty and activate many banks in
     * parallel; this is the mapping the on-DIMM (rank-local) ENMC and
     * baseline controllers use for weight streaming.
     */
    RoRaCoBaBgCh,
};

/** Organization of one memory system. */
struct Organization
{
    uint32_t channels = 8;
    uint32_t ranks = 8;        //!< per channel
    uint32_t bankgroups = 4;   //!< per rank (DDR4)
    uint32_t banks = 4;        //!< per bankgroup
    uint32_t rows = 65536;     //!< per bank (8Gb x8 device)
    uint32_t columns = 1024;   //!< per row
    uint32_t buswidth_bits = 64;
    uint32_t burst_length = 8;
    AddrMapping mapping = AddrMapping::RoRaBgBaCoCh;

    /** Bytes transferred by one RD/WR burst. */
    uint64_t accessBytes() const
    {
        return static_cast<uint64_t>(buswidth_bits) / 8 * burst_length;
    }

    /** Row buffer size in bytes (per rank, all devices together). */
    uint64_t rowBytes() const
    {
        return static_cast<uint64_t>(columns) * buswidth_bits / 8;
    }

    uint64_t banksPerRank() const
    {
        return static_cast<uint64_t>(bankgroups) * banks;
    }

    uint64_t bytesPerRank() const
    {
        return banksPerRank() * rows * rowBytes();
    }

    uint64_t bytesPerChannel() const { return bytesPerRank() * ranks; }
    uint64_t totalBytes() const { return bytesPerChannel() * channels; }

    /** Peak data bandwidth of one channel in bytes/second. */
    double channelPeakBandwidth(double cmd_clock_hz) const
    {
        // Double data rate: 2 transfers per command-clock cycle.
        return cmd_clock_hz * 2.0 * buswidth_bits / 8.0;
    }

    /** Table 3 organization: 8 ch x 8 ranks, 64 GB per channel. */
    static Organization paperTable3();

    /** A single-rank organization for per-rank (on-DIMM) controllers. */
    Organization singleRankView() const;
};

/** Map a flat byte address to DRAM coordinates. */
AddrVec mapAddress(Addr addr, const Organization &org);

/** Inverse of mapAddress (used by tests). */
Addr unmapAddress(const AddrVec &vec, const Organization &org);

} // namespace enmc::dram

#endif // ENMC_DRAM_CONFIG_H
