#include "dram/controller.h"

#include "common/logging.h"
#include "fault/injector.h"

namespace enmc::dram {

Controller::Controller(const Organization &org, const Timing &timing,
                       const ControllerConfig &cfg, std::string name)
    : org_(org), cfg_(cfg), channel_(org, timing),
      next_refresh_(org.ranks, timing.trefi),
      refresh_pending_(org.ranks, false),
      stats_(std::move(name)),
      reads_(stats_.addCounter("reads", "read requests completed")),
      writes_(stats_.addCounter("writes", "write requests completed")),
      row_hits_(stats_.addCounter("rowHits", "row-buffer hits")),
      row_misses_(stats_.addCounter("rowMisses",
                                    "row-buffer misses (bank idle)")),
      row_conflicts_(stats_.addCounter("rowConflicts",
                                       "row-buffer conflicts (wrong row)")),
      refreshes_(stats_.addCounter("refreshes", "REF commands issued")),
      ecc_corrected_(stats_.addCounter("eccCorrected",
                                       "read words repaired by SECDED")),
      ecc_detected_(stats_.addCounter(
          "eccDetected", "read words detected uncorrectable")),
      ecc_escaped_(stats_.addCounter(
          "eccEscaped", "read words silently corrupted")),
      ecc_weak_corrected_(stats_.addCounter(
          "eccWeakCorrected", "weak-class read words repaired")),
      ecc_weak_detected_(stats_.addCounter(
          "eccWeakDetected", "weak-class words detected uncorrectable")),
      ecc_weak_escaped_(stats_.addCounter(
          "eccWeakEscaped", "weak-class words silently corrupted")),
      ecc_strong_corrected_(stats_.addCounter(
          "eccStrongCorrected", "strong-class read words repaired")),
      ecc_strong_detected_(stats_.addCounter(
          "eccStrongDetected", "strong-class words detected uncorrectable")),
      ecc_strong_escaped_(stats_.addCounter(
          "eccStrongEscaped", "strong-class words silently corrupted")),
      ecc_protected_reads_(stats_.addCounter(
          "eccProtectedReads", "read bursts covered by an ECC scheme")),
      ecc_redundancy_reads_(stats_.addCounter(
          "eccRedundancyReads", "extra bursts fetching ECC check bits")),
      ecc_decode_cycles_(stats_.addCounter(
          "eccDecodeCycles", "syndrome-decode cycles charged to reads")),
      stuck_reads_(stats_.addCounter("stuckReads",
                                     "reads served by a stuck rank")),
      read_latency_(stats_.addScalar("readLatency",
                                     "request latency in cycles")),
      queue_occupancy_(stats_.addScalar("queueOccupancy",
                                        "queue entries per cycle")),
      read_latency_hist_(stats_.addHistogram(
          "readLatencyHist", "request latency distribution in cycles",
          0.0, 256.0, 32)),
      stats_registration_(stats_)
{
}

bool
Controller::enqueue(Request req)
{
    if (queue_.size() >= cfg_.queue_depth)
        return false;
    Entry e;
    e.vec = mapAddress(req.addr, org_);
    // A controller owns exactly one channel; the decoded channel index is
    // only meaningful to the MemorySystem router above us.
    e.vec.channel = 0;
    req.arrive = now_;
    e.req = std::move(req);
    e.seq = seq_++;

    // Classify row-buffer outcome at arrival against current bank state.
    if (channel_.rowOpen(e.vec))
        ++row_hits_;
    else if (channel_.bankActive(e.vec))
        ++row_conflicts_;
    else
        ++row_misses_;

    queue_.push_back(std::move(e));
    return true;
}

bool
Controller::serviceRefresh()
{
    if (!cfg_.refresh_enabled)
        return false;
    for (uint32_t r = 0; r < org_.ranks; ++r) {
        if (now_ >= next_refresh_[r])
            refresh_pending_[r] = true;
        if (!refresh_pending_[r])
            continue;
        AddrVec vec;
        vec.rank = r;
        // Precharge any open bank in the rank, one PRE per cycle.
        if (!channel_.rankAllPrecharged(r)) {
            for (uint32_t bg = 0; bg < org_.bankgroups; ++bg) {
                for (uint32_t b = 0; b < org_.banks; ++b) {
                    vec.bankgroup = bg;
                    vec.bank = b;
                    if (channel_.bankActive(vec) &&
                        channel_.canIssue(Cmd::Pre, vec, now_)) {
                        channel_.issue(Cmd::Pre, vec, now_);
                        return true; // one command per cycle
                    }
                }
            }
            continue; // waiting on tRAS etc.; other ranks may proceed
        }
        if (channel_.canIssue(Cmd::Ref, vec, now_)) {
            channel_.issue(Cmd::Ref, vec, now_);
            ++refreshes_;
            refresh_pending_[r] = false;
            next_refresh_[r] = now_ + channel_.timing().trefi;
            return true;
        }
    }
    return false;
}

bool
Controller::trySchedule()
{
    // Pass 1 (FR): oldest request whose row is open and whose column
    // command can issue right now.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (refresh_pending_[it->vec.rank])
            continue;
        const Cmd col_cmd =
            it->req.type == ReqType::Read ? Cmd::Rd : Cmd::Wr;
        if (channel_.rowOpen(it->vec) &&
            channel_.canIssue(col_cmd, it->vec, now_)) {
            channel_.issue(col_cmd, it->vec, now_);
            const Cycles data_end = now_ +
                (it->req.type == ReqType::Read
                     ? channel_.timing().readLatency()
                     : channel_.timing().writeLatency());
            finishRequest(*it, data_end);
            queue_.erase(it);
            return true;
        }
    }
    // Pass 2 (FCFS): oldest request that needs ACT or PRE and can get it.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (refresh_pending_[it->vec.rank])
            continue;
        if (channel_.rowOpen(it->vec))
            continue; // column command blocked on timing; wait
        if (channel_.bankActive(it->vec)) {
            if (channel_.canIssue(Cmd::Pre, it->vec, now_)) {
                channel_.issue(Cmd::Pre, it->vec, now_);
                return true;
            }
        } else if (channel_.canIssue(Cmd::Act, it->vec, now_)) {
            channel_.issue(Cmd::Act, it->vec, now_);
            return true;
        }
    }
    return false;
}

void
Controller::tallyClass(fault::Protection cls, uint64_t corrected,
                       uint64_t detected, uint64_t escaped)
{
    switch (cls) {
    case fault::Protection::Weak:
        ecc_weak_corrected_ += corrected;
        ecc_weak_detected_ += detected;
        ecc_weak_escaped_ += escaped;
        break;
    case fault::Protection::Strong:
        ecc_strong_corrected_ += corrected;
        ecc_strong_detected_ += detected;
        ecc_strong_escaped_ += escaped;
        break;
    case fault::Protection::None:
        break; // unprotected accesses only show in the aggregates
    }
}

Cycles
Controller::chargeEccOverhead(fault::Protection cls,
                              fault::EccScheme scheme)
{
    if (scheme == fault::EccScheme::None)
        return 0;
    ++ecc_protected_reads_;
    const fault::EccGeometry g = fault::eccGeometry(scheme);
    const uint64_t access = org_.accessBytes();
    const auto c = static_cast<size_t>(cls);
    Cycles extra = 0;

    // Redundancy bandwidth: check bits ride on the same bus; once a full
    // burst's worth of debt accumulates, charge one extra burst slot.
    ecc_check_debt_bytes_[c] += static_cast<double>(access) * g.overhead();
    while (ecc_check_debt_bytes_[c] >= static_cast<double>(access)) {
        ecc_check_debt_bytes_[c] -= static_cast<double>(access);
        ++ecc_redundancy_reads_;
        extra += channel_.timing().tbl;
    }

    // Decode latency: word-granular codewords decode in parallel, one
    // decode latency per burst; a block codeword spanning many bursts
    // decodes once per completed codeword.
    const uint32_t decode = channel_.timing().eccDecodeCycles(scheme);
    if (g.dataBytes() <= access) {
        ecc_decode_cycles_ += decode;
        extra += decode;
    } else {
        ecc_decode_acc_bytes_[c] += access;
        if (ecc_decode_acc_bytes_[c] >= g.dataBytes()) {
            ecc_decode_acc_bytes_[c] -= g.dataBytes();
            ecc_decode_cycles_ += decode;
            extra += decode;
        }
    }
    return extra;
}

void
Controller::finishRequest(Entry &entry, Cycles data_end)
{
    if (entry.req.type == ReqType::Read) {
        ++reads_;
        if (fault_injector_ && fault_injector_->enabled()) {
            const uint64_t words = org_.accessBytes() / 8;
            const fault::Protection cls = entry.req.prot;
            const fault::EccScheme scheme =
                fault_injector_->config().schemeFor(cls);
            if (fault_injector_->config().rankStuck(entry.vec.rank)) {
                // A stuck rank returns garbage on every burst; ECC flags
                // the whole line.
                ++stuck_reads_;
                ecc_detected_ += words;
                tallyClass(cls, 0, words, 0);
            } else {
                const auto out = fault_injector_->classifyBurst(
                    words, fault_burst_seq_, cls);
                ecc_corrected_ += out.corrected;
                ecc_detected_ += out.detected;
                ecc_escaped_ += out.escaped;
                tallyClass(cls, out.corrected, out.detected, out.escaped);
            }
            fault_burst_seq_ += words;
            if (fault_injector_->config().ecc_overhead)
                data_end += chargeEccOverhead(cls, scheme);
        }
    } else {
        ++writes_;
    }
    entry.req.complete = data_end;
    read_latency_.sample(static_cast<double>(data_end - entry.req.arrive));
    read_latency_hist_.sample(
        static_cast<double>(data_end - entry.req.arrive));
    Completion c{data_end, std::move(entry.req)};
    inflight_.push(std::move(c));
}

void
Controller::tick()
{
    ++now_;
    queue_occupancy_.sample(static_cast<double>(queue_.size()));

    // Deliver finished data transfers.
    while (!inflight_.empty() && inflight_.top().at <= now_) {
        const Completion &c = inflight_.top();
        if (c.req.on_complete)
            c.req.on_complete(c.req);
        inflight_.pop();
    }

    // Refresh has priority; one C/A command per cycle.
    if (!serviceRefresh())
        trySchedule();
}

uint64_t
Controller::eccRedundancyReads() const
{
    return ecc_redundancy_reads_.value();
}

uint64_t
Controller::eccDecodeCyclesCharged() const
{
    return ecc_decode_cycles_.value();
}

uint64_t
Controller::bytesTransferred() const
{
    return (reads_.value() + writes_.value()) * org_.accessBytes();
}

double
Controller::achievedBandwidth() const
{
    if (now_ == 0)
        return 0.0;
    const double seconds =
        cyclesToSeconds(now_, channel_.timing().freq_hz);
    return bytesTransferred() / seconds;
}

} // namespace enmc::dram
