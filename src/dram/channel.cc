#include "dram/channel.h"

#include <algorithm>

#include "common/logging.h"

namespace enmc::dram {

const char *
cmdName(Cmd cmd)
{
    switch (cmd) {
      case Cmd::Act: return "ACT";
      case Cmd::Pre: return "PRE";
      case Cmd::Rd: return "RD";
      case Cmd::Wr: return "WR";
      case Cmd::Ref: return "REF";
    }
    return "?";
}

Channel::Channel(const Organization &org, const Timing &timing)
    : org_(org), timing_(timing),
      banks_(static_cast<size_t>(org.ranks) * org.banksPerRank()),
      ranks_(org.ranks)
{
    for (auto &r : ranks_) {
        r.next_act_bg.assign(org.bankgroups, 0);
        r.next_rd_bg.assign(org.bankgroups, 0);
        r.next_wr_bg.assign(org.bankgroups, 0);
    }
}

size_t
Channel::bankIndex(const AddrVec &vec) const
{
    ENMC_ASSERT(vec.rank < org_.ranks && vec.bankgroup < org_.bankgroups &&
                vec.bank < org_.banks, "bad bank coordinates");
    return static_cast<size_t>(vec.rank) * org_.banksPerRank() +
           static_cast<size_t>(vec.bankgroup) * org_.banks + vec.bank;
}

bool
Channel::rowOpen(const AddrVec &vec) const
{
    const BankState &b = banks_[bankIndex(vec)];
    return b.active && b.open_row == vec.row;
}

bool
Channel::bankActive(const AddrVec &vec) const
{
    return banks_[bankIndex(vec)].active;
}

bool
Channel::rankAllPrecharged(uint32_t rank) const
{
    const size_t base = static_cast<size_t>(rank) * org_.banksPerRank();
    for (size_t i = 0; i < org_.banksPerRank(); ++i)
        if (banks_[base + i].active)
            return false;
    return true;
}

bool
Channel::canIssue(Cmd cmd, const AddrVec &vec, Cycles now) const
{
    const BankState &bank = banks_[bankIndex(vec)];
    const RankState &rank = ranks_[vec.rank];

    switch (cmd) {
      case Cmd::Act: {
        if (bank.active)
            return false; // must precharge first
        if (now < bank.next_act || now < rank.next_act ||
            now < rank.next_act_bg[vec.bankgroup]) {
            return false;
        }
        // Four-activate window: the 4th-previous ACT must be at least
        // tFAW cycles ago.
        if (rank.act_window.size() >= 4 &&
            now < rank.act_window.front() + timing_.tfaw) {
            return false;
        }
        return true;
      }
      case Cmd::Pre:
        return bank.active && now >= bank.next_pre;
      case Cmd::Rd:
      case Cmd::Wr: {
        if (!bank.active || bank.open_row != vec.row)
            return false;
        if (now < bank.next_rdwr)
            return false;
        if (cmd == Cmd::Rd && (now < rank.next_rd ||
                               now < rank.next_rd_bg[vec.bankgroup])) {
            return false;
        }
        if (cmd == Cmd::Wr && (now < rank.next_wr ||
                               now < rank.next_wr_bg[vec.bankgroup])) {
            return false;
        }
        // Shared data bus: the new burst must start after the previous one
        // drains (plus a rank-switch bubble when changing ranks).
        const Cycles data_start =
            now + (cmd == Cmd::Rd ? timing_.cl : timing_.cwl);
        Cycles bus_ready = bus_free_;
        if (last_bus_rank_ >= 0 &&
            static_cast<uint32_t>(last_bus_rank_) != vec.rank) {
            bus_ready += timing_.trtrs;
        }
        return data_start >= bus_ready;
      }
      case Cmd::Ref:
        return rankAllPrecharged(vec.rank) && now >= rank.next_ref &&
               now >= rank.next_act;
    }
    return false;
}

void
Channel::issue(Cmd cmd, const AddrVec &vec, Cycles now)
{
    ENMC_ASSERT(canIssue(cmd, vec, now), "issued ", cmdName(cmd),
                " violates timing");
    BankState &bank = banks_[bankIndex(vec)];
    RankState &rank = ranks_[vec.rank];
    ++cmd_counts_[static_cast<int>(cmd)];

    switch (cmd) {
      case Cmd::Act: {
        bank.active = true;
        bank.open_row = vec.row;
        bank.next_act = now + timing_.trc;
        bank.next_rdwr = now + timing_.trcd;
        bank.next_pre = now + timing_.tras;
        rank.next_act = std::max(rank.next_act, now + timing_.trrd_s);
        rank.next_act_bg[vec.bankgroup] =
            std::max(rank.next_act_bg[vec.bankgroup],
                     now + timing_.trrd_l);
        rank.act_window.push_back(now);
        while (rank.act_window.size() > 4)
            rank.act_window.pop_front();
        break;
      }
      case Cmd::Pre: {
        bank.active = false;
        bank.next_act = std::max(bank.next_act, now + timing_.trp);
        break;
      }
      case Cmd::Rd: {
        const Cycles data_end = now + timing_.cl + timing_.tbl;
        bus_free_ = data_end;
        last_bus_rank_ = static_cast<int>(vec.rank);
        rank.next_rd = std::max(rank.next_rd, now + timing_.tccd_s);
        rank.next_rd_bg[vec.bankgroup] =
            std::max(rank.next_rd_bg[vec.bankgroup],
                     now + timing_.tccd_l);
        // Read -> write turnaround: write data may start only after the
        // read burst leaves the bus.
        rank.next_wr = std::max(rank.next_wr,
                                data_end + 2 - timing_.cwl);
        bank.next_pre = std::max(bank.next_pre, now + timing_.trtp);
        break;
      }
      case Cmd::Wr: {
        const Cycles data_end = now + timing_.cwl + timing_.tbl;
        bus_free_ = data_end;
        last_bus_rank_ = static_cast<int>(vec.rank);
        rank.next_wr = std::max(rank.next_wr, now + timing_.tccd_s);
        rank.next_wr_bg[vec.bankgroup] =
            std::max(rank.next_wr_bg[vec.bankgroup],
                     now + timing_.tccd_l);
        rank.next_rd = std::max(rank.next_rd, data_end + timing_.twtr);
        bank.next_pre = std::max(bank.next_pre, data_end + timing_.twr);
        break;
      }
      case Cmd::Ref: {
        const size_t base =
            static_cast<size_t>(vec.rank) * org_.banksPerRank();
        for (size_t i = 0; i < org_.banksPerRank(); ++i) {
            banks_[base + i].next_act =
                std::max(banks_[base + i].next_act, now + timing_.trfc);
        }
        rank.next_act = std::max(rank.next_act, now + timing_.trfc);
        rank.next_ref = now + timing_.trefi;
        break;
      }
    }
}

uint64_t
Channel::commandCount(Cmd cmd) const
{
    return cmd_counts_[static_cast<int>(cmd)];
}

} // namespace enmc::dram
