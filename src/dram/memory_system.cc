#include "dram/memory_system.h"

#include "common/logging.h"

namespace enmc::dram {

MemorySystem::MemorySystem(const Organization &org, const Timing &timing,
                           const ControllerConfig &cfg,
                           const std::string &name)
    : org_(org), timing_(timing)
{
    // Each controller models exactly one channel; give it a single-channel
    // organization so address decode inside the controller is local.
    Organization ch_org = org;
    ch_org.channels = 1;
    for (uint32_t ch = 0; ch < org.channels; ++ch) {
        controllers_.push_back(std::make_unique<Controller>(
            ch_org, timing, cfg, name + ".ch" + std::to_string(ch)));
    }
}

void
MemorySystem::attachFaultInjector(fault::FaultInjector *injector)
{
    for (auto &c : controllers_)
        c->attachFaultInjector(injector);
}

bool
MemorySystem::enqueue(Request req)
{
    const AddrVec vec = mapAddress(req.addr, org_);
    ENMC_ASSERT(vec.channel < controllers_.size(), "bad channel decode");
    // Strip the channel bits so the per-channel controller decodes rank/
    // bank/row from a channel-local address.
    AddrVec local = vec;
    local.channel = 0;
    Organization ch_org = org_;
    ch_org.channels = 1;
    req.addr = unmapAddress(local, ch_org);
    return controllers_[vec.channel]->enqueue(std::move(req));
}

void
MemorySystem::tick()
{
    ++cycles_;
    for (auto &c : controllers_)
        c->tick();
}

Cycles
MemorySystem::drain(Cycles max_cycles)
{
    const Cycles start = cycles_;
    while (!idle()) {
        if (cycles_ - start >= max_cycles)
            ENMC_PANIC("memory system failed to drain in ", max_cycles,
                       " cycles");
        tick();
    }
    return cycles_ - start;
}

bool
MemorySystem::idle() const
{
    for (const auto &c : controllers_)
        if (!c->idle())
            return false;
    return true;
}

uint64_t
MemorySystem::bytesTransferred() const
{
    uint64_t total = 0;
    for (const auto &c : controllers_)
        total += c->bytesTransferred();
    return total;
}

double
MemorySystem::achievedBandwidth() const
{
    if (cycles_ == 0)
        return 0.0;
    const double seconds = cyclesToSeconds(cycles_, timing_.freq_hz);
    return bytesTransferred() / seconds;
}

void
MemorySystem::dumpStats(std::ostream &os) const
{
    for (const auto &c : controllers_)
        c->stats().dump(os);
}

} // namespace enmc::dram
