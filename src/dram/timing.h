/**
 * @file
 * DDR4 timing parameters.
 *
 * All values are in memory-clock cycles (the command clock; DDR4-2400 runs
 * the command clock at 1200 MHz and transfers data on both edges). The
 * DDR4-2400 preset reflects paper Table 3: CL-tRCD-tRP = 16-16-16, tRC = 55,
 * tCCD = 4, tRRD = 4, tFAW = 6; remaining values follow the JEDEC DDR4 8Gb
 * speed bin.
 */

#ifndef ENMC_DRAM_TIMING_H
#define ENMC_DRAM_TIMING_H

#include <cstdint>

#include "common/units.h"
#include "fault/ecc.h"

namespace enmc::dram {

/** DDR timing constraint set (cycles at the command clock). */
struct Timing
{
    // Frequency of the command clock in Hz (data rate is 2x).
    double freq_hz = 1200e6;

    uint32_t cl = 16;      //!< CAS latency (RD -> data)
    uint32_t cwl = 12;     //!< CAS write latency (WR -> data)
    uint32_t trcd = 16;    //!< ACT -> RD/WR, same bank
    uint32_t trp = 16;     //!< PRE -> ACT, same bank
    uint32_t trc = 55;     //!< ACT -> ACT, same bank
    uint32_t tras = 39;    //!< ACT -> PRE, same bank (trc - trp)
    /**
     * Column-to-column spacing. DDR4 distinguishes same-bank-group
     * (tCCD_L) from different-bank-group (tCCD_S) accesses; Table 3's
     * tCCD=4 is the short (cross-group) constraint that governs
     * well-interleaved streams.
     */
    uint32_t tccd_s = 4;   //!< RD->RD / WR->WR, different bank group
    uint32_t tccd_l = 6;   //!< RD->RD / WR->WR, same bank group
    /** ACT->ACT spacing, short (cross-group) / long (same-group). */
    uint32_t trrd_s = 4;   //!< Table 3's tRRD
    uint32_t trrd_l = 6;
    uint32_t tfaw = 6;     //!< four-activate window, per rank
    uint32_t tbl = 4;      //!< burst length 8 occupies 4 command cycles
    uint32_t trtp = 9;     //!< RD -> PRE, same bank
    uint32_t twr = 18;     //!< end of write data -> PRE, same bank
    uint32_t twtr = 9;     //!< end of write data -> RD, same rank
    uint32_t trtrs = 2;    //!< rank-to-rank data-bus switch penalty
    uint32_t trefi = 9360; //!< average refresh interval (7.8 us @ 1200 MHz)
    uint32_t trfc = 420;   //!< refresh cycle time (350 ns, 8Gb device)
    /**
     * Width of the on-die ECC syndrome XOR tree: codeword bits folded
     * per command-clock cycle. Sets how decode latency scales with
     * codeword size (Ramulator2-ECC's decode-latency model).
     */
    uint32_t ecc_xor_bits_per_cycle = 512;

    /** DDR4-2400 preset used by every experiment (paper Table 3). */
    static Timing ddr4_2400();

    /** Read latency in cycles from RD issue to last data beat. */
    uint32_t readLatency() const { return cl + tbl; }
    /** Write occupancy from WR issue to end of data. */
    uint32_t writeLatency() const { return cwl + tbl; }

    /**
     * Decode latency of one codeword of `scheme` on the command clock:
     * the syndrome folds ecc_xor_bits_per_cycle codeword bits per cycle,
     * plus one correction/compare cycle. Zero for no ECC. Word72 costs 2
     * cycles; a 4KB block costs 66 — larger codewords trade latency (and
     * failure granularity) for redundancy bandwidth.
     */
    uint32_t eccDecodeCycles(fault::EccScheme scheme) const;
};

} // namespace enmc::dram

#endif // ENMC_DRAM_TIMING_H
