/**
 * @file
 * Per-channel memory controller: request queue, FR-FCFS scheduling,
 * open-row policy, and all-bank refresh management.
 */

#ifndef ENMC_DRAM_CONTROLLER_H
#define ENMC_DRAM_CONTROLLER_H

#include <cstdint>
#include <list>
#include <queue>
#include <vector>

#include "common/stats.h"
#include "dram/channel.h"
#include "dram/request.h"
#include "fault/ecc.h"
#include "obs/registry.h"

namespace enmc::fault {
class FaultInjector;
} // namespace enmc::fault

namespace enmc::dram {

/** Controller tuning knobs. */
struct ControllerConfig
{
    size_t queue_depth = 64;      //!< Table 3: 64-entry queue
    bool refresh_enabled = true;
    /**
     * Close a row after this many cycles without a hit (0 = keep open
     * until conflict, i.e. pure open-page).
     */
    Cycles row_idle_timeout = 0;
};

/** One DDR channel's scheduler. Tick once per command-clock cycle. */
class Controller
{
  public:
    Controller(const Organization &org, const Timing &timing,
               const ControllerConfig &cfg, std::string name = "dram.ctrl");

    /**
     * Enqueue a request (address must decode to this channel's coordinate
     * space; the channel field of the decoded address is ignored).
     * @return false if the queue is full.
     */
    bool enqueue(Request req);

    /** Advance one command-clock cycle. */
    void tick();

    /** Current cycle. */
    Cycles now() const { return now_; }

    /** True when no requests are queued or in flight. */
    bool idle() const { return queue_.empty() && inflight_.empty(); }

    size_t queueOccupancy() const { return queue_.size(); }
    size_t queueDepth() const { return cfg_.queue_depth; }

    const Channel &channel() const { return channel_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Attach a fault injector: every completed read burst is classified
     * through the ECC scheme of its request's protection class and
     * tallied into this controller's stat group (eccCorrected /
     * eccDetected / eccEscaped / stuckReads plus the per-class eccWeak* /
     * eccStrong* splits). With the injector's `ecc_overhead` knob set,
     * protected reads additionally charge redundancy-read bursts for the
     * check bits and per-codeword decode latency on the DDR clock.
     * Pass nullptr to detach. Default: no injector, zero overhead.
     *
     * Attaching restarts the burst-classification sequence: a
     * detached-then-reattached injector replays the same
     * (seed, stream, index) outcomes a fresh controller would — the
     * determinism contract a stale sequence number used to break.
     */
    void attachFaultInjector(fault::FaultInjector *injector)
    {
        fault_injector_ = injector;
        fault_burst_seq_ = 0;
        for (int c = 0; c < fault::kNumProtectionClasses; ++c) {
            ecc_check_debt_bytes_[c] = 0.0;
            ecc_decode_acc_bytes_[c] = 0;
        }
    }
    const fault::FaultInjector *faultInjector() const
    {
        return fault_injector_;
    }

    /** Extra read bursts issued for ECC check bits (overhead model). */
    uint64_t eccRedundancyReads() const;
    /** Syndrome-decode cycles charged on the DDR clock (overhead model). */
    uint64_t eccDecodeCyclesCharged() const;

    /** Total bytes moved (reads + writes), data only (no redundancy). */
    uint64_t bytesTransferred() const;

    /** Achieved bandwidth in bytes/sec over the elapsed cycles. */
    double achievedBandwidth() const;

  private:
    struct Entry
    {
        Request req;
        AddrVec vec;
        uint64_t seq;    //!< arrival order for FCFS tie-break
    };

    struct Completion
    {
        Cycles at;
        Request req;
        bool operator>(const Completion &o) const { return at > o.at; }
    };

    /** @return true if a refresh-related command used this cycle's slot. */
    bool serviceRefresh();
    bool trySchedule();
    void finishRequest(Entry &entry, Cycles data_end);

    Organization org_;
    ControllerConfig cfg_;
    Channel channel_;
    std::list<Entry> queue_;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> inflight_;
    std::vector<Cycles> next_refresh_;    //!< per rank
    std::vector<bool> refresh_pending_;   //!< per rank
    Cycles now_ = 0;
    uint64_t seq_ = 0;

    /** Per-class tally target for a classified burst. */
    void tallyClass(fault::Protection cls, uint64_t corrected,
                    uint64_t detected, uint64_t escaped);
    /** @return extra cycles charged for ECC overhead on this burst. */
    Cycles chargeEccOverhead(fault::Protection cls, fault::EccScheme scheme);

    fault::FaultInjector *fault_injector_ = nullptr;
    uint64_t fault_burst_seq_ = 0;  //!< unique index per classified burst
    /** Check-bit bytes owed per class; a full burst's worth buys one
     *  redundancy read. */
    double ecc_check_debt_bytes_[fault::kNumProtectionClasses] = {};
    /** Data bytes accumulated toward the next codeword boundary, for
     *  block schemes whose codeword spans multiple bursts. */
    uint64_t ecc_decode_acc_bytes_[fault::kNumProtectionClasses] = {};

    StatGroup stats_;
    Counter &reads_;
    Counter &writes_;
    Counter &row_hits_;
    Counter &row_misses_;
    Counter &row_conflicts_;
    Counter &refreshes_;
    Counter &ecc_corrected_;
    Counter &ecc_detected_;
    Counter &ecc_escaped_;
    Counter &ecc_weak_corrected_;
    Counter &ecc_weak_detected_;
    Counter &ecc_weak_escaped_;
    Counter &ecc_strong_corrected_;
    Counter &ecc_strong_detected_;
    Counter &ecc_strong_escaped_;
    Counter &ecc_protected_reads_;
    Counter &ecc_redundancy_reads_;
    Counter &ecc_decode_cycles_;
    Counter &stuck_reads_;
    ScalarStat &read_latency_;
    ScalarStat &queue_occupancy_;
    Histogram &read_latency_hist_;
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::dram

#endif // ENMC_DRAM_CONTROLLER_H
