#include "dram/config.h"

#include "common/logging.h"

namespace enmc::dram {

Organization
Organization::paperTable3()
{
    return Organization{}; // defaults are the Table 3 organization
}

Organization
Organization::singleRankView() const
{
    Organization o = *this;
    o.channels = 1;
    o.ranks = 1;
    // On-DIMM controllers interleave consecutive lines across bank groups
    // so weight streams dodge the DDR4 tCCD_L penalty.
    o.mapping = AddrMapping::RoRaCoBaBgCh;
    return o;
}

namespace {

/** Pop `bits` low bits off addr and return them. */
uint32_t
sliceBits(Addr &addr, unsigned bits)
{
    const uint32_t v = static_cast<uint32_t>(addr & ((1ull << bits) - 1));
    addr >>= bits;
    return v;
}

} // namespace

AddrVec
mapAddress(Addr addr, const Organization &org)
{
    ENMC_ASSERT(isPowerOf2(org.channels) && isPowerOf2(org.ranks) &&
                isPowerOf2(org.bankgroups) && isPowerOf2(org.banks) &&
                isPowerOf2(org.rows) && isPowerOf2(org.columns),
                "organization fields must be powers of two");

    // Lowest bits address bytes within one burst; they carry no DRAM
    // coordinate information.
    addr >>= log2i(org.accessBytes());

    const unsigned ch_bits = log2i(org.channels);
    const unsigned ra_bits = log2i(org.ranks);
    const unsigned bg_bits = log2i(org.bankgroups);
    const unsigned ba_bits = log2i(org.banks);
    const unsigned ro_bits = log2i(org.rows);
    const unsigned co_bits = log2i(org.columns / org.burst_length);

    AddrVec v;
    switch (org.mapping) {
      case AddrMapping::RoRaBgBaCoCh:
        v.channel = sliceBits(addr, ch_bits);
        v.column = sliceBits(addr, co_bits) * org.burst_length;
        v.bank = sliceBits(addr, ba_bits);
        v.bankgroup = sliceBits(addr, bg_bits);
        v.rank = sliceBits(addr, ra_bits);
        v.row = sliceBits(addr, ro_bits);
        break;
      case AddrMapping::RoCoRaBgBaCh:
        v.channel = sliceBits(addr, ch_bits);
        v.bank = sliceBits(addr, ba_bits);
        v.bankgroup = sliceBits(addr, bg_bits);
        v.rank = sliceBits(addr, ra_bits);
        v.column = sliceBits(addr, co_bits) * org.burst_length;
        v.row = sliceBits(addr, ro_bits);
        break;
      case AddrMapping::RoRaCoBaBgCh:
        v.channel = sliceBits(addr, ch_bits);
        v.bankgroup = sliceBits(addr, bg_bits);
        v.bank = sliceBits(addr, ba_bits);
        v.column = sliceBits(addr, co_bits) * org.burst_length;
        v.rank = sliceBits(addr, ra_bits);
        v.row = sliceBits(addr, ro_bits);
        break;
    }
    return v;
}

Addr
unmapAddress(const AddrVec &vec, const Organization &org)
{
    const unsigned ch_bits = log2i(org.channels);
    const unsigned ra_bits = log2i(org.ranks);
    const unsigned bg_bits = log2i(org.bankgroups);
    const unsigned ba_bits = log2i(org.banks);
    const unsigned ro_bits = log2i(org.rows);
    const unsigned co_bits = log2i(org.columns / org.burst_length);

    Addr addr = 0;
    unsigned shift = 0;
    auto place = [&addr, &shift](uint64_t value, unsigned bits) {
        addr |= (value & ((1ull << bits) - 1)) << shift;
        shift += bits;
    };

    switch (org.mapping) {
      case AddrMapping::RoRaBgBaCoCh:
        place(vec.channel, ch_bits);
        place(vec.column / org.burst_length, co_bits);
        place(vec.bank, ba_bits);
        place(vec.bankgroup, bg_bits);
        place(vec.rank, ra_bits);
        place(vec.row, ro_bits);
        break;
      case AddrMapping::RoCoRaBgBaCh:
        place(vec.channel, ch_bits);
        place(vec.bank, ba_bits);
        place(vec.bankgroup, bg_bits);
        place(vec.rank, ra_bits);
        place(vec.column / org.burst_length, co_bits);
        place(vec.row, ro_bits);
        break;
      case AddrMapping::RoRaCoBaBgCh:
        place(vec.channel, ch_bits);
        place(vec.bankgroup, bg_bits);
        place(vec.bank, ba_bits);
        place(vec.column / org.burst_length, co_bits);
        place(vec.rank, ra_bits);
        place(vec.row, ro_bits);
        break;
    }
    return addr << log2i(org.accessBytes());
}

} // namespace enmc::dram
