/**
 * @file
 * Memory request/response types exchanged with the DRAM controller.
 */

#ifndef ENMC_DRAM_REQUEST_H
#define ENMC_DRAM_REQUEST_H

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "fault/ecc.h"

namespace enmc::dram {

/** Request kind. */
enum class ReqType { Read, Write };

/** One cacheline-granular memory request. */
struct Request
{
    Addr addr = 0;
    ReqType type = ReqType::Read;
    uint64_t id = 0;           //!< caller-assigned tag
    Cycles arrive = 0;         //!< set by the controller at enqueue
    Cycles complete = 0;       //!< set by the controller at completion
    /**
     * Protection class the requester asks for; the controller maps it to
     * an ECC codeword scheme via the attached injector's FaultConfig.
     * Irrelevant (and free) when no fault injector is attached.
     */
    fault::Protection prot = fault::Protection::Strong;

    /** Invoked (if set) when the request's data transfer completes. */
    std::function<void(const Request &)> on_complete;
};

} // namespace enmc::dram

#endif // ENMC_DRAM_REQUEST_H
