#include "dram/stream.h"

#include "common/logging.h"
#include "common/units.h"

namespace enmc::dram {

void
StreamTransfer::start(Addr base, uint64_t bytes, ReqType type,
                      uint64_t line_bytes, fault::Protection prot)
{
    ENMC_ASSERT(!started_ || done(), "restarting an in-flight transfer");
    ENMC_ASSERT(line_bytes > 0, "line size must be positive");
    base_ = base;
    type_ = type;
    prot_ = prot;
    issued_ = 0;
    completed_ = 0;
    started_ = true;
    line_bytes_ = line_bytes;
    pending_bytes_ = bytes;
    total_lines_ = ceilDiv(bytes, line_bytes);
}

void
StreamTransfer::pump(Controller &ctrl)
{
    if (!started_)
        return;
    while (issued_ < total_lines_) {
        Request req;
        req.addr = base_ + issued_ * line_bytes_;
        req.type = type_;
        req.prot = prot_;
        req.id = issued_;
        req.on_complete = [this](const Request &) { ++completed_; };
        if (!ctrl.enqueue(std::move(req)))
            break;
        ++issued_;
    }
}

} // namespace enmc::dram
