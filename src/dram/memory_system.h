/**
 * @file
 * Multi-channel memory system: routes requests to per-channel controllers
 * and advances them in lockstep.
 */

#ifndef ENMC_DRAM_MEMORY_SYSTEM_H
#define ENMC_DRAM_MEMORY_SYSTEM_H

#include <memory>
#include <ostream>
#include <vector>

#include "dram/controller.h"

namespace enmc::dram {

/** A complete DRAM subsystem (all channels of Table 3 by default). */
class MemorySystem
{
  public:
    MemorySystem(const Organization &org, const Timing &timing,
                 const ControllerConfig &cfg,
                 const std::string &name = "mem");

    /** Route a request to its channel. @return false if that queue is full. */
    bool enqueue(Request req);

    /** Advance every channel by one command-clock cycle. */
    void tick();

    /** Tick until all queues drain (bounded by `max_cycles`). */
    Cycles drain(Cycles max_cycles = ~Cycles{0});

    bool idle() const;
    Cycles now() const { return cycles_; }

    const Organization &org() const { return org_; }
    const Timing &timing() const { return timing_; }

    size_t numChannels() const { return controllers_.size(); }
    Controller &controller(size_t ch) { return *controllers_[ch]; }
    const Controller &controller(size_t ch) const { return *controllers_[ch]; }

    /**
     * Attach a fault injector to every channel controller (reads are
     * classified through the SECDED model into each controller's stats).
     */
    void attachFaultInjector(fault::FaultInjector *injector);

    /** Aggregate bytes moved across channels. */
    uint64_t bytesTransferred() const;

    /** Aggregate achieved bandwidth (bytes/sec) over elapsed time. */
    double achievedBandwidth() const;

    /** Dump every controller's stat group. */
    void dumpStats(std::ostream &os) const;

  private:
    Organization org_;
    Timing timing_;
    std::vector<std::unique_ptr<Controller>> controllers_;
    Cycles cycles_ = 0;
};

} // namespace enmc::dram

#endif // ENMC_DRAM_MEMORY_SYSTEM_H
