/**
 * @file
 * Streaming DMA helper: fetches/stores a contiguous byte range through a
 * Controller, respecting queue space, and reports completion. This is the
 * access pattern of every on-DIMM engine in the project (tile loads of
 * screener weights, candidate row fetches, result write-backs).
 */

#ifndef ENMC_DRAM_STREAM_H
#define ENMC_DRAM_STREAM_H

#include <cstdint>

#include "dram/controller.h"

namespace enmc::dram {

/** One in-flight contiguous transfer, split into line-sized requests. */
class StreamTransfer
{
  public:
    StreamTransfer() = default;

    /**
     * Begin a transfer of `bytes` starting at `base`, split into
     * `line_bytes`-sized requests (one DRAM burst each), each tagged
     * with protection class `prot` for the controller's ECC model.
     */
    void start(Addr base, uint64_t bytes, ReqType type,
               uint64_t line_bytes = 64,
               fault::Protection prot = fault::Protection::Strong);

    /** Issue as many pending line requests as the queue accepts. */
    void pump(Controller &ctrl);

    /** All lines issued and all completions observed? */
    bool done() const { return started_ && completed_ == total_lines_; }

    bool started() const { return started_; }
    uint64_t linesTotal() const { return total_lines_; }
    uint64_t linesCompleted() const { return completed_; }

  private:
    Addr base_ = 0;
    uint64_t pending_bytes_ = 0;
    uint64_t line_bytes_ = 64;
    uint64_t total_lines_ = 0;
    uint64_t issued_ = 0;
    uint64_t completed_ = 0;
    ReqType type_ = ReqType::Read;
    fault::Protection prot_ = fault::Protection::Strong;
    bool started_ = false;
};

} // namespace enmc::dram

#endif // ENMC_DRAM_STREAM_H
