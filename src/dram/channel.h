/**
 * @file
 * DRAM device-state and timing model for one channel.
 *
 * Tracks per-bank open rows and enforces every JEDEC timing constraint in
 * the Timing struct via "earliest allowed issue cycle" tables at bank,
 * rank, and channel scope — the same mechanism Ramulator uses.
 */

#ifndef ENMC_DRAM_CHANNEL_H
#define ENMC_DRAM_CHANNEL_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "dram/config.h"
#include "dram/timing.h"

namespace enmc::dram {

/** DRAM commands modeled by the simulator. */
enum class Cmd { Act, Pre, Rd, Wr, Ref };

const char *cmdName(Cmd cmd);

/** Timing/state model for one channel's DRAM devices. */
class Channel
{
  public:
    Channel(const Organization &org, const Timing &timing);

    /** True iff `cmd` targeting the given coordinates may issue at `now`. */
    bool canIssue(Cmd cmd, const AddrVec &vec, Cycles now) const;

    /** Issue `cmd`; updates open-row state and all timing tables. */
    void issue(Cmd cmd, const AddrVec &vec, Cycles now);

    /** Is the addressed bank active with exactly this row open? */
    bool rowOpen(const AddrVec &vec) const;

    /** Is the addressed bank active (any row)? */
    bool bankActive(const AddrVec &vec) const;

    /** Are all banks of a rank precharged (required before REF)? */
    bool rankAllPrecharged(uint32_t rank) const;

    const Organization &org() const { return org_; }
    const Timing &timing() const { return timing_; }

    /** Command issue counters (ACT/PRE/RD/WR/REF), for energy accounting. */
    uint64_t commandCount(Cmd cmd) const;

  private:
    struct BankState
    {
        bool active = false;
        uint32_t open_row = 0;
        Cycles next_act = 0;
        Cycles next_pre = 0;
        Cycles next_rdwr = 0;
    };

    struct RankState
    {
        Cycles next_act = 0;  //!< tRRD_S / post-REF gate (any bank group)
        Cycles next_rd = 0;   //!< tCCD_S / tWTR gate (any bank group)
        Cycles next_wr = 0;   //!< tCCD_S / read->write turnaround gate
        Cycles next_ref = 0;
        std::deque<Cycles> act_window; //!< last ACT cycles for tFAW
        // Per-bank-group long constraints (tCCD_L / tRRD_L).
        std::vector<Cycles> next_act_bg;
        std::vector<Cycles> next_rd_bg;
        std::vector<Cycles> next_wr_bg;
    };

    size_t bankIndex(const AddrVec &vec) const;

    Organization org_;
    Timing timing_;
    std::vector<BankState> banks_;   //!< [rank * banksPerRank + bank]
    std::vector<RankState> ranks_;
    Cycles bus_free_ = 0;            //!< end of last data burst on the bus
    int last_bus_rank_ = -1;
    uint64_t cmd_counts_[5] = {0, 0, 0, 0, 0};
};

} // namespace enmc::dram

#endif // ENMC_DRAM_CHANNEL_H
