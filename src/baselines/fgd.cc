#include "baselines/fgd.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/ops.h"

namespace enmc::baselines {

namespace {

/** (score, node) pairs for the search heaps. */
struct Scored
{
    float score;
    uint32_t node;
};

struct ScoreLess
{
    bool operator()(const Scored &a, const Scored &b) const
    {
        return a.score < b.score;
    }
};

struct ScoreGreater
{
    bool operator()(const Scored &a, const Scored &b) const
    {
        return a.score > b.score;
    }
};

} // namespace

Fgd::Fgd(const nn::Classifier &classifier, const FgdConfig &cfg)
    : classifier_(classifier), cfg_(cfg)
{
    const size_t l = classifier.categories();
    ENMC_ASSERT(l >= 2, "FGD needs at least two categories");
    ENMC_ASSERT(cfg.degree >= 2, "FGD degree too small");
    neighbors_.assign(l * cfg_.degree, UINT32_MAX);

    // Row norms for cosine similarity during construction.
    std::vector<float> norms(l);
    for (size_t r = 0; r < l; ++r)
        norms[r] = static_cast<float>(
            std::max(tensor::norm2(classifier.weights().row(r)), 1e-12));

    auto cosine = [&](uint32_t a, uint32_t b) {
        return tensor::dot(classifier_.weights().row(a),
                           classifier_.weights().row(b)) /
               (norms[a] * norms[b]);
    };

    // Incremental NSW construction: greedy-search the partial graph for
    // each new node's nearest neighbors, then connect bidirectionally with
    // degree-bounded pruning.
    Rng rng(cfg.seed);
    auto neighborSpan = [&](uint32_t n) {
        return std::span<uint32_t>(neighbors_.data() + n * cfg_.degree,
                                   cfg_.degree);
    };
    auto connect = [&](uint32_t from, uint32_t to) {
        auto nb = neighborSpan(from);
        // Fill an empty slot, or replace the least-similar neighbor.
        uint32_t worst = 0;
        float worst_sim = std::numeric_limits<float>::infinity();
        for (uint32_t s = 0; s < cfg_.degree; ++s) {
            if (nb[s] == UINT32_MAX) {
                nb[s] = to;
                return;
            }
            if (nb[s] == to)
                return;
            const float sim = cosine(from, nb[s]);
            if (sim < worst_sim) {
                worst_sim = sim;
                worst = s;
            }
        }
        if (cosine(from, to) > worst_sim)
            nb[worst] = to;
    };

    for (uint32_t node = 1; node < l; ++node) {
        // Greedy search among already-inserted nodes [0, node).
        std::unordered_set<uint32_t> visited;
        std::priority_queue<Scored, std::vector<Scored>, ScoreLess> frontier;
        std::priority_queue<Scored, std::vector<Scored>, ScoreGreater> best;
        auto consider = [&](uint32_t cand) {
            if (!visited.insert(cand).second)
                return;
            const float sim = cosine(node, cand);
            if (best.size() < cfg_.build_ef || sim > best.top().score) {
                frontier.push({sim, cand});
                best.push({sim, cand});
                if (best.size() > cfg_.build_ef)
                    best.pop();
            }
        };
        consider(entry_);
        // A random restart improves connectivity of early clusters.
        consider(static_cast<uint32_t>(rng.uniformInt(0, node - 1)));
        while (!frontier.empty()) {
            const Scored cur = frontier.top();
            frontier.pop();
            if (best.size() == cfg_.build_ef && cur.score < best.top().score)
                break;
            for (uint32_t nb : neighborSpan(cur.node)) {
                if (nb != UINT32_MAX && nb < node)
                    consider(nb);
            }
        }
        std::vector<Scored> found;
        while (!best.empty()) {
            found.push_back(best.top());
            best.pop();
        }
        std::sort(found.begin(), found.end(),
                  [](const Scored &a, const Scored &b) {
                      return a.score > b.score;
                  });
        const size_t links = std::min<size_t>(cfg_.degree, found.size());
        for (size_t i = 0; i < links; ++i) {
            connect(node, found[i].node);
            connect(found[i].node, node);
        }
    }
}

float
Fgd::score(uint32_t r, std::span<const float> h) const
{
    return classifier_.logit(r, h);
}

std::vector<uint32_t>
Fgd::search(std::span<const float> h, size_t top_n, uint64_t *visited_out)
    const
{
    std::unordered_set<uint32_t> visited;
    std::priority_queue<Scored, std::vector<Scored>, ScoreLess> frontier;
    std::priority_queue<Scored, std::vector<Scored>, ScoreGreater> best;
    const size_t ef = std::max(cfg_.ef_search, top_n);

    auto consider = [&](uint32_t cand) {
        if (!visited.insert(cand).second)
            return;
        const float s = score(cand, h);
        if (best.size() < ef || s > best.top().score) {
            frontier.push({s, cand});
            best.push({s, cand});
            if (best.size() > ef)
                best.pop();
        }
    };
    consider(entry_);
    while (!frontier.empty()) {
        const Scored cur = frontier.top();
        frontier.pop();
        if (best.size() == ef && cur.score < best.top().score)
            break;
        const uint32_t *nb = neighbors_.data() +
                             static_cast<size_t>(cur.node) * cfg_.degree;
        for (uint32_t s = 0; s < cfg_.degree; ++s)
            if (nb[s] != UINT32_MAX)
                consider(nb[s]);
    }

    std::vector<Scored> found;
    while (!best.empty()) {
        found.push_back(best.top());
        best.pop();
    }
    std::sort(found.begin(), found.end(),
              [](const Scored &a, const Scored &b) {
                  return a.score > b.score;
              });
    if (found.size() > top_n)
        found.resize(top_n);
    std::vector<uint32_t> out;
    out.reserve(found.size());
    for (const auto &f : found)
        out.push_back(f.node);

    total_visited_ += visited.size();
    ++queries_;
    if (visited_out)
        *visited_out = visited.size();
    return out;
}

screening::PipelineResult
Fgd::infer(std::span<const float> h) const
{
    const size_t l = classifier_.categories();
    screening::PipelineResult res;
    // Tail categories keep the bias prior (FGD computes nothing for them).
    res.logits.assign(classifier_.bias().begin(), classifier_.bias().end());
    uint64_t visited = 0;
    res.candidates = search(h, cfg_.top_n, &visited);
    for (uint32_t c : res.candidates)
        res.logits[c] = classifier_.logit(c, h);
    res.probabilities =
        classifier_.normalization() == nn::Normalization::Softmax
            ? tensor::softmax(res.logits)
            : tensor::sigmoid(res.logits);
    const size_t d = classifier_.hidden();
    res.cost.flops = 2ull * visited * d;
    // Graph search touches weight rows + adjacency lists of visited nodes.
    res.cost.bytes_read =
        visited * (d * sizeof(float) + cfg_.degree * sizeof(uint32_t));
    (void)l;
    return res;
}

double
Fgd::avgVisited() const
{
    return queries_ ? static_cast<double>(total_visited_) / queries_ : 0.0;
}

} // namespace enmc::baselines
