/**
 * @file
 * SVD-softmax baseline (Shim et al., NeurIPS 2017 — paper reference [37]).
 *
 * Offline, the classifier weight W is decomposed as W = U Σ Vᵀ and the
 * preview matrix B = U Σ is stored with columns ordered by singular value.
 * Online, the hidden vector is rotated once (h~ = Vᵀ h), a *preview* logit
 * is computed for every category from only the first `window` columns of B
 * (the most significant singular directions), the top-N categories by
 * preview are refined with full-width dot products, and the outputs are
 * mixed exactly like approximate screening.
 *
 * The key contrast with AS (paper Section 7.1): the preview runs in FP32
 * over `window` columns, so at the same preview dimension its compute and
 * traffic are ~4x AS's INT4 screening, and quality depends on W actually
 * being low-rank.
 */

#ifndef ENMC_BASELINES_SVD_SOFTMAX_H
#define ENMC_BASELINES_SVD_SOFTMAX_H

#include <cstdint>

#include "nn/classifier.h"
#include "screening/pipeline.h"
#include "tensor/svd.h"

namespace enmc::baselines {

/** SVD-softmax hyperparameters. */
struct SvdSoftmaxConfig
{
    /** Preview window: number of leading singular directions used. */
    size_t window = 0;      //!< 0 -> d / 4
    /** Number of rows refined with full-precision dot products. */
    size_t top_n = 16;
};

/** SVD-softmax approximate classifier. */
class SvdSoftmax
{
  public:
    /** Decomposes the classifier's weights (offline phase). */
    SvdSoftmax(const nn::Classifier &classifier,
               const SvdSoftmaxConfig &cfg);

    /** Approximate inference with mixed preview/refined logits. */
    screening::PipelineResult infer(std::span<const float> h) const;

    size_t window() const { return window_; }
    size_t topN() const { return cfg_.top_n; }

    /** Cost of one inference (rotation + preview + refinement). */
    screening::Cost inferenceCost() const;

  private:
    const nn::Classifier &classifier_;
    SvdSoftmaxConfig cfg_;
    size_t window_;
    tensor::Matrix b_;     //!< U Σ (l x d), columns by descending sigma
    tensor::Matrix bwin_;  //!< first `window` columns of B, contiguous rows
    tensor::Matrix vt_;    //!< Vᵀ (d x d)
};

} // namespace enmc::baselines

#endif // ENMC_BASELINES_SVD_SOFTMAX_H
