#include "baselines/svd_softmax.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::baselines {

SvdSoftmax::SvdSoftmax(const nn::Classifier &classifier,
                       const SvdSoftmaxConfig &cfg)
    : classifier_(classifier), cfg_(cfg)
{
    const size_t d = classifier.hidden();
    window_ = cfg.window ? cfg.window : d / 4;
    ENMC_ASSERT(window_ >= 1 && window_ <= d, "bad SVD-softmax window");
    const tensor::SvdResult svd = tensor::thinSvd(classifier.weights());
    b_ = svd.uSigma();
    vt_ = tensor::transpose(svd.v);
    // Contiguous copy of the preview window so the online preview is one
    // dense GEMV instead of l strided prefix dots.
    bwin_ = tensor::Matrix(b_.rows(), window_);
    for (size_t r = 0; r < b_.rows(); ++r)
        std::copy_n(b_.row(r).data(), window_, bwin_.row(r).data());
}

screening::PipelineResult
SvdSoftmax::infer(std::span<const float> h) const
{
    const size_t l = classifier_.categories();
    const size_t d = classifier_.hidden();
    const tensor::Vector &bias = classifier_.bias();

    // One rotation: h~ = Vᵀ h.
    const tensor::Vector ht = tensor::gemv(vt_, h);

    // Preview over the leading `window` singular directions: one GEMV on
    // the contiguous window matrix (same per-row values as prefix dots).
    screening::PipelineResult res;
    res.logits.resize(l);
    std::span<const float> ht_win(ht.data(), window_);
    tensor::kernels::gemvInto(bwin_, ht_win, bias, res.logits);

    // Refine the top-N previews with the remaining columns.
    res.candidates = tensor::topkIndices(res.logits, cfg_.top_n);
    for (uint32_t c : res.candidates) {
        std::span<const float> rest(b_.row(c).data() + window_,
                                    d - window_);
        std::span<const float> ht_rest(ht.data() + window_, d - window_);
        res.logits[c] += tensor::dot(rest, ht_rest);
    }

    res.probabilities =
        classifier_.normalization() == nn::Normalization::Softmax
            ? tensor::softmax(res.logits)
            : tensor::sigmoid(res.logits);
    res.cost = inferenceCost();
    return res;
}

screening::Cost
SvdSoftmax::inferenceCost() const
{
    const size_t l = classifier_.categories();
    const size_t d = classifier_.hidden();
    screening::Cost c;
    // Rotation (2 d^2) + preview (2 l w) + refinement (2 N (d - w)).
    c.flops = 2ull * d * d + 2ull * l * window_ +
              2ull * cfg_.top_n * (d - window_);
    // FP32 traffic: Vᵀ once, preview columns of B, refined row remainders.
    c.bytes_read = (d * d + l * window_ + cfg_.top_n * (d - window_)) *
                   sizeof(float);
    return c;
}

} // namespace enmc::baselines
