/**
 * @file
 * FGD baseline (Zhang et al., NeurIPS 2018 — paper reference [48]):
 * fast softmax decoding via graph-based nearest-neighbor search.
 *
 * The classifier rows are organized into a navigable small-world graph
 * under the maximum-inner-product metric (rows augmented to unit norm via
 * the standard MIPS->cosine reduction). At inference, a greedy best-first
 * search with beam `ef` visits a small fraction of rows, computing exact
 * inner products only for visited nodes, and returns the top-N. Unvisited
 * categories get no refined logit — FGD, unlike AS, produces no cheap
 * approximation for the tail, so their logits fall back to the bias prior.
 */

#ifndef ENMC_BASELINES_FGD_H
#define ENMC_BASELINES_FGD_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/classifier.h"
#include "screening/pipeline.h"

namespace enmc::baselines {

/** Small-world-graph hyperparameters. */
struct FgdConfig
{
    size_t degree = 16;      //!< out-degree M of each node
    size_t ef_search = 64;   //!< search beam width
    size_t top_n = 16;       //!< refined candidates returned
    size_t build_ef = 32;    //!< beam width during construction
    uint64_t seed = 7;
};

/** Graph-based approximate top-N classifier. */
class Fgd
{
  public:
    /** Builds the search graph over the classifier rows (offline). */
    Fgd(const nn::Classifier &classifier, const FgdConfig &cfg);

    /** Approximate inference; tail categories keep the bias prior. */
    screening::PipelineResult infer(std::span<const float> h) const;

    /** Search for the top-N rows by inner product with h. */
    std::vector<uint32_t> search(std::span<const float> h,
                                 size_t top_n, uint64_t *visited) const;

    size_t degree() const { return cfg_.degree; }

    /** Average nodes visited per query (filled after queries ran). */
    double avgVisited() const;

  private:
    /** Inner product of classifier row r with the query. */
    float score(uint32_t r, std::span<const float> h) const;

    const nn::Classifier &classifier_;
    FgdConfig cfg_;
    std::vector<uint32_t> neighbors_;   //!< flat adjacency, degree per node
    uint32_t entry_ = 0;
    mutable uint64_t total_visited_ = 0;
    mutable uint64_t queries_ = 0;
};

} // namespace enmc::baselines

#endif // ENMC_BASELINES_FGD_H
