/**
 * @file
 * Roofline model of the CPU baseline (paper Section 6.2: Intel Xeon
 * Platinum 8280, 28 cores @ 2.7 GHz, 6x DDR4-2666 channels, 128 GB/s).
 *
 * Extreme classification on the CPU is bandwidth-bound (Fig. 5), so
 * execution time is max(bytes / achievable_bw, flops / peak_flops), with
 * an achievable-bandwidth derate for streaming GEMV.
 */

#ifndef ENMC_NMP_CPU_H
#define ENMC_NMP_CPU_H

#include <cstdint>

#include "screening/pipeline.h"

namespace enmc::nmp {

/** Xeon 8280-class host parameters. */
struct CpuConfig
{
    double freq_hz = 2.7e9;
    uint64_t cores = 28;
    /** FP32 FLOPs per core per cycle (2x AVX-512 FMA units). */
    uint64_t flops_per_cycle = 64;
    /** 6 channels x DDR4-2666 ~ 128 GB/s peak. */
    double peak_bandwidth = 128e9;
    /** Achievable fraction of peak bandwidth on streaming GEMV. */
    double bandwidth_efficiency = 0.75;

    double peakFlops() const
    {
        return freq_hz * cores * flops_per_cycle;
    }
    double achievableBandwidth() const
    {
        return peak_bandwidth * bandwidth_efficiency;
    }
};

/** Time in seconds to execute a cost record on the CPU. */
double cpuTime(const CpuConfig &cfg, const screening::Cost &cost);

/** Time for full classification of (l, d) with the given batch. */
double cpuFullClassificationTime(const CpuConfig &cfg, uint64_t categories,
                                 uint64_t hidden, uint64_t batch);

/**
 * Time for the approximate-screening pipeline on the CPU: screening
 * (quantized weights still stream from DRAM) + candidate GEMV. Weight
 * traffic is shared across the batch; compute scales with it.
 */
double cpuScreeningTime(const CpuConfig &cfg, uint64_t categories,
                        uint64_t hidden, uint64_t reduced,
                        uint64_t candidates, uint64_t batch,
                        tensor::QuantBits quant);

} // namespace enmc::nmp

#endif // ENMC_NMP_CPU_H
