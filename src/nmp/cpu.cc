#include "nmp/cpu.h"

#include <algorithm>

#include "common/units.h"

namespace enmc::nmp {

double
cpuTime(const CpuConfig &cfg, const screening::Cost &cost)
{
    const double bw_time = cost.bytes_read / cfg.achievableBandwidth();
    const double fl_time = cost.flops / cfg.peakFlops();
    return std::max(bw_time, fl_time);
}

double
cpuFullClassificationTime(const CpuConfig &cfg, uint64_t categories,
                          uint64_t hidden, uint64_t batch)
{
    screening::Cost c;
    c.bytes_read = categories * hidden * sizeof(float); // weights stream once
    c.flops = 2ull * categories * hidden * batch + 5ull * categories * batch;
    return cpuTime(cfg, c);
}

double
cpuScreeningTime(const CpuConfig &cfg, uint64_t categories, uint64_t hidden,
                 uint64_t reduced, uint64_t candidates, uint64_t batch,
                 tensor::QuantBits quant)
{
    const uint64_t bits =
        quant == tensor::QuantBits::Fp32
            ? 32
            : static_cast<uint64_t>(tensor::quantBitCount(quant));
    screening::Cost c;
    // Screening weights (packed) + candidate rows (FP32).
    c.bytes_read = ceilDiv(categories * reduced * bits, 8) +
                   candidates * batch * hidden * sizeof(float);
    // CPU executes quantized MACs at FP32 throughput after widening.
    c.flops = 2ull * categories * reduced * batch +
              2ull * candidates * batch * hidden +
              5ull * (categories + candidates) * batch;
    return cpuTime(cfg, c);
}

} // namespace enmc::nmp
