/**
 * @file
 * Generic rank-level NMP engine used to model the three baselines of
 * paper Table 4 (NDA, Chameleon, TensorDIMM) running the approximate
 * screening algorithm.
 *
 * The baselines share the non-intrusive rank-level placement of ENMC but
 * differ from it in exactly the ways Section 7.2 calls out:
 *  - homogeneous FP32 compute units (no INT4 path): screening streams
 *    FP32 screener weights and runs on the FP32 array;
 *  - no on-the-fly threshold filter: per-tile partial sums spill to DRAM
 *    and are read back for candidate selection ("the buffer overflow
 *    results in frequent DRAM memory accesses");
 *  - a single compute unit: the screening and candidate phases serialize
 *    instead of running on parallel Screener/Executor modules.
 *
 * Unit-specific GEMV efficiency distinguishes the three:
 *  - NDA's CGRA issues MACs through general FUs at ~50% utilization;
 *  - Chameleon's 4x4 systolic array needs 4 concurrent vectors to fill
 *    its columns, so GEMV utilization is min(batch,4)/4;
 *  - TensorDIMM's 16-lane VPU vectorizes along d at full utilization.
 */

#ifndef ENMC_NMP_ENGINE_H
#define ENMC_NMP_ENGINE_H

#include <memory>
#include <string>

#include "common/stats.h"
#include "common/units.h"
#include "dram/controller.h"
#include "dram/stream.h"
#include "enmc/task.h"
#include "obs/registry.h"

namespace enmc::nmp {

/** Which baseline architecture an engine instance models. */
enum class EngineKind { Nda, Chameleon, TensorDimm, TensorDimmLarge };

const char *engineKindName(EngineKind kind);

/** Table 4 configuration of one rank-level NMP core. */
struct EngineConfig
{
    EngineKind kind = EngineKind::TensorDimm;
    double freq_hz = 400e6;
    size_t fp32_macs = 16;        //!< peak MACs/cycle
    size_t buffer_bytes = 512;    //!< on-core working buffer (per queue)
    size_t queues = 3;            //!< TensorDIMM: 512B queue x 3
    /** Fraction of peak MACs achieved on GEMV at a given batch. */
    double gemvEfficiency(uint64_t batch) const;

    static EngineConfig nda();
    static EngineConfig chameleon();
    static EngineConfig tensorDimm();
    /** TensorDIMM-Large: 4x the compute and buffering (Fig. 14/15). */
    static EngineConfig tensorDimmLarge();
};

/** Cycle-level execution of one rank's slice on a baseline NMP core. */
class NmpEngine
{
  public:
    NmpEngine(const EngineConfig &cfg, const dram::Organization &org,
              const dram::Timing &timing);

    /**
     * Run the approximate-screening classification for one rank slice.
     * Timing-only (the baselines are never the numeric reference).
     */
    arch::RankResult run(const arch::RankTask &task,
                         Cycles max_cycles = 20'000'000'000ull);

    /**
     * Run *full* classification (no screening) — the configuration the
     * vanilla CPU baseline normalization of Fig. 13 also needs.
     */
    arch::RankResult runFull(const arch::RankTask &task,
                             Cycles max_cycles = 20'000'000'000ull);

    const dram::Controller &dramController() const { return *dram_; }

  private:
    /** Stream `bytes` while the MAC array needs `macs` operations. */
    void streamPhase(uint64_t bytes, uint64_t mac_cycles, Addr base,
                     dram::ReqType type, arch::RankResult &res,
                     Cycles max_cycles);

    Cycles macCycles(uint64_t macs, double efficiency) const;

    /** Tally a finished run into the engine's stat group. */
    void recordRun(const arch::RankResult &res);

    EngineConfig cfg_;
    dram::Organization org_;
    std::unique_ptr<dram::Controller> dram_;
    Cycles now_ = 0;

    StatGroup stats_;
    Counter &stat_runs_;
    Counter &stat_candidates_;
    Counter &stat_screen_bytes_;
    Counter &stat_exec_bytes_;
    Counter &stat_output_bytes_;
    ScalarStat &stat_cycles_;
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::nmp

#endif // ENMC_NMP_ENGINE_H
