#include "nmp/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace enmc::nmp {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Nda: return "NDA";
      case EngineKind::Chameleon: return "Chameleon";
      case EngineKind::TensorDimm: return "TensorDIMM";
      case EngineKind::TensorDimmLarge: return "TensorDIMM-Large";
    }
    return "?";
}

double
EngineConfig::gemvEfficiency(uint64_t batch) const
{
    switch (kind) {
      case EngineKind::Nda:
        // General FUs: address generation / routing shares issue slots.
        return 0.5;
      case EngineKind::Chameleon:
        // 4x4 systolic array: one vector per column; GEMV fills
        // min(batch, 4) of the 4 columns.
        return static_cast<double>(std::min<uint64_t>(batch, 4)) / 4.0;
      case EngineKind::TensorDimm:
      case EngineKind::TensorDimmLarge:
        // SIMD lanes vectorize along the hidden dimension.
        return 1.0;
    }
    return 1.0;
}

EngineConfig
EngineConfig::nda()
{
    EngineConfig c;
    c.kind = EngineKind::Nda;
    c.fp32_macs = 16;      // 4*4 functional units (Table 4)
    c.buffer_bytes = 1024; // 1KB memory
    c.queues = 1;
    return c;
}

EngineConfig
EngineConfig::chameleon()
{
    EngineConfig c;
    c.kind = EngineKind::Chameleon;
    c.fp32_macs = 16;      // 4*4 systolic array
    c.buffer_bytes = 1024;
    c.queues = 1;
    return c;
}

EngineConfig
EngineConfig::tensorDimm()
{
    EngineConfig c;
    c.kind = EngineKind::TensorDimm;
    c.fp32_macs = 16;      // 16-lane VPU
    c.buffer_bytes = 512;  // 512B queue x 3
    c.queues = 3;
    return c;
}

EngineConfig
EngineConfig::tensorDimmLarge()
{
    EngineConfig c = tensorDimm();
    c.kind = EngineKind::TensorDimmLarge;
    c.fp32_macs = 64;
    c.buffer_bytes = 2048;
    return c;
}

NmpEngine::NmpEngine(const EngineConfig &cfg, const dram::Organization &org,
                     const dram::Timing &timing)
    : cfg_(cfg), org_(org),
      stats_(std::string("nmp.") + engineKindName(cfg.kind)),
      stat_runs_(stats_.addCounter("runs", "slice programs executed")),
      stat_candidates_(stats_.addCounter("candidates",
                                         "rows passing the screen filter")),
      stat_screen_bytes_(stats_.addCounter("screenBytes",
                                           "bytes streamed while screening")),
      stat_exec_bytes_(stats_.addCounter(
          "execBytes", "bytes streamed during exact classification")),
      stat_output_bytes_(stats_.addCounter("outputBytes",
                                           "bytes returned to the host")),
      stat_cycles_(stats_.addScalar("cycles", "DDR cycles per slice run")),
      stats_registration_(stats_)
{
    ENMC_ASSERT(org.channels == 1 && org.ranks == 1,
                "NmpEngine owns exactly one rank");
    dram::ControllerConfig dcfg;
    dram_ = std::make_unique<dram::Controller>(org, timing, dcfg,
                                               "nmp.rank.dram");
}

Cycles
NmpEngine::macCycles(uint64_t macs, double efficiency) const
{
    const double eff_macs =
        std::max(1.0, cfg_.fp32_macs * efficiency);
    const Cycles logic =
        static_cast<Cycles>(ceilDiv(macs, static_cast<uint64_t>(eff_macs)));
    return crossDomain(logic, cfg_.freq_hz,
                       dram_->channel().timing().freq_hz);
}

void
NmpEngine::streamPhase(uint64_t bytes, uint64_t mac_cycles, Addr base,
                       dram::ReqType type, arch::RankResult &res,
                       Cycles max_cycles)
{
    dram::StreamTransfer xfer;
    if (bytes > 0)
        xfer.start(base, bytes, type);
    Cycles busy = mac_cycles;
    while ((bytes > 0 && !xfer.done()) || busy > 0) {
        ++now_;
        if (now_ > max_cycles)
            ENMC_PANIC("NMP engine watchdog expired");
        dram_->tick();
        if (bytes > 0)
            xfer.pump(*dram_);
        if (busy > 0)
            --busy;
    }
    // Drain outstanding column accesses before the next phase (a single
    // compute unit cannot overlap phases).
    while (!dram_->idle()) {
        ++now_;
        dram_->tick();
    }
    res.cycles = now_;
}

arch::RankResult
NmpEngine::run(const arch::RankTask &task, Cycles max_cycles)
{
    ENMC_ASSERT(!task.functional(),
                "baseline engines are timing-only models");
    arch::RankResult res;
    now_ = 0;
    const double eff = cfg_.gemvEfficiency(task.batch);
    const uint64_t l = task.categories;
    const uint64_t d = task.hidden;
    const uint64_t k = task.reduced;
    const uint64_t batch = task.batch;

    // Phase 1: feature staging (FP32; no quantized path on the baselines).
    const uint64_t feat_bytes = batch * k * sizeof(float);
    streamPhase(feat_bytes, 0, task.feature_base, dram::ReqType::Read, res,
                max_cycles);

    // Phase 2: screening GEMV over FP32 screener weights.
    const uint64_t screen_bytes = l * k * sizeof(float);
    const uint64_t screen_macs = l * batch * k;
    streamPhase(screen_bytes, macCycles(screen_macs, eff),
                task.screen_weight_base, dram::ReqType::Read, res,
                max_cycles);
    res.screen_bytes += feat_bytes + screen_bytes;

    // Phase 3: partial-sum spill. The approximate logits (l x batch FP32)
    // exceed the on-core buffers, so they spill to DRAM and are read back
    // for selection.
    const uint64_t psum_bytes = l * batch * sizeof(float);
    if (psum_bytes > cfg_.buffer_bytes * cfg_.queues) {
        streamPhase(psum_bytes, 0, task.output_base, dram::ReqType::Write,
                    res, max_cycles);
        // Read back + compare on the FP32 array.
        streamPhase(psum_bytes, macCycles(l * batch, eff),
                    task.output_base, dram::ReqType::Read, res, max_cycles);
        res.screen_bytes += 2 * psum_bytes;
    }

    // Phase 4: candidates-only classification (weight row + feature
    // streamed per candidate, as on ENMC's Executor).
    const uint64_t cands = task.expected_candidates * batch;
    const uint64_t cand_bytes = cands * 2 * d * sizeof(float);
    const uint64_t cand_macs = cands * d;
    streamPhase(cand_bytes, macCycles(cand_macs, eff),
                task.class_weight_base, dram::ReqType::Read, res,
                max_cycles);
    res.exec_bytes += cand_bytes;
    res.candidates = cands;

    // Phase 5: softmax on the FP32 array (no SFU): ~5 ops per element for
    // a Taylor exp, over approximate logits + candidates.
    const uint64_t softmax_macs = (l * batch + cands) * 5;
    streamPhase(0, macCycles(softmax_macs, eff), 0, dram::ReqType::Read,
                res, max_cycles);

    // Phase 6: return results to the host.
    res.output_bytes = batch * 8 + cands * 8;
    const Cycles ret = ceilDiv(res.output_bytes, org_.accessBytes()) *
                       dram_->channel().timing().tbl;
    for (Cycles i = 0; i < ret; ++i) {
        ++now_;
        dram_->tick();
    }
    res.dram_reads = dram_->channel().commandCount(dram::Cmd::Rd);
    res.dram_writes = dram_->channel().commandCount(dram::Cmd::Wr);
    res.dram_acts = dram_->channel().commandCount(dram::Cmd::Act);
    res.dram_refs = dram_->channel().commandCount(dram::Cmd::Ref);
    res.cycles = now_;
    recordRun(res);
    return res;
}

arch::RankResult
NmpEngine::runFull(const arch::RankTask &task, Cycles max_cycles)
{
    arch::RankResult res;
    now_ = 0;
    const double eff = cfg_.gemvEfficiency(task.batch);
    const uint64_t l = task.categories;
    const uint64_t d = task.hidden;
    const uint64_t batch = task.batch;

    const uint64_t feat_bytes = batch * d * sizeof(float);
    streamPhase(feat_bytes, 0, task.feature_base, dram::ReqType::Read, res,
                max_cycles);

    const uint64_t w_bytes = l * d * sizeof(float);
    streamPhase(w_bytes, macCycles(l * batch * d, eff),
                task.class_weight_base, dram::ReqType::Read, res,
                max_cycles);
    res.exec_bytes += feat_bytes + w_bytes;

    const uint64_t psum_bytes = l * batch * sizeof(float);
    if (psum_bytes > cfg_.buffer_bytes * cfg_.queues) {
        streamPhase(psum_bytes, 0, task.output_base, dram::ReqType::Write,
                    res, max_cycles);
        streamPhase(psum_bytes, macCycles(l * batch, eff),
                    task.output_base, dram::ReqType::Read, res, max_cycles);
        res.exec_bytes += 2 * psum_bytes;
    }

    streamPhase(0, macCycles(l * batch * 5, eff), 0, dram::ReqType::Read,
                res, max_cycles);
    res.output_bytes = batch * 8 + l * 8 / 64; // top results only
    res.dram_reads = dram_->channel().commandCount(dram::Cmd::Rd);
    res.dram_writes = dram_->channel().commandCount(dram::Cmd::Wr);
    res.dram_acts = dram_->channel().commandCount(dram::Cmd::Act);
    res.dram_refs = dram_->channel().commandCount(dram::Cmd::Ref);
    res.cycles = now_;
    recordRun(res);
    return res;
}

void
NmpEngine::recordRun(const arch::RankResult &res)
{
    ++stat_runs_;
    stat_candidates_ += res.candidates;
    stat_screen_bytes_ += res.screen_bytes;
    stat_exec_bytes_ += res.exec_bytes;
    stat_output_bytes_ += res.output_bytes;
    stat_cycles_.sample(static_cast<double>(res.cycles));
}

} // namespace enmc::nmp
