/**
 * @file
 * The Screener: a low-dimensional, low-precision approximation of an
 * extreme classifier (paper Section 4).
 *
 * Inference path (Eq. 3): z~ = W~ P h + b~, with P a sparse random
 * projection (d -> k) and W~ an l x k learned weight matrix. The screener
 * can run in FP32 (training/reference) or with the INT4 fixed-point
 * arithmetic the ENMC Screener unit implements.
 */

#ifndef ENMC_SCREENING_SCREENER_H
#define ENMC_SCREENING_SCREENER_H

#include <cstdint>
#include <memory>
#include <span>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/projection.h"
#include "tensor/quantize.h"

namespace enmc::screening {

/** Candidate-selection policy (paper: top-m search or thresholding). */
enum class SelectionMode { TopM, Threshold };

/** Static configuration of a screener. */
struct ScreenerConfig
{
    size_t categories = 0;     //!< l
    size_t hidden = 0;         //!< d
    /**
     * Parameter-reduction scale vs. the full classifier (Fig. 12a); the
     * reduced dimension is k = round(scale * d). The paper picks 0.25.
     */
    double reduction_scale = 0.25;
    /** Quantization of screener weights + projected features (Fig. 12b). */
    tensor::QuantBits quant = tensor::QuantBits::Int4;
    /**
     * Weight-quantization scheme. Symmetric is the bit-identical default;
     * Asymmetric recovers accuracy on skewed weight rows via per-row
     * rmin/rmax calibration + zero-points. Projected features stay
     * symmetric under both schemes.
     */
    tensor::QuantScheme scheme = tensor::QuantScheme::Symmetric;
    SelectionMode selection = SelectionMode::TopM;
    size_t top_m = 16;         //!< candidates when selection == TopM
    float threshold = 0.0f;    //!< cut when selection == Threshold

    size_t reducedDim() const;
};

/** Result of one screening pass. */
struct ScreeningResult
{
    tensor::Vector approx_logits;      //!< z~ over all l categories
    std::vector<uint32_t> candidates;  //!< selected category indices
};

/** The learned screening module. */
class Screener
{
  public:
    /**
     * Construct with freshly initialized parameters: P from the rng
     * (constant afterwards, per Algorithm 1), W~ with small random values,
     * b~ zero.
     */
    Screener(const ScreenerConfig &cfg, Rng &rng);

    const ScreenerConfig &config() const { return cfg_; }
    size_t categories() const { return cfg_.categories; }
    size_t reducedDim() const { return cfg_.reducedDim(); }

    const tensor::SparseProjection &projection() const { return *proj_; }
    tensor::Matrix &weights() { return w_; }
    const tensor::Matrix &weights() const { return w_; }
    tensor::Vector &bias() { return b_; }
    const tensor::Vector &bias() const { return b_; }

    /** y = P h: the projected feature (shared by both precisions). */
    tensor::Vector project(std::span<const float> h) const;

    /** FP32 approximate logits z~ = W~ y + b~. */
    tensor::Vector approximateFp32(std::span<const float> h) const;

    /**
     * Fixed-point approximate logits using the configured quantization —
     * numerically identical to the ENMC Screener unit's INT MAC array.
     * Requires freezeQuantized() after training.
     */
    tensor::Vector approximateQuantized(std::span<const float> h) const;

    /** Quantize the trained weights for fixed-point inference. */
    void freezeQuantized();
    bool quantizedFrozen() const { return wq_ != nullptr; }
    const tensor::QuantizedMatrix &quantizedWeights() const;

    /** Screening pass: approximate (at the configured precision) + select. */
    ScreeningResult screen(std::span<const float> h) const;

    /**
     * Screen a batch of hidden vectors. Per-item results are bit-identical
     * to screen(hs[q]); the FP32 path shares the screener weight stream
     * across the batch via the batched GEMV kernel.
     */
    std::vector<ScreeningResult>
    screenBatch(std::span<const tensor::Vector> hs) const;

    /** Candidate selection on given approximate logits. */
    std::vector<uint32_t> select(std::span<const float> approx) const;

    /** Change the selection policy after training (threshold tuning). */
    void setSelection(SelectionMode mode, size_t top_m, float threshold);

    /** Screener parameter bytes at the configured quantization. */
    size_t parameterBytes() const;

    /** FLOPs for one screening pass (projection + reduced GEMV + filter). */
    uint64_t flopsPerInference() const;

  private:
    ScreenerConfig cfg_;
    std::unique_ptr<tensor::SparseProjection> proj_;
    tensor::Matrix w_;   //!< l x k
    tensor::Vector b_;   //!< l
    std::unique_ptr<tensor::QuantizedMatrix> wq_;
};

} // namespace enmc::screening

#endif // ENMC_SCREENING_SCREENER_H
