#include "screening/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/solve.h"
#include "tensor/topk.h"

namespace enmc::screening {

Trainer::Trainer(const nn::Classifier &teacher, Screener &screener,
                 TrainerConfig cfg)
    : teacher_(teacher), screener_(screener), cfg_(cfg)
{
    ENMC_ASSERT(teacher.categories() == screener.categories(),
                "teacher/screener category mismatch");
    ENMC_ASSERT(teacher.hidden() == screener.config().hidden,
                "teacher/screener hidden-dim mismatch");
}

double
Trainer::accumulateSample(const tensor::Vector &h, tensor::Matrix &grad_w,
                          tensor::Vector &grad_b) const
{
    // Teacher target z = W h + b; student z~ = W~ y + b~ with y = P h.
    const tensor::Vector z = teacher_.logits(h);
    const tensor::Vector y = screener_.project(h);
    const tensor::Vector zt = tensor::gemv(screener_.weights(), y,
                                           screener_.bias());
    const size_t l = z.size();
    double sq = 0.0;
    for (size_t r = 0; r < l; ++r) {
        const float e = zt[r] - z[r];    // dL/dz~_r (up to 2/s factor)
        sq += static_cast<double>(e) * e;
        grad_b[r] += e;
        tensor::axpy(e, y, grad_w.row(r));
    }
    return sq / l;
}

void
Trainer::closedFormInit(const std::vector<tensor::Vector> &train_h)
{
    const size_t k = screener_.reducedDim();
    const size_t l = screener_.categories();
    const size_t n = train_h.size();

    // First pass: means of y = P h and z = W h + b.
    tensor::Vector y_mean(k, 0.0f);
    tensor::Vector z_mean(l, 0.0f);
    std::vector<tensor::Vector> ys;
    ys.reserve(n);
    for (const auto &h : train_h) {
        ys.push_back(screener_.project(h));
        for (size_t i = 0; i < k; ++i)
            y_mean[i] += ys.back()[i];
    }
    for (size_t i = 0; i < k; ++i)
        y_mean[i] /= static_cast<float>(n);

    // Second pass: A = Σ ỹ ỹᵀ + λI and B = Σ z̃ ỹᵀ (centered).
    tensor::Matrix a(k, k);
    tensor::Matrix bt(k, l); // Bᵀ, so spdSolve returns W~ᵀ directly
    for (size_t s = 0; s < n; ++s) {
        tensor::Vector y = ys[s];
        for (size_t i = 0; i < k; ++i)
            y[i] -= y_mean[i];
        const tensor::Vector z = teacher_.logits(train_h[s]);
        for (size_t i = 0; i < l; ++i)
            z_mean[i] += z[i];
        for (size_t i = 0; i < k; ++i) {
            const float yi = y[i];
            if (yi == 0.0f)
                continue;
            tensor::axpy(yi, y, a.row(i));
            tensor::axpy(yi, z, bt.row(i));
        }
    }
    for (size_t i = 0; i < l; ++i)
        z_mean[i] /= static_cast<float>(n);
    const float lam = static_cast<float>(cfg_.ridge_lambda * n);
    for (size_t i = 0; i < k; ++i)
        a(i, i) += lam;

    const tensor::Matrix wt = tensor::spdSolve(a, bt); // k x l = W~ᵀ
    tensor::Matrix &w = screener_.weights();
    tensor::Vector &b = screener_.bias();
    // Note Bᵀ used centered z̃ = z - z̄ implicitly via the bias below:
    // we solved with raw z, so subtract the mean-induced part now.
    // (Solve used raw z; recompute b accordingly.)
    for (size_t r = 0; r < l; ++r) {
        float dotmean = 0.0f;
        for (size_t c = 0; c < k; ++c) {
            w(r, c) = wt(c, r);
            dotmean += wt(c, r) * y_mean[c];
        }
        b[r] = z_mean[r] - dotmean;
    }
}

TrainReport
Trainer::train(const std::vector<tensor::Vector> &train_h,
               const std::vector<tensor::Vector> &val_h)
{
    ENMC_ASSERT(!train_h.empty(), "empty training set");
    if (cfg_.closed_form_init)
        closedFormInit(train_h);
    nn::SgdOptimizer opt(cfg_.sgd);
    const size_t slot_w = opt.addParameter(screener_.weights().size());
    const size_t slot_b = opt.addParameter(screener_.bias().size());

    TrainReport report;
    double prev_val = std::numeric_limits<double>::infinity();

    for (size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        double train_mse = 0.0;
        size_t batches = 0;
        for (size_t base = 0; base < train_h.size();
             base += cfg_.batch_size) {
            const size_t end =
                std::min(base + cfg_.batch_size, train_h.size());
            tensor::Matrix grad_w(screener_.weights().rows(),
                                  screener_.weights().cols());
            tensor::Vector grad_b(screener_.bias().size(), 0.0f);
            double batch_mse = 0.0;
            for (size_t i = base; i < end; ++i)
                batch_mse += accumulateSample(train_h[i], grad_w, grad_b);
            const float inv_s = 2.0f / static_cast<float>(end - base);
            for (size_t i = 0; i < grad_w.size(); ++i)
                grad_w.data()[i] *= inv_s;
            for (auto &g : grad_b)
                g *= inv_s;
            opt.step(slot_w,
                     {screener_.weights().data(), screener_.weights().size()},
                     {grad_w.data(), grad_w.size()});
            opt.step(slot_b, screener_.bias(), grad_b);
            train_mse += batch_mse / (end - base);
            ++batches;
        }
        opt.endEpoch();

        EpochLog log;
        log.epoch = epoch;
        log.train_mse = train_mse / std::max<size_t>(batches, 1);
        log.val_mse = val_h.empty() ? log.train_mse : evaluateMse(val_h);
        report.epochs.push_back(log);
        if (cfg_.verbose) {
            inform("epoch ", epoch, " train_mse=", log.train_mse,
                   " val_mse=", log.val_mse);
        }

        if (cfg_.convergence_ratio > 0.0 &&
            prev_val - log.val_mse <
                cfg_.convergence_ratio * std::max(prev_val, 1e-12)) {
            report.converged_early = true;
            break;
        }
        prev_val = log.val_mse;
    }
    report.final_val_mse = report.epochs.back().val_mse;
    return report;
}

double
Trainer::evaluateMse(const std::vector<tensor::Vector> &samples) const
{
    ENMC_ASSERT(!samples.empty(), "empty evaluation set");
    // Evaluate in blocks through the batched GEMV so both the teacher and
    // the student stream their weights once per block; per-sample values
    // are bit-identical to the scalar path.
    constexpr size_t kEvalBlock = 16;
    double total = 0.0;
    std::vector<tensor::Vector> ys;
    for (size_t base = 0; base < samples.size(); base += kEvalBlock) {
        const size_t end = std::min(base + kEvalBlock, samples.size());
        const std::span<const tensor::Vector> hs{samples.data() + base,
                                                 end - base};
        ys.clear();
        for (const auto &h : hs)
            ys.push_back(screener_.project(h));
        const std::vector<tensor::Vector> zs = teacher_.logitsBatch(hs);
        const std::vector<tensor::Vector> zts =
            tensor::gemvBatch(screener_.weights(), ys, screener_.bias());
        for (size_t i = 0; i < hs.size(); ++i)
            total += tensor::mse(zts[i], zs[i]);
    }
    return total / samples.size();
}

float
tuneThreshold(const Screener &screener,
              const std::vector<tensor::Vector> &val_h,
              size_t target_candidates)
{
    ENMC_ASSERT(!val_h.empty(), "threshold tuning needs validation data");
    // Calibrate the cut on the pooled approximate logits of the
    // validation set. Samples with hotter logit distributions then select
    // more candidates, colder ones fewer — exactly how a single preloaded
    // FILTER threshold behaves. The 2x provisioning factor keeps cold
    // samples from being starved of accurate candidates at a modest
    // average-cost increase (tunable quality/cost knob, paper Sec. 4.2).
    std::vector<float> pooled;
    for (const auto &h : val_h) {
        const tensor::Vector approx =
            screener.config().quant == tensor::QuantBits::Fp32 ||
                    !screener.quantizedFrozen()
                ? screener.approximateFp32(h)
                : screener.approximateQuantized(h);
        pooled.insert(pooled.end(), approx.begin(), approx.end());
    }
    return tensor::thresholdForCount(pooled,
                                     2 * target_candidates * val_h.size());
}

} // namespace enmc::screening
