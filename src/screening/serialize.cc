#include "screening/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.h"

namespace enmc::screening {

namespace {

constexpr char kMagic[8] = {'E', 'N', 'M', 'C', 'S', 'C', 'R', '1'};

/** Fixed-layout header; all fields little-endian. */
struct Header
{
    char magic[8];
    uint64_t categories;
    uint64_t hidden;
    double reduction_scale;
    uint32_t quant_bits;      //!< tensor::QuantBits numeric value
    uint32_t selection;       //!< SelectionMode numeric value
    uint64_t top_m;
    float threshold;
    /**
     * Weight-quantization scheme (tensor::QuantScheme numeric value).
     * This slot was a zero pad before schemes existed, so legacy files
     * read back as 0 == Symmetric — exactly what they were.
     */
    uint32_t quant_scheme = 0;
    uint64_t projection_seed;
};

template <typename T>
void
writeRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
void
readRaw(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    ENMC_ASSERT(is.good(), "truncated screener file");
}

} // namespace

void
saveScreener(const Screener &screener, uint64_t projection_seed,
             std::ostream &os)
{
    const ScreenerConfig &cfg = screener.config();
    Header h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.categories = cfg.categories;
    h.hidden = cfg.hidden;
    h.reduction_scale = cfg.reduction_scale;
    h.quant_bits = static_cast<uint32_t>(cfg.quant);
    h.selection = static_cast<uint32_t>(cfg.selection);
    h.top_m = cfg.top_m;
    h.threshold = cfg.threshold;
    h.quant_scheme = static_cast<uint32_t>(cfg.scheme);
    h.projection_seed = projection_seed;
    writeRaw(os, h);

    const tensor::Matrix &w = screener.weights();
    os.write(reinterpret_cast<const char *>(w.data()),
             static_cast<std::streamsize>(w.bytes()));
    os.write(reinterpret_cast<const char *>(screener.bias().data()),
             static_cast<std::streamsize>(screener.bias().size() *
                                          sizeof(float)));
    ENMC_ASSERT(os.good(), "screener serialization failed");
}

void
saveScreenerFile(const Screener &screener, uint64_t projection_seed,
                 const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        ENMC_FATAL("cannot open '", path, "' for writing");
    saveScreener(screener, projection_seed, os);
}

std::unique_ptr<Screener>
loadScreener(std::istream &is, uint64_t *projection_seed)
{
    Header h{};
    readRaw(is, h);
    ENMC_ASSERT(std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
                "not an ENMC screener file (bad magic)");
    ENMC_ASSERT(h.categories > 0 && h.hidden > 0,
                "corrupt screener header");

    ScreenerConfig cfg;
    cfg.categories = h.categories;
    cfg.hidden = h.hidden;
    cfg.reduction_scale = h.reduction_scale;
    cfg.quant = static_cast<tensor::QuantBits>(h.quant_bits);
    cfg.selection = static_cast<SelectionMode>(h.selection);
    cfg.top_m = h.top_m;
    cfg.threshold = h.threshold;
    ENMC_ASSERT(h.quant_scheme <= 1, "corrupt screener header (scheme)");
    cfg.scheme = static_cast<tensor::QuantScheme>(h.quant_scheme);

    // The projection is a pure function of the seed; rebuild it by
    // re-running the constructor with the same RNG stream, then restore
    // the trained parameters on top.
    Rng rng(h.projection_seed);
    auto screener = std::make_unique<Screener>(cfg, rng);

    tensor::Matrix &w = screener->weights();
    is.read(reinterpret_cast<char *>(w.data()),
            static_cast<std::streamsize>(w.bytes()));
    ENMC_ASSERT(is.good(), "truncated screener weights");
    is.read(reinterpret_cast<char *>(screener->bias().data()),
            static_cast<std::streamsize>(screener->bias().size() *
                                         sizeof(float)));
    ENMC_ASSERT(is.good(), "truncated screener bias");

    screener->freezeQuantized();
    if (projection_seed != nullptr)
        *projection_seed = h.projection_seed;
    return screener;
}

std::unique_ptr<Screener>
loadScreenerFile(const std::string &path, uint64_t *projection_seed)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ENMC_FATAL("cannot open '", path, "' for reading");
    return loadScreener(is, projection_seed);
}

} // namespace enmc::screening
