#include "screening/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::screening {

double
costSpeedup(const Cost &baseline, const Cost &candidate, double bytes_per_flop)
{
    // time ∝ max(bytes, flops * bytes_per_flop): whichever resource binds.
    auto time = [bytes_per_flop](const Cost &c) {
        return std::max(static_cast<double>(c.bytes_read),
                        c.flops * bytes_per_flop);
    };
    const double tb = time(baseline);
    const double tc = time(candidate);
    ENMC_ASSERT(tc > 0.0, "zero-cost candidate");
    return tb / tc;
}

double
precisionAt1(const std::vector<tensor::Vector> &exact,
             const std::vector<tensor::Vector> &approx)
{
    ENMC_ASSERT(!exact.empty() && exact.size() == approx.size(),
                "precisionAt1: batch mismatch");
    double hits = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
        const auto ref = tensor::topkIndices(exact[i], 1);
        const auto got = tensor::topkIndices(approx[i], 1);
        hits += (ref[0] == got[0]) ? 1.0 : 0.0;
    }
    return hits / static_cast<double>(exact.size());
}

double
candidateRecallAtK(const std::vector<tensor::Vector> &exact,
                   const std::vector<std::vector<uint32_t>> &candidates,
                   size_t k)
{
    ENMC_ASSERT(!exact.empty() && exact.size() == candidates.size(),
                "candidateRecallAtK: batch mismatch");
    double recall = 0.0;
    for (size_t i = 0; i < exact.size(); ++i)
        recall += tensor::recall(candidates[i],
                                 tensor::topkIndices(exact[i], k));
    return recall / static_cast<double>(exact.size());
}

QualityReport
evaluateQuality(const Pipeline &pipeline,
                const std::vector<tensor::Vector> &eval_h, size_t k)
{
    ENMC_ASSERT(!eval_h.empty(), "empty evaluation set");
    QualityReport rep;
    rep.samples = eval_h.size();

    double top1 = 0.0, topk = 0.0, rec = 0.0, rmse = 0.0, cands = 0.0;
    Cost approx_cost{};
    Cost full_cost{};

    for (const auto &h : eval_h) {
        const PipelineResult full = pipeline.inferFull(h);
        const PipelineResult approx = pipeline.infer(h);

        const auto ref_topk = tensor::topkIndices(full.logits, k);
        const auto approx_topk = tensor::topkIndices(approx.logits, k);

        top1 += (ref_topk[0] == approx_topk[0]) ? 1.0 : 0.0;
        topk += tensor::recall(approx_topk, ref_topk);
        rec += tensor::recall(approx.candidates, ref_topk);
        rmse += std::sqrt(tensor::mse(approx.logits, full.logits));
        cands += static_cast<double>(approx.candidates.size());
        approx_cost += approx.cost;
        full_cost += full.cost;
    }

    const double n = static_cast<double>(rep.samples);
    rep.top1_agreement = top1 / n;
    rep.topk_agreement = topk / n;
    rep.candidate_recall = rec / n;
    rep.logit_rmse = rmse / n;
    rep.avg_candidates = cands / n;
    rep.cost_speedup = costSpeedup(full_cost, approx_cost);
    return rep;
}

} // namespace enmc::screening
