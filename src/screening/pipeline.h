/**
 * @file
 * The end-to-end approximate-screening inference pipeline (paper Fig. 6):
 * screening -> candidate selection -> candidates-only accurate
 * classification -> mixed output -> normalization.
 *
 * Every pass also produces a cost record (FLOPs and bytes touched) so the
 * algorithm-level speedups of Fig. 11/12 can be derived on any machine
 * model, independent of this host.
 */

#ifndef ENMC_SCREENING_PIPELINE_H
#define ENMC_SCREENING_PIPELINE_H

#include <cstdint>
#include <span>

#include "nn/classifier.h"
#include "screening/screener.h"

namespace enmc::screening {

/** Arithmetic/data-access cost of one classification pass. */
struct Cost
{
    uint64_t flops = 0;        //!< total arithmetic operations
    uint64_t bytes_read = 0;   //!< parameter bytes fetched from memory

    Cost &operator+=(const Cost &o)
    {
        flops += o.flops;
        bytes_read += o.bytes_read;
        return *this;
    }
};

/** Output of one approximate-screening inference. */
struct PipelineResult
{
    /** Mixed logits: accurate for candidates, approximate elsewhere. */
    tensor::Vector logits;
    /** Normalized probabilities of `logits`. */
    tensor::Vector probabilities;
    /** Candidate indices that received accurate computation. */
    std::vector<uint32_t> candidates;
    Cost cost;
};

/** Screener + full classifier, executing candidates-only classification. */
class Pipeline
{
  public:
    Pipeline(const nn::Classifier &classifier, const Screener &screener);

    /** Run the full approximate pipeline on one hidden vector. */
    PipelineResult infer(std::span<const float> h) const;

    /** Reference: full (exact) classification with its cost. */
    PipelineResult inferFull(std::span<const float> h) const;

    /** Cost of one screening pass (precision-aware byte accounting). */
    Cost screeningCost() const;

    /** Cost of accurate computation for `m` candidates. */
    Cost candidateCost(size_t m) const;

    /** Cost of one full classification. */
    Cost fullCost() const;

    const nn::Classifier &classifier() const { return classifier_; }
    const Screener &screener() const { return screener_; }

  private:
    const nn::Classifier &classifier_;
    const Screener &screener_;
};

} // namespace enmc::screening

#endif // ENMC_SCREENING_PIPELINE_H
