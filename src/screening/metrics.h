/**
 * @file
 * Quality metrics for approximate classification.
 *
 * The paper reports task metrics (BLEU, perplexity, P@1). Since datasets
 * are synthetic here, quality is measured as agreement with exact full
 * classification on the same model — the quantity those task metrics are
 * monotone in (a decode/prediction only changes when the approximate
 * pipeline disagrees with the exact one).
 */

#ifndef ENMC_SCREENING_METRICS_H
#define ENMC_SCREENING_METRICS_H

#include <cstddef>
#include <vector>

#include "screening/pipeline.h"

namespace enmc::screening {

/** Aggregated quality of an approximate pipeline over an eval set. */
struct QualityReport
{
    double top1_agreement = 0.0;   //!< exact-vs-approx argmax match rate
    double topk_agreement = 0.0;   //!< mean overlap of top-k sets
    double candidate_recall = 0.0; //!< frac. of true top-k in candidates
    double logit_rmse = 0.0;       //!< RMSE of mixed logits vs exact
    double avg_candidates = 0.0;   //!< mean candidate-set size
    /**
     * Speedup of the approximate pipeline over full classification in the
     * algorithm cost model (flop+byte weighted; memory-bound, so byte
     * traffic dominates — see Fig. 5b).
     */
    double cost_speedup = 0.0;
    size_t samples = 0;
};

/** Evaluate quality over hidden-vector samples (k = top-k set size). */
QualityReport evaluateQuality(const Pipeline &pipeline,
                              const std::vector<tensor::Vector> &eval_h,
                              size_t k);

/**
 * Speedup implied by two cost records on a memory-bound machine:
 * time ∝ max(bytes / bw, flops / peak). `bytes_per_flop` sets the
 * machine balance point (CPU baseline: ~128 GB/s vs ~2 TFLOP/s FP32).
 */
double costSpeedup(const Cost &baseline, const Cost &candidate,
                   double bytes_per_flop = 0.064);

/**
 * P@1 of per-item approximate logits against an exact reference: the
 * fraction of items whose argmax agrees. Used by the fault sweep, where
 * the "approximate" logits additionally carry injected memory errors.
 */
double precisionAt1(const std::vector<tensor::Vector> &exact,
                    const std::vector<tensor::Vector> &approx);

/**
 * Mean fraction of each item's exact top-k categories present in its
 * candidate set.
 */
double
candidateRecallAtK(const std::vector<tensor::Vector> &exact,
                   const std::vector<std::vector<uint32_t>> &candidates,
                   size_t k);

} // namespace enmc::screening

#endif // ENMC_SCREENING_METRICS_H
