/**
 * @file
 * Screener serialization: persist a calibrated screener (projection seed,
 * weights, bias, quantization, threshold) so deployments train once
 * offline and load at startup — the artifact the host writes into the
 * ENMC DIMM's screener-weight region.
 *
 * Format: a small binary header (magic, version, dimensions, config)
 * followed by the raw parameter payloads. Everything is little-endian
 * (the only platform this project targets); the loader checks the magic,
 * version and size consistency and fails loudly on mismatch.
 */

#ifndef ENMC_SCREENING_SERIALIZE_H
#define ENMC_SCREENING_SERIALIZE_H

#include <iosfwd>
#include <memory>
#include <string>

#include "screening/screener.h"

namespace enmc::screening {

/** Serialize a trained screener (quantized weights must be frozen). */
void saveScreener(const Screener &screener, uint64_t projection_seed,
                  std::ostream &os);

/** Convenience: save to a file path. Fatal on I/O errors. */
void saveScreenerFile(const Screener &screener, uint64_t projection_seed,
                      const std::string &path);

/**
 * Reconstruct a screener from a stream. The projection is rebuilt from
 * the stored seed (it is a pure function of the RNG), then the trained
 * weights/bias are restored and re-frozen. When `projection_seed` is
 * non-null it receives the stored seed (needed to re-save the artifact).
 * Panics on malformed input.
 */
std::unique_ptr<Screener> loadScreener(std::istream &is,
                                       uint64_t *projection_seed = nullptr);

/** Convenience: load from a file path. Fatal if unreadable. */
std::unique_ptr<Screener>
loadScreenerFile(const std::string &path,
                 uint64_t *projection_seed = nullptr);

} // namespace enmc::screening

#endif // ENMC_SCREENING_SERIALIZE_H
