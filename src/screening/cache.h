/**
 * @file
 * Hot-label candidate cache: exploit Zipfian query skew by short-cutting
 * screening for repeated feature vectors (ROADMAP item 4).
 *
 * Production XC traffic is dominated by a small set of hot queries whose
 * hidden vectors repeat (or near-duplicate into the same INT4 sketch).
 * The screener's integer datapath is a pure function of the quantized
 * projected feature yq = quantize(P h): two requests with bitwise-equal
 * yq produce bitwise-equal approximate logits and therefore the same
 * candidate set. The cache keys on that sketch and remembers
 * (candidate set, approximate logits) so a hit skips the full
 * l-row screening GEMV and goes straight to exact executor rows for the
 * cached candidates.
 *
 * Correctness is preserved by construction, not by hope:
 *  - a hit requires *bitwise* equality of the full sketch (values +
 *    scale + width), never hash equality alone;
 *  - entries are tagged with the screener snapshot epoch that produced
 *    them; an epoch mismatch after a hot-swap is a miss (the entry is
 *    dropped — the old geometry says nothing about the new weights);
 *  - an optional margin validation pass re-screens only the cached
 *    candidate rows and rejects the hit when any cached candidate sits
 *    within `margin` of the FILTER threshold (an invocation-driven
 *    "is the approximate path safe here?" check, per Song et al.);
 *    rejected hits fall back to full screening;
 *  - exact logits for candidate rows are always recomputed from the
 *    *request's own* hidden vector by the caller — only the screening
 *    decision is cached, never FP32 executor output.
 * With margin == 0 a validated hit serves output bit-identical to the
 * uncached path for every request.
 *
 * Single-threaded by design: one cache lives inside one classifier
 * forward path (the serve executor thread). Counters surface through a
 * "screening.cache" StatGroup with the accounting invariants
 *   lookups == hits + misses,          hits == validated + rejected,
 *   screenerBypass == validated,       fullScreens == misses + rejected
 * checked by tools/check_metrics.py.
 */

#ifndef ENMC_SCREENING_CACHE_H
#define ENMC_SCREENING_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "obs/registry.h"
#include "tensor/matrix.h"
#include "tensor/quantize.h"

namespace enmc::screening {

class Screener;

/** Candidate-cache knobs; parsed from `ENMC_CACHE_*` (fail-loud). */
struct CacheConfig
{
    /** Maximum resident entries; 0 disables the cache entirely. */
    size_t capacity = 0;
    /**
     * Validation margin: a hit is rejected (falls back to full
     * screening) unless every cached candidate row re-screens at least
     * `margin` above the FILTER threshold. 0 accepts every bitwise hit
     * (still bit-identical); larger values trade hit rate for headroom
     * against logit drift between retrains.
     */
    float margin = 0.0f;

    void validate() const;
};

/** `base` with `ENMC_CACHE_CAPACITY` / `ENMC_CACHE_MARGIN` applied. */
CacheConfig cacheConfigFromEnv(CacheConfig base = CacheConfig{});

/** One cached screening decision. */
struct CacheEntry
{
    uint64_t epoch = 0;                //!< screener snapshot that wrote it
    std::vector<uint32_t> candidates;  //!< selected category indices
    /**
     * Full approximate-logit vector z~ (all l categories) as produced by
     * the cached screening pass. Bitwise-valid for any request with the
     * same sketch; candidate rows must still be overwritten with exact
     * logits computed from the live request's hidden vector.
     */
    tensor::Vector approx_logits;
};

/** LRU cache of screening decisions keyed by quantized feature sketches. */
class CandidateCache
{
  public:
    explicit CandidateCache(const CacheConfig &cfg);

    bool enabled() const { return cfg_.capacity > 0; }
    const CacheConfig &config() const { return cfg_; }
    size_t size() const { return lru_.size(); }

    /**
     * Look up the sketch under the given snapshot epoch and validate the
     * hit against the screener (margin re-screen of the cached candidate
     * rows). Returns the entry only for a *validated* hit; a miss,
     * epoch-stale entry, or rejected hit returns nullptr and the caller
     * must run full screening. The returned pointer is invalidated by
     * the next insert().
     *
     * Counter semantics: every call bumps `lookups` and exactly one of
     * {validated (+hits, +screenerBypass), rejected (+hits, +fullScreens),
     * misses (+fullScreens)}.
     */
    const CacheEntry *lookup(const tensor::QuantizedVector &yq,
                             uint64_t epoch, const Screener &screener);

    /**
     * Remember a full screening decision for this sketch. No-op when
     * disabled; replaces any entry with the same sketch; evicts the LRU
     * entry at capacity.
     */
    void insert(const tensor::QuantizedVector &yq, uint64_t epoch,
                std::vector<uint32_t> candidates,
                tensor::Vector approx_logits);

    /** Drop every entry (e.g. after an explicit reset). */
    void clear();

    StatGroup &stats() { return stats_; }

  private:
    struct Key
    {
        std::vector<int8_t> values;
        uint32_t scale_bits = 0;   //!< float scale, bit pattern
        uint8_t bits = 0;          //!< QuantBits numeric value

        bool operator==(const Key &o) const
        {
            return bits == o.bits && scale_bits == o.scale_bits &&
                   values == o.values;
        }
    };

    struct KeyHash
    {
        size_t operator()(const Key &k) const;
    };

    struct Node
    {
        Key key;
        CacheEntry entry;
    };

    static Key makeKey(const tensor::QuantizedVector &yq);
    bool validateEntry(const CacheEntry &entry,
                       const tensor::QuantizedVector &yq,
                       const Screener &screener) const;

    CacheConfig cfg_;
    std::list<Node> lru_;          //!< front == most recently used
    std::unordered_map<Key, std::list<Node>::iterator, KeyHash> index_;

    StatGroup stats_;
    Counter &stat_lookups_;
    Counter &stat_hits_;
    Counter &stat_misses_;
    Counter &stat_validated_;
    Counter &stat_rejected_;
    Counter &stat_insertions_;
    Counter &stat_evictions_;
    Counter &stat_bypass_;
    Counter &stat_full_screens_;
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::screening

#endif // ENMC_SCREENING_CACHE_H
