#include "screening/pipeline.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace enmc::screening {

Pipeline::Pipeline(const nn::Classifier &classifier, const Screener &screener)
    : classifier_(classifier), screener_(screener)
{
    ENMC_ASSERT(classifier.categories() == screener.categories(),
                "pipeline dimension mismatch");
}

PipelineResult
Pipeline::infer(std::span<const float> h) const
{
    PipelineResult res;
    // (2)+(3): screening + candidate selection.
    ScreeningResult scr = screener_.screen(h);
    res.candidates = std::move(scr.candidates);
    // (4): accurate rows only for candidates; (5): mixed output.
    res.logits = std::move(scr.approx_logits);
    for (uint32_t c : res.candidates)
        res.logits[c] = classifier_.logit(c, h);
    res.probabilities =
        classifier_.normalization() == nn::Normalization::Softmax
            ? tensor::softmax(res.logits)
            : tensor::sigmoid(res.logits);
    res.cost = screeningCost();
    res.cost += candidateCost(res.candidates.size());
    return res;
}

PipelineResult
Pipeline::inferFull(std::span<const float> h) const
{
    PipelineResult res;
    res.logits = classifier_.logits(h);
    res.probabilities =
        classifier_.normalization() == nn::Normalization::Softmax
            ? tensor::softmax(res.logits)
            : tensor::sigmoid(res.logits);
    res.cost = fullCost();
    return res;
}

Cost
Pipeline::screeningCost() const
{
    Cost c;
    c.flops = screener_.flopsPerInference();
    // Parameter traffic: packed screener weights + bias + projection.
    c.bytes_read = screener_.parameterBytes();
    return c;
}

Cost
Pipeline::candidateCost(size_t m) const
{
    const size_t d = classifier_.hidden();
    Cost c;
    c.flops = 2ull * m * d + 4ull * m;
    c.bytes_read = m * d * sizeof(float);
    return c;
}

Cost
Pipeline::fullCost() const
{
    Cost c;
    c.flops = classifier_.flopsPerInference();
    c.bytes_read = classifier_.parameterBytes();
    return c;
}

} // namespace enmc::screening
