#include "screening/screener.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::screening {

size_t
ScreenerConfig::reducedDim() const
{
    const size_t k =
        static_cast<size_t>(std::lround(reduction_scale * hidden));
    return k < 1 ? 1 : k;
}

Screener::Screener(const ScreenerConfig &cfg, Rng &rng)
    : cfg_(cfg),
      proj_(std::make_unique<tensor::SparseProjection>(cfg.reducedDim(),
                                                       cfg.hidden, rng)),
      w_(cfg.categories, cfg.reducedDim()),
      b_(cfg.categories, 0.0f)
{
    ENMC_ASSERT(cfg.categories > 0 && cfg.hidden > 0,
                "screener needs positive dimensions");
    // Small random init; distillation converges from anywhere but a
    // symmetric start slows the first epoch.
    const float scale = 1.0f / std::sqrt(static_cast<float>(reducedDim()));
    for (size_t r = 0; r < w_.rows(); ++r)
        for (size_t c = 0; c < w_.cols(); ++c)
            w_(r, c) = static_cast<float>(rng.normal(0.0, scale));
}

tensor::Vector
Screener::project(std::span<const float> h) const
{
    return proj_->apply(h);
}

tensor::Vector
Screener::approximateFp32(std::span<const float> h) const
{
    const tensor::Vector y = project(h);
    return tensor::gemv(w_, y, b_);
}

tensor::Vector
Screener::approximateQuantized(std::span<const float> h) const
{
    if (cfg_.quant == tensor::QuantBits::Fp32)
        return approximateFp32(h);
    ENMC_ASSERT(wq_ != nullptr,
                "call freezeQuantized() after training before "
                "fixed-point inference");
    const tensor::Vector y = project(h);
    const tensor::QuantizedVector yq = tensor::quantize(y, cfg_.quant);
    return tensor::gemvQuantized(*wq_, yq, b_);
}

void
Screener::freezeQuantized()
{
    if (cfg_.quant == tensor::QuantBits::Fp32)
        return;
    wq_ = std::make_unique<tensor::QuantizedMatrix>(
        tensor::quantize(w_, cfg_.quant, cfg_.scheme));
}

const tensor::QuantizedMatrix &
Screener::quantizedWeights() const
{
    ENMC_ASSERT(wq_ != nullptr, "quantized weights not frozen");
    return *wq_;
}

ScreeningResult
Screener::screen(std::span<const float> h) const
{
    ScreeningResult res;
    res.approx_logits = (cfg_.quant == tensor::QuantBits::Fp32)
        ? approximateFp32(h)
        : approximateQuantized(h);
    res.candidates = select(res.approx_logits);
    return res;
}

std::vector<ScreeningResult>
Screener::screenBatch(std::span<const tensor::Vector> hs) const
{
    std::vector<ScreeningResult> out(hs.size());
    if (cfg_.quant == tensor::QuantBits::Fp32) {
        std::vector<tensor::Vector> ys;
        ys.reserve(hs.size());
        for (const auto &h : hs)
            ys.push_back(project(h));
        std::vector<tensor::Vector> zs = tensor::gemvBatch(w_, ys, b_);
        for (size_t q = 0; q < hs.size(); ++q)
            out[q].approx_logits = std::move(zs[q]);
    } else {
        // The INT path is dominated by the integer MAC, which is already
        // bit-exact and bandwidth-light; run it per item.
        for (size_t q = 0; q < hs.size(); ++q)
            out[q].approx_logits = approximateQuantized(hs[q]);
    }
    for (auto &res : out)
        res.candidates = select(res.approx_logits);
    return out;
}

std::vector<uint32_t>
Screener::select(std::span<const float> approx) const
{
    if (cfg_.selection == SelectionMode::TopM)
        return tensor::topkIndices(approx, cfg_.top_m);
    return tensor::thresholdIndices(approx, cfg_.threshold);
}

void
Screener::setSelection(SelectionMode mode, size_t top_m, float threshold)
{
    cfg_.selection = mode;
    cfg_.top_m = top_m;
    cfg_.threshold = threshold;
}

size_t
Screener::parameterBytes() const
{
    size_t weight_bytes;
    if (cfg_.quant == tensor::QuantBits::Fp32) {
        weight_bytes = w_.bytes();
    } else if (wq_) {
        weight_bytes = wq_->packedBytes();
    } else {
        // Not frozen yet: report the eventual packed size.
        const size_t bits =
            w_.size() * tensor::quantBitCount(cfg_.quant);
        weight_bytes = (bits + 7) / 8 + w_.rows() * sizeof(float);
    }
    return weight_bytes + b_.size() * sizeof(float) + proj_->packedBytes();
}

uint64_t
Screener::flopsPerInference() const
{
    // Projection: one add per nonzero; reduced GEMV: 2 l k; filter: l.
    return proj_->nonZeros() +
           2ull * cfg_.categories * reducedDim() +
           cfg_.categories;
}

} // namespace enmc::screening
