/**
 * @file
 * Screener distillation (paper Algorithm 1).
 *
 * Trains W~ and b~ by SGD on the MSE objective of Eq. 4:
 *   L = (1/s) * sum_s || (W h + b) - (W~ P h + b~) ||^2
 * The teacher classifier and the projection P stay frozen; only the
 * screener parameters move. Convergence takes a few epochs, mirroring the
 * paper's "much faster than original model training".
 */

#ifndef ENMC_SCREENING_TRAINER_H
#define ENMC_SCREENING_TRAINER_H

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/classifier.h"
#include "nn/sgd.h"
#include "screening/screener.h"

namespace enmc::screening {

/** Training hyperparameters for Algorithm 1. */
struct TrainerConfig
{
    size_t epochs = 8;
    size_t batch_size = 32;       //!< s in Eq. 4
    nn::SgdConfig sgd{0.01, 0.9, 0.7};
    /**
     * Warm-start from the closed-form ridge solution of the (convex)
     * Eq. 4 objective: W~ = (Σ z yᵀ)(Σ y yᵀ + λI)⁻¹ with y = P h. SGD
     * then refines from the optimum's neighbourhood; this is what "train
     * till convergence" reaches and makes runs deterministic and fast.
     */
    bool closed_form_init = true;
    double ridge_lambda = 1e-3;
    /** Stop early once validation MSE improves by less than this ratio. */
    double convergence_ratio = 1e-3;
    bool verbose = false;
};

/** Per-epoch training record. */
struct EpochLog
{
    size_t epoch = 0;
    double train_mse = 0.0;
    double val_mse = 0.0;
};

/** Outcome of a training run. */
struct TrainReport
{
    std::vector<EpochLog> epochs;
    double final_val_mse = 0.0;
    bool converged_early = false;
};

/** Distills `teacher` into `screener` over the given hidden vectors. */
class Trainer
{
  public:
    Trainer(const nn::Classifier &teacher, Screener &screener,
            TrainerConfig cfg);

    /**
     * Run Algorithm 1.
     * @param train_h Training hidden vectors (each of dim d).
     * @param val_h Validation hidden vectors for convergence tracking.
     */
    TrainReport train(const std::vector<tensor::Vector> &train_h,
                      const std::vector<tensor::Vector> &val_h);

    /** Mean Eq.-4 loss of the current screener over a sample set. */
    double evaluateMse(const std::vector<tensor::Vector> &samples) const;

  private:
    /** Accumulate gradients for one sample; returns its squared error. */
    double accumulateSample(const tensor::Vector &h,
                            tensor::Matrix &grad_w,
                            tensor::Vector &grad_b) const;

    /** Set screener parameters to the closed-form ridge solution. */
    void closedFormInit(const std::vector<tensor::Vector> &train_h);

    const nn::Classifier &teacher_;
    Screener &screener_;
    TrainerConfig cfg_;
};

/**
 * Tune the FILTER threshold on a validation set so that on average
 * `target_candidates` categories pass (paper: "the threshold value can be
 * tuned on validation sets"). Returns the tuned threshold.
 */
float tuneThreshold(const Screener &screener,
                    const std::vector<tensor::Vector> &val_h,
                    size_t target_candidates);

} // namespace enmc::screening

#endif // ENMC_SCREENING_TRAINER_H
