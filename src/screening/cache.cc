#include "screening/cache.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "screening/screener.h"

namespace enmc::screening {

void
CacheConfig::validate() const
{
    if (!std::isfinite(margin) || margin < 0.0f)
        ENMC_FATAL("ENMC_CACHE_MARGIN must be finite and >= 0, got ",
                   margin);
}

CacheConfig
cacheConfigFromEnv(CacheConfig cfg)
{
    cfg.capacity = envU64("ENMC_CACHE_CAPACITY", cfg.capacity);
    cfg.margin = static_cast<float>(
        envF64("ENMC_CACHE_MARGIN", cfg.margin));
    cfg.validate();
    return cfg;
}

size_t
CandidateCache::KeyHash::operator()(const Key &k) const
{
    // FNV-1a over the sketch bytes; the bitwise scale + width fold in so
    // sketches that differ only in scale never share a bucket chain.
    uint64_t h = 1469598103934665603ull;
    const auto fold = [&h](uint64_t byte) {
        h ^= byte;
        h *= 1099511628211ull;
    };
    for (const int8_t v : k.values)
        fold(static_cast<uint8_t>(v));
    for (int i = 0; i < 4; ++i)
        fold((k.scale_bits >> (8 * i)) & 0xff);
    fold(k.bits);
    return static_cast<size_t>(h);
}

CandidateCache::CandidateCache(const CacheConfig &cfg)
    : cfg_(cfg),
      stats_("screening.cache"),
      stat_lookups_(stats_.addCounter("lookups", "cache probes")),
      stat_hits_(stats_.addCounter("hits", "bitwise sketch matches")),
      stat_misses_(stats_.addCounter(
          "misses", "probes without a same-epoch bitwise match")),
      stat_validated_(stats_.addCounter(
          "validated", "hits accepted by the margin re-screen")),
      stat_rejected_(stats_.addCounter(
          "rejected", "hits rejected by the margin re-screen")),
      stat_insertions_(stats_.addCounter("insertions", "entries written")),
      stat_evictions_(stats_.addCounter("evictions",
                                        "LRU entries evicted at capacity")),
      stat_bypass_(stats_.addCounter(
          "screenerBypass", "requests that skipped full screening")),
      stat_full_screens_(stats_.addCounter(
          "fullScreens", "requests that ran full screening")),
      stats_registration_(stats_)
{
    cfg_.validate();
}

CandidateCache::Key
CandidateCache::makeKey(const tensor::QuantizedVector &yq)
{
    Key k;
    k.values = yq.values;
    static_assert(sizeof(k.scale_bits) == sizeof(yq.scale));
    std::memcpy(&k.scale_bits, &yq.scale, sizeof(k.scale_bits));
    k.bits = static_cast<uint8_t>(tensor::quantBitCount(yq.bits));
    return k;
}

bool
CandidateCache::validateEntry(const CacheEntry &entry,
                              const tensor::QuantizedVector &yq,
                              const Screener &screener) const
{
    // Re-screen only the cached candidate rows against the live snapshot
    // and demand (a) bitwise agreement with the cached approximate logit
    // — a free integrity check on the epoch tagging — and (b) `margin`
    // headroom above the FILTER cut when thresholding selects candidates.
    const tensor::QuantizedMatrix &wq = screener.quantizedWeights();
    const ScreenerConfig &cfg = screener.config();
    const bool thresholded = cfg.selection == SelectionMode::Threshold;
    tensor::Vector z(wq.rows);
    for (const uint32_t r : entry.candidates) {
        if (r >= wq.rows || r >= entry.approx_logits.size())
            return false;
        tensor::gemvQuantizedRows(wq, yq.values, yq.scale, screener.bias(),
                                  z, r, r + 1);
        if (z[r] != entry.approx_logits[r])
            return false;
        if (thresholded && z[r] < cfg.threshold + cfg_.margin)
            return false;
    }
    return true;
}

const CacheEntry *
CandidateCache::lookup(const tensor::QuantizedVector &yq, uint64_t epoch,
                       const Screener &screener)
{
    if (!enabled())
        return nullptr;
    ++stat_lookups_;
    const Key key = makeKey(yq);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stat_misses_;
        ++stat_full_screens_;
        return nullptr;
    }
    if (it->second->entry.epoch != epoch) {
        // A hot-swap happened since this entry was written: the cached
        // geometry is stale. Drop it so the slot refills under the new
        // epoch instead of missing forever.
        lru_.erase(it->second);
        index_.erase(it);
        ++stat_misses_;
        ++stat_full_screens_;
        return nullptr;
    }
    ++stat_hits_;
    // Refresh recency before validation: even a rejected hit is evidence
    // the sketch is hot.
    lru_.splice(lru_.begin(), lru_, it->second);
    if (!validateEntry(it->second->entry, yq, screener)) {
        ++stat_rejected_;
        ++stat_full_screens_;
        return nullptr;
    }
    ++stat_validated_;
    ++stat_bypass_;
    return &it->second->entry;
}

void
CandidateCache::insert(const tensor::QuantizedVector &yq, uint64_t epoch,
                       std::vector<uint32_t> candidates,
                       tensor::Vector approx_logits)
{
    if (!enabled())
        return;
    Key key = makeKey(yq);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Same sketch re-screened (epoch bump or validation fallback):
        // overwrite in place and refresh recency.
        it->second->entry.epoch = epoch;
        it->second->entry.candidates = std::move(candidates);
        it->second->entry.approx_logits = std::move(approx_logits);
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stat_insertions_;
        return;
    }
    if (lru_.size() >= cfg_.capacity) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stat_evictions_;
    }
    lru_.push_front(Node{std::move(key),
                         CacheEntry{epoch, std::move(candidates),
                                    std::move(approx_logits)}});
    index_.emplace(lru_.front().key, lru_.begin());
    ++stat_insertions_;
}

void
CandidateCache::clear()
{
    lru_.clear();
    index_.clear();
}

} // namespace enmc::screening
