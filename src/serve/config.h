/**
 * @file
 * Serving-layer configuration and its `ENMC_SERVE_*` environment
 * overrides.
 *
 * The dynamic-batching policy has two knobs (the classic
 * latency/throughput trade): `max_batch` bounds how many queued requests
 * coalesce into one backend call, and `max_delay_us` bounds how long the
 * oldest queued request may wait for co-travellers before the batch is
 * flushed anyway. `handoff_us` is the per-offload host cost (offload
 * initiation, feature write, completion detection) that NMPO
 * (arXiv:2106.15284) measures dominating end-to-end NMP throughput —
 * batch-1 serving pays it per request, a batch pays it once.
 */

#ifndef ENMC_SERVE_CONFIG_H
#define ENMC_SERVE_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "cluster/config.h"
#include "runtime/planner.h"

namespace enmc::serve {

struct ServeConfig
{
    /**
     * Backend registry key batches are dispatched through; the special
     * name `"cluster"` dispatches through the sharded cluster fabric
     * configured by `cluster` below, and `"auto"` through the adaptive
     * offload planner configured by `planner` below, instead of a single
     * fixed backend.
     */
    std::string backend = "enmc";                 // ENMC_SERVE_BACKEND

    /** Bounded request-queue capacity (admission control). */
    size_t queue_capacity = 256;                  // ENMC_SERVE_QUEUE_CAP

    /** Largest batch one backend call serves. */
    size_t max_batch = 16;                        // ENMC_SERVE_MAX_BATCH
    /** Longest the oldest queued request waits before a forced flush. */
    double max_delay_us = 200.0;                  // ENMC_SERVE_MAX_DELAY_US

    /**
     * Per-offload host/NMP handoff cost in us, paid once per dispatched
     * batch (NMPO's offload-initiation + completion-detection overhead).
     */
    double handoff_us = 25.0;                     // ENMC_SERVE_HANDOFF_US

    /**
     * Leading admitted requests flagged warm-up and excluded from the
     * report's latency percentiles (cold-start allocations and cache
     * misses otherwise bias the tail).
     */
    size_t warmup_requests = 8;                   // ENMC_SERVE_WARMUP

    /** Per-request latency SLO; violations count per tenant. */
    double slo_us = 2000.0;                       // ENMC_SERVE_SLO_US

    /** Compute per-request probabilities (off = timing-only serving). */
    bool compute_logits = true;                   // ENMC_SERVE_LOGITS
    /** Top-k indices returned per request when computing logits. */
    size_t topk = 5;                              // ENMC_SERVE_TOPK

    /** Cluster fabric shape, used when `backend == "cluster"`. */
    cluster::ClusterConfig cluster;               // ENMC_CLUSTER_*

    /** Offload-planner knobs, used when `backend == "auto"`. */
    runtime::PlannerConfig planner;               // ENMC_PLAN_*
};

/**
 * `base` with every `ENMC_SERVE_*` environment override applied. Fatal
 * on unparsable values; zero capacities/batches are configuration errors.
 */
ServeConfig serveConfigFromEnv(ServeConfig base = ServeConfig{});

/** Fatal unless the configuration is self-consistent. */
void validate(const ServeConfig &cfg);

} // namespace enmc::serve

#endif // ENMC_SERVE_CONFIG_H
