#include "serve/queue.h"

#include <algorithm>

#include "common/logging.h"

namespace enmc::serve {

const char *
admissionName(Admission a)
{
    switch (a) {
      case Admission::Admitted: return "admitted";
      case Admission::RejectedQueueFull: return "rejected-queue-full";
      case Admission::RejectedShutdown: return "rejected-shutdown";
      case Admission::RejectedInvalid: return "rejected-invalid";
    }
    return "?";
}

void
ArrivalTrace::normalize()
{
    std::stable_sort(requests.begin(), requests.end(),
                     [](const Request &a, const Request &b) {
                         if (a.arrival_us != b.arrival_us)
                             return a.arrival_us < b.arrival_us;
                         return a.id < b.id;
                     });
}

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(capacity),
      stats_("serve.queue"),
      stat_admitted_(stats_.addCounter("admitted", "requests admitted")),
      stat_rejected_full_(stats_.addCounter(
          "rejectedFull", "requests rejected: queue at capacity")),
      stat_rejected_shutdown_(stats_.addCounter(
          "rejectedShutdown", "requests rejected: queue closed")),
      stat_popped_(stats_.addCounter("popped",
                                     "requests handed to the batcher")),
      // Fixed shape regardless of capacity: the registry merges
      // same-named groups across instances, so shapes must agree.
      stat_depth_(stats_.addHistogram(
          "depth", "queue depth observed at each admission", 0.0, 1024.0,
          32)),
      stats_registration_(stats_)
{
    ENMC_ASSERT(capacity_ >= 1, "queue capacity must be >= 1");
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

void
RequestQueue::recordDecision(Admission a)
{
    switch (a) {
      case Admission::Admitted: ++stat_admitted_; break;
      case Admission::RejectedQueueFull: ++stat_rejected_full_; break;
      case Admission::RejectedShutdown: ++stat_rejected_shutdown_; break;
      case Admission::RejectedInvalid: break; // decided by the loop
    }
}

Admission
RequestQueue::admitLocked(QueuedRequest &&item,
                          std::unique_lock<std::mutex> &)
{
    stat_depth_.sample(static_cast<double>(items_.size()));
    const Admission a = admitDecision(items_.size(), capacity_, closed_);
    recordDecision(a);
    if (a == Admission::Admitted) {
        items_.push_back(std::move(item));
        items_cv_.notify_one();
    }
    return a;
}

Admission
RequestQueue::tryPush(QueuedRequest item)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return admitLocked(std::move(item), lock);
}

Admission
RequestQueue::pushBlocking(QueuedRequest item)
{
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    return admitLocked(std::move(item), lock);
}

Admission
RequestQueue::pushOrdered(QueuedRequest item)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const RequestId id = item.request.id;
    order_cv_.wait(lock, [&] { return closed_ || next_ordered_id_ == id; });
    Admission a;
    if (closed_ && next_ordered_id_ != id) {
        a = Admission::RejectedShutdown;
        recordDecision(a);
    } else {
        a = admitLocked(std::move(item), lock);
        ++next_ordered_id_;
    }
    order_cv_.notify_all();
    return a;
}

size_t
RequestQueue::pop(size_t max_n, std::chrono::microseconds wait,
                  std::vector<QueuedRequest> &out)
{
    ENMC_ASSERT(max_n >= 1, "pop needs max_n >= 1");
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_)
        items_cv_.wait_for(lock, wait,
                           [&] { return closed_ || !items_.empty(); });
    size_t n = 0;
    while (n < max_n && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
    }
    if (n > 0) {
        stat_popped_ += n;
        space_cv_.notify_all();
    }
    return n;
}

void
RequestQueue::recordReplayAdmission(Admission a, size_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stat_depth_.sample(static_cast<double>(depth));
    recordDecision(a);
}

void
RequestQueue::recordReplayPop(size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stat_popped_ += n;
}

void
RequestQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    space_cv_.notify_all();
    items_cv_.notify_all();
    order_cv_.notify_all();
}

} // namespace enmc::serve
