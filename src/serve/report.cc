#include "serve/report.h"

#include <algorithm>

namespace enmc::serve {

size_t
ServeReport::admittedCount() const
{
    return static_cast<size_t>(
        std::count_if(responses.begin(), responses.end(),
                      [](const Response &r) {
                          return r.admission == Admission::Admitted;
                      }));
}

size_t
ServeReport::rejectedCount() const
{
    return responses.size() - admittedCount();
}

size_t
ServeReport::rejectedCount(Admission reason) const
{
    return static_cast<size_t>(
        std::count_if(responses.begin(), responses.end(),
                      [&](const Response &r) {
                          return r.admission == reason;
                      }));
}

size_t
ServeReport::warmupCount() const
{
    return static_cast<size_t>(
        std::count_if(responses.begin(), responses.end(),
                      [](const Response &r) {
                          return r.admission == Admission::Admitted &&
                                 r.warmup;
                      }));
}

size_t
ServeReport::measuredCount() const
{
    return admittedCount() - warmupCount();
}

std::vector<double>
ServeReport::measuredLatencies() const
{
    std::vector<double> out;
    for (const Response &r : responses)
        if (r.admission == Admission::Admitted && !r.warmup)
            out.push_back(r.latencyUs());
    return out;
}

size_t
ServeReport::hitCount() const
{
    return static_cast<size_t>(
        std::count_if(responses.begin(), responses.end(),
                      [](const Response &r) {
                          return r.admission == Admission::Admitted &&
                                 !r.warmup && r.snapshot_epoch > 0 &&
                                 r.cache_hit;
                      }));
}

size_t
ServeReport::missCount() const
{
    return static_cast<size_t>(
        std::count_if(responses.begin(), responses.end(),
                      [](const Response &r) {
                          return r.admission == Admission::Admitted &&
                                 !r.warmup && r.snapshot_epoch > 0 &&
                                 !r.cache_hit;
                      }));
}

std::vector<double>
ServeReport::hitLatencies() const
{
    std::vector<double> out;
    for (const Response &r : responses)
        if (r.admission == Admission::Admitted && !r.warmup &&
            r.snapshot_epoch > 0 && r.cache_hit)
            out.push_back(r.latencyUs());
    return out;
}

std::vector<double>
ServeReport::missLatencies() const
{
    std::vector<double> out;
    for (const Response &r : responses)
        if (r.admission == Admission::Admitted && !r.warmup &&
            r.snapshot_epoch > 0 && !r.cache_hit)
            out.push_back(r.latencyUs());
    return out;
}

std::vector<double>
ServeReport::warmupLatencies() const
{
    std::vector<double> out;
    for (const Response &r : responses)
        if (r.admission == Admission::Admitted && r.warmup)
            out.push_back(r.latencyUs());
    return out;
}

double
ServeReport::queriesPerSecond() const
{
    double first_admit = 0.0, last_complete = 0.0;
    size_t n = 0;
    for (const Response &r : responses) {
        if (r.admission != Admission::Admitted || r.warmup)
            continue;
        if (n == 0 || r.admit_us < first_admit)
            first_admit = r.admit_us;
        if (n == 0 || r.complete_us > last_complete)
            last_complete = r.complete_us;
        ++n;
    }
    const double span_us = last_complete - first_admit;
    if (n == 0 || span_us <= 0.0)
        return 0.0;
    return static_cast<double>(n) * 1e6 / span_us;
}

} // namespace enmc::serve
