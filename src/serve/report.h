/**
 * @file
 * The outcome of one serving run, with warm-up-aware latency accounting.
 *
 * The first `warmup` admitted requests of a run are cold: allocator
 * growth, page faults, and (in live mode) lazily built thread pools all
 * land on them. Timing them together with steady-state requests biases
 * every percentile — the bug the old `lm_inference_server` loop had.
 * The report therefore splits responses into warm-up and *measured*
 * populations; `measuredLatency()` is the only percentile source, and
 * the warm-up population is reported separately so nothing is silently
 * dropped.
 */

#ifndef ENMC_SERVE_REPORT_H
#define ENMC_SERVE_REPORT_H

#include <cstddef>
#include <vector>

#include "obs/percentiles.h"
#include "serve/request.h"

namespace enmc::serve {

struct ServeReport
{
    /** Every request's outcome, ordered by request id (rejections too). */
    std::vector<Response> responses;

    size_t admittedCount() const;
    size_t rejectedCount() const;
    /** Admitted responses flagged warm-up. */
    size_t warmupCount() const;
    /** Admitted responses that count toward percentiles. */
    size_t measuredCount() const;

    /** End-to-end latencies (us) of the measured population only. */
    std::vector<double> measuredLatencies() const;
    /** End-to-end latencies (us) of the warm-up population only. */
    std::vector<double> warmupLatencies() const;

    /** Nearest-rank percentiles over the measured population. */
    obs::Percentiles measuredLatency() const
    {
        return obs::Percentiles(measuredLatencies());
    }

    // --- candidate-cache split ----------------------------------------
    // The hit/miss populations partition the *classified* measured
    // responses (snapshot_epoch > 0); timing-only responses belong to
    // neither, so hitCount + missCount <= measuredCount.

    /** Measured responses served from the candidate cache. */
    size_t hitCount() const;
    /** Measured classified responses that ran full screening. */
    size_t missCount() const;
    /** Latencies (us) of the measured cache-hit population. */
    std::vector<double> hitLatencies() const;
    /** Latencies (us) of the measured full-screening population. */
    std::vector<double> missLatencies() const;
    /** Nearest-rank percentiles over the measured cache hits. */
    obs::Percentiles hitLatency() const
    {
        return obs::Percentiles(hitLatencies());
    }
    /** Nearest-rank percentiles over the measured cache misses. */
    obs::Percentiles missLatency() const
    {
        return obs::Percentiles(missLatencies());
    }

    /**
     * Measured throughput in queries/sec: measured completions over the
     * [first measured admission, last measured completion) window.
     * Warm-up requests are outside the window by construction.
     */
    double queriesPerSecond() const;

    /** Rejections broken down by reason. */
    size_t rejectedCount(Admission reason) const;
};

} // namespace enmc::serve

#endif // ENMC_SERVE_REPORT_H
