#include "serve/config.h"

#include "common/env.h"
#include "common/logging.h"

namespace enmc::serve {

ServeConfig
serveConfigFromEnv(ServeConfig base)
{
    if (const char *v = envString("ENMC_SERVE_BACKEND"))
        base.backend = v;
    base.queue_capacity = envU64("ENMC_SERVE_QUEUE_CAP", base.queue_capacity);
    base.max_batch = envU64("ENMC_SERVE_MAX_BATCH", base.max_batch);
    base.max_delay_us = envF64("ENMC_SERVE_MAX_DELAY_US", base.max_delay_us);
    base.handoff_us = envF64("ENMC_SERVE_HANDOFF_US", base.handoff_us);
    base.warmup_requests = envU64("ENMC_SERVE_WARMUP", base.warmup_requests);
    base.slo_us = envF64("ENMC_SERVE_SLO_US", base.slo_us);
    base.compute_logits = envBool("ENMC_SERVE_LOGITS", base.compute_logits);
    base.topk = envU64("ENMC_SERVE_TOPK", base.topk);
    base.cluster = cluster::clusterConfigFromEnv(base.cluster);
    base.planner = runtime::plannerConfigFromEnv(base.planner);
    validate(base);
    return base;
}

void
validate(const ServeConfig &cfg)
{
    if (cfg.queue_capacity == 0)
        ENMC_FATAL("serve: queue_capacity must be >= 1");
    if (cfg.max_batch == 0)
        ENMC_FATAL("serve: max_batch must be >= 1");
    if (cfg.max_batch > cfg.queue_capacity)
        ENMC_FATAL("serve: max_batch (", cfg.max_batch,
                   ") exceeds queue_capacity (", cfg.queue_capacity, ")");
    if (cfg.max_delay_us < 0.0 || cfg.handoff_us < 0.0 || cfg.slo_us < 0.0)
        ENMC_FATAL("serve: delays and SLO must be non-negative");
    if (cfg.backend.empty())
        ENMC_FATAL("serve: backend name must be non-empty");
    if (cfg.backend == "cluster")
        cluster::validate(cfg.cluster);
    if (cfg.backend == "auto")
        runtime::validate(cfg.planner);
}

} // namespace enmc::serve
