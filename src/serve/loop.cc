#include "serve/loop.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <tuple>

#include "common/logging.h"
#include "obs/trace.h"
#include "tensor/tune.h"

namespace enmc::serve {

namespace {

const ServeConfig &
validated(const ServeConfig &cfg)
{
    validate(cfg);
    return cfg;
}

} // namespace

/** Per-tenant SLO accounting ("serve.tenant.<name>"). */
struct ServeLoop::TenantStats
{
    explicit TenantStats(const std::string &tenant)
        : group("serve.tenant." + (tenant.empty() ? "default" : tenant)),
          requests(group.addCounter("requests", "requests finalized")),
          admitted(group.addCounter("admitted", "requests admitted")),
          violations(group.addCounter(
              "sloViolations",
              "measured requests whose latency exceeded the SLO")),
          latency(group.addScalar("latencyUs",
                                  "end-to-end latency, measured requests")),
          registration(group)
    {
    }

    StatGroup group;
    Counter &requests;
    Counter &admitted;
    Counter &violations;
    ScalarStat &latency;
    obs::StatRegistration registration;
};

ServeLoop::ServeLoop(const ServeConfig &cfg, const runtime::JobSpec &job,
                     const runtime::SystemConfig &sys)
    : cfg_(validated(cfg)),
      job_(job),
      dispatcher_(makeDispatcher(cfg_, job, sys)),
      queue_(cfg.queue_capacity),
      batcher_(cfg.max_batch, cfg.max_delay_us),
      stats_("serve.loop"),
      stat_requests_(stats_.addCounter("requests", "requests finalized")),
      stat_warmup_(stats_.addCounter(
          "warmupRequests",
          "admitted requests flagged warm-up (excluded from percentiles)")),
      stat_measured_(stats_.addCounter(
          "measuredRequests", "admitted requests counted in percentiles")),
      stat_rejected_(stats_.addCounter("rejected", "requests rejected")),
      stat_slo_violations_(stats_.addCounter(
          "sloViolations",
          "measured requests whose latency exceeded the SLO")),
      stat_queue_us_(stats_.addScalar(
          "timeInQueueUs", "admission-to-dispatch time per request")),
      stat_backend_us_(stats_.addScalar(
          "timeInBackendUs", "dispatch-to-completion time per request")),
      // Fixed shape regardless of slo_us: the registry merges
      // same-named groups across instances, so shapes must agree.
      stat_latency_hist_(stats_.addHistogram(
          "latencyUs", "end-to-end latency of admitted requests", 0.0, 1e6,
          40)),
      stat_cache_hits_(stats_.addCounter(
          "cacheHits",
          "measured requests served from the candidate cache")),
      stat_cache_misses_(stats_.addCounter(
          "cacheMisses", "measured requests that ran full screening")),
      stat_latency_hit_(stats_.addHistogram(
          "latencyHitUs", "end-to-end latency of measured cache hits", 0.0,
          1e6, 40)),
      stat_latency_miss_(stats_.addHistogram(
          "latencyMissUs", "end-to-end latency of measured cache misses",
          0.0, 1e6, 40)),
      stat_served_epoch_(stats_.addScalar(
          "servedEpoch",
          "screener snapshot epoch of each classified response")),
      stats_registration_(stats_)
{
    // Honour ENMC_TUNE_JSON for serve deployments that construct a loop
    // without going through EnmcSystem first (idempotent).
    tensor::tune::loadFromEnv();
}

ServeLoop::~ServeLoop()
{
    if (live_)
        stop();
}

void
ServeLoop::attachClassifier(runtime::EnmcClassifier &clf)
{
    ENMC_ASSERT(clf.calibrated(),
                "serve: attach a calibrated classifier (call calibrate() "
                "or load() first)");
    classifier_ = &clf;
    dispatcher_->attachClassifier(clf);
}

double
ServeLoop::batchServiceUs(uint64_t batch, uint64_t candidates)
{
    return cfg_.handoff_us + dispatcher_->serviceUs(batch, candidates);
}

double
ServeLoop::batchServiceUs(uint64_t batch, uint64_t candidates,
                          uint64_t screened)
{
    return cfg_.handoff_us +
           dispatcher_->serviceUs(batch, candidates, screened);
}

void
ServeLoop::scheduleSwap(uint64_t after_batches, std::function<void()> fn)
{
    ENMC_ASSERT(fn != nullptr, "scheduleSwap: null swap function");
    std::lock_guard<std::mutex> lock(swap_mutex_);
    swap_after_ = after_batches;
    swap_fn_ = std::move(fn);
    swap_pending_ = true;
}

void
ServeLoop::fireScheduledSwap()
{
    std::function<void()> fn;
    {
        std::lock_guard<std::mutex> lock(swap_mutex_);
        if (swap_pending_ && batches_dispatched_ >= swap_after_) {
            fn = std::move(swap_fn_);
            swap_pending_ = false;
        }
        ++batches_dispatched_;
    }
    // Outside the lock: the swap function may train a screener.
    if (fn)
        fn();
}

uint64_t
ServeLoop::batchCandidates(const std::vector<const Request *> &reqs) const
{
    if (reqs.empty())
        return job_.candidates;
    double sum = 0.0;
    for (const Request *r : reqs)
        sum += static_cast<double>(r->candidates ? r->candidates
                                                 : job_.candidates);
    return static_cast<uint64_t>(
        std::ceil(sum / static_cast<double>(reqs.size())));
}

size_t
ServeLoop::computeBatch(const std::vector<const Request *> &reqs,
                        std::vector<Response *> &resps)
{
    if (classifier_ == nullptr || !cfg_.compute_logits)
        return 0;
    // Timing-only requests (no hidden vector) ride along without logits.
    std::vector<size_t> with_hidden;
    std::vector<tensor::Vector> h_batch;
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (!reqs[i]->hidden.empty()) {
            with_hidden.push_back(i);
            h_batch.push_back(reqs[i]->hidden);
        }
    }
    if (h_batch.empty())
        return 0;
    std::vector<runtime::ClassifierOutput> outs =
        dispatcher_->forward(h_batch, cfg_.topk);
    ENMC_ASSERT(outs.size() == with_hidden.size(),
                "serve: classifier returned a short batch");
    size_t hits = 0;
    for (size_t j = 0; j < with_hidden.size(); ++j) {
        Response *r = resps[with_hidden[j]];
        r->probabilities = std::move(outs[j].probabilities);
        r->topk = std::move(outs[j].topk);
        r->candidates = std::move(outs[j].candidates);
        r->cache_hit = outs[j].cache_hit;
        r->snapshot_epoch = outs[j].snapshot_epoch;
        if (outs[j].cache_hit)
            ++hits;
    }
    return hits;
}

StatGroup &
ServeLoop::tenantStats(const std::string &tenant)
{
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        it = tenants_.emplace(tenant, std::make_unique<TenantStats>(tenant))
                 .first;
    return it->second->group;
}

void
ServeLoop::account(const Response &r)
{
    TenantStats *tenant = nullptr;
    {
        std::lock_guard<std::mutex> lock(tenants_mutex_);
        auto it = tenants_.find(r.tenant);
        if (it == tenants_.end())
            it = tenants_
                     .emplace(r.tenant,
                              std::make_unique<TenantStats>(r.tenant))
                     .first;
        tenant = it->second.get();
    }

    ++stat_requests_;
    ++tenant->requests;
    if (r.admission != Admission::Admitted) {
        ++stat_rejected_;
        return;
    }
    ++tenant->admitted;
    stat_queue_us_.sample(r.queueUs());
    stat_backend_us_.sample(r.backendUs());
    stat_latency_hist_.sample(r.latencyUs());
    if (r.warmup) {
        ++stat_warmup_;
        return;
    }
    ++stat_measured_;
    tenant->latency.sample(r.latencyUs());
    // Epoch 0 marks a timing-only response (no classified output); only
    // classified responses enter the hit/miss split so the two histogram
    // populations partition exactly the classified measured requests.
    if (r.snapshot_epoch > 0) {
        stat_served_epoch_.sample(static_cast<double>(r.snapshot_epoch));
        if (r.cache_hit) {
            ++stat_cache_hits_;
            stat_latency_hit_.sample(r.latencyUs());
        } else {
            ++stat_cache_misses_;
            stat_latency_miss_.sample(r.latencyUs());
        }
    }
    if (r.latencyUs() > cfg_.slo_us) {
        ++stat_slo_violations_;
        ++tenant->violations;
    }
}

// --- deterministic virtual-time serving --------------------------------

ServeReport
ServeLoop::replay(const ArrivalTrace &trace)
{
    return runVirtual(trace.requests, nullptr);
}

ServeReport
ServeLoop::runClosedLoop(
    size_t clients, size_t per_client,
    const std::function<Request(RequestId, size_t)> &make)
{
    ENMC_ASSERT(clients >= 1 && per_client >= 1,
                "closed loop needs >= 1 client and >= 1 request each");
    std::vector<size_t> remaining(clients, per_client - 1);
    std::map<RequestId, size_t> client_of;
    RequestId next_id = 0;

    auto issue = [&](size_t client, double at_us) {
        Request r = make(next_id, client);
        r.id = next_id;
        r.arrival_us = at_us;
        client_of[r.id] = client;
        ++next_id;
        return r;
    };

    std::vector<Request> initial;
    initial.reserve(clients);
    for (size_t c = 0; c < clients; ++c)
        initial.push_back(issue(c, 0.0));

    return runVirtual(
        initial,
        [&](const Response &resp, double now_us, std::vector<Request> &inject) {
            const size_t c = client_of.at(resp.id);
            if (remaining[c] == 0)
                return;
            --remaining[c];
            inject.push_back(issue(c, now_us));
        });
}

ServeReport
ServeLoop::runVirtual(
    std::vector<Request> initial,
    const std::function<void(const Response &, double, std::vector<Request> &)>
        &on_done)
{
    obs::Tracer &tracer = obs::Tracer::instance();

    // Request/response arenas; stable under injection.
    std::deque<Request> store;
    std::deque<Response> rstore;

    // Pending arrivals, ordered by (time, id): ties in time resolve in
    // id order so the schedule is a pure function of the trace.
    using ArrivalEv = std::tuple<double, RequestId, size_t>;
    std::priority_queue<ArrivalEv, std::vector<ArrivalEv>,
                        std::greater<ArrivalEv>>
        arrivals;
    auto inject = [&](Request r, double now_us) {
        ENMC_ASSERT(r.arrival_us >= now_us,
                    "closed loop injected an arrival in the past");
        const size_t idx = store.size();
        store.push_back(std::move(r));
        rstore.emplace_back();
        arrivals.emplace(store[idx].arrival_us, store[idx].id, idx);
    };
    for (Request &r : initial)
        inject(std::move(r), 0.0);

    std::deque<size_t> waiting;     // admitted, not yet dispatched
    std::vector<size_t> inflight;   // members of the busy batch
    bool busy = false;
    double busy_until = 0.0;
    double inflight_dispatch = 0.0;
    uint64_t inflight_cands = 0;
    size_t dispatched = 0;          // warm-up numbering (dispatch order)
    double now = 0.0;

    std::vector<Response> finalized;
    std::vector<Request> injected;
    auto finish = [&](const Response &resp) {
        account(resp);
        finalized.push_back(resp);
        if (on_done) {
            injected.clear();
            on_done(resp, now, injected);
            for (Request &r : injected)
                inject(std::move(r), now);
        }
    };

    auto tryDispatch = [&] {
        if (busy || waiting.empty())
            return;
        const bool draining = arrivals.empty();
        FlushReason reason;
        const double oldest = rstore[waiting.front()].admit_us;
        if (!batcher_.shouldFlush(waiting.size(), oldest, now, draining,
                                  reason))
            return;
        const size_t batch =
            std::min<size_t>(cfg_.max_batch, waiting.size());
        inflight.assign(waiting.begin(),
                        waiting.begin() + static_cast<ptrdiff_t>(batch));
        waiting.erase(waiting.begin(),
                      waiting.begin() + static_cast<ptrdiff_t>(batch));
        batcher_.recordFlush(batch, reason);
        queue_.recordReplayPop(batch);

        std::vector<const Request *> reqs;
        std::vector<Response *> resps;
        reqs.reserve(batch);
        resps.reserve(batch);
        for (size_t idx : inflight) {
            reqs.push_back(&store[idx]);
            resps.push_back(&rstore[idx]);
        }
        inflight_cands = batchCandidates(reqs);
        // Route before timing: a health transition this dispatch causes
        // (scripted kill, failover) must re-time this very batch.
        const std::string route =
            dispatcher_->routeBatch(batch, inflight_cands, now);
        // A scheduled hot-swap fires here, between batches: the swap
        // point is a deterministic function of the dispatch sequence.
        fireScheduledSwap();
        // Functional compute happens at dispatch (its outputs depend
        // only on the request contents, not on virtual time, so this is
        // observationally equivalent to computing at completion) — the
        // cache hit count then shapes this batch's service time. Flush
        // order is deterministic, so logits stay bit-identical run to
        // run; the slice simulation inside parallelizes (and merges in
        // slice order).
        const size_t hits = computeBatch(reqs, resps);
        const double service =
            batchServiceUs(batch, inflight_cands,
                           batch - std::min<size_t>(hits, batch));
        for (size_t idx : inflight) {
            rstore[idx].dispatch_us = now;
            rstore[idx].batch_size = static_cast<uint32_t>(batch);
            rstore[idx].backend = route;
            rstore[idx].warmup = dispatched < cfg_.warmup_requests;
            ++dispatched;
        }
        busy = true;
        inflight_dispatch = now;
        busy_until = now + service;
    };

    auto processArrival = [&](size_t idx) {
        const Request &req = store[idx];
        Response &resp = rstore[idx];
        resp.id = req.id;
        resp.tenant = req.tenant;
        resp.admit_us = req.arrival_us;
        Admission a = Admission::Admitted;
        if (classifier_ != nullptr && cfg_.compute_logits &&
            req.hidden.empty())
            a = Admission::RejectedInvalid;
        else
            a = admitDecision(waiting.size(), cfg_.queue_capacity, false);
        resp.admission = a;
        queue_.recordReplayAdmission(a, waiting.size());
        if (a == Admission::Admitted) {
            waiting.push_back(idx);
            return;
        }
        if (tracer.enabled())
            tracer.instant("reject", "serve", obs::kServePid, 0,
                           resp.admit_us,
                           {{"id", static_cast<double>(resp.id)}});
        finish(resp);
    };

    auto completeBatch = [&] {
        busy = false;
        // Logits were computed at dispatch (see tryDispatch); completion
        // only stamps times and finalizes.
        if (tracer.enabled())
            tracer.complete(
                "batch", "serve", obs::kServePid, 1, inflight_dispatch,
                now - inflight_dispatch,
                {{"size", static_cast<double>(inflight.size())},
                 {"candidates", static_cast<double>(inflight_cands)}});
        for (size_t idx : inflight) {
            Response &resp = rstore[idx];
            resp.complete_us = now;
            if (tracer.enabled())
                tracer.complete("queue", "serve", obs::kServePid, 0,
                                resp.admit_us, resp.queueUs(),
                                {{"id", static_cast<double>(resp.id)}});
            finish(resp);
        }
        inflight.clear();
    };

    while (true) {
        // All arrivals due now are admitted before any flush decision —
        // at equal timestamps, completion < arrival < deadline.
        while (!arrivals.empty() && std::get<0>(arrivals.top()) <= now) {
            const size_t idx = std::get<2>(arrivals.top());
            arrivals.pop();
            processArrival(idx);
        }
        tryDispatch();

        double next = 0.0;
        enum class Ev { None, Completion, Arrival, Deadline } kind = Ev::None;
        if (busy) {
            next = busy_until;
            kind = Ev::Completion;
        }
        if (!arrivals.empty()) {
            const double t = std::get<0>(arrivals.top());
            if (kind == Ev::None || t < next) {
                next = t;
                kind = Ev::Arrival;
            }
        }
        if (!busy && !waiting.empty()) {
            const double t =
                batcher_.deadlineUs(rstore[waiting.front()].admit_us);
            if (kind == Ev::None || t < next) {
                next = t;
                kind = Ev::Deadline;
            }
        }
        if (kind == Ev::None)
            break;
        now = std::max(now, next);
        if (kind == Ev::Completion)
            completeBatch();
        // Arrival/Deadline work happens at the top of the loop.
    }

    ENMC_ASSERT(waiting.empty() && !busy,
                "virtual serve loop exited with work pending");

    ServeReport report;
    report.responses = std::move(finalized);
    std::sort(report.responses.begin(), report.responses.end(),
              [](const Response &a, const Response &b) { return a.id < b.id; });
    return report;
}

// --- live threaded serving ---------------------------------------------

double
ServeLoop::wallUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - live_epoch_)
        .count();
}

void
ServeLoop::start()
{
    ENMC_ASSERT(!live_ && !dispatcher_thread_.joinable(),
                "serve loop already started (one start/stop per loop)");
    live_ = true;
    live_epoch_ = std::chrono::steady_clock::now();
    dispatcher_thread_ = std::thread([this] { dispatcherLoop(); });
    executor_ = std::thread([this] { executorLoop(); });
}

std::future<Response>
ServeLoop::submit(Request r)
{
    ENMC_ASSERT(live_, "submit() before start()");
    auto reply = std::make_shared<std::promise<Response>>();
    std::future<Response> fut = reply->get_future();
    r.arrival_us = wallUs();
    const RequestId id = r.id;
    const std::string tenant = r.tenant;
    const double admit_us = r.arrival_us;
    Admission a = Admission::Admitted;
    if (classifier_ != nullptr && cfg_.compute_logits && r.hidden.empty())
        a = Admission::RejectedInvalid;
    else
        a = queue_.tryPush(QueuedRequest{std::move(r), reply});
    if (a != Admission::Admitted) {
        Response resp;
        resp.id = id;
        resp.tenant = tenant;
        resp.admission = a;
        resp.admit_us = admit_us;
        account(resp);
        {
            std::lock_guard<std::mutex> lock(live_mutex_);
            live_responses_.push_back(resp);
        }
        reply->set_value(std::move(resp));
    }
    return fut;
}

std::future<Response>
ServeLoop::submitBlocking(Request r)
{
    ENMC_ASSERT(live_, "submitBlocking() before start()");
    auto reply = std::make_shared<std::promise<Response>>();
    std::future<Response> fut = reply->get_future();
    r.arrival_us = wallUs();
    const RequestId id = r.id;
    const std::string tenant = r.tenant;
    const double admit_us = r.arrival_us;
    const Admission a = queue_.pushBlocking(QueuedRequest{std::move(r), reply});
    if (a != Admission::Admitted) {
        Response resp;
        resp.id = id;
        resp.tenant = tenant;
        resp.admission = a;
        resp.admit_us = admit_us;
        account(resp);
        {
            std::lock_guard<std::mutex> lock(live_mutex_);
            live_responses_.push_back(resp);
        }
        reply->set_value(std::move(resp));
    }
    return fut;
}

std::future<Response>
ServeLoop::submitOrdered(Request r)
{
    ENMC_ASSERT(live_, "submitOrdered() before start()");
    auto reply = std::make_shared<std::promise<Response>>();
    std::future<Response> fut = reply->get_future();
    r.arrival_us = wallUs();
    const RequestId id = r.id;
    const std::string tenant = r.tenant;
    const double admit_us = r.arrival_us;
    const Admission a = queue_.pushOrdered(QueuedRequest{std::move(r), reply});
    if (a != Admission::Admitted) {
        Response resp;
        resp.id = id;
        resp.tenant = tenant;
        resp.admission = a;
        resp.admit_us = admit_us;
        account(resp);
        {
            std::lock_guard<std::mutex> lock(live_mutex_);
            live_responses_.push_back(resp);
        }
        reply->set_value(std::move(resp));
    }
    return fut;
}

void
ServeLoop::dispatcherLoop()
{
    const auto delay = std::chrono::microseconds(
        static_cast<int64_t>(cfg_.max_delay_us));
    while (true) {
        std::vector<QueuedRequest> batch;
        if (queue_.pop(cfg_.max_batch, delay, batch) == 0) {
            if (queue_.closed() && queue_.size() == 0)
                break;
            continue;
        }
        FlushReason reason = FlushReason::Deadline;
        {
            obs::TraceSpan span("batch.prepare", "serve");
            // Top up until the oldest popped request's deadline passes;
            // pop() never waits beyond the first request on its own.
            const double first_us = wallUs();
            while (batch.size() < cfg_.max_batch) {
                const double left = cfg_.max_delay_us - (wallUs() - first_us);
                if (left <= 0.0)
                    break;
                if (queue_.pop(cfg_.max_batch - batch.size(),
                               std::chrono::microseconds(
                                   static_cast<int64_t>(left)),
                               batch) == 0 &&
                    queue_.closed())
                    break;
            }
            if (batch.size() >= cfg_.max_batch)
                reason = FlushReason::Size;
            else if (queue_.closed() && queue_.size() == 0)
                reason = FlushReason::Drain;
            span.arg("size", static_cast<double>(batch.size()));
        }
        batcher_.recordFlush(batch.size(), reason);

        PreparedBatch prepared;
        std::vector<const Request *> reqs;
        reqs.reserve(batch.size());
        for (const QueuedRequest &qr : batch)
            reqs.push_back(&qr.request);
        prepared.candidates = batchCandidates(reqs);
        prepared.items = std::move(batch);
        prepared.reason = reason;

        std::unique_lock<std::mutex> lock(handoff_mutex_);
        handoff_cv_.wait(lock, [&] { return handoff_ == nullptr; });
        handoff_ = std::make_unique<PreparedBatch>(std::move(prepared));
        handoff_cv_.notify_all();
    }
    // Wake the executor for shutdown once the last batch is consumed.
    PreparedBatch sentinel;
    sentinel.stop = true;
    std::unique_lock<std::mutex> lock(handoff_mutex_);
    handoff_cv_.wait(lock, [&] { return handoff_ == nullptr; });
    handoff_ = std::make_unique<PreparedBatch>(std::move(sentinel));
    handoff_cv_.notify_all();
}

void
ServeLoop::executorLoop()
{
    size_t dispatched = 0; // warm-up numbering (dispatch order)
    while (true) {
        std::unique_ptr<PreparedBatch> prepared;
        {
            std::unique_lock<std::mutex> lock(handoff_mutex_);
            handoff_cv_.wait(lock, [&] { return handoff_ != nullptr; });
            prepared = std::move(handoff_);
            handoff_cv_.notify_all();
        }
        if (prepared->stop)
            break;

        const double dispatch_us = wallUs();
        const size_t batch = prepared->items.size();
        std::vector<const Request *> reqs;
        std::vector<Response> resps(batch);
        std::vector<Response *> resp_ptrs;
        reqs.reserve(batch);
        resp_ptrs.reserve(batch);
        for (size_t i = 0; i < batch; ++i) {
            const Request &req = prepared->items[i].request;
            reqs.push_back(&req);
            resps[i].id = req.id;
            resps[i].tenant = req.tenant;
            resps[i].admit_us = req.arrival_us;
            resps[i].dispatch_us = dispatch_us;
            resps[i].batch_size = static_cast<uint32_t>(batch);
            resps[i].warmup = dispatched < cfg_.warmup_requests;
            ++dispatched;
            resp_ptrs.push_back(&resps[i]);
        }
        {
            obs::TraceSpan span("batch.execute", "serve");
            span.arg("size", static_cast<double>(batch));
            span.arg("candidates", static_cast<double>(prepared->candidates));
            const std::string route = dispatcher_->routeBatch(
                batch, prepared->candidates, dispatch_us);
            for (size_t i = 0; i < batch; ++i)
                resps[i].backend = route;
            // Scheduled hot-swaps fire between batches on this thread,
            // never mid-batch; cache hits skip screening work for real
            // here, so the speedup is wall-clock, not modeled.
            fireScheduledSwap();
            computeBatch(reqs, resp_ptrs);
        }
        const double complete_us = wallUs();
        for (size_t i = 0; i < batch; ++i) {
            resps[i].complete_us = complete_us;
            account(resps[i]);
            {
                std::lock_guard<std::mutex> lock(live_mutex_);
                live_responses_.push_back(resps[i]);
            }
            prepared->items[i].reply->set_value(std::move(resps[i]));
        }
    }
}

ServeReport
ServeLoop::stop()
{
    ENMC_ASSERT(live_, "stop() before start()");
    queue_.close();
    dispatcher_thread_.join();
    executor_.join();
    live_ = false;

    ServeReport report;
    {
        std::lock_guard<std::mutex> lock(live_mutex_);
        report.responses = std::move(live_responses_);
        live_responses_.clear();
    }
    std::sort(report.responses.begin(), report.responses.end(),
              [](const Response &a, const Response &b) { return a.id < b.id; });
    return report;
}

} // namespace enmc::serve
