#include "serve/batcher.h"

#include <algorithm>

#include "common/logging.h"

namespace enmc::serve {

const char *
flushReasonName(FlushReason r)
{
    switch (r) {
      case FlushReason::Size: return "size";
      case FlushReason::Deadline: return "deadline";
      case FlushReason::Drain: return "drain";
    }
    return "?";
}

DynamicBatcher::DynamicBatcher(size_t max_batch, double max_delay_us)
    : max_batch_(max_batch),
      max_delay_us_(max_delay_us),
      stats_("serve.batcher"),
      stat_batches_(stats_.addCounter("batches", "batches dispatched")),
      stat_flush_size_(stats_.addCounter(
          "flushSize", "flushes triggered by a full batch")),
      stat_flush_deadline_(stats_.addCounter(
          "flushDeadline", "flushes triggered by the max-delay deadline")),
      stat_flush_drain_(stats_.addCounter(
          "flushDrain", "flushes triggered by drain/shutdown")),
      // Fixed shape regardless of max_batch: the registry merges
      // same-named groups across instances, so shapes must agree.
      stat_batch_size_(stats_.addHistogram(
          "batchSize", "requests per dispatched batch", 1.0, 65.0, 32)),
      stats_registration_(stats_)
{
    ENMC_ASSERT(max_batch_ >= 1, "max_batch must be >= 1");
    ENMC_ASSERT(max_delay_us_ >= 0.0, "max_delay_us must be >= 0");
}

bool
DynamicBatcher::shouldFlush(size_t queued, double oldest_us, double now_us,
                            bool draining, FlushReason &reason) const
{
    if (queued == 0)
        return false;
    if (queued >= max_batch_) {
        reason = FlushReason::Size;
        return true;
    }
    if (draining) {
        reason = FlushReason::Drain;
        return true;
    }
    if (now_us >= deadlineUs(oldest_us)) {
        reason = FlushReason::Deadline;
        return true;
    }
    return false;
}

void
DynamicBatcher::recordFlush(size_t batch_size, FlushReason reason)
{
    ++stat_batches_;
    stat_batch_size_.sample(static_cast<double>(batch_size));
    switch (reason) {
      case FlushReason::Size: ++stat_flush_size_; break;
      case FlushReason::Deadline: ++stat_flush_deadline_; break;
      case FlushReason::Drain: ++stat_flush_drain_; break;
    }
}

} // namespace enmc::serve
