#include "serve/dispatch.h"

#include "cluster/backend.h"
#include "common/logging.h"

namespace enmc::serve {

namespace {

/**
 * Screening-bypass deduction shared by the dispatchers: `screened` of
 * `batch` items ran the screener; the rest were cache hits whose
 * screening share comes off the batch's service time. The exact-row and
 * transfer phases are untouched (hits still read executor rows), and
 * s == batch returns `full_us` bitwise (no arithmetic at all).
 */
double
deductBypasses(double full_us, double screen_us, uint64_t batch,
               uint64_t screened)
{
    if (screened >= batch || batch == 0)
        return full_us;
    const double skipped = static_cast<double>(batch - screened) /
                           static_cast<double>(batch);
    const double us = full_us - screen_us * skipped;
    return us > 0.0 ? us : 0.0;
}

/** Screener-busy share of a timing result, in microseconds. */
double
screenerBusyUs(const runtime::TimingResult &t, double freq_hz)
{
    if (freq_hz <= 0.0)
        return 0.0;
    return static_cast<double>(t.rank.screener_busy) / freq_hz * 1e6;
}

} // namespace

BackendDispatcher::BackendDispatcher(
    std::unique_ptr<runtime::Backend> backend, const runtime::JobSpec &job,
    double freq_hz)
    : backend_(std::move(backend)), job_(job), freq_hz_(freq_hz)
{
}

double
BackendDispatcher::serviceUs(uint64_t batch, uint64_t candidates,
                             uint64_t screened)
{
    const auto key = std::make_pair(batch, candidates);
    {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return deductBypasses(it->second.full_us, it->second.screen_us,
                                  batch, screened);
    }
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    const runtime::TimingResult t = backend_->runJob(spec);
    const Timing timing{t.seconds * 1e6, screenerBusyUs(t, freq_hz_)};
    std::lock_guard<std::mutex> lock(memo_mutex_);
    memo_.emplace(key, timing);
    return deductBypasses(timing.full_us, timing.screen_us, batch,
                          screened);
}

std::vector<runtime::ClassifierOutput>
BackendDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    return classifier_->forward(h_batch, k);
}

PlannedDispatcher::PlannedDispatcher(
    std::unique_ptr<runtime::AutoBackend> backend,
    const runtime::JobSpec &job, double freq_hz)
    : backend_(std::move(backend)), job_(job), freq_hz_(freq_hz)
{
}

std::string
PlannedDispatcher::routeBatch(uint64_t batch, uint64_t candidates,
                              double /*now_us*/)
{
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    const runtime::AutoBackend::PlannedRun run = backend_->runPlanned(spec);
    std::lock_guard<std::mutex> lock(mutex_);
    has_pending_ = true;
    pending_batch_ = batch;
    pending_cands_ = candidates;
    pending_us_ = run.timing.seconds * 1e6;
    // Zero when the planner picked a backend without a screener stage
    // (CPU roofline): bypasses then deduct nothing, conservatively.
    pending_screen_us_ = screenerBusyUs(run.timing, freq_hz_);
    return run.backend;
}

double
PlannedDispatcher::serviceUs(uint64_t batch, uint64_t candidates,
                             uint64_t screened)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (has_pending_ && pending_batch_ == batch &&
            pending_cands_ == candidates) {
            has_pending_ = false;
            return deductBypasses(pending_us_, pending_screen_us_, batch,
                                  screened);
        }
    }
    // Standalone timing query (no preceding routeBatch): run a planned
    // dispatch of its own.
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    const runtime::AutoBackend::PlannedRun run = backend_->runPlanned(spec);
    return deductBypasses(run.timing.seconds * 1e6,
                          screenerBusyUs(run.timing, freq_hz_), batch,
                          screened);
}

std::vector<runtime::ClassifierOutput>
PlannedDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    // Functional outputs never depend on the planner's timing pick: the
    // classifier computes them, so logits are bit-identical to every
    // fixed-backend dispatcher by construction.
    return classifier_->forward(h_batch, k);
}

ClusterDispatcher::ClusterDispatcher(const cluster::ClusterConfig &cfg,
                                     const runtime::JobSpec &job)
    : router_(cfg, job)
{
}

std::string
ClusterDispatcher::name() const
{
    return "cluster(" + std::to_string(router_.nodeCount()) + "x" +
           router_.config().node_backend + ")";
}

std::string
ClusterDispatcher::routeBatch(uint64_t batch, uint64_t candidates,
                              double now_us)
{
    router_.routeBatch(batch, candidates, now_us);
    return name();
}

double
ClusterDispatcher::serviceUs(uint64_t batch, uint64_t candidates,
                             uint64_t /*screened*/)
{
    // No memo here: the router memoizes per health epoch, so a node kill
    // re-times subsequent batches instead of serving frozen numbers.
    // `screened` is ignored: the fabric does not support the candidate
    // cache (its forward path screens inside each node), so timing stays
    // conservative and exact.
    return router_.serviceUs(batch, candidates);
}

std::vector<runtime::ClassifierOutput>
ClusterDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    // Same ranks-per-node the classifier itself slices across, so a
    // 1-node cluster is bit-identical to the classifier's own forward.
    return router_.computeBatch(classifier_->teacher(),
                                classifier_->screener(), h_batch, k,
                                classifier_->options().ranks);
}

std::unique_ptr<Dispatcher>
makeDispatcher(const ServeConfig &cfg, const runtime::JobSpec &job,
               const runtime::SystemConfig &sys)
{
    // Keep the registry complete either way: "cluster" stays resolvable
    // for consumers that go through createBackend().
    cluster::registerClusterBackend();
    if (cfg.backend == "cluster") {
        cluster::ClusterConfig cc = cfg.cluster;
        cc.node = sys;
        return std::make_unique<ClusterDispatcher>(cc, job);
    }
    if (cfg.backend == "auto")
        return std::make_unique<PlannedDispatcher>(
            std::make_unique<runtime::AutoBackend>(sys, cfg.planner), job,
            sys.timing.freq_hz);
    return std::make_unique<BackendDispatcher>(
        runtime::createBackend(cfg.backend, sys), job, sys.timing.freq_hz);
}

} // namespace enmc::serve
