#include "serve/dispatch.h"

#include "cluster/backend.h"
#include "common/logging.h"

namespace enmc::serve {

BackendDispatcher::BackendDispatcher(
    std::unique_ptr<runtime::Backend> backend, const runtime::JobSpec &job)
    : backend_(std::move(backend)), job_(job)
{
}

double
BackendDispatcher::serviceUs(uint64_t batch, uint64_t candidates)
{
    const auto key = std::make_pair(batch, candidates);
    {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    const double us = backend_->runJob(spec).seconds * 1e6;
    std::lock_guard<std::mutex> lock(memo_mutex_);
    memo_.emplace(key, us);
    return us;
}

std::vector<runtime::ClassifierOutput>
BackendDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    return classifier_->forward(h_batch, k);
}

PlannedDispatcher::PlannedDispatcher(
    std::unique_ptr<runtime::AutoBackend> backend,
    const runtime::JobSpec &job)
    : backend_(std::move(backend)), job_(job)
{
}

std::string
PlannedDispatcher::routeBatch(uint64_t batch, uint64_t candidates,
                              double /*now_us*/)
{
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    const runtime::AutoBackend::PlannedRun run = backend_->runPlanned(spec);
    std::lock_guard<std::mutex> lock(mutex_);
    has_pending_ = true;
    pending_batch_ = batch;
    pending_cands_ = candidates;
    pending_us_ = run.timing.seconds * 1e6;
    return run.backend;
}

double
PlannedDispatcher::serviceUs(uint64_t batch, uint64_t candidates)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (has_pending_ && pending_batch_ == batch &&
            pending_cands_ == candidates) {
            has_pending_ = false;
            return pending_us_;
        }
    }
    // Standalone timing query (no preceding routeBatch): run a planned
    // dispatch of its own.
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    return backend_->runPlanned(spec).timing.seconds * 1e6;
}

std::vector<runtime::ClassifierOutput>
PlannedDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    // Functional outputs never depend on the planner's timing pick: the
    // classifier computes them, so logits are bit-identical to every
    // fixed-backend dispatcher by construction.
    return classifier_->forward(h_batch, k);
}

ClusterDispatcher::ClusterDispatcher(const cluster::ClusterConfig &cfg,
                                     const runtime::JobSpec &job)
    : router_(cfg, job)
{
}

std::string
ClusterDispatcher::name() const
{
    return "cluster(" + std::to_string(router_.nodeCount()) + "x" +
           router_.config().node_backend + ")";
}

std::string
ClusterDispatcher::routeBatch(uint64_t batch, uint64_t candidates,
                              double now_us)
{
    router_.routeBatch(batch, candidates, now_us);
    return name();
}

double
ClusterDispatcher::serviceUs(uint64_t batch, uint64_t candidates)
{
    // No memo here: the router memoizes per health epoch, so a node kill
    // re-times subsequent batches instead of serving frozen numbers.
    return router_.serviceUs(batch, candidates);
}

std::vector<runtime::ClassifierOutput>
ClusterDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    // Same ranks-per-node the classifier itself slices across, so a
    // 1-node cluster is bit-identical to the classifier's own forward.
    return router_.computeBatch(classifier_->teacher(),
                                classifier_->screener(), h_batch, k,
                                classifier_->options().ranks);
}

std::unique_ptr<Dispatcher>
makeDispatcher(const ServeConfig &cfg, const runtime::JobSpec &job,
               const runtime::SystemConfig &sys)
{
    // Keep the registry complete either way: "cluster" stays resolvable
    // for consumers that go through createBackend().
    cluster::registerClusterBackend();
    if (cfg.backend == "cluster") {
        cluster::ClusterConfig cc = cfg.cluster;
        cc.node = sys;
        return std::make_unique<ClusterDispatcher>(cc, job);
    }
    if (cfg.backend == "auto")
        return std::make_unique<PlannedDispatcher>(
            std::make_unique<runtime::AutoBackend>(sys, cfg.planner), job);
    return std::make_unique<BackendDispatcher>(
        runtime::createBackend(cfg.backend, sys), job);
}

} // namespace enmc::serve
