#include "serve/dispatch.h"

#include "cluster/backend.h"
#include "common/logging.h"

namespace enmc::serve {

BackendDispatcher::BackendDispatcher(
    std::unique_ptr<runtime::Backend> backend, const runtime::JobSpec &job)
    : backend_(std::move(backend)), job_(job)
{
}

double
BackendDispatcher::serviceUs(uint64_t batch, uint64_t candidates)
{
    const auto key = std::make_pair(batch, candidates);
    {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }
    runtime::JobSpec spec = job_;
    spec.batch = batch;
    spec.candidates = candidates;
    const double us = backend_->runJob(spec).seconds * 1e6;
    std::lock_guard<std::mutex> lock(memo_mutex_);
    memo_.emplace(key, us);
    return us;
}

std::vector<runtime::ClassifierOutput>
BackendDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    return classifier_->forward(h_batch, k);
}

ClusterDispatcher::ClusterDispatcher(const cluster::ClusterConfig &cfg,
                                     const runtime::JobSpec &job)
    : router_(cfg, job)
{
}

std::string
ClusterDispatcher::name() const
{
    return "cluster(" + std::to_string(router_.nodeCount()) + "x" +
           router_.config().node_backend + ")";
}

void
ClusterDispatcher::routeBatch(uint64_t batch, uint64_t candidates,
                              double now_us)
{
    router_.routeBatch(batch, candidates, now_us);
}

double
ClusterDispatcher::serviceUs(uint64_t batch, uint64_t candidates)
{
    // No memo here: the router memoizes per health epoch, so a node kill
    // re-times subsequent batches instead of serving frozen numbers.
    return router_.serviceUs(batch, candidates);
}

std::vector<runtime::ClassifierOutput>
ClusterDispatcher::forward(const std::vector<tensor::Vector> &h_batch,
                           size_t k)
{
    ENMC_ASSERT(classifier_ != nullptr,
                "dispatch: forward without an attached classifier");
    // Same ranks-per-node the classifier itself slices across, so a
    // 1-node cluster is bit-identical to the classifier's own forward.
    return router_.computeBatch(classifier_->teacher(),
                                classifier_->screener(), h_batch, k,
                                classifier_->options().ranks);
}

std::unique_ptr<Dispatcher>
makeDispatcher(const ServeConfig &cfg, const runtime::JobSpec &job,
               const runtime::SystemConfig &sys)
{
    // Keep the registry complete either way: "cluster" stays resolvable
    // for consumers that go through createBackend().
    cluster::registerClusterBackend();
    if (cfg.backend == "cluster") {
        cluster::ClusterConfig cc = cfg.cluster;
        cc.node = sys;
        return std::make_unique<ClusterDispatcher>(cc, job);
    }
    return std::make_unique<BackendDispatcher>(
        runtime::createBackend(cfg.backend, sys), job);
}

} // namespace enmc::serve
