/**
 * @file
 * A bounded MPMC request queue with explicit admission control.
 *
 * Producers choose their backpressure contract per call:
 *  - `tryPush` never blocks: a full queue rejects with
 *    `Admission::RejectedQueueFull` (the load-shedding front door);
 *  - `pushBlocking` waits for space (the cooperating-producer door) and
 *    only rejects on shutdown;
 *  - `pushOrdered` additionally serializes *admission order* by request
 *    id: request k's accept/reject decision is made strictly after
 *    request k-1's, no matter which producer thread delivers it. Replayed
 *    arrival traces therefore admit identically regardless of producer
 *    count — the property the determinism stress tests pin down.
 *
 * The single consumer side (`pop`) coalesces up to `max_n` requests per
 * call, waiting up to a deadline for the first one — the primitive the
 * dynamic batcher is built on.
 */

#ifndef ENMC_SERVE_QUEUE_H
#define ENMC_SERVE_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "obs/registry.h"
#include "serve/request.h"

namespace enmc::serve {

/** A request travelling through the live queue with its reply channel. */
struct QueuedRequest
{
    Request request;
    /** Fulfilled by the serve loop; invalid for trace-replay requests. */
    std::shared_ptr<std::promise<Response>> reply;
};

class RequestQueue
{
  public:
    explicit RequestQueue(size_t capacity);

    size_t capacity() const { return capacity_; }
    size_t size() const;
    bool closed() const;

    /** Non-blocking admission; full queue => RejectedQueueFull. */
    Admission tryPush(QueuedRequest item);

    /** Blocks while full (backpressure); rejects only on shutdown. */
    Admission pushBlocking(QueuedRequest item);

    /**
     * Like `tryPush`, but the admission decision for request id k is
     * made strictly after the decision for id k-1 (ids must be dense
     * from the id the queue was constructed to expect, default 0).
     * Blocks until it is this request's turn; any admission outcome
     * (including a rejection) passes the turn to id k+1.
     */
    Admission pushOrdered(QueuedRequest item);

    /**
     * Pop up to `max_n` requests. Blocks until at least one request is
     * available or `wait` elapses or the queue is closed; never waits
     * for the batch to fill beyond the first request. Returns the number
     * popped (0 = timeout or closed-and-drained).
     */
    size_t pop(size_t max_n, std::chrono::microseconds wait,
               std::vector<QueuedRequest> &out);

    /**
     * Close the queue: wakes every blocked producer/consumer; later
     * pushes reject with RejectedShutdown. Queued requests remain
     * poppable (drain-then-stop semantics).
     */
    void close();

    /**
     * Replay-mode bookkeeping: the virtual-time simulation models this
     * queue rather than pushing through it, but its decisions should land
     * in the same "serve.queue" stats. `depth` is the modeled occupancy
     * the decision was made against.
     */
    void recordReplayAdmission(Admission a, size_t depth);
    /** Replay-mode bookkeeping: `n` modeled requests left for a batch. */
    void recordReplayPop(size_t n);

    StatGroup &stats() { return stats_; }

  private:
    Admission admitLocked(QueuedRequest &&item,
                          std::unique_lock<std::mutex> &lock);
    void recordDecision(Admission a);

    const size_t capacity_;

    mutable std::mutex mutex_;
    std::condition_variable space_cv_;  //!< signals producers: slot free
    std::condition_variable items_cv_;  //!< signals consumers: item queued
    std::condition_variable order_cv_;  //!< signals pushOrdered: your turn
    std::deque<QueuedRequest> items_;
    RequestId next_ordered_id_ = 0;
    bool closed_ = false;

    StatGroup stats_;
    Counter &stat_admitted_;
    Counter &stat_rejected_full_;
    Counter &stat_rejected_shutdown_;
    Counter &stat_popped_;
    Histogram &stat_depth_;
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::serve

#endif // ENMC_SERVE_QUEUE_H
