/**
 * @file
 * The serve loop: request scheduling + dynamic batching in front of an
 * execution backend, in two modes sharing one policy.
 *
 * **Replay mode** (`replay`, `runClosedLoop`) is a deterministic
 * discrete-event simulation in *virtual* time: arrivals come from a
 * fixed trace (or are generated closed-loop), admission is decided
 * against the modeled queue occupancy, batches are cut by the
 * `DynamicBatcher` policy, and each batch's service time is
 * `handoff_us + backend.runJob(batch)` in the backend's simulated clock
 * domain. Everything is a pure function of (trace, config): latencies,
 * admission decisions and batch compositions are bit-identical for every
 * `ENMC_THREADS`. Functional outputs are computed per batch in flush
 * order (the slice simulation inside parallelizes on the thread pool and
 * merges in slice order), so logits are bit-identical too.
 *
 * **Live mode** (`start`/`submit*`/`stop`) runs the same queue and
 * batching policy with real threads and wall-clock deadlines: producers
 * push into the bounded MPMC `RequestQueue`, a dispatcher thread cuts
 * batches and *prepares* them (feature gather + job shaping) while an
 * executor thread runs the previous batch — a two-stage pipeline whose
 * heavy compute lands on the process-wide `ThreadPool`. Per-request
 * probabilities are batch-composition-invariant (batched kernels are
 * bit-identical per query to their single-query forms), so live results
 * match replay results request for request even though wall-clock batch
 * boundaries are not reproducible.
 */

#ifndef ENMC_SERVE_LOOP_H
#define ENMC_SERVE_LOOP_H

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/registry.h"
#include "runtime/api.h"
#include "runtime/system.h"
#include "serve/batcher.h"
#include "serve/config.h"
#include "serve/dispatch.h"
#include "serve/queue.h"
#include "serve/report.h"
#include "serve/request.h"

namespace enmc::serve {

class ServeLoop
{
  public:
    /**
     * @param cfg  Serving policy (queue/batch/SLO/warm-up knobs).
     * @param job  Full-scale job dimensions timing is computed at;
     *             `batch` and `candidates` are overridden per batch.
     * @param sys  System configuration the timing backend is built with.
     */
    ServeLoop(const ServeConfig &cfg, const runtime::JobSpec &job,
              const runtime::SystemConfig &sys = runtime::SystemConfig{});
    ~ServeLoop();

    ServeLoop(const ServeLoop &) = delete;
    ServeLoop &operator=(const ServeLoop &) = delete;

    /**
     * Attach the functional-scale classifier batches are served from.
     * Must be calibrated and outlive the loop. Without one (or with
     * `compute_logits` off) the loop serves timing-only responses.
     */
    void attachClassifier(runtime::EnmcClassifier &clf);

    const ServeConfig &config() const { return cfg_; }

    // --- deterministic virtual-time serving ---------------------------

    /** Serve a fixed arrival schedule (open-loop). */
    ServeReport replay(const ArrivalTrace &trace);

    /**
     * Closed-loop serving: `clients` clients each keep exactly one
     * request in flight, issuing the next the instant the previous
     * completes, `per_client` times. `make(id, client)` builds request
     * bodies (id/arrival are overwritten by the loop).
     */
    ServeReport runClosedLoop(
        size_t clients, size_t per_client,
        const std::function<Request(RequestId, size_t)> &make);

    // --- live threaded serving ----------------------------------------

    /** Spawn the dispatcher/executor pipeline. */
    void start();

    /** Non-blocking admission (load shedding). */
    std::future<Response> submit(Request r);
    /** Blocking admission (backpressure). */
    std::future<Response> submitBlocking(Request r);
    /** Admission serialized by request id (see RequestQueue). */
    std::future<Response> submitOrdered(Request r);

    /** Close, drain, join; the report covers every submitted request. */
    ServeReport stop();

    /**
     * Simulated service time (us) of a batch: per-offload handoff plus
     * the dispatcher's batched service latency. Deterministic given the
     * dispatch history (a single backend memoizes on (batch, candidates);
     * the cluster re-times after every health transition).
     */
    double batchServiceUs(uint64_t batch, uint64_t candidates);

    /**
     * Cache-aware variant: `screened` of the batch's items ran full
     * screening; the rest were candidate-cache bypasses whose screener
     * share the dispatcher deducts. `screened == batch` is bit-identical
     * to the two-argument form.
     */
    double batchServiceUs(uint64_t batch, uint64_t candidates,
                          uint64_t screened);

    /**
     * Run `fn` once, immediately before the functional compute of the
     * first batch whose dispatch index is >= `after_batches` (0 = before
     * the very first batch). This is the online hot-swap hook: `fn`
     * typically calls `EnmcClassifier::swapScreener`/`refresh`, so in
     * replay mode the swap point is a deterministic function of (trace,
     * after_batches), and in live mode it fires on the executor thread
     * between batches — never mid-batch. One pending swap at a time; a
     * second call overwrites an unfired one.
     */
    void scheduleSwap(uint64_t after_batches, std::function<void()> fn);

    /** Mean per-request candidate budget of a batch (job default for
     *  requests that left `candidates` at 0), rounded up. */
    uint64_t batchCandidates(const std::vector<const Request *> &reqs) const;

    RequestQueue &queue() { return queue_; }
    DynamicBatcher &batcher() { return batcher_; }
    StatGroup &stats() { return stats_; }
    Dispatcher &dispatcher() { return *dispatcher_; }
    /** The cluster fabric batches route through; nullptr off-cluster. */
    cluster::ClusterRouter *clusterRouter()
    {
        return dispatcher_->router();
    }
    /** The offload planner batches route through; nullptr off-auto. */
    runtime::OffloadPlanner *planner() { return dispatcher_->planner(); }

  private:
    struct PreparedBatch
    {
        std::vector<QueuedRequest> items;
        uint64_t candidates = 0;
        FlushReason reason = FlushReason::Drain;
        bool stop = false;            //!< executor shutdown sentinel
    };

    /**
     * Shared discrete-event core behind replay()/runClosedLoop().
     * `on_done(resp, now, inject)` fires as each request finalizes
     * (completion or rejection) and may append follow-up arrivals at
     * times >= now to `inject` — that is how the closed loop closes.
     */
    ServeReport runVirtual(
        std::vector<Request> initial,
        const std::function<void(const Response &, double,
                                 std::vector<Request> &)> &on_done);

    /**
     * Functional forward of one batch; fills probabilities/topk plus the
     * per-response `cache_hit`/`snapshot_epoch` stamps. Returns how many
     * of the computed responses were candidate-cache hits (0 for
     * timing-only batches), which feeds the screened-aware timing.
     */
    size_t computeBatch(const std::vector<const Request *> &reqs,
                        std::vector<Response *> &resps);

    /** Fire a due scheduled swap, then count this batch as dispatched. */
    void fireScheduledSwap();

    /** Tally one finished response into loop + tenant stats. */
    void account(const Response &r);
    StatGroup &tenantStats(const std::string &tenant);

    void dispatcherLoop();
    void executorLoop();
    double wallUs() const;

    ServeConfig cfg_;
    runtime::JobSpec job_;
    std::unique_ptr<Dispatcher> dispatcher_;
    runtime::EnmcClassifier *classifier_ = nullptr;

    RequestQueue queue_;
    DynamicBatcher batcher_;

    // Live-mode pipeline.
    bool live_ = false;
    std::thread dispatcher_thread_;
    std::thread executor_;
    std::mutex handoff_mutex_;
    std::condition_variable handoff_cv_;
    std::unique_ptr<PreparedBatch> handoff_;   //!< depth-1 pipeline slot
    std::chrono::steady_clock::time_point live_epoch_;
    std::mutex live_mutex_;                    //!< guards live_responses_
    std::vector<Response> live_responses_;

    // Scheduled online hot-swap (see scheduleSwap()).
    std::mutex swap_mutex_;
    std::function<void()> swap_fn_;
    uint64_t swap_after_ = 0;
    bool swap_pending_ = false;
    uint64_t batches_dispatched_ = 0;

    // Loop-level stats ("serve.loop").
    StatGroup stats_;
    Counter &stat_requests_;
    Counter &stat_warmup_;
    Counter &stat_measured_;
    Counter &stat_rejected_;
    Counter &stat_slo_violations_;
    ScalarStat &stat_queue_us_;
    ScalarStat &stat_backend_us_;
    Histogram &stat_latency_hist_;
    Counter &stat_cache_hits_;
    Counter &stat_cache_misses_;
    Histogram &stat_latency_hit_;
    Histogram &stat_latency_miss_;
    ScalarStat &stat_served_epoch_;
    struct TenantStats;
    std::map<std::string, std::unique_ptr<TenantStats>> tenants_;
    std::mutex tenants_mutex_;
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::serve

#endif // ENMC_SERVE_LOOP_H
