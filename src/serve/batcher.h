/**
 * @file
 * The dynamic-batching policy: when does a set of queued requests become
 * a backend call?
 *
 * Two triggers, evaluated oldest-request-first:
 *  - **size**: `max_batch` requests are waiting — flush immediately (the
 *    backend amortizes its per-offload handoff and weight streaming best
 *    at the largest batch);
 *  - **deadline**: the oldest request has waited `max_delay_us` — flush
 *    whatever is there (bounding the latency cost a lonely request pays
 *    for batching).
 * A third reason, **drain**, covers shutdown: no more arrivals can ever
 * come, so waiting for either trigger would be pure latency.
 *
 * The policy itself is a pure function of (queued count, oldest arrival,
 * now) — it holds no clock and no thread, which is what lets the live
 * loop and the virtual-time replay share it verbatim and what makes it
 * unit-testable without sleeping.
 */

#ifndef ENMC_SERVE_BATCHER_H
#define ENMC_SERVE_BATCHER_H

#include <cstddef>
#include <limits>

#include "common/stats.h"
#include "obs/registry.h"

namespace enmc::serve {

/** Why a batch was flushed. */
enum class FlushReason : uint8_t {
    Size = 0,   //!< max_batch requests coalesced
    Deadline,   //!< oldest request hit max_delay_us
    Drain,      //!< shutdown/end-of-trace: no further arrivals possible
};

const char *flushReasonName(FlushReason r);

class DynamicBatcher
{
  public:
    DynamicBatcher(size_t max_batch, double max_delay_us);

    size_t maxBatch() const { return max_batch_; }
    double maxDelayUs() const { return max_delay_us_; }

    /** The instant a batch whose oldest member arrived at `oldest_us`
     *  must flush even if under-full. */
    double deadlineUs(double oldest_us) const
    {
        return oldest_us + max_delay_us_;
    }

    /**
     * Flush decision for a queue of `queued` requests whose oldest
     * member was admitted at `oldest_us`, evaluated at `now_us`.
     * `draining` = no further arrivals are possible.
     * Returns true and sets `reason` when a batch should be cut now.
     */
    bool shouldFlush(size_t queued, double oldest_us, double now_us,
                     bool draining, FlushReason &reason) const;

    /** Record a cut batch (size histogram + per-reason counters). */
    void recordFlush(size_t batch_size, FlushReason reason);

    StatGroup &stats() { return stats_; }

  private:
    const size_t max_batch_;
    const double max_delay_us_;

    StatGroup stats_;
    Counter &stat_batches_;
    Counter &stat_flush_size_;
    Counter &stat_flush_deadline_;
    Counter &stat_flush_drain_;
    Histogram &stat_batch_size_;
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::serve

#endif // ENMC_SERVE_BATCHER_H
