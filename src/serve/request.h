/**
 * @file
 * The request/response vocabulary of the serving layer.
 *
 * A `Request` is one classification query: a hidden vector at functional
 * scale (for logits), a candidate budget at full scale (for timing), a
 * tenant tag (for per-tenant SLO accounting) and an arrival timestamp.
 * Timestamps are *virtual* microseconds in replay mode (the deterministic
 * discrete-event path) and wall-clock microseconds in live mode; a
 * `Response` carries the admit/dispatch/complete triple in the same
 * domain, so time-in-queue and time-in-backend fall out by subtraction.
 *
 * Admission is explicit: a rejected request still produces a `Response`
 * whose `admission` names the reason (reject-with-reason is the
 * backpressure contract — callers can distinguish an overloaded queue
 * from a shutting-down server and react differently).
 */

#ifndef ENMC_SERVE_REQUEST_H
#define ENMC_SERVE_REQUEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace enmc::serve {

using RequestId = uint64_t;

/** Why a request was (not) admitted. */
enum class Admission : uint8_t {
    Admitted = 0,
    RejectedQueueFull,  //!< bounded queue at capacity (backpressure)
    RejectedShutdown,   //!< server closed while the request waited
    RejectedInvalid,    //!< malformed request (e.g. empty feature vector)
};

const char *admissionName(Admission a);

/** The pure admission policy, shared by the live queue and the replay
 *  simulation so both paths reject for identical reasons. */
inline Admission
admitDecision(size_t occupancy, size_t capacity, bool closed)
{
    if (closed)
        return Admission::RejectedShutdown;
    if (occupancy >= capacity)
        return Admission::RejectedQueueFull;
    return Admission::Admitted;
}

/** One classification query. */
struct Request
{
    RequestId id = 0;           //!< unique, dense, assigned in submit order
    std::string tenant;         //!< empty = the default tenant
    double arrival_us = 0.0;    //!< virtual arrival time (replay mode)
    /** Hidden vector at functional scale (empty = timing-only request). */
    tensor::Vector hidden;
    /** Per-request candidate budget at full scale (0 = job default). */
    uint64_t candidates = 0;
};

/** One served (or rejected) request's outcome. */
struct Response
{
    RequestId id = 0;
    Admission admission = Admission::Admitted;
    /** Excluded from the report's latency percentiles when set. */
    bool warmup = false;
    std::string tenant;

    double admit_us = 0.0;      //!< admission into the queue
    double dispatch_us = 0.0;   //!< handed to the backend (leaves queue)
    double complete_us = 0.0;   //!< batch finished; response ready
    uint32_t batch_size = 0;    //!< size of the batch that served it
    /** Dispatch route that served the batch (the planner's pick under
     *  `--backend=auto`; the fixed backend/cluster name otherwise).
     *  Empty for rejected requests. */
    std::string backend;

    double queueUs() const { return dispatch_us - admit_us; }
    double backendUs() const { return complete_us - dispatch_us; }
    double latencyUs() const { return complete_us - admit_us; }

    /** Mixed-accuracy probabilities (empty for timing-only serving). */
    tensor::Vector probabilities;
    std::vector<uint32_t> topk;
    std::vector<uint32_t> candidates;

    /** True when the candidate cache served this request's screening. */
    bool cache_hit = false;
    /** Screener snapshot epoch this response was computed under (0 for
     *  timing-only or rejected requests). */
    uint64_t snapshot_epoch = 0;
};

/** A fixed arrival schedule: requests sorted by (arrival_us, id). */
struct ArrivalTrace
{
    std::vector<Request> requests;

    /** Sorts by (arrival_us, id); call after building out of order. */
    void normalize();
};

} // namespace enmc::serve

#endif // ENMC_SERVE_REQUEST_H
