/**
 * @file
 * The serve loop's dispatch target, abstracted: one loop (queueing,
 * batching, SLO accounting — see serve/loop.h) in front of either a
 * single registry backend or a routed cluster fabric.
 *
 * `Dispatcher` is the seam: `serviceUs` is the simulated backend time of
 * one batch (the loop adds its own per-offload handoff), `forward` is
 * the functional execution, and `routeBatch` is the per-dispatch routing
 * hook — a no-op for a single backend, a scatter/gather fan-out (plus
 * any scripted node kill) for a cluster. The loop calls `routeBatch`
 * exactly once per dispatched batch in *both* serving modes, so replay
 * and live runs see the same routing sequence for the same batch
 * sequence.
 */

#ifndef ENMC_SERVE_DISPATCH_H
#define ENMC_SERVE_DISPATCH_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "runtime/api.h"
#include "runtime/backend.h"
#include "runtime/planner.h"
#include "serve/config.h"

namespace enmc::serve {

class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    virtual std::string name() const = 0;

    /** The functional-scale classifier `forward` serves from. */
    virtual void attachClassifier(runtime::EnmcClassifier &clf)
    {
        classifier_ = &clf;
    }

    /**
     * Per-dispatch routing hook, called exactly once per dispatched
     * batch (replay and live). Returns the route that will serve the
     * batch — the fixed backend name for single-backend dispatch, the
     * fabric name for a cluster fan-out, the planner's per-batch pick
     * for `"auto"` — recorded on every response of the batch.
     */
    virtual std::string routeBatch(uint64_t /*batch*/,
                                   uint64_t /*candidates*/,
                                   double /*now_us*/)
    {
        return name();
    }

    /**
     * Simulated backend time (us) of one batch, excluding the serve
     * loop's own handoff. Deterministic given the dispatch history.
     *
     * `screened` is how many of the batch's items actually ran full
     * screening (the rest were candidate-cache bypasses that skip the
     * screener entirely and only touch exact executor rows host-side).
     * `screened == batch` — the only value possible with the cache off —
     * must return the exact pre-cache timing; implementations model a
     * bypass as deducting the screener-busy share of the skipped items
     * and may conservatively ignore `screened` (the cluster does).
     */
    virtual double serviceUs(uint64_t batch, uint64_t candidates,
                             uint64_t screened) = 0;

    /** Cache-off convenience: every item screens. */
    double serviceUs(uint64_t batch, uint64_t candidates)
    {
        return serviceUs(batch, candidates, batch);
    }

    /** Functional forward of a batch (requires an attached classifier). */
    virtual std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) = 0;

    /** The cluster fabric behind this dispatcher, if any. */
    virtual cluster::ClusterRouter *router() { return nullptr; }

    /** The offload planner behind this dispatcher, if any. */
    virtual runtime::OffloadPlanner *planner() { return nullptr; }

  protected:
    runtime::EnmcClassifier *classifier_ = nullptr;
};

/** Classic dispatch: every batch goes to one registry backend. */
class BackendDispatcher : public Dispatcher
{
  public:
    BackendDispatcher(std::unique_ptr<runtime::Backend> backend,
                      const runtime::JobSpec &job, double freq_hz);

    std::string name() const override { return backend_->name(); }
    using Dispatcher::serviceUs;
    double serviceUs(uint64_t batch, uint64_t candidates,
                     uint64_t screened) override;
    std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) override;

  private:
    std::unique_ptr<runtime::Backend> backend_;
    runtime::JobSpec job_;
    double freq_hz_;
    /**
     * The timing model is deterministic in (batch, candidates); the memo
     * makes replay O(distinct shapes) backend runs. Each entry keeps the
     * full-batch time plus the screener-busy share so bypassed items
     * deduct their screening time linearly: us(B, C, s) =
     * full − screen · (B − s) / B, exactly `full` at s == B.
     */
    struct Timing
    {
        double full_us = 0.0;
        double screen_us = 0.0;
    };
    std::map<std::pair<uint64_t, uint64_t>, Timing> memo_;
    std::mutex memo_mutex_;
};

/**
 * Adaptive dispatch: every batch is routed by the offload planner to the
 * argmin-cost candidate backend. Unlike `BackendDispatcher` there is no
 * (batch, candidates) service-time memo here — that would freeze the
 * planner's first decision per shape forever; the `AutoBackend` memoizes
 * per (backend, shape) underneath instead, so re-planning stays cheap.
 */
class PlannedDispatcher : public Dispatcher
{
  public:
    PlannedDispatcher(std::unique_ptr<runtime::AutoBackend> backend,
                      const runtime::JobSpec &job, double freq_hz);

    std::string name() const override { return "auto"; }
    std::string routeBatch(uint64_t batch, uint64_t candidates,
                           double now_us) override;
    using Dispatcher::serviceUs;
    double serviceUs(uint64_t batch, uint64_t candidates,
                     uint64_t screened) override;
    std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) override;
    runtime::OffloadPlanner *planner() override
    {
        return &backend_->planner();
    }

  private:
    std::unique_ptr<runtime::AutoBackend> backend_;
    runtime::JobSpec job_;
    double freq_hz_;
    // routeBatch caches its planned service time; the serve loop's
    // immediately following serviceUs call consumes it so one dispatched
    // batch is exactly one planner decision.
    std::mutex mutex_;
    bool has_pending_ = false;
    uint64_t pending_batch_ = 0;
    uint64_t pending_cands_ = 0;
    double pending_us_ = 0.0;
    double pending_screen_us_ = 0.0;
};

/** Cluster dispatch: batches scatter/gather across the shard fabric. */
class ClusterDispatcher : public Dispatcher
{
  public:
    ClusterDispatcher(const cluster::ClusterConfig &cfg,
                      const runtime::JobSpec &job);

    std::string name() const override;
    std::string routeBatch(uint64_t batch, uint64_t candidates,
                           double now_us) override;
    using Dispatcher::serviceUs;
    double serviceUs(uint64_t batch, uint64_t candidates,
                     uint64_t screened) override;
    std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) override;
    cluster::ClusterRouter *router() override { return &router_; }

  private:
    cluster::ClusterRouter router_;
};

/**
 * Build the dispatcher `cfg.backend` names: `"cluster"` builds the
 * routed fabric from `cfg.cluster` (with `sys` as every node's local
 * system); `"auto"` builds the adaptive planner dispatch from
 * `cfg.planner`; anything else resolves through the backend registry.
 */
std::unique_ptr<Dispatcher> makeDispatcher(const ServeConfig &cfg,
                                           const runtime::JobSpec &job,
                                           const runtime::SystemConfig &sys);

} // namespace enmc::serve

#endif // ENMC_SERVE_DISPATCH_H
