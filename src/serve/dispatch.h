/**
 * @file
 * The serve loop's dispatch target, abstracted: one loop (queueing,
 * batching, SLO accounting — see serve/loop.h) in front of either a
 * single registry backend or a routed cluster fabric.
 *
 * `Dispatcher` is the seam: `serviceUs` is the simulated backend time of
 * one batch (the loop adds its own per-offload handoff), `forward` is
 * the functional execution, and `routeBatch` is the per-dispatch routing
 * hook — a no-op for a single backend, a scatter/gather fan-out (plus
 * any scripted node kill) for a cluster. The loop calls `routeBatch`
 * exactly once per dispatched batch in *both* serving modes, so replay
 * and live runs see the same routing sequence for the same batch
 * sequence.
 */

#ifndef ENMC_SERVE_DISPATCH_H
#define ENMC_SERVE_DISPATCH_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "runtime/api.h"
#include "runtime/backend.h"
#include "serve/config.h"

namespace enmc::serve {

class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    virtual std::string name() const = 0;

    /** The functional-scale classifier `forward` serves from. */
    virtual void attachClassifier(runtime::EnmcClassifier &clf)
    {
        classifier_ = &clf;
    }

    /**
     * Per-dispatch routing hook, called exactly once per dispatched
     * batch (replay and live). Single-backend dispatch has nothing to
     * route; the cluster fans the batch out across shard replicas.
     */
    virtual void routeBatch(uint64_t /*batch*/, uint64_t /*candidates*/,
                            double /*now_us*/)
    {
    }

    /** Simulated backend time (us) of one batch, excluding the serve
     *  loop's own handoff. Deterministic given the dispatch history. */
    virtual double serviceUs(uint64_t batch, uint64_t candidates) = 0;

    /** Functional forward of a batch (requires an attached classifier). */
    virtual std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) = 0;

    /** The cluster fabric behind this dispatcher, if any. */
    virtual cluster::ClusterRouter *router() { return nullptr; }

  protected:
    runtime::EnmcClassifier *classifier_ = nullptr;
};

/** Classic dispatch: every batch goes to one registry backend. */
class BackendDispatcher : public Dispatcher
{
  public:
    BackendDispatcher(std::unique_ptr<runtime::Backend> backend,
                      const runtime::JobSpec &job);

    std::string name() const override { return backend_->name(); }
    double serviceUs(uint64_t batch, uint64_t candidates) override;
    std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) override;

  private:
    std::unique_ptr<runtime::Backend> backend_;
    runtime::JobSpec job_;
    // The timing model is deterministic in (batch, candidates); the memo
    // makes replay O(distinct shapes) backend runs.
    std::map<std::pair<uint64_t, uint64_t>, double> memo_;
    std::mutex memo_mutex_;
};

/** Cluster dispatch: batches scatter/gather across the shard fabric. */
class ClusterDispatcher : public Dispatcher
{
  public:
    ClusterDispatcher(const cluster::ClusterConfig &cfg,
                      const runtime::JobSpec &job);

    std::string name() const override;
    void routeBatch(uint64_t batch, uint64_t candidates,
                    double now_us) override;
    double serviceUs(uint64_t batch, uint64_t candidates) override;
    std::vector<runtime::ClassifierOutput>
    forward(const std::vector<tensor::Vector> &h_batch, size_t k) override;
    cluster::ClusterRouter *router() override { return &router_; }

  private:
    cluster::ClusterRouter router_;
};

/**
 * Build the dispatcher `cfg.backend` names: `"cluster"` builds the
 * routed fabric from `cfg.cluster` (with `sys` as every node's local
 * system); anything else resolves through the backend registry.
 */
std::unique_ptr<Dispatcher> makeDispatcher(const ServeConfig &cfg,
                                           const runtime::JobSpec &job,
                                           const runtime::SystemConfig &sys);

} // namespace enmc::serve

#endif // ENMC_SERVE_DISPATCH_H
