#include "cluster/backend.h"

#include "common/logging.h"

namespace enmc::cluster {

ClusterBackend::ClusterBackend(const ClusterConfig &cfg)
    : Backend(cfg.node), cluster_cfg_(cfg)
{
    validate(cluster_cfg_);
}

runtime::BackendCapabilities
ClusterBackend::capabilities() const
{
    runtime::BackendCapabilities caps;
    caps.timing = true;
    caps.functional = false; // functional batches go through the router
    caps.description = std::to_string(cluster_cfg_.nodes) +
                       "-node sharded ENMC cluster (replication " +
                       std::to_string(cluster_cfg_.replication) + ", " +
                       cluster_cfg_.node_backend + " nodes)";
    return caps;
}

arch::RankResult
ClusterBackend::runSlice(const arch::RankTask &) const
{
    ENMC_PANIC("the cluster backend has no single-rank slice view; "
               "use runJob or route through a ClusterRouter");
}

ClusterRouter &
ClusterBackend::router(const runtime::JobSpec &spec) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routers_.find(spec.categories);
    if (it == routers_.end())
        it = routers_
                 .emplace(spec.categories, std::make_unique<ClusterRouter>(
                                               cluster_cfg_, spec))
                 .first;
    return *it->second;
}

runtime::TimingResult
ClusterBackend::runJob(const runtime::JobSpec &spec) const
{
    runtime::TimingResult res;
    res.seconds = router(spec).serviceUs(spec.batch, spec.candidates) / 1e6;
    res.ranks = cluster_cfg_.nodes * cluster_cfg_.node.totalRanks();
    return res;
}

void
registerClusterBackend()
{
    static const bool registered = [] {
        runtime::BackendRegistry::instance().add(
            "cluster", [](const runtime::SystemConfig &sys) {
                ClusterConfig base;
                base.node = sys;
                return std::make_unique<ClusterBackend>(
                    clusterConfigFromEnv(base));
            });
        return true;
    }();
    (void)registered;
}

namespace {
// Best-effort self-registration for binaries that link this TU anyway.
const bool kRegistered = (registerClusterBackend(), true);
} // namespace

} // namespace enmc::cluster
