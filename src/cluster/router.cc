#include "cluster/router.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::cluster {

ClusterRouter::ClusterRouter(const ClusterConfig &cfg,
                             const runtime::JobSpec &job)
    : cfg_(cfg), job_(job), stats_("cluster.router"),
      stat_batches_(stats_.addCounter("routedBatches",
                                      "batches routed through the cluster")),
      stat_shard_dispatches_(stats_.addCounter(
          "shardDispatches",
          "shard-batches dispatched to nodes (fan-out total)")),
      stat_reroutes_(stats_.addCounter(
          "reroutes", "shard dispatches whose primary replica was dead")),
      stat_dead_dispatches_(stats_.addCounter(
          "deadDispatches", "dispatches sent to a dead node (must be 0)")),
      stat_kills_(stats_.addCounter("nodeKills", "nodes declared dead")),
      stat_live_nodes_(stats_.addScalar(
          "liveNodes", "live nodes observed at each routed batch")),
      stat_fanout_(stats_.addHistogram(
          "fanOut", "owning shards dispatched per routed batch", 0.0, 64.0,
          32)),
      stats_registration_(stats_)
{
    validate(cfg_);
    ENMC_ASSERT(job_.categories >= 1,
                "cluster router needs a non-empty label space");
    shards_ = runtime::RankPartitioner::partition(0, job_.categories,
                                                  cfg_.nodes);
    nodes_.reserve(cfg_.nodes);
    for (uint64_t n = 0; n < cfg_.nodes; ++n)
        nodes_.push_back(std::make_unique<ClusterNode>(
            static_cast<uint32_t>(n), cfg_));
}

std::vector<uint32_t>
ClusterRouter::replicasOf(size_t shard) const
{
    ENMC_ASSERT(shard < shards_.size(), "replica query past the shard map");
    // Chained declustering: shard s lives on nodes s, s+1, ... (mod N).
    std::vector<uint32_t> replicas;
    replicas.reserve(cfg_.replication);
    for (uint64_t r = 0; r < cfg_.replication; ++r)
        replicas.push_back(
            static_cast<uint32_t>((shard + r) % nodes_.size()));
    return replicas;
}

uint64_t
ClusterRouter::liveNodeCount() const
{
    uint64_t live = 0;
    for (const auto &node : nodes_)
        live += node->alive() ? 1 : 0;
    return live;
}

uint64_t
ClusterRouter::candidateShare(uint64_t candidates) const
{
    return std::max<uint64_t>(
        1, runtime::RankPartitioner::evenShare(candidates, shards_.size()));
}

void
ClusterRouter::killNodeLocked(uint32_t id, double now_us)
{
    ENMC_ASSERT(id < nodes_.size(), "kill of an unknown node");
    if (!nodes_[id]->alive())
        return;
    nodes_[id]->kill();
    ++stat_kills_;
    ++health_epoch_;
    obs::Tracer &tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.instant("node.kill", "cluster", obs::kClusterPid, id, now_us,
                       {{"epoch", static_cast<double>(health_epoch_)}});
}

void
ClusterRouter::killNode(uint32_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    killNodeLocked(id, obs::Tracer::instance().nowUs());
}

std::vector<ClusterRouter::ShardAssignment>
ClusterRouter::routeBatch(uint64_t batch, uint64_t candidates,
                          double now_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (cfg_.kill.scripted() && !scripted_kill_fired_ &&
        batches_routed_ >= cfg_.kill.after_batches) {
        scripted_kill_fired_ = true;
        killNodeLocked(static_cast<uint32_t>(cfg_.kill.node), now_us);
    }

    std::vector<ShardAssignment> assignments;
    assignments.reserve(shards_.size());
    obs::Tracer &tracer = obs::Tracer::instance();
    for (size_t s = 0; s < shards_.size(); ++s) {
        const std::vector<uint32_t> replicas = replicasOf(s);
        const ClusterNode *best = nullptr;
        for (uint32_t id : replicas) {
            const ClusterNode &cand = *nodes_[id];
            if (!cand.alive())
                continue;
            if (best == nullptr || cand.load() < best->load() ||
                (cand.load() == best->load() && cand.id() < best->id()))
                best = &cand;
        }
        if (best == nullptr)
            ENMC_FATAL("no live replica left for shard ", s,
                       " (replication ", cfg_.replication, ")");
        if (!nodes_[replicas.front()]->alive())
            ++stat_reroutes_;
        if (!best->alive())
            ++stat_dead_dispatches_; // FATAL above keeps this at 0
        nodes_[best->id()]->recordDispatch(batch);
        ++stat_shard_dispatches_;
        assignments.push_back({s, best->id()});
        if (tracer.enabled())
            tracer.instant("shard.dispatch", "cluster", obs::kClusterPid,
                           best->id(), now_us,
                           {{"shard", static_cast<double>(s)},
                            {"batch", static_cast<double>(batch)},
                            {"candidates",
                             static_cast<double>(candidates)}});
    }

    ++batches_routed_;
    ++stat_batches_;
    stat_live_nodes_.sample(static_cast<double>(liveNodeCount()));
    stat_fanout_.sample(static_cast<double>(assignments.size()));
    return assignments;
}

std::vector<uint32_t>
ClusterRouter::primaryLiveAssignment() const
{
    std::vector<uint32_t> owners(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
        const std::vector<uint32_t> replicas = replicasOf(s);
        const uint32_t *owner = nullptr;
        for (const uint32_t &id : replicas) {
            if (nodes_[id]->alive()) {
                owner = &id;
                break;
            }
        }
        if (owner == nullptr)
            ENMC_FATAL("no live replica left for shard ", s,
                       " (replication ", cfg_.replication, ")");
        owners[s] = *owner;
    }
    return owners;
}

double
ClusterRouter::serviceUs(uint64_t batch, uint64_t candidates)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto key = std::make_tuple(batch, candidates, health_epoch_);
    auto it = service_memo_.find(key);
    if (it != service_memo_.end())
        return it->second;

    const std::vector<uint32_t> owners = primaryLiveAssignment();
    const uint64_t cand_share = candidateShare(candidates);

    // A one-node cluster is the degenerate fabric: no scatter, no gather,
    // no handoff — exactly the single-backend service time, so the
    // 1-node cluster stays bit-identical to the non-cluster path.
    double us = 0.0;
    if (nodes_.size() == 1) {
        us = nodes_[0]->shardJobUs(job_, shards_[0].rows, batch,
                                   candidates);
    } else {
        // Scatter: the router sends each owning shard's features
        // point-to-point, plus one ingest handoff per shard message.
        const uint64_t feat_bytes =
            batch * (ceilDiv(job_.reduced, 2) + job_.hidden * 4);
        const double scatter_us =
            cfg_.network.latency * 1e6 +
            static_cast<double>(shards_.size() * feat_bytes) /
                cfg_.network.bandwidth * 1e6 +
            static_cast<double>(shards_.size()) * cfg_.node_handoff_us;

        // Compute: shards assigned to the same node serialize on it; the
        // batch finishes when the slowest node does.
        std::vector<double> node_us(nodes_.size(), 0.0);
        for (size_t s = 0; s < shards_.size(); ++s)
            node_us[owners[s]] += nodes_[owners[s]]->shardJobUs(
                job_, shards_[s].rows, batch, cand_share);
        const double compute_us =
            *std::max_element(node_us.begin(), node_us.end());

        // Gather: per-shard partial normalizer + accurate candidates.
        const uint64_t result_bytes = batch * 8 + cand_share * batch * 8;
        const double gather_us =
            cfg_.network.latency * 1e6 +
            static_cast<double>(shards_.size() * result_bytes) /
                cfg_.network.bandwidth * 1e6;

        us = scatter_us + compute_us + gather_us;
    }
    service_memo_.emplace(key, us);
    return us;
}

std::vector<runtime::ClassifierOutput>
ClusterRouter::computeBatch(const nn::Classifier &classifier,
                            const screening::Screener &screener,
                            const std::vector<tensor::Vector> &h_batch,
                            size_t k, uint64_t ranks)
{
    const uint64_t l = classifier.categories();
    ENMC_ASSERT(l <= job_.categories,
                "classifier larger than the sharded label space");
    const uint64_t batch = h_batch.size();
    const uint64_t use_ranks = ranks == 0 ? cfg_.ranks_per_node : ranks;

    // Functional sharding follows the label rows actually present on the
    // classifier (functional-scale models are smaller than the timing
    // job), under the same partition policy as the timing shard map.
    const std::vector<runtime::RowSlice> fshards =
        runtime::RankPartitioner::partition(
            0, l, std::min<uint64_t>(cfg_.nodes, l));
    std::vector<uint32_t> owners(fshards.size());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t s = 0; s < fshards.size(); ++s) {
            bool found = false;
            for (uint64_t r = 0; r < cfg_.replication && !found; ++r) {
                const uint32_t id =
                    static_cast<uint32_t>((s + r) % nodes_.size());
                if (nodes_[id]->alive()) {
                    owners[s] = id;
                    found = true;
                }
            }
            if (!found)
                ENMC_FATAL("no live replica left for functional shard ", s,
                           " (replication ", cfg_.replication, ")");
        }
    }

    // Scatter: shards own disjoint label rows, so they execute
    // concurrently; the shard-order merge keeps the result bit-identical
    // to the serial (and the single-node) execution.
    std::vector<runtime::EnmcSystem::FunctionalResult> parts(fshards.size());
    parallelFor(0, fshards.size(), cfg_.node.sim_threads, [&](size_t s) {
        parts[s].logits.assign(batch, tensor::Vector(l, 0.0f));
        parts[s].candidates.assign(batch, {});
        nodes_[owners[s]]->runShard(classifier, screener, h_batch,
                                    use_ranks, fshards[s].begin,
                                    fshards[s].rows, parts[s]);
    });

    // Gather at the root, in shard order.
    std::vector<tensor::Vector> logits(batch, tensor::Vector(l, 0.0f));
    std::vector<std::vector<uint32_t>> candidates(batch);
    for (size_t s = 0; s < fshards.size(); ++s) {
        for (uint64_t item = 0; item < batch; ++item) {
            std::copy(parts[s].logits[item].begin() + fshards[s].begin,
                      parts[s].logits[item].begin() + fshards[s].begin +
                          fshards[s].rows,
                      logits[item].begin() + fshards[s].begin);
            candidates[item].insert(candidates[item].end(),
                                    parts[s].candidates[item].begin(),
                                    parts[s].candidates[item].end());
        }
    }

    // Root normalization (identical to EnmcSystem::runFunctional), then
    // the global top-k as a mergeTopK over per-shard top-k lists — the
    // bounded-heap merge the ranks inside one node already use, lifted
    // to node granularity.
    std::vector<runtime::ClassifierOutput> outputs(batch);
    for (uint64_t item = 0; item < batch; ++item) {
        runtime::ClassifierOutput &out = outputs[item];
        out.probabilities =
            classifier.normalization() == nn::Normalization::Softmax
                ? tensor::softmaxTaylor(logits[item])
                : tensor::sigmoidTaylor(logits[item]);
        std::vector<std::vector<tensor::Scored>> shard_tops(fshards.size());
        for (size_t s = 0; s < fshards.size(); ++s) {
            shard_tops[s] = tensor::topkScored(
                std::span<const float>(
                    out.probabilities.data() + fshards[s].begin,
                    fshards[s].rows),
                k, static_cast<uint32_t>(fshards[s].begin));
        }
        const std::vector<tensor::Scored> merged =
            tensor::mergeTopK(shard_tops, k);
        out.topk.reserve(merged.size());
        for (const tensor::Scored &sc : merged)
            out.topk.push_back(sc.index);
        out.candidates = std::move(candidates[item]);
    }
    return outputs;
}

} // namespace enmc::cluster
