/**
 * @file
 * The cluster fabric behind the uniform `runtime::Backend` interface,
 * registered as `"cluster"` in the backend registry: `runJob` times one
 * batch's scatter -> compute -> gather through a `ClusterRouter` over the
 * job's label space, so every registry consumer (benches, the serving
 * layer's `ENMC_SERVE_BACKEND=cluster`) can select the whole fabric the
 * same way it selects a single rank model. Cluster shape comes from the
 * `ENMC_CLUSTER_*` environment (see `cluster/config.h`); the system
 * configuration handed to the factory becomes every node's local system.
 */

#ifndef ENMC_CLUSTER_BACKEND_H
#define ENMC_CLUSTER_BACKEND_H

#include <map>
#include <memory>
#include <mutex>

#include "cluster/router.h"
#include "runtime/backend.h"

namespace enmc::cluster {

class ClusterBackend : public runtime::Backend
{
  public:
    explicit ClusterBackend(const ClusterConfig &cfg);

    std::string name() const override { return "cluster"; }
    runtime::BackendCapabilities capabilities() const override;

    /** Panics: the fabric has no single-rank slice view. */
    arch::RankResult runSlice(const arch::RankTask &task) const override;

    runtime::TimingResult runJob(const runtime::JobSpec &spec) const override;

    const ClusterConfig &clusterConfig() const { return cluster_cfg_; }

    /** The (lazily built) router over `categories` label rows. */
    ClusterRouter &router(const runtime::JobSpec &spec) const;

  private:
    ClusterConfig cluster_cfg_;
    // One router per label-space size: runJob is const on Backend, but a
    // router carries routing/memo state, so the cache is mutable.
    mutable std::mutex mutex_;
    mutable std::map<uint64_t, std::unique_ptr<ClusterRouter>> routers_;
};

/**
 * Ensure `"cluster"` is in the backend registry. Idempotent; called by
 * consumers (the serving dispatcher, benches) so the static library's
 * registration TU is never dropped by the linker.
 */
void registerClusterBackend();

} // namespace enmc::cluster

#endif // ENMC_CLUSTER_BACKEND_H
