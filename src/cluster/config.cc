#include "cluster/config.h"

#include "common/env.h"
#include "common/logging.h"

namespace enmc::cluster {

ClusterConfig
clusterConfigFromEnv(ClusterConfig base)
{
    base.nodes = envU64("ENMC_CLUSTER_NODES", base.nodes);
    base.replication = envU64("ENMC_CLUSTER_REPLICATION", base.replication);
    if (const char *v = envString("ENMC_CLUSTER_NODE_BACKEND"))
        base.node_backend = v;
    base.ranks_per_node =
        envU64("ENMC_CLUSTER_RANKS_PER_NODE", base.ranks_per_node);
    base.node_handoff_us =
        envF64("ENMC_CLUSTER_NODE_HANDOFF_US", base.node_handoff_us);
    base.network.bandwidth =
        envF64("ENMC_CLUSTER_NET_GBPS", base.network.bandwidth / 0.125e9) *
        0.125e9;
    base.network.latency =
        envF64("ENMC_CLUSTER_NET_LAT_US", base.network.latency * 1e6) * 1e-6;
    if (envString("ENMC_CLUSTER_KILL_NODE") != nullptr)
        base.kill.node =
            static_cast<int64_t>(envU64("ENMC_CLUSTER_KILL_NODE", 0));
    base.kill.after_batches =
        envU64("ENMC_CLUSTER_KILL_AFTER", base.kill.after_batches);
    validate(base);
    return base;
}

void
validate(const ClusterConfig &cfg)
{
    if (cfg.nodes == 0)
        ENMC_FATAL("cluster: nodes must be >= 1");
    if (cfg.replication == 0)
        ENMC_FATAL("cluster: replication must be >= 1");
    if (cfg.replication > cfg.nodes)
        ENMC_FATAL("cluster: replication (", cfg.replication,
                   ") exceeds node count (", cfg.nodes, ")");
    if (cfg.ranks_per_node == 0)
        ENMC_FATAL("cluster: ranks_per_node must be >= 1");
    if (cfg.node_handoff_us < 0.0)
        ENMC_FATAL("cluster: node_handoff_us must be non-negative");
    if (cfg.network.bandwidth <= 0.0 || cfg.network.latency < 0.0)
        ENMC_FATAL("cluster: network bandwidth must be positive and "
                   "latency non-negative");
    if (cfg.node_backend.empty())
        ENMC_FATAL("cluster: node_backend name must be non-empty");
    if (cfg.kill.scripted() &&
        cfg.kill.node >= static_cast<int64_t>(cfg.nodes))
        ENMC_FATAL("cluster: kill.node (", cfg.kill.node,
                   ") is not a node id (nodes=", cfg.nodes, ")");
}

} // namespace enmc::cluster
