#include "cluster/node.h"

#include "common/logging.h"

namespace enmc::cluster {

runtime::SystemConfig
ClusterNode::nodeSystem(uint32_t id, const ClusterConfig &cfg)
{
    runtime::SystemConfig sys = cfg.node;
    // Every node draws its own fault stream family: same seed on every
    // node would fault the replicas identically, hiding exactly the
    // failures replication exists to mask.
    sys.fault.seed = cfg.node.fault.seed + id;
    return sys;
}

ClusterNode::ClusterNode(uint32_t id, const ClusterConfig &cfg)
    : backend_(id, runtime::createBackend(cfg.node_backend, nodeSystem(id, cfg)),
               cfg.node.resilience),
      system_(nodeSystem(id, cfg)),
      stats_("cluster.node." + std::to_string(id)),
      stat_dispatched_(stats_.addCounter(
          "dispatchedBatches", "shard-batches routed to this node")),
      stat_requests_(stats_.addCounter(
          "servedRequests", "requests inside the shard-batches served")),
      stat_killed_(stats_.addCounter(
          "killed", "times this node was declared dead")),
      stats_registration_(stats_)
{
}

void
ClusterNode::kill()
{
    if (!backend_.alive())
        return;
    backend_.kill();
    ++stat_killed_;
}

void
ClusterNode::recordDispatch(uint64_t requests)
{
    backend_.recordDispatch();
    ++stat_dispatched_;
    stat_requests_ += requests;
}

double
ClusterNode::shardJobUs(const runtime::JobSpec &job, uint64_t rows,
                        uint64_t batch, uint64_t candidates)
{
    const auto key = std::make_tuple(rows, batch, candidates);
    auto it = job_memo_.find(key);
    if (it != job_memo_.end())
        return it->second;
    runtime::JobSpec spec = job;
    spec.categories = rows;
    spec.batch = batch;
    spec.candidates = candidates;
    const double us = backend_.runJob(spec).seconds * 1e6;
    job_memo_.emplace(key, us);
    return us;
}

void
ClusterNode::runShard(const nn::Classifier &classifier,
                      const screening::Screener &screener,
                      const std::vector<tensor::Vector> &h_batch,
                      uint64_t ranks, uint64_t row_begin, uint64_t rows,
                      runtime::EnmcSystem::FunctionalResult &out) const
{
    ENMC_ASSERT(backend_.alive(), "functional shard routed to a dead node");
    system_.runFunctionalRange(classifier, screener, h_batch, ranks,
                               row_begin, rows, out);
}

} // namespace enmc::cluster
