/**
 * @file
 * One simulated ENMC node of the cluster fabric: a `runtime::NodeBackend`
 * (health + load + timing) paired with the node's own `EnmcSystem` for
 * functional shard execution, plus per-node observability
 * ("cluster.node.<id>" stat groups — the per-node view the router's
 * scatter/gather accounting is checked against).
 */

#ifndef ENMC_CLUSTER_NODE_H
#define ENMC_CLUSTER_NODE_H

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "cluster/config.h"
#include "common/stats.h"
#include "obs/registry.h"
#include "runtime/node_backend.h"
#include "runtime/system.h"

namespace enmc::cluster {

class ClusterNode
{
  public:
    ClusterNode(uint32_t id, const ClusterConfig &cfg);

    uint32_t id() const { return backend_.id(); }
    runtime::NodeHealth health() const { return backend_.health(); }
    bool alive() const { return backend_.alive(); }
    uint64_t load() const { return backend_.load(); }
    runtime::NodeBackend &backend() { return backend_; }

    void kill();

    /** Tally one shard-batch dispatched to this node. */
    void recordDispatch(uint64_t requests);

    /**
     * Simulated service time (us) of this node running `rows` label rows
     * of `job` at the given batch/candidate share. Memoized — the
     * timing backend is deterministic in the spec.
     */
    double shardJobUs(const runtime::JobSpec &job, uint64_t rows,
                      uint64_t batch, uint64_t candidates);

    /**
     * Functional execution of classifier rows
     * [row_begin, row_begin + rows) on this node's simulated ranks;
     * fills that logit range of `out` and appends global candidate ids
     * (see EnmcSystem::runFunctionalRange).
     */
    void runShard(const nn::Classifier &classifier,
                  const screening::Screener &screener,
                  const std::vector<tensor::Vector> &h_batch,
                  uint64_t ranks, uint64_t row_begin, uint64_t rows,
                  runtime::EnmcSystem::FunctionalResult &out) const;

    StatGroup &stats() { return stats_; }

  private:
    static runtime::SystemConfig nodeSystem(uint32_t id,
                                            const ClusterConfig &cfg);

    runtime::NodeBackend backend_;
    runtime::EnmcSystem system_;
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, double> job_memo_;

    // Per-node stats ("cluster.node.<id>").
    StatGroup stats_;
    Counter &stat_dispatched_;
    Counter &stat_requests_;
    Counter &stat_killed_;
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::cluster

#endif // ENMC_CLUSTER_NODE_H
