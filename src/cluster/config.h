/**
 * @file
 * Cluster-fabric configuration and its `ENMC_CLUSTER_*` environment
 * overrides.
 *
 * A cluster is N simulated ENMC nodes, each holding the screener +
 * classifier slices of one label shard (paper Section 8 lifted from an
 * analytic model to a routed fabric). `replication` copies every shard
 * onto that many nodes (chained declustering), which is what lets the
 * router survive a node death mid-run. `node_handoff_us` is the
 * per-shard-dispatch host cost — NMPO's offload-initiation +
 * completion-detection overhead, now paid per *node* hop rather than
 * once per batch.
 */

#ifndef ENMC_CLUSTER_CONFIG_H
#define ENMC_CLUSTER_CONFIG_H

#include <cstdint>
#include <string>

#include "runtime/scaleout.h"
#include "runtime/system.h"

namespace enmc::cluster {

/** A scripted mid-run node kill (deterministic failover drills). */
struct ScriptedKill
{
    /** Node id to kill; negative = never. */
    int64_t node = -1;              // ENMC_CLUSTER_KILL_NODE
    /** Router batches dispatched before the kill fires. */
    uint64_t after_batches = 0;     // ENMC_CLUSTER_KILL_AFTER

    bool scripted() const { return node >= 0; }
};

struct ClusterConfig
{
    /** Nodes the label space is sharded across. */
    uint64_t nodes = 4;             // ENMC_CLUSTER_NODES
    /** Replicas per label shard (1 = no replication, no failover). */
    uint64_t replication = 2;       // ENMC_CLUSTER_REPLICATION
    /** Backend registry key every node executes through. */
    std::string node_backend = "enmc"; // ENMC_CLUSTER_NODE_BACKEND
    /** Default ranks a node slices its shard across in functional runs. */
    uint64_t ranks_per_node = 4;    // ENMC_CLUSTER_RANKS_PER_NODE
    /**
     * Per-shard-dispatch host/NIC cost in us (NMPO's handoff at node
     * granularity). Zero-cost on a single-node cluster, which must stay
     * bit-identical to the non-cluster path.
     */
    double node_handoff_us = 10.0;  // ENMC_CLUSTER_NODE_HANDOFF_US
    /** Inter-node network.  */     // ENMC_CLUSTER_NET_GBPS / _NET_LAT_US
    runtime::NetworkConfig network;
    /** Every node's local ENMC system. */
    runtime::SystemConfig node;
    ScriptedKill kill;
};

/**
 * `base` with every `ENMC_CLUSTER_*` override applied. Fatal on
 * unparsable values (see common/env.h) and inconsistent shapes.
 */
ClusterConfig clusterConfigFromEnv(ClusterConfig base = ClusterConfig{});

/** Fatal unless the configuration is self-consistent. */
void validate(const ClusterConfig &cfg);

} // namespace enmc::cluster

#endif // ENMC_CLUSTER_CONFIG_H
