/**
 * @file
 * The cluster router: shards the label space across N simulated ENMC
 * nodes and scatter/gathers every batch across the owning shards.
 *
 * **Sharding.** Shard s holds the contiguous label rows
 * `RankPartitioner::partition(0, l, nodes)[s]` — the same ceil-slicing
 * policy the ranks inside one node already use, lifted one level.
 * `replication` copies shard s onto nodes {(s + r) mod nodes} (chained
 * declustering: every node carries one primary and replication-1
 * foreign shards, so losing a node spreads its load over several
 * survivors instead of doubling one).
 *
 * **Routing.** Every dispatched batch fans out to all owning shards;
 * each shard picks its least-loaded *live* replica (ties to the lowest
 * node id). Loads advance deterministically per routed batch, so the
 * whole assignment sequence is a pure function of the batch sequence
 * and the health history — replayable bit-for-bit.
 *
 * **Failover.** Node health is the `runtime::NodeBackend` state machine
 * (Alive -> Suspect -> Dead); a Dead node (scripted kill or blacklist)
 * is never routed to again, its shards fail over to the surviving
 * replicas, and the router dies loudly if a shard has no live replica
 * left. Merging is through `tensor::mergeTopK`, so a failover changes
 * *which node computed* a shard, never the answer.
 */

#ifndef ENMC_CLUSTER_ROUTER_H
#define ENMC_CLUSTER_ROUTER_H

#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "cluster/config.h"
#include "cluster/node.h"
#include "common/stats.h"
#include "obs/registry.h"
#include "runtime/api.h"
#include "runtime/partition.h"

namespace enmc::cluster {

class ClusterRouter
{
  public:
    /**
     * @param cfg Cluster shape (validated fatally).
     * @param job Full-scale job dimensions; `job.categories` is the
     *            global label space being sharded.
     */
    ClusterRouter(const ClusterConfig &cfg, const runtime::JobSpec &job);

    const ClusterConfig &config() const { return cfg_; }
    size_t nodeCount() const { return nodes_.size(); }
    size_t shardCount() const { return shards_.size(); }
    const std::vector<runtime::RowSlice> &shards() const { return shards_; }

    ClusterNode &node(size_t id) { return *nodes_.at(id); }

    /** Replica node ids owning shard s, in chained-declustering order
     *  (the first entry is the shard's primary). */
    std::vector<uint32_t> replicasOf(size_t shard) const;

    /** One shard's dispatch target for one batch. */
    struct ShardAssignment
    {
        size_t shard = 0;
        uint32_t node = 0;
    };

    /**
     * Route one dispatched batch: fire any scripted kill that is due,
     * then pick a live replica per shard (least-loaded, ties to the
     * lowest id) and advance the load accounting. Called exactly once
     * per dispatched batch, in both replay and live serving modes.
     * Fatal when a shard has no live replica left.
     */
    std::vector<ShardAssignment> routeBatch(uint64_t batch,
                                            uint64_t candidates,
                                            double now_us);

    /**
     * Simulated scatter -> compute -> gather time (us) of one batch over
     * the current health state: per-shard feature scatter + per-hop node
     * handoff, the slowest node's summed shard work (shards fail over to
     * the first live replica), and the result gather. All network and
     * handoff terms vanish on a single-node cluster, which therefore
     * times bit-identically to the plain single-backend path. Memoized
     * per (batch, candidates, health epoch).
     */
    double serviceUs(uint64_t batch, uint64_t candidates);

    /**
     * Functional forward of a batch: every shard's owner runs its label
     * rows through its node's simulated ranks (concurrently — shards are
     * disjoint), the router merges logits in shard order, normalizes
     * once at the root, and extracts the global top-k by merging the
     * per-shard top-k lists through `tensor::mergeTopK`. Bit-identical
     * to `EnmcClassifier::forward` on the same classifier/screener for
     * any node count and any health history (partition invariance).
     * @param ranks Ranks per node to slice across; 0 = config default.
     */
    std::vector<runtime::ClassifierOutput>
    computeBatch(const nn::Classifier &classifier,
                 const screening::Screener &screener,
                 const std::vector<tensor::Vector> &h_batch, size_t k,
                 uint64_t ranks = 0);

    /** Operator kill (the scripted kill calls this internally). */
    void killNode(uint32_t id);

    uint64_t liveNodeCount() const;

    StatGroup &stats() { return stats_; }

  private:
    /** Shard -> first live replica (steady-state placement; no load
     *  bookkeeping). Fatal when none is live. Caller holds mutex_. */
    std::vector<uint32_t> primaryLiveAssignment() const;
    void killNodeLocked(uint32_t id, double now_us);
    uint64_t candidateShare(uint64_t candidates) const;

    ClusterConfig cfg_;
    runtime::JobSpec job_;
    std::vector<runtime::RowSlice> shards_;
    std::vector<std::unique_ptr<ClusterNode>> nodes_;

    mutable std::mutex mutex_;
    uint64_t batches_routed_ = 0;
    bool scripted_kill_fired_ = false;
    /** Bumped on every health transition; keys the service-time memo. */
    uint64_t health_epoch_ = 0;
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, double>
        service_memo_;

    // Router-level stats ("cluster.router").
    StatGroup stats_;
    Counter &stat_batches_;
    Counter &stat_shard_dispatches_;
    Counter &stat_reroutes_;
    Counter &stat_dead_dispatches_;
    Counter &stat_kills_;
    ScalarStat &stat_live_nodes_;
    Histogram &stat_fanout_;
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::cluster

#endif // ENMC_CLUSTER_ROUTER_H
