#include "fault/ecc.h"

#include <bit>
#include <cstring>

#include "common/logging.h"

namespace enmc::fault {

EccGeometry
eccGeometry(EccScheme scheme)
{
    // r Hamming bits with 2^r >= data + r + 1, plus one overall parity.
    switch (scheme) {
      case EccScheme::None: return {0, 0};
      case EccScheme::Word72: return {64, 8};
      case EccScheme::Block512B: return {4096, 14};
      case EccScheme::Block1KB: return {8192, 15};
      case EccScheme::Block4KB: return {32768, 17};
    }
    ENMC_PANIC("unknown ECC scheme");
}

const char *
eccSchemeName(EccScheme scheme)
{
    switch (scheme) {
      case EccScheme::None: return "none";
      case EccScheme::Word72: return "word72";
      case EccScheme::Block512B: return "block512";
      case EccScheme::Block1KB: return "block1k";
      case EccScheme::Block4KB: return "block4k";
    }
    return "?";
}

bool
eccSchemeFromName(const char *name, EccScheme *out)
{
    const EccScheme all[] = {EccScheme::None, EccScheme::Word72,
                             EccScheme::Block512B, EccScheme::Block1KB,
                             EccScheme::Block4KB};
    for (const EccScheme s : all) {
        if (std::strcmp(name, eccSchemeName(s)) == 0) {
            *out = s;
            return true;
        }
    }
    return false;
}

const char *
protectionName(Protection cls)
{
    switch (cls) {
      case Protection::None: return "none";
      case Protection::Weak: return "weak";
      case Protection::Strong: return "strong";
    }
    return "?";
}

BlockOutcome
eccClassifyBlock(EccScheme scheme, uint64_t flips, double u)
{
    ENMC_ASSERT(scheme != EccScheme::None && scheme != EccScheme::Word72,
                "eccClassifyBlock is for block schemes");
    if (flips == 0)
        return BlockOutcome::Clean;
    if (flips == 1)
        return BlockOutcome::Corrected;
    if (flips == 2)
        return BlockOutcome::Detected;
    // Beyond the design point. An even flip count keeps the overall
    // parity clean but leaves a (with overwhelming probability) invalid
    // syndrome: detected. An odd count looks like a single-bit error
    // whenever its syndrome lands on one of the codewordBits() valid
    // positions out of the 2^(check_bits - 1) odd-parity syndromes.
    const EccGeometry g = eccGeometry(scheme);
    if ((flips & 1) == 0)
        return BlockOutcome::Detected;
    const double alias = static_cast<double>(g.codewordBits()) /
                         static_cast<double>(1ull << (g.check_bits - 1));
    return u < alias ? BlockOutcome::Miscorrected : BlockOutcome::Detected;
}

namespace {

/**
 * Hamming positions run 1..71; positions that are powers of two hold the
 * seven check bits, the remaining 64 hold the data bits in index order.
 * The tables map between the two numberings.
 */
struct PositionTables
{
    int data_pos[kEccDataBits];   //!< data bit i -> Hamming position
    int pos_data[72];             //!< Hamming position -> data bit or -1

    constexpr PositionTables() : data_pos{}, pos_data{}
    {
        for (int p = 0; p < 72; ++p)
            pos_data[p] = -1;
        int next = 0;
        for (int p = 1; p <= 71; ++p) {
            if ((p & (p - 1)) == 0)
                continue; // check-bit position
            data_pos[next] = p;
            pos_data[p] = next;
            ++next;
        }
    }
};

constexpr PositionTables kTables{};

/** XOR of the Hamming positions of all set data bits. */
int
dataSyndrome(uint64_t data)
{
    int s = 0;
    while (data) {
        const int i = std::countr_zero(data);
        data &= data - 1;
        s ^= kTables.data_pos[i];
    }
    return s;
}

} // namespace

uint8_t
eccEncode(uint64_t data)
{
    const int s = dataSyndrome(data);
    uint8_t check = static_cast<uint8_t>(s & 0x7f);
    // Overall parity: make the popcount of the full 72-bit codeword even.
    const int ones = std::popcount(data) + std::popcount(check);
    if (ones & 1)
        check |= 0x80;
    return check;
}

const char *
eccStatusName(EccStatus status)
{
    switch (status) {
      case EccStatus::Ok: return "ok";
      case EccStatus::CorrectedData: return "corrected-data";
      case EccStatus::CorrectedCheck: return "corrected-check";
      case EccStatus::DetectedUncorrectable: return "detected-uncorrectable";
    }
    return "?";
}

EccDecoded
eccDecode(uint64_t data, uint8_t check)
{
    // Syndrome: XOR of set data-bit positions and set check-bit masks.
    // For a clean codeword the stored check bits equal the data syndrome,
    // so the XOR cancels to zero.
    int s = dataSyndrome(data) ^ (check & 0x7f);
    const bool parity_odd =
        ((std::popcount(data) + std::popcount(check)) & 1) != 0;

    EccDecoded out;
    out.data = data;
    if (s == 0 && !parity_odd)
        return out; // clean

    if (parity_odd) {
        // An odd number of flips; a single flip is the only correctable
        // interpretation, located by the syndrome.
        if (s == 0) {
            out.status = EccStatus::CorrectedCheck; // the parity bit itself
            out.bit = 71;
            return out;
        }
        if ((s & (s - 1)) == 0 && s <= 64) {
            // A check-bit position (power of two): data is intact.
            out.status = EccStatus::CorrectedCheck;
            out.bit = 64 + std::countr_zero(static_cast<unsigned>(s));
            return out;
        }
        if (s <= 71 && kTables.pos_data[s] >= 0) {
            const int i = kTables.pos_data[s];
            out.data = data ^ (1ull << i);
            out.status = EccStatus::CorrectedData;
            out.bit = i;
            return out;
        }
        // Syndrome points outside the codeword: provably multi-bit.
        out.status = EccStatus::DetectedUncorrectable;
        return out;
    }

    // Even flip count with a nonzero syndrome: the double-error signature.
    out.status = EccStatus::DetectedUncorrectable;
    return out;
}

void
eccFlipBit(uint64_t &data, uint8_t &check, int bit)
{
    ENMC_ASSERT(bit >= 0 && bit < kEccCodewordBits, "bad codeword bit ", bit);
    if (bit < kEccDataBits)
        data ^= 1ull << bit;
    else
        check ^= static_cast<uint8_t>(1u << (bit - kEccDataBits));
}

} // namespace enmc::fault
