#include "fault/injector.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"
#include "fault/ecc.h"

namespace enmc::fault {

namespace {

// Domain-separation salts: one per distinct kind of draw, so the flip
// count, the flip positions, the instruction fates and the timing-only
// burst classification are independent streams of the same seed.
constexpr uint64_t kSaltFlipCount = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kSaltFlipBits = 0xbf58476d1ce4e5b9ull;
constexpr uint64_t kSaltInstDrop = 0x94d049bb133111ebull;
constexpr uint64_t kSaltInstCorrupt = 0x2545f4914f6cdd1dull;
constexpr uint64_t kSaltBurst = 0xd6e8feb86659fd93ull;
constexpr uint64_t kSaltBlockAlias = 0xd1b54a32d192ed03ull;

/** splitmix64 finalizer: a high-quality 64 -> 64 bit mixer. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

bool
FaultConfig::rankStuck(uint32_t rank) const
{
    return std::find(stuck_ranks.begin(), stuck_ranks.end(), rank) !=
           stuck_ranks.end();
}

namespace {

/** A set-but-out-of-range probability is a broken experiment: abort. */
void
requireProbability(const char *var, double v)
{
    if (!(v >= 0.0 && v <= 1.0))
        ENMC_FATAL(var, " must be a probability in [0, 1], got ", v);
}

EccScheme
schemeFromEnv(const char *var, EccScheme fallback)
{
    const char *name = envString(var);
    if (name == nullptr)
        return fallback;
    EccScheme s;
    if (!eccSchemeFromName(name, &s))
        ENMC_FATAL(var, " must be one of "
                   "none|word72|block512|block1k|block4k, got '", name, "'");
    return s;
}

} // namespace

FaultConfig
FaultConfig::fromEnv()
{
    FaultConfig cfg;
    cfg.enabled = envBool("ENMC_FAULT", false);
    cfg.seed = envU64("ENMC_FAULT_SEED", cfg.seed);
    cfg.data_ber = envF64("ENMC_FAULT_BER", cfg.data_ber);
    requireProbability("ENMC_FAULT_BER", cfg.data_ber);
    cfg.inst_drop_p = envF64("ENMC_FAULT_INST_DROP", cfg.inst_drop_p);
    requireProbability("ENMC_FAULT_INST_DROP", cfg.inst_drop_p);
    cfg.inst_corrupt_p =
        envF64("ENMC_FAULT_INST_CORRUPT", cfg.inst_corrupt_p);
    requireProbability("ENMC_FAULT_INST_CORRUPT", cfg.inst_corrupt_p);
    cfg.ecc = envBool("ENMC_FAULT_ECC", true);
    cfg.strong_scheme =
        schemeFromEnv("ENMC_FAULT_STRONG_ECC", cfg.strong_scheme);
    cfg.weak_scheme = schemeFromEnv("ENMC_FAULT_WEAK_ECC", cfg.weak_scheme);
    cfg.ecc_overhead = envBool("ENMC_FAULT_ECC_OVERHEAD", false);
    if (const char *list = envString("ENMC_FAULT_STUCK_RANKS")) {
        // Comma-separated rank ids; the whole list must parse, every id
        // must fit a rank index, and no id may repeat (a duplicate would
        // silently double-count blacklist probes).
        const char *p = list;
        while (true) {
            if (*p == '-' || *p == '+')
                ENMC_FATAL("ENMC_FAULT_STUCK_RANKS rank ids must be "
                           "unsigned integers, got '", list, "'");
            char *end = nullptr;
            errno = 0;
            const unsigned long long r = std::strtoull(p, &end, 10);
            if (end == p)
                ENMC_FATAL("ENMC_FAULT_STUCK_RANKS must be a "
                           "comma-separated list of rank ids, got '",
                           list, "'");
            if (errno == ERANGE || r > UINT32_MAX)
                ENMC_FATAL("ENMC_FAULT_STUCK_RANKS rank id overflows "
                           "32 bits in '", list, "'");
            const uint32_t id = static_cast<uint32_t>(r);
            if (cfg.rankStuck(id))
                ENMC_FATAL("ENMC_FAULT_STUCK_RANKS lists rank ", id,
                           " twice in '", list, "'");
            cfg.stuck_ranks.push_back(id);
            if (*end == '\0')
                break;
            if (*end != ',')
                ENMC_FATAL("ENMC_FAULT_STUCK_RANKS must be a "
                           "comma-separated list of rank ids, got '",
                           list, "'");
            p = end + 1;
        }
    }
    return cfg;
}

FaultCounters &
FaultCounters::operator+=(const FaultCounters &o)
{
    injected_words += o.injected_words;
    injected_bits += o.injected_bits;
    single_bit_words += o.single_bit_words;
    corrected += o.corrected;
    detected += o.detected;
    escaped += o.escaped;
    inst_dropped += o.inst_dropped;
    inst_corrupted += o.inst_corrupted;
    stuck_reads += o.stuck_reads;
    for (int c = 0; c < kNumProtectionClasses; ++c) {
        per_class[c].injected += o.per_class[c].injected;
        per_class[c].corrected += o.per_class[c].corrected;
        per_class[c].detected += o.per_class[c].detected;
        per_class[c].escaped += o.per_class[c].escaped;
    }
    return *this;
}

FaultCounters &
FaultCounters::operator-=(const FaultCounters &o)
{
    injected_words -= o.injected_words;
    injected_bits -= o.injected_bits;
    single_bit_words -= o.single_bit_words;
    corrected -= o.corrected;
    detected -= o.detected;
    escaped -= o.escaped;
    inst_dropped -= o.inst_dropped;
    inst_corrupted -= o.inst_corrupted;
    stuck_reads -= o.stuck_reads;
    for (int c = 0; c < kNumProtectionClasses; ++c) {
        per_class[c].injected -= o.per_class[c].injected;
        per_class[c].corrected -= o.per_class[c].corrected;
        per_class[c].detected -= o.per_class[c].detected;
        per_class[c].escaped -= o.per_class[c].escaped;
    }
    return *this;
}

FaultInjector::FaultInjector(const FaultConfig &cfg, uint64_t stream)
    : cfg_(cfg), stream_(stream)
{
    ENMC_ASSERT(cfg.data_ber >= 0.0 && cfg.data_ber <= 1.0,
                "bit-error rate out of range");
}

double
FaultInjector::uniformAt(uint64_t index, uint64_t salt) const
{
    const uint64_t h =
        mix64(cfg_.seed ^ mix64(stream_ ^ salt) ^ mix64(index + salt));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int
FaultInjector::sampleFlipCount(uint64_t index, int nbits) const
{
    const double p = cfg_.data_ber;
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return nbits;
    // Inverse-CDF binomial draw: walk the pmf from k = 0. For realistic
    // rates the first term absorbs nearly all the mass, so this is one
    // multiply per word in the common case.
    double u = uniformAt(index, kSaltFlipCount);
    double pmf = 1.0;
    for (int i = 0; i < nbits; ++i)
        pmf *= 1.0 - p;
    int k = 0;
    while (u >= pmf && k < nbits) {
        u -= pmf;
        pmf *= (static_cast<double>(nbits - k) / (k + 1)) * (p / (1.0 - p));
        ++k;
    }
    return k;
}

void
FaultInjector::sampleFlipBits(uint64_t index, int nbits, int k,
                              int *out) const
{
    int chosen = 0;
    for (uint64_t j = 0; chosen < k; ++j) {
        const int pos = static_cast<int>(
            mix64(cfg_.seed ^ mix64(stream_ ^ kSaltFlipBits) ^
                  mix64(index * 73 + j)) %
            static_cast<uint64_t>(nbits));
        bool dup = false;
        for (int i = 0; i < chosen; ++i)
            dup |= out[i] == pos;
        if (!dup)
            out[chosen++] = pos;
    }
}

uint64_t
FaultInjector::faultWord(uint64_t word, uint64_t index, int k,
                         EccScheme scheme, bool *uncorrectable,
                         bool *silent) const
{
    *uncorrectable = false;
    *silent = false;
    int bits[kEccCodewordBits];

    if (scheme == EccScheme::None) {
        // No ECC: every flip lands in the data and nobody notices.
        sampleFlipBits(index, kEccDataBits, k, bits);
        for (int i = 0; i < k; ++i)
            word ^= 1ull << bits[i];
        *silent = true;
        return word;
    }

    uint64_t data = word;
    uint8_t check = eccEncode(word);
    sampleFlipBits(index, kEccCodewordBits, k, bits);
    for (int i = 0; i < k; ++i)
        eccFlipBit(data, check, bits[i]);

    const EccDecoded dec = eccDecode(data, check);
    if (dec.status == EccStatus::DetectedUncorrectable) {
        *uncorrectable = true;
        return data; // raw corrupted bits; the caller knows they are bad
    }
    if (dec.data == word)
        return word; // corrected (or flips confined to check bits)
    // Miscorrection: >= 3 flips aliased to a valid single-error syndrome.
    *silent = true;
    return dec.data;
}

uint64_t
FaultInjector::readWord(uint64_t word, uint64_t index, bool *uncorrectable,
                        Protection cls)
{
    *uncorrectable = false;
    if (!cfg_.enabled || cfg_.data_ber <= 0.0)
        return word;
    const EccScheme scheme = cfg_.schemeFor(cls);
    ENMC_ASSERT(scheme == EccScheme::None || scheme == EccScheme::Word72,
                "readWord needs a word-granular scheme; block schemes "
                "go through readBuffer");
    const int nbits =
        scheme == EccScheme::Word72 ? kEccCodewordBits : kEccDataBits;
    const int k = sampleFlipCount(index, nbits);
    if (k == 0)
        return word;

    counters_.injected_words += 1;
    counters_.injected_bits += static_cast<uint64_t>(k);
    if (k == 1)
        counters_.single_bit_words += 1;
    FaultCounters::ClassCounters &cc = counters_.forClass(cls);
    cc.injected += 1;

    bool silent = false;
    const uint64_t out =
        faultWord(word, index, k, scheme, uncorrectable, &silent);
    if (*uncorrectable) {
        counters_.detected += 1;
        cc.detected += 1;
    } else if (silent) {
        counters_.escaped += 1;
        cc.escaped += 1;
    } else {
        counters_.corrected += 1;
        cc.corrected += 1;
    }
    return out;
}

uint64_t
FaultInjector::readBuffer(std::span<uint8_t> bytes, uint64_t index_base,
                          Protection cls)
{
    if (!cfg_.enabled || cfg_.data_ber <= 0.0)
        return 0;
    const EccScheme scheme = cfg_.schemeFor(cls);
    if (scheme != EccScheme::None && scheme != EccScheme::Word72)
        return readBufferBlocks(bytes, index_base, cls, scheme);
    uint64_t uncorrectable_words = 0;
    size_t off = 0;
    uint64_t idx = index_base;
    while (off < bytes.size()) {
        const size_t n = std::min<size_t>(8, bytes.size() - off);
        uint64_t word = 0;
        std::memcpy(&word, bytes.data() + off, n);
        bool unc = false;
        word = readWord(word, idx++, &unc, cls);
        if (unc) {
            word = 0; // erasure: known-bad data never reaches compute
            ++uncorrectable_words;
        }
        std::memcpy(bytes.data() + off, &word, n);
        off += n;
    }
    return uncorrectable_words;
}

uint64_t
FaultInjector::readBufferBlocks(std::span<uint8_t> bytes,
                                uint64_t index_base, Protection cls,
                                EccScheme scheme)
{
    // One codeword spans dataBytes() of payload; the whole chunk shares
    // one fate. A partial tail chunk still forms one (shorter) codeword.
    // The call consumes the same ceil(bytes/8) word indices as the
    // word-granular path, so callers' index bookkeeping is unchanged.
    const EccGeometry g = eccGeometry(scheme);
    const size_t block_bytes = g.dataBytes();
    uint64_t uncorrectable_words = 0;
    size_t off = 0;
    uint64_t idx = index_base;
    while (off < bytes.size()) {
        const size_t n = std::min(block_bytes, bytes.size() - off);
        const uint64_t words = ceilDiv(n, 8);
        const int nbits = static_cast<int>(n * 8 + g.check_bits);
        const int k = sampleFlipCount(idx, nbits);
        if (k > 0) {
            counters_.injected_words += 1;
            counters_.injected_bits += static_cast<uint64_t>(k);
            if (k == 1)
                counters_.single_bit_words += 1;
            FaultCounters::ClassCounters &cc = counters_.forClass(cls);
            cc.injected += 1;
            const BlockOutcome out = eccClassifyBlock(
                scheme, static_cast<uint64_t>(k),
                uniformAt(idx, kSaltBlockAlias));
            switch (out) {
              case BlockOutcome::Corrected:
                counters_.corrected += 1;
                cc.corrected += 1;
                break;
              case BlockOutcome::Detected:
                counters_.detected += 1;
                cc.detected += 1;
                // Erase the whole block: coarse failure granularity is
                // the price of the low-overhead code.
                std::fill(bytes.begin() + off, bytes.begin() + off + n,
                          uint8_t{0});
                uncorrectable_words += words;
                break;
              case BlockOutcome::Miscorrected: {
                counters_.escaped += 1;
                cc.escaped += 1;
                // Silent corruption: land the raw flips in the payload
                // (the "repair" garbles data; exact positions are noise).
                for (int i = 0; i < k; ++i) {
                    const uint64_t h =
                        mix64(cfg_.seed ^ mix64(stream_ ^ kSaltFlipBits) ^
                              mix64(idx * 73 + static_cast<uint64_t>(i)));
                    const size_t bitpos = h % (n * 8);
                    bytes[off + bitpos / 8] ^=
                        static_cast<uint8_t>(1u << (bitpos % 8));
                }
                break;
              }
              case BlockOutcome::Clean:
                break; // unreachable: k > 0
            }
        }
        off += n;
        idx += words;
    }
    return uncorrectable_words;
}

FaultInjector::InstFate
FaultInjector::instructionFate(uint64_t attempt)
{
    if (!cfg_.enabled)
        return InstFate::Deliver;
    if (cfg_.inst_drop_p > 0.0 &&
        uniformAt(attempt, kSaltInstDrop) < cfg_.inst_drop_p) {
        counters_.inst_dropped += 1;
        return InstFate::Drop;
    }
    if (cfg_.inst_corrupt_p > 0.0 &&
        uniformAt(attempt, kSaltInstCorrupt) < cfg_.inst_corrupt_p) {
        counters_.inst_corrupted += 1;
        return InstFate::Corrupt;
    }
    return InstFate::Deliver;
}

FaultInjector::BurstOutcome
FaultInjector::classifyBurst(uint64_t words, uint64_t index_base,
                             Protection cls) const
{
    BurstOutcome out;
    if (!cfg_.enabled || cfg_.data_ber <= 0.0)
        return out;
    const EccScheme scheme = cfg_.schemeFor(cls);

    if (scheme != EccScheme::None && scheme != EccScheme::Word72) {
        // Block codes: classify codeword-sized chunks of the burst.
        const EccGeometry g = eccGeometry(scheme);
        const uint64_t bytes = words * 8;
        uint64_t off = 0;
        while (off < bytes) {
            const uint64_t n = std::min<uint64_t>(g.dataBytes(),
                                                  bytes - off);
            const uint64_t idx = mix64(index_base + off / 8) ^ kSaltBurst;
            const int nbits = static_cast<int>(n * 8 + g.check_bits);
            const int k = sampleFlipCount(idx, nbits);
            if (k > 0) {
                switch (eccClassifyBlock(scheme,
                                         static_cast<uint64_t>(k),
                                         uniformAt(idx,
                                                   kSaltBlockAlias))) {
                  case BlockOutcome::Corrected:
                    out.corrected += 1;
                    break;
                  case BlockOutcome::Detected:
                    out.detected += 1;
                    break;
                  case BlockOutcome::Miscorrected:
                    out.escaped += 1;
                    break;
                  case BlockOutcome::Clean:
                    break;
                }
            }
            off += n;
        }
        return out;
    }

    const int nbits = scheme == EccScheme::Word72 ? kEccCodewordBits
                                                  : kEccDataBits;
    for (uint64_t w = 0; w < words; ++w) {
        const uint64_t idx = mix64(index_base + w) ^ kSaltBurst;
        const int k = sampleFlipCount(idx, nbits);
        if (k == 0)
            continue;
        if (scheme == EccScheme::None) {
            out.escaped += 1;
            continue;
        }
        if (k == 1) {
            out.corrected += 1; // SECDED guarantee
            continue;
        }
        // The timing path carries no data; classify a hash-derived word
        // so multi-bit outcomes follow the real codec's statistics.
        bool unc = false;
        bool silent = false;
        const uint64_t probe = mix64(idx ^ kSaltBurst);
        (void)faultWord(probe, idx, k, scheme, &unc, &silent);
        if (unc)
            out.detected += 1;
        else if (silent)
            out.escaped += 1;
        else
            out.corrected += 1;
    }
    return out;
}

} // namespace enmc::fault
