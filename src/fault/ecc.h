/**
 * @file
 * SECDED(72,64) error-correcting code: the standard Hamming code with an
 * added overall-parity bit, the scheme server DIMMs (and Ramulator2's ECC
 * model) attach to every 64-bit data word. Corrects any single-bit error
 * (data, check, or parity bit) and detects every double-bit error.
 *
 * Codeword layout used here: 64 data bits plus an 8-bit check byte whose
 * bits 0-6 are the Hamming check bits (covering positions with the
 * corresponding index bit set) and bit 7 is the overall parity over the
 * whole 72-bit codeword. For injection purposes the codeword bits are
 * numbered 0-71: 0-63 = data bit i, 64-70 = check bit (i - 64),
 * 71 = overall parity.
 */

#ifndef ENMC_FAULT_ECC_H
#define ENMC_FAULT_ECC_H

#include <cstdint>

namespace enmc::fault {

/**
 * ECC codeword geometry (the Ramulator2-ECC insight): SEC-DED over N
 * data bits needs r Hamming check bits with 2^r >= N + r + 1, plus one
 * overall-parity bit — check bits grow ~logarithmically with codeword
 * size, so larger codewords buy the same per-word guarantee (single-bit
 * correct, double-bit detect, per *codeword*) at far lower redundancy
 * bandwidth, in exchange for coarser failure granularity (an
 * uncorrectable block erases kilobytes, not 8 bytes) and a longer
 * syndrome computation.
 */
enum class EccScheme : uint8_t {
    None = 0,      //!< no ECC: every flip reaches compute silently
    Word72 = 1,    //!< SECDED(72,64): 8 check bits per 64 data bits
    Block512B = 2, //!< SEC-DED over 4096 data bits (14 check bits)
    Block1KB = 3,  //!< SEC-DED over 8192 data bits (15 check bits)
    Block4KB = 4,  //!< SEC-DED over 32768 data bits (17 check bits)
};

inline constexpr int kNumEccSchemes = 5;

/** Static shape of one codeword under a scheme (all zero for None). */
struct EccGeometry
{
    uint64_t data_bits = 0;
    uint64_t check_bits = 0;
    uint64_t codewordBits() const { return data_bits + check_bits; }
    uint64_t dataBytes() const { return data_bits / 8; }
    /** Redundancy-read bandwidth overhead: check bits per data bit. */
    double overhead() const
    {
        return data_bits == 0
                   ? 0.0
                   : static_cast<double>(check_bits) / data_bits;
    }
};

EccGeometry eccGeometry(EccScheme scheme);

const char *eccSchemeName(EccScheme scheme);

/**
 * Parse a scheme name ("none", "word72", "block512", "block1k",
 * "block4k"). @return false when the name is unknown.
 */
bool eccSchemeFromName(const char *name, EccScheme *out);

/**
 * Which protection a memory access *asks for*. The class is intrinsic to
 * the access (what the data is used for); which EccScheme a class maps
 * to is policy (FaultConfig::schemeFor). ENMC routes INT4 screener tile
 * fetches as Weak — screening is already approximate, so raw flips only
 * perturb candidate-set membership — while FP32 executor rows and
 * PRECHARGE-tunneled instruction words stay Strong.
 */
enum class Protection : uint8_t {
    None = 0,   //!< correctness-irrelevant accesses
    Weak = 1,   //!< approximate data: the INT4 screening path
    Strong = 2, //!< exact data: FP32 rows, instructions, host traffic
};

inline constexpr int kNumProtectionClasses = 3;

const char *protectionName(Protection cls);

/** Number of bits in one SECDED(72,64) codeword. */
inline constexpr int kEccCodewordBits = 72;
/** Data bits per codeword. */
inline constexpr int kEccDataBits = 64;

/** Compute the 8-bit check byte for a 64-bit data word. */
uint8_t eccEncode(uint64_t data);

/** Outcome of decoding one (possibly corrupted) codeword. */
enum class EccStatus : uint8_t {
    Ok = 0,              //!< no error observed
    CorrectedData = 1,   //!< single-bit error in a data bit, repaired
    CorrectedCheck = 2,  //!< single-bit error in a check/parity bit
    DetectedUncorrectable = 3, //!< multi-bit error detected, data unusable
};

const char *eccStatusName(EccStatus status);

/** Decode result: repaired data plus the classification. */
struct EccDecoded
{
    uint64_t data = 0;     //!< data after any correction
    EccStatus status = EccStatus::Ok;
    /** Corrected codeword bit (0-71 as in the header comment), or -1. */
    int bit = -1;
};

/**
 * Decode a stored (data, check) pair. Guarantees: any single flipped
 * codeword bit is corrected; any two flipped bits yield
 * DetectedUncorrectable. Three or more flips may miscorrect (silent data
 * corruption) — exactly the residual-error behaviour real SECDED has.
 */
EccDecoded eccDecode(uint64_t data, uint8_t check);

/**
 * Flip codeword bit `bit` (0-71) of a (data, check) pair in place.
 * Used by the fault injector to model raw DRAM bit errors.
 */
void eccFlipBit(uint64_t &data, uint8_t &check, int bit);

/** Outcome of decoding one large-block codeword. */
enum class BlockOutcome : uint8_t {
    Clean = 0,        //!< no raw flips in the codeword
    Corrected = 1,    //!< one flip: repaired, data intact
    Detected = 2,     //!< uncorrectable, flagged (erasure)
    Miscorrected = 3, //!< >= 3 flips aliased to a valid syndrome
};

/**
 * Classify a block codeword that took `flips` raw bit flips. Block
 * codewords are too large to run through a real codec per access, so
 * classification follows the SEC-DED contract analytically: 0 flips
 * clean, 1 corrected, 2 detected; for >= 3 flips an odd count may alias
 * to a valid single-error syndrome (silent miscorrection) with
 * probability codeword_bits / 2^(check_bits - 1) — `u` in [0, 1) is the
 * caller's deterministic alias draw — and is detected otherwise. Even
 * counts >= 4 trip the syndrome without the parity and are detected.
 */
BlockOutcome eccClassifyBlock(EccScheme scheme, uint64_t flips, double u);

} // namespace enmc::fault

#endif // ENMC_FAULT_ECC_H
