/**
 * @file
 * SECDED(72,64) error-correcting code: the standard Hamming code with an
 * added overall-parity bit, the scheme server DIMMs (and Ramulator2's ECC
 * model) attach to every 64-bit data word. Corrects any single-bit error
 * (data, check, or parity bit) and detects every double-bit error.
 *
 * Codeword layout used here: 64 data bits plus an 8-bit check byte whose
 * bits 0-6 are the Hamming check bits (covering positions with the
 * corresponding index bit set) and bit 7 is the overall parity over the
 * whole 72-bit codeword. For injection purposes the codeword bits are
 * numbered 0-71: 0-63 = data bit i, 64-70 = check bit (i - 64),
 * 71 = overall parity.
 */

#ifndef ENMC_FAULT_ECC_H
#define ENMC_FAULT_ECC_H

#include <cstdint>

namespace enmc::fault {

/** Number of bits in one SECDED(72,64) codeword. */
inline constexpr int kEccCodewordBits = 72;
/** Data bits per codeword. */
inline constexpr int kEccDataBits = 64;

/** Compute the 8-bit check byte for a 64-bit data word. */
uint8_t eccEncode(uint64_t data);

/** Outcome of decoding one (possibly corrupted) codeword. */
enum class EccStatus : uint8_t {
    Ok = 0,              //!< no error observed
    CorrectedData = 1,   //!< single-bit error in a data bit, repaired
    CorrectedCheck = 2,  //!< single-bit error in a check/parity bit
    DetectedUncorrectable = 3, //!< multi-bit error detected, data unusable
};

const char *eccStatusName(EccStatus status);

/** Decode result: repaired data plus the classification. */
struct EccDecoded
{
    uint64_t data = 0;     //!< data after any correction
    EccStatus status = EccStatus::Ok;
    /** Corrected codeword bit (0-71 as in the header comment), or -1. */
    int bit = -1;
};

/**
 * Decode a stored (data, check) pair. Guarantees: any single flipped
 * codeword bit is corrected; any two flipped bits yield
 * DetectedUncorrectable. Three or more flips may miscorrect (silent data
 * corruption) — exactly the residual-error behaviour real SECDED has.
 */
EccDecoded eccDecode(uint64_t data, uint8_t check);

/**
 * Flip codeword bit `bit` (0-71) of a (data, check) pair in place.
 * Used by the fault injector to model raw DRAM bit errors.
 */
void eccFlipBit(uint64_t &data, uint8_t &check, int bit);

} // namespace enmc::fault

#endif // ENMC_FAULT_ECC_H
