/**
 * @file
 * Seeded, rate-configurable fault injection for the ENMC memory system.
 *
 * Three fault classes (the ones a rank-level NMP deployment actually
 * sees):
 *  - bit flips on DRAM read data (single/double/multi per 64-bit word,
 *    sampled per-bit from a raw bit-error rate and pushed through the
 *    SECDED(72,64) model in ecc.h when ECC is enabled);
 *  - stuck-at rank failures (every read from a listed rank is
 *    detected-uncorrectable — the failure mode rank blacklisting exists
 *    for);
 *  - dropped or corrupted PRECHARGE-tunneled ENMC instructions (the C/A
 *    encoding carries parity, so both manifest as a failed delivery the
 *    host must repeat).
 *
 * Determinism contract: every sample is a pure function of
 * (seed, stream, index) via splitmix64 hashing — independent of call
 * order, thread count and previous draws. Each rank slice gets its own
 * injector (its own stream), so pooled simulations stay bit-identical
 * to serial ones and a run can be replayed from its seed.
 */

#ifndef ENMC_FAULT_INJECTOR_H
#define ENMC_FAULT_INJECTOR_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "fault/ecc.h"

namespace enmc::fault {

/** Fault-model configuration (all off by default: bit-identical runs). */
struct FaultConfig
{
    bool enabled = false;       //!< master switch
    uint64_t seed = 1;          //!< injection seed (replayable)
    double data_ber = 0.0;      //!< raw per-bit flip probability on reads
    double inst_drop_p = 0.0;   //!< instruction delivery dropped
    double inst_corrupt_p = 0.0; //!< instruction C/A word corrupted
    bool ecc = true;            //!< ECC on read data (master gate)
    /** Codeword scheme protecting Strong-class accesses. */
    EccScheme strong_scheme = EccScheme::Word72;
    /**
     * Codeword scheme protecting Weak-class accesses (the INT4 screener
     * path). Defaults to the same per-word SECDED as Strong, i.e.
     * uniform protection; the differentiated policy sets it to None or a
     * large block code.
     */
    EccScheme weak_scheme = EccScheme::Word72;
    /**
     * Charge the modeled ECC cost on the DDR clock: redundancy read
     * bursts for the check bits and syndrome-decode cycles per codeword.
     * Off by default so timing figures stay bit-identical; the frontier
     * bench turns it on to measure effective bandwidth.
     */
    bool ecc_overhead = false;
    std::vector<uint32_t> stuck_ranks; //!< ranks whose reads always fail

    bool rankStuck(uint32_t rank) const;

    /** The codeword scheme an access of class `cls` is read through. */
    EccScheme schemeFor(Protection cls) const
    {
        if (!ecc || cls == Protection::None)
            return EccScheme::None;
        return cls == Protection::Weak ? weak_scheme : strong_scheme;
    }

    /**
     * Build a config from ENMC_FAULT_* environment variables:
     * ENMC_FAULT=1 (master), ENMC_FAULT_SEED, ENMC_FAULT_BER,
     * ENMC_FAULT_INST_DROP, ENMC_FAULT_INST_CORRUPT, ENMC_FAULT_ECC=0|1,
     * ENMC_FAULT_STRONG_ECC / ENMC_FAULT_WEAK_ECC =
     * none|word72|block512|block1k|block4k, ENMC_FAULT_ECC_OVERHEAD=0|1,
     * ENMC_FAULT_STUCK_RANKS=comma,separated,ids. Every set-but-invalid
     * value is fatal: probabilities outside [0, 1], unknown scheme
     * names, and malformed/duplicate/overflowing rank lists all abort
     * rather than silently misconfigure a resilience experiment.
     */
    static FaultConfig fromEnv();
};

/** Resilience policy applied by the backend layer on top of ECC. */
struct ResilienceConfig
{
    /** Re-runs of a slice that returned detected-uncorrectable data. */
    uint32_t max_retries = 2;
    /** Latency penalty of the first retry; doubles per further attempt. */
    Cycles retry_backoff_cycles = 2048;
    /** Consecutive slice failures before a rank is blacklisted. */
    uint32_t blacklist_after = 2;
    /** Accept approximate-only logits once retries are exhausted. */
    bool degrade = true;
    /**
     * Retry a slice whose only uncorrectable words were Weak-class
     * (screener tile) reads. On by default — uniform protection treats
     * every erasure as retry-worthy. The differentiated policy turns it
     * off: a weak erasure only perturbs the candidate set of an already
     * approximate screen, so re-running the slice buys little accuracy
     * for a full re-read. Strong-class erasures always retry.
     */
    bool retry_weak = true;
    /**
     * Fail-open screening guard for an unprotected weak path, as a
     * multiplier on the expected silent-flip logit perturbation. When
     * the weak (screener) class runs with no ECC and a data BER is
     * armed, the FILTER threshold is lowered by this many units of the
     * typical single-flip perturbation so corrupted true-positives
     * still enter the candidate set — the executor then recomputes
     * them exactly under strong protection. Silent screener corruption
     * can only demote candidates (an inflated logit self-corrects by
     * *becoming* a candidate), so widening the filter is the entire
     * fail-open story. 0 disables the guard. Inert unless faults are
     * enabled with weak protection off.
     */
    double weak_guard = 1.0;
};

/**
 * Bookkeeping of everything the injector did. The accounting invariant
 * (checked by the differential harness) is that every faulty word is
 * classified exactly once: injected_words == corrected + detected +
 * escaped.
 */
struct FaultCounters
{
    uint64_t injected_words = 0;   //!< codewords with >= 1 flip
    uint64_t injected_bits = 0;    //!< raw bit flips injected
    uint64_t single_bit_words = 0; //!< codewords with exactly one flip
    uint64_t corrected = 0;        //!< codewords repaired by ECC
    uint64_t detected = 0;         //!< detected-uncorrectable codewords
    uint64_t escaped = 0;          //!< silent corruption reaching compute
    uint64_t inst_dropped = 0;     //!< instruction deliveries dropped
    uint64_t inst_corrupted = 0;   //!< instruction deliveries corrupted
    uint64_t stuck_reads = 0;      //!< reads served by a stuck rank

    /**
     * The same classification, split by the requesting access's
     * protection class (indexed by Protection). The aggregates above are
     * always the sums of the rows, so the classic invariant holds both
     * in total and per class.
     */
    struct ClassCounters
    {
        uint64_t injected = 0;
        uint64_t corrected = 0;
        uint64_t detected = 0;
        uint64_t escaped = 0;
    };
    ClassCounters per_class[kNumProtectionClasses];

    ClassCounters &forClass(Protection cls)
    {
        return per_class[static_cast<size_t>(cls)];
    }
    const ClassCounters &forClass(Protection cls) const
    {
        return per_class[static_cast<size_t>(cls)];
    }

    FaultCounters &operator+=(const FaultCounters &o);
    /** Subtract a baseline snapshot (delta accounting for shared streams). */
    FaultCounters &operator-=(const FaultCounters &o);

    /** Every faulty word classified exactly once? */
    bool balanced() const
    {
        return injected_words == corrected + detected + escaped;
    }

    /** balanced(), but checked within every protection class. */
    bool classesBalanced() const
    {
        for (const ClassCounters &c : per_class)
            if (c.injected != c.corrected + c.detected + c.escaped)
                return false;
        return true;
    }
};

/** One seeded fault stream (one per rank slice / simulated component). */
class FaultInjector
{
  public:
    /** @param stream Distinguishes independent streams of one seed. */
    explicit FaultInjector(const FaultConfig &cfg, uint64_t stream = 0);

    const FaultConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.enabled; }
    uint64_t stream() const { return stream_; }

    /**
     * Read one 64-bit word through the fault + ECC model of the scheme
     * protecting `cls` (word-granular schemes only; block schemes go
     * through readBuffer). `index` must be unique per architectural read
     * (same index -> same outcome).
     * @param uncorrectable Set true when ECC detected an uncorrectable
     *        error (returned data is the raw corrupted word).
     * @return the word as delivered to the compute units.
     */
    uint64_t readWord(uint64_t word, uint64_t index, bool *uncorrectable,
                      Protection cls = Protection::Strong);

    /**
     * Read a byte buffer through the scheme protecting `cls`.
     * Word-granular schemes process it word-by-word (tail bytes are
     * zero-padded into a final word); block schemes classify whole
     * codeword-sized chunks, so one uncorrectable block erases every
     * word in it. Detected-uncorrectable data is zeroed (erasure) —
     * callers decide whether to retry or degrade.
     * @param index_base First word index; the call consumes
     *        ceil(bytes/8) indices regardless of scheme.
     * @return number of detected-uncorrectable 64-bit words.
     */
    uint64_t readBuffer(std::span<uint8_t> bytes, uint64_t index_base,
                        Protection cls = Protection::Strong);

    /** Fate of one instruction-delivery attempt. */
    enum class InstFate { Deliver, Drop, Corrupt };

    /** Sample (and count) the fate of delivery attempt `attempt`. */
    InstFate instructionFate(uint64_t attempt);

    /** Per-outcome word counts of a data-less (timing-only) read burst. */
    struct BurstOutcome
    {
        uint64_t corrected = 0;
        uint64_t detected = 0;
        uint64_t escaped = 0;
    };

    /**
     * Classify `words` 64-bit words of a timing-only read burst under
     * the scheme protecting `cls`, without touching this injector's
     * counters (callers keep their own stats — the dram::Controller
     * surfaces these through its StatGroup). Block schemes classify
     * ceil(words * 8 / block bytes) codewords; outcome counts are in
     * codewords.
     */
    BurstOutcome classifyBurst(uint64_t words, uint64_t index_base,
                               Protection cls = Protection::Strong) const;

    FaultCounters &counters() { return counters_; }
    const FaultCounters &counters() const { return counters_; }

  private:
    /** Uniform double in [0, 1), pure in (seed, stream, index, salt). */
    double uniformAt(uint64_t index, uint64_t salt) const;
    /** Binomial draw: flips among `nbits` bits at the configured BER. */
    int sampleFlipCount(uint64_t index, int nbits) const;
    /** The k distinct flipped bit positions for word `index`. */
    void sampleFlipBits(uint64_t index, int nbits, int k, int *out) const;
    /** Fault one word; classification only (no counter updates). */
    uint64_t faultWord(uint64_t word, uint64_t index, int k, EccScheme scheme,
                       bool *uncorrectable, bool *silent) const;
    /** Block-codeword path of readBuffer (scheme is a Block* size). */
    uint64_t readBufferBlocks(std::span<uint8_t> bytes, uint64_t index_base,
                              Protection cls, EccScheme scheme);

    FaultConfig cfg_;
    uint64_t stream_;
    FaultCounters counters_;
};

} // namespace enmc::fault

#endif // ENMC_FAULT_INJECTOR_H
