/**
 * @file
 * Seeded, rate-configurable fault injection for the ENMC memory system.
 *
 * Three fault classes (the ones a rank-level NMP deployment actually
 * sees):
 *  - bit flips on DRAM read data (single/double/multi per 64-bit word,
 *    sampled per-bit from a raw bit-error rate and pushed through the
 *    SECDED(72,64) model in ecc.h when ECC is enabled);
 *  - stuck-at rank failures (every read from a listed rank is
 *    detected-uncorrectable — the failure mode rank blacklisting exists
 *    for);
 *  - dropped or corrupted PRECHARGE-tunneled ENMC instructions (the C/A
 *    encoding carries parity, so both manifest as a failed delivery the
 *    host must repeat).
 *
 * Determinism contract: every sample is a pure function of
 * (seed, stream, index) via splitmix64 hashing — independent of call
 * order, thread count and previous draws. Each rank slice gets its own
 * injector (its own stream), so pooled simulations stay bit-identical
 * to serial ones and a run can be replayed from its seed.
 */

#ifndef ENMC_FAULT_INJECTOR_H
#define ENMC_FAULT_INJECTOR_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"

namespace enmc::fault {

/** Fault-model configuration (all off by default: bit-identical runs). */
struct FaultConfig
{
    bool enabled = false;       //!< master switch
    uint64_t seed = 1;          //!< injection seed (replayable)
    double data_ber = 0.0;      //!< raw per-bit flip probability on reads
    double inst_drop_p = 0.0;   //!< instruction delivery dropped
    double inst_corrupt_p = 0.0; //!< instruction C/A word corrupted
    bool ecc = true;            //!< SECDED(72,64) on read data
    std::vector<uint32_t> stuck_ranks; //!< ranks whose reads always fail

    bool rankStuck(uint32_t rank) const;

    /**
     * Build a config from ENMC_FAULT_* environment variables:
     * ENMC_FAULT=1 (master), ENMC_FAULT_SEED, ENMC_FAULT_BER,
     * ENMC_FAULT_INST_DROP, ENMC_FAULT_INST_CORRUPT, ENMC_FAULT_ECC=0|1,
     * ENMC_FAULT_STUCK_RANKS=comma,separated,ids.
     */
    static FaultConfig fromEnv();
};

/** Resilience policy applied by the backend layer on top of ECC. */
struct ResilienceConfig
{
    /** Re-runs of a slice that returned detected-uncorrectable data. */
    uint32_t max_retries = 2;
    /** Latency penalty of the first retry; doubles per further attempt. */
    Cycles retry_backoff_cycles = 2048;
    /** Consecutive slice failures before a rank is blacklisted. */
    uint32_t blacklist_after = 2;
    /** Accept approximate-only logits once retries are exhausted. */
    bool degrade = true;
};

/**
 * Bookkeeping of everything the injector did. The accounting invariant
 * (checked by the differential harness) is that every faulty word is
 * classified exactly once: injected_words == corrected + detected +
 * escaped.
 */
struct FaultCounters
{
    uint64_t injected_words = 0;   //!< 64-bit words with >= 1 flip
    uint64_t injected_bits = 0;    //!< raw bit flips injected
    uint64_t single_bit_words = 0; //!< words with exactly one flip
    uint64_t corrected = 0;        //!< words repaired by ECC
    uint64_t detected = 0;         //!< detected-uncorrectable words
    uint64_t escaped = 0;          //!< silent corruption reaching compute
    uint64_t inst_dropped = 0;     //!< instruction deliveries dropped
    uint64_t inst_corrupted = 0;   //!< instruction deliveries corrupted
    uint64_t stuck_reads = 0;      //!< reads served by a stuck rank

    FaultCounters &operator+=(const FaultCounters &o);
    /** Subtract a baseline snapshot (delta accounting for shared streams). */
    FaultCounters &operator-=(const FaultCounters &o);

    /** Every faulty word classified exactly once? */
    bool balanced() const
    {
        return injected_words == corrected + detected + escaped;
    }
};

/** One seeded fault stream (one per rank slice / simulated component). */
class FaultInjector
{
  public:
    /** @param stream Distinguishes independent streams of one seed. */
    explicit FaultInjector(const FaultConfig &cfg, uint64_t stream = 0);

    const FaultConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.enabled; }
    uint64_t stream() const { return stream_; }

    /**
     * Read one 64-bit word through the fault + ECC model. `index` must be
     * unique per architectural read (same index -> same outcome).
     * @param uncorrectable Set true when ECC detected an uncorrectable
     *        error (returned data is the raw corrupted word).
     * @return the word as delivered to the compute units.
     */
    uint64_t readWord(uint64_t word, uint64_t index, bool *uncorrectable);

    /**
     * Read a byte buffer word-by-word (tail bytes are zero-padded into a
     * final word). Detected-uncorrectable words are zeroed (erasure) —
     * callers decide whether to retry or degrade.
     * @param index_base First word index; the call consumes
     *        ceil(bytes/8) indices.
     * @return number of detected-uncorrectable words.
     */
    uint64_t readBuffer(std::span<uint8_t> bytes, uint64_t index_base);

    /** Fate of one instruction-delivery attempt. */
    enum class InstFate { Deliver, Drop, Corrupt };

    /** Sample (and count) the fate of delivery attempt `attempt`. */
    InstFate instructionFate(uint64_t attempt);

    /** Per-outcome word counts of a data-less (timing-only) read burst. */
    struct BurstOutcome
    {
        uint64_t corrected = 0;
        uint64_t detected = 0;
        uint64_t escaped = 0;
    };

    /**
     * Classify `words` 64-bit words of a timing-only read burst without
     * touching this injector's counters (callers keep their own stats —
     * the dram::Controller surfaces these through its StatGroup).
     */
    BurstOutcome classifyBurst(uint64_t words, uint64_t index_base) const;

    FaultCounters &counters() { return counters_; }
    const FaultCounters &counters() const { return counters_; }

  private:
    /** Uniform double in [0, 1), pure in (seed, stream, index, salt). */
    double uniformAt(uint64_t index, uint64_t salt) const;
    /** Binomial draw: flips among `nbits` bits at the configured BER. */
    int sampleFlipCount(uint64_t index, int nbits) const;
    /** The k distinct flipped bit positions for word `index`. */
    void sampleFlipBits(uint64_t index, int nbits, int k, int *out) const;
    /** Fault one word; classification only (no counter updates). */
    uint64_t faultWord(uint64_t word, uint64_t index, int k,
                       bool *uncorrectable, bool *silent) const;

    FaultConfig cfg_;
    uint64_t stream_;
    FaultCounters counters_;
};

} // namespace enmc::fault

#endif // ENMC_FAULT_INJECTOR_H
