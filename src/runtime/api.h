/**
 * @file
 * The programmer-facing ENMC API (paper Fig. 9): wraps screener training,
 * threshold tuning, and hardware execution behind a classifier object —
 * the C++ analogue of the paper's `enmc.Classifier(...)` /
 * `model.forward(...)` Python package.
 */

#ifndef ENMC_RUNTIME_API_H
#define ENMC_RUNTIME_API_H

#include <memory>
#include <vector>

#include "nn/classifier.h"
#include "runtime/system.h"
#include "screening/screener.h"
#include "screening/trainer.h"

namespace enmc::runtime {

/** Construction options for an offloaded classifier. */
struct ClassifierOptions
{
    double reduction_scale = 0.25;          //!< Fig. 12(a) default
    tensor::QuantBits quant = tensor::QuantBits::Int4; //!< Fig. 12(b)
    /** Target candidate count per inference (threshold is tuned to it). */
    size_t candidates = 64;
    screening::TrainerConfig trainer;
    /** Ranks to slice across in functional runs. */
    uint64_t ranks = 4;
    uint64_t seed = 42;
};

/** One inference's output. */
struct ClassifierOutput
{
    tensor::Vector probabilities;      //!< full-length, mixed accuracy
    std::vector<uint32_t> topk;        //!< top-k category indices
    std::vector<uint32_t> candidates;  //!< rows computed accurately
};

/**
 * An extreme classifier offloaded to ENMC memory.
 *
 * Usage:
 *   EnmcClassifier clf(teacher, options, system);
 *   clf.calibrate(train_h, val_h);             // Algorithm 1 + threshold
 *   auto out = clf.forward(h_batch, k);        // runs on the rank model
 */
class EnmcClassifier
{
  public:
    EnmcClassifier(const nn::Classifier &teacher,
                   const ClassifierOptions &options,
                   const SystemConfig &system = SystemConfig{});

    /** Distill the screener and tune the FILTER threshold (offline). */
    screening::TrainReport calibrate(
        const std::vector<tensor::Vector> &train_h,
        const std::vector<tensor::Vector> &val_h);

    /** Candidates-only classification of a batch on the ENMC model. */
    std::vector<ClassifierOutput> forward(
        const std::vector<tensor::Vector> &h_batch, size_t k);

    /** Reference full classification (host-only path). */
    std::vector<ClassifierOutput> forwardFull(
        const std::vector<tensor::Vector> &h_batch, size_t k) const;

    /** Persist the calibrated screener (train once, deploy many). */
    void save(const std::string &path) const;

    /** Restore a previously saved screener; marks the model calibrated. */
    void load(const std::string &path);

    const nn::Classifier &teacher() const { return teacher_; }
    const ClassifierOptions &options() const { return options_; }
    const screening::Screener &screener() const { return *screener_; }
    const EnmcSystem &system() const { return system_; }
    bool calibrated() const { return calibrated_; }

    /** Cycles spent by the representative rank in the last forward(). */
    Cycles lastRankCycles() const { return last_cycles_; }

  private:
    const nn::Classifier &teacher_;
    ClassifierOptions options_;
    EnmcSystem system_;
    std::unique_ptr<screening::Screener> screener_;
    bool calibrated_ = false;
    Cycles last_cycles_ = 0;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_API_H
