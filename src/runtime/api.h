/**
 * @file
 * The programmer-facing ENMC API (paper Fig. 9): wraps screener training,
 * threshold tuning, and hardware execution behind a classifier object —
 * the C++ analogue of the paper's `enmc.Classifier(...)` /
 * `model.forward(...)` Python package.
 *
 * Two serving-oriented extensions (ROADMAP item 4) sit on top of the
 * paper flow, both off by default and bit-identical when enabled with
 * default knobs:
 *  - a hot-label candidate cache (screening::CandidateCache) in front of
 *    screening — repeated feature sketches skip the full screening GEMV
 *    and go straight to exact executor rows for the cached candidate set;
 *  - versioned screener snapshots (runtime::ScreenerSnapshotSlot) so the
 *    screener can be retrained and hot-swapped while forward() keeps
 *    serving; every output records the snapshot epoch that computed it.
 */

#ifndef ENMC_RUNTIME_API_H
#define ENMC_RUNTIME_API_H

#include <memory>
#include <vector>

#include "nn/classifier.h"
#include "runtime/snapshot.h"
#include "runtime/system.h"
#include "screening/cache.h"
#include "screening/screener.h"
#include "screening/trainer.h"

namespace enmc::runtime {

/** Construction options for an offloaded classifier. */
struct ClassifierOptions
{
    double reduction_scale = 0.25;          //!< Fig. 12(a) default
    tensor::QuantBits quant = tensor::QuantBits::Int4; //!< Fig. 12(b)
    /** Weight-quantization scheme (symmetric = bit-identical default). */
    tensor::QuantScheme scheme = tensor::QuantScheme::Symmetric;
    /** Target candidate count per inference (threshold is tuned to it). */
    size_t candidates = 64;
    screening::TrainerConfig trainer;
    /** Ranks to slice across in functional runs. */
    uint64_t ranks = 4;
    uint64_t seed = 42;
    /** Candidate-cache knobs (capacity 0 = disabled, the default). */
    screening::CacheConfig cache;
    /** Snapshot grace-list knobs. */
    SnapshotConfig snapshot;
};

/** `base` with the `ENMC_CACHE_*` / `ENMC_SNAPSHOT_*` environment
 *  overrides applied (fail-loud, like every other `ENMC_*` knob). */
ClassifierOptions
classifierOptionsFromEnv(ClassifierOptions base = ClassifierOptions{});

/** One inference's output. */
struct ClassifierOutput
{
    tensor::Vector probabilities;      //!< full-length, mixed accuracy
    std::vector<uint32_t> topk;        //!< top-k category indices
    std::vector<uint32_t> candidates;  //!< rows computed accurately
    /** True when the candidate cache served this item (validated hit). */
    bool cache_hit = false;
    /** Screener snapshot epoch this item was computed under. */
    uint64_t snapshot_epoch = 0;
};

/**
 * An extreme classifier offloaded to ENMC memory.
 *
 * Usage:
 *   EnmcClassifier clf(teacher, options, system);
 *   clf.calibrate(train_h, val_h);             // Algorithm 1 + threshold
 *   auto out = clf.forward(h_batch, k);        // runs on the rank model
 *
 * Threading: forward() may run concurrently with swapScreener()/refresh()
 * (the serve executor thread vs. a control thread) — each forward()
 * acquires one snapshot and uses it for the whole batch. Everything else
 * (calibrate, save/load, the cache) is single-threaded by design.
 */
class EnmcClassifier
{
  public:
    EnmcClassifier(const nn::Classifier &teacher,
                   const ClassifierOptions &options,
                   const SystemConfig &system = SystemConfig{});

    /** Distill the screener and tune the FILTER threshold (offline). */
    screening::TrainReport calibrate(
        const std::vector<tensor::Vector> &train_h,
        const std::vector<tensor::Vector> &val_h);

    /** Candidates-only classification of a batch on the ENMC model. */
    std::vector<ClassifierOutput> forward(
        const std::vector<tensor::Vector> &h_batch, size_t k);

    /** Reference full classification (host-only path). */
    std::vector<ClassifierOutput> forwardFull(
        const std::vector<tensor::Vector> &h_batch, size_t k) const;

    /** Persist the calibrated screener (train once, deploy many). */
    void save(const std::string &path) const;

    /** Restore a previously saved screener; marks the model calibrated. */
    void load(const std::string &path);

    /**
     * Atomically publish a replacement screener (already trained; frozen
     * here if needed). In-flight forward() batches finish on the snapshot
     * they acquired; later batches see the new epoch. `projection_seed`
     * is the Rng seed the replacement's projection was drawn from (kept
     * so save() stays round-trippable). Returns the new epoch.
     */
    uint64_t swapScreener(std::unique_ptr<screening::Screener> screener,
                          uint64_t projection_seed);

    /**
     * Online refresh: distill a fresh screener against the current
     * teacher (seeded from options.seed + the next epoch so retrains
     * differ), tune its threshold, and hot-swap it in. Returns the new
     * epoch. Safe to call while another thread serves forward().
     */
    uint64_t refresh(const std::vector<tensor::Vector> &train_h,
                     const std::vector<tensor::Vector> &val_h);

    const nn::Classifier &teacher() const { return teacher_; }
    const ClassifierOptions &options() const { return options_; }
    /**
     * The current snapshot's screener. Only safe while no concurrent
     * swap can retire it (calibration, tests, the cluster path — which
     * does not support hot-swap); forward() itself never uses this.
     */
    const screening::Screener &screener() const;
    const EnmcSystem &system() const { return system_; }
    bool calibrated() const { return calibrated_; }

    /** Epoch of the currently published screener (1 after construction). */
    uint64_t snapshotEpoch() const { return slot_.epoch(); }
    ScreenerSnapshotSlot &snapshots() { return slot_; }
    screening::CandidateCache &cache() { return cache_; }

    /** Cycles spent by the representative rank in the last forward(). */
    Cycles lastRankCycles() const { return last_cycles_; }

  private:
    /** Build an untrained screener from these options (fresh seed). */
    std::unique_ptr<screening::Screener> makeScreener(uint64_t seed) const;

    /** Serve one validated cache hit host-side (exact rows from h). */
    ClassifierOutput serveHit(const screening::CacheEntry &entry,
                              const tensor::Vector &h, size_t k) const;

    const nn::Classifier &teacher_;
    ClassifierOptions options_;
    EnmcSystem system_;
    ScreenerSnapshotSlot slot_;
    /**
     * Mutable alias of the *initial* published screener, used only by
     * the offline calibrate()/load() flow (which runs before serving
     * starts, so the published snapshot is not yet shared). Hot-swapped
     * screeners are trained outside the slot and arrive frozen.
     */
    screening::Screener *calib_screener_ = nullptr;
    /** Rng seed the current screener's projection was drawn from. */
    uint64_t projection_seed_ = 0;
    screening::CandidateCache cache_;
    bool calibrated_ = false;
    Cycles last_cycles_ = 0;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_API_H
