/**
 * @file
 * The ENMC program compiler (paper Section 5.4, Fig. 9): translates one
 * classification call into the ENMC instruction stream the host memory
 * controller issues. "The compiler tiles the operation with initialized
 * parameters and hardware configurations and executes the instruction in
 * a loop."
 */

#ifndef ENMC_RUNTIME_COMPILER_H
#define ENMC_RUNTIME_COMPILER_H

#include "enmc/config.h"
#include "enmc/isa.h"
#include "enmc/task.h"

namespace enmc::runtime {

/** A compiled rank program plus its tiling decisions. */
struct CompiledJob
{
    arch::Program program;
    uint64_t tile_rows = 0;    //!< screening rows per weight tile
    uint64_t tiles = 0;        //!< number of screening tiles
};

/**
 * Compile a classification task for one rank.
 *
 * Layout of the emitted program:
 *   INIT   <dimension and base-address registers>
 *   LDR    sfeat, feature_base          ; quantized projected features
 *   repeat per tile t:
 *     LDR        swght, base + t*tile   ; double-buffered tile fetch
 *     MUL_ADD_INT4 sfeat, swght         ; screening GEMV on the tile
 *     FILTER     spsum                  ; threshold -> candidate indices
 *   BARRIER                             ; candidates-only compute drains
 *   SOFTMAX | SIGMOID                   ; SFU epilogue
 *   RETURN                              ; ship output buffer to host
 *
 * Executor instructions are not in the host program: the ENMC controller's
 * instruction generator creates them from the candidate indices.
 */
CompiledJob compileClassification(const arch::RankTask &task,
                                  const arch::EnmcConfig &cfg);

/** Rows per screening tile for a task under a hardware config. */
uint64_t screeningTileRows(const arch::RankTask &task,
                           const arch::EnmcConfig &cfg);

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_COMPILER_H
