/**
 * @file
 * Versioned screener snapshots with atomic hot-swap (ROADMAP item 4).
 *
 * The screener's logit geometry drifts as the upstream model retrains;
 * production serving cannot stop the world to refresh it. This slot
 * publishes epoch-tagged immutable snapshots through a mutex-guarded
 * `shared_ptr` swap: readers acquire the current snapshot once per
 * request (one pointer copy under a short lock — never torn, TSan-clean)
 * and keep using it for the whole forward pass even if a publish lands
 * mid-request. Every response records the epoch it was computed under.
 *
 * Reclamation is RCU-flavoured: a superseded snapshot moves to a retired
 * list instead of being destroyed (in-flight readers may still hold it);
 * `collect()` frees retired snapshots whose only remaining reference is
 * the list itself — i.e. after the grace period has naturally expired.
 * Epoch 0 means "nothing published yet"; the first publish is epoch 1
 * and epochs increase monotonically from there.
 */

#ifndef ENMC_RUNTIME_SNAPSHOT_H
#define ENMC_RUNTIME_SNAPSHOT_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "obs/registry.h"
#include "screening/screener.h"

namespace enmc::runtime {

/** Snapshot-slot knobs; parsed from `ENMC_SNAPSHOT_*` (fail-loud). */
struct SnapshotConfig
{
    /**
     * Hard cap on retired snapshots awaiting collection. Exceeding it is
     * fatal — it means readers are leaking snapshot references (or the
     * caller never collects), and unbounded retired weight copies are an
     * OOM in production clothing.
     */
    size_t max_retired = 8;
    /** Run collect() automatically at each publish (on by default). */
    bool auto_collect = true;

    void validate() const;
};

/** `base` with `ENMC_SNAPSHOT_*` overrides applied. */
SnapshotConfig snapshotConfigFromEnv(SnapshotConfig base = SnapshotConfig{});

/** An immutable epoch-tagged screener version. */
class ScreenerSnapshot
{
  public:
    ScreenerSnapshot(uint64_t epoch,
                     std::unique_ptr<screening::Screener> screener)
        : epoch_(epoch), screener_(std::move(screener)) {}

    uint64_t epoch() const { return epoch_; }
    const screening::Screener &screener() const { return *screener_; }

  private:
    uint64_t epoch_;
    std::unique_ptr<screening::Screener> screener_;
};

/** The publication point: one current snapshot + retired grace list. */
class ScreenerSnapshotSlot
{
  public:
    explicit ScreenerSnapshotSlot(const SnapshotConfig &cfg = {});

    /**
     * Publish a new screener version; returns its epoch. The previous
     * current snapshot (if any) retires; with auto_collect, expired
     * retirees are freed in the same call.
     */
    uint64_t publish(std::unique_ptr<screening::Screener> screener);

    /**
     * Acquire the current snapshot (nullptr before the first publish).
     * The returned shared_ptr keeps the snapshot alive for as long as
     * the caller holds it, across any number of concurrent publishes.
     */
    std::shared_ptr<const ScreenerSnapshot> current() const;

    /** Epoch of the current snapshot; 0 before the first publish. */
    uint64_t epoch() const;

    /**
     * Free retired snapshots with no outstanding readers; returns how
     * many were freed. Safe to call from any thread, any time.
     */
    size_t collect();

    /** Retired snapshots still awaiting their grace period. */
    size_t retiredCount() const;

    StatGroup &stats() { return stats_; }

  private:
    SnapshotConfig cfg_;
    mutable std::mutex mutex_;
    std::shared_ptr<const ScreenerSnapshot> current_;
    std::vector<std::shared_ptr<const ScreenerSnapshot>> retired_;
    uint64_t epoch_ = 0;

    StatGroup stats_;
    Counter &stat_publishes_;
    Counter &stat_swaps_;
    Counter &stat_retired_;
    Counter &stat_collected_;
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_SNAPSHOT_H
