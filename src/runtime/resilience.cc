#include "runtime/resilience.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/partition.h"

namespace enmc::runtime {

ResilientBackend::ResilientBackend(const SystemConfig &cfg)
    : Backend(cfg), inner_(cfg),
      stats_("runtime.resilient"),
      stat_slices_(stats_.addCounter("slices", "slice executions")),
      stat_retries_(stats_.addCounter("retries",
                                      "uncorrectable-slice re-executions")),
      stat_degraded_(stats_.addCounter(
          "degradedSlices",
          "slices answered with approximate logits after retry exhaustion")),
      stat_penalty_cycles_(stats_.addCounter(
          "penaltyCycles", "backoff cycles added by retries")),
      stat_blacklisted_(stats_.addCounter("blacklistedRanks",
                                          "stuck ranks dropped from jobs")),
      stats_registration_(stats_)
{
}

BackendCapabilities
ResilientBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.functional = true;
    caps.description = "ENMC rank model with SECDED-driven resilience: "
                       "slice retry with backoff, stuck-rank blacklisting "
                       "and approximate-logit degradation";
    return caps;
}

std::vector<uint32_t>
ResilientBackend::healthyRanks() const
{
    std::vector<uint32_t> out;
    for (uint32_t r = 0; r < cfg_.totalRanks(); ++r) {
        // A stuck rank fails every slice deterministically, so it always
        // reaches the blacklist threshold; `blacklist_after` only sets
        // how many failed probes the host pays before dropping it.
        if (cfg_.fault.enabled && cfg_.fault.rankStuck(r))
            continue;
        out.push_back(r);
    }
    return out;
}

arch::RankResult
ResilientBackend::runWithRetry(const arch::RankTask &task,
                               bool functional) const
{
    auto execute = [&](const arch::RankTask &t) {
        return functional ? inner_.runFunctionalSlice(t)
                          : inner_.runSlice(t);
    };

    arch::RankResult res = execute(task);
    fault::FaultInjector *injector = task.injector;
    if (injector == nullptr || !injector->enabled()) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stat_slices_;
        return res;
    }

    // A stuck rank fails deterministically: retrying is wasted work, and
    // the blacklisting path (runJob/runFunctionalJob) handles it.
    const bool stuck = injector->config().rankStuck(task.rank_index);

    // With retry_weak off (differentiated-protection policy), erasures on
    // the weak screener path never trigger a slice retry: they only
    // perturb candidate membership, which the exact executor recompute
    // already bounds. Only strong-path erasures are worth re-reading.
    auto retryWorthy = [this](const arch::RankResult &r) {
        return cfg_.resilience.retry_weak
                   ? r.uncorrectable_words > 0
                   : r.uncorrectable_strong_words > 0;
    };

    Cycles backoff = cfg_.resilience.retry_backoff_cycles;
    Cycles penalty = 0;
    uint64_t retries = 0;
    while (retryWorthy(res) && !stuck &&
           retries < cfg_.resilience.max_retries) {
        ++retries;
        penalty += backoff;
        backoff *= 2;
        // A retry re-reads DRAM: transient faults draw fresh samples from
        // a per-attempt stream; its counters merge back into the caller's
        // injector so the accounting invariant spans all attempts.
        fault::FaultInjector retry_injector(
            injector->config(),
            injector->stream() + (retries << 32));
        arch::RankTask retry_task = task;
        retry_task.injector = &retry_injector;
        res = execute(retry_task);
        injector->counters() += retry_injector.counters();
    }
    res.cycles += penalty;
    res.fault_retries = retries;

    if (retryWorthy(res) && !stuck && !cfg_.resilience.degrade)
        ENMC_PANIC("slice still uncorrectable after ", retries,
                   " retries and degradation is disabled");

    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stat_slices_;
        stat_retries_ += retries;
        stat_penalty_cycles_ += penalty;
        if (retryWorthy(res) && !stuck)
            ++stat_degraded_;
    }
    return res;
}

arch::RankResult
ResilientBackend::runSlice(const arch::RankTask &task) const
{
    return runWithRetry(task, /*functional=*/false);
}

arch::RankResult
ResilientBackend::runFunctionalSlice(const arch::RankTask &task) const
{
    return runWithRetry(task, /*functional=*/true);
}

TimingResult
ResilientBackend::runJob(const JobSpec &spec) const
{
    const std::vector<uint32_t> healthy = healthyRanks();
    ENMC_ASSERT(!healthy.empty(), "every rank is blacklisted");
    const uint64_t ranks = healthy.size();

    // Repartition over the survivors: fewer ranks, bigger slices.
    arch::RankTask task = EnmcSystem::makeSliceTask(
        spec, RankPartitioner::sliceRows(spec.categories, ranks),
        RankPartitioner::evenShare(spec.candidates, ranks));
    task.rank_index = healthy.front();

    // Same truncate-and-scale policy as the generic backend path.
    const uint64_t max_rows = 64 * 1024;
    double scale = 1.0;
    if (task.categories > max_rows) {
        scale = static_cast<double>(task.categories) / max_rows;
        task.expected_candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(task.expected_candidates / scale));
        task.categories = max_rows;
    }

    const arch::RankResult r = runSlice(task);
    TimingResult res;
    res.rank = r;
    res.ranks = ranks;
    res.extrapolated = scale != 1.0;
    res.rank_cycles = static_cast<Cycles>(r.cycles * scale);
    // Discovering each dead rank cost the host `blacklist_after` failed
    // probe slices of one backoff each before it was dropped.
    const uint64_t blacklisted = cfg_.totalRanks() - ranks;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stat_blacklisted_ += blacklisted;
    }
    res.rank_cycles += blacklisted * cfg_.resilience.blacklist_after *
                       cfg_.resilience.retry_backoff_cycles;
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);
    if (res.extrapolated) {
        res.rank.cycles = res.rank_cycles;
        res.rank.screen_bytes =
            static_cast<uint64_t>(r.screen_bytes * scale);
        res.rank.exec_bytes = static_cast<uint64_t>(r.exec_bytes * scale);
        res.rank.output_bytes =
            static_cast<uint64_t>(r.output_bytes * scale);
        res.rank.dram_reads = static_cast<uint64_t>(r.dram_reads * scale);
        res.rank.dram_writes = static_cast<uint64_t>(r.dram_writes * scale);
        res.rank.dram_acts = static_cast<uint64_t>(r.dram_acts * scale);
        res.rank.dram_refs = static_cast<uint64_t>(r.dram_refs * scale);
    }
    return res;
}

EnmcSystem::FunctionalResult
ResilientBackend::runFunctionalJob(const nn::Classifier &classifier,
                                   const screening::Screener &screener,
                                   const std::vector<tensor::Vector> &h_batch,
                                   uint64_t ranks_to_use) const
{
    const std::vector<uint32_t> healthy = healthyRanks();
    ENMC_ASSERT(!healthy.empty(), "every rank is blacklisted");
    SystemConfig cfg = cfg_;
    cfg.functional_rank_ids = healthy;
    cfg.resilient = true;
    const uint64_t ranks =
        std::min<uint64_t>(ranks_to_use, healthy.size());
    return EnmcSystem(cfg).runFunctional(classifier, screener, h_batch,
                                         ranks);
}

} // namespace enmc::runtime
