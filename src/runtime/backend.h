/**
 * @file
 * The execution-backend abstraction: one interface in front of the three
 * execution stacks the repo grew — the cycle-level ENMC rank model
 * (`arch::EnmcRank`), the rank-level NMP baselines (`nmp::NmpEngine`:
 * NDA / Chameleon / TensorDIMM / TensorDIMM-Large) and the CPU roofline
 * (`nmp::cpu*Time`).
 *
 * Benches, examples and future serving layers select a backend by name
 * from the string-keyed registry instead of `#include`-level dispatch:
 *
 *   auto backend = runtime::createBackend("tensordimm");
 *   runtime::TimingResult r = backend->runJob(spec);
 *
 * All backends express results in the DDR command-clock domain of the
 * system configuration they were created with, so timings compare
 * directly (the NMPO-style uniform device abstraction the profiling
 * layer needs).
 */

#ifndef ENMC_RUNTIME_BACKEND_H
#define ENMC_RUNTIME_BACKEND_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "enmc/task.h"
#include "nmp/cpu.h"
#include "nmp/engine.h"
#include "runtime/system.h"

namespace enmc::runtime {

/** What a backend can do (capability negotiation for callers). */
struct BackendCapabilities
{
    /** Cycle-level (or analytic) timing of a rank slice. */
    bool timing = true;
    /** Bit-accurate functional slices (tensor payloads honoured). */
    bool functional = false;
    std::string description;
};

/** One execution target behind the uniform device interface. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Registry key ("enmc", "tensordimm", "cpu", ...). */
    virtual std::string name() const = 0;

    virtual BackendCapabilities capabilities() const = 0;

    /** Timing execution of one rank slice (payloads ignored/absent). */
    virtual arch::RankResult runSlice(const arch::RankTask &task) const = 0;

    /**
     * Functional execution of one rank slice (task carries tensor
     * payloads). Panics unless `capabilities().functional`.
     */
    virtual arch::RankResult
    runFunctionalSlice(const arch::RankTask &task) const;

    /**
     * Full-job timing: partition the job across the system's ranks and
     * run the representative slice. The default truncates very large
     * slices and scales linearly (screening is tile-homogeneous);
     * backends with their own extrapolation override this.
     */
    virtual TimingResult runJob(const JobSpec &spec) const;

    const SystemConfig &config() const { return cfg_; }

  protected:
    explicit Backend(const SystemConfig &cfg) : cfg_(cfg) {}

    SystemConfig cfg_;
};

/** The ENMC rank model (Screener + Executor + FILTER, Fig. 7). */
class EnmcBackend : public Backend
{
  public:
    explicit EnmcBackend(const SystemConfig &cfg);

    std::string name() const override { return "enmc"; }
    BackendCapabilities capabilities() const override;
    arch::RankResult runSlice(const arch::RankTask &task) const override;
    arch::RankResult
    runFunctionalSlice(const arch::RankTask &task) const override;
    TimingResult runJob(const JobSpec &spec) const override;
};

/** A Table 4 NMP baseline (NDA / Chameleon / TensorDIMM / -Large). */
class NmpBackend : public Backend
{
  public:
    NmpBackend(std::string name, const nmp::EngineConfig &engine,
               const SystemConfig &cfg);

    std::string name() const override { return name_; }
    BackendCapabilities capabilities() const override;
    arch::RankResult runSlice(const arch::RankTask &task) const override;

    const nmp::EngineConfig &engineConfig() const { return engine_; }

  private:
    std::string name_;
    nmp::EngineConfig engine_;
};

/** The host CPU roofline (Section 6.2's Xeon 8280). */
class CpuBackend : public Backend
{
  public:
    /**
     * @param screening true = CPU + approximate screening; false = the
     *        full-classification baseline everything normalizes to.
     */
    CpuBackend(const SystemConfig &cfg, bool screening = true,
               const nmp::CpuConfig &cpu = nmp::CpuConfig{});

    std::string name() const override
    {
        return screening_ ? "cpu" : "cpu-full";
    }
    BackendCapabilities capabilities() const override;
    arch::RankResult runSlice(const arch::RankTask &task) const override;
    TimingResult runJob(const JobSpec &spec) const override;

  private:
    double sliceSeconds(const arch::RankTask &task) const;

    bool screening_;
    nmp::CpuConfig cpu_;
};

/** Builds a backend against a system configuration. */
using BackendFactory =
    std::function<std::unique_ptr<Backend>(const SystemConfig &)>;

/**
 * String-keyed backend registry. The built-in backends ("enmc", "nda",
 * "chameleon", "tensordimm", "tensordimm-large", "cpu", "cpu-full") are
 * registered on first use; plugins may add more.
 */
class BackendRegistry
{
  public:
    static BackendRegistry &instance();

    /** Register (or replace) a factory under `name`. */
    void add(const std::string &name, BackendFactory factory);

    bool contains(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Instantiate `name`; panics listing the registry on a miss. */
    std::unique_ptr<Backend>
    create(const std::string &name,
           const SystemConfig &cfg = SystemConfig{}) const;

  private:
    BackendRegistry();

    std::map<std::string, BackendFactory> factories_;
};

/** Shorthand for BackendRegistry::instance().create(...). */
std::unique_ptr<Backend>
createBackend(const std::string &name,
              const SystemConfig &cfg = SystemConfig{});

/** Shorthand for BackendRegistry::instance().names(). */
std::vector<std::string> backendNames();

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_BACKEND_H
