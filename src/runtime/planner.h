/**
 * @file
 * Profile-driven adaptive offload planner (NMPO, arXiv:2106.15284) and
 * the `"auto"` registry backend built on it.
 *
 * ENMC's evaluation shows the crossover between host-CPU SIMD and
 * in-DIMM screening shifts with batch size and candidate count, so a
 * static backend choice leaves throughput on the table. The planner
 * closes that gap at runtime: it bins requests by (batch size, candidate
 * count, workload shape), seeds per-bin cost estimates from a short
 * profiling warm-up (round-robin over the candidate backends), then
 * routes each job to the argmin-cost backend under an exponentially
 * decayed latency estimator per (bin, backend). Periodic forced
 * exploration re-probes non-best candidates so the plan adapts when
 * traffic shifts or a backend degrades; backends marked unavailable
 * (e.g. blacklisted ranks, a scripted fault burst) are never routed to.
 *
 * Determinism contract: decisions are a pure function of (decision
 * sequence, config, seed). The planner holds no clocks and draws
 * randomness only from its own seeded Rng at exploration points, so a
 * replayed trace reproduces the same decision sequence bit for bit, for
 * any `ENMC_THREADS`. Functional outputs never depend on the decision:
 * the planner routes *timing* only, so logits stay memcmp-equal to every
 * fixed-backend reference.
 */

#ifndef ENMC_RUNTIME_PLANNER_H
#define ENMC_RUNTIME_PLANNER_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/registry.h"
#include "runtime/backend.h"

namespace enmc::runtime {

/** Planner knobs and their `ENMC_PLAN_*` environment overrides. */
struct PlannerConfig
{
    /**
     * Backend registry keys the planner chooses between. Names missing
     * from the registry are skipped (a plugin may be absent from this
     * build); fewer than two usable candidates is a fatal configuration
     * error — a single-candidate planner is a fixed backend in disguise.
     */
    std::vector<std::string> candidates = {
        "cpu",        "enmc",       "enmc-resilient",
        "nda",        "chameleon",  "tensordimm",
        "tensordimm-large"};                      // ENMC_PLAN_BACKENDS

    /** Warm-up probes per (bin, backend) before cost-based routing. */
    uint64_t warmup_rounds = 1;                   // ENMC_PLAN_WARMUP_ROUNDS

    /**
     * Force one exploration probe (a seeded draw over the non-best
     * candidates) every N decisions per bin; 0 disables exploration.
     */
    uint64_t explore_every = 64;                  // ENMC_PLAN_EXPLORE_EVERY

    /** EWMA history weight in [0, 1): est = decay*est + (1-decay)*obs. */
    double decay = 0.3;                           // ENMC_PLAN_DECAY

    /** Seed of the exploration draw stream. */
    uint64_t seed = 42;                           // ENMC_PLAN_SEED

    /**
     * Scripted mid-run degradation (deterministic fault burst): after
     * `kill_after` planned batches, `kill_backend` is marked unavailable;
     * `revive_after` more batches later it returns (0 = never revives).
     * Empty `kill_backend` disables the script.
     */
    std::string kill_backend;                     // ENMC_PLAN_KILL_BACKEND
    uint64_t kill_after = 0;                      // ENMC_PLAN_KILL_AFTER
    uint64_t revive_after = 0;                    // ENMC_PLAN_REVIVE_AFTER
};

/** `base` with every `ENMC_PLAN_*` override applied; fatal on bad values. */
PlannerConfig plannerConfigFromEnv(PlannerConfig base = PlannerConfig{});

/** Fatal unless the configuration is self-consistent. */
void validate(const PlannerConfig &cfg);

/**
 * One traffic bin: jobs that share a batch-size bucket, a candidate-count
 * bucket and a workload shape plan together. Buckets are power-of-two so
 * nearby shapes pool their observations.
 */
struct PlanBin
{
    uint32_t batch_bucket = 0;  //!< ceil(log2(batch))
    uint32_t cand_bucket = 0;   //!< ceil(log2(candidates))
    uint64_t categories = 0;    //!< workload identity: label-space size
    uint64_t hidden = 0;        //!< workload identity: hidden width

    bool operator<(const PlanBin &o) const
    {
        return std::tie(batch_bucket, cand_bucket, categories, hidden) <
               std::tie(o.batch_bucket, o.cand_bucket, o.categories,
                        o.hidden);
    }
    bool operator==(const PlanBin &o) const
    {
        return batch_bucket == o.batch_bucket &&
               cand_bucket == o.cand_bucket &&
               categories == o.categories && hidden == o.hidden;
    }

    /** "b3.c9.l670208.d512" — for logs and debugging. */
    std::string label() const;
};

/**
 * The adaptive offload planner: per-bin EWMA latency estimators over a
 * fixed candidate list, warm-up round-robin seeding, argmin routing,
 * seeded periodic exploration, and availability masking.
 *
 * Thread safety: plan/observe/setAvailable lock internally (the live
 * serve executor and the main thread may interleave); the decision
 * sequence is still deterministic because callers serialize dispatches.
 */
class OffloadPlanner
{
  public:
    enum class Kind : uint8_t {
        Warmup,   //!< round-robin profiling probe (estimator seeding)
        Explore,  //!< forced re-probe of a non-best candidate
        Steady,   //!< argmin-cost routing
    };

    struct Decision
    {
        size_t backend = 0; //!< index into names()
        Kind kind = Kind::Steady;
    };

    /** @param names Resolved candidate names (>= 2, registry-validated). */
    OffloadPlanner(const PlannerConfig &cfg,
                   std::vector<std::string> names);

    /** The bin a job plans in. */
    static PlanBin binFor(const JobSpec &spec);

    /** Decide where the next job in `bin` runs. Call exactly once per
     *  dispatched batch, before `observe`. */
    Decision plan(const PlanBin &bin);

    /** Feed the observed latency of a planned dispatch back. */
    void observe(const PlanBin &bin, size_t backend, double latency_us);

    /** Mark a candidate (un)available; unavailable backends are never
     *  planned. Panics if nothing would remain available. */
    void setAvailable(const std::string &name, bool available);
    bool isAvailable(size_t backend) const;

    const std::vector<std::string> &names() const { return names_; }
    size_t candidateCount() const { return names_.size(); }

    /** Current EWMA estimate (us); negative if never observed. */
    double estimateUs(const PlanBin &bin, size_t backend) const;

    /** Argmin estimate over available candidates; -1 before any
     *  observation in the bin. */
    int argminEstimate(const PlanBin &bin) const;

    uint64_t planCount() const;

    const PlannerConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }

  private:
    struct BinState
    {
        std::vector<double> estimate_us;   //!< EWMA per candidate
        std::vector<uint64_t> observations;
        uint64_t plans = 0;
        uint64_t since_explore = 0;
    };

    BinState &binState(const PlanBin &bin);
    size_t indexOf(const std::string &name) const;
    int argminLocked(const BinState &b) const;
    size_t availableCount() const;
    void setAvailableLocked(size_t backend, bool available);
    void applyScriptLocked();

    PlannerConfig cfg_;
    std::vector<std::string> names_;
    std::vector<bool> available_;
    std::map<PlanBin, BinState> bins_;
    Rng explore_rng_;
    uint64_t plans_ = 0;
    int last_steady_ = -1;  //!< previous steady choice (switch detection)
    bool script_killed_ = false;
    bool script_revived_ = false;

    mutable std::mutex mutex_;

    // Planner stats ("plan.*"): per-backend win counts, switch events,
    // estimator snapshots. Per-backend stats are keyed "dispatch.<name>"
    // / "estimateUs.<name>" so the metrics validator can cross-check
    // Σ dispatches against the serve batcher.
    StatGroup stats_;
    Counter &stat_plans_;
    Counter &stat_warmup_;
    Counter &stat_explore_;
    Counter &stat_steady_;
    Counter &stat_switches_;
    Counter &stat_dead_;
    Counter &stat_bins_;
    Counter &stat_kills_;
    Counter &stat_revivals_;
    std::vector<Counter *> stat_dispatch_;
    std::vector<ScalarStat *> stat_estimate_;
    obs::StatRegistration stats_registration_;
};

/**
 * The `"auto"` registry backend: a planner in front of real candidate
 * backends. `runJob` plans per call, routes to the chosen backend
 * (memoizing each candidate's deterministic timing per job shape) and
 * feeds the observed latency back. Construction fails loudly — listing
 * the candidate set — when fewer than two candidates resolve against the
 * registry; a silent single-backend planner would defeat the point.
 */
class AutoBackend : public Backend
{
  public:
    explicit AutoBackend(const SystemConfig &cfg,
                         PlannerConfig plan = plannerConfigFromEnv());

    std::string name() const override { return "auto"; }
    BackendCapabilities capabilities() const override;
    arch::RankResult runSlice(const arch::RankTask &task) const override;
    TimingResult runJob(const JobSpec &spec) const override;

    /** One planned dispatch with full provenance (the serve loop records
     *  `backend` on every response of the batch). */
    struct PlannedRun
    {
        TimingResult timing;
        std::string backend;
        OffloadPlanner::Kind kind = OffloadPlanner::Kind::Steady;
    };
    PlannedRun runPlanned(const JobSpec &spec) const;

    OffloadPlanner &planner() const { return *planner_; }

  private:
    const Backend &candidate(size_t idx) const { return *backends_[idx]; }

    std::vector<std::unique_ptr<Backend>> backends_;
    // The planner adapts across const runJob calls (logically the
    // backend's routing state, not its configuration).
    std::unique_ptr<OffloadPlanner> planner_;
    mutable std::mutex memo_mutex_;
    // Candidate timings are deterministic in (backend, job shape), so
    // each probe is simulated once per shape.
    using MemoKey = std::tuple<size_t, uint64_t, uint64_t, uint64_t,
                               uint64_t, uint64_t, uint8_t, bool>;
    mutable std::map<MemoKey, TimingResult> memo_;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_PLANNER_H
