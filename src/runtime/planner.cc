#include "runtime/planner.h"

#include <algorithm>
#include <sstream>

#include "common/env.h"
#include "common/logging.h"

namespace enmc::runtime {

namespace {

uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bucket = 0;
    for (uint64_t p = 1; p < v; p <<= 1)
        ++bucket;
    return bucket;
}

std::string
join(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names)
        out += (out.empty() ? "" : ", ") + n;
    return out;
}

} // namespace

// ---------------------------------------------------------------- config

PlannerConfig
plannerConfigFromEnv(PlannerConfig base)
{
    if (const char *raw = envString("ENMC_PLAN_BACKENDS")) {
        std::vector<std::string> names;
        std::string token;
        std::istringstream ss{std::string(raw)};
        while (std::getline(ss, token, ','))
            names.push_back(token);
        base.candidates = std::move(names);
    }
    base.warmup_rounds =
        envU64("ENMC_PLAN_WARMUP_ROUNDS", base.warmup_rounds);
    base.explore_every =
        envU64("ENMC_PLAN_EXPLORE_EVERY", base.explore_every);
    base.decay = envF64("ENMC_PLAN_DECAY", base.decay);
    base.seed = envU64("ENMC_PLAN_SEED", base.seed);
    if (const char *kill = envString("ENMC_PLAN_KILL_BACKEND"))
        base.kill_backend = kill;
    base.kill_after = envU64("ENMC_PLAN_KILL_AFTER", base.kill_after);
    base.revive_after = envU64("ENMC_PLAN_REVIVE_AFTER", base.revive_after);
    validate(base);
    return base;
}

void
validate(const PlannerConfig &cfg)
{
    if (cfg.candidates.size() < 2)
        ENMC_FATAL("planner needs at least two candidate backends, got ",
                   cfg.candidates.size(), " [", join(cfg.candidates),
                   "] — a single-candidate planner is a fixed backend in "
                   "disguise; select that backend directly instead");
    for (size_t i = 0; i < cfg.candidates.size(); ++i) {
        const std::string &name = cfg.candidates[i];
        if (name.empty())
            ENMC_FATAL("planner candidate ", i, " is an empty name "
                       "(check ENMC_PLAN_BACKENDS for stray commas)");
        if (name == "auto" || name == "cluster")
            ENMC_FATAL("planner candidate '", name, "' would nest a "
                       "meta-backend inside the planner");
        for (size_t j = i + 1; j < cfg.candidates.size(); ++j)
            if (cfg.candidates[j] == name)
                ENMC_FATAL("planner candidate '", name, "' listed twice "
                           "in [", join(cfg.candidates), "]");
    }
    if (cfg.warmup_rounds == 0)
        ENMC_FATAL("ENMC_PLAN_WARMUP_ROUNDS must be >= 1: the estimator "
                   "needs at least one profiling probe per backend");
    if (!(cfg.decay >= 0.0 && cfg.decay < 1.0))
        ENMC_FATAL("ENMC_PLAN_DECAY must lie in [0, 1), got ", cfg.decay);
    if (!cfg.kill_backend.empty()) {
        const auto &c = cfg.candidates;
        if (std::find(c.begin(), c.end(), cfg.kill_backend) == c.end())
            ENMC_FATAL("ENMC_PLAN_KILL_BACKEND '", cfg.kill_backend,
                       "' is not a planner candidate [", join(c), "]");
    }
}

// ------------------------------------------------------------------- bin

std::string
PlanBin::label() const
{
    return "b" + std::to_string(batch_bucket) + ".c" +
           std::to_string(cand_bucket) + ".l" + std::to_string(categories) +
           ".d" + std::to_string(hidden);
}

PlanBin
OffloadPlanner::binFor(const JobSpec &spec)
{
    PlanBin bin;
    bin.batch_bucket = ceilLog2(std::max<uint64_t>(1, spec.batch));
    bin.cand_bucket = ceilLog2(std::max<uint64_t>(1, spec.candidates));
    bin.categories = spec.categories;
    bin.hidden = spec.hidden;
    return bin;
}

// --------------------------------------------------------------- planner

OffloadPlanner::OffloadPlanner(const PlannerConfig &cfg,
                               std::vector<std::string> names)
    : cfg_(cfg),
      names_(std::move(names)),
      available_(names_.size(), true),
      explore_rng_(cfg.seed),
      stats_("plan"),
      stat_plans_(stats_.addCounter("plans", "planner decisions made")),
      stat_warmup_(stats_.addCounter("warmupPlans",
                                     "round-robin profiling probes")),
      stat_explore_(stats_.addCounter("explorePlans",
                                      "forced exploration probes")),
      stat_steady_(stats_.addCounter("steadyPlans",
                                     "argmin-cost routing decisions")),
      stat_switches_(stats_.addCounter(
          "switchEvents", "steady-state backend changed vs previous")),
      stat_dead_(stats_.addCounter(
          "deadDispatches", "plans routed to an unavailable backend "
                            "(must stay zero)")),
      stat_bins_(stats_.addCounter("bins", "distinct traffic bins seen")),
      stat_kills_(stats_.addCounter("killEvents",
                                    "scripted backend kills applied")),
      stat_revivals_(stats_.addCounter("reviveEvents",
                                       "scripted backend revivals applied")),
      stats_registration_(stats_)
{
    ENMC_ASSERT(names_.size() >= 2,
                "planner constructed with ", names_.size(), " candidates");
    for (const auto &name : names_) {
        stat_dispatch_.push_back(&stats_.addCounter(
            "dispatch." + name, "jobs the planner routed to " + name));
        stat_estimate_.push_back(&stats_.addScalar(
            "estimateUs." + name,
            "EWMA latency-estimate trajectory (us) for " + name));
    }
}

size_t
OffloadPlanner::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return i;
    ENMC_PANIC("planner has no candidate '", name, "' (candidates: ",
               join(names_), ")");
}

OffloadPlanner::BinState &
OffloadPlanner::binState(const PlanBin &bin)
{
    auto it = bins_.find(bin);
    if (it == bins_.end()) {
        BinState fresh;
        fresh.estimate_us.assign(names_.size(), -1.0);
        fresh.observations.assign(names_.size(), 0);
        it = bins_.emplace(bin, std::move(fresh)).first;
        ++stat_bins_;
    }
    return it->second;
}

int
OffloadPlanner::argminLocked(const BinState &b) const
{
    int best = -1;
    for (size_t i = 0; i < names_.size(); ++i) {
        if (!available_[i] || b.observations[i] == 0)
            continue;
        if (best < 0 || b.estimate_us[i] < b.estimate_us[best])
            best = static_cast<int>(i);
    }
    return best;
}

size_t
OffloadPlanner::availableCount() const
{
    size_t n = 0;
    for (bool a : available_)
        n += a;
    return n;
}

void
OffloadPlanner::setAvailableLocked(size_t backend, bool available)
{
    ENMC_ASSERT(backend < names_.size(), "backend index out of range");
    if (available_[backend] == available)
        return;
    if (!available && availableCount() == 1)
        ENMC_PANIC("planner cannot mark '", names_[backend],
                   "' unavailable: no candidate would remain");
    available_[backend] = available;
}

void
OffloadPlanner::applyScriptLocked()
{
    if (cfg_.kill_backend.empty())
        return;
    const size_t victim = indexOf(cfg_.kill_backend);
    if (!script_killed_ && plans_ >= cfg_.kill_after) {
        setAvailableLocked(victim, false);
        script_killed_ = true;
        ++stat_kills_;
        inform("planner fault script: killed '", cfg_.kill_backend,
               "' after ", plans_, " plans");
    }
    if (script_killed_ && !script_revived_ && cfg_.revive_after > 0 &&
        plans_ >= cfg_.kill_after + cfg_.revive_after) {
        setAvailableLocked(victim, true);
        script_revived_ = true;
        ++stat_revivals_;
        inform("planner fault script: revived '", cfg_.kill_backend,
               "' after ", plans_, " plans");
    }
}

OffloadPlanner::Decision
OffloadPlanner::plan(const PlanBin &bin)
{
    std::lock_guard<std::mutex> lock(mutex_);
    applyScriptLocked();
    BinState &b = binState(bin);
    ++plans_;
    ++stat_plans_;
    ++b.plans;

    Decision d;
    // Warm-up: round-robin until every available candidate has seeded its
    // estimator. A revived backend whose warm-up was cut short re-enters
    // here; one that finished warm-up is re-probed by exploration.
    int probe = -1;
    for (size_t i = 0; i < names_.size(); ++i) {
        if (available_[i] && b.observations[i] < cfg_.warmup_rounds) {
            probe = static_cast<int>(i);
            break;
        }
    }
    if (probe >= 0) {
        d.backend = static_cast<size_t>(probe);
        d.kind = Kind::Warmup;
        ++stat_warmup_;
    } else {
        const int best = argminLocked(b);
        ENMC_ASSERT(best >= 0,
                    "no available candidate has an estimate in bin ",
                    bin.label());
        bool explored = false;
        if (cfg_.explore_every > 0 &&
            ++b.since_explore >= cfg_.explore_every) {
            std::vector<size_t> others;
            for (size_t i = 0; i < names_.size(); ++i)
                if (available_[i] && static_cast<int>(i) != best)
                    others.push_back(i);
            if (!others.empty()) {
                b.since_explore = 0;
                const auto pick = explore_rng_.uniformInt(
                    0, static_cast<int64_t>(others.size()) - 1);
                d.backend = others[static_cast<size_t>(pick)];
                d.kind = Kind::Explore;
                ++stat_explore_;
                explored = true;
            }
        }
        if (!explored) {
            d.backend = static_cast<size_t>(best);
            d.kind = Kind::Steady;
            ++stat_steady_;
            if (last_steady_ >= 0 && last_steady_ != best)
                ++stat_switches_;
            last_steady_ = best;
        }
    }

    if (!available_[d.backend]) {
        ++stat_dead_;
        ENMC_PANIC("planner routed to unavailable backend '",
                   names_[d.backend], "' in bin ", bin.label());
    }
    ++(*stat_dispatch_[d.backend]);
    return d;
}

void
OffloadPlanner::observe(const PlanBin &bin, size_t backend,
                        double latency_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ENMC_ASSERT(backend < names_.size(), "backend index out of range");
    BinState &b = binState(bin);
    double &est = b.estimate_us[backend];
    est = b.observations[backend] == 0
              ? latency_us
              : cfg_.decay * est + (1.0 - cfg_.decay) * latency_us;
    ++b.observations[backend];
    stat_estimate_[backend]->sample(est);
}

void
OffloadPlanner::setAvailable(const std::string &name, bool available)
{
    std::lock_guard<std::mutex> lock(mutex_);
    setAvailableLocked(indexOf(name), available);
}

bool
OffloadPlanner::isAvailable(size_t backend) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ENMC_ASSERT(backend < names_.size(), "backend index out of range");
    return available_[backend];
}

double
OffloadPlanner::estimateUs(const PlanBin &bin, size_t backend) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ENMC_ASSERT(backend < names_.size(), "backend index out of range");
    const auto it = bins_.find(bin);
    return it == bins_.end() ? -1.0 : it->second.estimate_us[backend];
}

int
OffloadPlanner::argminEstimate(const PlanBin &bin) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = bins_.find(bin);
    return it == bins_.end() ? -1 : argminLocked(it->second);
}

uint64_t
OffloadPlanner::planCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_;
}

// ---------------------------------------------------------- auto backend

AutoBackend::AutoBackend(const SystemConfig &cfg, PlannerConfig plan)
    : Backend(cfg)
{
    validate(plan);
    const auto &registry = BackendRegistry::instance();
    std::vector<std::string> resolved;
    for (const auto &name : plan.candidates) {
        if (!registry.contains(name)) {
            warn("planner: skipping unregistered candidate backend '",
                 name, "'");
            continue;
        }
        resolved.push_back(name);
    }
    if (resolved.size() < 2)
        ENMC_FATAL("backend 'auto' needs at least two registered candidate "
                   "backends but only ", resolved.size(), " of [",
                   join(plan.candidates), "] resolved (registered: ",
                   join(registry.names()), "); a single-candidate planner "
                   "is a fixed backend — select it directly instead");
    if (!plan.kill_backend.empty() &&
        std::find(resolved.begin(), resolved.end(), plan.kill_backend) ==
            resolved.end())
        ENMC_FATAL("ENMC_PLAN_KILL_BACKEND '", plan.kill_backend,
                   "' did not resolve against the registry (resolved "
                   "candidates: ", join(resolved), ")");
    for (const auto &name : resolved)
        backends_.push_back(registry.create(name, cfg));
    plan.candidates = resolved;
    planner_ = std::make_unique<OffloadPlanner>(plan, std::move(resolved));
}

BackendCapabilities
AutoBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.functional = false;
    caps.description =
        "adaptive offload planner (NMPO): profiles the candidate backends "
        "per traffic bin and routes each job to the argmin-cost one";
    return caps;
}

arch::RankResult
AutoBackend::runSlice(const arch::RankTask &task) const
{
    PlanBin bin;
    bin.batch_bucket = ceilLog2(std::max<uint64_t>(1, task.batch));
    bin.cand_bucket =
        ceilLog2(std::max<uint64_t>(1, task.expected_candidates));
    bin.categories = task.categories;
    bin.hidden = task.hidden;

    const OffloadPlanner::Decision d = planner_->plan(bin);
    const arch::RankResult r = candidate(d.backend).runSlice(task);
    planner_->observe(bin, d.backend,
                      cyclesToSeconds(r.cycles, cfg_.timing.freq_hz) * 1e6);
    return r;
}

AutoBackend::PlannedRun
AutoBackend::runPlanned(const JobSpec &spec) const
{
    const PlanBin bin = OffloadPlanner::binFor(spec);
    const OffloadPlanner::Decision d = planner_->plan(bin);

    TimingResult timing;
    {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        const MemoKey key{d.backend,       spec.batch,
                          spec.candidates, spec.categories,
                          spec.hidden,     spec.reduced,
                          static_cast<uint8_t>(spec.quant), spec.sigmoid};
        auto it = memo_.find(key);
        if (it == memo_.end())
            it = memo_.emplace(key, candidate(d.backend).runJob(spec))
                     .first;
        timing = it->second;
    }
    planner_->observe(bin, d.backend, timing.seconds * 1e6);
    return {timing, planner_->names()[d.backend], d.kind};
}

TimingResult
AutoBackend::runJob(const JobSpec &spec) const
{
    return runPlanned(spec).timing;
}

} // namespace enmc::runtime
