#include "runtime/snapshot.h"

#include <utility>

#include "common/env.h"
#include "common/logging.h"

namespace enmc::runtime {

void
SnapshotConfig::validate() const
{
    if (max_retired < 1)
        ENMC_FATAL("ENMC_SNAPSHOT_MAX_RETIRED must be >= 1");
}

SnapshotConfig
snapshotConfigFromEnv(SnapshotConfig cfg)
{
    cfg.max_retired = envU64("ENMC_SNAPSHOT_MAX_RETIRED", cfg.max_retired);
    cfg.auto_collect =
        envBool("ENMC_SNAPSHOT_AUTO_COLLECT", cfg.auto_collect);
    cfg.validate();
    return cfg;
}

ScreenerSnapshotSlot::ScreenerSnapshotSlot(const SnapshotConfig &cfg)
    : cfg_(cfg),
      stats_("runtime.snapshot"),
      stat_publishes_(stats_.addCounter("publishes",
                                        "snapshot versions published")),
      stat_swaps_(stats_.addCounter(
          "swaps", "publishes that replaced a live snapshot")),
      stat_retired_(stats_.addCounter(
          "retired", "snapshots moved to the grace list")),
      stat_collected_(stats_.addCounter(
          "collected", "retired snapshots freed after their grace period")),
      stats_registration_(stats_)
{
    cfg_.validate();
}

uint64_t
ScreenerSnapshotSlot::publish(std::unique_ptr<screening::Screener> screener)
{
    ENMC_ASSERT(screener != nullptr, "cannot publish a null screener");
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t epoch = ++epoch_;
    auto next =
        std::make_shared<const ScreenerSnapshot>(epoch, std::move(screener));
    if (current_) {
        retired_.push_back(std::move(current_));
        ++stat_retired_;
        ++stat_swaps_;
    }
    current_ = std::move(next);
    ++stat_publishes_;
    if (cfg_.auto_collect) {
        size_t freed = 0;
        std::erase_if(retired_, [&freed](const auto &snap) {
            if (snap.use_count() == 1) {
                ++freed;
                return true;
            }
            return false;
        });
        stat_collected_ += freed;
    }
    if (retired_.size() > cfg_.max_retired)
        ENMC_FATAL("snapshot grace list exceeded max_retired=",
                   cfg_.max_retired,
                   " (readers leaking snapshot references, or collect() "
                   "never called)");
    return epoch;
}

std::shared_ptr<const ScreenerSnapshot>
ScreenerSnapshotSlot::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

uint64_t
ScreenerSnapshotSlot::epoch() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
}

size_t
ScreenerSnapshotSlot::collect()
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t freed = 0;
    std::erase_if(retired_, [&freed](const auto &snap) {
        if (snap.use_count() == 1) {
            ++freed;
            return true;
        }
        return false;
    });
    stat_collected_ += freed;
    return freed;
}

size_t
ScreenerSnapshotSlot::retiredCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retired_.size();
}

} // namespace enmc::runtime
