/**
 * @file
 * System-level ENMC orchestration (paper Fig. 10): partitions a
 * classification job across the ENMC DIMM ranks, runs the rank model, and
 * composes end-to-end timing.
 *
 * Ranks hold disjoint category slices and run identical programs, so the
 * timing of the job is the slowest (== any) rank's time; the simulator
 * runs one representative rank. For very large category counts the
 * steady-state tile rate is measured on a truncated slice and linearly
 * extrapolated (validated against full runs in tests — screening is
 * perfectly tile-homogeneous).
 */

#ifndef ENMC_RUNTIME_SYSTEM_H
#define ENMC_RUNTIME_SYSTEM_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "dram/config.h"
#include "dram/timing.h"
#include "enmc/config.h"
#include "enmc/rank.h"
#include "fault/injector.h"
#include "nn/classifier.h"
#include "obs/registry.h"
#include "screening/screener.h"

namespace enmc::runtime {

/** Full-system configuration (paper Table 3). */
struct SystemConfig
{
    dram::Organization org = dram::Organization::paperTable3();
    dram::Timing timing = dram::Timing::ddr4_2400();
    arch::EnmcConfig enmc;
    /** Cap on cycle-simulated screening tiles before extrapolation. */
    uint64_t max_sim_tiles = 16384;
    /**
     * Worker threads simulating functional rank slices concurrently:
     * 0 = the process-wide pool (ENMC_THREADS / hardware concurrency),
     * 1 = serial, N = a dedicated N-worker pool. Slices merge in slice
     * order, so results are bit-identical for every setting.
     */
    uint64_t sim_threads = 0;

    /**
     * Fault model applied to every simulated rank's reads and instruction
     * deliveries. Off by default: all figures stay bit-identical.
     */
    fault::FaultConfig fault;
    /** Retry / blacklist / degrade policy of the resilient backend. */
    fault::ResilienceConfig resilience;
    /**
     * Route functional slices through the resilient backend wrapper
     * (retry-with-backoff on detected-uncorrectable data).
     */
    bool resilient = false;
    /**
     * Physical rank ids backing the functional slices (slice s runs on
     * functional_rank_ids[s]); empty = identity. The resilient backend
     * repartitions around blacklisted ranks by listing only healthy ids.
     */
    std::vector<uint32_t> functional_rank_ids;

    uint64_t totalRanks() const
    {
        return static_cast<uint64_t>(org.channels) * org.ranks;
    }
};

/** A full-scale classification job (timing view). */
struct JobSpec
{
    uint64_t categories = 0;       //!< l (whole system)
    uint64_t hidden = 0;           //!< d
    uint64_t reduced = 0;          //!< k
    tensor::QuantBits quant = tensor::QuantBits::Int4;
    uint64_t batch = 1;
    uint64_t candidates = 0;       //!< total candidate budget (whole l)
    bool sigmoid = false;
};

/** Timing + traffic outcome of one job. */
struct TimingResult
{
    double seconds = 0.0;              //!< classification latency
    Cycles rank_cycles = 0;            //!< representative rank, DDR clock
    bool extrapolated = false;
    arch::RankResult rank;             //!< stats of the simulated rank
    uint64_t ranks = 0;

    /** Whole-system traffic (all ranks). */
    uint64_t totalScreenBytes() const { return rank.screen_bytes * ranks; }
    uint64_t totalExecBytes() const { return rank.exec_bytes * ranks; }
};

/** The ENMC memory system. */
class EnmcSystem
{
  public:
    explicit EnmcSystem(const SystemConfig &cfg);

    const SystemConfig &config() const { return cfg_; }

    /** Build the representative rank's task for a job (timing view). */
    arch::RankTask makeRankTask(const JobSpec &spec) const;

    /**
     * Build a rank task with an explicit slice size (used by the channel
     * simulator, which does its own partitioning).
     */
    static arch::RankTask makeSliceTask(const JobSpec &spec,
                                        uint64_t slice_categories,
                                        uint64_t slice_candidates);

    /** Timing-only execution of a job (full scale). */
    TimingResult runTiming(const JobSpec &spec) const;

    /**
     * Functional execution: slice `screener`/`classifier` across
     * `ranks_to_use` simulated ranks, run each, and merge. Returns mixed
     * logits + probabilities per batch item plus the slowest rank's
     * timing. Used by examples and correctness tests at functional scale.
     */
    struct FunctionalResult
    {
        std::vector<tensor::Vector> logits;
        std::vector<tensor::Vector> probabilities;
        std::vector<std::vector<uint32_t>> candidates;
        Cycles rank_cycles = 0;
        double seconds = 0.0;
        /** Aggregated fault/ECC activity across slices (zero by default). */
        fault::FaultCounters faults;
        uint64_t uncorrectable_words = 0;
        /** Uncorrectable split by protection class (weak = screener). */
        uint64_t uncorrectable_weak_words = 0;
        uint64_t uncorrectable_strong_words = 0;
        /** Check-bit bursts charged by the ECC overhead model. */
        uint64_t ecc_redundancy_reads = 0;
        /** Syndrome-decode cycles charged by the ECC overhead model. */
        uint64_t ecc_decode_cycles = 0;
        uint64_t degraded_candidates = 0;
        /**
         * Per-slice simulated cycle counts, in slice order (one entry per
         * rank slice). The job finishes at max(slice_cycles); the spread
         * is the load imbalance benches report percentiles over.
         */
        std::vector<Cycles> slice_cycles;
    };
    FunctionalResult runFunctional(
        const nn::Classifier &classifier,
        const screening::Screener &screener,
        const std::vector<tensor::Vector> &h_batch,
        uint64_t ranks_to_use = 4) const;

    /**
     * Functional execution restricted to classifier rows
     * [row_begin, row_begin + row_count): fills that range of
     * `out.logits` and appends global candidate ids. Used by the
     * scale-out layer, which assigns disjoint row ranges to nodes.
     * `out` must be pre-sized (logits/candidates per batch item);
     * probabilities are NOT computed (the caller normalizes once).
     */
    void runFunctionalRange(const nn::Classifier &classifier,
                            const screening::Screener &screener,
                            const std::vector<tensor::Vector> &h_batch,
                            uint64_t ranks_to_use, uint64_t row_begin,
                            uint64_t row_count,
                            FunctionalResult &out) const;

  private:
    TimingResult runRank(const arch::RankTask &task) const;

    /** Tally one merged slice result into the system stat group. */
    void recordSlice(const arch::RankResult &res) const;

    SystemConfig cfg_;

    // Job-level stats ("runtime.system"): slices are tallied in the
    // (serial) merge loop, so no lock is needed. The fault mirrors let
    // the metrics consumer check the ECC accounting invariant
    // (faultInjectedWords == faultCorrected + faultDetected +
    // faultEscaped) from the exported JSON alone.
    StatGroup stats_;
    Counter &stat_functional_runs_;
    Counter &stat_timing_runs_;
    Counter &stat_slices_;
    Counter &stat_batch_items_;
    Counter &stat_candidates_;
    Counter &stat_fault_injected_;
    Counter &stat_fault_corrected_;
    Counter &stat_fault_detected_;
    Counter &stat_fault_escaped_;
    Counter &stat_uncorrectable_;
    Counter &stat_uncorrectable_weak_;
    Counter &stat_uncorrectable_strong_;
    Counter &stat_redundancy_reads_;
    Counter &stat_decode_cycles_;
    Counter &stat_degraded_;
    ScalarStat &stat_slice_cycles_;
    Histogram &stat_slice_skew_;
    /** Per-protection-class injected/corrected/detected/escaped mirrors,
     *  indexed [class][0..3]; filled in the constructor body (the group's
     *  map storage keeps the references stable). */
    Counter *stat_class_[fault::kNumProtectionClasses][4] = {};
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_SYSTEM_H
