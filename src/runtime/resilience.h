/**
 * @file
 * The resilience policy layer on top of SECDED: what the host runtime
 * does when ECC *detects* an error it cannot correct.
 *
 * Three escalating responses (each configurable via
 * `SystemConfig::resilience`):
 *  - **retry with backoff**: a detected-uncorrectable slice is re-read
 *    and re-executed; transient faults draw fresh samples on each
 *    attempt, so retries converge at realistic error rates. Each retry
 *    adds an exponentially growing cycle penalty.
 *  - **rank blacklisting**: a rank that keeps failing (a stuck-at rank
 *    fails deterministically) is dropped from the partition; the job is
 *    repartitioned across the remaining healthy ranks via
 *    `RankPartitioner` — throughput degrades, correctness does not.
 *  - **graceful degradation**: when retries are exhausted and the rank
 *    still reports uncorrectable executor rows, the affected candidates
 *    keep their approximate (screener) logits instead of failing the
 *    query — the paper's screening stage doubles as a fallback answer.
 *
 * Registered as backend "enmc-resilient"; with faults disabled it is
 * bit-identical to the plain "enmc" backend.
 */

#ifndef ENMC_RUNTIME_RESILIENCE_H
#define ENMC_RUNTIME_RESILIENCE_H

#include <mutex>
#include <vector>

#include "common/stats.h"
#include "obs/registry.h"
#include "runtime/backend.h"

namespace enmc::runtime {

/** EnmcBackend wrapped in the retry / blacklist / degrade policy. */
class ResilientBackend : public Backend
{
  public:
    explicit ResilientBackend(const SystemConfig &cfg);

    std::string name() const override { return "enmc-resilient"; }
    BackendCapabilities capabilities() const override;

    /** Timing slice with retry accounting (see runFunctionalSlice). */
    arch::RankResult runSlice(const arch::RankTask &task) const override;

    /**
     * Functional slice with retry-with-backoff: while the rank reports
     * detected-uncorrectable words, re-execute with a fresh per-attempt
     * fault stream (counters merge back into the task's injector), up to
     * `resilience.max_retries` times; each retry adds a doubling cycle
     * penalty. Exhausted retries degrade (approximate-only logits for the
     * affected candidates) when `resilience.degrade`, else panic. Stuck
     * ranks are not retried — they fail deterministically and are the
     * blacklisting path's job.
     */
    arch::RankResult
    runFunctionalSlice(const arch::RankTask &task) const override;

    /**
     * Full-job timing over the *healthy* ranks only: blacklisted ranks
     * are dropped and the job is repartitioned, so each survivor takes a
     * proportionally larger slice. Detecting each dead rank costs
     * `blacklist_after` failed probe attempts of backoff each.
     */
    TimingResult runJob(const JobSpec &spec) const override;

    /**
     * Functional job over the healthy ranks (the functional counterpart
     * of runJob's repartitioning). Delegates to
     * EnmcSystem::runFunctional with `functional_rank_ids` set to the
     * healthy list and slices routed through this wrapper.
     */
    EnmcSystem::FunctionalResult
    runFunctionalJob(const nn::Classifier &classifier,
                     const screening::Screener &screener,
                     const std::vector<tensor::Vector> &h_batch,
                     uint64_t ranks_to_use = 4) const;

    /** Rank ids that survive blacklisting (all ranks if faults are off). */
    std::vector<uint32_t> healthyRanks() const;

  private:
    arch::RankResult runWithRetry(const arch::RankTask &task,
                                  bool functional) const;

    EnmcBackend inner_;

    // Policy-layer stats ("runtime.resilient"). Slices run concurrently
    // on pool workers, so updates lock stats_mutex_ (the counters are
    // plain uint64s); member references let const slice methods tally.
    mutable std::mutex stats_mutex_;
    StatGroup stats_;
    Counter &stat_slices_;
    Counter &stat_retries_;
    Counter &stat_degraded_;
    Counter &stat_penalty_cycles_;
    Counter &stat_blacklisted_;
    // Declared last so the group unregisters before any stat dies.
    obs::StatRegistration stats_registration_;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_RESILIENCE_H
