#include "runtime/partition.h"

#include <algorithm>

#include "common/logging.h"

namespace enmc::runtime {

std::vector<RowSlice>
RankPartitioner::partition(uint64_t row_begin, uint64_t rows,
                           uint64_t parts)
{
    ENMC_ASSERT(parts >= 1, "partitioning needs at least one part");
    std::vector<RowSlice> slices;
    if (rows == 0)
        return slices;
    const uint64_t slice = sliceRows(rows, parts);
    const uint64_t row_end = row_begin + rows;
    for (uint64_t p = 0; p < parts; ++p) {
        const uint64_t begin = row_begin + p * slice;
        if (begin >= row_end)
            break;
        slices.push_back({begin, std::min<uint64_t>(slice, row_end - begin)});
    }
    return slices;
}

uint64_t
TaskLayout::assign(arch::RankTask &task)
{
    Addr cursor = 0;
    auto reserve = [&cursor](uint64_t bytes) {
        const Addr base = cursor;
        cursor += roundUp(std::max<uint64_t>(bytes, 1), kAlign);
        return base;
    };
    task.screen_weight_base =
        reserve(task.categories * task.screenRowBytes());
    task.class_weight_base = reserve(task.categories * task.classRowBytes());
    task.bias_base = reserve(task.categories * sizeof(float) * 2);
    task.feature_base = reserve(
        task.batch * (task.reduced + task.hidden) * sizeof(float));
    task.output_base = reserve(task.categories * sizeof(float));
    return cursor;
}

} // namespace enmc::runtime
