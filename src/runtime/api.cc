#include "runtime/api.h"

#include "common/logging.h"
#include "screening/serialize.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::runtime {

EnmcClassifier::EnmcClassifier(const nn::Classifier &teacher,
                               const ClassifierOptions &options,
                               const SystemConfig &system)
    : teacher_(teacher), options_(options), system_(system)
{
    screening::ScreenerConfig cfg;
    cfg.categories = teacher.categories();
    cfg.hidden = teacher.hidden();
    cfg.reduction_scale = options.reduction_scale;
    cfg.quant = options.quant;
    cfg.selection = screening::SelectionMode::Threshold;
    cfg.top_m = options.candidates;
    Rng rng(options.seed);
    screener_ = std::make_unique<screening::Screener>(cfg, rng);
}

screening::TrainReport
EnmcClassifier::calibrate(const std::vector<tensor::Vector> &train_h,
                          const std::vector<tensor::Vector> &val_h)
{
    screening::Trainer trainer(teacher_, *screener_, options_.trainer);
    screening::TrainReport report = trainer.train(train_h, val_h);
    screener_->freezeQuantized();
    const float threshold = screening::tuneThreshold(
        *screener_, val_h.empty() ? train_h : val_h, options_.candidates);
    screener_->setSelection(screening::SelectionMode::Threshold,
                            options_.candidates, threshold);
    calibrated_ = true;
    return report;
}

std::vector<ClassifierOutput>
EnmcClassifier::forward(const std::vector<tensor::Vector> &h_batch, size_t k)
{
    ENMC_ASSERT(calibrated_, "calibrate() before forward()");
    const auto fr =
        system_.runFunctional(teacher_, *screener_, h_batch, options_.ranks);
    last_cycles_ = fr.rank_cycles;

    std::vector<ClassifierOutput> out(h_batch.size());
    for (size_t i = 0; i < h_batch.size(); ++i) {
        out[i].probabilities = fr.probabilities[i];
        out[i].topk = tensor::topkIndices(fr.probabilities[i], k);
        out[i].candidates = fr.candidates[i];
    }
    return out;
}

void
EnmcClassifier::save(const std::string &path) const
{
    ENMC_ASSERT(calibrated_, "calibrate() before save()");
    // The screener's projection was drawn from Rng(options.seed).
    screening::saveScreenerFile(*screener_, options_.seed, path);
}

void
EnmcClassifier::load(const std::string &path)
{
    screener_ = screening::loadScreenerFile(path);
    ENMC_ASSERT(screener_->categories() == teacher_.categories() &&
                    screener_->config().hidden == teacher_.hidden(),
                "loaded screener does not match this classifier");
    calibrated_ = true;
}

std::vector<ClassifierOutput>
EnmcClassifier::forwardFull(const std::vector<tensor::Vector> &h_batch,
                            size_t k) const
{
    std::vector<ClassifierOutput> out(h_batch.size());
    // Batched GEMV: the classifier weights stream once per batch. Per-item
    // values are bit-identical to teacher_.probabilities(h_batch[i]).
    std::vector<tensor::Vector> probs = teacher_.probabilitiesBatch(h_batch);
    for (size_t i = 0; i < h_batch.size(); ++i) {
        out[i].probabilities = std::move(probs[i]);
        out[i].topk = tensor::topkIndices(out[i].probabilities, k);
    }
    return out;
}

} // namespace enmc::runtime
