#include "runtime/api.h"

#include <utility>

#include "common/logging.h"
#include "screening/serialize.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::runtime {

ClassifierOptions
classifierOptionsFromEnv(ClassifierOptions base)
{
    base.cache = screening::cacheConfigFromEnv(base.cache);
    base.snapshot = snapshotConfigFromEnv(base.snapshot);
    return base;
}

EnmcClassifier::EnmcClassifier(const nn::Classifier &teacher,
                               const ClassifierOptions &options,
                               const SystemConfig &system)
    : teacher_(teacher), options_(options), system_(system),
      slot_(options.snapshot), cache_(options.cache)
{
    auto screener = makeScreener(options_.seed);
    calib_screener_ = screener.get();
    // Epoch 1 from birth: responses always carry a well-defined epoch.
    slot_.publish(std::move(screener));
    projection_seed_ = options_.seed;
}

std::unique_ptr<screening::Screener>
EnmcClassifier::makeScreener(uint64_t seed) const
{
    screening::ScreenerConfig cfg;
    cfg.categories = teacher_.categories();
    cfg.hidden = teacher_.hidden();
    cfg.reduction_scale = options_.reduction_scale;
    cfg.quant = options_.quant;
    cfg.scheme = options_.scheme;
    cfg.selection = screening::SelectionMode::Threshold;
    cfg.top_m = options_.candidates;
    Rng rng(seed);
    return std::make_unique<screening::Screener>(cfg, rng);
}

const screening::Screener &
EnmcClassifier::screener() const
{
    const auto snap = slot_.current();
    ENMC_ASSERT(snap != nullptr, "no screener published");
    // The snapshot stays alive through the slot's retired grace list even
    // if a publish lands right after this returns; see the header caveat.
    return snap->screener();
}

screening::TrainReport
EnmcClassifier::calibrate(const std::vector<tensor::Vector> &train_h,
                          const std::vector<tensor::Vector> &val_h)
{
    ENMC_ASSERT(calib_screener_ != nullptr,
                "calibrate() is the offline flow; after a hot-swap, train "
                "replacements outside and swapScreener() them in");
    screening::Trainer trainer(teacher_, *calib_screener_, options_.trainer);
    screening::TrainReport report = trainer.train(train_h, val_h);
    calib_screener_->freezeQuantized();
    const float threshold = screening::tuneThreshold(
        *calib_screener_, val_h.empty() ? train_h : val_h,
        options_.candidates);
    calib_screener_->setSelection(screening::SelectionMode::Threshold,
                                  options_.candidates, threshold);
    cache_.clear();
    calibrated_ = true;
    return report;
}

uint64_t
EnmcClassifier::swapScreener(std::unique_ptr<screening::Screener> screener,
                             uint64_t projection_seed)
{
    ENMC_ASSERT(screener != nullptr, "swapScreener: null screener");
    ENMC_ASSERT(screener->categories() == teacher_.categories() &&
                    screener->config().hidden == teacher_.hidden(),
                "swapScreener: screener does not match this classifier");
    if (screener->config().quant != tensor::QuantBits::Fp32 &&
        !screener->quantizedFrozen())
        screener->freezeQuantized();
    // The published snapshot is immutable from here on; the offline
    // calibration alias no longer points at the live version.
    calib_screener_ = nullptr;
    projection_seed_ = projection_seed;
    const uint64_t epoch = slot_.publish(std::move(screener));
    // Stale cache entries are dropped lazily on epoch-mismatch lookups.
    calibrated_ = true;
    return epoch;
}

uint64_t
EnmcClassifier::refresh(const std::vector<tensor::Vector> &train_h,
                        const std::vector<tensor::Vector> &val_h)
{
    // Derive a fresh seed so the retrained projection/init differ per
    // epoch but stay reproducible for a given (options.seed, epoch).
    const uint64_t seed = options_.seed + slot_.epoch() + 1;
    auto next = makeScreener(seed);
    screening::Trainer trainer(teacher_, *next, options_.trainer);
    trainer.train(train_h, val_h);
    next->freezeQuantized();
    const float threshold = screening::tuneThreshold(
        *next, val_h.empty() ? train_h : val_h, options_.candidates);
    next->setSelection(screening::SelectionMode::Threshold,
                       options_.candidates, threshold);
    return swapScreener(std::move(next), seed);
}

ClassifierOutput
EnmcClassifier::serveHit(const screening::CacheEntry &entry,
                         const tensor::Vector &h, size_t k) const
{
    // The cached approximate logits are bitwise-valid for this request
    // (same sketch); exact candidate rows must come from *this* request's
    // hidden vector, computed with the same dot-product the rank
    // executor runs — so the served output is bit-identical to the
    // uncached path by construction.
    ClassifierOutput out;
    out.cache_hit = true;
    out.candidates = entry.candidates;
    tensor::Vector logits = entry.approx_logits;
    for (const uint32_t r : entry.candidates)
        logits[r] = tensor::dot(teacher_.weights().row(r), h) +
                    teacher_.bias()[r];
    out.probabilities =
        teacher_.normalization() == nn::Normalization::Softmax
            ? tensor::softmaxTaylor(logits)
            : tensor::sigmoidTaylor(logits);
    out.topk = tensor::topkIndices(out.probabilities, k);
    return out;
}

std::vector<ClassifierOutput>
EnmcClassifier::forward(const std::vector<tensor::Vector> &h_batch, size_t k)
{
    ENMC_ASSERT(calibrated_, "calibrate() before forward()");
    // One snapshot for the whole batch: a concurrent hot-swap never
    // mixes epochs within a batch, and the snapshot cannot be freed
    // while this shared_ptr is held.
    const auto snap = slot_.current();
    ENMC_ASSERT(snap != nullptr, "no screener published");
    const screening::Screener &scr = snap->screener();
    const uint64_t epoch = snap->epoch();

    std::vector<ClassifierOutput> out(h_batch.size());
    // The cache key is the INT sketch, so an FP32 screener has nothing to
    // key on; fault/resilience streams depend on global injection order,
    // which a screening bypass would perturb — keep those bit-exact by
    // running them uncached.
    const SystemConfig &sys = system_.config();
    const bool cache_on = cache_.enabled() &&
                          scr.config().quant != tensor::QuantBits::Fp32 &&
                          !sys.fault.enabled && !sys.resilient;

    if (!cache_on) {
        const auto fr =
            system_.runFunctional(teacher_, scr, h_batch, options_.ranks);
        last_cycles_ = fr.rank_cycles;
        for (size_t i = 0; i < h_batch.size(); ++i) {
            out[i].probabilities = fr.probabilities[i];
            out[i].topk = tensor::topkIndices(fr.probabilities[i], k);
            out[i].candidates = fr.candidates[i];
            out[i].snapshot_epoch = epoch;
        }
        return out;
    }

    std::vector<size_t> miss_idx;
    std::vector<tensor::Vector> miss_h;
    std::vector<tensor::QuantizedVector> miss_yq;
    for (size_t i = 0; i < h_batch.size(); ++i) {
        tensor::QuantizedVector yq =
            tensor::quantize(scr.project(h_batch[i]), scr.config().quant);
        const screening::CacheEntry *hit =
            cache_.lookup(yq, epoch, scr);
        if (hit != nullptr) {
            out[i] = serveHit(*hit, h_batch[i], k);
            out[i].snapshot_epoch = epoch;
        } else {
            miss_idx.push_back(i);
            miss_h.push_back(h_batch[i]);
            miss_yq.push_back(std::move(yq));
        }
    }

    if (miss_idx.empty()) {
        last_cycles_ = 0;
        return out;
    }
    // Per-item functional results are batch-composition-invariant, so
    // screening only the misses serves them bit-identical to a full
    // uncached batch.
    auto fr = system_.runFunctional(teacher_, scr, miss_h, options_.ranks);
    last_cycles_ = fr.rank_cycles;
    const tensor::QuantizedMatrix &wq = scr.quantizedWeights();
    for (size_t j = 0; j < miss_idx.size(); ++j) {
        const size_t i = miss_idx[j];
        out[i].probabilities = fr.probabilities[j];
        out[i].topk = tensor::topkIndices(fr.probabilities[j], k);
        out[i].candidates = fr.candidates[j];
        out[i].snapshot_epoch = epoch;
        // Cache the *approximate* logit vector: candidate rows of the
        // mixed result hold this request's exact logits — re-screen just
        // those rows so the entry is a pure function of the sketch.
        tensor::Vector approx = std::move(fr.logits[j]);
        for (const uint32_t r : out[i].candidates)
            tensor::gemvQuantizedRows(wq, miss_yq[j].values,
                                      miss_yq[j].scale, scr.bias(), approx,
                                      r, r + 1);
        cache_.insert(miss_yq[j], epoch, out[i].candidates,
                      std::move(approx));
    }
    return out;
}

void
EnmcClassifier::save(const std::string &path) const
{
    ENMC_ASSERT(calibrated_, "calibrate() before save()");
    // The current screener's projection was drawn from projection_seed_.
    screening::saveScreenerFile(screener(), projection_seed_, path);
}

void
EnmcClassifier::load(const std::string &path)
{
    uint64_t seed = 0;
    auto screener = screening::loadScreenerFile(path, &seed);
    ENMC_ASSERT(screener->categories() == teacher_.categories() &&
                    screener->config().hidden == teacher_.hidden(),
                "loaded screener does not match this classifier");
    calib_screener_ = screener.get();
    projection_seed_ = seed;
    slot_.publish(std::move(screener));
    cache_.clear();
    calibrated_ = true;
}

std::vector<ClassifierOutput>
EnmcClassifier::forwardFull(const std::vector<tensor::Vector> &h_batch,
                            size_t k) const
{
    std::vector<ClassifierOutput> out(h_batch.size());
    // Batched GEMV: the classifier weights stream once per batch. Per-item
    // values are bit-identical to teacher_.probabilities(h_batch[i]).
    std::vector<tensor::Vector> probs = teacher_.probabilitiesBatch(h_batch);
    for (size_t i = 0; i < h_batch.size(); ++i) {
        out[i].probabilities = std::move(probs[i]);
        out[i].topk = tensor::topkIndices(out[i].probabilities, k);
    }
    return out;
}

} // namespace enmc::runtime
