/**
 * @file
 * Scale-out ENMC (paper Section 8: "our design can scale-out from
 * single-node to distributed nodes, where each node keeps an approximate
 * screener").
 *
 * Categories are partitioned across nodes; each node holds the screener
 * and classifier slices for its partition in its own ENMC memory. One
 * inference: the root broadcasts the (projected, quantized) feature
 * vector, every node runs candidates-only classification locally, and
 * the root gathers each node's partial softmax normalizer + accurate
 * top-candidates and merges them into the global result — the same
 * merge the ranks inside one node already perform, lifted one level.
 */

#ifndef ENMC_RUNTIME_SCALEOUT_H
#define ENMC_RUNTIME_SCALEOUT_H

#include <cstdint>
#include <vector>

#include "runtime/system.h"
#include "tensor/topk.h"

namespace enmc::runtime {

/** Inter-node network model (flat latency/bandwidth, RDMA-style). */
struct NetworkConfig
{
    double bandwidth = 12.5e9;   //!< bytes/sec (100 Gb/s)
    double latency = 2e-6;       //!< per-message one-way latency (s)

    /** One message of `bytes` point-to-point. */
    double messageTime(uint64_t bytes) const
    {
        return latency + static_cast<double>(bytes) / bandwidth;
    }
};

/** A cluster of ENMC-equipped nodes. */
struct ScaleOutConfig
{
    uint64_t nodes = 4;
    NetworkConfig network;
    SystemConfig node;           //!< every node's local ENMC system
};

/** Timing decomposition of one scale-out inference. */
struct ScaleOutResult
{
    uint64_t nodes = 0;
    double broadcast_seconds = 0.0;      //!< feature fan-out
    double classification_seconds = 0.0; //!< slowest node's local work
    double gather_seconds = 0.0;         //!< partial-result collection
    TimingResult node;                   //!< representative node's run

    double total() const
    {
        return broadcast_seconds + classification_seconds + gather_seconds;
    }
};

/**
 * Timing of one batched classification over the cluster.
 * `spec.categories`/`spec.candidates` describe the *global* problem.
 */
ScaleOutResult runScaleOut(const ScaleOutConfig &cfg, const JobSpec &spec);

/**
 * Functional scale-out: partition `classifier`/`screener` across
 * `nodes`, run each node's slice through its (simulated) ENMC ranks, and
 * merge. Output must equal the single-node result — asserted by tests.
 */
EnmcSystem::FunctionalResult runScaleOutFunctional(
    const ScaleOutConfig &cfg, const nn::Classifier &classifier,
    const screening::Screener &screener,
    const std::vector<tensor::Vector> &h_batch,
    uint64_t ranks_per_node = 2);

/**
 * Global top-k per batch item of a scale-out functional result, computed
 * the way the gather actually works: each of the `nodes` shards reports
 * only its local top-k (offset to global row ids) and the root merges
 * the lists through `tensor::mergeTopK`. Equals
 * `tensor::topkIndices(probabilities, k)` for every shard layout
 * (partition invariance; asserted by tests).
 */
std::vector<std::vector<uint32_t>> scaleOutTopK(
    const EnmcSystem::FunctionalResult &result, uint64_t nodes, size_t k);

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_SCALEOUT_H
