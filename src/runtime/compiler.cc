#include "runtime/compiler.h"

#include <bit>

#include "common/logging.h"
#include "common/units.h"

namespace enmc::runtime {

using namespace ::enmc::arch;

uint64_t
screeningTileRows(const RankTask &task, const EnmcConfig &cfg)
{
    // The weight buffer is split into ping/pong halves; a tile fills one
    // half.
    const uint64_t half = cfg.screen_weight_buf / 2;
    uint64_t rows = half / std::max<uint64_t>(task.screenRowBytes(), 1);
    // A tile's partial sums (rows x batch FP32) must fit the PSUM buffer,
    // or the Screener pipeline wedges waiting for space that can never
    // appear.
    ENMC_ASSERT(task.batch * 4 <= cfg.psum_buf,
                "batch too large for the PSUM buffer");
    rows = std::min<uint64_t>(rows, cfg.psum_buf / (4 * task.batch));
    return std::max<uint64_t>(rows, 1);
}

CompiledJob
compileClassification(const RankTask &task, const EnmcConfig &cfg)
{
    ENMC_ASSERT(task.categories > 0 && task.hidden > 0 && task.reduced > 0,
                "task dimensions not set");
    CompiledJob job;
    job.tile_rows = screeningTileRows(task, cfg);
    job.tiles = ceilDiv(task.categories, job.tile_rows);

    Program &p = job.program;
    p.push_back(makeInit(StatusReg::Categories, task.categories));
    p.push_back(makeInit(StatusReg::HiddenDim, task.hidden));
    p.push_back(makeInit(StatusReg::ReducedDim, task.reduced));
    p.push_back(makeInit(StatusReg::BatchSize, task.batch));
    p.push_back(makeInit(StatusReg::TileRows, job.tile_rows));
    p.push_back(makeInit(StatusReg::Threshold,
                         std::bit_cast<uint32_t>(task.threshold)));
    p.push_back(makeInit(StatusReg::FeatureBase, task.feature_base));
    p.push_back(makeInit(StatusReg::ScreenWeightBase,
                         task.screen_weight_base));
    p.push_back(makeInit(StatusReg::ClassWeightBase,
                         task.class_weight_base));
    p.push_back(makeInit(StatusReg::BiasBase, task.bias_base));
    p.push_back(makeInit(StatusReg::OutputBase, task.output_base));

    if (cfg.hw_tile_sequencer)
        p.push_back(makeInit(StatusReg::Mode, kModeHwTileSequencer));

    p.push_back(makeLdr(BufferId::ScreenFeature, task.feature_base));

    if (cfg.hw_tile_sequencer) {
        // One compute instruction; the on-DIMM instruction generator
        // expands the per-tile LDR/MUL_ADD/FILTER loop.
        p.push_back(makeCompute(Opcode::MulAddInt4,
                                BufferId::ScreenFeature,
                                BufferId::ScreenWeight));
    } else {
        const uint64_t tile_bytes = job.tile_rows * task.screenRowBytes();
        for (uint64_t t = 0; t < job.tiles; ++t) {
            p.push_back(makeLdr(BufferId::ScreenWeight,
                                task.screen_weight_base + t * tile_bytes));
            p.push_back(makeCompute(Opcode::MulAddInt4,
                                    BufferId::ScreenFeature,
                                    BufferId::ScreenWeight));
            p.push_back(makeFilter(BufferId::ScreenPsum));
        }
    }

    p.push_back(makeSpecial(Opcode::Barrier));
    p.push_back(makeSpecial(task.sigmoid ? Opcode::Sigmoid
                                         : Opcode::Softmax));
    p.push_back(makeSpecial(Opcode::Return));
    return job;
}

} // namespace enmc::runtime
