#include "runtime/node_backend.h"

#include "common/logging.h"

namespace enmc::runtime {

const char *
nodeHealthName(NodeHealth h)
{
    switch (h) {
    case NodeHealth::Alive:
        return "alive";
    case NodeHealth::Suspect:
        return "suspect";
    case NodeHealth::Dead:
        return "dead";
    }
    return "?";
}

NodeBackend::NodeBackend(uint32_t id, std::unique_ptr<Backend> inner,
                         const fault::ResilienceConfig &resilience)
    : Backend(inner->config()), id_(id), inner_(std::move(inner)),
      resilience_(resilience)
{
    ENMC_ASSERT(resilience_.blacklist_after >= 1,
                "node blacklist threshold must be >= 1");
}

std::string
NodeBackend::name() const
{
    return "node" + std::to_string(id_) + ":" + inner_->name();
}

BackendCapabilities
NodeBackend::capabilities() const
{
    return inner_->capabilities();
}

arch::RankResult
NodeBackend::runSlice(const arch::RankTask &task) const
{
    return inner_->runSlice(task);
}

arch::RankResult
NodeBackend::runFunctionalSlice(const arch::RankTask &task) const
{
    return inner_->runFunctionalSlice(task);
}

TimingResult
NodeBackend::runJob(const JobSpec &spec) const
{
    return inner_->runJob(spec);
}

void
NodeBackend::kill()
{
    health_ = NodeHealth::Dead;
}

void
NodeBackend::recordFailure()
{
    if (health_ == NodeHealth::Dead)
        return;
    ++consecutive_failures_;
    health_ = consecutive_failures_ >= resilience_.blacklist_after
                  ? NodeHealth::Dead
                  : NodeHealth::Suspect;
}

void
NodeBackend::recordSuccess()
{
    if (health_ == NodeHealth::Dead)
        return;
    consecutive_failures_ = 0;
    health_ = NodeHealth::Alive;
}

} // namespace enmc::runtime
