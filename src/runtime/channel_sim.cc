#include "runtime/channel_sim.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/compiler.h"
#include "runtime/partition.h"

namespace enmc::runtime {

using arch::EnmcRank;
using arch::RankResult;
using arch::RankTask;

ChannelSim::ChannelSim(const SystemConfig &cfg, uint32_t ranks_per_channel)
    : cfg_(cfg),
      ranks_(ranks_per_channel ? ranks_per_channel : cfg.org.ranks)
{
    ENMC_ASSERT(ranks_ >= 1, "channel needs at least one rank");
}

ChannelSimResult
ChannelSim::run(const JobSpec &spec, Cycles max_cycles)
{
    // One task per rank: the channel's categories are sliced evenly
    // (the same partitioning policy the system-level paths use).
    const RankTask slice = EnmcSystem::makeSliceTask(
        spec, RankPartitioner::sliceRows(spec.categories, ranks_),
        RankPartitioner::evenShare(std::max<uint64_t>(spec.candidates, 1),
                                   ranks_));

    const dram::Organization rank_org = cfg_.org.singleRankView();
    const CompiledJob job = compileClassification(slice, cfg_.enmc);

    std::vector<std::unique_ptr<EnmcRank>> ranks;
    for (uint32_t r = 0; r < ranks_; ++r) {
        ranks.push_back(std::make_unique<EnmcRank>(cfg_.enmc, rank_org,
                                                   cfg_.timing));
        ranks.back()->start(job.program, slice);
    }

    ChannelSimResult res;
    res.ranks.resize(ranks_);
    std::vector<bool> finished(ranks_, false);
    uint32_t finished_count = 0;
    uint32_t rr = 0;            //!< round-robin arbitration pointer
    Cycles dq_busy = 0;         //!< shared DQ payload burst in flight
    Cycles now = 0;

    while (finished_count < ranks_) {
        ++now;
        if (now > max_cycles)
            ENMC_PANIC("channel simulation watchdog expired");

        // Shared C/A bus: one instruction delivery per cycle, blocked
        // while a payload burst occupies the DQ bus.
        if (dq_busy > 0) {
            --dq_busy;
            ++res.ca_busy_cycles;
        } else {
            for (uint32_t i = 0; i < ranks_; ++i) {
                const uint32_t r = (rr + i) % ranks_;
                if (finished[r])
                    continue;
                const arch::Instruction *inst =
                    ranks[r]->pendingInstruction();
                if (inst == nullptr)
                    continue;
                const bool payload = inst->has_payload;
                if (ranks[r]->tryDeliverInstruction()) {
                    ++res.instructions_delivered;
                    ++res.ca_busy_cycles;
                    if (payload)
                        dq_busy = cfg_.timing.tbl;
                    rr = (r + 1) % ranks_;
                    break;
                }
            }
        }

        for (uint32_t r = 0; r < ranks_; ++r) {
            if (finished[r])
                continue;
            ranks[r]->tick();
            if (ranks[r]->done()) {
                finished[r] = true;
                ++finished_count;
                res.ranks[r] = ranks[r]->takeResult();
                res.ranks[r].cycles = now;
            }
        }
    }
    res.cycles = now;
    return res;
}

} // namespace enmc::runtime
