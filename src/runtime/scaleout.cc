#include "runtime/scaleout.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "runtime/partition.h"
#include "tensor/ops.h"

namespace enmc::runtime {

ScaleOutResult
runScaleOut(const ScaleOutConfig &cfg, const JobSpec &spec)
{
    ENMC_ASSERT(cfg.nodes >= 1, "cluster needs at least one node");
    ScaleOutResult res;
    res.nodes = cfg.nodes;

    // Per-node slice of the global problem.
    JobSpec node_spec = spec;
    node_spec.categories =
        RankPartitioner::sliceRows(spec.categories, cfg.nodes);
    node_spec.candidates = std::max<uint64_t>(
        1, RankPartitioner::evenShare(spec.candidates, cfg.nodes));

    // Phase 1: broadcast the projected + raw features to every node.
    // A flat tree (root sends to each node) is modeled; the quantized
    // projected vector + FP32 hidden vector travel per batch item.
    const uint64_t feat_bytes =
        spec.batch * (ceilDiv(spec.reduced, 2) + spec.hidden * 4);
    if (cfg.nodes > 1) {
        res.broadcast_seconds =
            cfg.network.latency +
            static_cast<double>((cfg.nodes - 1) * feat_bytes) /
                cfg.network.bandwidth;
    }

    // Phase 2: local candidates-only classification (nodes are symmetric;
    // simulate one).
    EnmcSystem node(cfg.node);
    res.node = node.runTiming(node_spec);
    res.classification_seconds = res.node.seconds;

    // Phase 3: gather each node's partial normalizer + accurate
    // candidates at the root.
    const uint64_t result_bytes =
        spec.batch * 8 + node_spec.candidates * spec.batch * 8;
    if (cfg.nodes > 1) {
        res.gather_seconds =
            cfg.network.latency +
            static_cast<double>((cfg.nodes - 1) * result_bytes) /
                cfg.network.bandwidth;
    }
    return res;
}

EnmcSystem::FunctionalResult
runScaleOutFunctional(const ScaleOutConfig &cfg,
                      const nn::Classifier &classifier,
                      const screening::Screener &screener,
                      const std::vector<tensor::Vector> &h_batch,
                      uint64_t ranks_per_node)
{
    ENMC_ASSERT(cfg.nodes >= 1, "cluster needs at least one node");
    const uint64_t l = classifier.categories();
    const uint64_t nodes = std::min<uint64_t>(cfg.nodes, l);
    const uint64_t batch = h_batch.size();

    EnmcSystem node(cfg.node);
    EnmcSystem::FunctionalResult out;
    out.logits.assign(batch, tensor::Vector(l, 0.0f));
    out.candidates.assign(batch, {});

    // Node shards are independent simulations (each node owns disjoint
    // category rows), so they run concurrently; merging in shard order
    // keeps the result bit-identical to the serial loop.
    const std::vector<RowSlice> shards =
        RankPartitioner::partition(0, l, nodes);
    std::vector<EnmcSystem::FunctionalResult> parts(shards.size());
    parallelFor(0, shards.size(), cfg.node.sim_threads, [&](size_t n) {
        parts[n].logits.assign(batch, tensor::Vector(l, 0.0f));
        parts[n].candidates.assign(batch, {});
        node.runFunctionalRange(classifier, screener, h_batch,
                                ranks_per_node, shards[n].begin,
                                shards[n].rows, parts[n]);
    });
    for (size_t n = 0; n < shards.size(); ++n) {
        out.rank_cycles = std::max(out.rank_cycles, parts[n].rank_cycles);
        for (uint64_t item = 0; item < batch; ++item) {
            std::copy(parts[n].logits[item].begin() + shards[n].begin,
                      parts[n].logits[item].begin() + shards[n].begin +
                          shards[n].rows,
                      out.logits[item].begin() + shards[n].begin);
            out.candidates[item].insert(out.candidates[item].end(),
                                        parts[n].candidates[item].begin(),
                                        parts[n].candidates[item].end());
        }
    }
    out.seconds = cyclesToSeconds(out.rank_cycles, cfg.node.timing.freq_hz);

    // Root merge: normalize once over the gathered logits.
    for (uint64_t item = 0; item < batch; ++item) {
        out.probabilities.push_back(
            classifier.normalization() == nn::Normalization::Softmax
                ? tensor::softmaxTaylor(out.logits[item])
                : tensor::sigmoidTaylor(out.logits[item]));
    }
    return out;
}

std::vector<std::vector<uint32_t>>
scaleOutTopK(const EnmcSystem::FunctionalResult &result, uint64_t nodes,
             size_t k)
{
    ENMC_ASSERT(nodes >= 1, "cluster needs at least one node");
    std::vector<std::vector<uint32_t>> topk;
    topk.reserve(result.probabilities.size());
    for (const tensor::Vector &probs : result.probabilities) {
        const uint64_t l = probs.size();
        const std::vector<RowSlice> shards = RankPartitioner::partition(
            0, l, std::min<uint64_t>(nodes, std::max<uint64_t>(l, 1)));
        std::vector<std::vector<tensor::Scored>> shard_tops;
        shard_tops.reserve(shards.size());
        for (const RowSlice &s : shards)
            shard_tops.push_back(tensor::topkScored(
                std::span<const float>(probs.data() + s.begin, s.rows), k,
                static_cast<uint32_t>(s.begin)));
        const std::vector<tensor::Scored> merged =
            tensor::mergeTopK(shard_tops, k);
        std::vector<uint32_t> ids;
        ids.reserve(merged.size());
        for (const tensor::Scored &sc : merged)
            ids.push_back(sc.index);
        topk.push_back(std::move(ids));
    }
    return topk;
}

} // namespace enmc::runtime
