/**
 * @file
 * Channel-level multi-rank simulation.
 *
 * All ranks of a channel execute their slice concurrently, but the host
 * can deliver at most one PRECHARGE-tunneled ENMC instruction per command
 * cycle across the *whole channel*, and payload-carrying instructions
 * occupy the shared DQ bus for a burst. With the na(i)ve per-tile
 * instruction stream this C/A bottleneck throttles 8 ranks; the hardware
 * tile sequencer (Mode bit 0) removes it — the experiment behind
 * `bench/ablation_channel`.
 */

#ifndef ENMC_RUNTIME_CHANNEL_SIM_H
#define ENMC_RUNTIME_CHANNEL_SIM_H

#include <memory>
#include <vector>

#include "enmc/rank.h"
#include "runtime/system.h"

namespace enmc::runtime {

/** Outcome of a channel run. */
struct ChannelSimResult
{
    Cycles cycles = 0;                  //!< slowest rank's completion
    std::vector<arch::RankResult> ranks;
    uint64_t instructions_delivered = 0;
    uint64_t ca_busy_cycles = 0;        //!< C/A + payload bus occupancy
    double caUtilization() const
    {
        return cycles ? static_cast<double>(ca_busy_cycles) / cycles : 0.0;
    }
};

/** Simulates every rank of one channel sharing the instruction bus. */
class ChannelSim
{
  public:
    /**
     * @param cfg System configuration (org.ranks ranks are simulated).
     * @param ranks_per_channel Override the organization's rank count
     *        (0 = use cfg.org.ranks).
     */
    explicit ChannelSim(const SystemConfig &cfg,
                        uint32_t ranks_per_channel = 0);

    /**
     * Run one job sliced across this channel's ranks (timing view; the
     * job's `categories` are the *channel's* share).
     */
    ChannelSimResult run(const JobSpec &spec,
                         Cycles max_cycles = 2'000'000'000ull);

  private:
    SystemConfig cfg_;
    uint32_t ranks_;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_CHANNEL_SIM_H
