#include "runtime/backend.h"

#include <algorithm>

#include "common/logging.h"
#include "enmc/rank.h"
#include "runtime/compiler.h"
#include "runtime/partition.h"
#include "runtime/planner.h"
#include "runtime/resilience.h"

namespace enmc::runtime {

arch::RankResult
Backend::runFunctionalSlice(const arch::RankTask &task) const
{
    (void)task;
    ENMC_PANIC("backend '", name(), "' does not support functional execution");
}

TimingResult
Backend::runJob(const JobSpec &spec) const
{
    ENMC_ASSERT(spec.categories > 0, "job dimensions not set");
    const uint64_t ranks = cfg_.totalRanks();
    arch::RankTask task = EnmcSystem::makeSliceTask(
        spec, RankPartitioner::sliceRows(spec.categories, ranks),
        RankPartitioner::evenShare(spec.candidates, ranks));

    // Very large slices are truncated and scaled linearly — screening is
    // tile-homogeneous, so the steady-state rate transfers (validated
    // against full runs for the ENMC path in tests/runtime).
    const uint64_t max_rows = 64 * 1024;
    double scale = 1.0;
    if (task.categories > max_rows) {
        scale = static_cast<double>(task.categories) / max_rows;
        task.expected_candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(task.expected_candidates / scale));
        task.categories = max_rows;
    }

    const arch::RankResult r = runSlice(task);
    TimingResult res;
    res.rank = r;
    res.ranks = ranks;
    res.extrapolated = scale != 1.0;
    res.rank_cycles = static_cast<Cycles>(r.cycles * scale);
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);
    if (res.extrapolated) {
        res.rank.cycles = res.rank_cycles;
        res.rank.screen_bytes =
            static_cast<uint64_t>(r.screen_bytes * scale);
        res.rank.exec_bytes = static_cast<uint64_t>(r.exec_bytes * scale);
        res.rank.output_bytes =
            static_cast<uint64_t>(r.output_bytes * scale);
        res.rank.dram_reads = static_cast<uint64_t>(r.dram_reads * scale);
        res.rank.dram_writes = static_cast<uint64_t>(r.dram_writes * scale);
        res.rank.dram_acts = static_cast<uint64_t>(r.dram_acts * scale);
        res.rank.dram_refs = static_cast<uint64_t>(r.dram_refs * scale);
    }
    return res;
}

// ---------------------------------------------------------------- ENMC

EnmcBackend::EnmcBackend(const SystemConfig &cfg)
    : Backend(cfg)
{
}

BackendCapabilities
EnmcBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.functional = true;
    caps.description = "ENMC rank model: INT4 Screener + FP32 Executor "
                       "with on-the-fly threshold FILTER (paper Fig. 7)";
    return caps;
}

arch::RankResult
EnmcBackend::runSlice(const arch::RankTask &task) const
{
    const dram::Organization rank_org = cfg_.org.singleRankView();
    arch::EnmcRank rank(cfg_.enmc, rank_org, cfg_.timing);
    const CompiledJob job = compileClassification(task, cfg_.enmc);
    return rank.run(job.program, task);
}

arch::RankResult
EnmcBackend::runFunctionalSlice(const arch::RankTask &task) const
{
    ENMC_ASSERT(task.functional(),
                "functional slice needs tensor payloads attached");
    return runSlice(task);
}

TimingResult
EnmcBackend::runJob(const JobSpec &spec) const
{
    // The ENMC system has its own two-point tile extrapolation, strictly
    // better than the generic truncate-and-scale default.
    return EnmcSystem(cfg_).runTiming(spec);
}

// ----------------------------------------------------------------- NMP

NmpBackend::NmpBackend(std::string name, const nmp::EngineConfig &engine,
                       const SystemConfig &cfg)
    : Backend(cfg), name_(std::move(name)), engine_(engine)
{
}

BackendCapabilities
NmpBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.functional = false;
    caps.description = std::string(nmp::engineKindName(engine_.kind)) +
                       " rank-level NMP baseline (paper Table 4)";
    return caps;
}

arch::RankResult
NmpBackend::runSlice(const arch::RankTask &task) const
{
    nmp::NmpEngine engine(engine_, cfg_.org.singleRankView(), cfg_.timing);
    return engine.run(task);
}

// ----------------------------------------------------------------- CPU

CpuBackend::CpuBackend(const SystemConfig &cfg, bool screening,
                       const nmp::CpuConfig &cpu)
    : Backend(cfg), screening_(screening), cpu_(cpu)
{
}

BackendCapabilities
CpuBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.functional = false;
    caps.description =
        screening_
            ? "host CPU roofline with approximate screening (Fig. 5)"
            : "host CPU roofline, full classification (the baseline)";
    return caps;
}

double
CpuBackend::sliceSeconds(const arch::RankTask &task) const
{
    return screening_
               ? nmp::cpuScreeningTime(cpu_, task.categories, task.hidden,
                                       task.reduced,
                                       task.expected_candidates, task.batch,
                                       task.quant)
               : nmp::cpuFullClassificationTime(cpu_, task.categories,
                                                task.hidden, task.batch);
}

arch::RankResult
CpuBackend::runSlice(const arch::RankTask &task) const
{
    const double seconds = sliceSeconds(task);
    arch::RankResult res;
    res.cycles = secondsToCycles(seconds, cfg_.timing.freq_hz);
    res.screen_bytes =
        screening_ ? task.categories * task.screenRowBytes() : 0;
    res.exec_bytes =
        screening_
            ? task.expected_candidates * task.batch * task.classRowBytes()
            : task.categories * task.classRowBytes();
    res.candidates = task.expected_candidates * task.batch;
    return res;
}

TimingResult
CpuBackend::runJob(const JobSpec &spec) const
{
    // The host runs the whole job; there is no rank partitioning.
    arch::RankTask task;
    task.categories = spec.categories;
    task.hidden = spec.hidden;
    task.reduced = spec.reduced;
    task.quant = spec.quant;
    task.batch = spec.batch;
    task.expected_candidates = std::max<uint64_t>(1, spec.candidates);

    TimingResult res;
    res.rank = runSlice(task);
    res.ranks = 1;
    res.rank_cycles = res.rank.cycles;
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);
    return res;
}

// ------------------------------------------------------------- registry

BackendRegistry::BackendRegistry()
{
    add("enmc", [](const SystemConfig &cfg) {
        return std::make_unique<EnmcBackend>(cfg);
    });
    add("enmc-resilient", [](const SystemConfig &cfg) {
        return std::make_unique<ResilientBackend>(cfg);
    });
    add("nda", [](const SystemConfig &cfg) {
        return std::make_unique<NmpBackend>(
            "nda", nmp::EngineConfig::nda(), cfg);
    });
    add("chameleon", [](const SystemConfig &cfg) {
        return std::make_unique<NmpBackend>(
            "chameleon", nmp::EngineConfig::chameleon(), cfg);
    });
    add("tensordimm", [](const SystemConfig &cfg) {
        return std::make_unique<NmpBackend>(
            "tensordimm", nmp::EngineConfig::tensorDimm(), cfg);
    });
    add("tensordimm-large", [](const SystemConfig &cfg) {
        return std::make_unique<NmpBackend>(
            "tensordimm-large", nmp::EngineConfig::tensorDimmLarge(), cfg);
    });
    add("cpu", [](const SystemConfig &cfg) {
        return std::make_unique<CpuBackend>(cfg, /*screening=*/true);
    });
    add("cpu-full", [](const SystemConfig &cfg) {
        return std::make_unique<CpuBackend>(cfg, /*screening=*/false);
    });
    add("auto", [](const SystemConfig &cfg) {
        return std::make_unique<AutoBackend>(cfg);
    });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(const std::string &name, BackendFactory factory)
{
    factories_[name] = std::move(factory);
}

bool
BackendRegistry::contains(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

std::unique_ptr<Backend>
BackendRegistry::create(const std::string &name,
                        const SystemConfig &cfg) const
{
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::string known;
        for (const auto &n : names())
            known += (known.empty() ? "" : ", ") + n;
        ENMC_PANIC("unknown backend '", name, "' (registered: ", known,
                   ")");
    }
    return it->second(cfg);
}

std::unique_ptr<Backend>
createBackend(const std::string &name, const SystemConfig &cfg)
{
    return BackendRegistry::instance().create(name, cfg);
}

std::vector<std::string>
backendNames()
{
    return BackendRegistry::instance().names();
}

} // namespace enmc::runtime
