#include "runtime/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "runtime/backend.h"
#include "runtime/compiler.h"
#include "runtime/partition.h"
#include "runtime/resilience.h"
#include "tensor/ops.h"
#include "tensor/tune.h"

namespace enmc::runtime {

using arch::RankResult;
using arch::RankTask;

EnmcSystem::EnmcSystem(const SystemConfig &cfg)
    : cfg_(cfg),
      stats_("runtime.system"),
      stat_functional_runs_(stats_.addCounter("functionalRuns",
                                              "functional jobs executed")),
      stat_timing_runs_(stats_.addCounter("timingRuns",
                                          "timing jobs executed")),
      stat_slices_(stats_.addCounter("slices", "rank slices merged")),
      stat_batch_items_(stats_.addCounter("batchItems",
                                          "batch items classified")),
      stat_candidates_(stats_.addCounter("candidates",
                                         "candidate rows exactly scored")),
      stat_fault_injected_(stats_.addCounter(
          "faultInjectedWords", "data words with injected faults")),
      stat_fault_corrected_(stats_.addCounter(
          "faultCorrected", "faulty words repaired by SECDED")),
      stat_fault_detected_(stats_.addCounter(
          "faultDetected", "faulty words detected uncorrectable")),
      stat_fault_escaped_(stats_.addCounter(
          "faultEscaped", "faulty words silently corrupted")),
      stat_uncorrectable_(stats_.addCounter(
          "uncorrectableWords", "uncorrectable words after resilience")),
      stat_uncorrectable_weak_(stats_.addCounter(
          "uncorrectableWeakWords",
          "uncorrectable words on the weak (screener) path")),
      stat_uncorrectable_strong_(stats_.addCounter(
          "uncorrectableStrongWords",
          "uncorrectable words on the strong (executor) path")),
      stat_redundancy_reads_(stats_.addCounter(
          "faultRedundancyReads", "extra bursts fetching ECC check bits")),
      stat_decode_cycles_(stats_.addCounter(
          "faultDecodeCycles", "ECC syndrome-decode cycles charged")),
      stat_degraded_(stats_.addCounter(
          "degradedCandidates", "candidates answered approximately")),
      stat_slice_cycles_(stats_.addScalar("sliceCycles",
                                          "simulated cycles per slice")),
      stat_slice_skew_(stats_.addHistogram(
          "sliceSkew", "slice cycles relative to the slowest slice",
          0.0, 1.0, 20)),
      stats_registration_(stats_)
{
    // Honour ENMC_TUNE_JSON before the first kernel call of any backend
    // (idempotent; performance-only, never changes results).
    tensor::tune::loadFromEnv();
    ENMC_ASSERT(cfg.totalRanks() >= 1, "system needs at least one rank");

    // Per-protection-class mirrors: each class must satisfy the same
    // accounting invariant as the aggregate (injected == corrected +
    // detected + escaped), checkable from the exported JSON alone.
    static const char *const kClassTitle[] = {"None", "Weak", "Strong"};
    for (int c = 0; c < fault::kNumProtectionClasses; ++c) {
        const std::string p = std::string("fault") + kClassTitle[c];
        const std::string cls = fault::protectionName(
            static_cast<fault::Protection>(c));
        stat_class_[c][0] = &stats_.addCounter(
            p + "Injected", cls + "-class words with injected faults");
        stat_class_[c][1] = &stats_.addCounter(
            p + "Corrected", cls + "-class faulty words repaired");
        stat_class_[c][2] = &stats_.addCounter(
            p + "Detected", cls + "-class words detected uncorrectable");
        stat_class_[c][3] = &stats_.addCounter(
            p + "Escaped", cls + "-class words silently corrupted");
    }
}

void
EnmcSystem::recordSlice(const RankResult &res) const
{
    ++stat_slices_;
    stat_candidates_ += res.candidates;
    stat_fault_injected_ += res.faults.injected_words;
    stat_fault_corrected_ += res.faults.corrected;
    stat_fault_detected_ += res.faults.detected;
    stat_fault_escaped_ += res.faults.escaped;
    for (int c = 0; c < fault::kNumProtectionClasses; ++c) {
        const fault::FaultCounters::ClassCounters &pc = res.faults.per_class[c];
        *stat_class_[c][0] += pc.injected;
        *stat_class_[c][1] += pc.corrected;
        *stat_class_[c][2] += pc.detected;
        *stat_class_[c][3] += pc.escaped;
    }
    stat_uncorrectable_ += res.uncorrectable_words;
    stat_uncorrectable_weak_ += res.uncorrectable_weak_words;
    stat_uncorrectable_strong_ += res.uncorrectable_strong_words;
    stat_redundancy_reads_ += res.ecc_redundancy_reads;
    stat_decode_cycles_ += res.ecc_decode_cycles;
    stat_degraded_ += res.degraded_candidates;
    stat_slice_cycles_.sample(static_cast<double>(res.cycles));
}

RankTask
EnmcSystem::makeSliceTask(const JobSpec &spec, uint64_t slice_categories,
                          uint64_t slice_candidates)
{
    ENMC_ASSERT(spec.hidden > 0 && spec.reduced > 0 &&
                    slice_categories > 0,
                "job dimensions not set");
    RankTask task;
    task.categories = slice_categories;
    task.hidden = spec.hidden;
    task.reduced = spec.reduced;
    task.quant = spec.quant;
    task.batch = spec.batch;
    task.sigmoid = spec.sigmoid;
    task.expected_candidates = std::max<uint64_t>(1, slice_candidates);
    TaskLayout::assign(task);
    return task;
}

RankTask
EnmcSystem::makeRankTask(const JobSpec &spec) const
{
    ENMC_ASSERT(spec.categories > 0, "job dimensions not set");
    const uint64_t ranks = cfg_.totalRanks();
    return makeSliceTask(spec,
                         RankPartitioner::sliceRows(spec.categories, ranks),
                         RankPartitioner::evenShare(spec.candidates, ranks));
}

TimingResult
EnmcSystem::runRank(const RankTask &task) const
{
    const EnmcBackend backend(cfg_);
    TimingResult res;
    res.rank = backend.runSlice(task);
    res.rank_cycles = res.rank.cycles;
    res.ranks = cfg_.totalRanks();
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);
    recordSlice(res.rank);

    // The representative rank's simulated screen/exec busy windows on the
    // DDR-clock timeline (same reconstruction as the functional path).
    obs::Tracer &tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
        const double us_per_cycle = 1e6 / cfg_.timing.freq_hz;
        const double end_us = res.rank.cycles * us_per_cycle;
        const double screen_us = res.rank.screener_busy * us_per_cycle;
        const double exec_us = res.rank.executor_busy * us_per_cycle;
        const uint32_t rank_id = task.rank_index;
        tracer.complete("screen", "sim", obs::kSimPid, rank_id, 0.0,
                        screen_us);
        tracer.instant("filter", "sim", obs::kSimPid, rank_id, screen_us,
                       {{"candidates",
                         static_cast<double>(res.rank.candidates)}});
        tracer.complete("exec", "sim", obs::kSimPid, rank_id,
                        end_us - exec_us, exec_us);
    }
    return res;
}

TimingResult
EnmcSystem::runTiming(const JobSpec &spec) const
{
    ++stat_timing_runs_;
    obs::TraceSpan span("runTiming", "pipeline");
    span.arg("categories", static_cast<double>(spec.categories));
    span.arg("batch", static_cast<double>(spec.batch));
    RankTask task = makeRankTask(spec);
    const uint64_t tile_rows = screeningTileRows(task, cfg_.enmc);
    const uint64_t tiles = ceilDiv(task.categories, tile_rows);

    if (tiles <= cfg_.max_sim_tiles)
        return runRank(task);

    // Representative-tile extrapolation: measure two truncated slice
    // sizes, fit cycles = a + b * tiles, and extend. Candidate work and
    // traffic scale with the same ratio (screening is tile-homogeneous).
    const uint64_t n2 = cfg_.max_sim_tiles;
    const uint64_t n1 = cfg_.max_sim_tiles / 2;
    auto truncated = [&](uint64_t n) {
        RankTask t = task;
        t.categories = n * tile_rows;
        t.expected_candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   static_cast<double>(task.expected_candidates) *
                   t.categories / task.categories));
        return runRank(t);
    };
    const TimingResult r1 = truncated(n1);
    const TimingResult r2 = truncated(n2);

    const double per_tile =
        static_cast<double>(r2.rank_cycles - r1.rank_cycles) /
        static_cast<double>(n2 - n1);
    TimingResult res = r2;
    res.extrapolated = true;
    res.rank_cycles = r2.rank_cycles +
        static_cast<Cycles>(per_tile * static_cast<double>(tiles - n2));
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);

    const double scale = static_cast<double>(task.categories) /
                         (static_cast<double>(n2) * tile_rows);
    res.rank.cycles = res.rank_cycles;
    res.rank.screen_bytes =
        static_cast<uint64_t>(r2.rank.screen_bytes * scale);
    res.rank.exec_bytes = static_cast<uint64_t>(r2.rank.exec_bytes * scale);
    res.rank.output_bytes =
        static_cast<uint64_t>(r2.rank.output_bytes * scale);
    res.rank.candidates = task.expected_candidates * task.batch;
    res.rank.instructions =
        static_cast<uint64_t>(r2.rank.instructions * scale);
    res.rank.screener_busy =
        static_cast<Cycles>(r2.rank.screener_busy * scale);
    res.rank.executor_busy =
        static_cast<Cycles>(r2.rank.executor_busy * scale);
    res.rank.dram_reads = static_cast<uint64_t>(r2.rank.dram_reads * scale);
    res.rank.dram_writes =
        static_cast<uint64_t>(r2.rank.dram_writes * scale);
    res.rank.dram_acts = static_cast<uint64_t>(r2.rank.dram_acts * scale);
    res.rank.dram_refs = static_cast<uint64_t>(r2.rank.dram_refs * scale);
    return res;
}

void
EnmcSystem::runFunctionalRange(const nn::Classifier &classifier,
                               const screening::Screener &screener,
                               const std::vector<tensor::Vector> &h_batch,
                               uint64_t ranks_to_use, uint64_t row_begin,
                               uint64_t row_count,
                               FunctionalResult &out) const
{
    ENMC_ASSERT(!h_batch.empty(), "empty batch");
    ENMC_ASSERT(screener.quantizedFrozen(),
                "freezeQuantized() before running on hardware");
    ENMC_ASSERT(screener.config().selection ==
                    screening::SelectionMode::Threshold,
                "the hardware FILTER needs a threshold-mode screener");
    ENMC_ASSERT(row_begin + row_count <= classifier.categories(),
                "row range out of bounds");
    const uint64_t ranks = std::min<uint64_t>(ranks_to_use, row_count);
    const uint64_t batch = h_batch.size();

    ++stat_functional_runs_;
    stat_batch_items_ += batch;
    obs::TraceSpan request_span("request", "pipeline");
    request_span.arg("rows", static_cast<double>(row_count));
    request_span.arg("batch", static_cast<double>(batch));
    request_span.arg("ranks", static_cast<double>(ranks));

    // Per-item projected + quantized features (computed once, shared by
    // all ranks, exactly as the host broadcast works).
    std::vector<tensor::QuantizedVector> yq;
    {
        obs::TraceSpan span("screen.project", "pipeline");
        for (const auto &h : h_batch)
            yq.push_back(tensor::quantize(screener.project(h),
                                          screener.config().quant));
    }

    const tensor::QuantizedMatrix &wq = screener.quantizedWeights();

    // Fail-open screening guard: with the weak (screener) path running
    // unprotected and a data BER armed, a silent flip in a packed
    // weight perturbs one approximate logit by
    // |delta_value| * row_scale * |feature| — and the only harm it can
    // do is demote a true candidate (an inflated logit self-corrects
    // by *becoming* a candidate the executor recomputes exactly). So
    // the FILTER cut is lowered by `weak_guard` units of the expected
    // perturbation, scaled by the per-row corruption probability: the
    // margin vanishes at low BER and widens the candidate set just
    // enough at high BER.
    float weak_margin = 0.0f;
    if (cfg_.fault.enabled && cfg_.fault.data_ber > 0.0 &&
        cfg_.fault.schemeFor(fault::Protection::Weak) ==
            fault::EccScheme::None &&
        cfg_.resilience.weak_guard > 0.0) {
        double feat_mag = 0.0;
        for (const auto &q : yq) {
            double sum = 0.0;
            for (const int8_t v : q.values)
                sum += std::abs(static_cast<double>(v));
            feat_mag += q.scale * sum /
                        static_cast<double>(std::max<size_t>(
                            q.values.size(), 1));
        }
        feat_mag /= static_cast<double>(yq.size());
        double mean_scale = 0.0;
        for (const float s : wq.scales)
            mean_scale += s;
        mean_scale /= static_cast<double>(std::max<size_t>(
            wq.scales.size(), 1));
        // A flip lands in the packed two's-complement domain (the rank
        // folds its scratch back to the storage width), so one flip in
        // a w-bit weight perturbs it by 2^k, k < w: mean (2^w - 1) / w.
        const int width = tensor::quantBitCount(wq.bits) > 0
                              ? tensor::quantBitCount(wq.bits)
                              : 8;
        const double mean_flip =
            (static_cast<double>(1 << width) - 1.0) / width;
        const double corrupt_p = std::min(
            1.0, cfg_.fault.data_ber * static_cast<double>(wq.cols) *
                     width);
        weak_margin = static_cast<float>(cfg_.resilience.weak_guard *
                                         corrupt_p * mean_flip *
                                         mean_scale * feat_mag);
    }

    const std::vector<RowSlice> slices =
        RankPartitioner::partition(row_begin, row_count, ranks);
    const EnmcBackend plain_backend(cfg_);
    const ResilientBackend resilient_backend(cfg_);
    const Backend &backend =
        cfg_.resilient ? static_cast<const Backend &>(resilient_backend)
                       : plain_backend;

    // Each slice is a self-contained rank simulation: workers build their
    // own tensor slices and EnmcRank instance, park the RankResult in a
    // per-slice slot, and the merge below walks the slots in slice order —
    // so the output is bit-identical for any worker count.
    // Maps slice index -> the physical rank simulating it (also the trace
    // track the slice's spans land on).
    auto sliceRankId = [&](size_t s) {
        return cfg_.functional_rank_ids.empty()
                   ? static_cast<uint32_t>(s)
                   : cfg_.functional_rank_ids[s %
                                              cfg_.functional_rank_ids
                                                  .size()];
    };

    std::vector<RankResult> results(slices.size());
    parallelFor(0, slices.size(), cfg_.sim_threads, [&](size_t s) {
        const uint64_t row0 = slices[s].begin;
        const uint64_t rows = slices[s].rows;
        obs::TraceSpan slice_span("slice.sim", "pipeline", sliceRankId(s));
        slice_span.arg("slice", static_cast<double>(s));
        slice_span.arg("rows", static_cast<double>(rows));

        // Slice the screener + classifier tensors for this rank.
        tensor::QuantizedMatrix wq_slice;
        wq_slice.bits = wq.bits;
        wq_slice.rows = rows;
        wq_slice.cols = wq.cols;
        wq_slice.values.assign(
            wq.values.begin() + row0 * wq.cols,
            wq.values.begin() + (row0 + rows) * wq.cols);
        wq_slice.scales.assign(wq.scales.begin() + row0,
                               wq.scales.begin() + row0 + rows);
        wq_slice.scheme = wq.scheme;
        if (wq.scheme == tensor::QuantScheme::Asymmetric)
            wq_slice.zero_points.assign(wq.zero_points.begin() + row0,
                                        wq.zero_points.begin() + row0 + rows);

        tensor::Vector sb_slice(screener.bias().begin() + row0,
                                screener.bias().begin() + row0 + rows);
        tensor::Matrix cw_slice(rows, classifier.hidden());
        for (uint64_t i = 0; i < rows; ++i) {
            const auto src = classifier.weights().row(row0 + i);
            std::copy(src.begin(), src.end(), cw_slice.row(i).begin());
        }
        tensor::Vector cb_slice(classifier.bias().begin() + row0,
                                classifier.bias().begin() + row0 + rows);

        RankTask task;
        task.categories = rows;
        task.hidden = classifier.hidden();
        task.reduced = screener.reducedDim();
        task.quant = screener.config().quant;
        task.batch = batch;
        task.sigmoid =
            classifier.normalization() == nn::Normalization::Sigmoid;
        task.threshold = screener.config().threshold - weak_margin;
        task.screen_weights = &wq_slice;
        task.screen_bias = &sb_slice;
        task.class_weights = &cw_slice;
        task.class_bias = &cb_slice;
        task.features_q = yq;
        task.features = h_batch;

        // Same layout policy as the timing path (TaskLayout is the only
        // place the reserve policy lives).
        TaskLayout::assign(task);

        // Per-slice fault streams: every sample is pure in (seed, stream,
        // index), so pooled runs stay bit-identical to serial ones.
        const uint32_t rank_id = sliceRankId(s);
        task.rank_index = rank_id;
        fault::FaultInjector injector(cfg_.fault, /*stream=*/rank_id);
        if (cfg_.fault.enabled)
            task.injector = &injector;

        results[s] = backend.runFunctionalSlice(task);
        // The slice injector accumulates every attempt (retries merge
        // their counters back into it); the result's own delta only
        // covers the final attempt.
        if (task.injector != nullptr)
            results[s].faults = injector.counters();
    });

    {
        obs::TraceSpan merge_span("merge", "pipeline");
        for (size_t s = 0; s < slices.size(); ++s) {
            const uint64_t row0 = slices[s].begin;
            const RankResult &rr = results[s];
            out.rank_cycles = std::max(out.rank_cycles, rr.cycles);
            out.faults += rr.faults;
            out.uncorrectable_words += rr.uncorrectable_words;
            out.uncorrectable_weak_words += rr.uncorrectable_weak_words;
            out.uncorrectable_strong_words += rr.uncorrectable_strong_words;
            out.ecc_redundancy_reads += rr.ecc_redundancy_reads;
            out.ecc_decode_cycles += rr.ecc_decode_cycles;
            out.degraded_candidates += rr.degraded_candidates;
            out.slice_cycles.push_back(rr.cycles);
            recordSlice(rr);
            for (uint64_t item = 0; item < batch; ++item) {
                std::copy(rr.logits[item].begin(), rr.logits[item].end(),
                          out.logits[item].begin() + row0);
                for (uint32_t c : rr.candidate_ids[item])
                    out.candidates[item].push_back(
                        static_cast<uint32_t>(row0 + c));
            }
        }
    }
    out.seconds = cyclesToSeconds(out.rank_cycles, cfg_.timing.freq_hz);

    // Load-imbalance histogram: each slice's cycles relative to the
    // slowest slice (1.0 = critical path).
    if (out.rank_cycles > 0) {
        for (size_t s = 0; s < slices.size(); ++s)
            stat_slice_skew_.sample(
                static_cast<double>(results[s].cycles) /
                static_cast<double>(out.rank_cycles));
    }

    // Reconstruct each rank's simulated timeline (screen || exec on the
    // DDR clock) as trace spans on the kSimPid timeline: the screener
    // streams from cycle 0, the executor's busy window ends at the
    // slice's last cycle, and the filter handoff is the instant the
    // screener goes idle.
    obs::Tracer &tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
        const double us_per_cycle = 1e6 / cfg_.timing.freq_hz;
        for (size_t s = 0; s < slices.size(); ++s) {
            const RankResult &rr = results[s];
            const uint32_t rank_id = sliceRankId(s);
            const double end_us = rr.cycles * us_per_cycle;
            const double screen_us = rr.screener_busy * us_per_cycle;
            const double exec_us = rr.executor_busy * us_per_cycle;
            tracer.complete("screen", "sim", obs::kSimPid, rank_id, 0.0,
                            screen_us,
                            {{"rows", static_cast<double>(slices[s].rows)}});
            tracer.instant("filter", "sim", obs::kSimPid, rank_id,
                           screen_us,
                           {{"candidates",
                             static_cast<double>(rr.candidates)}});
            tracer.complete("exec", "sim", obs::kSimPid, rank_id,
                            end_us - exec_us, exec_us,
                            {{"candidates",
                              static_cast<double>(rr.candidates)}});
        }
    }
}

EnmcSystem::FunctionalResult
EnmcSystem::runFunctional(const nn::Classifier &classifier,
                          const screening::Screener &screener,
                          const std::vector<tensor::Vector> &h_batch,
                          uint64_t ranks_to_use) const
{
    const uint64_t l = classifier.categories();
    const uint64_t batch = h_batch.size();
    FunctionalResult out;
    out.logits.assign(batch, tensor::Vector(l, 0.0f));
    out.candidates.assign(batch, {});
    runFunctionalRange(classifier, screener, h_batch, ranks_to_use, 0, l,
                       out);

    // Host-side merge + SFU-accurate normalization (Taylor-4 exp).
    for (uint64_t item = 0; item < batch; ++item) {
        out.probabilities.push_back(
            classifier.normalization() == nn::Normalization::Softmax
                ? tensor::softmaxTaylor(out.logits[item])
                : tensor::sigmoidTaylor(out.logits[item]));
    }
    return out;
}

} // namespace enmc::runtime
