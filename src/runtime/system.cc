#include "runtime/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "runtime/backend.h"
#include "runtime/compiler.h"
#include "runtime/partition.h"
#include "runtime/resilience.h"
#include "tensor/ops.h"

namespace enmc::runtime {

using arch::RankResult;
using arch::RankTask;

EnmcSystem::EnmcSystem(const SystemConfig &cfg)
    : cfg_(cfg)
{
    ENMC_ASSERT(cfg.totalRanks() >= 1, "system needs at least one rank");
}

RankTask
EnmcSystem::makeSliceTask(const JobSpec &spec, uint64_t slice_categories,
                          uint64_t slice_candidates)
{
    ENMC_ASSERT(spec.hidden > 0 && spec.reduced > 0 &&
                    slice_categories > 0,
                "job dimensions not set");
    RankTask task;
    task.categories = slice_categories;
    task.hidden = spec.hidden;
    task.reduced = spec.reduced;
    task.quant = spec.quant;
    task.batch = spec.batch;
    task.sigmoid = spec.sigmoid;
    task.expected_candidates = std::max<uint64_t>(1, slice_candidates);
    TaskLayout::assign(task);
    return task;
}

RankTask
EnmcSystem::makeRankTask(const JobSpec &spec) const
{
    ENMC_ASSERT(spec.categories > 0, "job dimensions not set");
    const uint64_t ranks = cfg_.totalRanks();
    return makeSliceTask(spec,
                         RankPartitioner::sliceRows(spec.categories, ranks),
                         RankPartitioner::evenShare(spec.candidates, ranks));
}

TimingResult
EnmcSystem::runRank(const RankTask &task) const
{
    const EnmcBackend backend(cfg_);
    TimingResult res;
    res.rank = backend.runSlice(task);
    res.rank_cycles = res.rank.cycles;
    res.ranks = cfg_.totalRanks();
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);
    return res;
}

TimingResult
EnmcSystem::runTiming(const JobSpec &spec) const
{
    RankTask task = makeRankTask(spec);
    const uint64_t tile_rows = screeningTileRows(task, cfg_.enmc);
    const uint64_t tiles = ceilDiv(task.categories, tile_rows);

    if (tiles <= cfg_.max_sim_tiles)
        return runRank(task);

    // Representative-tile extrapolation: measure two truncated slice
    // sizes, fit cycles = a + b * tiles, and extend. Candidate work and
    // traffic scale with the same ratio (screening is tile-homogeneous).
    const uint64_t n2 = cfg_.max_sim_tiles;
    const uint64_t n1 = cfg_.max_sim_tiles / 2;
    auto truncated = [&](uint64_t n) {
        RankTask t = task;
        t.categories = n * tile_rows;
        t.expected_candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   static_cast<double>(task.expected_candidates) *
                   t.categories / task.categories));
        return runRank(t);
    };
    const TimingResult r1 = truncated(n1);
    const TimingResult r2 = truncated(n2);

    const double per_tile =
        static_cast<double>(r2.rank_cycles - r1.rank_cycles) /
        static_cast<double>(n2 - n1);
    TimingResult res = r2;
    res.extrapolated = true;
    res.rank_cycles = r2.rank_cycles +
        static_cast<Cycles>(per_tile * static_cast<double>(tiles - n2));
    res.seconds = cyclesToSeconds(res.rank_cycles, cfg_.timing.freq_hz);

    const double scale = static_cast<double>(task.categories) /
                         (static_cast<double>(n2) * tile_rows);
    res.rank.cycles = res.rank_cycles;
    res.rank.screen_bytes =
        static_cast<uint64_t>(r2.rank.screen_bytes * scale);
    res.rank.exec_bytes = static_cast<uint64_t>(r2.rank.exec_bytes * scale);
    res.rank.output_bytes =
        static_cast<uint64_t>(r2.rank.output_bytes * scale);
    res.rank.candidates = task.expected_candidates * task.batch;
    res.rank.instructions =
        static_cast<uint64_t>(r2.rank.instructions * scale);
    res.rank.screener_busy =
        static_cast<Cycles>(r2.rank.screener_busy * scale);
    res.rank.executor_busy =
        static_cast<Cycles>(r2.rank.executor_busy * scale);
    res.rank.dram_reads = static_cast<uint64_t>(r2.rank.dram_reads * scale);
    res.rank.dram_writes =
        static_cast<uint64_t>(r2.rank.dram_writes * scale);
    res.rank.dram_acts = static_cast<uint64_t>(r2.rank.dram_acts * scale);
    res.rank.dram_refs = static_cast<uint64_t>(r2.rank.dram_refs * scale);
    return res;
}

void
EnmcSystem::runFunctionalRange(const nn::Classifier &classifier,
                               const screening::Screener &screener,
                               const std::vector<tensor::Vector> &h_batch,
                               uint64_t ranks_to_use, uint64_t row_begin,
                               uint64_t row_count,
                               FunctionalResult &out) const
{
    ENMC_ASSERT(!h_batch.empty(), "empty batch");
    ENMC_ASSERT(screener.quantizedFrozen(),
                "freezeQuantized() before running on hardware");
    ENMC_ASSERT(screener.config().selection ==
                    screening::SelectionMode::Threshold,
                "the hardware FILTER needs a threshold-mode screener");
    ENMC_ASSERT(row_begin + row_count <= classifier.categories(),
                "row range out of bounds");
    const uint64_t ranks = std::min<uint64_t>(ranks_to_use, row_count);
    const uint64_t batch = h_batch.size();

    // Per-item projected + quantized features (computed once, shared by
    // all ranks, exactly as the host broadcast works).
    std::vector<tensor::QuantizedVector> yq;
    for (const auto &h : h_batch)
        yq.push_back(tensor::quantize(screener.project(h),
                                      screener.config().quant));

    const tensor::QuantizedMatrix &wq = screener.quantizedWeights();
    const std::vector<RowSlice> slices =
        RankPartitioner::partition(row_begin, row_count, ranks);
    const EnmcBackend plain_backend(cfg_);
    const ResilientBackend resilient_backend(cfg_);
    const Backend &backend =
        cfg_.resilient ? static_cast<const Backend &>(resilient_backend)
                       : plain_backend;

    // Each slice is a self-contained rank simulation: workers build their
    // own tensor slices and EnmcRank instance, park the RankResult in a
    // per-slice slot, and the merge below walks the slots in slice order —
    // so the output is bit-identical for any worker count.
    std::vector<RankResult> results(slices.size());
    parallelFor(0, slices.size(), cfg_.sim_threads, [&](size_t s) {
        const uint64_t row0 = slices[s].begin;
        const uint64_t rows = slices[s].rows;

        // Slice the screener + classifier tensors for this rank.
        tensor::QuantizedMatrix wq_slice;
        wq_slice.bits = wq.bits;
        wq_slice.rows = rows;
        wq_slice.cols = wq.cols;
        wq_slice.values.assign(
            wq.values.begin() + row0 * wq.cols,
            wq.values.begin() + (row0 + rows) * wq.cols);
        wq_slice.scales.assign(wq.scales.begin() + row0,
                               wq.scales.begin() + row0 + rows);

        tensor::Vector sb_slice(screener.bias().begin() + row0,
                                screener.bias().begin() + row0 + rows);
        tensor::Matrix cw_slice(rows, classifier.hidden());
        for (uint64_t i = 0; i < rows; ++i) {
            const auto src = classifier.weights().row(row0 + i);
            std::copy(src.begin(), src.end(), cw_slice.row(i).begin());
        }
        tensor::Vector cb_slice(classifier.bias().begin() + row0,
                                classifier.bias().begin() + row0 + rows);

        RankTask task;
        task.categories = rows;
        task.hidden = classifier.hidden();
        task.reduced = screener.reducedDim();
        task.quant = screener.config().quant;
        task.batch = batch;
        task.sigmoid =
            classifier.normalization() == nn::Normalization::Sigmoid;
        task.threshold = screener.config().threshold;
        task.screen_weights = &wq_slice;
        task.screen_bias = &sb_slice;
        task.class_weights = &cw_slice;
        task.class_bias = &cb_slice;
        task.features_q = yq;
        task.features = h_batch;

        // Same layout policy as the timing path (TaskLayout is the only
        // place the reserve policy lives).
        TaskLayout::assign(task);

        // Per-slice fault streams: every sample is pure in (seed, stream,
        // index), so pooled runs stay bit-identical to serial ones.
        const uint32_t rank_id =
            cfg_.functional_rank_ids.empty()
                ? static_cast<uint32_t>(s)
                : cfg_.functional_rank_ids[s %
                                           cfg_.functional_rank_ids.size()];
        task.rank_index = rank_id;
        fault::FaultInjector injector(cfg_.fault, /*stream=*/rank_id);
        if (cfg_.fault.enabled)
            task.injector = &injector;

        results[s] = backend.runFunctionalSlice(task);
        // The slice injector accumulates every attempt (retries merge
        // their counters back into it); the result's own delta only
        // covers the final attempt.
        if (task.injector != nullptr)
            results[s].faults = injector.counters();
    });

    for (size_t s = 0; s < slices.size(); ++s) {
        const uint64_t row0 = slices[s].begin;
        const RankResult &rr = results[s];
        out.rank_cycles = std::max(out.rank_cycles, rr.cycles);
        out.faults += rr.faults;
        out.uncorrectable_words += rr.uncorrectable_words;
        out.degraded_candidates += rr.degraded_candidates;
        for (uint64_t item = 0; item < batch; ++item) {
            std::copy(rr.logits[item].begin(), rr.logits[item].end(),
                      out.logits[item].begin() + row0);
            for (uint32_t c : rr.candidate_ids[item])
                out.candidates[item].push_back(
                    static_cast<uint32_t>(row0 + c));
        }
    }
    out.seconds = cyclesToSeconds(out.rank_cycles, cfg_.timing.freq_hz);
}

EnmcSystem::FunctionalResult
EnmcSystem::runFunctional(const nn::Classifier &classifier,
                          const screening::Screener &screener,
                          const std::vector<tensor::Vector> &h_batch,
                          uint64_t ranks_to_use) const
{
    const uint64_t l = classifier.categories();
    const uint64_t batch = h_batch.size();
    FunctionalResult out;
    out.logits.assign(batch, tensor::Vector(l, 0.0f));
    out.candidates.assign(batch, {});
    runFunctionalRange(classifier, screener, h_batch, ranks_to_use, 0, l,
                       out);

    // Host-side merge + SFU-accurate normalization (Taylor-4 exp).
    for (uint64_t item = 0; item < batch; ++item) {
        out.probabilities.push_back(
            classifier.normalization() == nn::Normalization::Softmax
                ? tensor::softmaxTaylor(out.logits[item])
                : tensor::sigmoidTaylor(out.logits[item]));
    }
    return out;
}

} // namespace enmc::runtime
