/**
 * @file
 * One cluster node behind the uniform `Backend` interface.
 *
 * `NodeBackend` wraps any registry backend and adds the node-granularity
 * health state machine the cluster fabric routes around — the
 * rank-level stuck-rank blacklisting of `ResilientBackend` promoted one
 * level: a node that keeps failing shard executions walks
 * Alive -> Suspect -> Dead (after `ResilienceConfig::blacklist_after`
 * consecutive failures), and a Dead node never receives traffic again.
 * It also carries the cumulative dispatch count the router's
 * least-loaded replica selection keys on. Because a NodeBackend *is* a
 * `Backend`, a cluster of them composes behind the same interface the
 * registry already serves.
 */

#ifndef ENMC_RUNTIME_NODE_BACKEND_H
#define ENMC_RUNTIME_NODE_BACKEND_H

#include <memory>
#include <string>

#include "fault/injector.h"
#include "runtime/backend.h"

namespace enmc::runtime {

/** Failover state of one node (rank blacklisting, promoted a level). */
enum class NodeHealth : uint8_t {
    Alive = 0,   //!< serving traffic
    Suspect,     //!< failed recently; still routable, one strike left
    Dead,        //!< blacklisted or killed; never routed to again
};

const char *nodeHealthName(NodeHealth h);

class NodeBackend : public Backend
{
  public:
    /**
     * @param id         Cluster-wide node id (trace track, stats name).
     * @param inner      The execution backend this node runs.
     * @param resilience Policy whose `blacklist_after` drives the
     *                   Suspect -> Dead transition.
     */
    NodeBackend(uint32_t id, std::unique_ptr<Backend> inner,
                const fault::ResilienceConfig &resilience);

    // --- Backend interface (delegated) --------------------------------
    std::string name() const override;
    BackendCapabilities capabilities() const override;
    arch::RankResult runSlice(const arch::RankTask &task) const override;
    arch::RankResult
    runFunctionalSlice(const arch::RankTask &task) const override;
    TimingResult runJob(const JobSpec &spec) const override;

    // --- node health + load -------------------------------------------
    uint32_t id() const { return id_; }
    NodeHealth health() const { return health_; }
    bool alive() const { return health_ != NodeHealth::Dead; }

    /** Operator/scripted kill: immediately Dead, no strikes. */
    void kill();

    /** One failed shard execution; Dead after `blacklist_after` strikes. */
    void recordFailure();

    /** One successful shard execution; resets strikes (unless Dead). */
    void recordSuccess();

    /** Cumulative dispatched shard-batches (least-loaded routing key). */
    uint64_t load() const { return dispatched_; }
    void recordDispatch(uint64_t batches = 1) { dispatched_ += batches; }

    Backend &inner() { return *inner_; }

  private:
    uint32_t id_;
    std::unique_ptr<Backend> inner_;
    fault::ResilienceConfig resilience_;
    NodeHealth health_ = NodeHealth::Alive;
    uint32_t consecutive_failures_ = 0;
    uint64_t dispatched_ = 0;
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_NODE_BACKEND_H
