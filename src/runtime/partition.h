/**
 * @file
 * The one rank partitioning + rank-local address layout policy.
 *
 * Every consumer that splits a category range across execution units —
 * the timing path (`EnmcSystem::makeSliceTask`), the functional path
 * (`EnmcSystem::runFunctionalRange`), the channel simulator and the
 * scale-out layer — derives its slices from `RankPartitioner` and its
 * task address map from `TaskLayout`, so the timing and functional
 * simulations provably exercise one layout. (Regression-tested in
 * `tests/runtime/test_backend.cc`: both paths must produce byte-identical
 * base addresses for the same task shape.)
 */

#ifndef ENMC_RUNTIME_PARTITION_H
#define ENMC_RUNTIME_PARTITION_H

#include <cstdint>
#include <vector>

#include "enmc/task.h"

namespace enmc::runtime {

/** One contiguous share of a partitioned category range. */
struct RowSlice
{
    uint64_t begin = 0;   //!< first (global) row of this share
    uint64_t rows = 0;    //!< rows in this share (> 0)
};

/** Splits row ranges evenly across ranks / nodes. */
class RankPartitioner
{
  public:
    /** Rows per share when `rows` spread over `parts` (ceil slicing). */
    static uint64_t sliceRows(uint64_t rows, uint64_t parts)
    {
        return ceilDiv(rows, parts);
    }

    /** An even share of any per-part total (candidates, bytes, ...). */
    static uint64_t evenShare(uint64_t total, uint64_t parts)
    {
        return ceilDiv(total, parts);
    }

    /**
     * Partition [row_begin, row_begin + rows) into at most `parts`
     * contiguous slices of ceil(rows / parts) rows (the final slice takes
     * the remainder; trailing empty slices are dropped).
     */
    static std::vector<RowSlice> partition(uint64_t row_begin,
                                           uint64_t rows, uint64_t parts);
};

/**
 * Rank-local address layout: disjoint regions for screener weights,
 * classifier weights, biases, features and outputs, each region
 * row-aligned so streaming stays row-hit friendly.
 */
class TaskLayout
{
  public:
    /** Region alignment (one DRAM row's worth of bytes). */
    static constexpr uint64_t kAlign = 4096;

    /**
     * Assign the five base addresses of `task` from its dimensions.
     * @return the total reserved footprint in bytes.
     */
    static uint64_t assign(arch::RankTask &task);
};

} // namespace enmc::runtime

#endif // ENMC_RUNTIME_PARTITION_H
