/**
 * @file
 * A small fixed-size thread pool (no work stealing) plus a parallelFor
 * helper for the simulator's embarrassingly parallel loops.
 *
 * Rank slices and scale-out node shards are independent simulations:
 * each worker runs whole iterations against its own EnmcRank/NmpEngine
 * instance and writes into a caller-owned, per-index output slot, so the
 * merged result is bit-identical to the serial loop regardless of worker
 * count or scheduling order. Iterations are handed out from a single
 * atomic counter — simple, deterministic in its outputs, and plenty for
 * loops whose bodies are millions of simulated cycles long.
 */

#ifndef ENMC_COMMON_THREAD_POOL_H
#define ENMC_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"

namespace enmc {

/** Fixed set of workers executing submitted jobs FIFO. */
class ThreadPool
{
  public:
    /**
     * @param workers Worker-thread count. 0 picks the hardware
     *        concurrency (at least 1).
     */
    explicit ThreadPool(size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t workers() const { return threads_.size(); }

    /** Enqueue one job. Jobs must not throw. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /**
     * Run `fn(i)` for every i in [begin, end) on the pool and block until
     * all iterations complete. Iterations are claimed one at a time from
     * an atomic counter; with `workers() == 1` (or a single iteration)
     * the loop runs inline on the calling thread.
     *
     * If `fn` throws, the remaining unstarted iterations are skipped and
     * the first exception is rethrown on the calling thread after the
     * loop drains — the pool itself stays usable.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &fn);

    /**
     * Process-wide pool, sized once on first use from the
     * `ENMC_THREADS` environment variable (unset/0 = hardware
     * concurrency). Shared by every simulation loop so nested callers
     * do not oversubscribe the machine.
     */
    static ThreadPool &global();

    /**
     * Pool utilization stats ("common.threadPool"). The pool lives below
     * the obs layer, so it does not self-register with the StatRegistry;
     * obs::initMetrics enrolls the global pool's group when metrics are
     * requested.
     */
    StatGroup &stats() { return stats_; }

  private:
    void workerLoop();

    StatGroup stats_;
    Counter &jobs_executed_;
    Counter &parallel_fors_;
    Counter &iterations_;

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable work_cv_;   //!< signals workers: job or stop
    std::condition_variable done_cv_;   //!< signals wait(): all drained
    std::deque<std::function<void()>> queue_;
    size_t in_flight_ = 0;              //!< popped but unfinished jobs
    bool stop_ = false;
};

/**
 * Run `fn(i)` for i in [begin, end) with `workers` threads.
 * `workers == 1` runs serially inline (the reference path tests compare
 * against); `workers == 0` uses the global pool.
 */
void parallelFor(size_t begin, size_t end, size_t workers,
                 const std::function<void(size_t)> &fn);

} // namespace enmc

#endif // ENMC_COMMON_THREAD_POOL_H
