/**
 * @file
 * Logging and error-reporting utilities.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user/configuration errors, warn()/inform()
 * for non-fatal status messages.
 */

#ifndef ENMC_COMMON_LOGGING_H
#define ENMC_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace enmc {

/** Verbosity levels for status messages. */
enum class LogLevel {
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/**
 * Global logging controls. A single process-wide instance keeps the
 * interface trivial for simulator components.
 */
class Logger
{
  public:
    /** Access the process-wide logger. */
    static Logger &instance();

    /** Set the verbosity threshold below which messages are dropped. */
    void setLevel(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    /** Emit a message at the given level to stderr. */
    void emit(LogLevel level, std::string_view tag, const std::string &msg);

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::Warn;
};

namespace detail {

/** Concatenate a parameter pack into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

} // namespace detail

/**
 * Abort the process because an internal invariant was violated. Use for
 * conditions that indicate a bug in the simulator itself.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/**
 * Exit the process because of a user-caused error (bad configuration,
 * invalid arguments). Not a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning: something may be wrong but simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    Logger::instance().emit(LogLevel::Warn, "warn",
                            detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    Logger::instance().emit(LogLevel::Inform, "info",
                            detail::concat(std::forward<Args>(args)...));
}

} // namespace enmc

#define ENMC_PANIC(...) ::enmc::panic(__FILE__, __LINE__, __VA_ARGS__)
#define ENMC_FATAL(...) ::enmc::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an invariant with a formatted message; active in all builds. */
#define ENMC_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::enmc::panic(__FILE__, __LINE__, "assertion failed: " #cond " ",\
                          ##__VA_ARGS__);                                    \
        }                                                                    \
    } while (0)

#endif // ENMC_COMMON_LOGGING_H
