#include "common/logging.h"

#include <cstdio>

namespace enmc {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, std::string_view tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(level_))
        return;
    std::fprintf(stderr, "[%.*s] %s\n", static_cast<int>(tag.size()),
                 tag.data(), msg.c_str());
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace detail
} // namespace enmc
