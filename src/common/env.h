/**
 * @file
 * Hardened environment-variable parsing shared by every `ENMC_*`
 * configuration surface (serve, fault, cluster).
 *
 * Contract: an *unset* variable falls back silently; a *set* variable
 * must parse completely or the process exits with a configuration
 * error. The failure mode this kills is the typo'd override that
 * silently reverts to the default — `ENMC_SERVE_MAX_BATCH=1O` must
 * abort the run, not serve at batch 16 while the operator believes
 * batch 10 is in effect.
 */

#ifndef ENMC_COMMON_ENV_H
#define ENMC_COMMON_ENV_H

#include <cstdint>

namespace enmc {

/** Raw value of `name`, or nullptr when unset (empty string is "set"). */
const char *envString(const char *name);

/**
 * Unsigned-integer override: `fallback` when unset; fatal on anything
 * that is not a complete non-negative decimal integer fitting 64 bits
 * (rejects empty values, signs — `strtoull` would silently wrap a
 * leading '-' modulo 2^64 — trailing garbage and overflow).
 */
uint64_t envU64(const char *name, uint64_t fallback);

/**
 * Floating-point override: `fallback` when unset; fatal on malformed,
 * incompletely-consumed, non-finite or out-of-range values.
 */
double envF64(const char *name, double fallback);

/** Boolean override: `fallback` when unset; must be exactly "0" or "1". */
bool envBool(const char *name, bool fallback);

} // namespace enmc

#endif // ENMC_COMMON_ENV_H
