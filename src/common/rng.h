/**
 * @file
 * Deterministic random number generation for simulation and synthetic
 * workloads.
 *
 * Wraps a xoshiro256** engine with the distributions the project needs:
 * uniform, normal, Zipfian category draws, and the {-1, 0, +1} draws used by
 * Achlioptas sparse random projections. Every consumer takes an explicit
 * Rng so experiments are reproducible from a single seed.
 */

#ifndef ENMC_COMMON_RNG_H
#define ENMC_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace enmc {

/**
 * xoshiro256** pseudo-random generator. Small, fast, and good enough for
 * workload synthesis; satisfies UniformRandomBitGenerator.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Achlioptas sparse-projection entry: +1 or -1 each with probability
     * 1/6, 0 with probability 2/3 (the s = 3 scheme from the paper's
     * reference [1]). The sqrt(3/k) scale factor is applied by the caller.
     */
    int projectionEntry();

    /** Fork an independent stream (useful for per-worker determinism). */
    Rng fork();

  private:
    uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

/**
 * Zipfian sampler over {0, ..., n-1} with exponent alpha. Uses the
 * rejection-inversion method of Hormann & Derflinger so setup is O(1) and
 * draws are O(1), which matters for the 100M-category synthetic datasets.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of categories.
     * @param alpha Skew exponent (> 0); ~1.0 matches natural-language
     *              vocabulary frequency.
     */
    ZipfSampler(uint64_t n, double alpha);

    /** Draw one category index in [0, n). */
    uint64_t operator()(Rng &rng) const;

    uint64_t n() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    uint64_t n_;
    double alpha_;
    double hx0_;
    double hxm_;
    double hx1_;
    double s_;
};

} // namespace enmc

#endif // ENMC_COMMON_RNG_H
