/**
 * @file
 * Lightweight statistics package for simulator components.
 *
 * Components register named counters/scalars/histograms with a StatGroup;
 * benches dump groups as aligned text tables. Modeled loosely on gem5's
 * stats package, reduced to what ENMC needs.
 *
 * Groups that should be visible to the process-wide observability layer
 * (JSON metrics export, `StatRegistry` enumeration) additionally hold an
 * `obs::StatRegistration` — see `src/obs/registry.h`.
 */

#ifndef ENMC_COMMON_STATS_H
#define ENMC_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace enmc {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** A scalar sample accumulator tracking sum / min / max / count. */
class ScalarStat
{
  public:
    void sample(double v);
    void reset();

    /** Fold another accumulator's samples into this one. */
    void merge(const ScalarStat &o);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A fixed-width linear histogram over [lo, hi) with under/overflow bins.
 *
 * Edge semantics (tested in tests/common/test_stats.cc):
 *  - bin i covers [binLo(i), binHi(i)); binHi(numBins()-1) == hi exactly.
 *  - a sample exactly equal to `hi` lands in the overflow bin (the range
 *    is half-open, matching the per-bin intervals);
 *  - interior samples are guarded against floating-point round-off of the
 *    `(v - lo) / width` index computation, so `binLo(i) <= v < binHi(i)`
 *    holds for the selected bin even when `v` sits exactly on a bin edge.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void sample(double v);
    void reset();

    /** Fold another histogram (identical shape required) into this one. */
    void merge(const Histogram &o);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    uint64_t total() const { return total_; }
    uint64_t bin(size_t i) const { return bins_.at(i); }
    size_t numBins() const { return bins_.size(); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    double binLo(size_t i) const;
    double binHi(size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> bins_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * A named collection of statistics owned by one simulator component.
 * Pointers handed out by the add* methods remain valid for the group's
 * lifetime (values are stored in node-stable maps).
 *
 * Stat names are unique per group and kind: registering the same name
 * twice is an assertion failure — two components silently aggregating
 * into one counter (with the second description dropped) was a bug class
 * this package used to permit.
 */
class StatGroup
{
  public:
    struct NamedCounter { Counter value; std::string desc; };
    struct NamedScalar { ScalarStat value; std::string desc; };
    struct NamedHistogram
    {
        NamedHistogram(double lo, double hi, size_t bins, std::string d)
            : value(lo, hi, bins), desc(std::move(d)) {}
        Histogram value;
        std::string desc;
    };

    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &addCounter(const std::string &name, const std::string &desc);
    ScalarStat &addScalar(const std::string &name, const std::string &desc);
    Histogram &addHistogram(const std::string &name,
                            const std::string &desc, double lo, double hi,
                            size_t bins);

    /** Look up a counter by name; panics if missing. */
    const Counter &counter(const std::string &name) const;
    const ScalarStat &scalar(const std::string &name) const;
    const Histogram &histogram(const std::string &name) const;
    bool hasCounter(const std::string &name) const;
    bool hasScalar(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    const std::string &name() const { return name_; }

    /** Stats in name order (for dumps and the metrics exporter). */
    const std::map<std::string, NamedCounter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, NamedScalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, NamedHistogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Fold another group's values into this one, stat by stat (creating
     * any stats this group lacks). Used by the StatRegistry to retire the
     * final values of short-lived component groups; unlike the add*
     * methods, same-named stats merge instead of asserting.
     */
    void mergeFrom(const StatGroup &other);

    /** Reset every stat in the group to zero. */
    void reset();

    /** Dump all stats as "<group>.<name> <value> # desc" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, NamedCounter> counters_;
    std::map<std::string, NamedScalar> scalars_;
    std::map<std::string, NamedHistogram> histograms_;
};

} // namespace enmc

#endif // ENMC_COMMON_STATS_H
