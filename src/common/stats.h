/**
 * @file
 * Lightweight statistics package for simulator components.
 *
 * Components register named counters/scalars/histograms with a StatGroup;
 * benches dump groups as aligned text tables. Modeled loosely on gem5's
 * stats package, reduced to what ENMC needs.
 */

#ifndef ENMC_COMMON_STATS_H
#define ENMC_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace enmc {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** A scalar sample accumulator tracking sum / min / max / count. */
class ScalarStat
{
  public:
    void sample(double v);
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A fixed-width linear histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void sample(double v);
    void reset();

    uint64_t total() const { return total_; }
    uint64_t bin(size_t i) const { return bins_.at(i); }
    size_t numBins() const { return bins_.size(); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    double binLo(size_t i) const;
    double binHi(size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> bins_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * A named collection of statistics owned by one simulator component.
 * Pointers handed out by the add* methods remain valid for the group's
 * lifetime (values are stored in node-stable maps).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &addCounter(const std::string &name, const std::string &desc);
    ScalarStat &addScalar(const std::string &name, const std::string &desc);

    /** Look up a counter by name; panics if missing. */
    const Counter &counter(const std::string &name) const;
    const ScalarStat &scalar(const std::string &name) const;
    bool hasCounter(const std::string &name) const;

    const std::string &name() const { return name_; }

    /** Reset every stat in the group to zero. */
    void reset();

    /** Dump all stats as "<group>.<name> <value> # desc" lines. */
    void dump(std::ostream &os) const;

  private:
    struct NamedCounter { Counter value; std::string desc; };
    struct NamedScalar { ScalarStat value; std::string desc; };

    std::string name_;
    std::map<std::string, NamedCounter> counters_;
    std::map<std::string, NamedScalar> scalars_;
};

} // namespace enmc

#endif // ENMC_COMMON_STATS_H
