#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace enmc {

const char *
envString(const char *name)
{
    return std::getenv(name);
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    const char *p = v;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '\0')
        ENMC_FATAL(name, " is set but empty (unset it to use the default)");
    if (*p == '-' || *p == '+')
        ENMC_FATAL(name, " must be a non-negative integer, got '", v, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(p, &end, 10);
    if (end == p || *end != '\0')
        ENMC_FATAL(name, " must be an unsigned integer, got '", v, "'");
    if (errno == ERANGE)
        ENMC_FATAL(name, " overflows a 64-bit unsigned integer: '", v, "'");
    return parsed;
}

double
envF64(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    const char *p = v;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '\0')
        ENMC_FATAL(name, " is set but empty (unset it to use the default)");
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(p, &end);
    if (end == p || *end != '\0')
        ENMC_FATAL(name, " must be a number, got '", v, "'");
    if (errno == ERANGE || !std::isfinite(parsed))
        ENMC_FATAL(name, " must be a finite number, got '", v, "'");
    return parsed;
}

bool
envBool(const char *name, bool fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    if (v[0] == '0' && v[1] == '\0')
        return false;
    if (v[0] == '1' && v[1] == '\0')
        return true;
    ENMC_FATAL(name, " must be 0 or 1, got '", v, "'");
}

} // namespace enmc
