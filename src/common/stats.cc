#include "common/stats.h"

#include <iomanip>

#include "common/logging.h"

namespace enmc {

void
ScalarStat::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++count_;
}

void
ScalarStat::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    ENMC_ASSERT(hi > lo && bins > 0, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        const double width = (hi_ - lo_) / bins_.size();
        size_t idx = static_cast<size_t>((v - lo_) / width);
        if (idx >= bins_.size())
            idx = bins_.size() - 1;
        ++bins_[idx];
    }
}

void
Histogram::reset()
{
    for (auto &b : bins_)
        b = 0;
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + i * (hi_ - lo_) / bins_.size();
}

double
Histogram::binHi(size_t i) const
{
    return binLo(i + 1);
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.value;
}

ScalarStat &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = scalars_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.value;
}

const Counter &
StatGroup::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        ENMC_PANIC("unknown counter ", name_, ".", name);
    return it->second.value;
}

const ScalarStat &
StatGroup::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        ENMC_PANIC("unknown scalar ", name_, ".", name);
    return it->second.value;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters_)
        c.value.reset();
    for (auto &[name, s] : scalars_)
        s.value.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_) {
        os << std::left << std::setw(40) << (name_ + "." + name)
           << std::right << std::setw(16) << c.value.value()
           << "  # " << c.desc << "\n";
    }
    for (const auto &[name, s] : scalars_) {
        os << std::left << std::setw(40) << (name_ + "." + name)
           << std::right << std::setw(16) << s.value.mean()
           << "  # mean of " << s.value.count() << " samples; " << s.desc
           << "\n";
    }
}

} // namespace enmc
