#include "common/stats.h"

#include <iomanip>

#include "common/logging.h"

namespace enmc {

void
ScalarStat::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++count_;
}

void
ScalarStat::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
ScalarStat::merge(const ScalarStat &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }
    sum_ += o.sum_;
    count_ += o.count_;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    ENMC_ASSERT(hi > lo && bins > 0, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        // Exact v == hi_ is overflow: bins are half-open [binLo, binHi).
        ++overflow_;
    } else {
        const double width = (hi_ - lo_) / bins_.size();
        size_t idx = static_cast<size_t>((v - lo_) / width);
        if (idx >= bins_.size())
            idx = bins_.size() - 1;
        // The division can land one bin off when v sits on (or within one
        // ulp of) a bin edge; nudge so binLo(idx) <= v < binHi(idx) holds
        // against the exact same edge arithmetic binLo/binHi report.
        if (v < binLo(idx) && idx > 0)
            --idx;
        else if (v >= binHi(idx) && idx + 1 < bins_.size())
            ++idx;
        ++bins_[idx];
    }
}

void
Histogram::reset()
{
    for (auto &b : bins_)
        b = 0;
    underflow_ = overflow_ = total_ = 0;
}

void
Histogram::merge(const Histogram &o)
{
    ENMC_ASSERT(o.lo_ == lo_ && o.hi_ == hi_ &&
                    o.bins_.size() == bins_.size(),
                "merging histograms of different shape");
    for (size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += o.bins_[i];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    total_ += o.total_;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + i * (hi_ - lo_) / bins_.size();
}

double
Histogram::binHi(size_t i) const
{
    // The top edge is exactly hi (not lo + n*width, which can differ by
    // one ulp) so callers can rely on binHi(numBins()-1) == hi.
    return i + 1 == bins_.size() ? hi_ : binLo(i + 1);
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = counters_.try_emplace(name);
    ENMC_ASSERT(inserted, "duplicate counter registration ", name_, ".",
                name);
    it->second.desc = desc;
    return it->second.value;
}

ScalarStat &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = scalars_.try_emplace(name);
    ENMC_ASSERT(inserted, "duplicate scalar registration ", name_, ".",
                name);
    it->second.desc = desc;
    return it->second.value;
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double lo, double hi, size_t bins)
{
    auto [it, inserted] =
        histograms_.try_emplace(name, lo, hi, bins, desc);
    ENMC_ASSERT(inserted, "duplicate histogram registration ", name_, ".",
                name);
    return it->second.value;
}

const Counter &
StatGroup::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        ENMC_PANIC("unknown counter ", name_, ".", name);
    return it->second.value;
}

const ScalarStat &
StatGroup::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        ENMC_PANIC("unknown scalar ", name_, ".", name);
    return it->second.value;
}

const Histogram &
StatGroup::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        ENMC_PANIC("unknown histogram ", name_, ".", name);
    return it->second.value;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) > 0;
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return scalars_.count(name) > 0;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) > 0;
}

void
StatGroup::mergeFrom(const StatGroup &other)
{
    for (const auto &[name, c] : other.counters_) {
        auto [it, inserted] = counters_.try_emplace(name);
        if (inserted)
            it->second.desc = c.desc;
        it->second.value += c.value.value();
    }
    for (const auto &[name, s] : other.scalars_) {
        auto [it, inserted] = scalars_.try_emplace(name);
        if (inserted)
            it->second.desc = s.desc;
        it->second.value.merge(s.value);
    }
    for (const auto &[name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_
                     .emplace(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple(
                                  h.value.lo(), h.value.hi(),
                                  h.value.numBins(), h.desc))
                     .first;
        }
        it->second.value.merge(h.value);
    }
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters_)
        c.value.reset();
    for (auto &[name, s] : scalars_)
        s.value.reset();
    for (auto &[name, h] : histograms_)
        h.value.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_) {
        os << std::left << std::setw(40) << (name_ + "." + name)
           << std::right << std::setw(16) << c.value.value()
           << "  # " << c.desc << "\n";
    }
    for (const auto &[name, s] : scalars_) {
        os << std::left << std::setw(40) << (name_ + "." + name)
           << std::right << std::setw(16) << s.value.mean()
           << "  # mean of " << s.value.count() << " samples; " << s.desc
           << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        os << std::left << std::setw(40) << (name_ + "." + name)
           << std::right << std::setw(16) << h.value.total()
           << "  # histogram [" << h.value.lo() << ", " << h.value.hi()
           << ") x" << h.value.numBins() << "; " << h.desc << "\n";
        for (size_t i = 0; i < h.value.numBins(); ++i) {
            if (h.value.bin(i) == 0)
                continue;
            os << std::left << std::setw(40)
               << (name_ + "." + name + "[" + std::to_string(i) + "]")
               << std::right << std::setw(16) << h.value.bin(i) << "  # ["
               << h.value.binLo(i) << ", " << h.value.binHi(i) << ")\n";
        }
    }
}

} // namespace enmc
