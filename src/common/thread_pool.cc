#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace enmc {

ThreadPool::ThreadPool(size_t workers)
    : stats_("common.threadPool"),
      jobs_executed_(stats_.addCounter("jobsExecuted",
                                       "jobs run by worker threads")),
      parallel_fors_(stats_.addCounter("parallelFors",
                                       "parallelFor loops dispatched")),
      iterations_(stats_.addCounter("iterations",
                                    "parallelFor iterations executed"))
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [this] { return queue_.empty() && in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            ++jobs_executed_;
        }
        done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    if (begin >= end)
        return;
    const size_t n = end - begin;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++parallel_fors_;
        iterations_ += n;
    }
    if (workers() <= 1 || n == 1) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    // Shared control block: helpers claim iterations from an atomic
    // counter. The calling thread participates too, so the loop finishes
    // even when every worker is busy (e.g. nested parallelFor on the
    // global pool) — queued helpers that wake up late find the counter
    // exhausted and return without touching the (value-captured) block.
    struct Control
    {
        std::atomic<size_t> next;
        std::atomic<size_t> done;
        std::atomic<bool> failed{false};
        size_t end;
        std::function<void(size_t)> fn;
        std::mutex m;
        std::condition_variable cv;
        std::exception_ptr error; //!< first exception thrown by fn
    };
    auto ctl = std::make_shared<Control>();
    ctl->next = begin;
    ctl->done = begin;
    ctl->end = end;
    ctl->fn = fn;

    // Iterations claimed after a failure still tick the completion
    // counter (so the wait below terminates) but skip their bodies; the
    // first exception is rethrown on the calling thread once the loop has
    // drained.
    auto drain = [](const std::shared_ptr<Control> &c) {
        for (;;) {
            const size_t i = c->next.fetch_add(1);
            if (i >= c->end)
                break;
            if (!c->failed.load(std::memory_order_relaxed)) {
                try {
                    c->fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(c->m);
                    if (!c->error)
                        c->error = std::current_exception();
                    c->failed.store(true, std::memory_order_relaxed);
                }
            }
            if (c->done.fetch_add(1) + 1 == c->end) {
                std::lock_guard<std::mutex> lock(c->m);
                c->cv.notify_all();
            }
        }
    };

    const size_t helpers = std::min(workers(), n - 1);
    for (size_t w = 0; w < helpers; ++w)
        submit([ctl, drain] { drain(ctl); });
    drain(ctl);

    std::unique_lock<std::mutex> lock(ctl->m);
    ctl->cv.wait(lock, [&] { return ctl->done.load() == ctl->end; });
    if (ctl->error)
        std::rethrow_exception(ctl->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool([] {
        const char *env = std::getenv("ENMC_THREADS");
        const long n = env ? std::atol(env) : 0;
        return n > 0 ? static_cast<size_t>(n) : 0;
    }());
    return pool;
}

void
parallelFor(size_t begin, size_t end, size_t workers,
            const std::function<void(size_t)> &fn)
{
    if (workers == 1 || end - begin <= 1) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    if (workers == 0) {
        ThreadPool::global().parallelFor(begin, end, fn);
        return;
    }
    ThreadPool pool(workers);
    pool.parallelFor(begin, end, fn);
}

} // namespace enmc
