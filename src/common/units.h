/**
 * @file
 * Unit helpers: sizes, frequencies, cycle/time conversions.
 */

#ifndef ENMC_COMMON_UNITS_H
#define ENMC_COMMON_UNITS_H

#include <cstdint>

namespace enmc {

/** Simulation tick / cycle count. */
using Cycles = uint64_t;

/** Byte address inside a memory channel. */
using Addr = uint64_t;

constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

/** Convert cycles at a clock frequency (Hz) to seconds. */
constexpr double
cyclesToSeconds(Cycles cycles, double freq_hz)
{
    return static_cast<double>(cycles) / freq_hz;
}

/** Convert seconds to (rounded-up) cycles at a clock frequency (Hz). */
constexpr Cycles
secondsToCycles(double seconds, double freq_hz)
{
    const double c = seconds * freq_hz;
    const Cycles whole = static_cast<Cycles>(c);
    return (static_cast<double>(whole) < c) ? whole + 1 : whole;
}

/**
 * Cross a cycle count from one clock domain to another, rounding up
 * (a transfer that finishes mid-cycle in the destination domain is visible
 * only at the next destination edge).
 */
constexpr Cycles
crossDomain(Cycles cycles, double from_hz, double to_hz)
{
    return secondsToCycles(cyclesToSeconds(cycles, from_hz), to_hz);
}

/** Integer ceiling division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round n up to the next multiple of align. */
constexpr uint64_t
roundUp(uint64_t n, uint64_t align)
{
    return ceilDiv(n, align) * align;
}

/** True iff n is a power of two (n > 0). */
constexpr bool
isPowerOf2(uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(uint64_t n)
{
    unsigned r = 0;
    while (n > 1) {
        n >>= 1;
        ++r;
    }
    return r;
}

} // namespace enmc

#endif // ENMC_COMMON_UNITS_H
