#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace enmc {

namespace {

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    ENMC_ASSERT(lo <= hi, "bad uniformInt range");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>((*this)());
    // Modulo bias is < 2^-40 for all spans used here; acceptable.
    return lo + static_cast<int64_t>((*this)() % span);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

int
Rng::projectionEntry()
{
    const uint64_t draw = (*this)() % 6;
    if (draw == 0)
        return 1;
    if (draw == 1)
        return -1;
    return 0;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

ZipfSampler::ZipfSampler(uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    ENMC_ASSERT(n >= 1, "ZipfSampler needs n >= 1");
    ENMC_ASSERT(alpha > 0.0 && alpha != 1.0,
                "alpha must be > 0 and != 1 (use 1.0001 for ~1)");
    hx0_ = h(0.5) - 1.0;
    hxm_ = h(static_cast<double>(n_) + 0.5);
    hx1_ = h(1.5) - 1.0;
    s_ = 1.0 - hInv(h(1.5) - std::pow(2.0, -alpha_));
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-alpha.
    return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double
ZipfSampler::hInv(double x) const
{
    return std::pow((1.0 - alpha_) * x, 1.0 / (1.0 - alpha_));
}

uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    while (true) {
        const double u = hxm_ + rng.uniform() * (hx0_ - hxm_);
        const double x = hInv(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= h(kd + 0.5) - std::pow(kd, -alpha_))
            return k - 1;
    }
}

} // namespace enmc
