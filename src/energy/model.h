/**
 * @file
 * Energy, area and power models.
 *
 * Logic numbers are the paper's own synthesis results (Table 5 for ENMC's
 * blocks at TSMC 28nm / 400 MHz; Table 4 for the area/power-matched NMP
 * baselines). DRAM energy uses per-command energies derived from Micron
 * DDR4 8Gb x8 datasheet currents (IDD0/IDD4R/IDD4W/IDD5B at 1.2 V),
 * scaled to a x8-device rank — the standard DRAMPower-style accounting
 * the paper's Fig. 14 breakdown (static / access / logic) needs.
 */

#ifndef ENMC_ENERGY_MODEL_H
#define ENMC_ENERGY_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace enmc::energy {

/** One synthesized logic block (a Table 4/5 row). */
struct LogicBlock
{
    std::string name;
    double area_mm2 = 0.0;
    double power_mw = 0.0;
};

/** ENMC per-rank logic breakdown (paper Table 5). */
std::vector<LogicBlock> enmcLogicBlocks();

/** Total ENMC logic area (mm^2) / power (mW) per rank. */
double enmcLogicArea();
double enmcLogicPower();

/** Table 4: each NMP design's per-rank logic at the matched budget. */
LogicBlock ndaLogic();
LogicBlock chameleonLogic();
LogicBlock tensorDimmLogic();
LogicBlock enmcLogic();
/** TensorDIMM-Large: 4x compute/buffer scale-up of TensorDIMM. */
LogicBlock tensorDimmLargeLogic();

/** Per-command DRAM energies (one x8-device rank). */
struct DramEnergyParams
{
    double act_pre_nj = 1.8;     //!< one ACT+PRE pair (IDD0 window)
    double read_burst_nj = 3.5;  //!< one BL8 read incl. I/O (IDD4R)
    double write_burst_nj = 3.8; //!< one BL8 write (IDD4W)
    double refresh_nj = 45.0;    //!< one all-bank REF (IDD5B over tRFC)
    double static_w_per_rank = 0.15; //!< active-standby background power
};

/** DRAM command activity of a run (one rank unless stated otherwise). */
struct DramActivity
{
    uint64_t reads = 0;      //!< RD bursts
    uint64_t writes = 0;     //!< WR bursts
    uint64_t activates = 0;  //!< ACT commands
    uint64_t refreshes = 0;  //!< REF commands
    double seconds = 0.0;    //!< wall-clock duration
};

/** Fig. 14's three energy components, in joules. */
struct EnergyBreakdown
{
    double dram_static_j = 0.0;
    double dram_access_j = 0.0;
    double logic_j = 0.0;

    double total() const
    {
        return dram_static_j + dram_access_j + logic_j;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o)
    {
        dram_static_j += o.dram_static_j;
        dram_access_j += o.dram_access_j;
        logic_j += o.logic_j;
        return *this;
    }
};

/**
 * Energy of one rank's run.
 * @param activity DRAM command counts + duration for the rank.
 * @param logic_power_mw Per-rank NMP/ENMC logic power.
 */
EnergyBreakdown rankEnergy(const DramActivity &activity,
                           double logic_power_mw,
                           const DramEnergyParams &params = {});

/** Scale a per-rank breakdown to the whole system (symmetric ranks). */
EnergyBreakdown scaleEnergy(const EnergyBreakdown &per_rank, uint64_t ranks);

} // namespace enmc::energy

#endif // ENMC_ENERGY_MODEL_H
