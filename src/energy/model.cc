#include "energy/model.h"

namespace enmc::energy {

std::vector<LogicBlock>
enmcLogicBlocks()
{
    // Paper Table 5, verbatim.
    return {
        {"INT4 MAC", 0.013, 10.4},
        {"FP32 MAC", 0.145, 58.0},
        {"Compute Buffer", 0.061, 56.8},
        {"Control Buffer", 0.053, 49.3},
        {"ENMC Ctrl", 0.035, 32.9},
        {"DRAM Ctrl", 0.135, 78.0},
    };
}

double
enmcLogicArea()
{
    double a = 0.0;
    for (const auto &b : enmcLogicBlocks())
        a += b.area_mm2;
    return a;
}

double
enmcLogicPower()
{
    double p = 0.0;
    for (const auto &b : enmcLogicBlocks())
        p += b.power_mw;
    return p;
}

LogicBlock
ndaLogic()
{
    return {"NDA (4*4 FUs + 1KB)", 0.445, 293.6};
}

LogicBlock
chameleonLogic()
{
    return {"Chameleon (4*4 systolic + 1KB)", 0.398, 249.0};
}

LogicBlock
tensorDimmLogic()
{
    return {"TensorDIMM (16-lane VPU + 512B*3)", 0.457, 303.5};
}

LogicBlock
enmcLogic()
{
    return {"ENMC (FP32*16 + INT4*128 + 256B*4)", enmcLogicArea(),
            enmcLogicPower()};
}

LogicBlock
tensorDimmLargeLogic()
{
    // 4x the VPU lanes and buffering: compute/buffer power scales ~4x,
    // control overhead does not.
    return {"TensorDIMM-Large (64-lane VPU + 2KB*3)", 1.42, 980.0};
}

EnergyBreakdown
rankEnergy(const DramActivity &activity, double logic_power_mw,
           const DramEnergyParams &params)
{
    EnergyBreakdown e;
    e.dram_static_j = params.static_w_per_rank * activity.seconds;
    e.dram_access_j =
        (activity.activates * params.act_pre_nj +
         activity.reads * params.read_burst_nj +
         activity.writes * params.write_burst_nj +
         activity.refreshes * params.refresh_nj) * 1e-9;
    e.logic_j = logic_power_mw * 1e-3 * activity.seconds;
    return e;
}

EnergyBreakdown
scaleEnergy(const EnergyBreakdown &per_rank, uint64_t ranks)
{
    EnergyBreakdown e = per_rank;
    e.dram_static_j *= ranks;
    e.dram_access_j *= ranks;
    e.logic_j *= ranks;
    return e;
}

} // namespace enmc::energy
