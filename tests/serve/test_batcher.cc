/**
 * @file
 * Tests for the dynamic-batching flush policy: a pure function of
 * (queued, oldest arrival, now, draining), so every trigger is testable
 * without threads or clocks.
 */

#include <gtest/gtest.h>

#include "serve/batcher.h"

namespace enmc::serve {
namespace {

TEST(DynamicBatcher, EmptyQueueNeverFlushes)
{
    DynamicBatcher b(8, 100.0);
    FlushReason reason;
    EXPECT_FALSE(b.shouldFlush(0, 0.0, 1e9, false, reason));
    EXPECT_FALSE(b.shouldFlush(0, 0.0, 1e9, true, reason));
}

TEST(DynamicBatcher, FullBatchFlushesImmediately)
{
    DynamicBatcher b(8, 100.0);
    FlushReason reason;
    ASSERT_TRUE(b.shouldFlush(8, 0.0, 0.0, false, reason));
    EXPECT_EQ(reason, FlushReason::Size);
    ASSERT_TRUE(b.shouldFlush(9, 0.0, 0.0, false, reason));
    EXPECT_EQ(reason, FlushReason::Size);
}

TEST(DynamicBatcher, UnderfullBatchWaitsUntilDeadline)
{
    DynamicBatcher b(8, 100.0);
    FlushReason reason;
    // Oldest admitted at t=50: no flush before t=150...
    EXPECT_FALSE(b.shouldFlush(3, 50.0, 149.9, false, reason));
    // ...flush exactly at and after the deadline.
    ASSERT_TRUE(b.shouldFlush(3, 50.0, 150.0, false, reason));
    EXPECT_EQ(reason, FlushReason::Deadline);
    ASSERT_TRUE(b.shouldFlush(3, 50.0, 1e6, false, reason));
    EXPECT_EQ(reason, FlushReason::Deadline);
    EXPECT_DOUBLE_EQ(b.deadlineUs(50.0), 150.0);
}

TEST(DynamicBatcher, DrainFlushesWithoutWaiting)
{
    DynamicBatcher b(8, 100.0);
    FlushReason reason;
    ASSERT_TRUE(b.shouldFlush(1, 0.0, 0.0, true, reason));
    EXPECT_EQ(reason, FlushReason::Drain);
}

TEST(DynamicBatcher, SizeTakesPriorityOverDrainAndDeadline)
{
    DynamicBatcher b(4, 100.0);
    FlushReason reason;
    ASSERT_TRUE(b.shouldFlush(4, 0.0, 500.0, true, reason));
    EXPECT_EQ(reason, FlushReason::Size);
}

TEST(DynamicBatcher, ZeroDelayDegeneratesToImmediateFlush)
{
    // max_delay_us = 0 is the "no batching delay" configuration: any
    // queued request is already past its deadline.
    DynamicBatcher b(8, 0.0);
    FlushReason reason;
    ASSERT_TRUE(b.shouldFlush(1, 25.0, 25.0, false, reason));
    EXPECT_EQ(reason, FlushReason::Deadline);
}

TEST(DynamicBatcher, RecordFlushFeedsCountersAndHistogram)
{
    DynamicBatcher b(8, 100.0);
    b.recordFlush(8, FlushReason::Size);
    b.recordFlush(3, FlushReason::Deadline);
    b.recordFlush(1, FlushReason::Drain);
    b.recordFlush(8, FlushReason::Size);
    EXPECT_EQ(b.stats().counter("batches").value(), 4u);
    EXPECT_EQ(b.stats().counter("flushSize").value(), 2u);
    EXPECT_EQ(b.stats().counter("flushDeadline").value(), 1u);
    EXPECT_EQ(b.stats().counter("flushDrain").value(), 1u);
    // Every dispatched batch lands in the size histogram.
    EXPECT_EQ(b.stats().histogram("batchSize").total(), 4u);
}

} // namespace
} // namespace enmc::serve
