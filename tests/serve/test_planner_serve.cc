/**
 * @file
 * Soak/stress tests of the adaptive offload planner behind the serving
 * loop (`--backend=auto`).
 *
 * The scenario mirrors bench/cluster_serving's shape: a drifting Poisson
 * arrival mix (rate and candidate budget both shift mid-run, moving
 * traffic into a fresh planner bin) with a scripted mid-run fault burst
 * that blacklists the steady-state winner. The contracts:
 *  - the planner never routes a batch to the blacklisted/dead backend
 *    during the burst window;
 *  - zero wrong answers end-to-end — every admitted response is
 *    memcmp-equal to the single-query reference forward, exactly like
 *    the cluster kill test;
 *  - the burst forces at least one steady-state switch (the
 *    check_metrics `--expect-switch` invariant);
 *  - the live threaded pipeline serves the same correctness under real
 *    concurrency.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "runtime/api.h"
#include "runtime/planner.h"
#include "serve/loop.h"
#include "workloads/synthetic.h"

namespace enmc::serve {
namespace {

class PlannerSoakTest : public ::testing::Test
{
  protected:
    PlannerSoakTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          queries_(model_.sampleHiddenBatch(rng_, 48))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    std::unique_ptr<runtime::EnmcClassifier>
    makeClassifier(uint64_t threads)
    {
        runtime::ClassifierOptions opt;
        opt.candidates = 48;
        runtime::SystemConfig sys;
        sys.sim_threads = threads;
        auto clf = std::make_unique<runtime::EnmcClassifier>(
            model_.classifier(), opt, sys);
        clf->calibrate(train_, val_);
        return clf;
    }

    static runtime::JobSpec
    job()
    {
        runtime::JobSpec spec;
        spec.categories = 32768;
        spec.hidden = 128;
        spec.reduced = 32;
        spec.candidates = 512;
        return spec;
    }

    static std::vector<std::string>
    candidates()
    {
        return {"cpu", "enmc", "tensordimm"};
    }

    /** The backend an offline profile would pick for this job — the
     *  planner's steady-state winner, and the kill victim that forces a
     *  mid-run switch deterministically. */
    static std::string
    offlineWinner(uint64_t batch, uint64_t cands)
    {
        runtime::JobSpec spec = job();
        spec.batch = batch;
        spec.candidates = cands;
        double best = -1.0;
        std::string winner;
        for (const auto &name : candidates()) {
            const double s =
                runtime::createBackend(name)->runJob(spec).seconds;
            if (best < 0.0 || s < best) {
                best = s;
                winner = name;
            }
        }
        return winner;
    }

    ServeConfig
    autoConfig() const
    {
        ServeConfig cfg;
        cfg.backend = "auto";
        cfg.queue_capacity = 64;
        cfg.max_batch = 8;
        cfg.max_delay_us = 50.0;
        cfg.warmup_requests = 0;
        cfg.topk = 5;
        cfg.planner.candidates = candidates();
        cfg.planner.explore_every = 8;
        return cfg;
    }

    /**
     * Drifting Poisson mix over the query set: two saturating Poisson
     * bursts. Phase A is a burst of small-candidate-budget queries;
     * phase B, well after phase A drains, doubles the arrival rate and
     * moves the candidate budget two power-of-two buckets up — a genuine
     * traffic shift into a fresh planner bin. Arrivals far outpace
     * service inside each burst, so every batch is cut at `max_batch`
     * and each phase maps to exactly one planner bin (which is what
     * makes the burst/switch schedule below deterministic).
     */
    ArrivalTrace
    driftingTrace() const
    {
        ArrivalTrace t;
        Rng arr(1234);
        double now = 0.0;
        for (size_t i = 0; i < queries_.size(); ++i) {
            const bool phase_b = i >= queries_.size() / 2;
            if (i == queries_.size() / 2)
                now = 5000.0; // let phase A drain completely first
            const double mean_gap = phase_b ? 1.0 : 2.0;
            now += -mean_gap *
                   std::log(1.0 - arr.uniform()); // exponential gap
            Request r;
            r.id = i;
            r.hidden = queries_[i];
            r.candidates = phase_b ? 480 : 96;
            r.arrival_us = now;
            t.requests.push_back(r);
        }
        t.normalize();
        return t;
    }

    /** Batches in dispatch order as (dispatch_us, backend) pairs. */
    static std::vector<std::pair<double, std::string>>
    batchSequence(const ServeReport &report)
    {
        std::map<double, std::string> batches;
        for (const Response &r : report.responses)
            if (r.admission == Admission::Admitted)
                batches[r.dispatch_us] = r.backend;
        return {batches.begin(), batches.end()};
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> queries_;
};

TEST_F(PlannerSoakTest, FaultBurstNeverRoutesToTheDeadBackend)
{
    // Blacklist the offline winner after 4 planned batches for a 6-batch
    // burst. With full batches of 4, each 24-query phase is 6 plans in
    // one bin: plans 0-2 warm up phase A's bin, plan 3 goes steady on
    // the winner, plan 4 hits the kill and must switch — so the burst
    // window [4, 10) spans the rest of phase A and most of phase B, and
    // every batch inside it must route elsewhere while answers stay
    // perfect throughout.
    auto clf = makeClassifier(4);
    auto reference = makeClassifier(4);

    const std::string victim = offlineWinner(4, 96);
    ServeConfig cfg = autoConfig();
    cfg.max_batch = 4;
    cfg.planner.kill_backend = victim;
    cfg.planner.kill_after = 4;
    cfg.planner.revive_after = 6;

    ServeLoop loop(cfg, job());
    loop.attachClassifier(*clf);
    const ServeReport report = loop.replay(driftingTrace());

    // Zero wrong answers end-to-end: memcmp vs single-query reference.
    ASSERT_EQ(report.responses.size(), queries_.size());
    for (const Response &resp : report.responses) {
        ASSERT_EQ(resp.admission, Admission::Admitted);
        const auto ref = reference->forward({queries_[resp.id]}, 5);
        ASSERT_EQ(resp.probabilities.size(), ref[0].probabilities.size());
        ASSERT_EQ(std::memcmp(resp.probabilities.data(),
                              ref[0].probabilities.data(),
                              ref[0].probabilities.size() * sizeof(float)),
                  0)
            << "planner-era logits differ from reference, request "
            << resp.id;
        ASSERT_EQ(resp.topk, ref[0].topk);
        ASSERT_FALSE(resp.backend.empty());
    }

    // One plan per dispatched batch, in dispatch order: batches inside
    // the burst window never carry the victim's name.
    const auto batches = batchSequence(report);
    ASSERT_GT(batches.size(), cfg.planner.kill_after +
                                  cfg.planner.revive_after);
    for (size_t b = cfg.planner.kill_after;
         b < cfg.planner.kill_after + cfg.planner.revive_after; ++b)
        EXPECT_NE(batches[b].second, victim) << "batch " << b;

    runtime::OffloadPlanner *planner = loop.planner();
    ASSERT_NE(planner, nullptr);
    EXPECT_EQ(planner->planCount(), batches.size());
    EXPECT_EQ(planner->stats().counter("plans").value(), batches.size());
    EXPECT_EQ(planner->stats().counter("deadDispatches").value(), 0u);
    EXPECT_EQ(planner->stats().counter("killEvents").value(), 1u);
    EXPECT_EQ(planner->stats().counter("reviveEvents").value(), 1u);
    EXPECT_GE(planner->stats().counter("switchEvents").value(), 1u);
    // The candidate-budget drift moved traffic into a second bin.
    EXPECT_GE(planner->stats().counter("bins").value(), 2u);
    // Plan-kind accounting closes.
    EXPECT_EQ(planner->stats().counter("plans").value(),
              planner->stats().counter("warmupPlans").value() +
                  planner->stats().counter("explorePlans").value() +
                  planner->stats().counter("steadyPlans").value());
}

TEST_F(PlannerSoakTest, FaultBurstReplayIsReproducible)
{
    // The killed run is still a pure function of (trace, config, seed):
    // two replays agree on every decision, timestamp and bit.
    auto clf = makeClassifier(4);
    const std::string victim = offlineWinner(4, 96);
    ServeConfig cfg = autoConfig();
    cfg.max_batch = 4;
    cfg.planner.kill_backend = victim;
    cfg.planner.kill_after = 4;
    cfg.planner.revive_after = 6;
    const ArrivalTrace arrivals = driftingTrace();

    ServeLoop loop_a(cfg, job());
    ServeLoop loop_b(cfg, job());
    loop_a.attachClassifier(*clf);
    loop_b.attachClassifier(*clf);
    const ServeReport a = loop_a.replay(arrivals);
    const ServeReport b = loop_b.replay(arrivals);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (size_t i = 0; i < a.responses.size(); ++i) {
        ASSERT_EQ(a.responses[i].backend, b.responses[i].backend)
            << "request " << a.responses[i].id;
        ASSERT_DOUBLE_EQ(a.responses[i].dispatch_us,
                         b.responses[i].dispatch_us);
        ASSERT_DOUBLE_EQ(a.responses[i].complete_us,
                         b.responses[i].complete_us);
        ASSERT_EQ(a.responses[i].probabilities.size(),
                  b.responses[i].probabilities.size());
        if (!a.responses[i].probabilities.empty()) {
            ASSERT_EQ(
                std::memcmp(a.responses[i].probabilities.data(),
                            b.responses[i].probabilities.data(),
                            a.responses[i].probabilities.size() *
                                sizeof(float)),
                0);
        }
    }
}

TEST_F(PlannerSoakTest, LivePipelineServesCorrectAnswersUnderThePlanner)
{
    // The live dispatcher/executor pipeline routes through the same
    // planner; hammer it with the full query set and check every answer
    // against the single-query reference.
    auto clf = makeClassifier(4);
    auto reference = makeClassifier(4);
    ServeLoop loop(autoConfig(), job());
    loop.attachClassifier(*clf);
    loop.start();

    std::vector<std::future<Response>> futures;
    for (size_t i = 0; i < queries_.size(); ++i) {
        Request r;
        r.id = i;
        r.hidden = queries_[i];
        futures.push_back(loop.submitOrdered(std::move(r)));
    }
    std::vector<Response> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    const ServeReport report = loop.stop();
    ASSERT_EQ(report.responses.size(), queries_.size());

    for (size_t i = 0; i < queries_.size(); ++i) {
        ASSERT_EQ(responses[i].admission, Admission::Admitted);
        ASSERT_FALSE(responses[i].backend.empty());
        const auto ref = reference->forward({queries_[i]}, 5);
        ASSERT_EQ(std::memcmp(responses[i].probabilities.data(),
                              ref[0].probabilities.data(),
                              ref[0].probabilities.size() * sizeof(float)),
                  0)
            << "live planner logits differ from reference, request " << i;
        ASSERT_EQ(responses[i].topk, ref[0].topk);
    }

    runtime::OffloadPlanner *planner = loop.planner();
    ASSERT_NE(planner, nullptr);
    EXPECT_GT(planner->planCount(), 0u);
    EXPECT_EQ(planner->stats().counter("deadDispatches").value(), 0u);
}

} // namespace
} // namespace enmc::serve
