/**
 * @file
 * Tests for the virtual-time serve loop: batching behaviour, admission
 * control under overload, warm-up separation (the lm_inference_server
 * cold-start bug regression), SLO accounting, and closed-loop serving.
 *
 * All tests here run timing-only (no classifier attached): the
 * discrete-event simulation makes every latency a pure function of the
 * arrival trace and the configuration, so exact assertions hold.
 */

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "serve/loop.h"

namespace enmc::serve {
namespace {

runtime::JobSpec
smallJob()
{
    runtime::JobSpec job;
    job.categories = 32768;
    job.hidden = 128;
    job.reduced = 32;
    job.candidates = 512;
    return job;
}

ServeConfig
baseConfig()
{
    ServeConfig cfg;
    cfg.backend = "enmc";
    cfg.queue_capacity = 64;
    cfg.max_batch = 8;
    cfg.max_delay_us = 200.0;
    cfg.warmup_requests = 0;
    cfg.compute_logits = false;
    return cfg;
}

ArrivalTrace
burstTrace(size_t n, double at_us = 0.0)
{
    ArrivalTrace trace;
    for (size_t i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.arrival_us = at_us;
        trace.requests.push_back(r);
    }
    return trace;
}

TEST(ServeLoop, BurstBatchesBySizeTrigger)
{
    ServeLoop loop(baseConfig(), smallJob());
    const ServeReport report = loop.replay(burstTrace(32));

    ASSERT_EQ(report.responses.size(), 32u);
    EXPECT_EQ(report.admittedCount(), 32u);
    for (const Response &r : report.responses) {
        EXPECT_EQ(r.batch_size, 8u);
        EXPECT_GT(r.backendUs(), 0.0);
        EXPECT_GE(r.complete_us, r.dispatch_us);
        EXPECT_GE(r.dispatch_us, r.admit_us);
    }
    EXPECT_EQ(loop.batcher().stats().counter("batches").value(), 4u);
    EXPECT_EQ(loop.batcher().stats().counter("flushSize").value(), 4u);
    EXPECT_EQ(loop.queue().stats().counter("admitted").value(), 32u);
    EXPECT_EQ(loop.queue().stats().counter("popped").value(), 32u);
}

TEST(ServeLoop, LonelyRequestFlushedAtDeadline)
{
    ServeConfig cfg = baseConfig();
    ServeLoop loop(cfg, smallJob());

    // Request 0 waits for co-travellers that only arrive after its
    // deadline; request 1 arrives into an idle, draining loop.
    ArrivalTrace trace;
    Request r0;
    r0.id = 0;
    r0.arrival_us = 0.0;
    Request r1;
    r1.id = 1;
    r1.arrival_us = 5000.0;
    trace.requests = {r0, r1};

    const ServeReport report = loop.replay(trace);
    ASSERT_EQ(report.responses.size(), 2u);
    // The deadline bounds the batching wait exactly in virtual time.
    EXPECT_DOUBLE_EQ(report.responses[0].queueUs(), cfg.max_delay_us);
    EXPECT_EQ(report.responses[0].batch_size, 1u);
    EXPECT_GE(loop.batcher().stats().counter("flushDeadline").value(), 1u);
    EXPECT_GE(loop.batcher().stats().counter("flushDrain").value(), 1u);
}

TEST(ServeLoop, OverloadRejectsWithQueueFullReason)
{
    ServeConfig cfg = baseConfig();
    cfg.queue_capacity = 8;
    ServeLoop loop(cfg, smallJob());

    const ServeReport report = loop.replay(burstTrace(20));
    ASSERT_EQ(report.responses.size(), 20u);
    EXPECT_EQ(report.admittedCount(), 8u);
    EXPECT_EQ(report.rejectedCount(), 12u);
    EXPECT_EQ(report.rejectedCount(Admission::RejectedQueueFull), 12u);
    EXPECT_EQ(loop.queue().stats().counter("rejectedFull").value(), 12u);
    // Rejected requests still carry their identity for the caller.
    size_t rejected_with_id = 0;
    for (const Response &r : report.responses)
        if (r.admission == Admission::RejectedQueueFull)
            rejected_with_id += (r.id >= 8);
    EXPECT_EQ(rejected_with_id, 12u);
}

TEST(ServeLoop, WarmupRequestsFlaggedAndExcludedFromMeasurement)
{
    ServeConfig cfg = baseConfig();
    cfg.warmup_requests = 4;
    ServeLoop loop(cfg, smallJob());

    const ServeReport report = loop.replay(burstTrace(12));
    EXPECT_EQ(report.warmupCount(), 4u);
    EXPECT_EQ(report.measuredCount(), 8u);
    EXPECT_EQ(report.measuredLatencies().size(), 8u);
    // Warm-up is assigned in dispatch order: the first four requests.
    for (size_t i = 0; i < 12; ++i)
        EXPECT_EQ(report.responses[i].warmup, i < 4) << i;
    EXPECT_EQ(loop.stats().counter("warmupRequests").value(), 4u);
    EXPECT_EQ(loop.stats().counter("measuredRequests").value(), 8u);
}

TEST(ServeReport, WarmupLatenciesNeverReachPercentiles)
{
    // Regression for the old lm_inference_server loop, which timed the
    // cold first request together with steady-state ones: a pathological
    // warm-up latency must not move any percentile.
    ServeReport report;
    for (size_t i = 0; i < 10; ++i) {
        Response r;
        r.id = i;
        r.warmup = i < 2;
        r.admit_us = 0.0;
        r.dispatch_us = 0.0;
        r.complete_us = r.warmup ? 1e6 : 100.0 + static_cast<double>(i);
        report.responses.push_back(r);
    }
    const obs::Percentiles p = report.measuredLatency();
    EXPECT_LT(p.max(), 200.0);
    EXPECT_LT(p.at(0.99), 200.0);
    ASSERT_EQ(report.warmupLatencies().size(), 2u);
    EXPECT_DOUBLE_EQ(report.warmupLatencies()[0], 1e6);
    // Throughput is measured over the steady-state window only.
    EXPECT_GT(report.queriesPerSecond(), 0.0);
}

TEST(ServeLoop, SloViolationsAccountedPerTenant)
{
    ServeConfig cfg = baseConfig();
    cfg.slo_us = 1e-3; // everything violates
    ServeLoop loop(cfg, smallJob());

    ArrivalTrace trace = burstTrace(8);
    for (size_t i = 0; i < trace.requests.size(); ++i)
        trace.requests[i].tenant = (i % 2 == 0) ? "alpha" : "beta";
    const ServeReport report = loop.replay(trace);

    EXPECT_EQ(report.admittedCount(), 8u);
    EXPECT_EQ(loop.stats().counter("sloViolations").value(), 8u);
    const auto groups = obs::StatRegistry::instance().snapshot();
    ASSERT_TRUE(groups.count("serve.tenant.alpha"));
    ASSERT_TRUE(groups.count("serve.tenant.beta"));
    EXPECT_EQ(groups.at("serve.tenant.alpha").counter("admitted").value(),
              4u);
    EXPECT_EQ(
        groups.at("serve.tenant.alpha").counter("sloViolations").value(),
        4u);
}

TEST(ServeLoop, QueueAndBackendTimesDecomposeLatency)
{
    ServeLoop loop(baseConfig(), smallJob());
    const ServeReport report = loop.replay(burstTrace(16));
    for (const Response &r : report.responses)
        EXPECT_DOUBLE_EQ(r.queueUs() + r.backendUs(), r.latencyUs());
    const StatGroup &stats = loop.stats();
    EXPECT_EQ(stats.scalar("timeInQueueUs").count(), 16u);
    EXPECT_EQ(stats.scalar("timeInBackendUs").count(), 16u);
    EXPECT_EQ(stats.histogram("latencyUs").total(), 16u);
}

TEST(ServeLoop, ClosedLoopServesEveryClientRequest)
{
    ServeConfig cfg = baseConfig();
    cfg.max_batch = 4;
    ServeLoop loop(cfg, smallJob());

    const ServeReport report = loop.runClosedLoop(
        4, 5, [](RequestId, size_t) { return Request{}; });
    ASSERT_EQ(report.responses.size(), 20u);
    EXPECT_EQ(report.admittedCount(), 20u);
    for (size_t i = 0; i < 20; ++i)
        EXPECT_EQ(report.responses[i].id, i); // dense ids, sorted
    for (const Response &r : report.responses)
        EXPECT_LE(r.batch_size, 4u); // never more than the client count
    EXPECT_GT(report.queriesPerSecond(), 0.0);
}

TEST(ServeLoop, DynamicBatchingBeatsBatchOneThroughput)
{
    // The core dynamic-batching claim at miniature scale: a batched
    // closed loop finishes the same offered load at higher queries/sec
    // than batch=1 serving, because the per-offload handoff amortizes.
    ServeConfig serial = baseConfig();
    serial.max_batch = 1;
    ServeConfig batched = baseConfig();
    batched.max_batch = 16;

    auto make = [](RequestId, size_t) { return Request{}; };
    ServeLoop serial_loop(serial, smallJob());
    ServeLoop batched_loop(batched, smallJob());
    const double serial_qps =
        serial_loop.runClosedLoop(16, 4, make).queriesPerSecond();
    const double batched_qps =
        batched_loop.runClosedLoop(16, 4, make).queriesPerSecond();
    EXPECT_GT(batched_qps, serial_qps);
}

TEST(ServeLoop, ServiceTimeMemoizationIsConsistent)
{
    ServeLoop loop(baseConfig(), smallJob());
    const double first = loop.batchServiceUs(8, 512);
    const double again = loop.batchServiceUs(8, 512);
    EXPECT_DOUBLE_EQ(first, again);
    // The handoff cost is part of every dispatch.
    EXPECT_GE(first, loop.config().handoff_us);
    // Bigger batches take longer end-to-end but less per request.
    const double one = loop.batchServiceUs(1, 512);
    EXPECT_GT(first, one);
    EXPECT_LT(first / 8.0, one);
}

TEST(ServeLoopDeathTest, MisconfigurationIsFatal)
{
    ServeConfig cfg = baseConfig();
    cfg.max_batch = 0;
    EXPECT_DEATH({ ServeLoop loop(cfg, smallJob()); }, "max_batch");
}

} // namespace
} // namespace enmc::serve
