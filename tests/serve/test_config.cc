/**
 * @file
 * Regression tests for `ENMC_SERVE_*` / `ENMC_CLUSTER_*` environment
 * parsing. The contract (common/env.h): an *unset* variable silently
 * falls back to the default; a variable that is set but malformed —
 * empty, negative where unsigned, trailing garbage, overflow,
 * non-finite, non-0/1 boolean — dies loudly instead of being silently
 * ignored (which once shipped a misspelled override as the default).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "serve/config.h"

namespace enmc::serve {
namespace {

/** Clears every variable the config readers look at, for test isolation,
 *  and restores the prior environment on destruction. */
class EnvSandbox
{
  public:
    EnvSandbox()
    {
        for (const char *name : kVars) {
            if (const char *v = std::getenv(name))
                saved_.emplace_back(name, v);
            ::unsetenv(name);
        }
    }

    ~EnvSandbox()
    {
        for (const char *name : kVars)
            ::unsetenv(name);
        for (const auto &[name, value] : saved_)
            ::setenv(name.c_str(), value.c_str(), 1);
    }

    void set(const char *name, const char *value)
    {
        ::setenv(name, value, 1);
    }

  private:
    static constexpr const char *kVars[] = {
        "ENMC_SERVE_BACKEND",   "ENMC_SERVE_QUEUE_CAP",
        "ENMC_SERVE_MAX_BATCH", "ENMC_SERVE_MAX_DELAY_US",
        "ENMC_SERVE_HANDOFF_US", "ENMC_SERVE_WARMUP",
        "ENMC_SERVE_SLO_US",    "ENMC_SERVE_LOGITS",
        "ENMC_SERVE_TOPK",      "ENMC_CLUSTER_NODES",
        "ENMC_CLUSTER_REPLICATION", "ENMC_CLUSTER_NODE_BACKEND",
        "ENMC_CLUSTER_RANKS_PER_NODE", "ENMC_CLUSTER_NODE_HANDOFF_US",
        "ENMC_CLUSTER_NET_GBPS", "ENMC_CLUSTER_NET_LAT_US",
        "ENMC_CLUSTER_KILL_NODE", "ENMC_CLUSTER_KILL_AFTER",
    };

    std::vector<std::pair<std::string, std::string>> saved_;
};

TEST(ServeConfigEnv, UnsetFallsBackToDefaults)
{
    EnvSandbox env;
    const ServeConfig cfg = serveConfigFromEnv();
    const ServeConfig defaults;
    EXPECT_EQ(cfg.backend, defaults.backend);
    EXPECT_EQ(cfg.queue_capacity, defaults.queue_capacity);
    EXPECT_EQ(cfg.max_batch, defaults.max_batch);
    EXPECT_DOUBLE_EQ(cfg.max_delay_us, defaults.max_delay_us);
    EXPECT_EQ(cfg.compute_logits, defaults.compute_logits);
    EXPECT_EQ(cfg.topk, defaults.topk);
    EXPECT_EQ(cfg.cluster.nodes, defaults.cluster.nodes);
}

TEST(ServeConfigEnv, WellFormedOverridesApply)
{
    EnvSandbox env;
    env.set("ENMC_SERVE_BACKEND", "tensordimm");
    env.set("ENMC_SERVE_QUEUE_CAP", "128");
    env.set("ENMC_SERVE_MAX_BATCH", "32");
    env.set("ENMC_SERVE_MAX_DELAY_US", "75.5");
    env.set("ENMC_SERVE_LOGITS", "0");
    env.set("ENMC_SERVE_TOPK", "10");
    env.set("ENMC_CLUSTER_NODES", "8");
    env.set("ENMC_CLUSTER_REPLICATION", "3");
    const ServeConfig cfg = serveConfigFromEnv();
    EXPECT_EQ(cfg.backend, "tensordimm");
    EXPECT_EQ(cfg.queue_capacity, 128u);
    EXPECT_EQ(cfg.max_batch, 32u);
    EXPECT_DOUBLE_EQ(cfg.max_delay_us, 75.5);
    EXPECT_FALSE(cfg.compute_logits);
    EXPECT_EQ(cfg.topk, 10u);
    EXPECT_EQ(cfg.cluster.nodes, 8u);
    EXPECT_EQ(cfg.cluster.replication, 3u);
}

using ServeConfigEnvDeath = ::testing::Test;

TEST(ServeConfigEnvDeath, MalformedValuesDieLoudly)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EnvSandbox env;

    env.set("ENMC_SERVE_MAX_BATCH", "abc");
    EXPECT_DEATH(serveConfigFromEnv(), "ENMC_SERVE_MAX_BATCH");

    env.set("ENMC_SERVE_MAX_BATCH", "-3");
    EXPECT_DEATH(serveConfigFromEnv(), "non-negative");

    env.set("ENMC_SERVE_MAX_BATCH", "");
    EXPECT_DEATH(serveConfigFromEnv(), "set but empty");

    env.set("ENMC_SERVE_MAX_BATCH", "99999999999999999999");
    EXPECT_DEATH(serveConfigFromEnv(), "overflows");

    env.set("ENMC_SERVE_MAX_BATCH", "8 ");
    EXPECT_DEATH(serveConfigFromEnv(), "unsigned integer");
}

TEST(ServeConfigEnvDeath, MalformedFloatsAndBoolsDieLoudly)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EnvSandbox env;

    env.set("ENMC_SERVE_MAX_DELAY_US", "nan");
    EXPECT_DEATH(serveConfigFromEnv(), "finite");

    env.set("ENMC_SERVE_MAX_DELAY_US", "50us");
    EXPECT_DEATH(serveConfigFromEnv(), "must be a number");

    env.set("ENMC_SERVE_MAX_DELAY_US", "50.0");
    env.set("ENMC_SERVE_LOGITS", "yes");
    EXPECT_DEATH(serveConfigFromEnv(), "must be 0 or 1");
}

TEST(ServeConfigEnvDeath, InconsistentValuesDieInValidation)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EnvSandbox env;

    // Parses fine, but max_batch can never fill from a smaller queue.
    env.set("ENMC_SERVE_QUEUE_CAP", "4");
    env.set("ENMC_SERVE_MAX_BATCH", "16");
    EXPECT_DEATH(serveConfigFromEnv(), "exceeds queue_capacity");
}

TEST(ServeConfigEnvDeath, ClusterShapeCheckedWhenClusterSelected)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EnvSandbox env;
    env.set("ENMC_SERVE_BACKEND", "cluster");
    env.set("ENMC_CLUSTER_NODES", "2");
    env.set("ENMC_CLUSTER_REPLICATION", "4");
    EXPECT_DEATH(serveConfigFromEnv(), "replication.*exceeds node count");
}

} // namespace
} // namespace enmc::serve
