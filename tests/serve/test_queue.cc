/**
 * @file
 * Tests for the bounded MPMC request queue: admission control,
 * backpressure, ordered admission, and drain-then-stop shutdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/queue.h"

namespace enmc::serve {
namespace {

QueuedRequest
qr(RequestId id)
{
    QueuedRequest q;
    q.request.id = id;
    return q;
}

TEST(RequestQueue, TryPushRejectsWhenFull)
{
    RequestQueue queue(4);
    for (RequestId id = 0; id < 4; ++id)
        EXPECT_EQ(queue.tryPush(qr(id)), Admission::Admitted);
    EXPECT_EQ(queue.tryPush(qr(4)), Admission::RejectedQueueFull);
    EXPECT_EQ(queue.size(), 4u);
    EXPECT_EQ(queue.stats().counter("admitted").value(), 4u);
    EXPECT_EQ(queue.stats().counter("rejectedFull").value(), 1u);
}

TEST(RequestQueue, PopCoalescesUpToMaxInFifoOrder)
{
    RequestQueue queue(16);
    for (RequestId id = 0; id < 5; ++id)
        ASSERT_EQ(queue.tryPush(qr(id)), Admission::Admitted);

    std::vector<QueuedRequest> out;
    EXPECT_EQ(queue.pop(3, std::chrono::microseconds(0), out), 3u);
    ASSERT_EQ(out.size(), 3u);
    for (RequestId id = 0; id < 3; ++id)
        EXPECT_EQ(out[id].request.id, id);

    out.clear();
    EXPECT_EQ(queue.pop(3, std::chrono::microseconds(0), out), 2u);
    EXPECT_EQ(out[0].request.id, 3u);
    EXPECT_EQ(out[1].request.id, 4u);
    EXPECT_EQ(queue.stats().counter("popped").value(), 5u);
}

TEST(RequestQueue, PopTimesOutOnEmptyQueue)
{
    RequestQueue queue(4);
    std::vector<QueuedRequest> out;
    EXPECT_EQ(queue.pop(4, std::chrono::microseconds(500), out), 0u);
    EXPECT_TRUE(out.empty());
}

TEST(RequestQueue, CloseRejectsLaterPushesWithShutdown)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.tryPush(qr(0)), Admission::Admitted);
    queue.close();
    EXPECT_EQ(queue.tryPush(qr(1)), Admission::RejectedShutdown);
    EXPECT_EQ(queue.pushBlocking(qr(2)), Admission::RejectedShutdown);
    EXPECT_EQ(queue.stats().counter("rejectedShutdown").value(), 2u);
}

TEST(RequestQueue, CloseDrainsQueuedItemsBeforeStopping)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.tryPush(qr(0)), Admission::Admitted);
    ASSERT_EQ(queue.tryPush(qr(1)), Admission::Admitted);
    queue.close();
    std::vector<QueuedRequest> out;
    EXPECT_EQ(queue.pop(8, std::chrono::microseconds(0), out), 2u);
    EXPECT_EQ(queue.pop(8, std::chrono::microseconds(0), out), 0u);
}

TEST(RequestQueue, PushBlockingWaitsForSpace)
{
    RequestQueue queue(1);
    ASSERT_EQ(queue.tryPush(qr(0)), Admission::Admitted);

    std::atomic<bool> admitted{false};
    std::thread producer([&] {
        EXPECT_EQ(queue.pushBlocking(qr(1)), Admission::Admitted);
        admitted.store(true);
    });
    // The producer must be blocked while the queue is at capacity.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(admitted.load());

    std::vector<QueuedRequest> out;
    EXPECT_EQ(queue.pop(1, std::chrono::microseconds(0), out), 1u);
    producer.join();
    EXPECT_TRUE(admitted.load());
    EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, PushOrderedAdmitsInIdOrderAcrossThreads)
{
    constexpr size_t kRequests = 32;
    constexpr size_t kThreads = 4;
    RequestQueue queue(kRequests);

    // Each thread owns the ids congruent to it mod kThreads and pushes
    // them in ascending order; the interleaving ACROSS threads is
    // arbitrary, yet pushOrdered must still admit 0, 1, 2, ...
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (size_t i = t; i < kRequests; i += kThreads) {
                EXPECT_EQ(queue.pushOrdered(qr(i)), Admission::Admitted);
            }
        });
    for (auto &th : threads)
        th.join();

    std::vector<QueuedRequest> out;
    ASSERT_EQ(queue.pop(kRequests, std::chrono::microseconds(0), out),
              kRequests);
    for (RequestId id = 0; id < kRequests; ++id)
        EXPECT_EQ(out[id].request.id, id);
}

TEST(RequestQueue, PushOrderedRejectionStillPassesTheTurn)
{
    RequestQueue queue(2);
    EXPECT_EQ(queue.pushOrdered(qr(0)), Admission::Admitted);
    EXPECT_EQ(queue.pushOrdered(qr(1)), Admission::Admitted);
    // Full: ids 2 and 3 must each be rejected without deadlocking on
    // their predecessor's turn.
    EXPECT_EQ(queue.pushOrdered(qr(2)), Admission::RejectedQueueFull);
    EXPECT_EQ(queue.pushOrdered(qr(3)), Admission::RejectedQueueFull);
}

TEST(RequestQueue, CloseWakesBlockedOrderedProducer)
{
    RequestQueue queue(4);
    // Id 5's turn never comes (ids 0..4 are never pushed).
    std::thread producer([&] {
        EXPECT_EQ(queue.pushOrdered(qr(5)), Admission::RejectedShutdown);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    producer.join();
}

TEST(RequestQueue, DepthHistogramSamplesEveryDecision)
{
    RequestQueue queue(4);
    for (RequestId id = 0; id < 6; ++id)
        (void)queue.tryPush(qr(id));
    // 6 decisions (4 admits + 2 rejects), each sampling the depth.
    EXPECT_EQ(queue.stats().histogram("depth").total(), 6u);
}

} // namespace
} // namespace enmc::serve
