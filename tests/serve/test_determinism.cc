/**
 * @file
 * Serving-layer determinism stress tests.
 *
 * The contract under test: with a fixed seed and a fixed arrival trace,
 * the serving layer produces bit-identical per-request logits and
 * identical admission decisions no matter how many worker threads the
 * functional simulation uses (the ENMC_THREADS axis, exercised here
 * in-process via SystemConfig::sim_threads) and no matter how many
 * producer threads deliver the requests (live mode with ordered
 * admission).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "runtime/api.h"
#include "serve/loop.h"
#include "workloads/synthetic.h"

namespace enmc::serve {
namespace {

class ServeDeterminismTest : public ::testing::Test
{
  protected:
    ServeDeterminismTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          queries_(model_.sampleHiddenBatch(rng_, 24))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    /** A calibrated classifier whose slice simulation uses `threads`
     *  workers. Calibration is seeded, so every instance is identical. */
    std::unique_ptr<runtime::EnmcClassifier>
    makeClassifier(uint64_t threads)
    {
        runtime::ClassifierOptions opt;
        opt.candidates = 48;
        runtime::SystemConfig sys;
        sys.sim_threads = threads;
        auto clf = std::make_unique<runtime::EnmcClassifier>(
            model_.classifier(), opt, sys);
        clf->calibrate(train_, val_);
        return clf;
    }

    /** Full-scale job dimensions for the timing model; the functional
     *  logits come from the attached classifier at synthetic scale. */
    static runtime::JobSpec
    job()
    {
        runtime::JobSpec spec;
        spec.categories = 32768;
        spec.hidden = 128;
        spec.reduced = 32;
        spec.candidates = 512;
        return spec;
    }

    ServeConfig
    config() const
    {
        ServeConfig cfg;
        cfg.backend = "enmc";
        cfg.queue_capacity = 64;
        cfg.max_batch = 8;
        cfg.max_delay_us = 50.0;
        cfg.warmup_requests = 0;
        cfg.topk = 5;
        return cfg;
    }

    /** Random-ish but FIXED arrival trace over the query set: bursts,
     *  stragglers, and simultaneous arrivals. */
    ArrivalTrace
    trace() const
    {
        ArrivalTrace t;
        for (size_t i = 0; i < queries_.size(); ++i) {
            Request r;
            r.id = i;
            r.hidden = queries_[i];
            r.candidates = 32 + 8 * (i % 3);
            // Three bursts of eight with ties inside each burst.
            r.arrival_us = static_cast<double>(i / 8) * 120.0 +
                           static_cast<double>(i % 2) * 10.0;
            t.requests.push_back(r);
        }
        t.normalize();
        return t;
    }

    static void
    expectBitIdentical(const Response &a, const Response &b)
    {
        ASSERT_EQ(a.id, b.id);
        ASSERT_EQ(a.admission, b.admission);
        ASSERT_EQ(a.batch_size, b.batch_size);
        ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
        if (!a.probabilities.empty()) {
            ASSERT_EQ(std::memcmp(a.probabilities.data(),
                                  b.probabilities.data(),
                                  a.probabilities.size() * sizeof(float)),
                      0)
                << "logits differ for request " << a.id;
        }
        ASSERT_EQ(a.topk, b.topk);
        ASSERT_EQ(a.candidates, b.candidates);
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> queries_;
};

TEST_F(ServeDeterminismTest, ReplayBitIdenticalAcrossSimThreads)
{
    const ArrivalTrace arrivals = trace();

    std::vector<ServeReport> reports;
    for (uint64_t threads : {1, 4, 8}) {
        auto clf = makeClassifier(threads);
        ServeLoop loop(config(), job(), runtime::SystemConfig{});
        loop.attachClassifier(*clf);
        reports.push_back(loop.replay(arrivals));
    }

    ASSERT_EQ(reports[0].responses.size(), arrivals.requests.size());
    for (size_t v = 1; v < reports.size(); ++v) {
        ASSERT_EQ(reports[v].responses.size(),
                  reports[0].responses.size());
        for (size_t i = 0; i < reports[0].responses.size(); ++i) {
            expectBitIdentical(reports[0].responses[i],
                               reports[v].responses[i]);
            // The schedule itself is thread-count-invariant too.
            ASSERT_DOUBLE_EQ(reports[v].responses[i].dispatch_us,
                             reports[0].responses[i].dispatch_us);
            ASSERT_DOUBLE_EQ(reports[v].responses[i].complete_us,
                             reports[0].responses[i].complete_us);
        }
    }
}

TEST_F(ServeDeterminismTest, ReplayIsReproducibleRunToRun)
{
    auto clf = makeClassifier(4);
    const ArrivalTrace arrivals = trace();
    ServeLoop loop_a(config(), job());
    ServeLoop loop_b(config(), job());
    loop_a.attachClassifier(*clf);
    loop_b.attachClassifier(*clf);
    const ServeReport a = loop_a.replay(arrivals);
    const ServeReport b = loop_b.replay(arrivals);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (size_t i = 0; i < a.responses.size(); ++i) {
        expectBitIdentical(a.responses[i], b.responses[i]);
        ASSERT_DOUBLE_EQ(a.responses[i].complete_us,
                         b.responses[i].complete_us);
    }
}

TEST_F(ServeDeterminismTest, AdmissionDecisionsIdenticalAcrossSimThreads)
{
    // Overloaded: capacity 8, 24 simultaneous arrivals. The admission
    // pattern (who gets in, who is shed) must not depend on thread count.
    ServeConfig cfg = config();
    cfg.queue_capacity = 8;
    ArrivalTrace arrivals = trace();
    for (Request &r : arrivals.requests)
        r.arrival_us = 0.0;
    arrivals.normalize();

    std::vector<std::vector<Admission>> decisions;
    for (uint64_t threads : {1, 4, 8}) {
        auto clf = makeClassifier(threads);
        ServeLoop loop(cfg, job());
        loop.attachClassifier(*clf);
        const ServeReport report = loop.replay(arrivals);
        std::vector<Admission> d;
        for (const Response &r : report.responses)
            d.push_back(r.admission);
        decisions.push_back(std::move(d));
    }
    EXPECT_GT(static_cast<int>(decisions[0].size()), 0);
    for (size_t v = 1; v < decisions.size(); ++v)
        EXPECT_EQ(decisions[v], decisions[0]);
    // And the overload actually sheds load in this configuration.
    size_t rejected = 0;
    for (Admission a : decisions[0])
        rejected += (a == Admission::RejectedQueueFull);
    EXPECT_EQ(rejected, arrivals.requests.size() - cfg.queue_capacity);
}

TEST_F(ServeDeterminismTest, LiveProducersMatchSingleQueryReference)
{
    // N producer threads hammer the live loop with ordered admission;
    // per-request logits must be bit-identical to serving each query
    // alone (batch-composition invariance of the batched kernels).
    auto clf = makeClassifier(4);
    auto reference = makeClassifier(4);

    ServeConfig cfg = config();
    cfg.queue_capacity = 64;
    ServeLoop loop(cfg, job());
    loop.attachClassifier(*clf);
    loop.start();

    constexpr size_t kProducers = 4;
    std::vector<std::future<Response>> futures(queries_.size());
    std::vector<std::thread> producers;
    for (size_t t = 0; t < kProducers; ++t)
        producers.emplace_back([&, t] {
            for (size_t i = t; i < queries_.size(); i += kProducers) {
                Request r;
                r.id = i;
                r.hidden = queries_[i];
                futures[i] = loop.submitOrdered(std::move(r));
            }
        });
    for (auto &p : producers)
        p.join();

    std::vector<Response> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    const ServeReport report = loop.stop();
    ASSERT_EQ(report.responses.size(), queries_.size());
    ASSERT_EQ(report.admittedCount(), queries_.size());

    for (size_t i = 0; i < queries_.size(); ++i) {
        ASSERT_EQ(responses[i].admission, Admission::Admitted);
        const auto ref = reference->forward({queries_[i]}, cfg.topk);
        ASSERT_EQ(responses[i].probabilities.size(),
                  ref[0].probabilities.size());
        ASSERT_EQ(std::memcmp(responses[i].probabilities.data(),
                              ref[0].probabilities.data(),
                              ref[0].probabilities.size() * sizeof(float)),
                  0)
            << "live logits differ from single-query reference, request "
            << i;
        ASSERT_EQ(responses[i].topk, ref[0].topk);
    }
}

TEST_F(ServeDeterminismTest, LiveQueueFullBackpressureSurfacesToCaller)
{
    // With logits enabled and a tiny queue, load shedding must surface
    // as RejectedQueueFull on the future, never as a hang or a drop.
    auto clf = makeClassifier(1);
    ServeConfig cfg = config();
    cfg.queue_capacity = 2;
    cfg.max_batch = 2;
    cfg.max_delay_us = 0.0;
    ServeLoop loop(cfg, job());
    loop.attachClassifier(*clf);
    loop.start();

    std::vector<std::future<Response>> futures;
    for (size_t i = 0; i < 64; ++i) {
        Request r;
        r.id = i;
        r.hidden = queries_[i % queries_.size()];
        futures.push_back(loop.submit(std::move(r)));
    }
    size_t admitted = 0, rejected = 0;
    for (auto &f : futures) {
        const Response resp = f.get();
        if (resp.admission == Admission::Admitted) {
            ++admitted;
            EXPECT_FALSE(resp.probabilities.empty());
        } else {
            EXPECT_EQ(resp.admission, Admission::RejectedQueueFull);
            ++rejected;
        }
    }
    EXPECT_EQ(admitted + rejected, 64u);
    EXPECT_GT(admitted, 0u);
    const ServeReport report = loop.stop();
    EXPECT_EQ(report.responses.size(), 64u);
}

TEST_F(ServeDeterminismTest, EmptyHiddenVectorRejectedAsInvalid)
{
    auto clf = makeClassifier(1);
    ServeLoop loop(config(), job());
    loop.attachClassifier(*clf);

    ArrivalTrace arrivals;
    Request good;
    good.id = 0;
    good.hidden = queries_[0];
    Request bad;
    bad.id = 1; // no hidden vector but logits were requested
    arrivals.requests = {good, bad};

    const ServeReport report = loop.replay(arrivals);
    ASSERT_EQ(report.responses.size(), 2u);
    EXPECT_EQ(report.responses[0].admission, Admission::Admitted);
    EXPECT_EQ(report.responses[1].admission, Admission::RejectedInvalid);
    EXPECT_EQ(report.rejectedCount(Admission::RejectedInvalid), 1u);
}

} // namespace
} // namespace enmc::serve
