/**
 * @file
 * Online screener hot-swap tests: snapshot publication under live
 * threaded load and deterministic swap points in replay mode.
 *
 * The contracts under test:
 *  - a swap scheduled mid-run drops and corrupts nothing: every admitted
 *    request resolves, and its output is bit-identical to a reference
 *    classifier frozen at the epoch the response records;
 *  - every response's epoch is in {old, new} and epochs are
 *    non-decreasing in dispatch order (forward() acquires one snapshot
 *    per batch, so a batch never mixes epochs);
 *  - in replay mode the swap point is a pure function of (trace,
 *    after_batches): two runs are bit-identical response for response;
 *  - the snapshot slot's RCU grace list retires and collects correctly
 *    while readers hold snapshots (the TSan soak in CI repeats the live
 *    test under -fsanitize=thread to catch torn reads).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/api.h"
#include "runtime/snapshot.h"
#include "serve/loop.h"
#include "workloads/synthetic.h"

namespace enmc::serve {
namespace {

class HotSwapTest : public ::testing::Test
{
  protected:
    HotSwapTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          queries_(model_.sampleHiddenBatch(rng_, 24))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    std::unique_ptr<runtime::EnmcClassifier>
    makeClassifier(size_t cache_capacity = 0)
    {
        runtime::ClassifierOptions opt;
        opt.candidates = 48;
        opt.cache.capacity = cache_capacity;
        auto clf = std::make_unique<runtime::EnmcClassifier>(
            model_.classifier(), opt, runtime::SystemConfig{});
        clf->calibrate(train_, val_);
        return clf;
    }

    /** A twin already refreshed once — the epoch-2 reference. The
     *  refresh seed depends only on (options.seed, epoch), so this is
     *  bit-identical to the serving classifier's post-swap screener. */
    std::unique_ptr<runtime::EnmcClassifier>
    makeRefreshedTwin()
    {
        auto clf = makeClassifier();
        EXPECT_EQ(clf->refresh(train_, val_), 2u);
        return clf;
    }

    static runtime::JobSpec
    job()
    {
        runtime::JobSpec spec;
        spec.categories = 32768;
        spec.hidden = 128;
        spec.reduced = 32;
        spec.candidates = 512;
        return spec;
    }

    ServeConfig
    config() const
    {
        ServeConfig cfg;
        cfg.backend = "enmc";
        cfg.queue_capacity = 64;
        cfg.max_batch = 8;
        cfg.max_delay_us = 50.0;
        cfg.warmup_requests = 0;
        cfg.topk = 5;
        return cfg;
    }

    ArrivalTrace
    trace() const
    {
        ArrivalTrace t;
        for (size_t i = 0; i < queries_.size(); ++i) {
            Request r;
            r.id = i;
            r.hidden = queries_[i];
            r.arrival_us = static_cast<double>(i / 8) * 120.0 +
                           static_cast<double>(i % 2) * 10.0;
            t.requests.push_back(r);
        }
        t.normalize();
        return t;
    }

    /** Assert `resp` matches the epoch-appropriate reference bitwise. */
    void
    expectMatchesEpochReference(const Response &resp,
                                runtime::EnmcClassifier &ref1,
                                runtime::EnmcClassifier &ref2,
                                const tensor::Vector &h) const
    {
        ASSERT_TRUE(resp.snapshot_epoch == 1 || resp.snapshot_epoch == 2)
            << "request " << resp.id << " served under epoch "
            << resp.snapshot_epoch;
        runtime::EnmcClassifier &ref =
            resp.snapshot_epoch == 1 ? ref1 : ref2;
        const auto expect = ref.forward({h}, 5);
        ASSERT_EQ(resp.probabilities.size(),
                  expect[0].probabilities.size());
        ASSERT_EQ(std::memcmp(resp.probabilities.data(),
                              expect[0].probabilities.data(),
                              expect[0].probabilities.size() *
                                  sizeof(float)),
                  0)
            << "request " << resp.id << " (epoch " << resp.snapshot_epoch
            << ") does not match its epoch's reference";
        ASSERT_EQ(resp.topk, expect[0].topk);
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> queries_;
};

TEST_F(HotSwapTest, ReplaySwapIsDeterministicInTraceAndSwapPoint)
{
    const ArrivalTrace arrivals = trace();
    auto run = [&] {
        auto clf = makeClassifier(/*cache_capacity=*/32);
        ServeLoop loop(config(), job());
        loop.attachClassifier(*clf);
        loop.scheduleSwap(1, [&] { clf->refresh(train_, val_); });
        return loop.replay(arrivals);
    };

    const ServeReport a = run();
    const ServeReport b = run();
    ASSERT_EQ(a.responses.size(), arrivals.requests.size());
    ASSERT_EQ(a.responses.size(), b.responses.size());

    bool saw_old = false, saw_new = false;
    for (size_t i = 0; i < a.responses.size(); ++i) {
        const Response &ra = a.responses[i];
        const Response &rb = b.responses[i];
        ASSERT_EQ(ra.id, rb.id);
        ASSERT_EQ(ra.snapshot_epoch, rb.snapshot_epoch)
            << "swap point drifted between identical runs";
        ASSERT_EQ(ra.cache_hit, rb.cache_hit);
        ASSERT_DOUBLE_EQ(ra.dispatch_us, rb.dispatch_us);
        ASSERT_DOUBLE_EQ(ra.complete_us, rb.complete_us);
        ASSERT_EQ(ra.probabilities.size(), rb.probabilities.size());
        if (!ra.probabilities.empty())
            ASSERT_EQ(std::memcmp(ra.probabilities.data(),
                                  rb.probabilities.data(),
                                  ra.probabilities.size() * sizeof(float)),
                      0);
        saw_old |= ra.snapshot_epoch == 1;
        saw_new |= ra.snapshot_epoch == 2;
    }
    EXPECT_TRUE(saw_old) << "swap after batch 1 must leave epoch-1 output";
    EXPECT_TRUE(saw_new) << "swap never took effect";
}

TEST_F(HotSwapTest, ReplaySwapServesEachEpochsExactOutput)
{
    auto clf = makeClassifier();
    ServeLoop loop(config(), job());
    loop.attachClassifier(*clf);
    loop.scheduleSwap(1, [&] { clf->refresh(train_, val_); });
    const ServeReport report = loop.replay(trace());

    auto ref1 = makeClassifier();
    auto ref2 = makeRefreshedTwin();
    ASSERT_EQ(report.responses.size(), queries_.size());
    for (const Response &r : report.responses) {
        ASSERT_EQ(r.admission, Admission::Admitted);
        expectMatchesEpochReference(r, *ref1, *ref2,
                                    queries_[static_cast<size_t>(r.id)]);
    }
}

TEST_F(HotSwapTest, LiveSwapUnderThreadedLoadDropsNothing)
{
    auto clf = makeClassifier();
    ServeConfig cfg = config();
    cfg.queue_capacity = 128;
    ServeLoop loop(cfg, job());
    loop.attachClassifier(*clf);
    // Swap after the third dispatched batch, while producers still push.
    loop.scheduleSwap(3, [&] { clf->refresh(train_, val_); });
    loop.start();

    constexpr size_t kProducers = 4;
    constexpr size_t kRequests = 48;
    std::vector<std::future<Response>> futures(kRequests);
    std::vector<std::thread> producers;
    for (size_t t = 0; t < kProducers; ++t)
        producers.emplace_back([&, t] {
            for (size_t i = t; i < kRequests; i += kProducers) {
                Request r;
                r.id = i;
                r.hidden = queries_[i % queries_.size()];
                futures[i] = loop.submitOrdered(std::move(r));
            }
        });
    for (auto &p : producers)
        p.join();

    auto ref1 = makeClassifier();
    auto ref2 = makeRefreshedTwin();
    std::vector<Response> responses;
    for (auto &f : futures)
        responses.push_back(f.get()); // a drop would hang right here
    const ServeReport report = loop.stop();
    ASSERT_EQ(report.responses.size(), kRequests);
    ASSERT_EQ(report.admittedCount(), kRequests)
        << "live swap must not shed load";

    for (const Response &r : responses) {
        ASSERT_EQ(r.admission, Admission::Admitted);
        expectMatchesEpochReference(
            r, *ref1, *ref2,
            queries_[static_cast<size_t>(r.id) % queries_.size()]);
    }

    // Epochs are non-decreasing in dispatch order: the swap fires between
    // batches on the executor thread, never mid-batch.
    std::sort(responses.begin(), responses.end(),
              [](const Response &a, const Response &b) {
                  return a.dispatch_us < b.dispatch_us;
              });
    uint64_t last = 0;
    for (const Response &r : responses) {
        ASSERT_GE(r.snapshot_epoch, last);
        last = r.snapshot_epoch;
    }
    EXPECT_EQ(clf->snapshotEpoch(), 2u);
}

TEST_F(HotSwapTest, ConcurrentRefreshWhileForwardServes)
{
    // The torn-read stress: one control thread retrains and swaps while
    // this thread serves forward() continuously. Run under TSan in the
    // nightly soak; here it must at minimum never crash, never serve an
    // out-of-range epoch, and keep the grace list bounded.
    auto clf = makeClassifier();
    constexpr uint64_t kSwaps = 4;
    std::atomic<bool> done{false};

    std::thread control([&] {
        for (uint64_t i = 0; i < kSwaps; ++i)
            clf->refresh(train_, val_);
        done.store(true);
    });

    uint64_t served = 0;
    uint64_t max_epoch = 0;
    while (!done.load() || served == 0) {
        const auto out =
            clf->forward({queries_[served % queries_.size()]}, 5);
        ASSERT_GE(out[0].snapshot_epoch, 1u);
        ASSERT_LE(out[0].snapshot_epoch, 1u + kSwaps);
        ASSERT_GE(out[0].snapshot_epoch, max_epoch)
            << "epoch went backwards";
        max_epoch = out[0].snapshot_epoch;
        ++served;
    }
    control.join();
    EXPECT_EQ(clf->snapshotEpoch(), 1u + kSwaps);
    EXPECT_LE(clf->snapshots().retiredCount(),
              clf->options().snapshot.max_retired);
    // With no readers left, everything retired is collectible.
    clf->snapshots().collect();
    EXPECT_EQ(clf->snapshots().retiredCount(), 0u);
}

TEST_F(HotSwapTest, SnapshotSlotRetiresAndCollectsUnderReaders)
{
    auto make_screener = [&](uint64_t seed) {
        screening::ScreenerConfig cfg;
        cfg.categories = 64;
        cfg.hidden = 16;
        Rng rng(seed);
        return std::make_unique<screening::Screener>(cfg, rng);
    };

    runtime::ScreenerSnapshotSlot slot;
    EXPECT_EQ(slot.epoch(), 0u);
    EXPECT_EQ(slot.current(), nullptr);

    EXPECT_EQ(slot.publish(make_screener(1)), 1u);
    auto reader = slot.current(); // holds epoch 1 across the swaps below
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->epoch(), 1u);

    EXPECT_EQ(slot.publish(make_screener(2)), 2u);
    EXPECT_EQ(slot.publish(make_screener(3)), 3u);
    EXPECT_EQ(slot.epoch(), 3u);
    // Epoch 2 had no readers, so auto-collect freed it at the next
    // publish; epoch 1 is pinned by `reader`.
    EXPECT_EQ(slot.retiredCount(), 1u);
    EXPECT_EQ(slot.collect(), 0u);
    EXPECT_EQ(reader->epoch(), 1u) << "reader's snapshot must stay alive";

    reader.reset();
    EXPECT_EQ(slot.collect(), 1u);
    EXPECT_EQ(slot.retiredCount(), 0u);

    const StatGroup &s = slot.stats();
    EXPECT_EQ(s.counter("publishes").value(), 3u);
    EXPECT_EQ(s.counter("swaps").value(), 2u);
    EXPECT_EQ(s.counter("retired").value(), 2u);
    EXPECT_EQ(s.counter("collected").value(), 2u);
}

TEST(SnapshotConfigTest, EnvParsingAppliesOverrides)
{
    setenv("ENMC_SNAPSHOT_MAX_RETIRED", "3", 1);
    setenv("ENMC_SNAPSHOT_AUTO_COLLECT", "0", 1);
    const runtime::SnapshotConfig cfg = runtime::snapshotConfigFromEnv();
    unsetenv("ENMC_SNAPSHOT_MAX_RETIRED");
    unsetenv("ENMC_SNAPSHOT_AUTO_COLLECT");
    EXPECT_EQ(cfg.max_retired, 3u);
    EXPECT_FALSE(cfg.auto_collect);

    const runtime::SnapshotConfig defaults = runtime::snapshotConfigFromEnv();
    EXPECT_EQ(defaults.max_retired, 8u);
    EXPECT_TRUE(defaults.auto_collect);
}

} // namespace
} // namespace enmc::serve
