/**
 * @file
 * Equivalence tests for the dispatched kernel layer: every target
 * available on this CPU is checked against the scalar reference —
 * bit-exact for integer and element-wise kernels, within the documented
 * ULP envelope for FP32 reductions — plus the determinism contracts
 * (gemv row == dot, batch == per-query, any-worker-count stability).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/projection.h"
#include "tensor/quantize.h"

namespace enmc::tensor::kernels {
namespace {

/** Restores the startup dispatch target when a test ends. */
class KernelsTest : public ::testing::Test
{
  protected:
    void TearDown() override { setActiveTarget(saved_); }
    Target saved_ = activeTarget();
};

Vector
randomVector(Rng &rng, size_t n, double scale = 1.0)
{
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, scale));
    return v;
}

Matrix
randomMatrix(Rng &rng, size_t rows, size_t cols)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
    return m;
}

/**
 * FP32 cross-target tolerance: each target uses its own accumulation
 * pattern, so results differ by a bounded number of float rounding steps.
 * The envelope documented in kernels.h: 64 * eps * sum |a_i b_i|.
 */
float
dotTolerance(std::span<const float> a, std::span<const float> b)
{
    double mag = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        mag += std::fabs(static_cast<double>(a[i]) * b[i]);
    constexpr double kEps = 1.1920929e-07; // 2^-23
    return static_cast<float>(64.0 * kEps * mag) + 1e-12f;
}

// Sizes straddling the vector widths and tail-handling paths.
const size_t kSizes[] = {0, 1, 3, 7, 8, 15, 16, 31, 32, 33, 100, 257, 1024};

TEST_F(KernelsTest, ScalarTargetAlwaysAvailable)
{
    const auto targets = availableTargets();
    ASSERT_FALSE(targets.empty());
    EXPECT_EQ(targets.front(), Target::Scalar);
    ASSERT_NE(scalarKernelOps(), nullptr);
}

TEST_F(KernelsTest, TargetNamesRoundTrip)
{
    for (Target t : availableTargets()) {
        Target parsed;
        ASSERT_TRUE(targetFromString(targetName(t), &parsed));
        EXPECT_EQ(parsed, t);
    }
    Target dummy;
    EXPECT_FALSE(targetFromString("avx512", &dummy));
    EXPECT_FALSE(targetFromString("", &dummy));
}

TEST_F(KernelsTest, SetActiveTargetSwitchesTable)
{
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        EXPECT_EQ(activeTarget(), t);
        EXPECT_STREQ(ops().name, targetName(t));
    }
}

TEST_F(KernelsTest, DotWithinToleranceOfScalar)
{
    Rng rng(7);
    const KernelOps *ref = scalarKernelOps();
    for (size_t n : kSizes) {
        const Vector a = randomVector(rng, n);
        const Vector b = randomVector(rng, n);
        const float want = ref->dot(a.data(), b.data(), n);
        for (Target t : availableTargets()) {
            const float got = (t == Target::Scalar)
                                  ? want
                                  : [&] {
                                        setActiveTarget(t);
                                        return ops().dot(a.data(), b.data(),
                                                         n);
                                    }();
            EXPECT_NEAR(got, want, dotTolerance(a, b))
                << "target=" << targetName(t) << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, AxpyBitExactAcrossTargets)
{
    Rng rng(11);
    for (size_t n : kSizes) {
        const Vector x = randomVector(rng, n);
        const Vector y0 = randomVector(rng, n);
        const float alpha = static_cast<float>(rng.normal(0.0, 2.0));
        Vector want = y0;
        scalarKernelOps()->axpy(alpha, x.data(), want.data(), n);
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            Vector y = y0;
            ops().axpy(alpha, x.data(), y.data(), n);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(y[i], want[i])
                    << "target=" << targetName(t) << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST_F(KernelsTest, AbsMaxBitExactAcrossTargets)
{
    Rng rng(13);
    for (size_t n : kSizes) {
        Vector v = randomVector(rng, n, 3.0);
        if (n > 2)
            v[n / 2] = -42.5f;
        const float want = scalarKernelOps()->absMax(v.data(), n);
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            ASSERT_EQ(ops().absMax(v.data(), n), want)
                << "target=" << targetName(t) << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, QuantizeSpanBitExactAcrossTargets)
{
    Rng rng(17);
    for (size_t n : kSizes) {
        Vector v = randomVector(rng, n, 4.0);
        // Half-way points stress the round-half-away-from-zero contract.
        for (size_t i = 0; i + 1 < n; i += 2)
            v[i] = (i % 4 ? -1.0f : 1.0f) * (static_cast<float>(i) + 0.5f);
        for (int max_level : {1, 7, 127}) {
            const float inv = 1.0f;
            std::vector<int8_t> want(n + 1, 99), got(n + 1, 99);
            scalarKernelOps()->quantizeSpan(v.data(), n, inv, max_level,
                                            want.data());
            for (Target t : availableTargets()) {
                setActiveTarget(t);
                std::fill(got.begin(), got.end(), 99);
                ops().quantizeSpan(v.data(), n, inv, max_level, got.data());
                for (size_t i = 0; i < n; ++i)
                    ASSERT_EQ(got[i], want[i])
                        << "target=" << targetName(t) << " n=" << n
                        << " i=" << i << " v=" << v[i];
                ASSERT_EQ(got[n], 99) << "wrote past the span";
            }
        }
    }
}

TEST_F(KernelsTest, GemvQuantBitExactAcrossTargets)
{
    Rng rng(19);
    for (size_t cols : {size_t{1}, size_t{15}, size_t{16}, size_t{33},
                        size_t{128}, size_t{1000}}) {
        const size_t rows = 9;
        std::vector<int8_t> w(rows * cols);
        std::vector<int8_t> h(cols);
        for (auto &x : w)
            x = static_cast<int8_t>(rng.uniformInt(-127, 127));
        for (auto &x : h)
            x = static_cast<int8_t>(rng.uniformInt(-127, 127));
        std::vector<float> scales(rows), bias(rows);
        for (size_t r = 0; r < rows; ++r) {
            scales[r] = static_cast<float>(rng.normal(0.01, 0.001));
            bias[r] = static_cast<float>(rng.normal(0.0, 1.0));
        }
        Vector want(rows), got(rows);
        scalarKernelOps()->gemvQuantRows(w.data(), cols, scales.data(),
                                         h.data(), 0.02f, bias.data(),
                                         want.data(), 0, rows);
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            ops().gemvQuantRows(w.data(), cols, scales.data(), h.data(),
                                0.02f, bias.data(), got.data(), 0, rows);
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(got[r], want[r])
                    << "target=" << targetName(t) << " cols=" << cols
                    << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, GemvRowEqualsDotWithinTarget)
{
    Rng rng(23);
    const Matrix w = randomMatrix(rng, 13, 97);
    const Vector h = randomVector(rng, 97);
    Vector bias = randomVector(rng, 13);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        Vector z(w.rows());
        ops().gemvRows(w.data(), w.cols(), h.data(), bias.data(), z.data(),
                       0, w.rows());
        for (size_t r = 0; r < w.rows(); ++r)
            ASSERT_EQ(z[r],
                      ops().dot(w.row(r).data(), h.data(), w.cols()) +
                          bias[r])
                << "target=" << targetName(t) << " r=" << r;
    }
}

TEST_F(KernelsTest, GemvBatchEqualsPerQueryWithinTarget)
{
    Rng rng(29);
    const Matrix w = randomMatrix(rng, 21, 130);
    Vector bias = randomVector(rng, 21);
    for (size_t nq : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
        std::vector<Vector> hs, single(nq, Vector(w.rows())),
            batched(nq, Vector(w.rows()));
        for (size_t q = 0; q < nq; ++q)
            hs.push_back(randomVector(rng, w.cols()));
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            std::vector<const float *> hp;
            std::vector<float *> op;
            for (size_t q = 0; q < nq; ++q) {
                hp.push_back(hs[q].data());
                op.push_back(batched[q].data());
                ops().gemvRows(w.data(), w.cols(), hs[q].data(),
                               bias.data(), single[q].data(), 0, w.rows());
            }
            ops().gemvBatchRows(w.data(), w.cols(), hp.data(), op.data(),
                                nq, bias.data(), 0, w.rows());
            for (size_t q = 0; q < nq; ++q)
                for (size_t r = 0; r < w.rows(); ++r)
                    ASSERT_EQ(batched[q][r], single[q][r])
                        << "target=" << targetName(t) << " nq=" << nq
                        << " q=" << q << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, ProjectionWithinToleranceOfScalar)
{
    Rng rng(31);
    SparseProjection proj(64, 300, rng);
    const Vector h = randomVector(rng, 300);
    setActiveTarget(Target::Scalar);
    const Vector want = proj.apply(h);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        const Vector got = proj.apply(h);
        // Sum of |h| bounds every row's accumulated magnitude.
        double mag = 0.0;
        for (float x : h)
            mag += std::fabs(x);
        const float tol =
            static_cast<float>(64.0 * 1.1920929e-07 * mag) + 1e-12f;
        for (size_t r = 0; r < want.size(); ++r)
            ASSERT_NEAR(got[r], want[r], tol)
                << "target=" << targetName(t) << " r=" << r;
    }
}

TEST_F(KernelsTest, ParallelGemvBitIdenticalAcrossWorkerCounts)
{
    Rng rng(37);
    // Large enough that rows*cols clears kParallelMinWork and spans
    // several kRowChunk blocks.
    const size_t rows = 3 * kRowChunk + 17;
    const size_t cols = 768;
    ASSERT_GE(rows * cols, kParallelMinWork);
    const Matrix w = randomMatrix(rng, rows, cols);
    const Vector h = randomVector(rng, cols);
    const Vector bias = randomVector(rng, rows);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        Vector serial(rows);
        gemvInto(w, h, bias, serial, /*workers=*/1);
        for (size_t workers : {size_t{2}, size_t{8}}) {
            Vector par(rows);
            gemvInto(w, h, bias, par, workers);
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(par[r], serial[r])
                    << "target=" << targetName(t)
                    << " workers=" << workers << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, ParallelQuantGemvBitIdenticalAcrossWorkerCounts)
{
    Rng rng(41);
    const size_t rows = 2 * kRowChunk + 5;
    const size_t cols = 1024;
    std::vector<int8_t> w(rows * cols);
    std::vector<int8_t> h(cols);
    for (auto &x : w)
        x = static_cast<int8_t>(rng.uniformInt(-7, 7));
    for (auto &x : h)
        x = static_cast<int8_t>(rng.uniformInt(-7, 7));
    std::vector<float> scales(rows, 0.01f);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        Vector serial(rows);
        gemvQuantInto(w.data(), rows, cols, scales.data(), h.data(), 0.02f,
                      {}, serial, /*workers=*/1);
        for (size_t workers : {size_t{2}, size_t{8}}) {
            Vector par(rows);
            gemvQuantInto(w.data(), rows, cols, scales.data(), h.data(),
                          0.02f, {}, par, workers);
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(par[r], serial[r])
                    << "target=" << targetName(t)
                    << " workers=" << workers << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, QuantizedVectorRoundTripsAcrossTargets)
{
    Rng rng(43);
    const Vector v = randomVector(rng, 500, 2.0);
    setActiveTarget(Target::Scalar);
    const QuantizedVector want = quantize(v, QuantBits::Int4);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        const QuantizedVector got = quantize(v, QuantBits::Int4);
        ASSERT_EQ(got.scale, want.scale) << "target=" << targetName(t);
        ASSERT_EQ(got.values, want.values) << "target=" << targetName(t);
    }
}

} // namespace
} // namespace enmc::tensor::kernels
