/**
 * @file
 * Equivalence tests for the dispatched kernel layer: every target
 * available on this CPU is checked against the scalar reference —
 * bit-exact for integer and element-wise kernels, within the documented
 * ULP envelope for FP32 reductions — plus the determinism contracts
 * (gemv row == dot, batch == per-query, any-worker-count stability).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/projection.h"
#include "tensor/quantize.h"
#include "tensor/topk.h"

namespace enmc::tensor::kernels {
namespace {

/** Restores the startup dispatch target and tune params when a test
 *  ends. */
class KernelsTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        setActiveTarget(saved_);
        setTuneParams(saved_tune_);
    }
    Target saved_ = activeTarget();
    TuneParams saved_tune_ = tune();
};

Vector
randomVector(Rng &rng, size_t n, double scale = 1.0)
{
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, scale));
    return v;
}

Matrix
randomMatrix(Rng &rng, size_t rows, size_t cols)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
    return m;
}

/**
 * FP32 cross-target tolerance: each target uses its own accumulation
 * pattern, so results differ by a bounded number of float rounding steps.
 * The envelope documented in kernels.h: 64 * eps * sum |a_i b_i|.
 */
float
dotTolerance(std::span<const float> a, std::span<const float> b)
{
    double mag = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        mag += std::fabs(static_cast<double>(a[i]) * b[i]);
    constexpr double kEps = 1.1920929e-07; // 2^-23
    return static_cast<float>(64.0 * kEps * mag) + 1e-12f;
}

// Sizes straddling the vector widths and tail-handling paths.
const size_t kSizes[] = {0, 1, 3, 7, 8, 15, 16, 31, 32, 33, 100, 257, 1024};

TEST_F(KernelsTest, ScalarTargetAlwaysAvailable)
{
    const auto targets = availableTargets();
    ASSERT_FALSE(targets.empty());
    EXPECT_EQ(targets.front(), Target::Scalar);
    ASSERT_NE(scalarKernelOps(), nullptr);
}

TEST_F(KernelsTest, TargetNamesRoundTrip)
{
    for (Target t : availableTargets()) {
        Target parsed;
        ASSERT_TRUE(targetFromString(targetName(t), &parsed));
        EXPECT_EQ(parsed, t);
    }
    Target dummy;
    EXPECT_TRUE(targetFromString("avx512", &dummy));
    EXPECT_EQ(dummy, Target::Avx512);
    EXPECT_FALSE(targetFromString("avx999", &dummy));
    EXPECT_FALSE(targetFromString("", &dummy));
}

TEST_F(KernelsTest, ResolveTargetEmptyPicksBestAvailable)
{
    EXPECT_EQ(resolveTarget(nullptr), availableTargets().back());
    EXPECT_EQ(resolveTarget(""), availableTargets().back());
    EXPECT_EQ(resolveTarget("scalar"), Target::Scalar);
}

using KernelsDeathTest = KernelsTest;

TEST_F(KernelsDeathTest, ResolveTargetUnknownNameIsFatal)
{
    EXPECT_DEATH(resolveTarget("avx999"), "ENMC_KERNELS");
}

TEST_F(KernelsDeathTest, ResolveTargetUnavailableTargetIsFatal)
{
    // Find a target this CPU/build lacks; when every tier is available
    // (full AVX-512 host), the fail-loud path has no reachable input.
    const auto avail = availableTargets();
    for (Target t : {Target::Sse2, Target::Avx2, Target::Avx512}) {
        if (std::find(avail.begin(), avail.end(), t) != avail.end())
            continue;
        EXPECT_DEATH(resolveTarget(targetName(t)), "not available");
        return;
    }
    GTEST_SKIP() << "every kernel target is available on this CPU";
}

TEST_F(KernelsTest, SetActiveTargetSwitchesTable)
{
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        EXPECT_EQ(activeTarget(), t);
        EXPECT_STREQ(ops().name, targetName(t));
    }
}

TEST_F(KernelsTest, DotWithinToleranceOfScalar)
{
    Rng rng(7);
    const KernelOps *ref = scalarKernelOps();
    for (size_t n : kSizes) {
        const Vector a = randomVector(rng, n);
        const Vector b = randomVector(rng, n);
        const float want = ref->dot(a.data(), b.data(), n);
        for (Target t : availableTargets()) {
            const float got = (t == Target::Scalar)
                                  ? want
                                  : [&] {
                                        setActiveTarget(t);
                                        return ops().dot(a.data(), b.data(),
                                                         n);
                                    }();
            EXPECT_NEAR(got, want, dotTolerance(a, b))
                << "target=" << targetName(t) << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, AxpyBitExactAcrossTargets)
{
    Rng rng(11);
    for (size_t n : kSizes) {
        const Vector x = randomVector(rng, n);
        const Vector y0 = randomVector(rng, n);
        const float alpha = static_cast<float>(rng.normal(0.0, 2.0));
        Vector want = y0;
        scalarKernelOps()->axpy(alpha, x.data(), want.data(), n);
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            Vector y = y0;
            ops().axpy(alpha, x.data(), y.data(), n);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(y[i], want[i])
                    << "target=" << targetName(t) << " n=" << n
                    << " i=" << i;
        }
    }
}

TEST_F(KernelsTest, AbsMaxBitExactAcrossTargets)
{
    Rng rng(13);
    for (size_t n : kSizes) {
        Vector v = randomVector(rng, n, 3.0);
        if (n > 2)
            v[n / 2] = -42.5f;
        const float want = scalarKernelOps()->absMax(v.data(), n);
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            ASSERT_EQ(ops().absMax(v.data(), n), want)
                << "target=" << targetName(t) << " n=" << n;
        }
    }
}

TEST_F(KernelsTest, QuantizeSpanBitExactAcrossTargets)
{
    Rng rng(17);
    for (size_t n : kSizes) {
        Vector v = randomVector(rng, n, 4.0);
        // Half-way points stress the round-half-away-from-zero contract.
        for (size_t i = 0; i + 1 < n; i += 2)
            v[i] = (i % 4 ? -1.0f : 1.0f) * (static_cast<float>(i) + 0.5f);
        for (int max_level : {1, 7, 127}) {
            const float inv = 1.0f;
            std::vector<int8_t> want(n + 1, 99), got(n + 1, 99);
            scalarKernelOps()->quantizeSpan(v.data(), n, inv, max_level,
                                            want.data());
            for (Target t : availableTargets()) {
                setActiveTarget(t);
                std::fill(got.begin(), got.end(), 99);
                ops().quantizeSpan(v.data(), n, inv, max_level, got.data());
                for (size_t i = 0; i < n; ++i)
                    ASSERT_EQ(got[i], want[i])
                        << "target=" << targetName(t) << " n=" << n
                        << " i=" << i << " v=" << v[i];
                ASSERT_EQ(got[n], 99) << "wrote past the span";
            }
        }
    }
}

TEST_F(KernelsTest, GemvQuantBitExactAcrossTargets)
{
    Rng rng(19);
    for (size_t cols : {size_t{1}, size_t{15}, size_t{16}, size_t{33},
                        size_t{128}, size_t{1000}}) {
        const size_t rows = 9;
        std::vector<int8_t> w(rows * cols);
        std::vector<int8_t> h(cols);
        for (auto &x : w)
            x = static_cast<int8_t>(rng.uniformInt(-127, 127));
        for (auto &x : h)
            x = static_cast<int8_t>(rng.uniformInt(-127, 127));
        std::vector<float> scales(rows), bias(rows);
        for (size_t r = 0; r < rows; ++r) {
            scales[r] = static_cast<float>(rng.normal(0.01, 0.001));
            bias[r] = static_cast<float>(rng.normal(0.0, 1.0));
        }
        Vector want(rows), got(rows);
        scalarKernelOps()->gemvQuantRows(w.data(), cols, scales.data(),
                                         h.data(), 0.02f, bias.data(),
                                         want.data(), 0, rows);
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            ops().gemvQuantRows(w.data(), cols, scales.data(), h.data(),
                                0.02f, bias.data(), got.data(), 0, rows);
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(got[r], want[r])
                    << "target=" << targetName(t) << " cols=" << cols
                    << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, GemvRowEqualsDotWithinTarget)
{
    Rng rng(23);
    const Matrix w = randomMatrix(rng, 13, 97);
    const Vector h = randomVector(rng, 97);
    Vector bias = randomVector(rng, 13);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        Vector z(w.rows());
        ops().gemvRows(w.data(), w.cols(), h.data(), bias.data(), z.data(),
                       0, w.rows());
        for (size_t r = 0; r < w.rows(); ++r)
            ASSERT_EQ(z[r],
                      ops().dot(w.row(r).data(), h.data(), w.cols()) +
                          bias[r])
                << "target=" << targetName(t) << " r=" << r;
    }
}

TEST_F(KernelsTest, GemvBatchEqualsPerQueryWithinTarget)
{
    Rng rng(29);
    const Matrix w = randomMatrix(rng, 21, 130);
    Vector bias = randomVector(rng, 21);
    for (size_t nq : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
        std::vector<Vector> hs, single(nq, Vector(w.rows())),
            batched(nq, Vector(w.rows()));
        for (size_t q = 0; q < nq; ++q)
            hs.push_back(randomVector(rng, w.cols()));
        for (Target t : availableTargets()) {
            setActiveTarget(t);
            std::vector<const float *> hp;
            std::vector<float *> op;
            for (size_t q = 0; q < nq; ++q) {
                hp.push_back(hs[q].data());
                op.push_back(batched[q].data());
                ops().gemvRows(w.data(), w.cols(), hs[q].data(),
                               bias.data(), single[q].data(), 0, w.rows());
            }
            ops().gemvBatchRows(w.data(), w.cols(), hp.data(), op.data(),
                                nq, bias.data(), 0, w.rows());
            for (size_t q = 0; q < nq; ++q)
                for (size_t r = 0; r < w.rows(); ++r)
                    ASSERT_EQ(batched[q][r], single[q][r])
                        << "target=" << targetName(t) << " nq=" << nq
                        << " q=" << q << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, ProjectionWithinToleranceOfScalar)
{
    Rng rng(31);
    SparseProjection proj(64, 300, rng);
    const Vector h = randomVector(rng, 300);
    setActiveTarget(Target::Scalar);
    const Vector want = proj.apply(h);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        const Vector got = proj.apply(h);
        // Sum of |h| bounds every row's accumulated magnitude.
        double mag = 0.0;
        for (float x : h)
            mag += std::fabs(x);
        const float tol =
            static_cast<float>(64.0 * 1.1920929e-07 * mag) + 1e-12f;
        for (size_t r = 0; r < want.size(); ++r)
            ASSERT_NEAR(got[r], want[r], tol)
                << "target=" << targetName(t) << " r=" << r;
    }
}

TEST_F(KernelsTest, ParallelGemvBitIdenticalAcrossWorkerCounts)
{
    Rng rng(37);
    // Large enough that rows*cols clears kParallelMinWork and spans
    // several kRowChunk blocks.
    const size_t rows = 3 * kRowChunk + 17;
    const size_t cols = 768;
    ASSERT_GE(rows * cols, kParallelMinWork);
    const Matrix w = randomMatrix(rng, rows, cols);
    const Vector h = randomVector(rng, cols);
    const Vector bias = randomVector(rng, rows);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        Vector serial(rows);
        gemvInto(w, h, bias, serial, /*workers=*/1);
        for (size_t workers : {size_t{2}, size_t{8}}) {
            Vector par(rows);
            gemvInto(w, h, bias, par, workers);
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(par[r], serial[r])
                    << "target=" << targetName(t)
                    << " workers=" << workers << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, ParallelQuantGemvBitIdenticalAcrossWorkerCounts)
{
    Rng rng(41);
    const size_t rows = 2 * kRowChunk + 5;
    const size_t cols = 1024;
    std::vector<int8_t> w(rows * cols);
    std::vector<int8_t> h(cols);
    for (auto &x : w)
        x = static_cast<int8_t>(rng.uniformInt(-7, 7));
    for (auto &x : h)
        x = static_cast<int8_t>(rng.uniformInt(-7, 7));
    std::vector<float> scales(rows, 0.01f);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        Vector serial(rows);
        gemvQuantInto(w.data(), rows, cols, scales.data(), h.data(), 0.02f,
                      {}, serial, /*workers=*/1);
        for (size_t workers : {size_t{2}, size_t{8}}) {
            Vector par(rows);
            gemvQuantInto(w.data(), rows, cols, scales.data(), h.data(),
                          0.02f, {}, par, workers);
            for (size_t r = 0; r < rows; ++r)
                ASSERT_EQ(par[r], serial[r])
                    << "target=" << targetName(t)
                    << " workers=" << workers << " r=" << r;
        }
    }
}

TEST_F(KernelsTest, QuantizedVectorRoundTripsAcrossTargets)
{
    Rng rng(43);
    const Vector v = randomVector(rng, 500, 2.0);
    setActiveTarget(Target::Scalar);
    const QuantizedVector want = quantize(v, QuantBits::Int4);
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        const QuantizedVector got = quantize(v, QuantBits::Int4);
        ASSERT_EQ(got.scale, want.scale) << "target=" << targetName(t);
        ASSERT_EQ(got.values, want.values) << "target=" << targetName(t);
    }
}

/**
 * The AVX-512 tier promises more than the envelope: its FP32 kernels
 * keep AVX2's 16-slot accumulation pattern exactly, so results are
 * bit-identical — the property that lets cpuid upgrade default dispatch
 * on AVX-512 hosts without moving any golden figure.
 */
TEST_F(KernelsTest, Avx512BitIdenticalToAvx2)
{
    const auto avail = availableTargets();
    const bool has512 =
        std::find(avail.begin(), avail.end(), Target::Avx512) != avail.end();
    if (!has512)
        GTEST_SKIP() << "CPU/build lacks AVX-512; nothing to compare";
    ASSERT_NE(avx512KernelOps(), nullptr);

    Rng rng(47);
    const Matrix w = randomMatrix(rng, 29, 333);
    const Vector bias = randomVector(rng, 29);
    std::vector<Vector> hs;
    for (size_t q = 0; q < 5; ++q)
        hs.push_back(randomVector(rng, w.cols()));

    for (size_t n : kSizes) {
        const Vector a = randomVector(rng, n);
        const Vector b = randomVector(rng, n);
        setActiveTarget(Target::Avx2);
        const float want = ops().dot(a.data(), b.data(), n);
        setActiveTarget(Target::Avx512);
        ASSERT_EQ(ops().dot(a.data(), b.data(), n), want) << "n=" << n;
    }

    Vector z2(w.rows()), z5(w.rows());
    setActiveTarget(Target::Avx2);
    ops().gemvRows(w.data(), w.cols(), hs[0].data(), bias.data(), z2.data(),
                   0, w.rows());
    setActiveTarget(Target::Avx512);
    ops().gemvRows(w.data(), w.cols(), hs[0].data(), bias.data(), z5.data(),
                   0, w.rows());
    ASSERT_EQ(std::vector<float>(z2.begin(), z2.end()),
              std::vector<float>(z5.begin(), z5.end()));

    std::vector<Vector> out2(hs.size(), Vector(w.rows())),
        out5(hs.size(), Vector(w.rows()));
    std::vector<const float *> hp;
    std::vector<float *> op2, op5;
    for (size_t q = 0; q < hs.size(); ++q) {
        hp.push_back(hs[q].data());
        op2.push_back(out2[q].data());
        op5.push_back(out5[q].data());
    }
    setActiveTarget(Target::Avx2);
    ops().gemvBatchRows(w.data(), w.cols(), hp.data(), op2.data(),
                        hs.size(), bias.data(), 0, w.rows());
    setActiveTarget(Target::Avx512);
    ops().gemvBatchRows(w.data(), w.cols(), hp.data(), op5.data(),
                        hs.size(), bias.data(), 0, w.rows());
    for (size_t q = 0; q < hs.size(); ++q)
        for (size_t r = 0; r < w.rows(); ++r)
            ASSERT_EQ(out2[q][r], out5[q][r]) << "q=" << q << " r=" << r;

    SparseProjection proj(48, w.cols(), rng);
    setActiveTarget(Target::Avx2);
    const Vector p2 = proj.apply(hs[1]);
    setActiveTarget(Target::Avx512);
    const Vector p5 = proj.apply(hs[1]);
    for (size_t r = 0; r < p2.size(); ++r)
        ASSERT_EQ(p2[r], p5[r]) << "r=" << r;
}

/**
 * Property test for the TuneParams contract: every parameter value is a
 * pure performance knob. GEMV (fp32 + int8), batch GEMV and top-k must
 * return bit-identical results for every sampled TuneParams point, on
 * every available target, at every worker count.
 */
TEST_F(KernelsTest, TuneParamsNeverChangeResults)
{
    Rng rng(53);
    const size_t rows = 700, cols = 257;
    const Matrix w = randomMatrix(rng, rows, cols);
    const Vector bias = randomVector(rng, rows);
    std::vector<Vector> hs;
    for (size_t q = 0; q < 3; ++q)
        hs.push_back(randomVector(rng, cols));
    std::vector<int8_t> wq(rows * cols), hq(cols);
    for (auto &x : wq)
        x = static_cast<int8_t>(rng.uniformInt(-7, 7));
    for (auto &x : hq)
        x = static_cast<int8_t>(rng.uniformInt(-7, 7));
    std::vector<float> scales(rows, 0.01f);
    std::vector<float> z(rows);
    for (size_t i = 0; i < rows; ++i)
        z[i] = static_cast<float>(rng.normal(0.0, 1.0));
    // Duplicate scores exercise the index tie-break in both topk paths.
    z[11] = z[607];
    std::vector<std::vector<Scored>> shardLists;
    for (uint32_t s = 0; s < 4; ++s)
        shardLists.push_back(
            topkScored({z.data() + 175 * s, 175}, 40, 175 * s));

    const TuneParams points[] = {
        {},                    // defaults
        {1, 1, 1, 1, 0},       // degenerate chunks, heap-only topk
        {64, 1u << 14, 2, 32, 1 << 20},  // tiny tiles, scan-only topk
        {4096, 1u << 24, 16, 8192, 512}, // oversized tiles, mixed topk
        {333, 1, 3, 251, 700}, // off-pattern sizes, cutoff == n
    };

    // References computed at defaults, workers=1, per target.
    for (Target t : availableTargets()) {
        setActiveTarget(t);
        setTuneParams(TuneParams{});
        Vector refGemv(rows), refQuant(rows);
        gemvInto(w, hs[0], bias, refGemv, 1);
        gemvQuantInto(wq.data(), rows, cols, scales.data(), hq.data(),
                      0.02f, {}, refQuant, 1);
        std::vector<const float *> hp;
        for (const Vector &h : hs)
            hp.push_back(h.data());
        std::vector<Vector> refBatch(hs.size(), Vector(rows));
        {
            std::vector<float *> op;
            for (Vector &o : refBatch)
                op.push_back(o.data());
            gemvBatchInto(w, hp.data(), op.data(), hs.size(), bias, 1);
        }
        const std::vector<Scored> refTopk = topkScored(z, 60);
        const std::vector<Scored> refMerge = mergeTopK(shardLists, 60);

        for (const TuneParams &p : points) {
            setTuneParams(p);
            for (size_t workers : {size_t{1}, size_t{3}, size_t{8}}) {
                Vector gotGemv(rows), gotQuant(rows);
                gemvInto(w, hs[0], bias, gotGemv, workers);
                gemvQuantInto(wq.data(), rows, cols, scales.data(),
                              hq.data(), 0.02f, {}, gotQuant, workers);
                std::vector<Vector> gotBatch(hs.size(), Vector(rows));
                {
                    std::vector<float *> op;
                    for (Vector &o : gotBatch)
                        op.push_back(o.data());
                    gemvBatchInto(w, hp.data(), op.data(), hs.size(), bias,
                                  workers);
                }
                for (size_t r = 0; r < rows; ++r) {
                    ASSERT_EQ(gotGemv[r], refGemv[r])
                        << targetName(t) << " chunk=" << p.gemv_row_chunk
                        << " workers=" << workers << " r=" << r;
                    ASSERT_EQ(gotQuant[r], refQuant[r])
                        << targetName(t) << " chunk=" << p.gemv_row_chunk
                        << " workers=" << workers << " r=" << r;
                }
                for (size_t q = 0; q < hs.size(); ++q)
                    for (size_t r = 0; r < rows; ++r)
                        ASSERT_EQ(gotBatch[q][r], refBatch[q][r])
                            << targetName(t)
                            << " qtile=" << p.batch_query_tile
                            << " workers=" << workers << " q=" << q
                            << " r=" << r;
            }
            ASSERT_EQ(topkScored(z, 60), refTopk)
                << "cutoff=" << p.topk_scan_cutoff;
            ASSERT_EQ(mergeTopK(shardLists, 60), refMerge)
                << "cutoff=" << p.topk_scan_cutoff;
        }
    }
}

} // namespace
} // namespace enmc::tensor::kernels
