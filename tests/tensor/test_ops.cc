/**
 * @file
 * Tests for dense kernels and non-linearities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace enmc::tensor {
namespace {

TEST(Dot, MatchesManual)
{
    Vector a{1, 2, 3, 4, 5};
    Vector b{5, 4, 3, 2, 1};
    EXPECT_FLOAT_EQ(dot(a, b), 5 + 8 + 9 + 8 + 5);
}

TEST(Dot, EmptyIsZero)
{
    Vector a, b;
    EXPECT_FLOAT_EQ(dot(a, b), 0.0f);
}

TEST(Axpy, Accumulates)
{
    Vector x{1, 2, 3};
    Vector y{10, 10, 10};
    axpy(2.0f, x, y);
    EXPECT_FLOAT_EQ(y[0], 12);
    EXPECT_FLOAT_EQ(y[1], 14);
    EXPECT_FLOAT_EQ(y[2], 16);
}

TEST(Gemv, MatchesManualWithBias)
{
    Matrix w(2, 3);
    w(0, 0) = 1; w(0, 1) = 2; w(0, 2) = 3;
    w(1, 0) = -1; w(1, 1) = 0; w(1, 2) = 1;
    Vector h{1, 1, 1};
    Vector b{0.5f, -0.5f};
    Vector z = gemv(w, h, b);
    EXPECT_FLOAT_EQ(z[0], 6.5f);
    EXPECT_FLOAT_EQ(z[1], -0.5f);
}

TEST(Gemv, NoBiasOverload)
{
    Matrix w(1, 2);
    w(0, 0) = 3; w(0, 1) = 4;
    Vector z = gemv(w, Vector{1, 2});
    EXPECT_FLOAT_EQ(z[0], 11);
}

TEST(Matmul, SmallExample)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
    Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19);
    EXPECT_FLOAT_EQ(c(0, 1), 22);
    EXPECT_FLOAT_EQ(c(1, 0), 43);
    EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(Transpose, RoundTrip)
{
    Rng rng(3);
    Matrix a(4, 7);
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            a(i, j) = static_cast<float>(rng.normal());
    Matrix att = transpose(transpose(a));
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            EXPECT_FLOAT_EQ(att(i, j), a(i, j));
}

TEST(Softmax, SumsToOne)
{
    Vector z{1.0f, 2.0f, 3.0f, -1.0f};
    Vector p = softmax(z);
    float sum = 0;
    for (float v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, ShiftInvariant)
{
    Vector z1{1, 2, 3};
    Vector z2{101, 102, 103};
    Vector p1 = softmax(z1), p2 = softmax(z2);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(p1[i], p2[i], 1e-6);
}

TEST(Softmax, LargeMagnitudeStable)
{
    Vector z{1000.0f, 999.0f};
    Vector p = softmax(z);
    EXPECT_TRUE(std::isfinite(p[0]));
    EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-6);
}

TEST(Sigmoid, KnownValues)
{
    Vector p = sigmoid(Vector{0.0f, 100.0f, -100.0f});
    EXPECT_NEAR(p[0], 0.5f, 1e-6);
    EXPECT_NEAR(p[1], 1.0f, 1e-6);
    EXPECT_NEAR(p[2], 0.0f, 1e-6);
}

TEST(LogSumExp, MatchesDirect)
{
    Vector z{0.1f, 0.7f, -0.3f};
    double direct = std::log(std::exp(0.1) + std::exp(0.7) + std::exp(-0.3));
    EXPECT_NEAR(logSumExp(z), direct, 1e-6);
}

TEST(LogSumExp, StableForLargeValues)
{
    Vector z{800.0f, 800.0f};
    EXPECT_NEAR(logSumExp(z), 800.0 + std::log(2.0), 1e-4);
}

/** Taylor exp accuracy over the SFU's working range. */
class TaylorExpTest : public ::testing::TestWithParam<float> {};

TEST_P(TaylorExpTest, RelativeErrorSmall)
{
    const float x = GetParam();
    const float approx = taylorExp4(x);
    const float exact = std::exp(x);
    // 4th-order Taylor after range reduction to |r| <= ln2/2: worst-case
    // relative error ~ r^5/5! ~ 4e-5.
    EXPECT_NEAR(approx / exact, 1.0f, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TaylorExpTest,
                         ::testing::Values(-20.0f, -5.5f, -1.0f, -0.2f, 0.0f,
                                           0.3f, 1.0f, 2.7f, 10.0f, 30.0f));

TEST(TaylorExp, UnderflowToZero)
{
    EXPECT_FLOAT_EQ(taylorExp4(-100.0f), 0.0f);
}

TEST(SoftmaxTaylor, CloseToExactSoftmax)
{
    Vector z{0.5f, -1.0f, 2.0f, 0.0f};
    Vector exact = softmax(z);
    Vector approx = softmaxTaylor(z);
    for (size_t i = 0; i < z.size(); ++i)
        EXPECT_NEAR(approx[i], exact[i], 1e-4);
}

TEST(SigmoidTaylor, CloseToExactSigmoid)
{
    Vector z{-3.0f, 0.0f, 3.0f};
    Vector exact = sigmoid(z);
    Vector approx = sigmoidTaylor(z);
    for (size_t i = 0; i < z.size(); ++i)
        EXPECT_NEAR(approx[i], exact[i], 1e-4);
}

TEST(Mse, Basic)
{
    Vector a{1, 2, 3};
    Vector b{1, 2, 5};
    EXPECT_NEAR(mse(a, b), 4.0 / 3.0, 1e-9);
}

TEST(Norm2, Basic)
{
    EXPECT_NEAR(norm2(Vector{3, 4}), 5.0, 1e-9);
}

TEST(Argmax, FirstOfTies)
{
    EXPECT_EQ(argmax(Vector{1, 3, 3, 2}), 1u);
}

TEST(MatrixClass, RowSpanAndBytes)
{
    Matrix m(3, 4);
    m(1, 2) = 7.0f;
    auto row = m.row(1);
    EXPECT_EQ(row.size(), 4u);
    EXPECT_FLOAT_EQ(row[2], 7.0f);
    EXPECT_EQ(m.bytes(), 3 * 4 * sizeof(float));
}

TEST(MatrixDeathTest, RowOutOfRange)
{
    Matrix m(2, 2);
    EXPECT_DEATH((void)m.row(2), "row out of range");
}

} // namespace
} // namespace enmc::tensor

namespace enmc::tensor {
namespace {

/** taylorExp4 must be strictly increasing over a dense sweep. */
TEST(TaylorExp, MonotonicOverWorkingRange)
{
    float prev = taylorExp4(-30.0f);
    for (float x = -29.9f; x < 30.0f; x += 0.1f) {
        const float v = taylorExp4(x);
        ASSERT_GE(v, prev) << "x = " << x;
        prev = v;
    }
}

/** exp(a + b) == exp(a) * exp(b) within the SFU's error budget. */
TEST(TaylorExp, HomomorphismApproximatelyHolds)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const float a = static_cast<float>(rng.uniform(-8.0, 8.0));
        const float b = static_cast<float>(rng.uniform(-8.0, 8.0));
        const float lhs = taylorExp4(a + b);
        const float rhs = taylorExp4(a) * taylorExp4(b);
        ASSERT_NEAR(lhs / rhs, 1.0f, 5e-4f) << a << " " << b;
    }
}

/** Softmax of the SFU and exact softmax rank identically. */
TEST(SoftmaxTaylor, PreservesRanking)
{
    Rng rng(5);
    Vector z(256);
    for (auto &v : z)
        v = static_cast<float>(rng.normal(0.0, 2.0));
    const Vector exact = softmax(z);
    const Vector approx = softmaxTaylor(z);
    EXPECT_EQ(argmax(exact), argmax(approx));
    // Spot-check pairwise order on the top entries.
    const auto top = topkIndices(z, 16);
    for (size_t i = 0; i + 1 < top.size(); ++i)
        EXPECT_GE(approx[top[i]] + 1e-7f, approx[top[i + 1]]);
}

} // namespace
} // namespace enmc::tensor
