/**
 * @file
 * Tests for the Achlioptas sparse random projection.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/projection.h"

namespace enmc::tensor {
namespace {

Vector
randomVector(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

TEST(SparseProjection, Dimensions)
{
    Rng rng(1);
    SparseProjection p(16, 64, rng);
    EXPECT_EQ(p.outputDim(), 16u);
    EXPECT_EQ(p.inputDim(), 64u);
    const Vector y = p.apply(randomVector(64, 2));
    EXPECT_EQ(y.size(), 16u);
}

TEST(SparseProjection, MatchesDenseEquivalent)
{
    Rng rng(3);
    SparseProjection p(8, 32, rng);
    const Matrix dense = p.toDense();
    const Vector h = randomVector(32, 5);
    const Vector sparse_y = p.apply(h);
    const Vector dense_y = gemv(dense, h);
    for (size_t i = 0; i < sparse_y.size(); ++i)
        EXPECT_NEAR(sparse_y[i], dense_y[i], 1e-4f);
}

TEST(SparseProjection, DensityIsOneThird)
{
    Rng rng(7);
    SparseProjection p(64, 256, rng);
    const double density =
        static_cast<double>(p.nonZeros()) / (64.0 * 256.0);
    EXPECT_NEAR(density, 1.0 / 3.0, 0.03);
}

TEST(SparseProjection, EntriesHaveCorrectScale)
{
    Rng rng(9);
    SparseProjection p(12, 24, rng);
    const Matrix dense = p.toDense();
    const float expected = std::sqrt(3.0f / 12.0f);
    for (size_t i = 0; i < dense.rows(); ++i) {
        for (size_t j = 0; j < dense.cols(); ++j) {
            const float v = dense(i, j);
            EXPECT_TRUE(v == 0.0f || std::fabs(std::fabs(v) - expected) <
                                         1e-6f);
        }
    }
}

TEST(SparseProjection, DeterministicFromRngState)
{
    Rng r1(11), r2(11);
    SparseProjection p1(8, 16, r1), p2(8, 16, r2);
    const Vector h = randomVector(16, 13);
    const Vector y1 = p1.apply(h), y2 = p2.apply(h);
    for (size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

/**
 * Johnson-Lindenstrauss property: squared norms are preserved in
 * expectation; relative distortion shrinks as k grows.
 */
class JlProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(JlProperty, NormPreservedOnAverage)
{
    const size_t k = GetParam();
    Rng rng(17);
    SparseProjection p(k, 512, rng);
    double ratio_sum = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        const Vector h = randomVector(512, 100 + t);
        const double hn = norm2(h);
        const double yn = norm2(p.apply(h));
        ratio_sum += (yn * yn) / (hn * hn);
    }
    // E[|Ph|^2] = |h|^2; the mean over 50 trials should be near 1.
    EXPECT_NEAR(ratio_sum / trials, 1.0, 5.0 / std::sqrt(double(k)));
}

INSTANTIATE_TEST_SUITE_P(Ks, JlProperty,
                         ::testing::Values(16, 64, 128, 256));

TEST(SparseProjection, InnerProductPreservedStatistically)
{
    Rng rng(19);
    const size_t k = 128, d = 512;
    SparseProjection p(k, d, rng);
    double err = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        const Vector a = randomVector(d, 200 + t);
        const Vector b = randomVector(d, 300 + t);
        const float exact = dot(a, b);
        const float proj = dot(p.apply(a), p.apply(b));
        err += std::fabs(exact - proj) / (norm2(a) * norm2(b));
    }
    // JL distortion of inner products ~ 1/sqrt(k) ~ 0.09 at k = 128.
    EXPECT_LT(err / trials, 0.2);
}

TEST(SparseProjection, PackedBytesIsTwoBitsPerEntry)
{
    Rng rng(23);
    SparseProjection p(10, 100, rng);
    EXPECT_EQ(p.packedBytes(), (10u * 100u * 2u + 7u) / 8u);
}

} // namespace
} // namespace enmc::tensor
