/**
 * @file
 * Tests for the Cholesky SPD solver.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/solve.h"

namespace enmc::tensor {
namespace {

/** A random SPD matrix A = B Bᵀ + eps I. */
Matrix
randomSpd(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix b(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            b(i, j) = static_cast<float>(rng.normal());
    Matrix a = matmul(b, transpose(b));
    for (size_t i = 0; i < n; ++i)
        a(i, i) += 0.1f;
    return a;
}

TEST(Cholesky, ReconstructsMatrix)
{
    const Matrix a = randomSpd(8, 3);
    const Matrix l = cholesky(a);
    const Matrix llt = matmul(l, transpose(l));
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            EXPECT_NEAR(llt(i, j), a(i, j), 1e-3f);
}

TEST(Cholesky, LowerTriangular)
{
    const Matrix l = cholesky(randomSpd(6, 5));
    for (size_t i = 0; i < l.rows(); ++i)
        for (size_t j = i + 1; j < l.cols(); ++j)
            EXPECT_FLOAT_EQ(l(i, j), 0.0f);
}

TEST(CholeskySolve, RecoversKnownSolution)
{
    const Matrix a = randomSpd(10, 7);
    Rng rng(9);
    Vector x_true(10);
    for (auto &v : x_true)
        v = static_cast<float>(rng.normal());
    // b = A x.
    Vector b = gemv(a, x_true);
    const Vector x = choleskySolve(cholesky(a), b);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-2f);
}

TEST(SpdSolve, MultipleRightHandSides)
{
    const Matrix a = randomSpd(6, 11);
    Rng rng(13);
    Matrix x_true(6, 3);
    for (size_t i = 0; i < 6; ++i)
        for (size_t j = 0; j < 3; ++j)
            x_true(i, j) = static_cast<float>(rng.normal());
    const Matrix b = matmul(a, x_true);
    const Matrix x = spdSolve(a, b);
    for (size_t i = 0; i < 6; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(x(i, j), x_true(i, j), 1e-2f);
}

TEST(SpdSolve, IdentitySolvesToRhs)
{
    Matrix eye(4, 4);
    for (size_t i = 0; i < 4; ++i)
        eye(i, i) = 1.0f;
    Matrix b(4, 2);
    b(0, 0) = 1.0f;
    b(3, 1) = -2.0f;
    const Matrix x = spdSolve(eye, b);
    EXPECT_FLOAT_EQ(x(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(x(3, 1), -2.0f);
}

TEST(CholeskyDeathTest, RejectsIndefinite)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0f; a(0, 1) = 2.0f;
    a(1, 0) = 2.0f; a(1, 1) = 1.0f; // eigenvalues 3, -1
    EXPECT_DEATH((void)cholesky(a), "not SPD");
}

} // namespace
} // namespace enmc::tensor
