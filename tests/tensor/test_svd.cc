/**
 * @file
 * Tests for the thin SVD (SVD-softmax's offline decomposition).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/svd.h"

namespace enmc::tensor {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j)
            m(i, j) = static_cast<float>(rng.normal());
    return m;
}

TEST(JacobiEigen, DiagonalizesSymmetric)
{
    // Known eigensystem: [[2,1],[1,2]] -> eigenvalues 3 and 1.
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
    Matrix v;
    const auto eig = jacobiEigenSymmetric(a, v);
    EXPECT_NEAR(eig[0], 3.0f, 1e-5f);
    EXPECT_NEAR(eig[1], 1.0f, 1e-5f);
}

TEST(JacobiEigen, EigenvectorsSatisfyDefinition)
{
    const Matrix b = randomMatrix(6, 6, 3);
    Matrix a = matmul(b, transpose(b)); // SPD
    Matrix v;
    const auto eig = jacobiEigenSymmetric(a, v);
    for (size_t j = 0; j < 6; ++j) {
        Vector col(6);
        for (size_t i = 0; i < 6; ++i)
            col[i] = v(i, j);
        const Vector av = gemv(a, col);
        for (size_t i = 0; i < 6; ++i)
            EXPECT_NEAR(av[i], eig[j] * col[i], 1e-2f)
                << "pair " << j << " row " << i;
    }
}

TEST(ThinSvd, ReconstructsMatrix)
{
    const Matrix w = randomMatrix(40, 8, 7);
    const SvdResult svd = thinSvd(w);
    // W ?= U diag(sigma) Vᵀ.
    const Matrix us = svd.uSigma();
    const Matrix rec = matmul(us, transpose(svd.v));
    double err = 0.0, ref = 0.0;
    for (size_t i = 0; i < w.rows(); ++i) {
        for (size_t j = 0; j < w.cols(); ++j) {
            err += std::pow(rec(i, j) - w(i, j), 2.0);
            ref += std::pow(w(i, j), 2.0);
        }
    }
    EXPECT_LT(std::sqrt(err / ref), 1e-3);
}

TEST(ThinSvd, SingularValuesDescendingNonNegative)
{
    const SvdResult svd = thinSvd(randomMatrix(30, 6, 11));
    for (size_t i = 0; i + 1 < svd.sigma.size(); ++i) {
        EXPECT_GE(svd.sigma[i], svd.sigma[i + 1]);
        EXPECT_GE(svd.sigma[i + 1], 0.0f);
    }
}

TEST(ThinSvd, UColumnsOrthonormal)
{
    const SvdResult svd = thinSvd(randomMatrix(50, 5, 13));
    for (size_t a = 0; a < 5; ++a) {
        for (size_t b = a; b < 5; ++b) {
            double d = 0.0;
            for (size_t i = 0; i < 50; ++i)
                d += static_cast<double>(svd.u(i, a)) * svd.u(i, b);
            EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-3)
                << "columns " << a << "," << b;
        }
    }
}

TEST(ThinSvd, VColumnsOrthonormal)
{
    const SvdResult svd = thinSvd(randomMatrix(50, 5, 17));
    for (size_t a = 0; a < 5; ++a) {
        for (size_t b = a; b < 5; ++b) {
            double d = 0.0;
            for (size_t i = 0; i < 5; ++i)
                d += static_cast<double>(svd.v(i, a)) * svd.v(i, b);
            EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-3);
        }
    }
}

TEST(ThinSvd, LowRankMatrixHasSmallTailSingularValues)
{
    // Rank-2 matrix: outer products of two vectors.
    const size_t l = 24, d = 6;
    Rng rng(19);
    Matrix w(l, d);
    Vector u1(l), u2(l), v1(d), v2(d);
    for (auto &x : u1) x = static_cast<float>(rng.normal());
    for (auto &x : u2) x = static_cast<float>(rng.normal());
    for (auto &x : v1) x = static_cast<float>(rng.normal());
    for (auto &x : v2) x = static_cast<float>(rng.normal());
    for (size_t i = 0; i < l; ++i)
        for (size_t j = 0; j < d; ++j)
            w(i, j) = u1[i] * v1[j] + u2[i] * v2[j];

    const SvdResult svd = thinSvd(w);
    EXPECT_GT(svd.sigma[1], 1e-3f);
    for (size_t j = 2; j < d; ++j)
        EXPECT_LT(svd.sigma[j], 1e-2f * svd.sigma[0]);
}

TEST(ThinSvd, PreviewMatrixEnergyConcentratesInLeadingColumns)
{
    // The SVD-softmax premise: B = U Σ has its column energy sorted.
    const SvdResult svd = thinSvd(randomMatrix(60, 8, 23));
    const Matrix b = svd.uSigma();
    auto col_energy = [&](size_t j) {
        double e = 0.0;
        for (size_t i = 0; i < b.rows(); ++i)
            e += static_cast<double>(b(i, j)) * b(i, j);
        return e;
    };
    for (size_t j = 0; j + 1 < b.cols(); ++j)
        EXPECT_GE(col_energy(j) + 1e-9, col_energy(j + 1));
}

} // namespace
} // namespace enmc::tensor
