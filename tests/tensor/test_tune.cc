/**
 * @file
 * Tests for the enmc.tune persistence layer: round-trip through the
 * JSON document, microarch keying, fail-loud schema validation, and the
 * ENMC_TUNE_JSON load path (including the ENMC_KERNELS-wins rule).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/json.h"
#include "tensor/kernels.h"
#include "tensor/tune.h"

namespace enmc::tensor::tune {
namespace {

/** Restores dispatch target and tune params after each test. */
class TuneTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        kernels::setActiveTarget(saved_);
        kernels::setTuneParams(saved_tune_);
    }
    kernels::Target saved_ = kernels::activeTarget();
    kernels::TuneParams saved_tune_ = kernels::tune();
};

TunedConfig
sampleConfig()
{
    TunedConfig cfg;
    cfg.host.gemv_row_chunk = 512;
    cfg.host.gemv_parallel_min_work = 1u << 20;
    cfg.host.batch_query_tile = 4;
    cfg.host.batch_row_tile = 256;
    cfg.host.topk_scan_cutoff = 4096;
    cfg.kernels_target = "scalar";
    SimTune st;
    st.ranks_per_channel = 8;
    st.int4_macs = 256;
    st.inst_fifo_depth = 32;
    st.prefetch_tiles = 4;
    st.ddr_cycles = 123456;
    cfg.sim = st;
    return cfg;
}

/** Writes `text` to a unique temp file; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &text)
    {
        path_ = ::testing::TempDir() + "enmc_tune_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter()++) + ".json";
        std::ofstream out(path_);
        out << text;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    static int &counter()
    {
        static int c = 0;
        return c;
    }
    std::string path_;
};

TEST_F(TuneTest, ConfigRoundTripsThroughJson)
{
    const TunedConfig cfg = sampleConfig();
    const TunedConfig back = configFromJson(configToJson(cfg));
    EXPECT_EQ(back.host, cfg.host);
    EXPECT_EQ(back.kernels_target, cfg.kernels_target);
    ASSERT_TRUE(back.sim.has_value());
    EXPECT_EQ(*back.sim, *cfg.sim);
}

TEST_F(TuneTest, DocumentRoundTripsThroughText)
{
    const TunedConfig cfg = sampleConfig();
    const obs::Json doc = makeDocument("intel-f6m106-avx512", cfg);
    obs::Json parsed;
    ASSERT_TRUE(obs::Json::parse(doc.dump(2), parsed, nullptr));
    const auto found = findConfig(parsed, "intel-f6m106-avx512");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->host, cfg.host);
    EXPECT_EQ(found->sim, cfg.sim);
}

TEST_F(TuneTest, FindConfigReturnsNulloptForOtherMicroarch)
{
    const obs::Json doc = makeDocument("amd-f25m1-avx2", sampleConfig());
    EXPECT_FALSE(findConfig(doc, "intel-f6m106-avx512").has_value());
}

TEST_F(TuneTest, MicroarchKeyIsStableAndNamesBestTarget)
{
    const std::string &key = kernels::microarchKey();
    ASSERT_FALSE(key.empty());
    EXPECT_EQ(&key, &kernels::microarchKey()) << "must be cached";
    const std::string best =
        kernels::targetName(kernels::availableTargets().back());
    EXPECT_NE(key.find(best), std::string::npos)
        << "key '" << key << "' should end in '" << best << "'";
}

TEST_F(TuneTest, MinimalConfigKeepsDefaults)
{
    obs::Json entry = obs::Json::object();
    entry.set("host", obs::Json::object());
    const TunedConfig cfg = configFromJson(entry);
    EXPECT_EQ(cfg.host, kernels::TuneParams{});
    EXPECT_TRUE(cfg.kernels_target.empty());
    EXPECT_FALSE(cfg.sim.has_value());
}

TEST_F(TuneTest, LoadAndApplyInstallsHostParams)
{
    TunedConfig cfg = sampleConfig();
    cfg.kernels_target.clear(); // keep dispatch untouched
    const TempFile f(makeDocument(kernels::microarchKey(), cfg).dump(2));
    EXPECT_TRUE(loadAndApply(f.path()));
    EXPECT_EQ(kernels::tune(), cfg.host);
}

TEST_F(TuneTest, LoadAndApplyPinsKernelTarget)
{
    const kernels::Target before = kernels::activeTarget();
    TunedConfig cfg = sampleConfig(); // pins "scalar"
    const TempFile f(makeDocument(kernels::microarchKey(), cfg).dump(2));
    // ENMC_KERNELS may be set in the environment of a forced-target CI
    // job, in which case the pin must NOT be applied.
    const char *forced = std::getenv("ENMC_KERNELS");
    EXPECT_TRUE(loadAndApply(f.path()));
    if (forced != nullptr && *forced != '\0')
        EXPECT_EQ(kernels::activeTarget(), before);
    else
        EXPECT_EQ(kernels::activeTarget(), kernels::Target::Scalar);
}

TEST_F(TuneTest, LoadKeepsDefaultsForForeignMicroarch)
{
    const kernels::TuneParams before = kernels::tune();
    const TempFile f(
        makeDocument("nonesuch-f0m0-scalar", sampleConfig()).dump(2));
    EXPECT_FALSE(loadAndApply(f.path()));
    EXPECT_EQ(kernels::tune(), before);
}

using TuneDeathTest = TuneTest;

TEST_F(TuneDeathTest, MissingFileIsFatal)
{
    EXPECT_DEATH(loadAndApply("/nonexistent/enmc_tune.json"),
                 "cannot read tune config");
}

TEST_F(TuneDeathTest, InvalidJsonIsFatal)
{
    const TempFile f("{not json");
    EXPECT_DEATH(loadAndApply(f.path()), "not valid JSON");
}

TEST_F(TuneDeathTest, WrongSchemaIsFatal)
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", "enmc.metrics");
    const TempFile f(doc.dump());
    EXPECT_DEATH(loadAndApply(f.path()), "enmc.tune");
}

TEST_F(TuneDeathTest, WrongVersionIsFatal)
{
    obs::Json doc = makeDocument("k", sampleConfig());
    doc.set("schema_version", uint64_t{2});
    EXPECT_DEATH(findConfig(doc, "k"), "schema_version");
}

TEST_F(TuneDeathTest, UnknownKernelTargetIsFatal)
{
    obs::Json entry = obs::Json::object();
    entry.set("host", obs::Json::object());
    entry.set("kernels", "avx999");
    EXPECT_DEATH(configFromJson(entry), "unknown kernel target");
}

TEST_F(TuneDeathTest, ZeroTileIsFatal)
{
    obs::Json host = obs::Json::object();
    host.set("gemv_row_chunk", uint64_t{0});
    obs::Json entry = obs::Json::object();
    entry.set("host", std::move(host));
    EXPECT_DEATH(configFromJson(entry), "must be positive");
}

TEST_F(TuneDeathTest, NegativeFieldIsFatal)
{
    obs::Json host = obs::Json::object();
    host.set("batch_query_tile", int64_t{-3});
    obs::Json entry = obs::Json::object();
    entry.set("host", std::move(host));
    EXPECT_DEATH(configFromJson(entry), "non-negative");
}

} // namespace
} // namespace enmc::tensor::tune
