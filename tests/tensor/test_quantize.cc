/**
 * @file
 * Tests for fixed-point quantization (the Screener's INT datapath).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"

namespace enmc::tensor {
namespace {

Vector
randomVector(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

TEST(QuantBits, Levels)
{
    EXPECT_EQ(quantMaxLevel(QuantBits::Int8), 127);
    EXPECT_EQ(quantMaxLevel(QuantBits::Int4), 7);
    EXPECT_EQ(quantMaxLevel(QuantBits::Int2), 1);
    EXPECT_EQ(quantBitCount(QuantBits::Int4), 4);
    EXPECT_EQ(quantBitCount(QuantBits::Fp32), 0);
}

/** Round-trip error bound: |x - deq(q(x))| <= scale / 2 element-wise. */
class QuantRoundTrip : public ::testing::TestWithParam<QuantBits> {};

TEST_P(QuantRoundTrip, VectorErrorBounded)
{
    const QuantBits bits = GetParam();
    const Vector v = randomVector(256, 11);
    const QuantizedVector q = quantize(v, bits);
    const Vector back = q.dequantize();
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_LE(std::fabs(v[i] - back[i]), q.scale * 0.5f + 1e-6f)
            << "element " << i;
}

TEST_P(QuantRoundTrip, ValuesWithinLevelRange)
{
    const QuantBits bits = GetParam();
    const Vector v = randomVector(256, 13);
    const QuantizedVector q = quantize(v, bits);
    const int max_level = quantMaxLevel(bits);
    for (int8_t qv : q.values) {
        EXPECT_GE(qv, -max_level);
        EXPECT_LE(qv, max_level);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, QuantRoundTrip,
                         ::testing::Values(QuantBits::Int8, QuantBits::Int4,
                                           QuantBits::Int2));

TEST(Quantize, ZeroVectorHasUnitScale)
{
    Vector v(16, 0.0f);
    const QuantizedVector q = quantize(v, QuantBits::Int4);
    EXPECT_FLOAT_EQ(q.scale, 1.0f);
    for (int8_t qv : q.values)
        EXPECT_EQ(qv, 0);
}

TEST(Quantize, MatrixPerRowScales)
{
    Matrix m(2, 2);
    m(0, 0) = 1.0f; m(0, 1) = -1.0f;   // small row
    m(1, 0) = 100.0f; m(1, 1) = 50.0f; // large row
    const QuantizedMatrix q = quantize(m, QuantBits::Int4);
    EXPECT_LT(q.scales[0], q.scales[1]);
    // Max element of each row maps to the max level.
    EXPECT_EQ(q.values[0], 7);
    EXPECT_EQ(q.values[2], 7);
}

TEST(Quantize, MatrixDequantizeError)
{
    Rng rng(17);
    Matrix m(8, 32);
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            m(i, j) = static_cast<float>(rng.normal(0.0, 2.0));
    const QuantizedMatrix q = quantize(m, QuantBits::Int8);
    const Matrix back = q.dequantize();
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            EXPECT_LE(std::fabs(m(i, j) - back(i, j)),
                      q.scales[i] * 0.5f + 1e-6f);
}

TEST(Quantize, PackedBytesInt4)
{
    const Vector v = randomVector(100, 3);
    const QuantizedVector q = quantize(v, QuantBits::Int4);
    // 100 * 4 bits = 50 bytes + 4-byte scale.
    EXPECT_EQ(q.packedBytes(), 50u + sizeof(float));
}

TEST(Quantize, PackedBytesMatrix)
{
    Matrix m(4, 16);
    const QuantizedMatrix q = quantize(m, QuantBits::Int2);
    // 64 * 2 bits = 16 bytes + 4 row scales.
    EXPECT_EQ(q.packedBytes(), 16u + 4 * sizeof(float));
}

TEST(GemvQuantized, MatchesDequantizedGemv)
{
    Rng rng(19);
    Matrix w(16, 32);
    for (size_t i = 0; i < w.rows(); ++i)
        for (size_t j = 0; j < w.cols(); ++j)
            w(i, j) = static_cast<float>(rng.normal());
    const Vector h = randomVector(32, 23);
    Vector b(16, 0.25f);

    const QuantizedMatrix wq = quantize(w, QuantBits::Int4);
    const QuantizedVector hq = quantize(h, QuantBits::Int4);

    // Integer-accumulate result must equal the FP32 GEMV of the
    // *dequantized* operands exactly (same arithmetic, different order is
    // exact in int).
    const Vector z_int = gemvQuantized(wq, hq, b);
    const Vector z_ref = gemv(wq.dequantize(), hq.dequantize(), b);
    for (size_t i = 0; i < z_int.size(); ++i)
        EXPECT_NEAR(z_int[i], z_ref[i], 1e-3f) << "row " << i;
}

TEST(GemvQuantized, ApproximatesFp32Gemv)
{
    Rng rng(29);
    Matrix w(32, 64);
    for (size_t i = 0; i < w.rows(); ++i)
        for (size_t j = 0; j < w.cols(); ++j)
            w(i, j) = static_cast<float>(rng.normal());
    const Vector h = randomVector(64, 31);

    const Vector exact = gemv(w, h);
    const Vector approx = gemvQuantized(quantize(w, QuantBits::Int8),
                                        quantize(h, QuantBits::Int8), {});
    // INT8 quantization keeps the GEMV within a few percent of the
    // exact result at these magnitudes.
    double err = 0.0, ref = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
        err += std::pow(exact[i] - approx[i], 2.0);
        ref += std::pow(exact[i], 2.0);
    }
    EXPECT_LT(std::sqrt(err / ref), 0.05);
}

TEST(GemvQuantized, CoarserBitsLargerError)
{
    Rng rng(37);
    Matrix w(64, 64);
    for (size_t i = 0; i < w.rows(); ++i)
        for (size_t j = 0; j < w.cols(); ++j)
            w(i, j) = static_cast<float>(rng.normal());
    const Vector h = randomVector(64, 41);
    const Vector exact = gemv(w, h);

    auto rmse = [&](QuantBits bits) {
        const Vector z = gemvQuantized(quantize(w, bits),
                                       quantize(h, bits), {});
        return std::sqrt(mse(z, exact));
    };
    const double e8 = rmse(QuantBits::Int8);
    const double e4 = rmse(QuantBits::Int4);
    const double e2 = rmse(QuantBits::Int2);
    EXPECT_LT(e8, e4);
    EXPECT_LT(e4, e2);
}

TEST(QuantizeDeathTest, Fp32Rejected)
{
    Vector v{1.0f};
    EXPECT_DEATH((void)quantize(v, QuantBits::Fp32), "Fp32");
}

} // namespace
} // namespace enmc::tensor
