/**
 * @file
 * Tests for top-k / threshold selection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/topk.h"

namespace enmc::tensor {
namespace {

TEST(TopK, BasicOrder)
{
    std::vector<float> z{0.1f, 0.9f, 0.5f, 0.7f};
    const auto idx = topkIndices(z, 2);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
}

TEST(TopK, KLargerThanN)
{
    std::vector<float> z{2.0f, 1.0f};
    const auto idx = topkIndices(z, 10);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
}

TEST(TopK, TiesBrokenByLowerIndex)
{
    std::vector<float> z{5.0f, 5.0f, 5.0f};
    const auto idx = topkIndices(z, 2);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
}

TEST(TopK, MatchesFullSortOnRandomData)
{
    Rng rng(5);
    std::vector<float> z(500);
    for (auto &v : z)
        v = static_cast<float>(rng.normal());
    const auto idx = topkIndices(z, 50);

    std::vector<float> sorted = z;
    std::sort(sorted.begin(), sorted.end(), std::greater<float>());
    for (size_t i = 0; i < idx.size(); ++i)
        EXPECT_FLOAT_EQ(z[idx[i]], sorted[i]);
}

TEST(TopK, ZeroKIsEmpty)
{
    std::vector<float> z{1.0f, 2.0f};
    EXPECT_TRUE(topkIndices(z, 0).empty());
}

TEST(TopK, ManyDuplicatesKeepLowestIndices)
{
    // All-equal values exercise the bounded-heap path's tie handling:
    // the kept set must be exactly the k lowest indices, ascending.
    std::vector<float> z(100, 1.5f);
    const auto idx = topkIndices(z, 10);
    ASSERT_EQ(idx.size(), 10u);
    for (uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(idx[i], i);
}

TEST(TopKScored, CarriesValuesAndOffsets)
{
    std::vector<float> z{0.1f, 0.9f, 0.5f};
    const auto scored = topkScored(z, 2, /*index_offset=*/100);
    ASSERT_EQ(scored.size(), 2u);
    EXPECT_EQ(scored[0].index, 101u);
    EXPECT_FLOAT_EQ(scored[0].value, 0.9f);
    EXPECT_EQ(scored[1].index, 102u);
    EXPECT_FLOAT_EQ(scored[1].value, 0.5f);
}

TEST(MergeTopK, BasicAcrossTwoShards)
{
    // Shard 0 owns rows [0,3), shard 1 owns rows [3,6).
    std::vector<float> a{0.1f, 0.8f, 0.3f};
    std::vector<float> b{0.9f, 0.2f, 0.7f};
    std::vector<std::vector<Scored>> shards{topkScored(a, 3, 0),
                                            topkScored(b, 3, 3)};
    const auto merged = mergeTopK(shards, 3);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].index, 3u); // 0.9
    EXPECT_EQ(merged[1].index, 1u); // 0.8
    EXPECT_EQ(merged[2].index, 5u); // 0.7
}

TEST(MergeTopK, TiesAcrossShardsBreakByGlobalIndex)
{
    std::vector<float> a{5.0f, 1.0f};
    std::vector<float> b{5.0f, 5.0f};
    std::vector<std::vector<Scored>> shards{topkScored(a, 3, 0),
                                            topkScored(b, 3, 2)};
    const auto merged = mergeTopK(shards, 3);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].index, 0u);
    EXPECT_EQ(merged[1].index, 2u);
    EXPECT_EQ(merged[2].index, 3u);
}

TEST(MergeTopK, EmptyAndShortShards)
{
    std::vector<float> only{0.4f};
    std::vector<std::vector<Scored>> shards{{}, topkScored(only, 5, 7), {}};
    const auto merged = mergeTopK(shards, 5);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].index, 7u);
    EXPECT_TRUE(mergeTopK({}, 5).empty());
    EXPECT_TRUE(mergeTopK(shards, 0).empty());
}

TEST(MergeTopK, MatchesGlobalTopKOnRandomPartitions)
{
    // Partition invariance: merging per-shard top-k lists must equal the
    // unsharded top-k, for any shard layout — the property the cluster
    // router's scatter/gather correctness rests on.
    Rng rng(13);
    std::vector<float> z(400);
    for (auto &v : z)
        v = static_cast<float>(rng.normal());
    // Inject duplicates so cross-shard ties are actually exercised.
    for (size_t i = 0; i < z.size(); i += 17)
        z[i] = 1.25f;

    for (const size_t parts : {1u, 2u, 3u, 7u, 32u, 400u}) {
        for (const size_t k : {1u, 5u, 64u, 500u}) {
            std::vector<std::vector<Scored>> shards;
            const size_t rows = (z.size() + parts - 1) / parts;
            for (size_t begin = 0; begin < z.size(); begin += rows) {
                const size_t n = std::min(rows, z.size() - begin);
                shards.push_back(topkScored(
                    std::span<const float>(z.data() + begin, n), k,
                    static_cast<uint32_t>(begin)));
            }
            const auto merged = mergeTopK(shards, k);
            const auto ref = topkIndices(z, k);
            ASSERT_EQ(merged.size(), ref.size())
                << "parts=" << parts << " k=" << k;
            for (size_t i = 0; i < ref.size(); ++i) {
                EXPECT_EQ(merged[i].index, ref[i])
                    << "parts=" << parts << " k=" << k << " i=" << i;
                EXPECT_FLOAT_EQ(merged[i].value, z[ref[i]]);
            }
        }
    }
}

TEST(Threshold, SelectsAllAtOrAbove)
{
    std::vector<float> z{1.0f, 3.0f, 2.0f, 3.0f};
    const auto idx = thresholdIndices(z, 3.0f);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
}

TEST(Threshold, EmptyWhenAboveMax)
{
    std::vector<float> z{1.0f, 2.0f};
    EXPECT_TRUE(thresholdIndices(z, 10.0f).empty());
}

TEST(ThresholdForCount, PicksMthLargest)
{
    std::vector<float> z{4.0f, 1.0f, 3.0f, 2.0f};
    EXPECT_FLOAT_EQ(thresholdForCount(z, 1), 4.0f);
    EXPECT_FLOAT_EQ(thresholdForCount(z, 2), 3.0f);
    EXPECT_FLOAT_EQ(thresholdForCount(z, 4), 1.0f);
}

TEST(ThresholdForCount, MLargerThanNReturnsMin)
{
    std::vector<float> z{4.0f, 1.0f};
    EXPECT_FLOAT_EQ(thresholdForCount(z, 10), 1.0f);
}

TEST(ThresholdForCount, ConsistentWithThresholdIndices)
{
    Rng rng(7);
    std::vector<float> z(200);
    for (auto &v : z)
        v = static_cast<float>(rng.normal());
    for (size_t m : {1u, 5u, 50u, 199u}) {
        const float cut = thresholdForCount(z, m);
        const auto selected = thresholdIndices(z, cut);
        // At least m entries are >= the m-th largest value.
        EXPECT_GE(selected.size(), m);
    }
}

TEST(ThresholdForCount, ConcurrentCallersMatchSerial)
{
    // The selection scratch buffers are thread_local; concurrent callers
    // (the FILTER tuning path under parallelFor) must get the same cuts
    // as a serial sweep, with no cross-thread interference.
    Rng rng(11);
    constexpr size_t kVectors = 64;
    std::vector<std::vector<float>> zs(kVectors);
    std::vector<size_t> ms(kVectors);
    for (size_t v = 0; v < kVectors; ++v) {
        zs[v].resize(50 + 13 * v);
        for (auto &x : zs[v])
            x = static_cast<float>(rng.normal());
        ms[v] = 1 + v % 40;
    }

    std::vector<float> serial(kVectors);
    for (size_t v = 0; v < kVectors; ++v)
        serial[v] = thresholdForCount(zs[v], ms[v]);

    std::vector<float> concurrent(kVectors);
    parallelFor(0, kVectors, 8, [&](size_t v) {
        // Repeat to exercise scratch reuse within one worker thread.
        for (int r = 0; r < 4; ++r)
            concurrent[v] = thresholdForCount(zs[v], ms[v]);
    });
    for (size_t v = 0; v < kVectors; ++v)
        EXPECT_EQ(concurrent[v], serial[v]) << "vector " << v;
}

TEST(Recall, FullAndPartial)
{
    std::vector<uint32_t> ref{1, 2, 3, 4};
    std::vector<uint32_t> all{4, 3, 2, 1};
    std::vector<uint32_t> half{1, 2, 9, 10};
    EXPECT_DOUBLE_EQ(recall(all, ref), 1.0);
    EXPECT_DOUBLE_EQ(recall(half, ref), 0.5);
    EXPECT_DOUBLE_EQ(recall({}, ref), 0.0);
}

TEST(Recall, EmptyReferenceIsPerfect)
{
    std::vector<uint32_t> sel{1, 2};
    EXPECT_DOUBLE_EQ(recall(sel, {}), 1.0);
}

} // namespace
} // namespace enmc::tensor
