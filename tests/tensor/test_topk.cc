/**
 * @file
 * Tests for top-k / threshold selection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/topk.h"

namespace enmc::tensor {
namespace {

TEST(TopK, BasicOrder)
{
    std::vector<float> z{0.1f, 0.9f, 0.5f, 0.7f};
    const auto idx = topkIndices(z, 2);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
}

TEST(TopK, KLargerThanN)
{
    std::vector<float> z{2.0f, 1.0f};
    const auto idx = topkIndices(z, 10);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
}

TEST(TopK, TiesBrokenByLowerIndex)
{
    std::vector<float> z{5.0f, 5.0f, 5.0f};
    const auto idx = topkIndices(z, 2);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
}

TEST(TopK, MatchesFullSortOnRandomData)
{
    Rng rng(5);
    std::vector<float> z(500);
    for (auto &v : z)
        v = static_cast<float>(rng.normal());
    const auto idx = topkIndices(z, 50);

    std::vector<float> sorted = z;
    std::sort(sorted.begin(), sorted.end(), std::greater<float>());
    for (size_t i = 0; i < idx.size(); ++i)
        EXPECT_FLOAT_EQ(z[idx[i]], sorted[i]);
}

TEST(TopK, ZeroKIsEmpty)
{
    std::vector<float> z{1.0f, 2.0f};
    EXPECT_TRUE(topkIndices(z, 0).empty());
}

TEST(TopK, ManyDuplicatesKeepLowestIndices)
{
    // All-equal values exercise the bounded-heap path's tie handling:
    // the kept set must be exactly the k lowest indices, ascending.
    std::vector<float> z(100, 1.5f);
    const auto idx = topkIndices(z, 10);
    ASSERT_EQ(idx.size(), 10u);
    for (uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(idx[i], i);
}

TEST(Threshold, SelectsAllAtOrAbove)
{
    std::vector<float> z{1.0f, 3.0f, 2.0f, 3.0f};
    const auto idx = thresholdIndices(z, 3.0f);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
}

TEST(Threshold, EmptyWhenAboveMax)
{
    std::vector<float> z{1.0f, 2.0f};
    EXPECT_TRUE(thresholdIndices(z, 10.0f).empty());
}

TEST(ThresholdForCount, PicksMthLargest)
{
    std::vector<float> z{4.0f, 1.0f, 3.0f, 2.0f};
    EXPECT_FLOAT_EQ(thresholdForCount(z, 1), 4.0f);
    EXPECT_FLOAT_EQ(thresholdForCount(z, 2), 3.0f);
    EXPECT_FLOAT_EQ(thresholdForCount(z, 4), 1.0f);
}

TEST(ThresholdForCount, MLargerThanNReturnsMin)
{
    std::vector<float> z{4.0f, 1.0f};
    EXPECT_FLOAT_EQ(thresholdForCount(z, 10), 1.0f);
}

TEST(ThresholdForCount, ConsistentWithThresholdIndices)
{
    Rng rng(7);
    std::vector<float> z(200);
    for (auto &v : z)
        v = static_cast<float>(rng.normal());
    for (size_t m : {1u, 5u, 50u, 199u}) {
        const float cut = thresholdForCount(z, m);
        const auto selected = thresholdIndices(z, cut);
        // At least m entries are >= the m-th largest value.
        EXPECT_GE(selected.size(), m);
    }
}

TEST(ThresholdForCount, ConcurrentCallersMatchSerial)
{
    // The selection scratch buffers are thread_local; concurrent callers
    // (the FILTER tuning path under parallelFor) must get the same cuts
    // as a serial sweep, with no cross-thread interference.
    Rng rng(11);
    constexpr size_t kVectors = 64;
    std::vector<std::vector<float>> zs(kVectors);
    std::vector<size_t> ms(kVectors);
    for (size_t v = 0; v < kVectors; ++v) {
        zs[v].resize(50 + 13 * v);
        for (auto &x : zs[v])
            x = static_cast<float>(rng.normal());
        ms[v] = 1 + v % 40;
    }

    std::vector<float> serial(kVectors);
    for (size_t v = 0; v < kVectors; ++v)
        serial[v] = thresholdForCount(zs[v], ms[v]);

    std::vector<float> concurrent(kVectors);
    parallelFor(0, kVectors, 8, [&](size_t v) {
        // Repeat to exercise scratch reuse within one worker thread.
        for (int r = 0; r < 4; ++r)
            concurrent[v] = thresholdForCount(zs[v], ms[v]);
    });
    for (size_t v = 0; v < kVectors; ++v)
        EXPECT_EQ(concurrent[v], serial[v]) << "vector " << v;
}

TEST(Recall, FullAndPartial)
{
    std::vector<uint32_t> ref{1, 2, 3, 4};
    std::vector<uint32_t> all{4, 3, 2, 1};
    std::vector<uint32_t> half{1, 2, 9, 10};
    EXPECT_DOUBLE_EQ(recall(all, ref), 1.0);
    EXPECT_DOUBLE_EQ(recall(half, ref), 0.5);
    EXPECT_DOUBLE_EQ(recall({}, ref), 0.0);
}

TEST(Recall, EmptyReferenceIsPerfect)
{
    std::vector<uint32_t> sel{1, 2};
    EXPECT_DOUBLE_EQ(recall(sel, {}), 1.0);
}

} // namespace
} // namespace enmc::tensor
