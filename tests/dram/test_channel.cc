/**
 * @file
 * Tests for JEDEC timing enforcement in the channel state machine.
 */

#include <gtest/gtest.h>

#include "dram/channel.h"

namespace enmc::dram {
namespace {

class ChannelTiming : public ::testing::Test
{
  protected:
    ChannelTiming()
        : org_(makeOrg()), timing_(Timing::ddr4_2400()),
          ch_(org_, timing_)
    {
    }

    static Organization
    makeOrg()
    {
        Organization o = Organization::paperTable3();
        o.channels = 1;
        o.ranks = 2; // rank-to-rank tests need two
        return o;
    }

    AddrVec
    at(uint32_t rank, uint32_t bg, uint32_t bank, uint32_t row)
    {
        AddrVec v;
        v.rank = rank;
        v.bankgroup = bg;
        v.bank = bank;
        v.row = row;
        return v;
    }

    Organization org_;
    Timing timing_;
    Channel ch_;
};

TEST_F(ChannelTiming, ActivateOpensRow)
{
    const AddrVec v = at(0, 0, 0, 5);
    EXPECT_FALSE(ch_.rowOpen(v));
    ASSERT_TRUE(ch_.canIssue(Cmd::Act, v, 10));
    ch_.issue(Cmd::Act, v, 10);
    EXPECT_TRUE(ch_.rowOpen(v));
    EXPECT_TRUE(ch_.bankActive(v));
}

TEST_F(ChannelTiming, TrcdGatesReadAfterActivate)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    EXPECT_FALSE(ch_.canIssue(Cmd::Rd, v, 100 + timing_.trcd - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Rd, v, 100 + timing_.trcd));
}

TEST_F(ChannelTiming, TrasGatesPrecharge)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    EXPECT_FALSE(ch_.canIssue(Cmd::Pre, v, 100 + timing_.tras - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Pre, v, 100 + timing_.tras));
}

TEST_F(ChannelTiming, TrpGatesNextActivate)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    const Cycles pre_at = 100 + timing_.tras;
    ch_.issue(Cmd::Pre, v, pre_at);
    EXPECT_FALSE(ch_.canIssue(Cmd::Act, v, pre_at + timing_.trp - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Act, v, pre_at + timing_.trp));
}

TEST_F(ChannelTiming, TrcGatesActToActSameBank)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    ch_.issue(Cmd::Pre, v, 100 + timing_.tras);
    // tRP satisfied at tRAS + tRP = tRC - OK; but verify the combined
    // constraint directly: ACT->ACT >= tRC.
    EXPECT_FALSE(ch_.canIssue(Cmd::Act, v, 100 + timing_.trc - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Act, v, 100 + timing_.trc));
}

TEST_F(ChannelTiming, TrrdShortGatesActsAcrossBankGroups)
{
    ch_.issue(Cmd::Act, at(0, 0, 0, 1), 100);
    const AddrVec other = at(0, 1, 0, 1); // different bank group
    EXPECT_FALSE(ch_.canIssue(Cmd::Act, other, 100 + timing_.trrd_s - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Act, other, 100 + timing_.trrd_s));
}

TEST_F(ChannelTiming, TrrdLongGatesActsWithinBankGroup)
{
    ch_.issue(Cmd::Act, at(0, 0, 0, 1), 100);
    const AddrVec same_bg = at(0, 0, 1, 1); // same group, other bank
    EXPECT_FALSE(ch_.canIssue(Cmd::Act, same_bg, 100 + timing_.trrd_l - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Act, same_bg, 100 + timing_.trrd_l));
}

TEST_F(ChannelTiming, FawLimitsBurstsOfActivates)
{
    // Use a relaxed tRRD so tFAW is the binding constraint.
    Timing t = timing_;
    t.trrd_s = 1;
    t.trrd_l = 1;
    t.tfaw = 20;
    Channel ch(org_, t);
    Cycles now = 100;
    for (int i = 0; i < 4; ++i)
        ch.issue(Cmd::Act, at(0, static_cast<uint32_t>(i) % 4,
                              static_cast<uint32_t>(i) / 4, 1),
                 now + i);
    const AddrVec fifth = at(0, 0, 1, 1);
    EXPECT_FALSE(ch.canIssue(Cmd::Act, fifth, now + 4));
    EXPECT_FALSE(ch.canIssue(Cmd::Act, fifth, now + t.tfaw - 1));
    EXPECT_TRUE(ch.canIssue(Cmd::Act, fifth, now + t.tfaw));
}

TEST_F(ChannelTiming, TccdLongGatesReadsWithinBankGroup)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    const Cycles rd1 = 100 + timing_.trcd;
    ch_.issue(Cmd::Rd, v, rd1);
    EXPECT_FALSE(ch_.canIssue(Cmd::Rd, v, rd1 + timing_.tccd_l - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Rd, v, rd1 + timing_.tccd_l));
}

TEST_F(ChannelTiming, TccdShortGatesReadsAcrossBankGroups)
{
    const AddrVec a = at(0, 0, 0, 1);
    const AddrVec b = at(0, 1, 0, 1); // different bank group
    ch_.issue(Cmd::Act, a, 100);
    ch_.issue(Cmd::Act, b, 100 + timing_.trrd_s);
    const Cycles rd1 = 100 + timing_.trcd + timing_.trrd_s;
    ch_.issue(Cmd::Rd, a, rd1);
    EXPECT_FALSE(ch_.canIssue(Cmd::Rd, b, rd1 + timing_.tccd_s - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Rd, b, rd1 + timing_.tccd_s));
}

TEST_F(ChannelTiming, ReadNeedsOpenMatchingRow)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    AddrVec wrong = v;
    wrong.row = 2;
    EXPECT_FALSE(ch_.canIssue(Cmd::Rd, wrong, 100 + timing_.trcd));
}

TEST_F(ChannelTiming, WriteToReadTurnaround)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    const Cycles wr = 100 + timing_.trcd;
    ch_.issue(Cmd::Wr, v, wr);
    const Cycles gate = wr + timing_.cwl + timing_.tbl + timing_.twtr;
    EXPECT_FALSE(ch_.canIssue(Cmd::Rd, v, gate - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Rd, v, gate));
}

TEST_F(ChannelTiming, WriteRecoveryGatesPrecharge)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    const Cycles wr = 100 + timing_.trcd;
    ch_.issue(Cmd::Wr, v, wr);
    const Cycles gate = wr + timing_.cwl + timing_.tbl + timing_.twr;
    EXPECT_FALSE(ch_.canIssue(Cmd::Pre, v, gate - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Pre, v, gate));
}

TEST_F(ChannelTiming, RankToRankBusSwitchPenalty)
{
    const AddrVec r0 = at(0, 0, 0, 1);
    const AddrVec r1 = at(1, 0, 0, 1);
    ch_.issue(Cmd::Act, r0, 100);
    ch_.issue(Cmd::Act, r1, 100 + timing_.trrd_s);
    const Cycles rd0 = 100 + timing_.trcd + timing_.trrd_s;
    ch_.issue(Cmd::Rd, r0, rd0);
    // Same-rank next read allowed at tCCD; other-rank read must leave a
    // tRTRS bubble after the first burst drains.
    const Cycles data_end = rd0 + timing_.cl + timing_.tbl;
    const Cycles other_ok = data_end + timing_.trtrs - timing_.cl;
    EXPECT_FALSE(ch_.canIssue(Cmd::Rd, r1, other_ok - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Rd, r1, other_ok));
}

TEST_F(ChannelTiming, RefreshRequiresAllBanksPrecharged)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    AddrVec rank0;
    rank0.rank = 0;
    EXPECT_FALSE(ch_.canIssue(Cmd::Ref, rank0, 100 + timing_.trefi));
    ch_.issue(Cmd::Pre, v, 100 + timing_.tras);
    EXPECT_TRUE(ch_.canIssue(Cmd::Ref, rank0,
                             100 + timing_.tras + timing_.trp +
                                 timing_.trefi));
}

TEST_F(ChannelTiming, RefreshBlocksActivatesForTrfc)
{
    AddrVec rank0;
    rank0.rank = 0;
    const Cycles ref_at = timing_.trefi;
    ASSERT_TRUE(ch_.canIssue(Cmd::Ref, rank0, ref_at));
    ch_.issue(Cmd::Ref, rank0, ref_at);
    const AddrVec v = at(0, 2, 1, 9);
    EXPECT_FALSE(ch_.canIssue(Cmd::Act, v, ref_at + timing_.trfc - 1));
    EXPECT_TRUE(ch_.canIssue(Cmd::Act, v, ref_at + timing_.trfc));
    // Other rank unaffected.
    EXPECT_TRUE(ch_.canIssue(Cmd::Act, at(1, 0, 0, 1), ref_at + 1));
}

TEST_F(ChannelTiming, CommandCountsTrack)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    ch_.issue(Cmd::Rd, v, 100 + timing_.trcd);
    EXPECT_EQ(ch_.commandCount(Cmd::Act), 1u);
    EXPECT_EQ(ch_.commandCount(Cmd::Rd), 1u);
    EXPECT_EQ(ch_.commandCount(Cmd::Pre), 0u);
}

TEST_F(ChannelTiming, DoubleActivateRejected)
{
    const AddrVec v = at(0, 0, 0, 1);
    ch_.issue(Cmd::Act, v, 100);
    // Bank already active: a second ACT is illegal until precharge.
    EXPECT_FALSE(ch_.canIssue(Cmd::Act, v, 100 + timing_.trc + 100));
}

TEST_F(ChannelTiming, IssueViolationPanics)
{
    const AddrVec v = at(0, 0, 0, 1);
    EXPECT_DEATH(ch_.issue(Cmd::Rd, v, 0), "violates timing");
}

} // namespace
} // namespace enmc::dram
