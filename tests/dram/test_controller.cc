/**
 * @file
 * Tests for the FR-FCFS memory controller.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/controller.h"
#include "fault/injector.h"

namespace enmc::dram {
namespace {

Organization
singleRankOrg()
{
    Organization o = Organization::paperTable3();
    o.channels = 1;
    o.ranks = 1;
    return o;
}

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : org_(singleRankOrg()), timing_(Timing::ddr4_2400()),
          ctrl_(org_, timing_, ControllerConfig{}, "test")
    {
    }

    /** Enqueue a read and return the completion cycle via callback. */
    void
    read(Addr addr, std::vector<Cycles> *done)
    {
        Request req;
        req.addr = addr;
        req.type = ReqType::Read;
        req.on_complete = [done](const Request &r) {
            done->push_back(r.complete);
        };
        ASSERT_TRUE(ctrl_.enqueue(std::move(req)));
    }

    void
    tickUntilIdle(Cycles bound = 1'000'000)
    {
        Cycles n = 0;
        while (!ctrl_.idle()) {
            ctrl_.tick();
            ASSERT_LT(++n, bound) << "controller failed to drain";
        }
    }

    Organization org_;
    Timing timing_;
    Controller ctrl_;
};

TEST_F(ControllerTest, ColdReadLatency)
{
    std::vector<Cycles> done;
    read(0, &done);
    tickUntilIdle();
    ASSERT_EQ(done.size(), 1u);
    // Closed bank: ACT + tRCD + CL + BL (plus the controller's one-cycle
    // scheduling steps).
    const Cycles ideal = timing_.trcd + timing_.cl + timing_.tbl;
    EXPECT_GE(done[0], ideal);
    EXPECT_LE(done[0], ideal + 4);
}

TEST_F(ControllerTest, RowHitFasterThanConflict)
{
    // Two reads to the same row, then one to a different row of the same
    // bank.
    std::vector<Cycles> done;
    read(0, &done);
    read(64, &done);                       // same row (sequential line)
    tickUntilIdle();
    const Cycles hit_delta = done[1] - done[0];

    std::vector<Cycles> done2;
    read(0, &done2);
    // Different row, same bank/bankgroup: flip a row bit.
    Organization o = org_;
    AddrVec v = mapAddress(0, o);
    v.row = 123;
    read(unmapAddress(v, o), &done2);
    tickUntilIdle();
    const Cycles conflict_delta = done2[1] - done2[0];
    EXPECT_LT(hit_delta, conflict_delta);
    EXPECT_EQ(hit_delta, timing_.tccd_l); // sequential lines share a bank group
}

TEST_F(ControllerTest, RowHitCounters)
{
    std::vector<Cycles> done;
    read(0, &done);
    tickUntilIdle();
    read(64, &done); // row buffer still open -> hit
    tickUntilIdle();
    EXPECT_EQ(ctrl_.stats().counter("rowHits").value(), 1u);
    EXPECT_EQ(ctrl_.stats().counter("rowMisses").value(), 1u);
    EXPECT_EQ(ctrl_.stats().counter("reads").value(), 2u);
}

TEST_F(ControllerTest, StreamingApproachesPeakBandwidth)
{
    // 512 sequential lines = 32 KiB, streamed with the on-DIMM
    // bank-group-interleaved mapping (sequential lines alternate groups,
    // so tCCD_S rather than tCCD_L paces the bus).
    Controller ctrl(org_.singleRankView(), timing_, ControllerConfig{},
                    "stream");
    std::vector<Cycles> done;
    const int lines = 512;
    int issued = 0;
    while (issued < lines) {
        Request req;
        req.addr = static_cast<Addr>(issued) * 64;
        req.type = ReqType::Read;
        req.on_complete = [&done](const Request &r) {
            done.push_back(r.complete);
        };
        if (ctrl.enqueue(std::move(req)))
            ++issued;
        else
            ctrl.tick();
    }
    Cycles n = 0;
    while (!ctrl.idle()) {
        ctrl.tick();
        ASSERT_LT(++n, 1'000'000u);
    }
    ASSERT_EQ(done.size(), static_cast<size_t>(lines));
    // Data bus limit: one 64B line per tCCD_S(=tbl) cycles. Allow 25%
    // overhead for row transitions and refresh.
    const double cycles = static_cast<double>(ctrl.now());
    const double ideal = static_cast<double>(lines) * timing_.tbl;
    EXPECT_LT(cycles, ideal * 1.25);
    EXPECT_GE(cycles, ideal);
}

TEST_F(ControllerTest, BankGroupInterleaveBeatsLinearMappingOnStreams)
{
    // The same sequential stream through the default (column-major)
    // mapping is paced by tCCD_L; the interleaved mapping reaches the
    // bus rate. This is why the on-DIMM controllers interleave.
    auto stream_cycles = [&](const Organization &org) {
        Controller ctrl(org, timing_, ControllerConfig{}, "map");
        int issued = 0;
        while (issued < 256) {
            Request req;
            req.addr = static_cast<Addr>(issued) * 64;
            if (ctrl.enqueue(std::move(req)))
                ++issued;
            else
                ctrl.tick();
        }
        while (!ctrl.idle())
            ctrl.tick();
        return ctrl.now();
    };
    const Cycles linear = stream_cycles(org_);
    const Cycles interleaved = stream_cycles(org_.singleRankView());
    EXPECT_LT(interleaved, linear);
}

TEST_F(ControllerTest, WritesComplete)
{
    int completed = 0;
    Request req;
    req.addr = 4096;
    req.type = ReqType::Write;
    req.on_complete = [&completed](const Request &) { ++completed; };
    ASSERT_TRUE(ctrl_.enqueue(std::move(req)));
    tickUntilIdle();
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(ctrl_.stats().counter("writes").value(), 1u);
}

TEST_F(ControllerTest, QueueFillsAndRejects)
{
    for (size_t i = 0; i < ctrl_.queueDepth(); ++i) {
        Request req;
        req.addr = static_cast<Addr>(i) * 8192 * 64; // scattered
        EXPECT_TRUE(ctrl_.enqueue(std::move(req)));
    }
    Request extra;
    extra.addr = 1 << 20;
    EXPECT_FALSE(ctrl_.enqueue(std::move(extra)));
    tickUntilIdle();
}

TEST_F(ControllerTest, RefreshHappensPeriodically)
{
    // Idle-tick for 3 refresh intervals.
    for (Cycles i = 0; i < 3 * timing_.trefi + 100; ++i)
        ctrl_.tick();
    EXPECT_GE(ctrl_.stats().counter("refreshes").value(), 3u);
    EXPECT_LE(ctrl_.stats().counter("refreshes").value(), 4u);
}

TEST_F(ControllerTest, RefreshCanBeDisabled)
{
    ControllerConfig cfg;
    cfg.refresh_enabled = false;
    Controller ctrl(org_, timing_, cfg, "noref");
    for (Cycles i = 0; i < 2 * timing_.trefi; ++i)
        ctrl.tick();
    EXPECT_EQ(ctrl.stats().counter("refreshes").value(), 0u);
}

TEST_F(ControllerTest, FrfcfsPrefersReadyRowHit)
{
    // Prime: open row A in bank 0.
    std::vector<Cycles> done_a;
    read(0, &done_a);
    tickUntilIdle();

    // Enqueue: conflict request (row B bank 0) first, then a hit (row A).
    AddrVec vb = mapAddress(0, org_);
    vb.row = 77;
    std::vector<Cycles> done_b, done_hit;
    read(unmapAddress(vb, org_), &done_b);
    read(64, &done_hit);
    tickUntilIdle();
    // The row hit completes before the older conflicting request
    // (first-ready scheduling).
    ASSERT_EQ(done_b.size(), 1u);
    ASSERT_EQ(done_hit.size(), 1u);
    EXPECT_LT(done_hit[0], done_b[0]);
}

TEST_F(ControllerTest, BytesAndBandwidthAccounting)
{
    std::vector<Cycles> done;
    read(0, &done);
    read(64, &done);
    tickUntilIdle();
    EXPECT_EQ(ctrl_.bytesTransferred(), 2u * 64u);
    EXPECT_GT(ctrl_.achievedBandwidth(), 0.0);
}

TEST_F(ControllerTest, ReadLatencyStatSampled)
{
    std::vector<Cycles> done;
    read(0, &done);
    tickUntilIdle();
    EXPECT_EQ(ctrl_.stats().scalar("readLatency").count(), 1u);
    EXPECT_GT(ctrl_.stats().scalar("readLatency").mean(), 0.0);
}

/** Long-run stress: random traffic drains and respects conservation. */
TEST_F(ControllerTest, RandomTrafficDrains)
{
    uint64_t completed = 0;
    uint64_t issued = 0;
    uint64_t next = 12345;
    for (int round = 0; round < 2000; ++round) {
        next = next * 6364136223846793005ull + 1442695040888963407ull;
        Request req;
        req.addr = (next >> 16) % (1ull << 28);
        req.type = (next & 1) ? ReqType::Write : ReqType::Read;
        req.on_complete = [&completed](const Request &) { ++completed; };
        if (ctrl_.enqueue(std::move(req)))
            ++issued;
        ctrl_.tick();
    }
    tickUntilIdle();
    EXPECT_EQ(completed, issued);
    EXPECT_EQ(ctrl_.stats().counter("reads").value() +
                  ctrl_.stats().counter("writes").value(),
              issued);
}

// ---- fault-injector attachment + ECC overhead model ----

/** Run `n` sequential reads through a fresh tick loop and return the ECC
 *  classification counters (corrected, detected, escaped). */
struct EccTally
{
    uint64_t corrected = 0;
    uint64_t detected = 0;
    uint64_t escaped = 0;
    bool operator==(const EccTally &) const = default;
};

TEST_F(ControllerTest, ReattachResetsBurstSequence)
{
    // The determinism contract: classification outcomes are pure in
    // (seed, stream, burst index). Re-attaching an injector must restart
    // the burst index, so the same read sequence replays the same
    // outcomes — a stale sequence number used to leak across re-attach.
    fault::FaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.seed = 9;
    fcfg.data_ber = 2e-3; // high enough that 64 bursts see faults
    fault::FaultInjector injector(fcfg, /*stream=*/0);

    auto pass = [&]() {
        ctrl_.attachFaultInjector(&injector);
        const uint64_t c0 = ctrl_.stats().counter("eccCorrected").value();
        const uint64_t d0 = ctrl_.stats().counter("eccDetected").value();
        const uint64_t e0 = ctrl_.stats().counter("eccEscaped").value();
        std::vector<Cycles> done;
        for (int i = 0; i < 64; ++i)
            read(static_cast<Addr>(i) * 64, &done);
        tickUntilIdle();
        EccTally t;
        t.corrected = ctrl_.stats().counter("eccCorrected").value() - c0;
        t.detected = ctrl_.stats().counter("eccDetected").value() - d0;
        t.escaped = ctrl_.stats().counter("eccEscaped").value() - e0;
        return t;
    };

    const EccTally first = pass();
    EXPECT_GT(first.corrected + first.detected + first.escaped, 0u)
        << "operating point no longer exercises the fault path";
    const EccTally second = pass();
    EXPECT_EQ(first, second)
        << "re-attach must replay identical burst classifications";
}

TEST_F(ControllerTest, EccOverheadOffChargesNothing)
{
    fault::FaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.seed = 9;
    fcfg.data_ber = 0.0; // classification path active, overhead off
    fault::FaultInjector injector(fcfg, 0);
    ctrl_.attachFaultInjector(&injector);

    std::vector<Cycles> done;
    for (int i = 0; i < 32; ++i)
        read(static_cast<Addr>(i) * 64, &done);
    tickUntilIdle();
    EXPECT_EQ(ctrl_.eccRedundancyReads(), 0u);
    EXPECT_EQ(ctrl_.eccDecodeCyclesCharged(), 0u);
    EXPECT_EQ(ctrl_.stats().counter("eccProtectedReads").value(), 0u);
}

TEST_F(ControllerTest, EccOverheadChargesRedundancyAndDecode)
{
    // One controller with the overhead model on, one with it off: the
    // protected run must issue SECDED(72,64) check-bit bursts (1/8 of the
    // data bursts) and charge decode latency on every read.
    fault::FaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.seed = 9;
    fcfg.data_ber = 0.0;
    fcfg.ecc_overhead = true;
    fault::FaultInjector injector(fcfg, 0);
    ctrl_.attachFaultInjector(&injector);

    constexpr int kReads = 64;
    std::vector<Cycles> done;
    for (int i = 0; i < kReads; ++i)
        read(static_cast<Addr>(i) * 64, &done);
    tickUntilIdle();

    // 12.5% overhead => one redundancy burst per 8 data bursts.
    EXPECT_EQ(ctrl_.eccRedundancyReads(), kReads / 8);
    const Timing t = Timing::ddr4_2400();
    EXPECT_EQ(ctrl_.eccDecodeCyclesCharged(),
              static_cast<uint64_t>(kReads) *
                  t.eccDecodeCycles(fault::EccScheme::Word72));
    EXPECT_EQ(ctrl_.stats().counter("eccProtectedReads").value(),
              static_cast<uint64_t>(kReads));

    // The charges land on the request timeline, not just the counters.
    Controller plain(org_, timing_, ControllerConfig{}, "test.plain");
    std::vector<Cycles> plain_done;
    for (int i = 0; i < kReads; ++i) {
        Request req;
        req.addr = static_cast<Addr>(i) * 64;
        req.type = ReqType::Read;
        req.on_complete = [&plain_done](const Request &r) {
            plain_done.push_back(r.complete);
        };
        ASSERT_TRUE(plain.enqueue(std::move(req)));
    }
    while (!plain.idle())
        plain.tick();
    ASSERT_EQ(done.size(), plain_done.size());
    EXPECT_GT(done.back(), plain_done.back())
        << "ECC overhead must lengthen the read timeline";
}

TEST_F(ControllerTest, WeakNoneClassSkipsOverheadStrongPays)
{
    // Differentiated protection at the controller: Weak-class requests
    // mapped to EccScheme::None ride free; Strong-class requests pay.
    fault::FaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.data_ber = 0.0;
    fcfg.ecc_overhead = true;
    fcfg.weak_scheme = fault::EccScheme::None;
    fault::FaultInjector injector(fcfg, 0);
    ctrl_.attachFaultInjector(&injector);

    std::vector<Cycles> done;
    for (int i = 0; i < 16; ++i) {
        Request req;
        req.addr = static_cast<Addr>(i) * 64;
        req.type = ReqType::Read;
        req.prot = fault::Protection::Weak;
        req.on_complete = [&done](const Request &r) {
            done.push_back(r.complete);
        };
        ASSERT_TRUE(ctrl_.enqueue(std::move(req)));
    }
    tickUntilIdle();
    EXPECT_EQ(ctrl_.eccRedundancyReads(), 0u);
    EXPECT_EQ(ctrl_.eccDecodeCyclesCharged(), 0u);

    for (int i = 0; i < 16; ++i) {
        Request req;
        req.addr = static_cast<Addr>(i) * 64;
        req.type = ReqType::Read;
        req.prot = fault::Protection::Strong;
        req.on_complete = [&done](const Request &r) {
            done.push_back(r.complete);
        };
        ASSERT_TRUE(ctrl_.enqueue(std::move(req)));
    }
    tickUntilIdle();
    EXPECT_EQ(ctrl_.eccRedundancyReads(), 2u); // 16 bursts / 8
    EXPECT_GT(ctrl_.eccDecodeCyclesCharged(), 0u);
}

} // namespace
} // namespace enmc::dram
