/**
 * @file
 * Tests for the streaming DMA helper.
 */

#include <gtest/gtest.h>

#include "dram/stream.h"

namespace enmc::dram {
namespace {

class StreamTest : public ::testing::Test
{
  protected:
    StreamTest()
        : org_(makeOrg()), timing_(Timing::ddr4_2400()),
          ctrl_(org_, timing_, ControllerConfig{}, "stream")
    {
    }

    static Organization
    makeOrg()
    {
        Organization o = Organization::paperTable3();
        o.channels = 1;
        o.ranks = 1;
        return o;
    }

    void
    runToCompletion(StreamTransfer &xfer, Cycles bound = 1'000'000)
    {
        Cycles n = 0;
        while (!xfer.done()) {
            ctrl_.tick();
            xfer.pump(ctrl_);
            ASSERT_LT(++n, bound);
        }
    }

    Organization org_;
    Timing timing_;
    Controller ctrl_;
};

TEST_F(StreamTest, NotDoneBeforePump)
{
    StreamTransfer xfer;
    xfer.start(0, 4096, ReqType::Read);
    EXPECT_TRUE(xfer.started());
    EXPECT_FALSE(xfer.done());
    EXPECT_EQ(xfer.linesTotal(), 64u);
}

TEST_F(StreamTest, SplitsIntoLines)
{
    StreamTransfer xfer;
    xfer.start(0, 1000, ReqType::Read); // 1000 B -> 16 lines of 64 B
    EXPECT_EQ(xfer.linesTotal(), 16u);
    runToCompletion(xfer);
    EXPECT_EQ(xfer.linesCompleted(), 16u);
    EXPECT_EQ(ctrl_.stats().counter("reads").value(), 16u);
}

TEST_F(StreamTest, ZeroByteTransferIsImmediatelyDone)
{
    StreamTransfer xfer;
    xfer.start(0, 0, ReqType::Read);
    EXPECT_TRUE(xfer.done());
}

TEST_F(StreamTest, WriteTransfer)
{
    StreamTransfer xfer;
    xfer.start(8192, 256, ReqType::Write);
    runToCompletion(xfer);
    EXPECT_EQ(ctrl_.stats().counter("writes").value(), 4u);
}

TEST_F(StreamTest, BackpressureWhenQueueFull)
{
    // A transfer larger than the queue must still finish (pump retries).
    StreamTransfer xfer;
    xfer.start(0, 64 * 256, ReqType::Read); // 256 lines > 64-entry queue
    runToCompletion(xfer);
    EXPECT_EQ(xfer.linesCompleted(), 256u);
}

TEST_F(StreamTest, RestartAfterCompletion)
{
    StreamTransfer xfer;
    xfer.start(0, 128, ReqType::Read);
    runToCompletion(xfer);
    xfer.start(1 << 20, 128, ReqType::Read);
    EXPECT_FALSE(xfer.done());
    runToCompletion(xfer);
    EXPECT_EQ(ctrl_.stats().counter("reads").value(), 4u);
}

TEST_F(StreamTest, CustomLineSize)
{
    StreamTransfer xfer;
    xfer.start(0, 1024, ReqType::Read, 128);
    EXPECT_EQ(xfer.linesTotal(), 8u);
}

TEST_F(StreamTest, TwoConcurrentTransfersInterleave)
{
    StreamTransfer a, b;
    a.start(0, 2048, ReqType::Read);
    b.start(1 << 22, 2048, ReqType::Read);
    Cycles n = 0;
    while (!a.done() || !b.done()) {
        ctrl_.tick();
        a.pump(ctrl_);
        b.pump(ctrl_);
        ASSERT_LT(++n, 100000u);
    }
    EXPECT_EQ(ctrl_.stats().counter("reads").value(), 64u);
}

TEST_F(StreamTest, RestartWhileInFlightPanics)
{
    StreamTransfer xfer;
    xfer.start(0, 4096, ReqType::Read);
    ctrl_.tick();
    xfer.pump(ctrl_);
    EXPECT_DEATH(xfer.start(0, 64, ReqType::Read), "in-flight");
}

} // namespace
} // namespace enmc::dram
