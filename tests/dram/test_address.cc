/**
 * @file
 * Tests for DRAM address mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/config.h"

namespace enmc::dram {
namespace {

class AddressMapping : public ::testing::TestWithParam<AddrMapping> {
  protected:
    Organization
    org() const
    {
        Organization o = Organization::paperTable3();
        o.mapping = GetParam();
        return o;
    }
};

TEST_P(AddressMapping, RoundTripRandomAddresses)
{
    const Organization o = org();
    const Addr line = o.accessBytes();
    for (Addr addr = 0; addr < 1ull << 30; addr += 977 * line) {
        const AddrVec vec = mapAddress(addr, o);
        EXPECT_EQ(unmapAddress(vec, o), addr & ~(line - 1));
    }
}

TEST_P(AddressMapping, FieldsWithinBounds)
{
    const Organization o = org();
    for (Addr addr = 0; addr < 1ull << 32; addr += 4093 * 64) {
        const AddrVec v = mapAddress(addr, o);
        EXPECT_LT(v.channel, o.channels);
        EXPECT_LT(v.rank, o.ranks);
        EXPECT_LT(v.bankgroup, o.bankgroups);
        EXPECT_LT(v.bank, o.banks);
        EXPECT_LT(v.row, o.rows);
        EXPECT_LT(v.column, o.columns);
    }
}

INSTANTIATE_TEST_SUITE_P(Mappings, AddressMapping,
                         ::testing::Values(AddrMapping::RoRaBgBaCoCh,
                                           AddrMapping::RoCoRaBgBaCh,
                                           AddrMapping::RoRaCoBaBgCh));

TEST(AddressMapping, InterleavedMappingAlternatesBankGroups)
{
    Organization o = Organization::paperTable3().singleRankView();
    // Consecutive lines must cycle through all bank groups first.
    for (Addr i = 0; i < o.bankgroups; ++i) {
        const AddrVec v = mapAddress(i * o.accessBytes(), o);
        EXPECT_EQ(v.bankgroup, i);
    }
    // ... then advance the bank.
    const AddrVec next =
        mapAddress(o.bankgroups * o.accessBytes(), o);
    EXPECT_EQ(next.bankgroup, 0u);
    EXPECT_EQ(next.bank, 1u);
}

TEST(AddressMapping, ConsecutiveLinesInterleaveChannels)
{
    const Organization o = Organization::paperTable3();
    std::set<uint32_t> channels;
    for (Addr addr = 0; addr < 8 * o.accessBytes(); addr += o.accessBytes())
        channels.insert(mapAddress(addr, o).channel);
    // Channel bits are lowest: 8 consecutive lines hit all 8 channels.
    EXPECT_EQ(channels.size(), o.channels);
}

TEST(AddressMapping, SequentialStreamStaysInRowThenSwitchesBank)
{
    Organization o = Organization::paperTable3();
    o.channels = 1;
    const AddrVec first = mapAddress(0, o);
    // One row of one bank: columns/burst lines.
    const uint64_t lines_per_row = o.columns / o.burst_length;
    bool same_row = true;
    for (uint64_t i = 0; i < lines_per_row; ++i) {
        const AddrVec v = mapAddress(i * o.accessBytes(), o);
        same_row &= (v.row == first.row && v.bank == first.bank &&
                     v.bankgroup == first.bankgroup);
    }
    EXPECT_TRUE(same_row);
    const AddrVec next =
        mapAddress(lines_per_row * o.accessBytes(), o);
    EXPECT_FALSE(next.bank == first.bank &&
                 next.bankgroup == first.bankgroup);
}

TEST(Organization, Table3Capacity)
{
    const Organization o = Organization::paperTable3();
    // 8Gb x8 devices, 8 per rank -> 8 GiB/rank, 8 ranks -> 64 GiB/channel.
    EXPECT_EQ(o.bytesPerRank(), 8 * GiB);
    EXPECT_EQ(o.bytesPerChannel(), 64 * GiB);
    EXPECT_EQ(o.totalBytes(), 512 * GiB);
}

TEST(Organization, BandwidthAndBurst)
{
    const Organization o = Organization::paperTable3();
    EXPECT_EQ(o.accessBytes(), 64u);
    EXPECT_EQ(o.rowBytes(), 8192u);
    // DDR4-2400: 1200 MHz cmd clock * 2 * 8 B = 19.2 GB/s per channel.
    EXPECT_NEAR(o.channelPeakBandwidth(1200e6), 19.2e9, 1e6);
}

TEST(Organization, SingleRankView)
{
    const Organization o = Organization::paperTable3().singleRankView();
    EXPECT_EQ(o.channels, 1u);
    EXPECT_EQ(o.ranks, 1u);
    EXPECT_EQ(o.bytesPerChannel(), 8 * GiB);
}

} // namespace
} // namespace enmc::dram
