/**
 * @file
 * Tests for the multi-channel memory system.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/memory_system.h"

namespace enmc::dram {
namespace {

MemorySystem
makeSystem(uint32_t channels = 2)
{
    Organization org = Organization::paperTable3();
    org.channels = channels;
    return MemorySystem(org, Timing::ddr4_2400(), ControllerConfig{},
                        "test");
}

TEST(MemorySystem, RoutesToCorrectChannel)
{
    MemorySystem mem = makeSystem(2);
    // Channel bits are the lowest line bits: line 0 -> ch 0, line 1 -> ch1.
    int done0 = 0, done1 = 0;
    Request a;
    a.addr = 0;
    a.on_complete = [&done0](const Request &) { ++done0; };
    Request b;
    b.addr = 64;
    b.on_complete = [&done1](const Request &) { ++done1; };
    ASSERT_TRUE(mem.enqueue(std::move(a)));
    ASSERT_TRUE(mem.enqueue(std::move(b)));
    mem.drain();
    EXPECT_EQ(done0, 1);
    EXPECT_EQ(done1, 1);
    EXPECT_EQ(mem.controller(0).stats().counter("reads").value(), 1u);
    EXPECT_EQ(mem.controller(1).stats().counter("reads").value(), 1u);
}

TEST(MemorySystem, ChannelsWorkInParallel)
{
    // The same number of lines split over 2 channels finishes in about
    // half the cycles of a single channel.
    auto stream = [](uint32_t channels) {
        MemorySystem mem = makeSystem(channels);
        int issued = 0;
        while (issued < 256) {
            Request req;
            req.addr = static_cast<Addr>(issued) * 64;
            if (mem.enqueue(std::move(req)))
                ++issued;
            else
                mem.tick();
        }
        mem.drain();
        return mem.now();
    };
    const Cycles c1 = stream(1);
    const Cycles c2 = stream(2);
    EXPECT_LT(c2, c1 * 3 / 4);
}

TEST(MemorySystem, AggregateAccounting)
{
    MemorySystem mem = makeSystem(2);
    for (int i = 0; i < 32; ++i) {
        Request req;
        req.addr = static_cast<Addr>(i) * 64;
        ASSERT_TRUE(mem.enqueue(std::move(req)));
    }
    mem.drain();
    EXPECT_EQ(mem.bytesTransferred(), 32u * 64u);
    EXPECT_GT(mem.achievedBandwidth(), 0.0);
}

TEST(MemorySystem, IdleAndDrain)
{
    MemorySystem mem = makeSystem(2);
    EXPECT_TRUE(mem.idle());
    Request req;
    req.addr = 128;
    ASSERT_TRUE(mem.enqueue(std::move(req)));
    EXPECT_FALSE(mem.idle());
    const Cycles spent = mem.drain();
    EXPECT_TRUE(mem.idle());
    EXPECT_GT(spent, 0u);
}

TEST(MemorySystem, DumpStatsListsEveryChannel)
{
    MemorySystem mem = makeSystem(2);
    Request req;
    req.addr = 0;
    ASSERT_TRUE(mem.enqueue(std::move(req)));
    mem.drain();
    std::ostringstream oss;
    mem.dumpStats(oss);
    EXPECT_NE(oss.str().find("test.ch0.reads"), std::string::npos);
    EXPECT_NE(oss.str().find("test.ch1.reads"), std::string::npos);
}

TEST(MemorySystemDeathTest, DrainBoundPanics)
{
    MemorySystem mem = makeSystem(1);
    Request req;
    req.addr = 0;
    ASSERT_TRUE(mem.enqueue(std::move(req)));
    EXPECT_DEATH((void)mem.drain(1), "failed to drain");
}

} // namespace
} // namespace enmc::dram
