/**
 * @file
 * Stress / property tests for the DRAM simulator: random traffic over a
 * grid of organizations and mappings must drain, conserve requests, and
 * never violate a timing constraint (violations panic inside
 * Channel::issue, so surviving the run *is* the assertion).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/controller.h"

namespace enmc::dram {
namespace {

struct StressParam
{
    uint32_t ranks;
    uint32_t bankgroups;
    uint32_t banks;
    AddrMapping mapping;
    bool refresh;
};

class DramStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(DramStress, RandomTrafficConservedUnderAllTimings)
{
    const StressParam p = GetParam();
    Organization org = Organization::paperTable3();
    org.channels = 1;
    org.ranks = p.ranks;
    org.bankgroups = p.bankgroups;
    org.banks = p.banks;
    org.mapping = p.mapping;
    ControllerConfig cfg;
    cfg.refresh_enabled = p.refresh;
    Controller ctrl(org, Timing::ddr4_2400(), cfg, "stress");

    Rng rng(p.ranks * 131 + p.bankgroups * 17 + p.banks);
    uint64_t issued = 0, completed = 0;
    const uint64_t span = org.bytesPerChannel();
    for (int round = 0; round < 12000; ++round) {
        // Mixture: 60% streaming locality, 40% random.
        static Addr stream_addr = 0;
        Addr addr;
        if (rng.uniform() < 0.6) {
            stream_addr += 64;
            addr = stream_addr % span;
        } else {
            addr = (static_cast<Addr>(rng()) % span) & ~Addr{63};
        }
        Request req;
        req.addr = addr;
        req.type = rng.uniform() < 0.3 ? ReqType::Write : ReqType::Read;
        req.on_complete = [&completed](const Request &) { ++completed; };
        if (ctrl.enqueue(std::move(req)))
            ++issued;
        ctrl.tick();
    }
    Cycles guard = 0;
    while (!ctrl.idle()) {
        ctrl.tick();
        ASSERT_LT(++guard, 2'000'000u) << "failed to drain";
    }
    EXPECT_EQ(completed, issued);
    EXPECT_EQ(ctrl.stats().counter("reads").value() +
                  ctrl.stats().counter("writes").value(),
              issued);
    if (p.refresh)
        EXPECT_GT(ctrl.stats().counter("refreshes").value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DramStress,
    ::testing::Values(
        StressParam{1, 4, 4, AddrMapping::RoRaBgBaCoCh, true},
        StressParam{1, 4, 4, AddrMapping::RoRaCoBaBgCh, true},
        StressParam{1, 4, 4, AddrMapping::RoCoRaBgBaCh, true},
        StressParam{2, 4, 4, AddrMapping::RoRaBgBaCoCh, true},
        StressParam{4, 4, 4, AddrMapping::RoRaCoBaBgCh, true},
        StressParam{8, 4, 4, AddrMapping::RoRaBgBaCoCh, true},
        StressParam{1, 2, 2, AddrMapping::RoRaCoBaBgCh, true},
        StressParam{2, 2, 8, AddrMapping::RoCoRaBgBaCh, true},
        StressParam{1, 4, 4, AddrMapping::RoRaBgBaCoCh, false},
        StressParam{4, 2, 4, AddrMapping::RoRaCoBaBgCh, false}),
    [](const ::testing::TestParamInfo<StressParam> &info) {
        const auto &p = info.param;
        return "r" + std::to_string(p.ranks) + "bg" +
               std::to_string(p.bankgroups) + "b" +
               std::to_string(p.banks) + "m" +
               std::to_string(static_cast<int>(p.mapping)) +
               (p.refresh ? "ref" : "noref");
    });

/** Fuzz the ISA encode/decode with random-but-valid instructions. */
TEST(DramStress, TimingPresetInternallyConsistent)
{
    const Timing t = Timing::ddr4_2400();
    EXPECT_EQ(t.tras + t.trp, t.trc);
    EXPECT_GE(t.tccd_l, t.tccd_s);
    EXPECT_GE(t.trrd_l, t.trrd_s);
    EXPECT_GE(t.cl, t.cwl);
    EXPECT_GT(t.trefi, t.trfc);
}

} // namespace
} // namespace enmc::dram
