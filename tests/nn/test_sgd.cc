/**
 * @file
 * Tests for the SGD optimizer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/sgd.h"

namespace enmc::nn {
namespace {

TEST(Sgd, SingleStepNoMomentum)
{
    SgdOptimizer opt({0.1, 0.0, 1.0});
    const size_t slot = opt.addParameter(1);
    std::vector<float> p{1.0f};
    std::vector<float> g{2.0f};
    opt.step(slot, p, g);
    EXPECT_FLOAT_EQ(p[0], 1.0f - 0.1f * 2.0f);
}

TEST(Sgd, MomentumAccumulates)
{
    SgdOptimizer opt({0.1, 0.5, 1.0});
    const size_t slot = opt.addParameter(1);
    std::vector<float> p{0.0f};
    std::vector<float> g{1.0f};
    opt.step(slot, p, g); // v=1,    p=-0.1
    opt.step(slot, p, g); // v=1.5,  p=-0.25
    EXPECT_NEAR(p[0], -0.25f, 1e-6f);
}

TEST(Sgd, LrDecayPerEpoch)
{
    SgdOptimizer opt({0.1, 0.0, 0.5});
    (void)opt.addParameter(1);
    EXPECT_DOUBLE_EQ(opt.currentLr(), 0.1);
    opt.endEpoch();
    EXPECT_DOUBLE_EQ(opt.currentLr(), 0.05);
}

TEST(Sgd, ConvergesOnQuadratic)
{
    // Minimize f(x) = (x - 3)^2; grad = 2 (x - 3).
    SgdOptimizer opt({0.1, 0.9, 1.0});
    const size_t slot = opt.addParameter(1);
    std::vector<float> x{0.0f};
    for (int i = 0; i < 200; ++i) {
        std::vector<float> g{2.0f * (x[0] - 3.0f)};
        opt.step(slot, x, g);
    }
    EXPECT_NEAR(x[0], 3.0f, 1e-3f);
}

TEST(Sgd, IndependentSlots)
{
    SgdOptimizer opt({0.1, 0.9, 1.0});
    const size_t a = opt.addParameter(1);
    const size_t b = opt.addParameter(1);
    std::vector<float> pa{0.0f}, pb{0.0f};
    std::vector<float> g{1.0f};
    opt.step(a, pa, g);
    opt.step(a, pa, g);
    opt.step(b, pb, g);
    // Slot b's velocity is fresh: first step only.
    EXPECT_FLOAT_EQ(pb[0], -0.1f);
    EXPECT_LT(pa[0], pb[0]);
}

TEST(SgdDeathTest, SizeMismatchPanics)
{
    SgdOptimizer opt({0.1, 0.0, 1.0});
    const size_t slot = opt.addParameter(2);
    std::vector<float> p{1.0f};
    std::vector<float> g{1.0f};
    EXPECT_DEATH(opt.step(slot, p, g), "size mismatch");
}

} // namespace
} // namespace enmc::nn
