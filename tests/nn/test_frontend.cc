/**
 * @file
 * Tests for the front-end analytic models.
 */

#include <gtest/gtest.h>

#include "nn/frontend.h"

namespace enmc::nn {
namespace {

TEST(Frontend, Table2FactoriesMatchPaper)
{
    EXPECT_EQ(FrontendModel::lstmW33k().vocab, 33278u);
    EXPECT_EQ(FrontendModel::lstmW33k().hidden, 1500u);
    EXPECT_EQ(FrontendModel::transformerW268k().vocab, 267744u);
    EXPECT_EQ(FrontendModel::transformerW268k().hidden, 512u);
    EXPECT_EQ(FrontendModel::gnmtE32k().vocab, 32317u);
    EXPECT_EQ(FrontendModel::gnmtE32k().hidden, 1024u);
    // XMLCNN's input vocabulary is the text vocabulary, not the labels.
    EXPECT_EQ(FrontendModel::xmlcnn670k().vocab, 40000u);
    EXPECT_EQ(FrontendModel::xmlcnn670k().hidden, 512u);
}

TEST(Frontend, ParamsArePositive)
{
    for (const auto &m :
         {FrontendModel::lstmW33k(), FrontendModel::transformerW268k(),
          FrontendModel::gnmtE32k(), FrontendModel::xmlcnn670k()}) {
        EXPECT_GT(m.embeddingParams(), 0u) << frontendTypeName(m.type);
        EXPECT_GT(m.hiddenParams(), 0u) << frontendTypeName(m.type);
        EXPECT_GT(m.flopsPerStep(), 0u) << frontendTypeName(m.type);
    }
}

TEST(Frontend, LstmParamsFormula)
{
    FrontendModel m;
    m.type = FrontendType::LstmLm;
    m.vocab = 100;
    m.hidden = 10;
    m.layers = 2;
    // 2 layers * 4 gates * (10*10 + 10*10 + 10) = 1680.
    EXPECT_EQ(m.hiddenParams(), 1680u);
    EXPECT_EQ(m.embeddingParams(), 1000u);
}

TEST(Frontend, TransformerParamsFormula)
{
    FrontendModel m;
    m.type = FrontendType::TransformerLm;
    m.vocab = 1;
    m.hidden = 8;
    m.layers = 3;
    // 3 * (4*64 + 8*64) = 2304.
    EXPECT_EQ(m.hiddenParams(), 2304u);
}

TEST(Frontend, FlopsAreTwicePerParamPlusEmbedding)
{
    const FrontendModel m = FrontendModel::transformerW268k();
    EXPECT_EQ(m.flopsPerStep(), 2 * m.hiddenParams() + 2 * m.embedDim());
}

TEST(Frontend, EmbedDimDefaultsToHidden)
{
    FrontendModel m;
    m.hidden = 256;
    m.embed_dim = 0;
    EXPECT_EQ(m.embedDim(), 256u);
    m.embed_dim = 128;
    EXPECT_EQ(m.embedDim(), 128u);
}

TEST(Frontend, TypeNames)
{
    EXPECT_STREQ(frontendTypeName(FrontendType::LstmLm), "LSTM");
    EXPECT_STREQ(frontendTypeName(FrontendType::TransformerLm),
                 "Transformer");
    EXPECT_STREQ(frontendTypeName(FrontendType::Gnmt), "GNMT");
    EXPECT_STREQ(frontendTypeName(FrontendType::XmlCnn), "XMLCNN");
}

/**
 * The motivation behind Fig. 4: for million-category workloads the
 * classifier dwarfs the front-end.
 */
TEST(Frontend, XmlcnnFrontendSmallerThanClassifier)
{
    const FrontendModel m = FrontendModel::xmlcnn670k();
    const uint64_t classifier_params = 670091ull * 512; // l x d
    EXPECT_LT(m.params(), classifier_params / 10);
}

} // namespace
} // namespace enmc::nn
