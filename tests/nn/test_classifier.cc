/**
 * @file
 * Tests for the classification layer.
 */

#include <gtest/gtest.h>

#include "nn/classifier.h"

namespace enmc::nn {
namespace {

Classifier
tinyClassifier(Normalization norm = Normalization::Softmax)
{
    tensor::Matrix w(3, 2);
    w(0, 0) = 1; w(0, 1) = 0;
    w(1, 0) = 0; w(1, 1) = 1;
    w(2, 0) = 1; w(2, 1) = 1;
    tensor::Vector b{0.0f, 0.5f, -0.5f};
    return Classifier(std::move(w), std::move(b), norm);
}

TEST(Classifier, Dimensions)
{
    const Classifier c = tinyClassifier();
    EXPECT_EQ(c.categories(), 3u);
    EXPECT_EQ(c.hidden(), 2u);
}

TEST(Classifier, LogitsMatchManual)
{
    const Classifier c = tinyClassifier();
    const tensor::Vector z = c.logits(tensor::Vector{2.0f, 3.0f});
    EXPECT_FLOAT_EQ(z[0], 2.0f);
    EXPECT_FLOAT_EQ(z[1], 3.5f);
    EXPECT_FLOAT_EQ(z[2], 4.5f);
}

TEST(Classifier, SingleLogitMatchesFull)
{
    const Classifier c = tinyClassifier();
    const tensor::Vector h{0.3f, -1.2f};
    const tensor::Vector z = c.logits(h);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(c.logit(i, h), z[i]);
}

TEST(Classifier, SoftmaxProbabilitiesSumToOne)
{
    const Classifier c = tinyClassifier();
    const tensor::Vector p = c.probabilities(tensor::Vector{1.0f, -1.0f});
    float sum = 0.0f;
    for (float v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Classifier, SigmoidNormalizationIndependentPerCategory)
{
    const Classifier c = tinyClassifier(Normalization::Sigmoid);
    const tensor::Vector p = c.probabilities(tensor::Vector{10.0f, 10.0f});
    for (float v : p) {
        EXPECT_GT(v, 0.9f); // all logits strongly positive
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Classifier, ParameterBytes)
{
    const Classifier c = tinyClassifier();
    EXPECT_EQ(c.parameterBytes(), (3 * 2 + 3) * sizeof(float));
}

TEST(Classifier, FlopsScaleWithDimensions)
{
    const Classifier c = tinyClassifier();
    EXPECT_EQ(c.flopsPerInference(), 2u * 3 * 2 + 4u * 3);
}

TEST(ClassifierDeathTest, BiasSizeMismatch)
{
    tensor::Matrix w(2, 2);
    tensor::Vector b{1.0f}; // wrong size
    EXPECT_DEATH(Classifier(std::move(w), std::move(b)), "bias size");
}

} // namespace
} // namespace enmc::nn
