/**
 * @file
 * Tests for beam-search decoding.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/beam.h"
#include "tensor/ops.h"

namespace enmc::nn {
namespace {

/**
 * A deterministic toy decoder over 4 tokens (0 = EOS). The state is a
 * single counter; log-probs depend on the step so the best path is known.
 */
DecoderInterface
toyDecoder()
{
    DecoderInterface d;
    d.initial_state = [] { return tensor::Vector{0.0f}; };
    d.advance = [](const tensor::Vector &s, uint32_t) {
        return tensor::Vector{s[0] + 1.0f};
    };
    d.log_probs = [](const tensor::Vector &s) {
        // Step 0: token 2 best; step 1: token 3 best; step >= 2: EOS best.
        const int step = static_cast<int>(s[0]);
        tensor::Vector lp(4, -5.0f);
        if (step == 0)
            lp[2] = -0.1f;
        else if (step == 1)
            lp[3] = -0.2f;
        else
            lp[0] = -0.1f;
        return lp;
    };
    return d;
}

TEST(BeamSearch, GreedyFindsBestPath)
{
    BeamConfig cfg;
    cfg.beam_width = 1;
    cfg.max_steps = 10;
    const auto result = beamSearch(toyDecoder(), cfg);
    ASSERT_FALSE(result.empty());
    const auto &best = result.front();
    ASSERT_EQ(best.tokens.size(), 3u);
    EXPECT_EQ(best.tokens[0], 2u);
    EXPECT_EQ(best.tokens[1], 3u);
    EXPECT_EQ(best.tokens[2], 0u); // EOS
}

TEST(BeamSearch, WiderBeamNeverWorse)
{
    BeamConfig narrow;
    narrow.beam_width = 1;
    BeamConfig wide;
    wide.beam_width = 4;
    const auto r1 = beamSearch(toyDecoder(), narrow);
    const auto r4 = beamSearch(toyDecoder(), wide);
    EXPECT_GE(r4.front().log_prob, r1.front().log_prob - 1e-6);
}

TEST(BeamSearch, ResultsSortedBestFirst)
{
    BeamConfig cfg;
    cfg.beam_width = 3;
    const auto result = beamSearch(toyDecoder(), cfg);
    for (size_t i = 0; i + 1 < result.size(); ++i)
        EXPECT_GE(result[i].log_prob, result[i + 1].log_prob);
}

TEST(BeamSearch, RespectsMaxSteps)
{
    DecoderInterface d = toyDecoder();
    // Never emit EOS.
    d.log_probs = [](const tensor::Vector &) {
        tensor::Vector lp(4, -5.0f);
        lp[1] = -0.1f;
        return lp;
    };
    BeamConfig cfg;
    cfg.beam_width = 2;
    cfg.max_steps = 5;
    const auto result = beamSearch(d, cfg);
    ASSERT_FALSE(result.empty());
    EXPECT_LE(result.front().tokens.size(), 5u);
}

TEST(BeamSearch, LogProbIsSumOfStepProbs)
{
    BeamConfig cfg;
    cfg.beam_width = 1;
    const auto result = beamSearch(toyDecoder(), cfg);
    EXPECT_NEAR(result.front().log_prob, -0.1 - 0.2 - 0.1, 1e-5);
}

TEST(BeamSearch, LengthPenaltyPrefersShorterWhenTied)
{
    // Two finished hypotheses with equal total log-prob but different
    // lengths: positive penalty normalizes by length.
    Hypothesis a;
    a.tokens = {1, 0};
    a.log_prob = -1.0;
    Hypothesis b;
    b.tokens = {1, 2, 3, 0};
    b.log_prob = -1.0;
    // Use beamSearch indirectly: verify via its sort criterion by running
    // a decoder that produces both; simpler: check normalized ordering
    // through the public API is covered; here assert the raw math.
    const double na = a.log_prob / std::pow(2.0, 1.0);
    const double nb = b.log_prob / std::pow(4.0, 1.0);
    EXPECT_LT(na, nb); // longer sequence scores *higher* when negative
}

TEST(BeamSearchDeathTest, ZeroBeamRejected)
{
    BeamConfig cfg;
    cfg.beam_width = 0;
    EXPECT_DEATH((void)beamSearch(toyDecoder(), cfg), "beam width");
}

} // namespace
} // namespace enmc::nn
