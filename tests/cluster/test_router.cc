/**
 * @file
 * Tests for the cluster fabric's building blocks: the shard map
 * (RankPartitioner at node granularity, including degenerate shapes),
 * chained-declustering replica placement, the NodeBackend health state
 * machine, least-loaded routing, scripted kills + failover, and the
 * epoch-keyed service-time model.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/backend.h"
#include "cluster/router.h"
#include "runtime/node_backend.h"

namespace enmc::cluster {
namespace {

runtime::JobSpec
job(uint64_t categories = 32768)
{
    runtime::JobSpec spec;
    spec.categories = categories;
    spec.hidden = 128;
    spec.reduced = 32;
    spec.candidates = 512;
    return spec;
}

ClusterConfig
config(uint64_t nodes = 4, uint64_t replication = 2)
{
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.replication = replication;
    return cfg;
}

// --- shard map (RankPartitioner degenerate shapes) ----------------------

TEST(Partitioner, FewerLabelsThanShardsDropsEmptyShards)
{
    // 3 labels over 8 parts: ceil slicing gives 1-row slices; the five
    // trailing empty slices must be dropped, not emitted as zero-row
    // shards a router would scatter work to.
    const auto slices = runtime::RankPartitioner::partition(0, 3, 8);
    ASSERT_EQ(slices.size(), 3u);
    for (size_t s = 0; s < slices.size(); ++s) {
        EXPECT_EQ(slices[s].begin, s);
        EXPECT_EQ(slices[s].rows, 1u);
    }
}

TEST(Partitioner, ZeroRowsYieldsNoShards)
{
    EXPECT_TRUE(runtime::RankPartitioner::partition(5, 0, 4).empty());
}

TEST(Partitioner, SinglePartTakesEverything)
{
    const auto slices = runtime::RankPartitioner::partition(7, 100, 1);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].begin, 7u);
    EXPECT_EQ(slices[0].rows, 100u);
}

TEST(Partitioner, NonDividingRemainderCoversExactly)
{
    // 10 rows over 4 parts: 3+3+3+1, contiguous, disjoint, complete.
    const auto slices = runtime::RankPartitioner::partition(0, 10, 4);
    ASSERT_EQ(slices.size(), 4u);
    uint64_t next = 0, total = 0;
    for (const auto &s : slices) {
        EXPECT_EQ(s.begin, next);
        EXPECT_GT(s.rows, 0u);
        next = s.begin + s.rows;
        total += s.rows;
    }
    EXPECT_EQ(total, 10u);
    EXPECT_EQ(slices.back().rows, 1u);
}

// --- node health state machine ------------------------------------------

TEST(NodeBackend, WalksAliveSuspectDead)
{
    fault::ResilienceConfig resilience;
    resilience.blacklist_after = 3;
    runtime::NodeBackend node(2, runtime::createBackend("enmc"),
                              resilience);
    EXPECT_EQ(node.health(), runtime::NodeHealth::Alive);
    EXPECT_TRUE(node.alive());
    EXPECT_EQ(node.name(), "node2:enmc");

    node.recordFailure();
    EXPECT_EQ(node.health(), runtime::NodeHealth::Suspect);
    EXPECT_TRUE(node.alive()); // suspect still serves traffic

    node.recordSuccess(); // strike forgiven
    EXPECT_EQ(node.health(), runtime::NodeHealth::Alive);

    node.recordFailure();
    node.recordFailure();
    EXPECT_EQ(node.health(), runtime::NodeHealth::Suspect);
    node.recordFailure(); // third consecutive strike
    EXPECT_EQ(node.health(), runtime::NodeHealth::Dead);
    EXPECT_FALSE(node.alive());

    node.recordSuccess(); // dead nodes stay dead
    EXPECT_EQ(node.health(), runtime::NodeHealth::Dead);
}

TEST(NodeBackend, KillIsImmediate)
{
    runtime::NodeBackend node(0, runtime::createBackend("enmc"),
                              fault::ResilienceConfig{});
    node.kill();
    EXPECT_EQ(node.health(), runtime::NodeHealth::Dead);
}

TEST(NodeBackend, LoadTracksDispatches)
{
    runtime::NodeBackend node(0, runtime::createBackend("enmc"),
                              fault::ResilienceConfig{});
    EXPECT_EQ(node.load(), 0u);
    node.recordDispatch();
    node.recordDispatch(3);
    EXPECT_EQ(node.load(), 4u);
}

// --- configuration validation -------------------------------------------

TEST(ClusterConfigDeath, RejectsInconsistentShapes)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ClusterConfig bad = config();
    bad.replication = 5; // > nodes
    EXPECT_DEATH(validate(bad), "replication");

    bad = config();
    bad.nodes = 0;
    EXPECT_DEATH(validate(bad), "nodes");

    bad = config();
    bad.kill.node = 4; // not a node id of a 4-node cluster
    EXPECT_DEATH(validate(bad), "kill");
}

// --- router: shard map + replica placement ------------------------------

TEST(Router, ShardsCoverLabelSpaceDisjointly)
{
    ClusterRouter router(config(4, 2), job(10'000));
    ASSERT_EQ(router.shardCount(), 4u);
    uint64_t next = 0, total = 0;
    for (const auto &s : router.shards()) {
        EXPECT_EQ(s.begin, next);
        next = s.begin + s.rows;
        total += s.rows;
    }
    EXPECT_EQ(total, 10'000u);
}

TEST(Router, SmallLabelSpaceDropsEmptyShards)
{
    // 3 labels, 8 nodes: only 3 shards exist; the other nodes are pure
    // replica targets.
    ClusterRouter router(config(8, 2), job(3));
    EXPECT_EQ(router.shardCount(), 3u);
    EXPECT_EQ(router.nodeCount(), 8u);
}

TEST(Router, ChainedDeclusteringPlacesReplicas)
{
    ClusterRouter router(config(4, 3), job());
    EXPECT_EQ(router.replicasOf(0), (std::vector<uint32_t>{0, 1, 2}));
    EXPECT_EQ(router.replicasOf(3), (std::vector<uint32_t>{3, 0, 1}));
    // Distinct replicas per shard (replication <= nodes).
    for (size_t s = 0; s < router.shardCount(); ++s) {
        const auto reps = router.replicasOf(s);
        std::set<uint32_t> uniq(reps.begin(), reps.end());
        EXPECT_EQ(uniq.size(), reps.size());
    }
}

// --- router: routing, kills, failover -----------------------------------

TEST(Router, RouteBalancesAcrossReplicasDeterministically)
{
    ClusterRouter a(config(4, 2), job());
    ClusterRouter b(config(4, 2), job());
    for (int i = 0; i < 16; ++i) {
        const auto ra = a.routeBatch(8, 64, 0.0);
        const auto rb = b.routeBatch(8, 64, 0.0);
        ASSERT_EQ(ra.size(), 4u); // every shard dispatched
        for (size_t s = 0; s < ra.size(); ++s) {
            EXPECT_EQ(ra[s].shard, s);
            EXPECT_EQ(ra[s].node, rb[s].node) << "batch " << i;
        }
    }
    // All nodes carried load (least-loaded spreads over the chain).
    for (size_t n = 0; n < a.nodeCount(); ++n)
        EXPECT_GT(a.node(n).load(), 0u) << "node " << n;
    EXPECT_EQ(a.stats().counter("routedBatches").value(), 16u);
    EXPECT_EQ(a.stats().counter("shardDispatches").value(), 64u);
    EXPECT_EQ(a.stats().counter("deadDispatches").value(), 0u);
}

TEST(Router, FailoverReroutesAroundDeadNode)
{
    ClusterRouter router(config(4, 2), job());
    router.routeBatch(8, 64, 0.0);
    router.killNode(1);
    EXPECT_EQ(router.liveNodeCount(), 3u);

    for (int i = 0; i < 8; ++i) {
        const auto assignments = router.routeBatch(8, 64, 1.0 + i);
        for (const auto &a : assignments)
            EXPECT_NE(a.node, 1u) << "dispatch to a dead node";
    }
    // Shard 1's primary is dead, so each post-kill batch reroutes it.
    EXPECT_GE(router.stats().counter("reroutes").value(), 8u);
    EXPECT_EQ(router.stats().counter("deadDispatches").value(), 0u);
    EXPECT_EQ(router.stats().counter("nodeKills").value(), 1u);
    EXPECT_EQ(router.node(1).stats().counter("killed").value(), 1u);
    // Killing again is a no-op, not a double-count.
    router.killNode(1);
    EXPECT_EQ(router.stats().counter("nodeKills").value(), 1u);
}

TEST(Router, ScriptedKillFiresAtTheConfiguredBatch)
{
    ClusterConfig cfg = config(4, 2);
    cfg.kill.node = 2;
    cfg.kill.after_batches = 3;
    ClusterRouter router(cfg, job());
    for (int i = 0; i < 3; ++i) {
        router.routeBatch(8, 64, static_cast<double>(i));
        EXPECT_EQ(router.liveNodeCount(), 4u) << "kill fired early";
    }
    router.routeBatch(8, 64, 3.0); // fourth batch: kill fires first
    EXPECT_EQ(router.liveNodeCount(), 3u);
    EXPECT_FALSE(router.node(2).alive());
}

TEST(RouterDeath, DiesWhenNoLiveReplicaRemains)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // replication 1: killing any node orphans its shard.
    ClusterConfig cfg = config(2, 1);
    ClusterRouter router(cfg, job());
    router.killNode(0);
    EXPECT_DEATH(router.routeBatch(8, 64, 0.0), "no live replica");
}

// --- router: service-time model -----------------------------------------

TEST(Router, SingleNodeServiceTimeMatchesPlainBackend)
{
    // The degenerate fabric: no scatter/gather/handoff terms, so the
    // 1-node cluster must time bit-identically to the plain backend.
    const runtime::JobSpec spec = job();
    ClusterConfig cfg = config(1, 1);
    ClusterRouter router(cfg, spec);

    auto backend = runtime::createBackend("enmc", cfg.node);
    runtime::JobSpec ref = spec;
    ref.batch = 8;
    ref.candidates = 64;
    const double plain_us = backend->runJob(ref).seconds * 1e6;
    EXPECT_DOUBLE_EQ(router.serviceUs(8, 64), plain_us);
}

TEST(Router, MultiNodeServiceAddsNetworkAndShrinksCompute)
{
    const runtime::JobSpec spec = job(1'000'000);
    ClusterRouter one(config(1, 1), spec);
    ClusterRouter four(config(4, 2), spec);
    const double t1 = one.serviceUs(8, 512);
    const double t4 = four.serviceUs(8, 512);
    EXPECT_GT(t4, 0.0);
    EXPECT_LT(t4, t1); // sharding 1M labels 4-way wins despite network
}

TEST(Router, ServiceTimeRetimesAfterAKill)
{
    ClusterRouter router(config(4, 2), job(1'000'000));
    const double before = router.serviceUs(8, 512);
    router.killNode(0);
    const double after = router.serviceUs(8, 512);
    // Node 0's shard fails over to node 1, which now runs two shards
    // serially: the batch must get slower, not serve a frozen memo.
    EXPECT_GT(after, before);
}

// --- the "cluster" registry backend -------------------------------------

TEST(ClusterBackend, RegistersAndTimesJobs)
{
    registerClusterBackend();
    ASSERT_TRUE(runtime::BackendRegistry::instance().contains("cluster"));
    auto backend = runtime::createBackend("cluster");
    EXPECT_EQ(backend->name(), "cluster");
    EXPECT_FALSE(backend->capabilities().functional);
    runtime::JobSpec spec = job();
    spec.batch = 8;
    spec.candidates = 64;
    const runtime::TimingResult r = backend->runJob(spec);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.ranks, 0u);
}

} // namespace
} // namespace enmc::cluster
