/**
 * @file
 * End-to-end tests of the cluster fabric behind the serving loop.
 *
 * The contracts under test, from ISSUE acceptance criteria:
 *  - a 1-node cluster is bit-identical (logits, admissions, schedule
 *    timestamps) to the plain single-backend ServeLoop, for every
 *    simulation thread count;
 *  - a multi-node cluster changes *where* label rows are computed but
 *    never the answer — every admitted response matches the single-query
 *    reference forward;
 *  - a scripted mid-run node kill is survived with zero wrong answers,
 *    zero dispatches to the dead node, and a still-deterministic replay.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "cluster/router.h"
#include "runtime/api.h"
#include "serve/loop.h"
#include "workloads/synthetic.h"

namespace enmc::serve {
namespace {

class ClusterServingTest : public ::testing::Test
{
  protected:
    ClusterServingTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          queries_(model_.sampleHiddenBatch(rng_, 24))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    std::unique_ptr<runtime::EnmcClassifier>
    makeClassifier(uint64_t threads)
    {
        runtime::ClassifierOptions opt;
        opt.candidates = 48;
        runtime::SystemConfig sys;
        sys.sim_threads = threads;
        auto clf = std::make_unique<runtime::EnmcClassifier>(
            model_.classifier(), opt, sys);
        clf->calibrate(train_, val_);
        return clf;
    }

    static runtime::JobSpec
    job()
    {
        runtime::JobSpec spec;
        spec.categories = 32768;
        spec.hidden = 128;
        spec.reduced = 32;
        spec.candidates = 512;
        return spec;
    }

    /** Serving config targeting an N-node cluster. */
    static ServeConfig
    clusterConfig(uint64_t nodes, uint64_t replication)
    {
        ServeConfig cfg;
        cfg.backend = "cluster";
        cfg.queue_capacity = 64;
        cfg.max_batch = 8;
        cfg.max_delay_us = 50.0;
        cfg.warmup_requests = 0;
        cfg.topk = 5;
        cfg.cluster.nodes = nodes;
        cfg.cluster.replication = replication;
        return cfg;
    }

    ArrivalTrace
    trace() const
    {
        ArrivalTrace t;
        for (size_t i = 0; i < queries_.size(); ++i) {
            Request r;
            r.id = i;
            r.hidden = queries_[i];
            r.candidates = 32 + 8 * (i % 3);
            r.arrival_us = static_cast<double>(i / 8) * 120.0 +
                           static_cast<double>(i % 2) * 10.0;
            t.requests.push_back(r);
        }
        t.normalize();
        return t;
    }

    static void
    expectBitIdentical(const Response &a, const Response &b)
    {
        ASSERT_EQ(a.id, b.id);
        ASSERT_EQ(a.admission, b.admission);
        ASSERT_EQ(a.batch_size, b.batch_size);
        ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
        if (!a.probabilities.empty()) {
            ASSERT_EQ(std::memcmp(a.probabilities.data(),
                                  b.probabilities.data(),
                                  a.probabilities.size() * sizeof(float)),
                      0)
                << "logits differ for request " << a.id;
        }
        ASSERT_EQ(a.topk, b.topk);
        ASSERT_EQ(a.candidates, b.candidates);
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> queries_;
};

TEST_F(ClusterServingTest, OneNodeClusterBitIdenticalToPlainBackend)
{
    // The 1-node cluster degenerates to the existing single-backend
    // path: no scatter/gather, no handoff, one shard covering the whole
    // label space. Logits, admissions, AND the dispatch/completion
    // schedule must be bit-identical — for every ENMC_THREADS setting.
    const ArrivalTrace arrivals = trace();
    for (uint64_t threads : {1, 4, 8}) {
        auto clf = makeClassifier(threads);

        ServeConfig plain_cfg = clusterConfig(1, 1);
        plain_cfg.backend = "enmc";
        ServeLoop plain(plain_cfg, job());
        plain.attachClassifier(*clf);
        const ServeReport a = plain.replay(arrivals);

        ServeLoop clustered(clusterConfig(1, 1), job());
        clustered.attachClassifier(*clf);
        const ServeReport b = clustered.replay(arrivals);

        ASSERT_EQ(a.responses.size(), b.responses.size());
        for (size_t i = 0; i < a.responses.size(); ++i) {
            expectBitIdentical(a.responses[i], b.responses[i]);
            ASSERT_DOUBLE_EQ(a.responses[i].dispatch_us,
                             b.responses[i].dispatch_us)
                << "threads=" << threads << " request " << i;
            ASSERT_DOUBLE_EQ(a.responses[i].complete_us,
                             b.responses[i].complete_us)
                << "threads=" << threads << " request " << i;
        }
    }
}

TEST_F(ClusterServingTest, MultiNodeClusterMatchesSingleQueryReference)
{
    // Sharding 4 ways (with replication) moves label rows onto different
    // simulated nodes; every admitted response must still equal the
    // unsharded single-query forward bit-for-bit.
    auto clf = makeClassifier(4);
    auto reference = makeClassifier(4);
    ServeLoop loop(clusterConfig(4, 2), job());
    loop.attachClassifier(*clf);
    const ServeReport report = loop.replay(trace());

    ASSERT_EQ(report.responses.size(), queries_.size());
    for (const Response &resp : report.responses) {
        ASSERT_EQ(resp.admission, Admission::Admitted);
        const auto ref = reference->forward({queries_[resp.id]}, 5);
        ASSERT_EQ(resp.probabilities.size(), ref[0].probabilities.size());
        ASSERT_EQ(std::memcmp(resp.probabilities.data(),
                              ref[0].probabilities.data(),
                              ref[0].probabilities.size() * sizeof(float)),
                  0)
            << "cluster logits differ from reference, request " << resp.id;
        ASSERT_EQ(resp.topk, ref[0].topk);
    }
}

TEST_F(ClusterServingTest, ClusterReplayBitIdenticalAcrossSimThreads)
{
    const ArrivalTrace arrivals = trace();
    std::vector<ServeReport> reports;
    for (uint64_t threads : {1, 4, 8}) {
        auto clf = makeClassifier(threads);
        ServeLoop loop(clusterConfig(4, 2), job());
        loop.attachClassifier(*clf);
        reports.push_back(loop.replay(arrivals));
    }
    ASSERT_EQ(reports[0].responses.size(), arrivals.requests.size());
    for (size_t v = 1; v < reports.size(); ++v) {
        ASSERT_EQ(reports[v].responses.size(),
                  reports[0].responses.size());
        for (size_t i = 0; i < reports[0].responses.size(); ++i) {
            expectBitIdentical(reports[0].responses[i],
                               reports[v].responses[i]);
            ASSERT_DOUBLE_EQ(reports[v].responses[i].dispatch_us,
                             reports[0].responses[i].dispatch_us);
            ASSERT_DOUBLE_EQ(reports[v].responses[i].complete_us,
                             reports[0].responses[i].complete_us);
        }
    }
}

TEST_F(ClusterServingTest, MidRunKillServesEveryAnswerCorrectly)
{
    // Kill node 1 after two routed batches. The run must finish with
    // zero wrong answers, zero dispatches to the dead node, and the
    // failover visible in the router stats.
    auto clf = makeClassifier(4);
    auto reference = makeClassifier(4);
    ServeConfig cfg = clusterConfig(4, 2);
    cfg.cluster.kill.node = 1;
    cfg.cluster.kill.after_batches = 2;
    ServeLoop loop(cfg, job());
    loop.attachClassifier(*clf);
    const ServeReport report = loop.replay(trace());

    ASSERT_EQ(report.responses.size(), queries_.size());
    for (const Response &resp : report.responses) {
        ASSERT_EQ(resp.admission, Admission::Admitted);
        const auto ref = reference->forward({queries_[resp.id]}, 5);
        ASSERT_EQ(resp.probabilities.size(), ref[0].probabilities.size());
        ASSERT_EQ(std::memcmp(resp.probabilities.data(),
                              ref[0].probabilities.data(),
                              ref[0].probabilities.size() * sizeof(float)),
                  0)
            << "post-kill logits differ from reference, request "
            << resp.id;
        ASSERT_EQ(resp.topk, ref[0].topk);
    }

    cluster::ClusterRouter *router = loop.clusterRouter();
    ASSERT_NE(router, nullptr);
    EXPECT_EQ(router->liveNodeCount(), 3u);
    EXPECT_FALSE(router->node(1).alive());
    EXPECT_EQ(router->stats().counter("nodeKills").value(), 1u);
    EXPECT_EQ(router->stats().counter("deadDispatches").value(), 0u);
    EXPECT_GT(router->stats().counter("reroutes").value(), 0u);
    // Scatter/gather accounting closes: the per-node dispatch tallies
    // sum to the router's fan-out total (the check_metrics invariant).
    uint64_t node_total = 0;
    for (size_t n = 0; n < router->nodeCount(); ++n)
        node_total +=
            router->node(n).stats().counter("dispatchedBatches").value();
    EXPECT_EQ(node_total,
              router->stats().counter("shardDispatches").value());
    EXPECT_GT(router->stats().counter("routedBatches").value(), 2u);
}

TEST_F(ClusterServingTest, KilledRunReplaysReproducibly)
{
    // The failover re-times in-flight batches (health-epoch memo); two
    // replays of the same killed run must still agree on every
    // timestamp and every bit.
    auto clf = makeClassifier(4);
    ServeConfig cfg = clusterConfig(4, 2);
    cfg.cluster.kill.node = 2;
    cfg.cluster.kill.after_batches = 1;
    const ArrivalTrace arrivals = trace();

    ServeLoop loop_a(cfg, job());
    ServeLoop loop_b(cfg, job());
    loop_a.attachClassifier(*clf);
    loop_b.attachClassifier(*clf);
    const ServeReport a = loop_a.replay(arrivals);
    const ServeReport b = loop_b.replay(arrivals);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (size_t i = 0; i < a.responses.size(); ++i) {
        expectBitIdentical(a.responses[i], b.responses[i]);
        ASSERT_DOUBLE_EQ(a.responses[i].complete_us,
                         b.responses[i].complete_us);
    }
}

TEST_F(ClusterServingTest, LiveModeClusterMatchesReference)
{
    // The live threaded path shares the router with replay; submit the
    // query set through the real executor thread and check answers.
    auto clf = makeClassifier(4);
    auto reference = makeClassifier(4);
    ServeLoop loop(clusterConfig(4, 2), job());
    loop.attachClassifier(*clf);
    loop.start();

    std::vector<std::future<Response>> futures;
    for (size_t i = 0; i < queries_.size(); ++i) {
        Request r;
        r.id = i;
        r.hidden = queries_[i];
        futures.push_back(loop.submitOrdered(std::move(r)));
    }
    std::vector<Response> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    const ServeReport report = loop.stop();
    ASSERT_EQ(report.responses.size(), queries_.size());

    for (size_t i = 0; i < queries_.size(); ++i) {
        ASSERT_EQ(responses[i].admission, Admission::Admitted);
        const auto ref = reference->forward({queries_[i]}, 5);
        ASSERT_EQ(std::memcmp(responses[i].probabilities.data(),
                              ref[0].probabilities.data(),
                              ref[0].probabilities.size() * sizeof(float)),
                  0)
            << "live cluster logits differ from reference, request " << i;
        ASSERT_EQ(responses[i].topk, ref[0].topk);
    }
}

} // namespace
} // namespace enmc::serve
